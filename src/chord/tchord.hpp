// T-Chord: gossip-based construction of a Chord ring inside a private
// group (§V-G), following the T-Man framework: nodes gossip candidate
// descriptors with ring-proximity-biased selection and converge to the
// Chord successor/predecessor/finger structure in a few cycles.
//
// All communication goes through the PPSS application channel, i.e. over
// WCL confidential routes. Lookup queries ship the querying node's
// descriptor so the owner can answer with a single WCL path (the exact
// mechanism the paper describes for its Fig. 9 experiment).
#pragma once

#include <functional>
#include <map>
#include <optional>

#include "common/densemap.hpp"
#include "ppss/ppss.hpp"

namespace whisper::chord {

/// Position on the Chord ring (64-bit identifier space).
using ChordKey = std::uint64_t;

/// The ring identifier of a node: a hash of its node id.
ChordKey chord_key_of(NodeId id);

/// PPSS application channel used by T-Chord messages.
inline constexpr std::uint8_t kChordAppId = 1;

/// Clockwise distance from `a` to `b` on the ring.
inline ChordKey ring_distance(ChordKey a, ChordKey b) { return b - a; }

/// A routable ring member: its key and how to reach it confidentially.
struct ChordDescriptor {
  ChordKey key = 0;
  wcl::RemotePeer peer;

  NodeId id() const { return peer.card.id; }
  void serialize(Writer& w) const;
  static std::optional<ChordDescriptor> deserialize(Reader& r);
};

struct TChordConfig {
  net::Time cycle = 30 * net::kSecond;
  std::size_t candidate_capacity = 32;
  std::size_t gossip_descriptors = 8;
  std::size_t successor_list = 4;
  std::size_t finger_bits = 64;
  std::size_t lookup_hop_limit = 32;
  net::Time lookup_timeout = 20 * net::kSecond;
  /// Re-dispatches after a timeout before reporting failure (stale
  /// descriptors along the path heal as gossip refreshes them).
  std::size_t lookup_retries = 1;
  /// Cap on descriptors accepted from one gossip frame (hostile frames
  /// cannot force unbounded parsing; well above gossip_descriptors).
  std::size_t max_wire_descriptors = 32;
};

class TChord {
 public:
  TChord(net::Clock& clock, ppss::Ppss& ppss, TChordConfig config, Rng rng);
  ~TChord();

  TChord(const TChord&) = delete;
  TChord& operator=(const TChord&) = delete;

  void start();
  void stop();

  ChordKey self_key() const { return self_key_; }
  std::optional<ChordDescriptor> successor() const;
  std::optional<ChordDescriptor> predecessor() const;
  /// Finger i: the known node minimizing clockwise distance from
  /// self + 2^i. Deduplicated; may be fewer than finger_bits entries.
  std::vector<ChordDescriptor> fingers() const;
  std::size_t candidate_count() const { return candidates_.size(); }

  struct LookupResult {
    ChordDescriptor owner;
    std::uint32_t hops = 0;
    net::Time rtt = 0;
  };
  using LookupCallback = std::function<void(std::optional<LookupResult>)>;

  /// Resolve the successor of `key` by greedy finger routing; the owner
  /// answers directly. The callback fires once (nullopt on timeout).
  void lookup(ChordKey key, LookupCallback callback);

  struct Stats {
    std::uint64_t lookups_sent = 0;
    std::uint64_t lookups_answered = 0;
    std::uint64_t lookups_timed_out = 0;
    std::uint64_t lookups_served = 0;  // we were the owner
    std::uint64_t forwards = 0;
    std::uint64_t decode_rejects = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  void on_cycle();
  void handle_app(const wcl::RemotePeer& from, BytesView payload);
  void handle_gossip(std::uint8_t kind, const wcl::RemotePeer& from, Reader& r);
  void handle_lookup_request(Reader& r);
  void handle_lookup_response(Reader& r);
  /// Count a malformed app frame (already passport-authenticated by PPSS,
  /// so rejects are counted and flight-attributed, not quarantined).
  void reject_frame(Reader& r);
  void absorb(const ChordDescriptor& d);
  std::vector<ChordDescriptor> best_for(ChordKey target_key) const;
  /// True if this node owns `key` (key in (predecessor, self]).
  bool owns(ChordKey key) const;
  const ChordDescriptor* closest_preceding(ChordKey key) const;
  void route_or_serve(ChordKey key, std::uint64_t lookup_id,
                      const ChordDescriptor& origin, std::uint32_t hops);
  ChordDescriptor self_descriptor();

  net::Clock& clock_;
  ppss::Ppss& ppss_;
  TChordConfig config_;
  Rng rng_;
  ChordKey self_key_;
  bool running_ = false;
  net::TimerId cycle_timer_ = 0;

  /// Candidate set ordered by ring position (key -> descriptor).
  std::map<ChordKey, ChordDescriptor> candidates_;

  struct PendingLookup {
    ChordKey key = 0;
    LookupCallback callback;
    net::Time started_at = 0;
    net::TimerId timeout_timer = 0;
    std::size_t attempts = 0;
    /// Flight-record root spanning dispatch, retries, and the answer.
    std::uint64_t trace_root = 0;
  };
  void arm_lookup_timer(std::uint64_t lookup_id);
  DenseMap<std::uint64_t, PendingLookup> pending_lookups_;
  std::uint64_t next_lookup_id_;

  Stats stats_;

  // Inherited from the underlying PPSS instance (same node, same group).
  telemetry::Scope tel_;
  telemetry::Counter& m_sent_;
  telemetry::Counter& m_answered_;
  telemetry::Counter& m_timed_out_;
  telemetry::Counter& m_served_;
  telemetry::Counter& m_forwards_;
  telemetry::Counter& m_decode_rejects_;
  telemetry::Histogram& m_hops_;
  telemetry::Histogram& m_rtt_;
};

}  // namespace whisper::chord

#include "chord/tchord.hpp"

#include <algorithm>
#include <unordered_set>

#include "crypto/sha256.hpp"

namespace whisper::chord {

namespace {
constexpr std::uint8_t kKindGossipReq = 1;
constexpr std::uint8_t kKindGossipResp = 2;
constexpr std::uint8_t kKindLookupReq = 3;
constexpr std::uint8_t kKindLookupResp = 4;
}  // namespace

ChordKey chord_key_of(NodeId id) {
  Writer w;
  w.str("chord-key");
  w.node_id(id);
  return crypto::fingerprint64(w.data());
}

void ChordDescriptor::serialize(Writer& w) const {
  w.u64(key);
  peer.serialize(w);
}

std::optional<ChordDescriptor> ChordDescriptor::deserialize(Reader& r) {
  ChordDescriptor d;
  d.key = r.u64();
  auto peer = wcl::RemotePeer::deserialize(r);
  if (!peer) return std::nullopt;
  d.peer = std::move(*peer);
  if (!r.ok()) return std::nullopt;
  return d;
}

TChord::TChord(net::Clock& clock, ppss::Ppss& ppss, TChordConfig config, Rng rng)
    : clock_(clock), ppss_(ppss), config_(config), rng_(rng),
      self_key_(chord_key_of(ppss.self())),
      next_lookup_id_(ppss.self().value << 16),
      tel_(ppss.telemetry()),
      m_sent_(tel_.counter("chord.lookups.sent")),
      m_answered_(tel_.counter("chord.lookups.answered")),
      m_timed_out_(tel_.counter("chord.lookups.timed_out")),
      m_served_(tel_.counter("chord.lookups.served")),
      m_forwards_(tel_.counter("chord.lookups.forwards")),
      m_decode_rejects_(tel_.counter("chord.decode.rejects")),
      m_hops_(tel_.histogram("chord.lookup.hops",
                             telemetry::BucketSpec::linear(0, 33, 33))),
      m_rtt_(tel_.histogram("chord.lookup.rtt_us",
                            telemetry::BucketSpec::log_spaced(1'000, 60'000'000))) {
  ppss_.register_app(kChordAppId, [this](const wcl::RemotePeer& from, BytesView p) {
    handle_app(from, p);
  });
}

TChord::~TChord() { stop(); }

void TChord::start() {
  if (running_) return;
  running_ = true;
  cycle_timer_ = clock_.schedule_after(rng_.next_below(config_.cycle), [this] { on_cycle(); });
}

void TChord::stop() {
  if (!running_) return;
  running_ = false;
  if (cycle_timer_ != 0) clock_.cancel(cycle_timer_);
  for (auto&& [id, p] : pending_lookups_) {
    if (p.timeout_timer != 0) clock_.cancel(p.timeout_timer);
  }
  pending_lookups_.clear();
}

ChordDescriptor TChord::self_descriptor() {
  return ChordDescriptor{self_key_, ppss_.self_descriptor()};
}

void TChord::absorb(const ChordDescriptor& d) {
  if (d.id() == ppss_.self() || d.id().is_nil()) return;
  candidates_[d.key] = d;
  if (candidates_.size() <= config_.candidate_capacity) return;
  // Evict the candidate least useful for ring structure: the one with the
  // largest minimum distance to any finger target (approximate by evicting
  // the entry furthest from self in both directions but not a finger/
  // successor/predecessor pick).
  std::unordered_set<NodeId> keep;
  if (auto s = successor()) keep.insert(s->id());
  if (auto p = predecessor()) keep.insert(p->id());
  for (const auto& f : fingers()) keep.insert(f.id());
  // Also keep a successor list.
  std::size_t listed = 0;
  for (auto it = candidates_.upper_bound(self_key_);
       listed < config_.successor_list && it != candidates_.end(); ++it, ++listed) {
    keep.insert(it->second.id());
  }
  for (auto it = candidates_.begin(); it != candidates_.end();) {
    if (candidates_.size() <= config_.candidate_capacity) break;
    if (!keep.contains(it->second.id())) {
      it = candidates_.erase(it);
    } else {
      ++it;
    }
  }
  // Still over capacity (everything protected): drop arbitrary tail.
  while (candidates_.size() > config_.candidate_capacity) {
    candidates_.erase(std::prev(candidates_.end()));
  }
}

std::optional<ChordDescriptor> TChord::successor() const {
  if (candidates_.empty()) return std::nullopt;
  auto it = candidates_.upper_bound(self_key_);
  if (it == candidates_.end()) it = candidates_.begin();  // wrap
  return it->second;
}

std::optional<ChordDescriptor> TChord::predecessor() const {
  if (candidates_.empty()) return std::nullopt;
  auto it = candidates_.lower_bound(self_key_);
  if (it == candidates_.begin()) it = candidates_.end();  // wrap
  return std::prev(it)->second;
}

std::vector<ChordDescriptor> TChord::fingers() const {
  std::vector<ChordDescriptor> out;
  std::unordered_set<NodeId> seen;
  for (std::size_t i = 0; i < config_.finger_bits; ++i) {
    if (candidates_.empty()) break;
    const ChordKey target = self_key_ + (i < 64 ? (ChordKey{1} << i) : 0);
    auto it = candidates_.lower_bound(target);
    if (it == candidates_.end()) it = candidates_.begin();
    if (seen.insert(it->second.id()).second) out.push_back(it->second);
  }
  return out;
}

std::vector<ChordDescriptor> TChord::best_for(ChordKey target_key) const {
  // Rank candidates by ring distance to the target (both directions), so
  // the partner receives the descriptors most useful for its neighbourhood.
  std::vector<ChordDescriptor> all;
  all.reserve(candidates_.size());
  for (const auto& [k, d] : candidates_) all.push_back(d);
  std::sort(all.begin(), all.end(), [&](const ChordDescriptor& a, const ChordDescriptor& b) {
    const ChordKey da = std::min(ring_distance(target_key, a.key),
                                 ring_distance(a.key, target_key));
    const ChordKey db = std::min(ring_distance(target_key, b.key),
                                 ring_distance(b.key, target_key));
    return da < db;
  });
  if (all.size() > config_.gossip_descriptors) all.resize(config_.gossip_descriptors);
  return all;
}

void TChord::on_cycle() {
  if (!running_) return;
  cycle_timer_ = clock_.schedule_after(config_.cycle, [this] { on_cycle(); });

  // Seed candidates from the PPSS private view.
  for (const auto& e : ppss_.private_view().entries()) {
    absorb(ChordDescriptor{chord_key_of(e.id()), e.peer});
  }
  if (candidates_.empty()) return;

  // T-Man selection: gossip with the ring-closest candidate half the time,
  // a random one otherwise (diversity keeps the ring connected).
  const ChordDescriptor* partner = nullptr;
  if (rng_.next_bool(0.5)) {
    if (auto s = successor()) {
      partner = &candidates_.find(s->key)->second;
    }
  }
  if (partner == nullptr) {
    auto it = candidates_.begin();
    std::advance(it, static_cast<std::ptrdiff_t>(rng_.next_below(candidates_.size())));
    partner = &it->second;
  }

  Writer w;
  w.u8(kKindGossipReq);
  auto buffer = best_for(partner->key);
  w.u16(static_cast<std::uint16_t>(buffer.size()));
  for (const auto& d : buffer) d.serialize(w);
  ppss_.send_app_to(partner->peer, w.data(), kChordAppId);
}

void TChord::reject_frame(Reader& r) {
  DecodeError err = r.reject_reason();
  if (err == DecodeError::kNone) err = DecodeError::kBadValue;
  ++stats_.decode_rejects;
  tel_.drop_frame(m_decode_rejects_, clock_.now(),
                  std::string("decode:") + decode_error_name(err));
}

void TChord::handle_app(const wcl::RemotePeer& from, BytesView payload) {
  Reader r(payload);
  const std::uint8_t kind = r.u8();
  if (!r.ok()) {
    reject_frame(r);
    return;
  }
  switch (kind) {
    case kKindGossipReq:
    case kKindGossipResp:
      handle_gossip(kind, from, r);
      break;
    case kKindLookupReq:
      handle_lookup_request(r);
      break;
    case kKindLookupResp:
      handle_lookup_response(r);
      break;
    default:
      r.fail(DecodeError::kBadValue);
      reject_frame(r);
      break;
  }
}

void TChord::handle_gossip(std::uint8_t kind, const wcl::RemotePeer& from, Reader& r) {
  const std::uint16_t count = r.count16(config_.max_wire_descriptors);
  std::vector<ChordDescriptor> received;
  for (std::uint16_t i = 0; i < count && r.ok(); ++i) {
    auto d = ChordDescriptor::deserialize(r);
    if (!d) break;
    received.push_back(std::move(*d));
  }
  if (!r.ok() || received.size() != count || !r.expect_done()) {
    reject_frame(r);
    return;
  }

  // The sender itself is a candidate too.
  absorb(ChordDescriptor{chord_key_of(from.card.id), from});
  for (const auto& d : received) absorb(d);

  if (kind == kKindGossipReq) {
    Writer w;
    w.u8(kKindGossipResp);
    auto buffer = best_for(chord_key_of(from.card.id));
    w.u16(static_cast<std::uint16_t>(buffer.size()));
    for (const auto& d : buffer) d.serialize(w);
    ppss_.send_app_to(from, w.data(), kChordAppId);
  }
}

bool TChord::owns(ChordKey key) const {
  auto pred = predecessor();
  if (!pred) return true;  // alone on the ring
  // key in (pred, self] going clockwise.
  return ring_distance(pred->key, key) <= ring_distance(pred->key, self_key_) &&
         key != pred->key;
}

const ChordDescriptor* TChord::closest_preceding(ChordKey key) const {
  // The candidate with the largest clockwise distance from self while still
  // strictly preceding `key` — standard Chord greedy step over our
  // candidate set (which includes fingers and successors).
  const ChordDescriptor* best = nullptr;
  ChordKey best_dist = 0;
  for (const auto& [k, d] : candidates_) {
    const ChordKey dist = ring_distance(self_key_, k);
    if (dist == 0) continue;
    // d strictly precedes key: distance(self,d) < distance(self,key)
    if (dist < ring_distance(self_key_, key) && dist > best_dist) {
      best = &d;
      best_dist = dist;
    }
  }
  return best;
}

void TChord::lookup(ChordKey key, LookupCallback callback) {
  const std::uint64_t lookup_id = next_lookup_id_++;
  PendingLookup pending;
  pending.key = key;
  pending.callback = std::move(callback);
  pending.started_at = clock_.now();
  pending.attempts = 1;
  if (telemetry::FlightRecorder* fr = tel_.flight(); fr != nullptr && fr->enabled()) {
    pending.trace_root =
        fr->new_root(telemetry::TraceLayer::kChord, ppss_.self().value,
                     "key=" + std::to_string(key));
  }
  const std::uint64_t trace_root = pending.trace_root;
  pending_lookups_[lookup_id] = std::move(pending);
  arm_lookup_timer(lookup_id);
  ++stats_.lookups_sent;
  m_sent_.add(1);
  telemetry::TraceContext root_ctx;
  root_ctx.root = trace_root;
  telemetry::ScopedTraceContext guard(tel_.flight(), root_ctx);
  route_or_serve(key, lookup_id, self_descriptor(), 0);
}

void TChord::arm_lookup_timer(std::uint64_t lookup_id) {
  auto& pending = pending_lookups_[lookup_id];
  pending.timeout_timer = clock_.schedule_after(config_.lookup_timeout, [this, lookup_id] {
    auto it = pending_lookups_.find(lookup_id);
    if (it == pending_lookups_.end()) return;
    if (it->second.attempts <= config_.lookup_retries) {
      // Retry: descriptors refresh with every gossip cycle, so a second
      // dispatch often routes around the stale hop.
      ++it->second.attempts;
      const ChordKey key = it->second.key;
      const std::uint64_t trace_root = it->second.trace_root;
      arm_lookup_timer(lookup_id);
      telemetry::TraceContext root_ctx;
      root_ctx.root = trace_root;
      telemetry::ScopedTraceContext guard(tel_.flight(), root_ctx);
      route_or_serve(key, lookup_id, self_descriptor(), 0);
      return;
    }
    auto cb = std::move(it->second.callback);
    if (telemetry::FlightRecorder* fr = tel_.flight();
        fr != nullptr && fr->enabled() && it->second.trace_root != 0) {
      fr->end(it->second.trace_root, ppss_.self().value, clock_.now(), "timeout",
              static_cast<std::uint16_t>(it->second.attempts), 0);
    }
    pending_lookups_.erase(it);
    ++stats_.lookups_timed_out;
    m_timed_out_.add(1);
    tel_.instant("chord.lookup.timeout", "chord", clock_.now());
    cb(std::nullopt);
  });
}

void TChord::route_or_serve(ChordKey key, std::uint64_t lookup_id,
                            const ChordDescriptor& origin, std::uint32_t hops) {
  const bool we_are_origin = origin.id() == ppss_.self();

  if (owns(key) || hops >= config_.lookup_hop_limit) {
    if (we_are_origin) {
      // Local hit: we own the key ourselves; complete immediately.
      auto it = pending_lookups_.find(lookup_id);
      if (it == pending_lookups_.end()) return;
      if (it->second.timeout_timer != 0) clock_.cancel(it->second.timeout_timer);
      auto cb = std::move(it->second.callback);
      const net::Time rtt = clock_.now() - it->second.started_at;
      if (telemetry::FlightRecorder* fr = tel_.flight();
          fr != nullptr && fr->enabled() && it->second.trace_root != 0) {
        fr->end(it->second.trace_root, ppss_.self().value, clock_.now(), "completed",
                static_cast<std::uint16_t>(it->second.attempts), rtt);
      }
      pending_lookups_.erase(it);
      ++stats_.lookups_answered;
      m_answered_.add(1);
      m_hops_.observe(static_cast<double>(hops));
      m_rtt_.observe(static_cast<double>(rtt));
      cb(LookupResult{self_descriptor(), hops, rtt});
      return;
    }
    // We are the owner: answer the origin directly with one WCL path (its
    // descriptor, including helpers, travelled with the query).
    ++stats_.lookups_served;
    m_served_.add(1);
    Writer w;
    w.u8(kKindLookupResp);
    w.u64(lookup_id);
    w.u32(hops);
    self_descriptor().serialize(w);
    ppss_.send_app_to(origin.peer, w.data(), kChordAppId);
    return;
  }

  const ChordDescriptor* next = closest_preceding(key);
  if (next == nullptr) {
    auto s = successor();
    if (!s) return;
    next = &candidates_.find(s->key)->second;
  }

  Writer w;
  w.u8(kKindLookupReq);
  w.u64(lookup_id);
  w.u64(key);
  w.u32(hops + 1);
  origin.serialize(w);
  ++stats_.forwards;
  m_forwards_.add(1);
  // Prefer the PPSS private view's descriptor when it knows the hop: its
  // helper set is refreshed every PPSS cycle, while ring candidates can
  // carry helpers from several cycles ago.
  if (auto fresh = ppss_.resolve(next->id())) {
    ppss_.send_app_to(*fresh, w.data(), kChordAppId);
  } else {
    ppss_.send_app_to(next->peer, w.data(), kChordAppId);
  }
}

void TChord::handle_lookup_request(Reader& r) {
  const std::uint64_t lookup_id = r.u64();
  const ChordKey key = r.u64();
  const std::uint32_t hops = r.u32();
  auto origin = ChordDescriptor::deserialize(r);
  if (!origin || !r.expect_done()) {
    reject_frame(r);
    return;
  }
  route_or_serve(key, lookup_id, *origin, hops);
}

void TChord::handle_lookup_response(Reader& r) {
  const std::uint64_t lookup_id = r.u64();
  const std::uint32_t hops = r.u32();
  auto owner = ChordDescriptor::deserialize(r);
  if (!owner || !r.expect_done()) {
    reject_frame(r);
    return;
  }
  auto it = pending_lookups_.find(lookup_id);
  if (it == pending_lookups_.end()) return;
  if (it->second.timeout_timer != 0) clock_.cancel(it->second.timeout_timer);
  auto cb = std::move(it->second.callback);
  const net::Time rtt = clock_.now() - it->second.started_at;
  if (telemetry::FlightRecorder* fr = tel_.flight();
      fr != nullptr && fr->enabled() && it->second.trace_root != 0) {
    fr->end(it->second.trace_root, ppss_.self().value, clock_.now(), "completed",
            static_cast<std::uint16_t>(it->second.attempts), rtt);
  }
  pending_lookups_.erase(it);
  ++stats_.lookups_answered;
  m_answered_.add(1);
  m_hops_.observe(static_cast<double>(hops));
  m_rtt_.observe(static_cast<double>(rtt));
  // One trace row per resolved lookup, spanning dispatch->answer.
  tel_.complete("chord.lookup", "chord", clock_.now() - rtt, rtt,
                {{"hops", std::to_string(hops)}});
  cb(LookupResult{*owner, hops, rtt});
}

}  // namespace whisper::chord

#include "faults/script.hpp"

#include <cctype>
#include <charconv>
#include <fstream>
#include <sstream>

namespace whisper::faults {

namespace {

bool parse_kind(std::string_view token, FaultKind& out) {
  for (int i = 0; i <= static_cast<int>(FaultKind::kByzFabricate); ++i) {
    const auto k = static_cast<FaultKind>(i);
    if (token == fault_kind_name(k)) {
      out = k;
      return true;
    }
  }
  return false;
}

bool parse_double(std::string_view token, double& out) {
  // std::from_chars<double> is still spotty across stdlibs; go through stod.
  try {
    std::size_t used = 0;
    out = std::stod(std::string(token), &used);
    return used == token.size();
  } catch (...) {
    return false;
  }
}

bool parse_size(std::string_view token, std::size_t& out) {
  auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), out);
  return ec == std::errc{} && ptr == token.data() + token.size();
}

}  // namespace

bool parse_duration(std::string_view token, net::Time& out) {
  if (!token.empty() && token.front() == '+') token.remove_prefix(1);
  if (token.empty()) return false;

  std::size_t digits = 0;
  while (digits < token.size() &&
         (std::isdigit(static_cast<unsigned char>(token[digits])) != 0 ||
          token[digits] == '.')) {
    ++digits;
  }
  if (digits == 0) return false;

  double value = 0;
  if (!parse_double(token.substr(0, digits), value)) return false;

  const std::string_view unit = token.substr(digits);
  double scale = net::kSecond;  // bare numbers are seconds
  if (unit == "us") scale = net::kMicrosecond;
  else if (unit == "ms") scale = net::kMillisecond;
  else if (unit == "s" || unit.empty()) scale = net::kSecond;
  else if (unit == "m") scale = net::kMinute;
  else return false;

  out = static_cast<net::Time>(value * scale);
  return true;
}

ScriptParseResult parse_script(std::string_view text) {
  ScriptParseResult result;
  std::istringstream lines{std::string(text)};
  std::string line;
  int line_no = 0;

  auto fail = [&](const std::string& what) {
    result.error = "line " + std::to_string(line_no) + ": " + what;
    result.specs.clear();
    return result;
  };

  while (std::getline(lines, line)) {
    ++line_no;
    if (auto hash = line.find('#'); hash != std::string::npos) line.resize(hash);

    std::istringstream fields{line};
    std::string kind_tok, start_tok, end_tok;
    if (!(fields >> kind_tok)) continue;  // blank / comment-only line
    if (!(fields >> start_tok >> end_tok)) return fail("expected: <kind> <start> <end>");

    FaultSpec spec;
    if (!parse_kind(kind_tok, spec.kind)) return fail("unknown kind '" + kind_tok + "'");
    if (!parse_duration(start_tok, spec.start)) {
      return fail("bad start time '" + start_tok + "'");
    }
    if (end_tok == "-" || end_tok == "0") {
      spec.end = 0;
    } else if (end_tok.front() == '+') {
      net::Time dur = 0;
      if (!parse_duration(end_tok, dur)) return fail("bad duration '" + end_tok + "'");
      spec.end = spec.start + dur;
    } else {
      if (!parse_duration(end_tok, spec.end)) return fail("bad end time '" + end_tok + "'");
      if (spec.end <= spec.start) return fail("end must be after start");
    }

    std::string kv;
    while (fields >> kv) {
      const auto eq = kv.find('=');
      if (eq == std::string::npos) return fail("expected key=value, got '" + kv + "'");
      const std::string key = kv.substr(0, eq);
      const std::string value = kv.substr(eq + 1);
      bool ok = false;
      if (key == "fraction") {
        ok = parse_double(value, spec.fraction) && spec.fraction >= 0 &&
             spec.fraction <= 1;
      } else if (key == "probability") {
        ok = parse_double(value, spec.probability) && spec.probability >= 0 &&
             spec.probability <= 1;
      } else if (key == "delay") {
        ok = parse_duration(value, spec.delay);
      } else if (key == "count") {
        ok = parse_size(value, spec.count);
      } else if (key == "symmetric") {
        spec.symmetric = value != "0" && value != "false";
        ok = true;
      } else if (key == "rate") {
        ok = parse_double(value, spec.rate) && spec.rate >= 0;
      } else {
        return fail("unknown key '" + key + "'");
      }
      if (!ok) return fail("bad value for '" + key + "': '" + value + "'");
    }
    result.specs.push_back(spec);
  }
  return result;
}

ScriptParseResult parse_script_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    ScriptParseResult result;
    result.error = "cannot open '" + path + "'";
    return result;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_script(buf.str());
}

}  // namespace whisper::faults

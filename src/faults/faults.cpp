#include "faults/faults.hpp"

#include <algorithm>
#include <cmath>

#include "common/serialize.hpp"
#include "pss/contact.hpp"

namespace whisper::faults {

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kPartition: return "partition";
    case FaultKind::kLoss: return "loss";
    case FaultKind::kDelay: return "delay";
    case FaultKind::kDuplicate: return "duplicate";
    case FaultKind::kReorder: return "reorder";
    case FaultKind::kCorrupt: return "corrupt";
    case FaultKind::kPause: return "pause";
    case FaultKind::kNatReset: return "natreset";
    case FaultKind::kCrash: return "crash";
    case FaultKind::kByzTruncate: return "byztruncate";
    case FaultKind::kByzOversize: return "byzoversize";
    case FaultKind::kByzBitflip: return "byzbitflip";
    case FaultKind::kByzReplay: return "byzreplay";
    case FaultKind::kByzFlood: return "byzflood";
    case FaultKind::kByzFabricate: return "byzfabricate";
  }
  return "unknown";
}

bool is_byzantine(FaultKind k) {
  return k >= FaultKind::kByzTruncate && k <= FaultKind::kByzFabricate;
}

namespace {

bool is_oneshot(FaultKind k) {
  return k == FaultKind::kNatReset || k == FaultKind::kCrash;
}

/// Captured frames a kByzReplay actor remembers (per active fault).
constexpr std::size_t kReplayRingCap = 128;

// Wire-format constants mirrored from nylon::Transport. The fabric models an
// *attacker* that understands the public framing of the stack it attacks —
// it parses frames with its own knowledge of the format rather than linking
// against the protocol code, exactly like a real hostile implementation.
constexpr std::uint8_t kNylonMsgData = 1;  // nylon MsgType::kData
constexpr std::uint8_t kNylonTagPss = 1;   // nylon kTagPss

/// kByzFabricate: if `payload` is a transport-framed PSS gossip message,
/// rewrite every view entry after the sender's own leading card with an
/// invented member id, and re-serialize in place. The leading entry is kept
/// intact because receivers reject frames whose first card does not match
/// the transport-level sender. Returns false (payload untouched) when the
/// frame is not PSS gossip.
bool fabricate_pss_entries(Bytes& payload, Rng& rng) {
  Reader r(payload);
  if (r.u8() != kNylonMsgData) return false;
  const NodeId from = r.node_id();
  const std::uint32_t incarnation = r.u32();  // sender's restart epoch
  const bool relayed = r.boolean();
  const Endpoint observed = r.endpoint();
  if (r.u8() != kNylonTagPss) return false;
  if (!r.ok()) return false;

  const std::uint8_t kind = r.u8();
  const std::uint32_t seq = r.u32();
  const std::uint32_t count = r.u16();
  std::vector<pss::ContactCard> cards;
  std::vector<std::uint32_t> ages;
  for (std::uint32_t i = 0; i < count && r.ok(); ++i) {
    cards.push_back(pss::ContactCard::deserialize(r));
    ages.push_back(r.u32());
  }
  const Bytes extra = r.bytes();
  if (!r.expect_done() || cards.size() < 2) return false;

  for (std::size_t i = 1; i < cards.size(); ++i) {
    // Invented identities in a range no honest deployment allocates; the
    // reachability info stays plausible so receivers waste view slots and
    // exchange attempts on them.
    cards[i].id = NodeId{0x8000000000000000ull | rng.next_u64()};
    ages[i] = 0;  // look freshly gossiped
  }

  Writer w;
  w.u8(kNylonMsgData);
  w.node_id(from);
  w.u32(incarnation);  // preserved: a mismatch would out the forgery
  w.boolean(relayed);
  w.endpoint(observed);
  w.u8(kNylonTagPss);
  w.u8(kind);
  w.u32(seq);
  w.u16(static_cast<std::uint16_t>(cards.size()));
  for (std::size_t i = 0; i < cards.size(); ++i) {
    cards[i].serialize(w);
    w.u32(ages[i]);
  }
  w.bytes(extra);
  payload = std::move(w).take();
  return true;
}

/// Deterministic order for set-valued state (unordered containers iterate in
/// hash order, which must never leak into scheduling decisions).
std::vector<Endpoint> sorted(std::vector<Endpoint> eps) {
  std::sort(eps.begin(), eps.end());
  return eps;
}

}  // namespace

FaultFabric::FaultFabric(net::Clock& clock, net::Stack& net, Environment env, Rng rng,
                         telemetry::Scope telemetry)
    : clock_(clock), net_(net), env_(std::move(env)), rng_(rng), tel_(telemetry),
      m_dropped_(tel_.counter("faults.packets.dropped")),
      m_delayed_(tel_.counter("faults.packets.delayed")),
      m_duplicated_(tel_.counter("faults.packets.duplicated")),
      m_corrupted_(tel_.counter("faults.packets.corrupted")),
      m_queued_(tel_.counter("faults.packets.queued")),
      m_flushed_(tel_.counter("faults.packets.flushed")),
      m_crashes_(tel_.counter("faults.nodes.crashed")),
      m_nat_resets_(tel_.counter("faults.nat.resets")),
      m_activations_(tel_.counter("faults.activations")),
      m_byz_mutated_(tel_.counter("faults.byz.mutated")),
      m_byz_replayed_(tel_.counter("faults.byz.replayed")),
      m_byz_flooded_(tel_.counter("faults.byz.flooded")),
      m_byz_fabricated_(tel_.counter("faults.byz.fabricated")) {
  net_.set_fault_interposer(this);
}

FaultFabric::~FaultFabric() {
  for (net::TimerId t : timers_) clock_.cancel(t);
  for (ActiveFault& f : active_) {
    if (f.tick_timer != 0) clock_.cancel(f.tick_timer);
  }
  net_.set_fault_interposer(nullptr);
}

void FaultFabric::schedule(const FaultSpec& spec) {
  timers_.push_back(clock_.schedule_at(spec.start, [this, spec] {
    if (is_oneshot(spec.kind)) {
      fire_oneshot(spec);
    } else {
      activate(spec);
    }
  }));
}

void FaultFabric::schedule_all(const std::vector<FaultSpec>& specs) {
  for (const auto& s : specs) schedule(s);
}

std::vector<Endpoint> FaultFabric::pick_victims(const FaultSpec& spec,
                                                std::vector<Endpoint> pool) {
  if (!spec.targets_a.empty()) return spec.targets_a;
  pool = sorted(std::move(pool));
  rng_.shuffle(pool);
  if (pool.size() > spec.count) pool.resize(spec.count);
  return pool;
}

void FaultFabric::activate(FaultSpec spec) {
  ActiveFault f;
  f.id = next_id_++;
  f.spec = spec;

  if (spec.kind == FaultKind::kPartition && spec.targets_a.empty()) {
    // Bisection: deterministic split of the live population at activation
    // time. Nodes joining mid-window land in neither side (unaffected).
    std::vector<Endpoint> pool =
        sorted(env_.live_endpoints ? env_.live_endpoints() : std::vector<Endpoint>{});
    rng_.shuffle(pool);
    const std::size_t cut =
        static_cast<std::size_t>(static_cast<double>(pool.size()) * spec.fraction);
    for (std::size_t i = 0; i < pool.size(); ++i) {
      (i < cut ? f.side_a : f.side_b).insert(pool[i]);
    }
  } else if (spec.kind == FaultKind::kPause) {
    for (Endpoint ep :
         pick_victims(spec, env_.live_endpoints ? env_.live_endpoints()
                                                : std::vector<Endpoint>{})) {
      f.side_a.insert(ep);
      pause(ep);
    }
  } else if (is_byzantine(spec.kind) && spec.targets_a.empty()) {
    // Draw the misbehaving actors deterministically from the live
    // population: `count` nodes, or ceil(fraction * live) when count is 0
    // (the natural way to say "10% of the deployment is hostile").
    std::vector<Endpoint> pool =
        sorted(env_.live_endpoints ? env_.live_endpoints() : std::vector<Endpoint>{});
    rng_.shuffle(pool);
    const std::size_t n =
        spec.count > 0
            ? spec.count
            : static_cast<std::size_t>(
                  std::ceil(static_cast<double>(pool.size()) * spec.fraction));
    if (pool.size() > n) pool.resize(n);
    f.side_a.insert(pool.begin(), pool.end());
  } else {
    f.side_a.insert(spec.targets_a.begin(), spec.targets_a.end());
    f.side_b.insert(spec.targets_b.begin(), spec.targets_b.end());
  }

  m_activations_.add(1);
  tel_.instant("fault.activate", "faults", clock_.now(),
               {{"kind", fault_kind_name(spec.kind)}});

  const std::uint64_t id = f.id;
  active_.push_back(std::move(f));
  if (spec.end > spec.start) {
    timers_.push_back(clock_.schedule_at(spec.end, [this, id] { deactivate(id); }));
  }
  // Actors that *originate* traffic (replay re-injection, garbage floods)
  // run on a per-fault periodic timer derived from spec.rate.
  if ((spec.kind == FaultKind::kByzReplay || spec.kind == FaultKind::kByzFlood) &&
      spec.rate > 0) {
    const auto interval = std::max<net::Time>(
        1, static_cast<net::Time>(static_cast<double>(net::kSecond) / spec.rate));
    active_.back().tick_timer =
        clock_.schedule_after(interval, [this, id] { byz_tick(id); });
  }
}

void FaultFabric::deactivate(std::uint64_t id) {
  auto it = std::find_if(active_.begin(), active_.end(),
                         [&](const ActiveFault& f) { return f.id == id; });
  if (it == active_.end()) return;
  if (it->spec.kind == FaultKind::kPause) {
    for (Endpoint ep : sorted({it->side_a.begin(), it->side_a.end()})) resume(ep);
  }
  if (it->tick_timer != 0) clock_.cancel(it->tick_timer);
  tel_.instant("fault.deactivate", "faults", clock_.now(),
               {{"kind", fault_kind_name(it->spec.kind)}});
  active_.erase(it);
}

void FaultFabric::byz_tick(std::uint64_t id) {
  auto it = std::find_if(active_.begin(), active_.end(),
                         [&](const ActiveFault& f) { return f.id == id; });
  if (it == active_.end()) return;
  ActiveFault& f = *it;
  f.tick_timer = 0;

  // Deterministic actor order (side_a is hash-ordered).
  for (Endpoint actor : sorted({f.side_a.begin(), f.side_a.end()})) {
    if (f.spec.kind == FaultKind::kByzFlood) {
      // Flood the relay population — the WCL's scarce resource — falling
      // back to arbitrary live nodes before any relaying starts.
      std::vector<Endpoint> pool =
          env_.relay_endpoints ? env_.relay_endpoints() : std::vector<Endpoint>{};
      if (pool.empty() && env_.live_endpoints) pool = env_.live_endpoints();
      pool = sorted(std::move(pool));
      if (pool.empty()) continue;
      const Endpoint target = pool[rng_.pick_index(pool)];
      if (target == actor) continue;
      Bytes garbage(64 + rng_.next_below(1337));
      rng_.fill_bytes(garbage.data(), garbage.size());
      net_.send(actor, target, std::move(garbage), net::Proto::kWcl);
      ++stats_.byz_flooded;
      m_byz_flooded_.add(1);
    } else if (f.spec.kind == FaultKind::kByzReplay) {
      if (f.ring.empty()) continue;
      const CapturedFrame& cap = f.ring[rng_.pick_index(f.ring)];
      net_.send(cap.src, cap.dst, cap.payload, cap.proto);
      ++stats_.byz_replayed;
      m_byz_replayed_.add(1);
    }
  }

  if (f.spec.rate > 0) {
    const auto interval = std::max<net::Time>(
        1, static_cast<net::Time>(static_cast<double>(net::kSecond) / f.spec.rate));
    f.tick_timer = clock_.schedule_after(interval, [this, id] { byz_tick(id); });
  }
}

void FaultFabric::fire_oneshot(const FaultSpec& spec) {
  m_activations_.add(1);
  tel_.instant("fault.activate", "faults", clock_.now(),
               {{"kind", fault_kind_name(spec.kind)}});
  if (spec.kind == FaultKind::kCrash) {
    if (!env_.crash_node) return;
    // Crash relays in priority: the nodes whose loss actually exercises
    // failover. Fall back to arbitrary live nodes when none relay yet.
    std::vector<Endpoint> pool =
        env_.relay_endpoints ? env_.relay_endpoints() : std::vector<Endpoint>{};
    if (pool.empty() && env_.live_endpoints) pool = env_.live_endpoints();
    for (Endpoint ep : pick_victims(spec, std::move(pool))) {
      env_.crash_node(ep);
      ++stats_.nodes_crashed;
      m_crashes_.add(1);
    }
  } else if (spec.kind == FaultKind::kNatReset) {
    if (!env_.reset_nat) return;
    for (Endpoint ep : pick_victims(spec, env_.live_endpoints
                                              ? env_.live_endpoints()
                                              : std::vector<Endpoint>{})) {
      env_.reset_nat(ep);
      ++stats_.nat_resets;
      m_nat_resets_.add(1);
    }
  }
}

void FaultFabric::pause(Endpoint ep) {
  if (paused_.insert(ep).second) ++stats_.nodes_paused;
}

void FaultFabric::resume(Endpoint ep) {
  if (paused_.erase(ep) == 0) return;
  auto it = pause_queues_.find(ep);
  if (it == pause_queues_.end()) return;
  // Flush in arrival order: the node processes its backlog on recovery.
  std::deque<QueuedPacket> queue = std::move(it->second);
  pause_queues_.erase(it);
  for (auto& q : queue) {
    ++stats_.packets_flushed;
    m_flushed_.add(1);
    net_.redeliver(q.internal_dst, std::move(q.dgram));
  }
}

void FaultFabric::note_fault(const net::Datagram& dgram, Endpoint node, FaultKind kind) {
  telemetry::FlightRecorder* fr = tel_.flight();
  if (fr == nullptr || !fr->enabled() || !dgram.trace.valid()) return;
  fr->fault(dgram.trace, fr->node_of(node), clock_.now(), fault_kind_name(kind));
}

bool FaultFabric::matches(const ActiveFault& f, Endpoint src, Endpoint dst) {
  const bool src_a = f.side_a.empty() || f.side_a.contains(src);
  const bool dst_b = f.side_b.empty() || f.side_b.contains(dst);
  if (src_a && dst_b) return true;
  if (!f.spec.symmetric) return false;
  const bool src_b = f.side_b.empty() || f.side_b.contains(src);
  const bool dst_a = f.side_a.empty() || f.side_a.contains(dst);
  return src_b && dst_a;
}

FaultFabric::WireVerdict FaultFabric::on_wire(Endpoint internal_src, net::Datagram& dgram) {
  WireVerdict verdict;
  if (active_.empty()) return verdict;
  for (ActiveFault& f : active_) {
    // Wire-stage kinds target the *sender* side (side_a; empty = any):
    // congestion, duplication and corruption happen on the uplink. The
    // Byzantine kinds also act here — a misbehaving peer mangles its own
    // outbound frames.
    if (!f.side_a.empty() && !f.side_a.contains(internal_src)) continue;
    switch (f.spec.kind) {
      case FaultKind::kDelay:
        if (rng_.next_bool(f.spec.probability)) {
          verdict.extra_delay += f.spec.delay;
          ++stats_.packets_delayed;
          m_delayed_.add(1);
          note_fault(dgram, internal_src, FaultKind::kDelay);
        }
        break;
      case FaultKind::kReorder:
        // Random extra delay reorders packets relative to later sends.
        if (f.spec.delay > 0 && rng_.next_bool(f.spec.probability)) {
          verdict.extra_delay += rng_.next_below(f.spec.delay);
          ++stats_.packets_delayed;
          m_delayed_.add(1);
          note_fault(dgram, internal_src, FaultKind::kReorder);
        }
        break;
      case FaultKind::kDuplicate:
        if (rng_.next_bool(f.spec.probability)) {
          ++verdict.copies;
          ++stats_.packets_duplicated;
          m_duplicated_.add(1);
          note_fault(dgram, internal_src, FaultKind::kDuplicate);
        }
        break;
      case FaultKind::kCorrupt:
        if (!dgram.payload.empty() && rng_.next_bool(f.spec.probability)) {
          const std::uint64_t bit = rng_.next_below(dgram.payload.size() * 8);
          dgram.payload[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
          ++stats_.packets_corrupted;
          m_corrupted_.add(1);
          note_fault(dgram, internal_src, FaultKind::kCorrupt);
        }
        break;
      case FaultKind::kByzTruncate:
        // Emit a strict prefix: exercises every kTruncated decode path.
        if (!dgram.payload.empty() && rng_.next_bool(f.spec.probability)) {
          dgram.payload.resize(rng_.next_below(dgram.payload.size()));
          ++stats_.byz_truncated;
          m_byz_mutated_.add(1);
          note_fault(dgram, internal_src, FaultKind::kByzTruncate);
        }
        break;
      case FaultKind::kByzOversize:
        if (rng_.next_bool(f.spec.probability)) {
          if (!dgram.payload.empty() && rng_.next_bool(0.5)) {
            // Clobber four bytes with 0xFF — forges huge length prefixes,
            // exercising the kOversized / kBadLength caps.
            const std::size_t at = rng_.next_below(dgram.payload.size());
            const std::size_t stop = std::min(at + 4, dgram.payload.size());
            for (std::size_t i = at; i < stop; ++i) dgram.payload[i] = 0xFF;
          } else {
            // Append trailing junk — exercises kTrailingBytes rejection.
            const std::size_t extra = 16 + rng_.next_below(497);
            const std::size_t old = dgram.payload.size();
            dgram.payload.resize(old + extra);
            rng_.fill_bytes(dgram.payload.data() + old, extra);
          }
          ++stats_.byz_oversized;
          m_byz_mutated_.add(1);
          note_fault(dgram, internal_src, FaultKind::kByzOversize);
        }
        break;
      case FaultKind::kByzBitflip:
        // Heavier than kCorrupt's single bit: 1-8 flips per frame.
        if (!dgram.payload.empty() && rng_.next_bool(f.spec.probability)) {
          const std::uint64_t flips = 1 + rng_.next_below(8);
          for (std::uint64_t i = 0; i < flips; ++i) {
            const std::uint64_t bit = rng_.next_below(dgram.payload.size() * 8);
            dgram.payload[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
          }
          ++stats_.byz_bitflipped;
          m_byz_mutated_.add(1);
          note_fault(dgram, internal_src, FaultKind::kByzBitflip);
        }
        break;
      case FaultKind::kByzReplay: {
        // Capture now, re-inject later from byz_tick. Bounded ring: the
        // newest frame overwrites the oldest once full.
        CapturedFrame cap{internal_src, dgram.dst, dgram.payload, dgram.proto};
        if (f.ring.size() < kReplayRingCap) {
          f.ring.push_back(std::move(cap));
        } else {
          f.ring[f.ring_next] = std::move(cap);
          f.ring_next = (f.ring_next + 1) % kReplayRingCap;
        }
        ++stats_.byz_captured;
        break;
      }
      case FaultKind::kByzFabricate:
        if (rng_.next_bool(f.spec.probability) &&
            fabricate_pss_entries(dgram.payload, rng_)) {
          ++stats_.byz_fabricated;
          m_byz_fabricated_.add(1);
          note_fault(dgram, internal_src, FaultKind::kByzFabricate);
        }
        break;
      default:
        break;  // partition/loss/pause act at delivery; oneshots never here
    }
  }
  return verdict;
}

FaultFabric::Gate FaultFabric::on_deliver(Endpoint internal_src, Endpoint internal_dst,
                                          const net::Datagram& dgram) {
  if (paused_.contains(internal_dst)) {
    pause_queues_[internal_dst].push_back(QueuedPacket{internal_dst, dgram});
    ++stats_.packets_queued;
    m_queued_.add(1);
    note_fault(dgram, internal_dst, FaultKind::kPause);
    return Gate::kQueue;
  }
  for (const ActiveFault& f : active_) {
    switch (f.spec.kind) {
      case FaultKind::kPartition:
        // Cut both directions between the two sides. A bisection fills both
        // sides; a pairwise cut lists the exact endpoints.
        if ((f.side_a.contains(internal_src) && f.side_b.contains(internal_dst)) ||
            (f.side_a.contains(internal_dst) && f.side_b.contains(internal_src))) {
          ++stats_.packets_dropped;
          m_dropped_.add(1);
          note_fault(dgram, internal_dst, FaultKind::kPartition);
          return Gate::kDrop;
        }
        break;
      case FaultKind::kLoss:
        if (matches(f, internal_src, internal_dst) &&
            rng_.next_bool(f.spec.probability)) {
          ++stats_.packets_dropped;
          m_dropped_.add(1);
          note_fault(dgram, internal_dst, FaultKind::kLoss);
          return Gate::kDrop;
        }
        break;
      default:
        break;
    }
  }
  return Gate::kDeliver;
}

}  // namespace whisper::faults

#include "faults/faults.hpp"

#include <algorithm>

namespace whisper::faults {

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kPartition: return "partition";
    case FaultKind::kLoss: return "loss";
    case FaultKind::kDelay: return "delay";
    case FaultKind::kDuplicate: return "duplicate";
    case FaultKind::kReorder: return "reorder";
    case FaultKind::kCorrupt: return "corrupt";
    case FaultKind::kPause: return "pause";
    case FaultKind::kNatReset: return "natreset";
    case FaultKind::kCrash: return "crash";
  }
  return "unknown";
}

namespace {

bool is_oneshot(FaultKind k) {
  return k == FaultKind::kNatReset || k == FaultKind::kCrash;
}

/// Deterministic order for set-valued state (unordered containers iterate in
/// hash order, which must never leak into scheduling decisions).
std::vector<Endpoint> sorted(std::vector<Endpoint> eps) {
  std::sort(eps.begin(), eps.end());
  return eps;
}

}  // namespace

FaultFabric::FaultFabric(sim::Simulator& sim, sim::Network& net, Environment env, Rng rng,
                         telemetry::Scope telemetry)
    : sim_(sim), net_(net), env_(std::move(env)), rng_(rng), tel_(telemetry),
      m_dropped_(tel_.counter("faults.packets.dropped")),
      m_delayed_(tel_.counter("faults.packets.delayed")),
      m_duplicated_(tel_.counter("faults.packets.duplicated")),
      m_corrupted_(tel_.counter("faults.packets.corrupted")),
      m_queued_(tel_.counter("faults.packets.queued")),
      m_flushed_(tel_.counter("faults.packets.flushed")),
      m_crashes_(tel_.counter("faults.nodes.crashed")),
      m_nat_resets_(tel_.counter("faults.nat.resets")),
      m_activations_(tel_.counter("faults.activations")) {
  net_.set_fault_interposer(this);
}

FaultFabric::~FaultFabric() {
  for (sim::TimerId t : timers_) sim_.cancel(t);
  net_.set_fault_interposer(nullptr);
}

void FaultFabric::schedule(const FaultSpec& spec) {
  timers_.push_back(sim_.schedule_at(spec.start, [this, spec] {
    if (is_oneshot(spec.kind)) {
      fire_oneshot(spec);
    } else {
      activate(spec);
    }
  }));
}

void FaultFabric::schedule_all(const std::vector<FaultSpec>& specs) {
  for (const auto& s : specs) schedule(s);
}

std::vector<Endpoint> FaultFabric::pick_victims(const FaultSpec& spec,
                                                std::vector<Endpoint> pool) {
  if (!spec.targets_a.empty()) return spec.targets_a;
  pool = sorted(std::move(pool));
  rng_.shuffle(pool);
  if (pool.size() > spec.count) pool.resize(spec.count);
  return pool;
}

void FaultFabric::activate(FaultSpec spec) {
  ActiveFault f;
  f.id = next_id_++;
  f.spec = spec;

  if (spec.kind == FaultKind::kPartition && spec.targets_a.empty()) {
    // Bisection: deterministic split of the live population at activation
    // time. Nodes joining mid-window land in neither side (unaffected).
    std::vector<Endpoint> pool =
        sorted(env_.live_endpoints ? env_.live_endpoints() : std::vector<Endpoint>{});
    rng_.shuffle(pool);
    const std::size_t cut =
        static_cast<std::size_t>(static_cast<double>(pool.size()) * spec.fraction);
    for (std::size_t i = 0; i < pool.size(); ++i) {
      (i < cut ? f.side_a : f.side_b).insert(pool[i]);
    }
  } else if (spec.kind == FaultKind::kPause) {
    for (Endpoint ep :
         pick_victims(spec, env_.live_endpoints ? env_.live_endpoints()
                                                : std::vector<Endpoint>{})) {
      f.side_a.insert(ep);
      pause(ep);
    }
  } else {
    f.side_a.insert(spec.targets_a.begin(), spec.targets_a.end());
    f.side_b.insert(spec.targets_b.begin(), spec.targets_b.end());
  }

  m_activations_.add(1);
  tel_.instant("fault.activate", "faults", sim_.now(),
               {{"kind", fault_kind_name(spec.kind)}});

  const std::uint64_t id = f.id;
  active_.push_back(std::move(f));
  if (spec.end > spec.start) {
    timers_.push_back(sim_.schedule_at(spec.end, [this, id] { deactivate(id); }));
  }
}

void FaultFabric::deactivate(std::uint64_t id) {
  auto it = std::find_if(active_.begin(), active_.end(),
                         [&](const ActiveFault& f) { return f.id == id; });
  if (it == active_.end()) return;
  if (it->spec.kind == FaultKind::kPause) {
    for (Endpoint ep : sorted({it->side_a.begin(), it->side_a.end()})) resume(ep);
  }
  tel_.instant("fault.deactivate", "faults", sim_.now(),
               {{"kind", fault_kind_name(it->spec.kind)}});
  active_.erase(it);
}

void FaultFabric::fire_oneshot(const FaultSpec& spec) {
  m_activations_.add(1);
  tel_.instant("fault.activate", "faults", sim_.now(),
               {{"kind", fault_kind_name(spec.kind)}});
  if (spec.kind == FaultKind::kCrash) {
    if (!env_.crash_node) return;
    // Crash relays in priority: the nodes whose loss actually exercises
    // failover. Fall back to arbitrary live nodes when none relay yet.
    std::vector<Endpoint> pool =
        env_.relay_endpoints ? env_.relay_endpoints() : std::vector<Endpoint>{};
    if (pool.empty() && env_.live_endpoints) pool = env_.live_endpoints();
    for (Endpoint ep : pick_victims(spec, std::move(pool))) {
      env_.crash_node(ep);
      ++stats_.nodes_crashed;
      m_crashes_.add(1);
    }
  } else if (spec.kind == FaultKind::kNatReset) {
    if (!env_.reset_nat) return;
    for (Endpoint ep : pick_victims(spec, env_.live_endpoints
                                              ? env_.live_endpoints()
                                              : std::vector<Endpoint>{})) {
      env_.reset_nat(ep);
      ++stats_.nat_resets;
      m_nat_resets_.add(1);
    }
  }
}

void FaultFabric::pause(Endpoint ep) {
  if (paused_.insert(ep).second) ++stats_.nodes_paused;
}

void FaultFabric::resume(Endpoint ep) {
  if (paused_.erase(ep) == 0) return;
  auto it = pause_queues_.find(ep);
  if (it == pause_queues_.end()) return;
  // Flush in arrival order: the node processes its backlog on recovery.
  std::deque<QueuedPacket> queue = std::move(it->second);
  pause_queues_.erase(it);
  for (auto& q : queue) {
    ++stats_.packets_flushed;
    m_flushed_.add(1);
    net_.redeliver(q.internal_dst, std::move(q.dgram));
  }
}

void FaultFabric::note_fault(const sim::Datagram& dgram, Endpoint node, FaultKind kind) {
  telemetry::FlightRecorder* fr = tel_.flight();
  if (fr == nullptr || !fr->enabled() || !dgram.trace.valid()) return;
  fr->fault(dgram.trace, fr->node_of(node), sim_.now(), fault_kind_name(kind));
}

bool FaultFabric::matches(const ActiveFault& f, Endpoint src, Endpoint dst) {
  const bool src_a = f.side_a.empty() || f.side_a.contains(src);
  const bool dst_b = f.side_b.empty() || f.side_b.contains(dst);
  if (src_a && dst_b) return true;
  if (!f.spec.symmetric) return false;
  const bool src_b = f.side_b.empty() || f.side_b.contains(src);
  const bool dst_a = f.side_a.empty() || f.side_a.contains(dst);
  return src_b && dst_a;
}

FaultFabric::WireVerdict FaultFabric::on_wire(Endpoint internal_src, sim::Datagram& dgram) {
  WireVerdict verdict;
  if (active_.empty()) return verdict;
  for (const ActiveFault& f : active_) {
    // Wire-stage kinds target the *sender* side (side_a; empty = any):
    // congestion, duplication and corruption happen on the uplink.
    if (!f.side_a.empty() && !f.side_a.contains(internal_src)) continue;
    switch (f.spec.kind) {
      case FaultKind::kDelay:
        if (rng_.next_bool(f.spec.probability)) {
          verdict.extra_delay += f.spec.delay;
          ++stats_.packets_delayed;
          m_delayed_.add(1);
          note_fault(dgram, internal_src, FaultKind::kDelay);
        }
        break;
      case FaultKind::kReorder:
        // Random extra delay reorders packets relative to later sends.
        if (f.spec.delay > 0 && rng_.next_bool(f.spec.probability)) {
          verdict.extra_delay += rng_.next_below(f.spec.delay);
          ++stats_.packets_delayed;
          m_delayed_.add(1);
          note_fault(dgram, internal_src, FaultKind::kReorder);
        }
        break;
      case FaultKind::kDuplicate:
        if (rng_.next_bool(f.spec.probability)) {
          ++verdict.copies;
          ++stats_.packets_duplicated;
          m_duplicated_.add(1);
          note_fault(dgram, internal_src, FaultKind::kDuplicate);
        }
        break;
      case FaultKind::kCorrupt:
        if (!dgram.payload.empty() && rng_.next_bool(f.spec.probability)) {
          const std::uint64_t bit = rng_.next_below(dgram.payload.size() * 8);
          dgram.payload[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
          ++stats_.packets_corrupted;
          m_corrupted_.add(1);
          note_fault(dgram, internal_src, FaultKind::kCorrupt);
        }
        break;
      default:
        break;  // partition/loss/pause act at delivery; oneshots never here
    }
  }
  return verdict;
}

FaultFabric::Gate FaultFabric::on_deliver(Endpoint internal_src, Endpoint internal_dst,
                                          const sim::Datagram& dgram) {
  if (paused_.contains(internal_dst)) {
    pause_queues_[internal_dst].push_back(QueuedPacket{internal_dst, dgram});
    ++stats_.packets_queued;
    m_queued_.add(1);
    note_fault(dgram, internal_dst, FaultKind::kPause);
    return Gate::kQueue;
  }
  for (const ActiveFault& f : active_) {
    switch (f.spec.kind) {
      case FaultKind::kPartition:
        // Cut both directions between the two sides. A bisection fills both
        // sides; a pairwise cut lists the exact endpoints.
        if ((f.side_a.contains(internal_src) && f.side_b.contains(internal_dst)) ||
            (f.side_a.contains(internal_dst) && f.side_b.contains(internal_src))) {
          ++stats_.packets_dropped;
          m_dropped_.add(1);
          note_fault(dgram, internal_dst, FaultKind::kPartition);
          return Gate::kDrop;
        }
        break;
      case FaultKind::kLoss:
        if (matches(f, internal_src, internal_dst) &&
            rng_.next_bool(f.spec.probability)) {
          ++stats_.packets_dropped;
          m_dropped_.add(1);
          note_fault(dgram, internal_dst, FaultKind::kLoss);
          return Gate::kDrop;
        }
        break;
      default:
        break;
    }
  }
  return Gate::kDeliver;
}

}  // namespace whisper::faults

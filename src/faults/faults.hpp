// Deterministic fault-injection fabric.
//
// The paper's headline claims are about behaviour under adversity (route
// success under churn, NAT-constrained reachability, lossy PlanetLab
// links). The churn engine scripts only population turnover; this module
// scripts *everything else that goes wrong in real deployments*:
//
//   partition   bisection or explicit-pair link cuts (both directions)
//   loss        loss episodes on matching links, optionally asymmetric
//   delay       delay-spike windows (congestion, bufferbloat)
//   duplicate   duplicated datagrams (retransmitting middleboxes)
//   reorder     random extra per-packet delay (path flaps)
//   corrupt     single-bit payload corruption on the wire
//   pause       gray failure: node attached but not processing; inbound
//               packets queue and flush on resume
//   natreset    NAT device reboot: all mappings and filter state dropped
//   crash       kill nodes currently acting as relays (churn the exact
//               nodes the WCL depends on)
//
// The fabric interposes on sim::Network through the FaultInterposer hook
// (same shape as the NAT AddressTranslator) and targets nodes by their
// *internal* endpoints, so NATted nodes are addressable. All randomness
// flows from one forked Rng: same seed, same script => byte-identical runs.
// Faults are scripted as FaultSpec phases, like churn::ChurnPhase.
#pragma once

#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "net/spi.hpp"
#include "telemetry/scope.hpp"

namespace whisper::faults {

enum class FaultKind : std::uint8_t {
  kPartition = 0,
  kLoss = 1,
  kDelay = 2,
  kDuplicate = 3,
  kReorder = 4,
  kCorrupt = 5,
  kPause = 6,
  kNatReset = 7,
  kCrash = 8,
  // --- Byzantine peer behaviours. ---
  // The targeted nodes *misbehave* instead of failing: their outbound
  // traffic is mutated, captured and replayed, or they originate hostile
  // traffic of their own. Windowed like the benign kinds; actors are drawn
  // deterministically from the live population (count, or fraction when
  // count=0). Same seed, same script => byte-identical runs.
  kByzTruncate = 9,    // emit truncated frames (strict prefixes)
  kByzOversize = 10,   // append junk / forge length prefixes
  kByzBitflip = 11,    // flip 1-8 payload bits (deliberate malformation)
  kByzReplay = 12,     // capture own frames, re-inject them periodically
  kByzFlood = 13,      // blast garbage at relays at `rate` pkts/s/actor
  kByzFabricate = 14,  // rewrite own PSS gossip with invented members
};

const char* fault_kind_name(FaultKind k);

/// True for the kByz* kinds (misbehaving-peer model).
bool is_byzantine(FaultKind k);

/// One scripted fault. Windowed kinds are active in [start, end); kNatReset
/// and kCrash are one-shots firing at `start`. When `targets_a`/`targets_b`
/// are empty the affected nodes are drawn deterministically from the live
/// population at activation time (bisection split / random sample).
struct FaultSpec {
  FaultKind kind = FaultKind::kLoss;
  net::Time start = 0;
  net::Time end = 0;
  /// Bisection: fraction of live nodes on side A (kPartition with empty
  /// targets).
  double fraction = 0.5;
  /// Per-packet probability (kLoss, kDuplicate, kReorder, kCorrupt).
  double probability = 1.0;
  /// Extra one-way delay added per packet (kDelay), or the jitter ceiling
  /// for kReorder's uniform extra delay.
  net::Time delay = 0;
  /// Nodes affected (kPause, kNatReset, kCrash).
  std::size_t count = 1;
  /// kLoss only: when false, only A->B packets are affected (asymmetric
  /// episode); partitions always cut both directions.
  bool symmetric = true;
  /// Byzantine actors only: injected packets per second per actor
  /// (kByzReplay re-injection and kByzFlood garbage). <= 0 disables the
  /// periodic injection (mutation kinds are unaffected).
  double rate = 10.0;
  /// Explicit targets. For kPartition: side A vs side B (pairwise cuts).
  /// For kLoss/kDelay/kDuplicate/kReorder/kCorrupt: restrict to packets
  /// from A to B (empty set = any). For kPause/kNatReset/kCrash: the exact
  /// victims (targets_a).
  std::vector<Endpoint> targets_a;
  std::vector<Endpoint> targets_b;
};

class FaultFabric : public net::FaultInterposer {
 public:
  /// Deployment hooks the fabric drives; all optional (a missing hook turns
  /// the corresponding fault kind into a no-op).
  struct Environment {
    /// Internal endpoints of all live nodes.
    std::function<std::vector<Endpoint>()> live_endpoints;
    /// Internal endpoints of live nodes currently relaying for others.
    std::function<std::vector<Endpoint>()> relay_endpoints;
    /// Churn-kill the node bound at this endpoint.
    std::function<void(Endpoint)> crash_node;
    /// Reset the NAT device in front of this endpoint.
    std::function<void(Endpoint)> reset_nat;
  };

  FaultFabric(net::Clock& clock, net::Stack& net, Environment env, Rng rng,
              telemetry::Scope telemetry = {});
  ~FaultFabric() override;

  FaultFabric(const FaultFabric&) = delete;
  FaultFabric& operator=(const FaultFabric&) = delete;

  /// Schedule one fault (activation/deactivation timers on the simulator).
  void schedule(const FaultSpec& spec);
  void schedule_all(const std::vector<FaultSpec>& specs);

  /// Immediate pause/resume of a node (also reachable via kPause specs).
  void pause(Endpoint ep);
  void resume(Endpoint ep);
  bool paused(Endpoint ep) const { return paused_.contains(ep); }

  /// True when no fault window is active and nothing is queued — the
  /// steady-state fast path consulted on every packet.
  bool idle() const { return active_.empty() && paused_.empty(); }

  struct Stats {
    std::uint64_t packets_dropped = 0;    // partitions + loss episodes
    std::uint64_t packets_delayed = 0;    // delay spikes + reordering
    std::uint64_t packets_duplicated = 0;
    std::uint64_t packets_corrupted = 0;
    std::uint64_t packets_queued = 0;     // held for paused nodes
    std::uint64_t packets_flushed = 0;    // re-injected on resume
    std::uint64_t nodes_paused = 0;
    std::uint64_t nodes_crashed = 0;
    std::uint64_t nat_resets = 0;
    // Byzantine-actor activity.
    std::uint64_t byz_truncated = 0;
    std::uint64_t byz_oversized = 0;
    std::uint64_t byz_bitflipped = 0;
    std::uint64_t byz_captured = 0;    // frames recorded in replay rings
    std::uint64_t byz_replayed = 0;
    std::uint64_t byz_flooded = 0;
    std::uint64_t byz_fabricated = 0;
  };
  const Stats& stats() const { return stats_; }

  // net::FaultInterposer:
  WireVerdict on_wire(Endpoint internal_src, net::Datagram& dgram) override;
  Gate on_deliver(Endpoint internal_src, Endpoint internal_dst,
                  const net::Datagram& dgram) override;

 private:
  /// A frame recorded by a kByzReplay actor, re-injectable verbatim.
  struct CapturedFrame {
    Endpoint src;
    Endpoint dst;
    Bytes payload;
    net::Proto proto = net::Proto::kApp;
  };

  struct ActiveFault {
    std::uint64_t id = 0;
    FaultSpec spec;
    // Resolved membership at activation time (bisection snapshot / sampled
    // victims); explicit targets copied through.
    std::unordered_set<Endpoint> side_a;
    std::unordered_set<Endpoint> side_b;
    /// kByzReplay: bounded ring of captured frames (oldest overwritten).
    std::vector<CapturedFrame> ring;
    std::size_t ring_next = 0;
    /// kByzReplay / kByzFlood periodic injection timer.
    net::TimerId tick_timer = 0;
  };

  void activate(FaultSpec spec);
  void deactivate(std::uint64_t id);
  void fire_oneshot(const FaultSpec& spec);
  /// Periodic injection for kByzReplay / kByzFlood actors.
  void byz_tick(std::uint64_t id);
  /// Deterministic victim sample: explicit targets if given, else `count`
  /// nodes drawn from `pool` after a seeded shuffle.
  std::vector<Endpoint> pick_victims(const FaultSpec& spec, std::vector<Endpoint> pool);
  static bool matches(const ActiveFault& f, Endpoint src, Endpoint dst);
  /// Attribute an injection to the packet's flight record (no-op when the
  /// packet is untraced or the recorder is off) — this is what lets
  /// `whisper_trace faults` say *which* fault killed or delayed a message.
  void note_fault(const net::Datagram& dgram, Endpoint node, FaultKind kind);

  net::Clock& clock_;
  net::Stack& net_;
  Environment env_;
  Rng rng_;

  std::vector<ActiveFault> active_;
  std::uint64_t next_id_ = 1;
  /// Activation/deactivation timers, cancelled on destruction so no pending
  /// simulator event can touch a dead fabric.
  std::vector<net::TimerId> timers_;

  std::unordered_set<Endpoint> paused_;
  struct QueuedPacket {
    Endpoint internal_dst;
    net::Datagram dgram;
  };
  std::unordered_map<Endpoint, std::deque<QueuedPacket>> pause_queues_;

  Stats stats_;

  telemetry::Scope tel_;
  telemetry::Counter& m_dropped_;
  telemetry::Counter& m_delayed_;
  telemetry::Counter& m_duplicated_;
  telemetry::Counter& m_corrupted_;
  telemetry::Counter& m_queued_;
  telemetry::Counter& m_flushed_;
  telemetry::Counter& m_crashes_;
  telemetry::Counter& m_nat_resets_;
  telemetry::Counter& m_activations_;
  telemetry::Counter& m_byz_mutated_;
  telemetry::Counter& m_byz_replayed_;
  telemetry::Counter& m_byz_flooded_;
  telemetry::Counter& m_byz_fabricated_;
};

}  // namespace whisper::faults

// Text format for fault scripts (the `--faults <file>` tool flag).
//
// One fault per line:
//
//   <kind> <start> <end-or-duration> [key=value ...]
//
//   # 2-minute network bisection starting at t=5min
//   partition 5m +2m fraction=0.5
//   # asymmetric 30% loss episode
//   loss 8m +1m probability=0.3 symmetric=0
//   # 200ms delay spike on every packet
//   delay 10m +30s delay=200ms probability=1.0
//   # crash 3 relay nodes (one-shot: no end field, use "-")
//   crash 12m - count=3
//   natreset 14m - count=5
//   pause 16m +45s count=2
//
// Times accept suffixes us/ms/s/m (default: seconds). An end field of "-"
// or "0" means a one-shot / open window; "+<dur>" is relative to start.
// Keys: fraction, probability, delay, count, symmetric (0/1). Lines
// starting with '#' and blank lines are ignored.
#pragma once

#include <string>
#include <vector>

#include "faults/faults.hpp"

namespace whisper::faults {

struct ScriptParseResult {
  std::vector<FaultSpec> specs;
  /// Empty on success; otherwise "line N: <what>".
  std::string error;
  bool ok() const { return error.empty(); }
};

/// Parse a script from text.
ScriptParseResult parse_script(std::string_view text);

/// Parse a script file; error is set if the file cannot be read.
ScriptParseResult parse_script_file(const std::string& path);

/// Parse one duration/time token ("150ms", "2m", "30", "+45s"). Returns
/// false on malformed input. A leading '+' is accepted and ignored (callers
/// handle relative semantics).
bool parse_duration(std::string_view token, sim::Time& out);

}  // namespace whisper::faults

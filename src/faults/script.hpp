// Text format for fault scripts (the `--faults <file>` tool flag).
//
// One fault per line:
//
//   <kind> <start> <end-or-duration> [key=value ...]
//
//   # 2-minute network bisection starting at t=5min
//   partition 5m +2m fraction=0.5
//   # asymmetric 30% loss episode
//   loss 8m +1m probability=0.3 symmetric=0
//   # 200ms delay spike on every packet
//   delay 10m +30s delay=200ms probability=1.0
//   # crash 3 relay nodes (one-shot: no end field, use "-")
//   crash 12m - count=3
//   natreset 14m - count=5
//   pause 16m +45s count=2
//   # 10% of the deployment truncates its own frames for 5 minutes
//   byztruncate 5m +5m fraction=0.1 probability=0.5 count=0
//   # 3 actors capture and replay their own traffic at 5 pkts/s each
//   byzreplay 5m +5m count=3 rate=5
//   # 2 actors flood the relays with garbage at 20 pkts/s each
//   byzflood 6m +2m count=2 rate=20
//   byzfabricate 8m +4m fraction=0.15 count=0
//
// Times accept suffixes us/ms/s/m (default: seconds). An end field of "-"
// or "0" means a one-shot / open window; "+<dur>" is relative to start.
// Keys: fraction, probability, delay, count, symmetric (0/1), rate
// (Byzantine injection packets/sec/actor; count=0 means fraction-sized
// actor sets for byz kinds). Lines starting with '#' and blank lines are
// ignored.
#pragma once

#include <string>
#include <vector>

#include "faults/faults.hpp"

namespace whisper::faults {

struct ScriptParseResult {
  std::vector<FaultSpec> specs;
  /// Empty on success; otherwise "line N: <what>".
  std::string error;
  bool ok() const { return error.empty(); }
};

/// Parse a script from text.
ScriptParseResult parse_script(std::string_view text);

/// Parse a script file; error is set if the file cannot be read.
ScriptParseResult parse_script_file(const std::string& path);

/// Parse one duration/time token ("150ms", "2m", "30", "+45s"). Returns
/// false on malformed input. A leading '+' is accepted and ignored (callers
/// handle relative semantics).
bool parse_duration(std::string_view token, net::Time& out);

}  // namespace whisper::faults

#include "sim/simulator.hpp"

#include <algorithm>
#include <cassert>

namespace whisper::sim {

namespace {
// A thousand-node deployment keeps a few events in flight per node; start
// with room for that so steady-state scheduling never reallocates.
constexpr std::size_t kInitialCapacity = 4096;
}  // namespace

Simulator::Simulator(std::uint64_t seed) : rng_(seed) {
  events_.reserve(kInitialCapacity);
  slots_.reserve(kInitialCapacity);
  free_slots_.reserve(kInitialCapacity);
}

void Simulator::attach_telemetry(telemetry::Registry& registry) {
  executed_counter_ = &registry.counter("sim.events.executed");
  cancelled_counter_ = &registry.counter("sim.events.cancelled");
  depth_gauge_ = &registry.gauge("sim.queue.depth");
}

std::uint32_t Simulator::claim_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t s = free_slots_.back();
    free_slots_.pop_back();
    return s;
  }
  slots_.push_back(Slot{});
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Simulator::retire_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.live = false;
  if (++s.gen == 0) s.gen = 1;  // keep ids non-zero across generation wrap
  free_slots_.push_back(slot);
  --live_count_;
}

bool Simulator::stale(TimerId id) const {
  const std::uint32_t slot = static_cast<std::uint32_t>(id);
  const std::uint32_t gen = static_cast<std::uint32_t>(id >> 32);
  if (slot >= slots_.size()) return true;
  const Slot& s = slots_[slot];
  return !s.live || s.gen != gen;
}

void Simulator::drop_stale_front() {
  while (!events_.empty() && stale(events_.front().id)) {
    std::pop_heap(events_.begin(), events_.end(), Later{});
    events_.pop_back();
  }
}

TimerId Simulator::schedule_at(Time at, std::function<void()> fn) {
  return schedule_keyed(at, UINT64_MAX, next_seq_, std::move(fn));
}

TimerId Simulator::schedule_keyed(Time at, std::uint64_t ka, std::uint64_t kb,
                                  std::function<void()> fn) {
  assert(at >= now_);
  const std::uint32_t slot = claim_slot();
  Slot& s = slots_[slot];
  s.live = true;
  ++live_count_;
  const TimerId id = make_id(slot, s.gen);
  events_.push_back(Event{at, ka, kb, next_seq_++, id, std::move(fn)});
  std::push_heap(events_.begin(), events_.end(), Later{});
  return id;
}

TimerId Simulator::schedule_after(Time delay, std::function<void()> fn) {
  return schedule_at(now_ + delay, std::move(fn));
}

void Simulator::cancel(TimerId id) {
  // Only ids naming a pending event can be cancelled; anything else
  // (already fired, already cancelled, never scheduled) is a stale
  // generation and a no-op — pending_events() cannot drift. The heap entry
  // stays behind and is dropped when it reaches the front.
  if (stale(id)) return;
  retire_slot(static_cast<std::uint32_t>(id));
  ++cancelled_total_;
  if (cancelled_counter_ != nullptr) cancelled_counter_->add(1);
}

bool Simulator::step() {
  drop_stale_front();
  if (events_.empty()) return false;
  std::pop_heap(events_.begin(), events_.end(), Later{});
  Event ev = std::move(events_.back());
  events_.pop_back();
  retire_slot(static_cast<std::uint32_t>(ev.id));
  now_ = ev.at;
  ++executed_;
  if (executed_counter_ != nullptr) executed_counter_->add(1);
  if (depth_gauge_ != nullptr) {
    depth_gauge_->set(static_cast<double>(pending_events()));
  }
  ev.fn();
  return true;
}

void Simulator::run_until(Time t) {
  for (;;) {
    drop_stale_front();
    if (events_.empty() || events_.front().at > t) break;
    step();
  }
  now_ = t;
}

Time Simulator::next_event_at() {
  drop_stale_front();
  return events_.empty() ? UINT64_MAX : events_.front().at;
}

void Simulator::run_until_before(Time t) {
  for (;;) {
    drop_stale_front();
    if (events_.empty() || events_.front().at >= t) break;
    step();
  }
  now_ = t;
}

void Simulator::run() {
  while (step()) {
  }
}

}  // namespace whisper::sim

#include "sim/simulator.hpp"

#include <cassert>

namespace whisper::sim {

Simulator::Simulator(std::uint64_t seed) : rng_(seed) {}

void Simulator::attach_telemetry(telemetry::Registry& registry) {
  executed_counter_ = &registry.counter("sim.events.executed");
  cancelled_counter_ = &registry.counter("sim.events.cancelled");
  depth_gauge_ = &registry.gauge("sim.queue.depth");
}

TimerId Simulator::schedule_at(Time at, std::function<void()> fn) {
  assert(at >= now_);
  const TimerId id = next_id_++;
  queue_.push(Event{at, next_seq_++, id, std::move(fn)});
  live_ids_.insert(id);
  return id;
}

TimerId Simulator::schedule_after(Time delay, std::function<void()> fn) {
  return schedule_at(now_ + delay, std::move(fn));
}

void Simulator::cancel(TimerId id) {
  // Only ids still in the queue can be cancelled; anything else (already
  // fired, already cancelled, never scheduled) is a no-op. This keeps
  // `cancelled_` in exact sync with the queue, so pending_events() cannot
  // drift.
  if (live_ids_.erase(id) == 0) return;
  cancelled_.insert(id);
  ++cancelled_total_;
  if (cancelled_counter_ != nullptr) cancelled_counter_->add(1);
}

bool Simulator::step() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (auto it = cancelled_.find(ev.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    live_ids_.erase(ev.id);
    now_ = ev.at;
    ++executed_;
    if (executed_counter_ != nullptr) executed_counter_->add(1);
    if (depth_gauge_ != nullptr) {
      depth_gauge_->set(static_cast<double>(pending_events()));
    }
    ev.fn();
    return true;
  }
  return false;
}

void Simulator::run_until(Time t) {
  while (!queue_.empty() && queue_.top().at <= t) {
    if (!step()) break;
  }
  now_ = t;
}

void Simulator::run() {
  while (step()) {
  }
}

}  // namespace whisper::sim

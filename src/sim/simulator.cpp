#include "sim/simulator.hpp"

#include <cassert>

namespace whisper::sim {

Simulator::Simulator(std::uint64_t seed) : rng_(seed) {}

TimerId Simulator::schedule_at(Time at, std::function<void()> fn) {
  assert(at >= now_);
  const TimerId id = next_id_++;
  queue_.push(Event{at, next_seq_++, id, std::move(fn)});
  return id;
}

TimerId Simulator::schedule_after(Time delay, std::function<void()> fn) {
  return schedule_at(now_ + delay, std::move(fn));
}

void Simulator::cancel(TimerId id) { cancelled_.insert(id); }

bool Simulator::step() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (auto it = cancelled_.find(ev.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    now_ = ev.at;
    ++executed_;
    ev.fn();
    return true;
  }
  return false;
}

void Simulator::run_until(Time t) {
  while (!queue_.empty() && queue_.top().at <= t) {
    if (!step()) break;
  }
  now_ = t;
}

void Simulator::run() {
  while (step()) {
  }
}

}  // namespace whisper::sim

// Discrete-event simulation core.
//
// Replaces the paper's physical testbeds (cluster + PlanetLab): protocol
// stacks run in-process against a virtual clock, so a thousand-node
// deployment executes deterministically on one machine. See DESIGN.md §2.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "net/spi.hpp"
#include "telemetry/registry.hpp"

namespace whisper::sim {

/// Virtual time in microseconds. The canonical types live in net/time.hpp
/// (shared with the real-network backend); sim:: keeps the historical
/// spellings.
using Time = net::Time;

inline constexpr Time kMicrosecond = net::kMicrosecond;
inline constexpr Time kMillisecond = net::kMillisecond;
inline constexpr Time kSecond = net::kSecond;
inline constexpr Time kMinute = net::kMinute;

/// Handle for cancelling a scheduled event. Encodes (generation << 32 |
/// slot); generations start at 1, so a valid id is never 0 — protocol code
/// uses 0 as a "no timer armed" sentinel.
using TimerId = net::TimerId;

/// Event-loop with a virtual clock, and the simulator-side implementation
/// of the transport SPI's timer service (net::Clock). Events scheduled for
/// the same instant fire in scheduling order (stable), which keeps runs
/// deterministic.
///
/// Cancellation bookkeeping is a slot/generation scheme rather than hash
/// sets: each pending event owns a slot in a pooled table, and its TimerId
/// carries the slot's generation at scheduling time. cancel() is an O(1)
/// array probe (the heap entry is dropped lazily when it surfaces), step()
/// is pure O(log n) heap work — no hashing on either path.
class Simulator : public net::Clock {
 public:
  explicit Simulator(std::uint64_t seed = 1);

  Time now() const override { return now_; }
  Rng& rng() { return rng_; }

  /// Schedule `fn` to run at absolute virtual time `at` (>= now).
  TimerId schedule_at(Time at, std::function<void()> fn) override;
  /// Schedule `fn` to run `delay` from now.
  TimerId schedule_after(Time delay, std::function<void()> fn) override;

  /// Schedule with an explicit canonical ordering key. Events at the same
  /// timestamp fire in (ka, kb) order, before any plain-scheduled event at
  /// that timestamp (plain events carry ka = UINT64_MAX). The sharded
  /// engine uses this for message deliveries — the key is derived from the
  /// sender's identity and per-sender wire sequence, which is invariant
  /// under shard count, so a delivery sorts identically whether it arrived
  /// through a cross-shard channel or was scheduled locally.
  TimerId schedule_keyed(Time at, std::uint64_t ka, std::uint64_t kb,
                         std::function<void()> fn);
  /// Cancel a pending event; no-op if already fired or cancelled.
  void cancel(TimerId id) override;

  /// Run the next event; false if the queue is empty.
  bool step();
  /// Run all events with timestamp <= t, then advance the clock to t.
  void run_until(Time t);
  /// Run all events with timestamp strictly < t, then advance the clock to
  /// t. The sharded engine's window primitive: a lockstep window [ws, we)
  /// must NOT execute events at exactly `we`, because a cross-shard message
  /// drained at the window barrier may be due at precisely that instant and
  /// has to sort against the local queue before anything at `we` runs.
  void run_until_before(Time t);
  /// Run until the event queue drains.
  void run();

  /// Timestamp of the earliest pending event, UINT64_MAX when idle. Drops
  /// cancelled entries sitting at the heap front as a side effect. The
  /// sharded engine uses this to skip lockstep windows in which no shard
  /// has work (conservative "lookahead jump").
  Time next_event_at();

  std::size_t pending_events() const { return live_count_; }
  std::uint64_t executed_events() const { return executed_; }
  std::uint64_t cancelled_events() const { return cancelled_total_; }

  /// Register event-loop metrics on `registry` (sim.events.executed,
  /// sim.events.cancelled counters; sim.queue.depth gauge updated per
  /// step). Telemetry reads never influence scheduling, so attaching it
  /// cannot perturb determinism.
  void attach_telemetry(telemetry::Registry& registry);

 private:
  struct Event {
    Time at;
    std::uint64_t ka;   // canonical key, major (UINT64_MAX for plain timers)
    std::uint64_t kb;   // canonical key, minor (== seq for plain timers)
    std::uint64_t seq;  // tie-breaker: FIFO among same-time, same-key events
    TimerId id;
    std::function<void()> fn;
  };
  /// Min-heap order on (at, ka, kb, seq) for std::push_heap/pop_heap (which
  /// build max-heaps, hence the inverted comparison). Plain timers carry
  /// (ka, kb) = (UINT64_MAX, seq), so among themselves the order is exactly
  /// the historical (at, seq) FIFO.
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      if (a.ka != b.ka) return a.ka > b.ka;
      if (a.kb != b.kb) return a.kb > b.kb;
      return a.seq > b.seq;
    }
  };

  /// One entry per event slot. `gen` is bumped every time the slot retires
  /// (fire or cancel), so TimerIds minted for earlier occupants go stale.
  struct Slot {
    std::uint32_t gen = 1;
    bool live = false;
  };

  static TimerId make_id(std::uint32_t slot, std::uint32_t gen) {
    return (static_cast<TimerId>(gen) << 32) | slot;
  }

  std::uint32_t claim_slot();
  /// Free a slot and invalidate outstanding ids for it.
  void retire_slot(std::uint32_t slot);
  /// True if `id` no longer names a pending event (fired/cancelled/unknown).
  bool stale(TimerId id) const;
  /// Drop cancelled entries sitting at the heap front so callers can trust
  /// events_.front() to be a pending event.
  void drop_stale_front();

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t cancelled_total_ = 0;
  std::vector<Event> events_;  // binary heap, storage reserved up front
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t live_count_ = 0;
  Rng rng_;
  telemetry::Counter* executed_counter_ = nullptr;
  telemetry::Counter* cancelled_counter_ = nullptr;
  telemetry::Gauge* depth_gauge_ = nullptr;
};

}  // namespace whisper::sim

// Discrete-event simulation core.
//
// Replaces the paper's physical testbeds (cluster + PlanetLab): protocol
// stacks run in-process against a virtual clock, so a thousand-node
// deployment executes deterministically on one machine. See DESIGN.md §2.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "telemetry/registry.hpp"

namespace whisper::sim {

/// Virtual time in microseconds.
using Time = std::uint64_t;

inline constexpr Time kMicrosecond = 1;
inline constexpr Time kMillisecond = 1000;
inline constexpr Time kSecond = 1'000'000;
inline constexpr Time kMinute = 60 * kSecond;

/// Handle for cancelling a scheduled event.
using TimerId = std::uint64_t;

/// Event-loop with a virtual clock. Events scheduled for the same instant
/// fire in scheduling order (stable), which keeps runs deterministic.
class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1);

  Time now() const { return now_; }
  Rng& rng() { return rng_; }

  /// Schedule `fn` to run at absolute virtual time `at` (>= now).
  TimerId schedule_at(Time at, std::function<void()> fn);
  /// Schedule `fn` to run `delay` from now.
  TimerId schedule_after(Time delay, std::function<void()> fn);
  /// Cancel a pending event; no-op if already fired or cancelled.
  void cancel(TimerId id);

  /// Run the next event; false if the queue is empty.
  bool step();
  /// Run all events with timestamp <= t, then advance the clock to t.
  void run_until(Time t);
  /// Run until the event queue drains.
  void run();

  std::size_t pending_events() const { return queue_.size() - cancelled_.size(); }
  std::uint64_t executed_events() const { return executed_; }
  std::uint64_t cancelled_events() const { return cancelled_total_; }

  /// Register event-loop metrics on `registry` (sim.events.executed,
  /// sim.events.cancelled counters; sim.queue.depth gauge updated per
  /// step). Telemetry reads never influence scheduling, so attaching it
  /// cannot perturb determinism.
  void attach_telemetry(telemetry::Registry& registry);

 private:
  struct Event {
    Time at;
    std::uint64_t seq;  // tie-breaker: FIFO among same-time events
    TimerId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  TimerId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::uint64_t cancelled_total_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  // Ids still in the queue. cancel() consults this so a cancel of an
  // already-fired (or never-scheduled) id cannot linger in `cancelled_`
  // and skew pending_events().
  std::unordered_set<TimerId> live_ids_;
  std::unordered_set<TimerId> cancelled_;
  Rng rng_;
  telemetry::Counter* executed_counter_ = nullptr;
  telemetry::Counter* cancelled_counter_ = nullptr;
  telemetry::Gauge* depth_gauge_ = nullptr;
};

}  // namespace whisper::sim

#include "sim/latency.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

namespace whisper::sim {

namespace {

// Deterministic per-pair value in [0,1): both directions hash identically so
// delays are symmetric.
double pair_uniform(Endpoint a, Endpoint b) {
  std::uint64_t x = std::uint64_t{std::min(a.ip, b.ip)} << 32 | std::max(a.ip, b.ip);
  x ^= 0x2545f4914f6cdd1dULL;
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return static_cast<double>(x >> 11) * (1.0 / 9007199254740992.0);
}

// Inverse normal CDF approximation (Acklam) for turning the pair hash into a
// consistent lognormal base delay.
double inv_norm_cdf(double p) {
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425, phigh = 1 - plow;
  if (p < plow) {
    const double q = std::sqrt(-2 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  if (p > phigh) {
    const double q = std::sqrt(-2 * std::log(1 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  const double q = p - 0.5, r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1);
}

}  // namespace

std::optional<Time> ClusterLatency::sample(Endpoint, Endpoint, Rng& rng) {
  return 100 + rng.next_below(400);  // 100..500 us
}

std::optional<Time> PlanetLabLatency::sample(Endpoint from, Endpoint to, Rng& rng) {
  if (rng.next_bool(loss_probability_)) return std::nullopt;
  // Per-pair base: lognormal(ln 40ms, 0.8), clamped into [5ms, 400ms].
  double u = pair_uniform(from, to);
  u = std::min(std::max(u, 1e-9), 1.0 - 1e-9);
  double base_ms = std::exp(std::log(40.0) + 0.8 * inv_norm_cdf(u));
  base_ms = std::min(std::max(base_ms, 5.0), 400.0);
  // Per-packet jitter: base * (1 + Exp(1/0.15)), occasionally heavy (loaded
  // PlanetLab machines).
  const double jitter = rng.next_exponential(1.0 / 0.15);
  const double total_ms = base_ms * (1.0 + jitter);
  return static_cast<Time>(total_ms * static_cast<double>(kMillisecond));
}

std::unique_ptr<LatencyModel> make_latency_model(const std::string& name) {
  if (name == "fixed") return std::make_unique<FixedLatency>(kMillisecond);
  if (name == "cluster") return std::make_unique<ClusterLatency>();
  if (name == "planetlab") return std::make_unique<PlanetLabLatency>();
  throw std::invalid_argument("unknown latency model: " + name);
}

}  // namespace whisper::sim

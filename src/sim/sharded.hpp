// Sharded parallel simulation engine: conservative parallel discrete-event
// simulation (PDES) over S single-threaded shards.
//
// Each shard owns a plain Simulator + Network pair and a disjoint subset of
// the nodes. Time advances in lockstep windows no wider than the latency
// model's lower bound: within a window every shard runs its own event heap
// independently, because no message sent inside the window can be due
// before the window ends. Cross-shard messages travel through single-
// producer/single-consumer channels drained at the window barrier, and are
// re-scheduled on the owning shard under the same canonical (sender, wire
// sequence) heap key the S=1 engine uses — which is what makes same-seed
// runs byte-identical for every shard count (enforced by CI). See
// DESIGN.md §13.
//
// Windows are half-open [ws, we): a shard executes events strictly before
// `we` (Simulator::run_until_before), then the barrier drains channels, so
// a remote delivery due at exactly `we` is in the heap before anything at
// `we` runs. An epoch closes with one inclusive run_until(target) so
// boundary events at == target fire, matching run_until's S=1 semantics.
#pragma once

#include <atomic>
#include <barrier>
#include <cstdint>
#include <thread>
#include <vector>

#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace whisper::sim {

class ShardedEngine {
 public:
  struct Shard {
    Simulator* sim = nullptr;
    Network* net = nullptr;
  };

  /// `window` must be positive and no larger than the latency model's
  /// lower_bound(); the constructor clamps 0 up to 1µs and asserts the
  /// caller gave a sane value. Workers start immediately (none for S=1).
  ShardedEngine(std::vector<Shard> shards, Time window);
  ~ShardedEngine();

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  std::size_t shard_count() const { return shards_.size(); }
  Time window() const { return window_; }
  Time now() const { return now_; }

  /// Conservative lockstep run of every shard to absolute time `t`
  /// (inclusive, like Simulator::run_until). Blocks the calling thread;
  /// shard workers do the event execution. S=1 bypasses the window
  /// machinery entirely and runs inline.
  void run_until(Time t);

  /// Called from a shard's Network::forward hook (worker thread context):
  /// enqueue a wire traversal on the channel src -> dst. Never blocks; the
  /// channel is drained at the next window barrier.
  void enqueue(std::size_t src_shard, std::size_t dst_shard,
               Network::RemoteDelivery d);

  /// Sum of executed events across shards (safe between run_until calls).
  std::uint64_t executed_events() const;
  /// Total cross-shard messages forwarded so far.
  std::uint64_t cross_shard_messages() const {
    return cross_shard_total_.load(std::memory_order_relaxed);
  }

 private:
  enum class Cmd : std::uint8_t { kRun, kStop };

  void worker_loop(std::size_t s);
  /// Move every pending message addressed to shard `s` into its simulator.
  void drain_inboxes(std::size_t s);
  /// The per-epoch barrier schedule, identical on main and workers. `drain`
  /// and `publish` run between the two barriers of each window (the SPSC
  /// hand-off slot); main passes no-ops for all hooks and just keeps the
  /// barrier counts matched.
  template <typename RunWindow, typename RunClose, typename Drain, typename Publish>
  void epoch(Time start, Time target, RunWindow&& run_window, RunClose&& run_close,
             Drain&& drain, Publish&& publish);

  std::vector<Shard> shards_;
  Time window_;
  Time now_ = 0;

  // box_[src * S + dst]: written only by src's worker between barriers,
  // drained only by dst's worker in the barrier's drain phase — SPSC at
  // window granularity, synchronized by the barrier itself.
  std::vector<std::vector<Network::RemoteDelivery>> box_;
  std::atomic<std::uint64_t> cross_shard_total_{0};

  // next_at_[s]: shard s's earliest pending event, published between the
  // window barriers (same hand-off discipline as box_). All participants
  // min-reduce it after the barrier to jump over idle windows.
  std::vector<Time> next_at_;

  // Epoch command block, published by main before the start barrier.
  Cmd cmd_ = Cmd::kRun;
  Time epoch_start_ = 0;
  Time epoch_target_ = 0;

  std::barrier<> sync_;
  std::vector<std::thread> workers_;
};

}  // namespace whisper::sim

#include "sim/network.hpp"

#include <numeric>

namespace whisper::sim {

std::uint64_t TrafficCounters::total_up() const {
  return std::accumulate(std::begin(up), std::end(up), std::uint64_t{0});
}

std::uint64_t TrafficCounters::total_down() const {
  return std::accumulate(std::begin(down), std::end(down), std::uint64_t{0});
}

Network::Network(Simulator& sim, std::unique_ptr<LatencyModel> latency)
    : sim_(sim), latency_(std::move(latency)), rng_(sim.rng().fork()) {}

void Network::attach(Endpoint internal_ep, Handler handler) {
  handlers_[internal_ep] = std::move(handler);
}

void Network::detach(Endpoint internal_ep) { handlers_.erase(internal_ep); }

bool Network::attached(Endpoint internal_ep) const { return handlers_.contains(internal_ep); }

bool Network::send(Endpoint internal_src, Endpoint public_dst, Bytes payload, Proto proto) {
  Endpoint wire_src = internal_src;
  if (translator_ != nullptr) {
    auto mapped = translator_->outbound(internal_src, public_dst);
    if (!mapped) return false;
    wire_src = *mapped;
  }

  // Account upload at the sender regardless of eventual delivery: bytes
  // leave the sender's uplink either way.
  counters_[internal_src].up[static_cast<std::size_t>(proto)] += payload.size();
  ++packets_sent_;

  if (tap_) tap_(Datagram{wire_src, public_dst, payload, proto});

  auto delay = latency_->sample(wire_src, public_dst, rng_);
  if (!delay) return true;  // lost in transit

  Datagram dgram{wire_src, public_dst, std::move(payload), proto};
  sim_.schedule_after(*delay, [this, dgram = std::move(dgram)]() mutable {
    deliver(std::move(dgram));
  });
  return true;
}

void Network::deliver(Datagram dgram) {
  Endpoint internal_dst = dgram.dst;
  if (translator_ != nullptr) {
    auto mapped = translator_->inbound(dgram.dst, dgram.src);
    if (!mapped) return;  // filtered by the destination's NAT device
    internal_dst = *mapped;
  }
  auto it = handlers_.find(internal_dst);
  if (it == handlers_.end()) return;  // node departed

  counters_[internal_dst].down[static_cast<std::size_t>(dgram.proto)] += dgram.payload.size();
  ++packets_delivered_;
  it->second(dgram);
}

const TrafficCounters& Network::counters(Endpoint internal_ep) const {
  static const TrafficCounters kEmpty{};
  auto it = counters_.find(internal_ep);
  return it == counters_.end() ? kEmpty : it->second;
}

void Network::reset_counters() {
  counters_.clear();
  packets_sent_ = 0;
  packets_delivered_ = 0;
}

}  // namespace whisper::sim

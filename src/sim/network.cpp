#include "sim/network.hpp"

namespace whisper::sim {

const char* proto_name(Proto p) {
  switch (p) {
    case Proto::kPss: return "pss";
    case Proto::kKeys: return "keys";
    case Proto::kWcl: return "wcl";
    case Proto::kPpss: return "ppss";
    case Proto::kControl: return "control";
    case Proto::kApp: return "app";
    case Proto::kCount: break;
  }
  return "unknown";
}

std::uint64_t TrafficCounters::total_up() const {
  std::uint64_t total = 0;
  for (const auto* c : up) total += c != nullptr ? c->value() : 0;
  return total;
}

std::uint64_t TrafficCounters::total_down() const {
  std::uint64_t total = 0;
  for (const auto* c : down) total += c != nullptr ? c->value() : 0;
  return total;
}

telemetry::Labels Network::traffic_labels(Endpoint internal_ep, Proto proto,
                                          const char* dir) {
  return {{"node", internal_ep.str()}, {"proto", proto_name(proto)}, {"dir", dir}};
}

Network::Network(Simulator& sim, std::unique_ptr<LatencyModel> latency,
                 telemetry::Registry* registry)
    : sim_(sim), latency_(std::move(latency)),
      owned_registry_(registry == nullptr ? std::make_unique<telemetry::Registry>()
                                          : nullptr),
      registry_(registry != nullptr ? registry : owned_registry_.get()),
      rng_(sim.rng().fork()) {
  for (std::size_t i = 0; i < static_cast<std::size_t>(Proto::kCount); ++i) {
    const char* proto = proto_name(static_cast<Proto>(i));
    agg_up_[i] = &registry_->counter("net.bytes", {{"proto", proto}, {"dir", "up"}});
    agg_down_[i] = &registry_->counter("net.bytes", {{"proto", proto}, {"dir", "down"}});
  }
  packets_sent_c_ = &registry_->counter("net.packets.sent");
  packets_delivered_c_ = &registry_->counter("net.packets.delivered");
}

void Network::attach(Endpoint internal_ep, Handler handler) {
  handlers_[internal_ep] = std::move(handler);
}

void Network::detach(Endpoint internal_ep) { handlers_.erase(internal_ep); }

bool Network::attached(Endpoint internal_ep) const { return handlers_.contains(internal_ep); }

TrafficCounters& Network::counters_for(Endpoint internal_ep) {
  auto it = counters_.find(internal_ep);
  if (it != counters_.end()) return it->second;
  TrafficCounters tc;
  for (std::size_t i = 0; i < static_cast<std::size_t>(Proto::kCount); ++i) {
    const Proto p = static_cast<Proto>(i);
    tc.up[i] = &registry_->counter("net.node.bytes", traffic_labels(internal_ep, p, "up"));
    tc.down[i] =
        &registry_->counter("net.node.bytes", traffic_labels(internal_ep, p, "down"));
  }
  return counters_.emplace(internal_ep, tc).first->second;
}

bool Network::send(Endpoint internal_src, Endpoint public_dst, Bytes payload, Proto proto) {
  Endpoint wire_src = internal_src;
  if (translator_ != nullptr) {
    auto mapped = translator_->outbound(internal_src, public_dst);
    if (!mapped) return false;
    wire_src = *mapped;
  }

  // Account upload at the sender regardless of eventual delivery: bytes
  // leave the sender's uplink either way.
  const std::size_t pi = static_cast<std::size_t>(proto);
  counters_for(internal_src).up[pi]->add(payload.size());
  agg_up_[pi]->add(payload.size());
  packets_sent_c_->add(1);

  if (tap_) tap_(Datagram{wire_src, public_dst, payload, proto});

  auto delay = latency_->sample(wire_src, public_dst, rng_);
  if (!delay) return true;  // lost in transit

  Datagram dgram{wire_src, public_dst, std::move(payload), proto};
  sim_.schedule_after(*delay, [this, dgram = std::move(dgram)]() mutable {
    deliver(std::move(dgram));
  });
  return true;
}

void Network::deliver(Datagram dgram) {
  Endpoint internal_dst = dgram.dst;
  if (translator_ != nullptr) {
    auto mapped = translator_->inbound(dgram.dst, dgram.src);
    if (!mapped) return;  // filtered by the destination's NAT device
    internal_dst = *mapped;
  }
  auto it = handlers_.find(internal_dst);
  if (it == handlers_.end()) return;  // node departed

  const std::size_t pi = static_cast<std::size_t>(dgram.proto);
  counters_for(internal_dst).down[pi]->add(dgram.payload.size());
  agg_down_[pi]->add(dgram.payload.size());
  packets_delivered_c_->add(1);
  it->second(dgram);
}

const TrafficCounters& Network::counters(Endpoint internal_ep) const {
  static const TrafficCounters kEmpty{};
  auto it = counters_.find(internal_ep);
  return it == counters_.end() ? kEmpty : it->second;
}

void Network::reset_counters() { registry_->reset("net."); }

}  // namespace whisper::sim

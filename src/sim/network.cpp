#include "sim/network.hpp"

namespace whisper::sim {

// proto_name/drop_reason_name moved to net/datagram.cpp with the SPI split.

namespace {

/// Flow id for the Chrome-trace arrow of one wire traversal: unique per
/// (trace, wire copy). Seqs are recorder-global, so 20 bits of seq under the
/// trace id keeps ids collision-free for any plausible run length.
std::uint64_t flow_id_of(const telemetry::TraceContext& ctx) {
  return (ctx.trace_id << 20) ^ ctx.seq;
}

/// Canonical 64-bit form of an endpoint (matches std::hash<Endpoint>'s
/// packing): the major component of a delivery's ordering key.
std::uint64_t pack_endpoint(Endpoint ep) {
  return (std::uint64_t{ep.ip} << 16) | ep.port;
}

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t TrafficCounters::total_up() const {
  std::uint64_t total = 0;
  for (const auto* c : up) total += c != nullptr ? c->value() : 0;
  return total;
}

std::uint64_t TrafficCounters::total_down() const {
  std::uint64_t total = 0;
  for (const auto* c : down) total += c != nullptr ? c->value() : 0;
  return total;
}

telemetry::Labels Network::traffic_labels(Endpoint internal_ep, Proto proto,
                                          const char* dir) {
  return {{"node", internal_ep.str()}, {"proto", proto_name(proto)}, {"dir", dir}};
}

Network::Network(Simulator& sim, std::unique_ptr<LatencyModel> latency,
                 telemetry::Registry* registry)
    : sim_(sim), latency_(std::move(latency)),
      owned_registry_(registry == nullptr ? std::make_unique<telemetry::Registry>()
                                          : nullptr),
      registry_(registry != nullptr ? registry : owned_registry_.get()),
      rng_(sim.rng().fork()) {
  for (std::size_t i = 0; i < static_cast<std::size_t>(Proto::kCount); ++i) {
    const char* proto = proto_name(static_cast<Proto>(i));
    agg_up_[i] = &registry_->counter("net.bytes", {{"proto", proto}, {"dir", "up"}});
    agg_down_[i] = &registry_->counter("net.bytes", {{"proto", proto}, {"dir", "down"}});
  }
  packets_sent_c_ = &registry_->counter("net.packets.sent");
  packets_delivered_c_ = &registry_->counter("net.packets.delivered");
  packets_duplicated_c_ = &registry_->counter("net.packets.duplicated");
  for (std::size_t i = 0; i < static_cast<std::size_t>(DropReason::kCount); ++i) {
    packets_dropped_c_[i] = &registry_->counter(
        "net.packets.dropped",
        {{"reason", drop_reason_name(static_cast<DropReason>(i))}});
  }
}

void Network::count_drop(DropReason reason) {
  packets_dropped_c_[static_cast<std::size_t>(reason)]->add(1);
}

std::uint64_t Network::packets_dropped() const {
  std::uint64_t total = 0;
  for (const auto* c : packets_dropped_c_) total += c->value();
  return total;
}

std::uint64_t Network::packets_dropped(DropReason reason) const {
  return packets_dropped_c_[static_cast<std::size_t>(reason)]->value();
}

std::uint64_t Network::packets_in_flight() const {
  return packets_sent() + packets_duplicated() - packets_delivered() - packets_dropped();
}

void Network::attach(Endpoint internal_ep, Handler handler) {
  handlers_[internal_ep] = std::move(handler);
}

void Network::detach(Endpoint internal_ep) { handlers_.erase(internal_ep); }

bool Network::attached(Endpoint internal_ep) const { return handlers_.contains(internal_ep); }

TrafficCounters& Network::counters_for(Endpoint internal_ep) {
  auto it = counters_.find(internal_ep);
  if (it != counters_.end()) return it->second;
  TrafficCounters tc;
  for (std::size_t i = 0; i < static_cast<std::size_t>(Proto::kCount); ++i) {
    const Proto p = static_cast<Proto>(i);
    tc.up[i] = &registry_->counter("net.node.bytes", traffic_labels(internal_ep, p, "up"));
    tc.down[i] =
        &registry_->counter("net.node.bytes", traffic_labels(internal_ep, p, "down"));
  }
  return counters_.emplace(internal_ep, tc).first->second;
}

bool Network::send(Endpoint internal_src, Endpoint public_dst, Bytes payload, Proto proto) {
  Endpoint wire_src = internal_src;
  if (translator_ != nullptr) {
    auto mapped = translator_->outbound(internal_src, public_dst);
    if (!mapped) return false;
    wire_src = *mapped;
  }

  // Account upload at the sender regardless of eventual delivery: bytes
  // leave the sender's uplink either way.
  const std::size_t pi = static_cast<std::size_t>(proto);
  if (per_node_accounting_) counters_for(internal_src).up[pi]->add(payload.size());
  agg_up_[pi]->add(payload.size());
  packets_sent_c_->add(1);

  Datagram dgram{wire_src, public_dst, std::move(payload), proto, {}};
  const bool tracing_flight = flight_ != nullptr && flight_->enabled();
  if (tracing_flight) dgram.trace = flight_->context();
  std::size_t copies = 1;
  Time extra_delay = 0;
  if (faults_ != nullptr) {
    const auto verdict = faults_->on_wire(internal_src, dgram);
    copies = verdict.copies;
    extra_delay = verdict.extra_delay;
  }
  if (copies == 0) {
    count_drop(DropReason::kFault);
    if (tracing_flight && dgram.trace.valid()) {
      flight_->drop(dgram.trace, flight_->node_of(internal_src), sim_.now(), "fault");
    }
    return true;  // the sender's uplink emitted it; it died on the wire
  }

  // The wiretap observes the (possibly corrupted) wire bytes, once per
  // emission regardless of fault duplication.
  if (tap_) tap_(dgram);

  for (std::size_t i = 0; i < copies; ++i) {
    if (i > 0) packets_duplicated_c_->add(1);
    // Copy only for fault-injected duplicates; the final copy moves.
    Datagram scheduled = (i + 1 == copies) ? std::move(dgram) : dgram;
    if (tracing_flight && scheduled.trace.valid()) {
      // One seq per wire copy, so duplicated packets pair their own
      // wire_out/wire_in events in the assembled record.
      scheduled.trace.seq = flight_->next_wire_seq();
      const std::uint64_t src_node = flight_->node_of(internal_src);
      flight_->wire_out(scheduled.trace, src_node, sim_.now(), extra_delay);
      if (tracer_ != nullptr && tracer_->enabled()) {
        tracer_->flow_begin("net.hop", "net", src_node, sim_.now(),
                            flow_id_of(scheduled.trace));
      }
    }
    // Canonical ordering key for this wire copy: (sender, per-sender seq).
    // Allocated per copy even when the copy is then lost, so the key stream
    // at the sender is identical whatever happens downstream.
    std::uint64_t ka = 0, kb = 0;
    if (deterministic_) {
      ka = pack_endpoint(internal_src);
      kb = wire_seqs_[internal_src]++;
    }
    auto delay = draw_latency(wire_src, public_dst, kb);
    if (!delay) {
      count_drop(DropReason::kLoss);  // lost in transit
      if (tracing_flight && scheduled.trace.valid()) {
        flight_->drop(scheduled.trace, flight_->node_of(internal_src), sim_.now(), "loss");
      }
      continue;
    }
    const Time deliver_at = sim_.now() + *delay + extra_delay;
    if (is_remote_ && is_remote_(public_dst)) {
      forward_remote_(RemoteDelivery{deliver_at, ka, kb, internal_src,
                                     std::move(scheduled)});
    } else if (deterministic_) {
      sim_.schedule_keyed(deliver_at, ka, kb,
                          [this, internal_src, dgram = std::move(scheduled)]() mutable {
                            deliver(internal_src, std::move(dgram));
                          });
    } else {
      sim_.schedule_at(deliver_at,
                       [this, internal_src, dgram = std::move(scheduled)]() mutable {
                         deliver(internal_src, std::move(dgram));
                       });
    }
  }
  return true;
}

std::optional<Time> Network::draw_latency(Endpoint wire_src, Endpoint public_dst,
                                          std::uint64_t kb) {
  if (!deterministic_) return latency_->sample(wire_src, public_dst, rng_);
  // Stateless per-copy stream: the draw depends only on (salt, sender seq),
  // never on how many other sends interleaved — shard-count invariant.
  Rng copy_rng(mix64(latency_salt_ ^ mix64(pack_endpoint(wire_src)) ^
                     mix64(kb * 0x9e3779b97f4a7c15ULL + 1)));
  return latency_->sample(wire_src, public_dst, copy_rng);
}

void Network::deliver_remote(RemoteDelivery d) {
  sim_.schedule_keyed(d.deliver_at, d.ka, d.kb,
                      [this, internal_src = d.internal_src,
                       dgram = std::move(d.dgram)]() mutable {
                        deliver(internal_src, std::move(dgram));
                      });
}

void Network::deliver(Endpoint internal_src, Datagram dgram) {
  const bool traced =
      flight_ != nullptr && flight_->enabled() && dgram.trace.valid();
  Endpoint internal_dst = dgram.dst;
  if (translator_ != nullptr) {
    auto mapped = translator_->inbound(dgram.dst, dgram.src);
    if (!mapped) {
      count_drop(DropReason::kFilter);  // filtered by the destination's NAT
      if (traced) {
        flight_->drop(dgram.trace, flight_->node_of(dgram.dst), sim_.now(), "filter");
      }
      return;
    }
    internal_dst = *mapped;
  }
  if (faults_ != nullptr) {
    switch (faults_->on_deliver(internal_src, internal_dst, dgram)) {
      case FaultInterposer::Gate::kDrop:
        count_drop(DropReason::kFault);
        if (traced) {
          flight_->drop(dgram.trace, flight_->node_of(internal_dst), sim_.now(), "fault");
        }
        return;
      case FaultInterposer::Gate::kQueue:
        // Interposer owns it; counts on redeliver(). The queued event marks
        // the hold start so assembly can split queueing from propagation.
        if (traced) {
          flight_->queued(dgram.trace, flight_->node_of(internal_dst), sim_.now(),
                          "pause");
        }
        return;
      case FaultInterposer::Gate::kDeliver:
        break;
    }
  }
  finish_delivery(internal_dst, std::move(dgram));
}

void Network::redeliver(Endpoint internal_dst, Datagram dgram) {
  finish_delivery(internal_dst, std::move(dgram));
}

void Network::finish_delivery(Endpoint internal_dst, Datagram dgram) {
  const bool traced =
      flight_ != nullptr && flight_->enabled() && dgram.trace.valid();
  auto it = handlers_.find(internal_dst);
  if (it == handlers_.end()) {
    count_drop(DropReason::kDetach);  // node departed
    if (traced) {
      flight_->drop(dgram.trace, flight_->node_of(internal_dst), sim_.now(), "detach");
    }
    return;
  }

  const std::size_t pi = static_cast<std::size_t>(dgram.proto);
  if (per_node_accounting_) counters_for(internal_dst).down[pi]->add(dgram.payload.size());
  agg_down_[pi]->add(dgram.payload.size());
  packets_delivered_c_->add(1);
  if (!traced) {
    it->second(dgram);
    return;
  }
  const std::uint64_t dst_node = flight_->node_of(internal_dst);
  flight_->wire_in(dgram.trace, dst_node, sim_.now());
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->flow_end("net.hop", "net", dst_node, sim_.now(), flow_id_of(dgram.trace));
  }
  // Arm the context — advanced one hop — around the handler, so any send the
  // handler performs (an onion forward, an ACK) extends this causal chain.
  telemetry::ScopedTraceContext guard(flight_, dgram.trace.next_hop());
  it->second(dgram);
}

const TrafficCounters& Network::counters(Endpoint internal_ep) const {
  static const TrafficCounters kEmpty{};
  auto it = counters_.find(internal_ep);
  return it == counters_.end() ? kEmpty : it->second;
}

void Network::reset_counters() { registry_->reset("net."); }

}  // namespace whisper::sim

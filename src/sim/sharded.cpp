#include "sim/sharded.hpp"

#include <algorithm>
#include <cassert>

namespace whisper::sim {

ShardedEngine::ShardedEngine(std::vector<Shard> shards, Time window)
    : shards_(std::move(shards)),
      window_(std::max<Time>(window, 1)),
      box_(shards_.size() * shards_.size()),
      next_at_(shards_.size(), 0),
      sync_(static_cast<std::ptrdiff_t>(shards_.size()) + 1) {
  assert(!shards_.empty());
  for ([[maybe_unused]] const Shard& s : shards_) {
    assert(s.sim != nullptr && s.net != nullptr);
  }
  if (shards_.size() > 1) {
    workers_.reserve(shards_.size());
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      workers_.emplace_back([this, s] { worker_loop(s); });
    }
  }
}

ShardedEngine::~ShardedEngine() {
  if (!workers_.empty()) {
    cmd_ = Cmd::kStop;
    sync_.arrive_and_wait();
    for (std::thread& w : workers_) w.join();
  }
}

void ShardedEngine::enqueue(std::size_t src_shard, std::size_t dst_shard,
                            Network::RemoteDelivery d) {
  assert(src_shard < shards_.size() && dst_shard < shards_.size());
  box_[src_shard * shards_.size() + dst_shard].push_back(std::move(d));
  cross_shard_total_.fetch_add(1, std::memory_order_relaxed);
}

void ShardedEngine::drain_inboxes(std::size_t s) {
  for (std::size_t src = 0; src < shards_.size(); ++src) {
    std::vector<Network::RemoteDelivery>& box = box_[src * shards_.size() + s];
    for (Network::RemoteDelivery& d : box) {
      shards_[s].net->deliver_remote(std::move(d));
    }
    box.clear();
  }
}

// The barrier schedule both sides walk in lockstep. Every participant
// derives the identical window sequence from (start, target, window_) plus
// the published next-event times, so arrival counts always match:
//
//   [window phase] x N:  run events in [ws, we)   -> barrier (sends boxed)
//                        drain inboxes, publish
//                        own next event time      -> barrier (boxes empty)
//                        everyone jumps ws to the global minimum — empty
//                        100 us windows across seconds of idle virtual time
//                        would otherwise dominate the run
//   [close phase]     :  run events at == target  -> barrier
//                        drain own inboxes        -> barrier
//
// The jump is conservative-safe: every event executed so far was < we, and
// every drained delivery is due >= we (window <= latency lower bound), so
// the published minimum never names a time that new work could still slip
// under. The closing drain catches sends emitted by events at exactly
// `target`; their deliveries are due strictly later, so scheduling them now
// leaves them pending for the next epoch — exactly where a single
// simulator's run_until(target) would leave them.
template <typename RunWindow, typename RunClose, typename Drain, typename Publish>
void ShardedEngine::epoch(Time start, Time target, RunWindow&& run_window,
                          RunClose&& run_close, Drain&& drain, Publish&& publish) {
  Time ws = start;
  while (ws < target) {
    const Time we = std::min(ws + window_, target);
    run_window(we);
    sync_.arrive_and_wait();  // sends for [ws, we) are in the boxes
    drain();
    publish();
    sync_.arrive_and_wait();  // every shard drained and published
    Time next = *std::min_element(next_at_.begin(), next_at_.end());
    ws = std::max(we, std::min(next, target));
  }
  run_close();
  sync_.arrive_and_wait();
  drain();
  sync_.arrive_and_wait();
}

void ShardedEngine::worker_loop(std::size_t s) {
  Simulator& sim = *shards_[s].sim;
  for (;;) {
    sync_.arrive_and_wait();  // command published by main
    if (cmd_ == Cmd::kStop) return;
    epoch(
        epoch_start_, epoch_target_,
        [&](Time we) { sim.run_until_before(we); },
        [&] { sim.run_until(epoch_target_); },
        [&] { drain_inboxes(s); },
        [&] { next_at_[s] = sim.next_event_at(); });
  }
}

void ShardedEngine::run_until(Time t) {
  if (t <= now_) return;
  if (shards_.size() == 1) {
    // No cross-shard traffic possible; the plain engine is the fast path
    // (and the baseline the determinism gate compares against).
    shards_[0].sim->run_until(t);
    now_ = t;
    return;
  }
  epoch_start_ = now_;
  epoch_target_ = t;
  cmd_ = Cmd::kRun;
  sync_.arrive_and_wait();  // workers pick up the command
  epoch(epoch_start_, epoch_target_, [](Time) {}, [] {}, [] {}, [] {});
  now_ = t;
}

std::uint64_t ShardedEngine::executed_events() const {
  std::uint64_t total = 0;
  for (const Shard& s : shards_) total += s.sim->executed_events();
  return total;
}

}  // namespace whisper::sim

// Link latency and loss models.
//
// The paper evaluates on two testbeds: a switched-Gbps cluster (sub-ms RTT)
// and PlanetLab (tens-to-hundreds of ms, heavy tails, loss). Latency models
// reproduce those regimes. Per-pair base delays are derived from a hash of
// the two addresses so that a given pair sees a consistent RTT across the
// run (as real geography would give), with per-packet jitter on top.
#pragma once

#include <memory>
#include <optional>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "sim/simulator.hpp"

namespace whisper::sim {

/// Computes one-way delay for a datagram, or nullopt if the packet is lost.
class LatencyModel {
 public:
  virtual ~LatencyModel() = default;
  virtual std::optional<Time> sample(Endpoint from, Endpoint to, Rng& rng) = 0;

  /// Hard floor on every delay this model can return. The sharded engine's
  /// conservative-synchronization window must not exceed this bound: any
  /// message sent inside a lockstep window is then guaranteed to arrive no
  /// earlier than the next window, so shards never see the past change.
  virtual Time lower_bound() const = 0;
};

/// Constant delay, no loss. For unit tests.
class FixedLatency : public LatencyModel {
 public:
  explicit FixedLatency(Time delay) : delay_(delay) {}
  std::optional<Time> sample(Endpoint, Endpoint, Rng&) override { return delay_; }
  Time lower_bound() const override { return delay_; }

 private:
  Time delay_;
};

/// Switched-LAN cluster: uniform 100..500 us one-way, no loss.
class ClusterLatency : public LatencyModel {
 public:
  std::optional<Time> sample(Endpoint from, Endpoint to, Rng& rng) override;
  Time lower_bound() const override { return 100; }
};

/// PlanetLab-like WAN: per-pair lognormal base (median ~40 ms one-way),
/// per-packet jitter, configurable loss probability (default 2%).
class PlanetLabLatency : public LatencyModel {
 public:
  explicit PlanetLabLatency(double loss_probability = 0.02)
      : loss_probability_(loss_probability) {}
  std::optional<Time> sample(Endpoint from, Endpoint to, Rng& rng) override;
  /// Base clamps at 5 ms and jitter is non-negative.
  Time lower_bound() const override { return 5 * kMillisecond; }

 private:
  double loss_probability_;
};

/// Named model factory used by benches ("fixed", "cluster", "planetlab").
std::unique_ptr<LatencyModel> make_latency_model(const std::string& name);

}  // namespace whisper::sim

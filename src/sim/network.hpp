// Simulated datagram network with NAT interposition and traffic accounting.
//
// Nodes bind a handler to their *internal* endpoint. When a datagram is
// sent, the installed AddressTranslator (the NAT emulation, see src/nat)
// rewrites the source to its external mapping and decides whether the
// destination's device lets the packet in.
//
// Traffic accounting lives in the telemetry registry: per-node up/down byte
// counters keyed by protocol tag ("net.node.bytes"), plus system-wide
// aggregates ("net.bytes", "net.packets.*"). These are the data source for
// the paper's bandwidth figures (Fig. 6 and Fig. 8); TrafficCounters is a
// per-node view over the registry entries kept for ergonomic access.
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "common/bytes.hpp"
#include "common/densemap.hpp"
#include "common/ids.hpp"
#include "net/datagram.hpp"
#include "net/spi.hpp"
#include "sim/latency.hpp"
#include "sim/simulator.hpp"
#include "telemetry/flight.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/trace.hpp"

namespace whisper::sim {

/// The wire-level types moved to net/ with the transport SPI split; sim::
/// keeps the historical spellings.
using Proto = net::Proto;
using Datagram = net::Datagram;
using net::proto_name;

/// NAT interposition hook; implemented by nat::NatFabric.
class AddressTranslator {
 public:
  virtual ~AddressTranslator() = default;

  /// Sender side: map the internal source endpoint to its public mapping for
  /// this destination, creating/refreshing state. nullopt = cannot send.
  virtual std::optional<Endpoint> outbound(Endpoint internal_src, Endpoint public_dst) = 0;

  /// Receiver side: given the public destination and the (public) source the
  /// packet arrives from, return the internal endpoint to deliver to, or
  /// nullopt if the device filters the packet out.
  virtual std::optional<Endpoint> inbound(Endpoint public_dst, Endpoint public_src) = 0;
};

/// Fault interposition hook: now part of the transport SPI (net/spi.hpp),
/// implemented by faults::FaultFabric and consulted by any backend.
using FaultInterposer = net::FaultInterposer;

/// Why a packet never reached its destination handler. Labels the
/// "net.packets.dropped" counter instances.
using DropReason = net::DropReason;
using net::drop_reason_name;

/// Per-node traffic accounting in bytes: a view over the registry-backed
/// "net.node.bytes" counters (labels: node, proto, dir). Null slots (node
/// never seen) read as zero.
struct TrafficCounters {
  telemetry::Counter* up[static_cast<std::size_t>(Proto::kCount)] = {};
  telemetry::Counter* down[static_cast<std::size_t>(Proto::kCount)] = {};

  std::uint64_t total_up() const;
  std::uint64_t total_down() const;
  std::uint64_t up_for(Proto p) const {
    const auto* c = up[static_cast<std::size_t>(p)];
    return c != nullptr ? c->value() : 0;
  }
  std::uint64_t down_for(Proto p) const {
    const auto* c = down[static_cast<std::size_t>(p)];
    return c != nullptr ? c->value() : 0;
  }
};

/// The simulated network: the whole virtual internet behind one net::Stack.
/// Nodes are identified by their internal endpoint.
class Network final : public net::Stack {
 public:
  /// `registry` hosts the traffic metrics; when null the network owns a
  /// private one, so counters are always registry-backed.
  Network(Simulator& sim, std::unique_ptr<LatencyModel> latency,
          telemetry::Registry* registry = nullptr);

  using Handler = net::Stack::Handler;

  /// Bind a node's receive handler at its internal endpoint.
  void attach(Endpoint internal_ep, Handler handler) override;
  /// Remove a node (e.g. churn departure). Packets in flight are dropped on
  /// arrival.
  void detach(Endpoint internal_ep) override;
  bool attached(Endpoint internal_ep) const override;

  /// Install the NAT fabric. May be null (all endpoints public).
  void set_translator(AddressTranslator* translator) { translator_ = translator; }

  /// Install the fault fabric. May be null (no faults; zero overhead).
  void set_fault_interposer(FaultInterposer* faults) override { faults_ = faults; }

  /// Install the flight recorder for causal tracing. While installed and
  /// enabled, outbound datagrams are stamped with the sender's ambient
  /// TraceContext (one unique seq per wire copy), wire events are logged,
  /// and the context — advanced one hop — is armed around the destination
  /// handler. Null or disabled costs one branch per packet.
  void set_flight(telemetry::FlightRecorder* flight) override { flight_ = flight; }

  /// Install a tracer for cross-node flow events ('s' at emission, 'f' at
  /// delivery, one pair per traced wire traversal).
  void set_tracer(telemetry::Tracer* tracer) override { tracer_ = tracer; }

  /// Re-inject a datagram previously consumed by the fault interposer (the
  /// paused-node queue flush on resume). NAT was already resolved when the
  /// packet was queued; it goes straight to the handler — or to the detach
  /// drop counter if the node departed while paused.
  void redeliver(Endpoint internal_dst, Datagram dgram) override;

  /// Wiretap: observes every datagram as it appears on the wire (after NAT
  /// source rewriting, before destination filtering) — the vantage point of
  /// the paper's link-observing attacker. Used by security tests and the
  /// eavesdropper example; null disables.
  using Tap = std::function<void(const Datagram&)>;
  void set_tap(Tap tap) { tap_ = std::move(tap); }

  /// Send a datagram from a node's internal endpoint to a *public*
  /// destination endpoint. Returns false if the sender could not even emit
  /// the packet (no NAT mapping possible). Delivery itself is asynchronous
  /// and silently subject to loss and filtering.
  bool send(Endpoint internal_src, Endpoint public_dst, Bytes payload,
            Proto proto) override;

  // --- Sharded-engine integration (see sim/sharded.hpp). ---

  /// A wire traversal crossing a shard boundary: everything the owning
  /// shard's network needs to finish the delivery with the same canonical
  /// ordering it would have used locally.
  struct RemoteDelivery {
    Time deliver_at;
    std::uint64_t ka;  // canonical key: packed sender endpoint
    std::uint64_t kb;  // canonical key: per-sender wire sequence
    Endpoint internal_src;
    Datagram dgram;
  };

  /// Deterministic delivery mode: latency (and loss) for each wire copy is
  /// drawn from a private Rng seeded by (salt, sender, per-sender wire
  /// sequence) instead of the network's shared stream, and deliveries are
  /// heap-keyed by (sender, wire sequence). Both are invariant under how
  /// nodes are partitioned into shards, which is what makes same-seed runs
  /// byte-identical for every shard count. Must be set before traffic.
  void set_deterministic_delivery(std::uint64_t salt) {
    deterministic_ = true;
    latency_salt_ = salt;
  }

  /// Route datagrams whose destination lives on another shard. `is_remote`
  /// decides (from the public destination address); `forward` hands the
  /// packet to the engine, which enqueues it on the owning shard's channel.
  void set_shard_router(std::function<bool(Endpoint)> is_remote,
                        std::function<void(RemoteDelivery)> forward) {
    is_remote_ = std::move(is_remote);
    forward_remote_ = std::move(forward);
  }

  /// Schedule a delivery that arrived over a shard channel. Runs on the
  /// destination shard; `d.deliver_at` is guaranteed (by the conservative
  /// window) to still be in this shard's future.
  void deliver_remote(RemoteDelivery d);

  /// Per-node byte counters cost ~12 registry entries per node — fine at
  /// 1k nodes, gigabytes of label strings at 100k. Lean mode keeps only the
  /// system-wide aggregates. Flip before any traffic flows.
  void set_per_node_accounting(bool enabled) { per_node_accounting_ = enabled; }

  const TrafficCounters& counters(Endpoint internal_ep) const;
  /// Zero every "net."-prefixed metric (per-node, aggregates, packet
  /// counts) — benches call this after warm-up to open a measurement
  /// window.
  void reset_counters();

  /// Total datagrams handed to the latency model / delivered to handlers.
  std::uint64_t packets_sent() const override { return packets_sent_c_->value(); }
  std::uint64_t packets_delivered() const override {
    return packets_delivered_c_->value();
  }
  /// Extra copies injected by the fault fabric (each also delivers or drops).
  std::uint64_t packets_duplicated() const { return packets_duplicated_c_->value(); }
  /// Packets positively known to be gone, by reason — NOT sent−delivered,
  /// which would misread packets still in flight as dropped.
  std::uint64_t packets_dropped() const;
  std::uint64_t packets_dropped(DropReason reason) const;
  /// Packets on the wire (scheduled or queued by a paused-node fault) that
  /// have neither delivered nor dropped yet.
  std::uint64_t packets_in_flight() const;

  Simulator& simulator() { return sim_; }
  /// The registry hosting the traffic metrics (external or owned).
  telemetry::Registry& registry() { return *registry_; }
  const telemetry::Registry& registry() const { return *registry_; }

  /// Label set of the per-node byte counter ("net.node.bytes") for one
  /// node/proto/direction — the key benches use to read bandwidth straight
  /// off the registry. `dir` is "up" or "down".
  static telemetry::Labels traffic_labels(Endpoint internal_ep, Proto proto,
                                          const char* dir);

 private:
  void deliver(Endpoint internal_src, Datagram dgram);
  void finish_delivery(Endpoint internal_dst, Datagram dgram);
  void count_drop(DropReason reason);
  TrafficCounters& counters_for(Endpoint internal_ep);
  std::optional<Time> draw_latency(Endpoint wire_src, Endpoint public_dst,
                                   std::uint64_t kb);

  Simulator& sim_;
  std::unique_ptr<LatencyModel> latency_;
  AddressTranslator* translator_ = nullptr;
  FaultInterposer* faults_ = nullptr;
  telemetry::FlightRecorder* flight_ = nullptr;
  telemetry::Tracer* tracer_ = nullptr;
  Tap tap_;
  DenseMap<Endpoint, Handler> handlers_;
  std::unique_ptr<telemetry::Registry> owned_registry_;  // when none injected
  telemetry::Registry* registry_;                        // never null
  DenseMap<Endpoint, TrafficCounters> counters_;
  bool per_node_accounting_ = true;
  bool deterministic_ = false;
  std::uint64_t latency_salt_ = 0;
  /// Per-sender wire-copy sequence for canonical delivery keys
  /// (deterministic mode only).
  DenseMap<Endpoint, std::uint64_t> wire_seqs_;
  std::function<bool(Endpoint)> is_remote_;
  std::function<void(RemoteDelivery)> forward_remote_;
  telemetry::Counter* agg_up_[static_cast<std::size_t>(Proto::kCount)] = {};
  telemetry::Counter* agg_down_[static_cast<std::size_t>(Proto::kCount)] = {};
  telemetry::Counter* packets_sent_c_;
  telemetry::Counter* packets_delivered_c_;
  telemetry::Counter* packets_duplicated_c_;
  telemetry::Counter* packets_dropped_c_[static_cast<std::size_t>(DropReason::kCount)] = {};
  Rng rng_;
};

}  // namespace whisper::sim

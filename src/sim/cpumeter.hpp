// Compatibility shim: CpuMeter moved to net/cpumeter.hpp when the
// transport SPI was split out (it never depended on the simulator — it
// measures real wall-clock crypto cost on any backend). sim:: spellings
// keep working via these aliases.
#pragma once

#include "net/cpumeter.hpp"

namespace whisper::sim {

using Time = net::Time;  // same alias as sim/simulator.hpp declares
using CpuCategory = net::CpuCategory;
using CpuMeter = net::CpuMeter;

}  // namespace whisper::sim

// WhisperTestbed: builds a whole simulated deployment.
//
// Owns the simulator, latency model, network, NAT fabric, and the node
// population; provides churn operations (kill/spawn) and measurement
// helpers (overlay snapshots, bandwidth counters). Every bench constructs
// one of these from a TestbedConfig — this file is the equivalent of the
// paper's SPLAY deployment scripts.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "faults/faults.hpp"
#include "nat/nat.hpp"
#include "pss/metrics.hpp"
#include "sim/network.hpp"
#include "telemetry/flight.hpp"
#include "telemetry/timeseries.hpp"
#include "telemetry/trace.hpp"
#include "whisper/node.hpp"

namespace whisper {

struct TestbedConfig {
  std::size_t initial_nodes = 0;
  double natted_fraction = 0.7;  // the paper's deployment mix
  std::string latency = "cluster";
  NodeConfig node;
  std::uint64_t seed = 42;
  /// How many existing node cards a booting node receives.
  std::size_t bootstrap_contacts = 5;
  /// Record trace events (spans/instants) on the tracer. Metrics are always
  /// on; tracing is opt-in because event buffers grow with run length.
  bool trace = false;
  /// Record causal flight events (per-message traces with per-hop latency
  /// decomposition). Opt-in for the same reason.
  bool flight = false;
  /// Snapshot every registry metric into the time-series recorder at this
  /// virtual-time interval (0 = no sampling).
  net::Time telemetry_sample_every = 0;
};

class WhisperTestbed {
 public:
  explicit WhisperTestbed(TestbedConfig config);

  // Nodes hold references to the simulator and network owned here:
  // the testbed must stay at a fixed address.
  WhisperTestbed(const WhisperTestbed&) = delete;
  WhisperTestbed& operator=(const WhisperTestbed&) = delete;

  /// Backend-agnostic transport handles. New code should reach the clock
  /// and the wire through these: everything the protocol stack needs is on
  /// the SPI, and code written against it runs unmodified on the UDP
  /// backend.
  net::Clock& clock() { return sim_; }
  net::Stack& stack() { return *net_; }

  // Narrow simulation-only helpers. These replace the removed
  // simulator()/network() escape hatches: everything protocol-shaped goes
  // through the SPI above; what remains below is the handful of
  // measurement facilities only the simulation backend can offer.

  /// Events the virtual-time event loop has executed so far.
  std::uint64_t executed_events() const { return sim_.executed_events(); }
  /// Packets the simulated wire has handed to a receiving node.
  std::uint64_t packets_delivered() const { return net_->packets_delivered(); }
  /// Wiretap on every emitted datagram (nullptr to clear).
  void set_tap(sim::Network::Tap tap) { net_->set_tap(std::move(tap)); }
  /// Per-node traffic counters (zeroes for unknown endpoints).
  const sim::TrafficCounters& traffic(Endpoint internal_ep) const {
    return net_->counters(internal_ep);
  }
  /// Zero every "net."-prefixed metric (bandwidth measurement windows).
  void reset_traffic() { net_->reset_counters(); }
  /// Raw wire injection for adversarial tests (bypasses every protocol
  /// layer; the NAT fabric still applies).
  bool inject(Endpoint internal_src, Endpoint public_dst, Bytes payload,
              net::Proto proto) {
    return net_->send(internal_src, public_dst, std::move(payload), proto);
  }

  nat::NatFabric& fabric() { return *fabric_; }
  Rng& rng() { return rng_; }
  const TestbedConfig& config() const { return config_; }

  /// Boot one more node (public with probability 1-natted_fraction).
  WhisperNode& spawn_node();
  /// Remove a random live node; returns its id (nil if none).
  NodeId kill_random_node();
  void kill_node(NodeId id);
  /// Crash-restart `id` in place: stop it abruptly (the sim's kill -9 — no
  /// graceful departure exists anyway) and boot a replacement with the same
  /// id, endpoint and identity keys at incarnation old+1, bootstrapping
  /// from live cards like any booting node (DESIGN.md §14). Peers only
  /// notice the restart when the previous life advertised a nonzero
  /// incarnation, so crash-recovery scenarios set config.node.incarnation.
  /// Returns nullptr for unknown or already-stopped ids.
  WhisperNode* restart_node(NodeId id);

  WhisperNode* node(NodeId id);
  std::vector<WhisperNode*> alive_nodes();
  /// Every node ever spawned, including stopped ones (their statistics
  /// remain readable — churn experiments aggregate over these).
  std::vector<WhisperNode*> all_nodes();
  std::vector<WhisperNode*> alive_public_nodes();
  std::size_t alive_count() const;

  /// Advance virtual time.
  void run_for(net::Time duration);

  /// Snapshot of the system-wide PSS out-views.
  pss::OverlayGraph overlay_snapshot();

  /// Pick a random live node.
  WhisperNode* random_node();

  /// Install (once) the fault-injection fabric, wired to this testbed's
  /// population: live/relay endpoint resolution, churn-kill for crashes,
  /// NAT-device resets. Idempotent — returns the existing fabric if called
  /// again.
  faults::FaultFabric& install_fault_fabric();
  faults::FaultFabric* fault_fabric() { return faults_.get(); }

  /// Internal endpoints of live public nodes currently relaying for others
  /// (the relay-crash fault's victim pool).
  std::vector<Endpoint> relay_endpoints();

  // --- Telemetry. ---
  telemetry::Registry& registry() { return registry_; }
  const telemetry::Registry& registry() const { return registry_; }
  telemetry::Tracer& tracer() { return tracer_; }
  telemetry::FlightRecorder& flight() { return flight_; }
  const telemetry::FlightRecorder& flight() const { return flight_; }
  telemetry::TimeSeriesRecorder& recorder() { return recorder_; }
  /// The sinks handed to every spawned node.
  telemetry::Sinks sinks() { return telemetry::Sinks{&registry_, &tracer_, &flight_}; }

 private:
  void schedule_telemetry_sample();
  /// Random live-card sample for a booting (or rebooting) node.
  std::vector<pss::ContactCard> sample_bootstrap(NodeId exclude);

  TestbedConfig config_;
  Rng rng_;
  sim::Simulator sim_;
  telemetry::Registry registry_;
  telemetry::Tracer tracer_;
  telemetry::FlightRecorder flight_;
  /// Internal endpoint -> node id, for the flight recorder's node resolver
  /// (covers departed nodes too: packets in flight outlive their sender).
  std::unordered_map<Endpoint, std::uint64_t> endpoint_ids_;
  telemetry::TimeSeriesRecorder recorder_;
  std::unique_ptr<nat::NatFabric> fabric_;
  std::unique_ptr<sim::Network> net_;
  // Declared after net_: the fabric detaches from the network on
  // destruction, so it must die first.
  std::unique_ptr<faults::FaultFabric> faults_;
  std::vector<std::unique_ptr<WhisperNode>> nodes_;  // includes stopped ones
  std::uint64_t next_node_id_ = 1;
  std::size_t next_key_index_ = 0;
};

}  // namespace whisper

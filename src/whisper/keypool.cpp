#include "whisper/keypool.hpp"

#include <deque>
#include <map>

namespace whisper {

const crypto::RsaKeyPair& pooled_keypair(std::size_t idx, std::size_t bits) {
  // deque: references stay valid while the pool grows (nodes hold on to
  // their keypair by reference).
  static std::map<std::size_t, std::deque<crypto::RsaKeyPair>> pools;
  auto& pool = pools[bits];
  while (pool.size() <= idx) {
    // Seed derived from (bits, index) so pools are stable across runs.
    crypto::Drbg drbg(0x57A7 + bits * 1'000'003 + pool.size());
    pool.push_back(crypto::RsaKeyPair::generate(bits, drbg));
  }
  return pool[idx];
}

}  // namespace whisper

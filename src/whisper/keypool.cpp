#include "whisper/keypool.hpp"

#include <deque>
#include <map>

namespace whisper {

const crypto::RsaKeyPair& pooled_keypair(std::size_t idx, std::size_t bits) {
  // deque: references stay valid while the pool grows (nodes hold on to
  // their keypair by reference).
  static std::map<std::size_t, std::deque<crypto::RsaKeyPair>> pools;
  auto& pool = pools[bits];
  while (pool.size() <= idx) {
    // Seed derived from (bits, index) so pools are stable across runs.
    crypto::Drbg drbg(0x57A7 + bits * 1'000'003 + pool.size());
    pool.push_back(crypto::RsaKeyPair::generate(bits, drbg));
    // CRT params are computed by generate(); warm the Montgomery caches too,
    // so every copy of a pooled key (node cards, onion hops) shares them.
    pool.back().warm_cache();
  }
  return pool[idx];
}

}  // namespace whisper

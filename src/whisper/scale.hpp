// ScaleTestbed: the sharded deployment builder for very large populations.
//
// WhisperTestbed owns one simulator and boots nodes against it; at 100k
// nodes a single event heap serializes everything on one core and per-node
// telemetry labels dominate memory. ScaleTestbed partitions the population
// across S shards (node i lives on shard i % S), each with its own
// Simulator/Network/NatFabric/Registry/FlightRecorder, and drives them in
// lockstep through sim::ShardedEngine.
//
// Shard-count invariance is a hard guarantee (CI-gated): everything that
// shapes traffic is derived from the *global* node index, never from
// shard-local allocator state —
//   - addresses are pure functions of the index (add_*_node_at),
//   - NAT types, per-node rngs, and bootstrap contact picks come from one
//     planner rng consumed in global boot order on the main thread,
//   - networks run in deterministic-delivery mode (per-copy latency/loss
//     streams keyed by sender + wire seq, canonical heap keys),
//   - exports go through merge_registry_into / canonical_flight_records.
// Fault injection (install_fault_fabric) is the exception: each shard's
// fabric draws victims from its own rng, so chaos runs gate on recovery,
// not byte-identity. See DESIGN.md §13.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "faults/faults.hpp"
#include "nat/nat.hpp"
#include "sim/network.hpp"
#include "sim/sharded.hpp"
#include "sim/simulator.hpp"
#include "telemetry/flight.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/trace.hpp"
#include "whisper/node.hpp"

namespace whisper {

struct ScaleConfig {
  std::size_t initial_nodes = 0;
  std::size_t shards = 1;
  double natted_fraction = 0.7;
  std::string latency = "cluster";
  NodeConfig node;
  std::uint64_t seed = 42;
  std::size_t bootstrap_contacts = 5;
  /// Record causal flight events on every shard's recorder.
  bool flight = false;
  /// Per-node byte counters and per-node protocol metrics. Off for 100k
  /// runs: label strings would dominate memory; aggregates remain.
  bool node_telemetry = true;
  /// Recycle pooled RSA keypairs with this period (node i gets pooled key
  /// i % key_cycle). 0 = every node gets a distinct key. 100k distinct
  /// keygens would dominate boot wall-time; recycling is a pure function of
  /// the global index, so shard-count invariance is unaffected and every
  /// crypto operation still runs for real.
  std::size_t key_cycle = 0;
};

class ScaleTestbed {
 public:
  explicit ScaleTestbed(ScaleConfig config);
  ~ScaleTestbed();

  ScaleTestbed(const ScaleTestbed&) = delete;
  ScaleTestbed& operator=(const ScaleTestbed&) = delete;

  std::size_t shard_count() const { return shards_.size(); }
  const ScaleConfig& config() const { return config_; }
  sim::ShardedEngine& engine() { return *engine_; }

  /// Advance all shards in lockstep. Main-thread only; node/population
  /// mutations (spawn/kill/fault install) are only legal between calls.
  void run_for(net::Time duration);
  net::Time now() const { return engine_->now(); }

  std::uint64_t executed_events() const { return engine_->executed_events(); }
  std::uint64_t cross_shard_messages() const { return engine_->cross_shard_messages(); }

  /// Boot one more node at the next global index.
  WhisperNode& spawn_node();
  /// Stop the node at global index i (no-op if already stopped).
  void kill_node(std::size_t global_index);
  /// Kill a planner-rng-chosen live node; returns its global index or
  /// SIZE_MAX when none is alive.
  std::size_t kill_random_node();

  std::size_t node_count() const { return nodes_.size(); }
  WhisperNode* node_at(std::size_t global_index);
  std::size_t alive_count() const;
  std::vector<WhisperNode*> alive_nodes();

  static std::size_t shard_of_index(std::size_t index, std::size_t shards) {
    return index % shards;
  }

  /// Install (once per shard) fault-injection fabrics wired to each shard's
  /// slice of the population. Returns one fabric per shard.
  std::vector<faults::FaultFabric*> install_fault_fabrics();

  // --- Per-shard access (tests, benches). ---
  sim::Simulator& simulator(std::size_t shard) { return *shards_[shard]->sim; }
  sim::Network& network(std::size_t shard) { return *shards_[shard]->net; }
  telemetry::Registry& registry(std::size_t shard) { return shards_[shard]->registry; }

  // --- Shard-count-invariant exports (the determinism gate's inputs). ---
  std::string merged_metrics_jsonl() const;
  std::string canonical_flight_jsonl() const;

 private:
  struct ShardState {
    std::unique_ptr<sim::Simulator> sim;
    telemetry::Registry registry;
    telemetry::Tracer tracer;  // constructed disabled; present so Sinks is complete
    telemetry::FlightRecorder flight;
    std::unique_ptr<nat::NatFabric> fabric;
    std::unique_ptr<sim::Network> net;
    // After net_: the fabric detaches from the network on destruction.
    std::unique_ptr<faults::FaultFabric> faults;
  };

  // Addresses as pure functions of the global node index (see nat.hpp's
  // allocator bases; indices never collide with any allocator range).
  static std::uint32_t public_ip(std::size_t i) {
    return (1u << 24) + 1 + static_cast<std::uint32_t>(i);
  }
  static std::uint32_t private_ip(std::size_t i) {
    return (10u << 24) + 1 + static_cast<std::uint32_t>(i);
  }
  static std::uint32_t device_ip(std::size_t i) {
    return (100u << 24) + 1 + static_cast<std::uint32_t>(i);
  }
  /// Global node index owning this wire/internal address.
  static std::size_t index_of_ip(std::uint32_t ip);
  std::size_t shard_of_ip(std::uint32_t ip) const {
    return index_of_ip(ip) % shards_.size();
  }

  telemetry::Sinks sinks(std::size_t shard);

  ScaleConfig config_;
  Rng plan_rng_;
  std::vector<std::unique_ptr<ShardState>> shards_;
  std::unique_ptr<sim::ShardedEngine> engine_;
  /// Internal endpoint -> node id, shared by every shard's flight resolver.
  /// Written only between runs (boot/churn); read-only while shards run.
  std::unordered_map<Endpoint, std::uint64_t> endpoint_ids_;
  std::vector<std::unique_ptr<WhisperNode>> nodes_;  // global index order
};

}  // namespace whisper

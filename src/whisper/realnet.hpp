// Real-network deployment helpers: run the WHISPER stack on the UDP/epoll
// backend instead of the simulator.
//
// Two pieces:
//   - realtime_node_config(): a NodeConfig with protocol periods rescaled
//     from gossip-minutes to wall-clock-friendly values, so a localhost
//     mesh converges in seconds instead of simulated hours. Ratios between
//     the knobs (cycle vs response timeout vs RTO floors) are preserved;
//     only the absolute scale changes.
//   - UdpMesh: an in-process mesh — N full WhisperNodes, each on its own
//     OS-assigned loopback port, all hosted by one UdpBackend event loop.
//     The real-network analogue of WhisperTestbed, minus NAT (loopback has
//     none) and churn scripting. Used by the cross-backend equivalence
//     test and by `bench_throughput --backend=udp`; whisper_noded uses the
//     same config with one node per process.
#pragma once

#include <memory>
#include <vector>

#include "net/udp.hpp"
#include "telemetry/flight.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/trace.hpp"
#include "whisper/node.hpp"

namespace whisper {

/// Protocol timing tuned for wall-clock runs on a LAN/loopback: PSS cycles
/// of 150 ms, sub-second timeouts, Π = 3. Deterministic — every process
/// that calls this gets the same configuration.
NodeConfig realtime_node_config();

/// An in-process mesh of real nodes: one UdpBackend, one UDP socket per
/// node on a distinct OS-assigned loopback port. All nodes are public
/// (loopback has no NAT) and bootstrap from up to `bootstrap_contacts`
/// previously spawned nodes, mirroring WhisperTestbed::spawn_node.
class UdpMesh {
 public:
  struct Config {
    net::UdpBackend::Config backend;
    NodeConfig node;           // defaulted to realtime_node_config()
    std::uint64_t seed = 42;
    std::size_t bootstrap_contacts = 5;
    bool flight = false;       // record causal flight events
    Config();
  };

  explicit UdpMesh(Config config = {});
  ~UdpMesh();

  UdpMesh(const UdpMesh&) = delete;
  UdpMesh& operator=(const UdpMesh&) = delete;

  /// Bind a fresh loopback socket, boot a node on it, start gossiping.
  /// Returns nullptr only if the OS refuses a socket (see
  /// backend().last_error()).
  WhisperNode* spawn_node();

  /// Pump the event loop for `duration` of wall time.
  void run_for(net::Time duration) { backend_.run_for(duration); }

  net::UdpBackend& backend() { return backend_; }
  net::Clock& clock() { return backend_; }
  net::Stack& stack() { return backend_; }
  telemetry::Registry& registry() { return registry_; }
  telemetry::FlightRecorder& flight() { return flight_; }

  std::vector<WhisperNode*> nodes();
  std::size_t size() const { return nodes_.size(); }

 private:
  Config config_;
  Rng rng_;
  net::UdpBackend backend_;
  telemetry::Registry registry_;
  telemetry::Tracer tracer_;
  telemetry::FlightRecorder flight_;
  std::vector<std::unique_ptr<WhisperNode>> nodes_;
  std::uint64_t next_node_id_ = 1;
  std::size_t next_key_index_ = 0;
};

}  // namespace whisper

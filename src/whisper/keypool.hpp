// Process-wide pool of deterministic RSA keypairs.
//
// Key generation is the only genuinely expensive part of booting a
// simulated node. Benches build several thousand-node deployments per run,
// so keypairs are generated once per (index, bits) from fixed seeds and
// reused across testbeds. This is purely a simulation-bootstrap shortcut:
// every node still holds a distinct keypair and every cryptographic
// operation is performed for real.
#pragma once

#include "crypto/rsa.hpp"

namespace whisper {

/// The idx-th pooled keypair with the given modulus size. Thread-compatible
/// (single-threaded simulations); grows the pool on demand.
const crypto::RsaKeyPair& pooled_keypair(std::size_t idx, std::size_t bits);

}  // namespace whisper

#include "whisper/realnet.hpp"

#include "net/spi.hpp"
#include "whisper/keypool.hpp"

namespace whisper {

NodeConfig realtime_node_config() {
  NodeConfig cfg;

  // Peer sampling: 150 ms cycles, 100 ms partner timeout. A loopback RTT
  // is microseconds, so the timeout is dominated by scheduling noise; 100 ms
  // keeps honest exchanges from ever tripping the suspicion counter.
  cfg.pss.cycle = 150 * net::kMillisecond;
  cfg.pss.response_timeout = 100 * net::kMillisecond;
  cfg.pss.quarantine_ttl = 2 * net::kSecond;
  cfg.pss.pi_min_public = 3;

  cfg.keys.request_timeout = 500 * net::kMillisecond;

  cfg.wcl.pi = 3;
  cfg.wcl.ack_timeout = 500 * net::kMillisecond;
  cfg.wcl.min_rto = 50 * net::kMillisecond;
  cfg.wcl.max_rto = 2 * net::kSecond;
  cfg.wcl.pending_forward_ttl = 5 * net::kSecond;
  cfg.wcl.sweep_interval = net::kSecond;

  cfg.ppss.cycle = 250 * net::kMillisecond;
  cfg.ppss.response_timeout = 500 * net::kMillisecond;
  cfg.ppss.pcp_refresh = net::kSecond;
  cfg.ppss.leader_timeout = 10 * net::kSecond;

  cfg.transport.keepalive_period = net::kSecond;
  cfg.transport.registration_ttl = 5 * net::kSecond;
  cfg.transport.probe_min_interval = 200 * net::kMillisecond;
  // Punched routes must expire on the same timescale as the emulated NAT
  // leases the localnet shim applies (seconds, not the sim's hour-scale
  // default): a hole whose far mapping died looks healthy until the TTL
  // forces traffic back through the relay, where the observed-src stamp
  // triggers re-punching.
  cfg.transport.route_ttl = 10 * net::kSecond;
  cfg.transport.register_retry_initial = 250 * net::kMillisecond;

  return cfg;
}

UdpMesh::Config::Config() : node(realtime_node_config()) {}

UdpMesh::UdpMesh(Config config)
    : config_(std::move(config)), rng_(config_.seed), backend_(config_.backend) {
  tracer_.set_clock(net::clock_fn(backend_));
  tracer_.set_enabled(false);
  flight_.set_clock(net::clock_fn(backend_));
  flight_.set_enabled(config_.flight);
  backend_.set_flight(&flight_);
}

UdpMesh::~UdpMesh() {
  for (auto& n : nodes_) {
    if (n->running()) n->stop();
  }
}

WhisperNode* UdpMesh::spawn_node() {
  const auto ep = backend_.reserve_endpoint();
  if (!ep) return nullptr;
  const NodeId id{next_node_id_++};

  auto node = std::make_unique<WhisperNode>(
      backend_, backend_, id, *ep, /*is_public=*/true,
      pooled_keypair(next_key_index_++, config_.node.rsa_bits), config_.node,
      rng_.fork(), telemetry::Sinks{&registry_, &tracer_, &flight_});

  std::vector<pss::ContactCard> bootstrap;
  std::vector<WhisperNode*> alive = nodes();
  rng_.shuffle(alive);
  for (WhisperNode* n : alive) {
    if (bootstrap.size() >= config_.bootstrap_contacts) break;
    if (!n->running()) continue;
    bootstrap.push_back(n->transport().self_card());
  }

  node->start(bootstrap);
  nodes_.push_back(std::move(node));
  return nodes_.back().get();
}

std::vector<WhisperNode*> UdpMesh::nodes() {
  std::vector<WhisperNode*> out;
  out.reserve(nodes_.size());
  for (auto& n : nodes_) out.push_back(n.get());
  return out;
}

}  // namespace whisper

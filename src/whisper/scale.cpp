#include "whisper/scale.hpp"

#include <algorithm>
#include <cassert>

#include "sim/latency.hpp"
#include "telemetry/export.hpp"
#include "whisper/keypool.hpp"

namespace whisper {

std::size_t ScaleTestbed::index_of_ip(std::uint32_t ip) {
  if (ip >= (100u << 24)) return ip - ((100u << 24) + 1);
  if (ip >= (10u << 24)) return ip - ((10u << 24) + 1);
  return ip - ((1u << 24) + 1);
}

ScaleTestbed::ScaleTestbed(ScaleConfig config)
    : config_(std::move(config)), plan_rng_(config_.seed) {
  assert(config_.shards >= 1);
  const std::size_t S = config_.shards;
  shards_.reserve(S);

  // The conservative window: the engine may run each shard this far ahead
  // before a barrier, because nothing sent inside the window can arrive
  // sooner than the latency floor.
  const net::Time window = sim::make_latency_model(config_.latency)->lower_bound();

  std::vector<sim::ShardedEngine::Shard> engine_shards;
  for (std::size_t s = 0; s < S; ++s) {
    auto st = std::make_unique<ShardState>();
    st->sim = std::make_unique<sim::Simulator>(config_.seed ^ (0x5eed + s));
    st->flight.set_clock(net::clock_fn(*st->sim));
    st->flight.set_enabled(config_.flight);
    st->flight.set_id_base(static_cast<std::uint64_t>(s) << 48);
    st->flight.set_node_resolver([this](Endpoint ep) {
      auto it = endpoint_ids_.find(ep);
      return it != endpoint_ids_.end() ? it->second : 0ull;
    });
    st->fabric = std::make_unique<nat::NatFabric>(*st->sim);
    st->net = std::make_unique<sim::Network>(
        *st->sim, sim::make_latency_model(config_.latency), &st->registry);
    st->net->set_translator(st->fabric.get());
    st->net->set_flight(&st->flight);
    st->net->set_deterministic_delivery(config_.seed);
    st->net->set_per_node_accounting(config_.node_telemetry);
    shards_.push_back(std::move(st));
    engine_shards.push_back(
        sim::ShardedEngine::Shard{shards_[s]->sim.get(), shards_[s]->net.get()});
  }
  if (S > 1) {
    for (std::size_t s = 0; s < S; ++s) {
      shards_[s]->net->set_shard_router(
          [this, s](Endpoint dst) { return shard_of_ip(dst.ip) != s; },
          [this, s](sim::Network::RemoteDelivery d) {
            engine_->enqueue(s, shard_of_ip(d.dgram.dst.ip), std::move(d));
          });
    }
  }
  engine_ = std::make_unique<sim::ShardedEngine>(std::move(engine_shards), window);

  for (std::size_t i = 0; i < config_.initial_nodes; ++i) spawn_node();
}

ScaleTestbed::~ScaleTestbed() = default;

telemetry::Sinks ScaleTestbed::sinks(std::size_t shard) {
  if (!config_.node_telemetry) return telemetry::Sinks{};
  ShardState& st = *shards_[shard];
  return telemetry::Sinks{&st.registry, &st.tracer, &st.flight};
}

WhisperNode& ScaleTestbed::spawn_node() {
  const std::size_t i = nodes_.size();
  const std::size_t s = i % shards_.size();
  ShardState& st = *shards_[s];

  // Everything random about this node comes from the planner rng, consumed
  // here in global index order — identical for every shard count. The first
  // two nodes are public so relays and bootstrap contacts exist.
  nat::NatType type = nat::NatType::kNone;
  if (i >= 2) type = nat::draw_nat_type(plan_rng_, config_.natted_fraction);
  Rng node_rng = plan_rng_.fork();

  const bool is_public = type == nat::NatType::kNone;
  const Endpoint ep = is_public
                          ? st.fabric->add_public_node_at(public_ip(i))
                          : st.fabric->add_natted_node_at(type, private_ip(i),
                                                          device_ip(i));
  const NodeId id{static_cast<std::uint64_t>(i) + 1};
  endpoint_ids_[ep] = id.value;

  auto node = std::make_unique<WhisperNode>(
      *st.sim, *st.net, id, ep, is_public,
      pooled_keypair(config_.key_cycle ? i % config_.key_cycle : i,
                     config_.node.rsa_bits),
      config_.node, std::move(node_rng),
      sinks(s));

  // Bootstrap contacts: a planner-sampled set of live nodes, always
  // including at least one public node (required as a relay for N-nodes).
  // Bounded rejection sampling instead of a full shuffle: booting node k
  // must not cost O(k) planner work or a 100k boot becomes quadratic. All
  // draws stay on the main thread in global boot order (S-invariance).
  std::vector<pss::ContactCard> bootstrap;
  if (!nodes_.empty()) {
    const std::size_t want = std::min(config_.bootstrap_contacts, nodes_.size());
    std::vector<std::size_t> picked;
    for (std::size_t attempts = 0; attempts < 20 * want && picked.size() < want;
         ++attempts) {
      const std::size_t j =
          static_cast<std::size_t>(plan_rng_.next_below(nodes_.size()));
      if (!nodes_[j]->running()) continue;
      if (std::find(picked.begin(), picked.end(), j) != picked.end()) continue;
      picked.push_back(j);
      bootstrap.push_back(nodes_[j]->transport().self_card());
    }
    const bool has_public =
        std::any_of(bootstrap.begin(), bootstrap.end(),
                    [](const pss::ContactCard& c) { return c.is_public; });
    if (!has_public) {
      // Walk forward from a random start until a live public node turns up
      // (expected a few steps at any realistic public fraction).
      const std::size_t start =
          static_cast<std::size_t>(plan_rng_.next_below(nodes_.size()));
      for (std::size_t step = 0; step < nodes_.size(); ++step) {
        const std::size_t j = (start + step) % nodes_.size();
        if (nodes_[j]->running() && nodes_[j]->is_public()) {
          bootstrap.push_back(nodes_[j]->transport().self_card());
          break;
        }
      }
    }
  }

  node->start(bootstrap);
  nodes_.push_back(std::move(node));
  return *nodes_.back();
}

void ScaleTestbed::kill_node(std::size_t global_index) {
  if (global_index >= nodes_.size()) return;
  WhisperNode& n = *nodes_[global_index];
  if (!n.running()) return;
  n.stop();
  shards_[global_index % shards_.size()]->fabric->remove_node(n.internal_endpoint());
}

std::size_t ScaleTestbed::kill_random_node() {
  std::vector<std::size_t> alive;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i]->running()) alive.push_back(i);
  }
  if (alive.empty()) return static_cast<std::size_t>(-1);
  const std::size_t victim = alive[plan_rng_.pick_index(alive)];
  kill_node(victim);
  return victim;
}

WhisperNode* ScaleTestbed::node_at(std::size_t global_index) {
  return global_index < nodes_.size() ? nodes_[global_index].get() : nullptr;
}

std::size_t ScaleTestbed::alive_count() const {
  return static_cast<std::size_t>(
      std::count_if(nodes_.begin(), nodes_.end(),
                    [](const std::unique_ptr<WhisperNode>& n) { return n->running(); }));
}

std::vector<WhisperNode*> ScaleTestbed::alive_nodes() {
  std::vector<WhisperNode*> out;
  for (auto& n : nodes_) {
    if (n->running()) out.push_back(n.get());
  }
  return out;
}

void ScaleTestbed::run_for(net::Time duration) {
  engine_->run_until(engine_->now() + duration);
}

std::vector<faults::FaultFabric*> ScaleTestbed::install_fault_fabrics() {
  std::vector<faults::FaultFabric*> out;
  // Shard-local victim randomness: chaos runs are not byte-identical across
  // shard counts (documented in DESIGN.md §13); they gate on recovery.
  Rng fault_rng(config_.seed ^ 0xfa017);
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    ShardState& st = *shards_[s];
    if (st.faults == nullptr) {
      faults::FaultFabric::Environment env;
      env.live_endpoints = [this, s] {
        std::vector<Endpoint> eps;
        for (std::size_t i = s; i < nodes_.size(); i += shards_.size()) {
          if (nodes_[i]->running()) eps.push_back(nodes_[i]->internal_endpoint());
        }
        return eps;
      };
      env.relay_endpoints = [this, s] {
        std::vector<Endpoint> eps;
        for (std::size_t i = s; i < nodes_.size(); i += shards_.size()) {
          WhisperNode& n = *nodes_[i];
          if (n.running() && n.is_public() &&
              n.transport().relayed_registrations() > 0) {
            eps.push_back(n.internal_endpoint());
          }
        }
        return eps;
      };
      env.crash_node = [this, s](Endpoint ep) {
        for (std::size_t i = s; i < nodes_.size(); i += shards_.size()) {
          if (nodes_[i]->running() && nodes_[i]->internal_endpoint() == ep) {
            // Stop directly: this runs on the shard's worker thread and must
            // only touch shard-local state.
            nodes_[i]->stop();
            shards_[s]->fabric->remove_node(ep);
            return;
          }
        }
      };
      env.reset_nat = [this, s](Endpoint ep) { shards_[s]->fabric->reset_mappings(ep); };
      st.faults = std::make_unique<faults::FaultFabric>(
          *st.sim, *st.net, std::move(env), fault_rng.fork(),
          telemetry::Scope(sinks(s), 0));
    }
    out.push_back(st.faults.get());
  }
  return out;
}

std::string ScaleTestbed::merged_metrics_jsonl() const {
  telemetry::Registry merged;
  for (const auto& st : shards_) {
    telemetry::merge_registry_into(merged, st->registry);
  }
  return telemetry::to_jsonl(merged);
}

std::string ScaleTestbed::canonical_flight_jsonl() const {
  std::vector<const telemetry::FlightRecorder*> recs;
  recs.reserve(shards_.size());
  for (const auto& st : shards_) recs.push_back(&st->flight);
  return telemetry::to_jsonl(telemetry::canonical_flight_records(recs));
}

}  // namespace whisper

// WhisperNode: one node's full protocol stack, wired together.
//
//   Transport (Nylon routing) -> NylonPss (+Π bias) -> KeyService -> WCL
//   -> per-group Ppss instances -> applications (e.g. T-Chord)
//
// The node owns the WCL payload dispatcher: every confidential payload is
// prefixed with a GroupId and routed to the matching Ppss instance. Nodes
// that are not members of the group have no instance and silently drop the
// payload — consistent with membership secrecy.
#pragma once

#include <memory>
#include "common/densemap.hpp"

#include "keysvc/keyservice.hpp"
#include "nylon/pss.hpp"
#include "nylon/transport.hpp"
#include "ppss/ppss.hpp"
#include "net/cpumeter.hpp"
#include "telemetry/scope.hpp"
#include "wcl/wcl.hpp"

namespace whisper {

struct NodeConfig {
  nylon::TransportConfig transport;
  nylon::PssConfig pss;
  keysvc::KeyServiceConfig keys;
  wcl::WclConfig wcl;
  ppss::PpssConfig ppss;
  std::size_t rsa_bits = 512;
  /// Process incarnation epoch (DESIGN.md §14). 0 = no durable state.
  /// Overrides transport.incarnation and wcl.incarnation so the whole
  /// stack agrees on the epoch; a node restoring from a state dir sets
  /// this to its bumped persisted value before construction.
  std::uint32_t incarnation = 0;
};

class WhisperNode {
 public:
  /// `keypair` must outlive the node (typically from the key pool).
  /// `sinks` (optional) routes every layer's metrics/trace events into the
  /// testbed's registry and tracer, on this node's timeline.
  WhisperNode(net::Clock& clock, net::Stack& net, NodeId id, Endpoint internal_ep,
              bool is_public, const crypto::RsaKeyPair& keypair, NodeConfig config, Rng rng,
              telemetry::Sinks sinks = {});
  ~WhisperNode();

  WhisperNode(const WhisperNode&) = delete;
  WhisperNode& operator=(const WhisperNode&) = delete;

  NodeId id() const { return id_; }
  bool is_public() const { return transport_.is_public(); }
  Endpoint internal_endpoint() const { return transport_.internal_endpoint(); }

  /// Boot: set the relay (N-nodes), seed the view, start gossiping.
  void start(const std::vector<pss::ContactCard>& bootstrap);
  /// Full shutdown (churn departure). Safe to call twice.
  void stop();
  bool running() const { return transport_.running(); }

  nylon::Transport& transport() { return transport_; }
  nylon::NylonPss& pss() { return pss_; }
  keysvc::KeyService& keys() { return keys_; }
  wcl::Wcl& wcl() { return wcl_; }
  net::CpuMeter& cpu() { return cpu_; }
  const crypto::RsaKeyPair& keypair() const { return keypair_; }

  /// Found a new private group led by this node.
  ppss::Ppss& create_group(GroupId group, crypto::RsaKeyPair group_key);
  /// Join an existing group through `entry_point` with an accreditation.
  ppss::Ppss& join_group(GroupId group, const ppss::Accreditation& accreditation,
                         const wcl::RemotePeer& entry_point);
  /// Resume a group membership from durable state after a crash: restore
  /// the key-epoch history + passport (and for leaders the group key). The
  /// instance is started; joined() is false if the persisted passport
  /// failed re-verification (callers then fall back to a fresh join()).
  ppss::Ppss& resume_group(GroupId group,
                           const std::vector<std::pair<std::uint64_t, crypto::RsaPublicKey>>& epochs,
                           const ppss::Passport& passport,
                           std::optional<crypto::RsaKeyPair> group_key = std::nullopt);
  /// Instance lookup; nullptr when this node is not a member.
  ppss::Ppss* group(GroupId group);
  std::size_t group_count() const { return groups_.size(); }

 private:
  ppss::Ppss& make_group_instance(GroupId group);
  void dispatch_wcl(Bytes payload);

  net::Clock& clock_;
  NodeId id_;
  const crypto::RsaKeyPair& keypair_;
  NodeConfig config_;
  Rng rng_;
  telemetry::Scope tel_;
  net::CpuMeter cpu_;
  nylon::Transport transport_;
  nylon::NylonPss pss_;
  keysvc::KeyService keys_;
  wcl::Wcl wcl_;
  DenseMap<GroupId, std::unique_ptr<ppss::Ppss>> groups_;
};

}  // namespace whisper

#include "whisper/testbed.hpp"

#include <algorithm>

#include "whisper/keypool.hpp"

namespace whisper {

WhisperTestbed::WhisperTestbed(TestbedConfig config)
    : config_(std::move(config)), rng_(config_.seed), sim_(config_.seed ^ 0x5eed),
      recorder_(registry_) {
  sim_.attach_telemetry(registry_);
  tracer_.set_clock(net::clock_fn(sim_));
  tracer_.set_enabled(config_.trace);
  flight_.set_clock(net::clock_fn(sim_));
  flight_.set_enabled(config_.flight);
  flight_.set_node_resolver([this](Endpoint ep) {
    auto it = endpoint_ids_.find(ep);
    return it != endpoint_ids_.end() ? it->second : 0ull;
  });
  fabric_ = std::make_unique<nat::NatFabric>(sim_);
  net_ = std::make_unique<sim::Network>(sim_, sim::make_latency_model(config_.latency),
                                        &registry_);
  net_->set_translator(fabric_.get());
  net_->set_flight(&flight_);
  net_->set_tracer(&tracer_);
  if (config_.telemetry_sample_every > 0) schedule_telemetry_sample();
  for (std::size_t i = 0; i < config_.initial_nodes; ++i) spawn_node();
}

void WhisperTestbed::schedule_telemetry_sample() {
  sim_.schedule_after(config_.telemetry_sample_every, [this] {
    recorder_.sample(sim_.now());
    schedule_telemetry_sample();
  });
}

WhisperNode& WhisperTestbed::spawn_node() {
  const NodeId id{next_node_id_++};
  // The very first nodes must be public so that relays and bootstrap
  // contacts exist for everyone after them.
  nat::NatType type = nat::NatType::kNone;
  if (alive_public_nodes().size() >= 2) {
    type = nat::draw_nat_type(rng_, config_.natted_fraction);
  }
  const bool is_public = type == nat::NatType::kNone;
  const Endpoint ep =
      is_public ? fabric_->add_public_node() : fabric_->add_natted_node(type);
  endpoint_ids_[ep] = id.value;

  auto node = std::make_unique<WhisperNode>(sim_, *net_, id, ep, is_public,
                                            pooled_keypair(next_key_index_++,
                                                           config_.node.rsa_bits),
                                            config_.node, rng_.fork(), sinks());

  node->start(sample_bootstrap(id));
  nodes_.push_back(std::move(node));
  return *nodes_.back();
}

std::vector<pss::ContactCard> WhisperTestbed::sample_bootstrap(NodeId exclude) {
  // Bootstrap contacts: a random sample of live nodes, always including at
  // least one public node (required as a relay for N-nodes).
  std::vector<pss::ContactCard> bootstrap;
  auto alive = alive_nodes();
  std::erase_if(alive, [&](WhisperNode* n) { return n->id() == exclude; });
  rng_.shuffle(alive);
  for (WhisperNode* n : alive) {
    if (bootstrap.size() >= config_.bootstrap_contacts) break;
    bootstrap.push_back(n->transport().self_card());
  }
  const bool has_public = std::any_of(bootstrap.begin(), bootstrap.end(),
                                      [](const pss::ContactCard& c) { return c.is_public; });
  if (!has_public) {
    for (WhisperNode* n : alive) {
      if (n->is_public()) {
        bootstrap.push_back(n->transport().self_card());
        break;
      }
    }
  }
  return bootstrap;
}

WhisperNode* WhisperTestbed::restart_node(NodeId id) {
  WhisperNode* old = node(id);
  if (old == nullptr || !old->running()) return nullptr;
  const Endpoint ep = old->internal_endpoint();
  const bool is_public = old->is_public();
  const std::uint32_t incarnation = old->transport().incarnation() + 1;
  // Abrupt stop: timers die, no departure message goes out (there is
  // none), the endpoint frees up — but the NAT binding and the entry in
  // endpoint_ids_ stay, exactly like a process dying under kill -9.
  old->stop();
  NodeConfig cfg = config_.node;
  cfg.incarnation = incarnation;
  auto fresh = std::make_unique<WhisperNode>(sim_, *net_, id, ep, is_public,
                                             old->keypair(), cfg, rng_.fork(),
                                             sinks());
  fresh->start(sample_bootstrap(id));
  nodes_.push_back(std::move(fresh));
  return nodes_.back().get();
}

NodeId WhisperTestbed::kill_random_node() {
  auto alive = alive_nodes();
  if (alive.empty()) return kNilNode;
  WhisperNode* victim = alive[rng_.pick_index(alive)];
  const NodeId id = victim->id();
  kill_node(id);
  return id;
}

void WhisperTestbed::kill_node(NodeId id) {
  for (auto& n : nodes_) {
    if (n->id() == id && n->running()) {
      n->stop();
      fabric_->remove_node(n->internal_endpoint());
      return;
    }
  }
}

WhisperNode* WhisperTestbed::node(NodeId id) {
  // Restarts leave the stopped predecessor in nodes_ (its statistics stay
  // readable); lookups prefer the live incarnation, then the newest.
  WhisperNode* found = nullptr;
  for (auto& n : nodes_) {
    if (n->id() != id) continue;
    found = n.get();
    if (found->running()) return found;
  }
  return found;
}

std::vector<WhisperNode*> WhisperTestbed::all_nodes() {
  std::vector<WhisperNode*> out;
  out.reserve(nodes_.size());
  for (auto& n : nodes_) out.push_back(n.get());
  return out;
}

std::vector<WhisperNode*> WhisperTestbed::alive_nodes() {
  std::vector<WhisperNode*> out;
  for (auto& n : nodes_) {
    if (n->running()) out.push_back(n.get());
  }
  return out;
}

std::vector<WhisperNode*> WhisperTestbed::alive_public_nodes() {
  std::vector<WhisperNode*> out;
  for (auto& n : nodes_) {
    if (n->running() && n->is_public()) out.push_back(n.get());
  }
  return out;
}

std::size_t WhisperTestbed::alive_count() const {
  return static_cast<std::size_t>(
      std::count_if(nodes_.begin(), nodes_.end(),
                    [](const std::unique_ptr<WhisperNode>& n) { return n->running(); }));
}

void WhisperTestbed::run_for(net::Time duration) { sim_.run_until(sim_.now() + duration); }

pss::OverlayGraph WhisperTestbed::overlay_snapshot() {
  pss::OverlayGraph graph;
  for (auto& n : nodes_) {
    if (!n->running()) continue;
    std::vector<NodeId> nbrs;
    for (const auto& e : n->pss().view().entries()) nbrs.push_back(e.id());
    graph[n->id()] = std::move(nbrs);
  }
  return graph;
}

WhisperNode* WhisperTestbed::random_node() {
  auto alive = alive_nodes();
  if (alive.empty()) return nullptr;
  return alive[rng_.pick_index(alive)];
}

std::vector<Endpoint> WhisperTestbed::relay_endpoints() {
  std::vector<Endpoint> out;
  for (auto& n : nodes_) {
    if (!n->running() || !n->is_public()) continue;
    if (n->transport().relayed_registrations() == 0) continue;
    out.push_back(n->internal_endpoint());
  }
  return out;
}

faults::FaultFabric& WhisperTestbed::install_fault_fabric() {
  if (faults_ != nullptr) return *faults_;
  faults::FaultFabric::Environment env;
  env.live_endpoints = [this] {
    std::vector<Endpoint> out;
    for (auto& n : nodes_) {
      if (n->running()) out.push_back(n->internal_endpoint());
    }
    return out;
  };
  env.relay_endpoints = [this] { return relay_endpoints(); };
  env.crash_node = [this](Endpoint ep) {
    for (auto& n : nodes_) {
      if (n->running() && n->internal_endpoint() == ep) {
        kill_node(n->id());
        return;
      }
    }
  };
  env.reset_nat = [this](Endpoint ep) { fabric_->reset_mappings(ep); };
  faults_ = std::make_unique<faults::FaultFabric>(
      sim_, *net_, std::move(env), rng_.fork(), telemetry::Scope(sinks(), 0));
  return *faults_;
}

}  // namespace whisper

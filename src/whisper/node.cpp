#include "whisper/node.hpp"

namespace whisper {

namespace {

// One incarnation value for the whole stack: NodeConfig::incarnation wins
// over whatever the per-layer configs carried.
NodeConfig apply_incarnation(NodeConfig config) {
  if (config.incarnation != 0) {
    config.transport.incarnation = config.incarnation;
    config.wcl.incarnation = config.incarnation;
    config.ppss.incarnation = config.incarnation;
  }
  return config;
}

}  // namespace

WhisperNode::WhisperNode(net::Clock& clock, net::Stack& net, NodeId id,
                         Endpoint internal_ep, bool is_public,
                         const crypto::RsaKeyPair& keypair, NodeConfig config, Rng rng,
                         telemetry::Sinks sinks)
    : clock_(clock), id_(id), keypair_(keypair), config_(apply_incarnation(std::move(config))),
      rng_(rng),
      tel_(sinks, id.value),
      transport_(clock, net, id, internal_ep, is_public, config_.transport),
      pss_(clock, transport_, config_.pss, rng_.fork(), tel_),
      keys_(clock, transport_, keypair_, config_.keys),
      wcl_(clock, transport_, keys_, pss_, cpu_, config_.wcl, rng_.fork(), tel_) {
  transport_.set_cpu_meter(&cpu_);
  // A peer that shows up with a bumped incarnation crashed and restarted:
  // the transport has already purged its routes; clear the PSS strikes (the
  // rejoin is proof-of-life) and the WCL's RTT memory of the old process.
  transport_.on_peer_restart = [this](NodeId peer) {
    pss_.note_peer_restart(peer);
    wcl_.note_peer_restart(peer);
  };
  // Public key sampling rides on the PSS gossip (§III-B-2)...
  pss_.extra_provider = [this] { return keys_.piggyback(); };
  pss_.extra_consumer = [this](const pss::ContactCard& from, BytesView extra) {
    keys_.consume(from, extra);
  };
  // ...and every completed exchange feeds the connection backlog (§III-A).
  pss_.on_exchange = [this](const pss::ContactCard& partner) {
    wcl_.on_gossip_exchange(partner);
  };
  // Confidential payloads are routed to the owning group instance.
  wcl_.on_deliver = [this](Bytes payload) { dispatch_wcl(std::move(payload)); };
}

WhisperNode::~WhisperNode() { stop(); }

void WhisperNode::start(const std::vector<pss::ContactCard>& bootstrap) {
  if (!transport_.is_public()) {
    // An N-node needs a relay before it is reachable at all: pick the first
    // public bootstrap contact (the PSS repairs the choice later if needed).
    for (const auto& card : bootstrap) {
      if (card.is_public) {
        transport_.set_relay(card);
        break;
      }
    }
  }
  pss_.bootstrap(bootstrap);
  pss_.start();
}

void WhisperNode::stop() {
  for (auto&& [gid, group] : groups_) group->stop();
  pss_.stop();
  transport_.shutdown();
}

ppss::Ppss& WhisperNode::make_group_instance(GroupId group) {
  auto it = groups_.find(group);
  if (it == groups_.end()) {
    auto instance = std::make_unique<ppss::Ppss>(clock_, wcl_, id_, group, cpu_, config_.ppss,
                                                 rng_.fork(), tel_);
    it = groups_.emplace(group, std::move(instance)).first;
  }
  return *it->second;
}

ppss::Ppss& WhisperNode::create_group(GroupId group, crypto::RsaKeyPair group_key) {
  ppss::Ppss& instance = make_group_instance(group);
  instance.found_group(std::move(group_key));
  instance.start();
  return instance;
}

ppss::Ppss& WhisperNode::join_group(GroupId group, const ppss::Accreditation& accreditation,
                                    const wcl::RemotePeer& entry_point) {
  ppss::Ppss& instance = make_group_instance(group);
  instance.join(accreditation, entry_point);
  instance.start();
  return instance;
}

ppss::Ppss& WhisperNode::resume_group(
    GroupId group, const std::vector<std::pair<std::uint64_t, crypto::RsaPublicKey>>& epochs,
    const ppss::Passport& passport, std::optional<crypto::RsaKeyPair> group_key) {
  ppss::Ppss& instance = make_group_instance(group);
  instance.resume(epochs, passport, std::move(group_key));
  instance.start();
  return instance;
}

ppss::Ppss* WhisperNode::group(GroupId group) {
  auto it = groups_.find(group);
  return it == groups_.end() ? nullptr : it->second.get();
}

void WhisperNode::dispatch_wcl(Bytes payload) {
  Reader r(payload);
  const GroupId group = r.group_id();
  if (!r.ok()) return;
  auto it = groups_.find(group);
  if (it == groups_.end()) return;  // not a member: drop silently
  cpu_.charge(net::CpuCategory::kPpssHandler,
              [&] { it->second->handle_payload(r.rest()); });
}

}  // namespace whisper

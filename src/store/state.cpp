#include "store/state.hpp"

#include <sys/stat.h>
#include <sys/types.h>

#include <cerrno>
#include <cstring>

namespace whisper::store {

namespace {

// StoredGroup presence flags.
constexpr std::uint8_t kFlagLeader = 1u << 0;
constexpr std::uint8_t kFlagGroupKey = 1u << 1;
constexpr std::uint8_t kFlagAccreditation = 1u << 2;
constexpr std::uint8_t kFlagEntryPoint = 1u << 3;

void serialize_bigint(Writer& w, const crypto::BigInt& v) {
  w.bytes(v.to_bytes());
}

std::optional<crypto::BigInt> deserialize_bigint(Reader& r) {
  Bytes raw = r.bytes(crypto::kMaxKeyComponentBytes);
  if (!r.ok()) return std::nullopt;
  return crypto::BigInt::from_bytes(raw);
}

}  // namespace

void serialize_keypair(Writer& w, const crypto::RsaKeyPair& kp) {
  serialize_bigint(w, kp.pub.n);
  serialize_bigint(w, kp.pub.e);
  serialize_bigint(w, kp.d);
  serialize_bigint(w, kp.p);
  serialize_bigint(w, kp.q);
  serialize_bigint(w, kp.dp);
  serialize_bigint(w, kp.dq);
  serialize_bigint(w, kp.qinv);
}

std::optional<crypto::RsaKeyPair> deserialize_keypair(Reader& r) {
  crypto::RsaKeyPair kp;
  crypto::BigInt* fields[] = {&kp.pub.n, &kp.pub.e, &kp.d, &kp.p,
                              &kp.q,     &kp.dp,    &kp.dq, &kp.qinv};
  for (crypto::BigInt* f : fields) {
    auto v = deserialize_bigint(r);
    if (!v) return std::nullopt;
    *f = std::move(*v);
  }
  // A zero modulus can't be a key; flag it so replay stops cleanly.
  if (kp.pub.n.is_zero()) {
    r.fail(DecodeError::kBadValue);
    return std::nullopt;
  }
  return kp;
}

void StoredGroup::serialize(Writer& w) const {
  w.group_id(group);
  std::uint8_t flags = 0;
  if (is_leader) flags |= kFlagLeader;
  if (group_key) flags |= kFlagGroupKey;
  if (accreditation) flags |= kFlagAccreditation;
  if (entry_point) flags |= kFlagEntryPoint;
  w.u8(flags);
  w.u16(static_cast<std::uint16_t>(epochs.size()));
  for (const auto& [epoch, key] : epochs) {
    w.u64(epoch);
    w.bytes(key.serialize());
  }
  passport.serialize(w);
  if (group_key) serialize_keypair(w, *group_key);
  if (accreditation) accreditation->serialize(w);
  if (entry_point) entry_point->serialize(w);
}

std::optional<StoredGroup> StoredGroup::deserialize(Reader& r) {
  StoredGroup g;
  g.group = r.group_id();
  const std::uint8_t flags = r.u8();
  if (r.ok() && (flags & ~(kFlagLeader | kFlagGroupKey | kFlagAccreditation |
                           kFlagEntryPoint)) != 0) {
    r.fail(DecodeError::kBadValue);
    return std::nullopt;
  }
  g.is_leader = (flags & kFlagLeader) != 0;
  const std::uint32_t n_epochs = r.count16(kMaxStoredEpochs);
  for (std::uint32_t i = 0; i < n_epochs; ++i) {
    const std::uint64_t epoch = r.u64();
    Bytes key_blob = r.bytes(crypto::kMaxKeyWireBytes);
    if (!r.ok()) return std::nullopt;
    auto key = crypto::RsaPublicKey::deserialize(key_blob);
    if (!key) {
      r.fail(DecodeError::kBadValue);
      return std::nullopt;
    }
    g.epochs.emplace_back(epoch, std::move(*key));
  }
  auto passport = ppss::Passport::deserialize(r);
  if (!passport) return std::nullopt;
  g.passport = std::move(*passport);
  if (flags & kFlagGroupKey) {
    auto kp = deserialize_keypair(r);
    if (!kp) return std::nullopt;
    g.group_key = std::move(*kp);
  }
  if (flags & kFlagAccreditation) {
    auto acc = ppss::Accreditation::deserialize(r);
    if (!acc) return std::nullopt;
    g.accreditation = std::move(*acc);
  }
  if (flags & kFlagEntryPoint) {
    auto entry = wcl::RemotePeer::deserialize(r);
    if (!entry) return std::nullopt;
    g.entry_point = std::move(*entry);
  }
  if (!r.ok()) return std::nullopt;
  return g;
}

Bytes NodeState::serialize() const {
  Writer w;
  w.u32(kSnapshotMagic);
  w.node_id(id);
  w.boolean(is_public);
  w.endpoint(endpoint);
  w.u32(incarnation);
  serialize_keypair(w, identity);
  w.u16(static_cast<std::uint16_t>(groups.size()));
  for (const auto& g : groups) g.serialize(w);
  w.u16(static_cast<std::uint16_t>(peer_hints.size()));
  for (const auto& c : peer_hints) c.serialize(w);
  return std::move(w).take();
}

std::optional<NodeState> NodeState::deserialize(BytesView data, DecodeError* why) {
  Reader r(data);
  auto reject = [&](DecodeError fallback) -> std::optional<NodeState> {
    if (why) *why = r.reject_reason() != DecodeError::kNone ? r.reject_reason() : fallback;
    return std::nullopt;
  };

  NodeState s;
  if (r.u32() != kSnapshotMagic) {
    r.fail(DecodeError::kBadValue);
    return reject(DecodeError::kBadValue);
  }
  s.id = r.node_id();
  s.is_public = r.boolean();
  s.endpoint = r.endpoint();
  s.incarnation = r.u32();
  if (r.ok() && (s.id.is_nil() || s.incarnation == 0)) {
    r.fail(DecodeError::kBadValue);
    return reject(DecodeError::kBadValue);
  }
  auto identity = deserialize_keypair(r);
  if (!identity) return reject(DecodeError::kTruncated);
  s.identity = std::move(*identity);
  const std::uint32_t n_groups = r.count16(kMaxStoredGroups);
  for (std::uint32_t i = 0; i < n_groups; ++i) {
    auto g = StoredGroup::deserialize(r);
    if (!g) return reject(DecodeError::kTruncated);
    s.groups.push_back(std::move(*g));
  }
  const std::uint32_t n_hints = r.count16(kMaxStoredPeerHints);
  for (std::uint32_t i = 0; i < n_hints; ++i) {
    s.peer_hints.push_back(pss::ContactCard::deserialize(r));
  }
  if (!r.expect_done()) return reject(DecodeError::kTrailingBytes);
  return s;
}

StoredGroup* NodeState::find_group(GroupId g) {
  for (auto& sg : groups) {
    if (sg.group == g) return &sg;
  }
  return nullptr;
}

void NodeState::upsert_group(StoredGroup g) {
  if (StoredGroup* existing = find_group(g.group)) {
    *existing = std::move(g);
  } else if (groups.size() < kMaxStoredGroups) {
    groups.push_back(std::move(g));
  }
}

bool NodeStateStore::open(const std::string& dir) {
  dir_ = dir;
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    error_ = std::string("mkdir: ") + std::strerror(errno);
    return false;
  }

  has_state_ = false;
  state_ = NodeState{};
  if (auto snap = read_file(snapshot_path())) {
    DecodeError why = DecodeError::kNone;
    auto s = NodeState::deserialize(*snap, &why);
    if (!s) {
      error_ = std::string("corrupt snapshot: ") + decode_error_name(why);
      return false;
    }
    state_ = std::move(*s);
    has_state_ = true;
  }

  auto replay = journal_.open(journal_path());
  if (!replay) {
    error_ = journal_.last_error();
    return false;
  }
  for (const auto& rec : replay->records) {
    // A record that fails to decode is treated like a torn tail: stop
    // applying, keep everything before it. (The CRC already screens random
    // corruption; this guards a version-skewed or truncated payload.)
    if (!apply_record(rec)) break;
    ++replayed_;
    has_state_ = true;
  }
  return true;
}

bool NodeStateStore::apply_record(const JournalRecord& rec) {
  Reader r(rec.payload);
  switch (static_cast<RecordType>(rec.type)) {
    case RecordType::kIncarnation: {
      const std::uint32_t inc = r.u32();
      if (!r.expect_done() || inc == 0) return false;
      if (inc > state_.incarnation) state_.incarnation = inc;
      return true;
    }
    case RecordType::kGroup: {
      auto g = StoredGroup::deserialize(r);
      if (!g || !r.expect_done()) return false;
      state_.upsert_group(std::move(*g));
      return true;
    }
    case RecordType::kPeerHints: {
      const std::uint32_t n = r.count16(kMaxStoredPeerHints);
      std::vector<pss::ContactCard> hints;
      for (std::uint32_t i = 0; i < n; ++i) hints.push_back(pss::ContactCard::deserialize(r));
      if (!r.expect_done()) return false;
      state_.peer_hints = std::move(hints);
      return true;
    }
  }
  return false;  // unknown record type: do not guess
}

bool NodeStateStore::commit_snapshot() {
  if (!atomic_write_file(snapshot_path(), state_.serialize(), &error_)) return false;
  if (journal_.is_open() && !journal_.reset()) {
    error_ = journal_.last_error();
    return false;
  }
  has_state_ = true;
  return true;
}

bool NodeStateStore::record_incarnation(std::uint32_t incarnation) {
  Writer w;
  w.u32(incarnation);
  if (!journal_.append(static_cast<std::uint8_t>(RecordType::kIncarnation), w.data())) {
    error_ = journal_.last_error();
    return false;
  }
  if (incarnation > state_.incarnation) state_.incarnation = incarnation;
  return true;
}

bool NodeStateStore::record_group(const StoredGroup& g) {
  Writer w;
  g.serialize(w);
  if (!journal_.append(static_cast<std::uint8_t>(RecordType::kGroup), w.data())) {
    error_ = journal_.last_error();
    return false;
  }
  state_.upsert_group(g);
  return true;
}

bool NodeStateStore::record_peer_hints(const std::vector<pss::ContactCard>& hints) {
  Writer w;
  w.u16(static_cast<std::uint16_t>(hints.size()));
  for (const auto& c : hints) c.serialize(w);
  if (!journal_.append(static_cast<std::uint8_t>(RecordType::kPeerHints), w.data())) {
    error_ = journal_.last_error();
    return false;
  }
  state_.peer_hints = hints;
  return true;
}

}  // namespace whisper::store

#include "store/journal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>

namespace whisper::store {

namespace {

constexpr std::size_t kFrameHeaderBytes = 1 + 4 + 4;  // type + len + crc

std::string errno_string(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

bool write_all(int fd, const std::uint8_t* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

bool fsync_dir_of(const std::string& path) {
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd < 0) return false;
  const bool ok = ::fsync(dfd) == 0;
  ::close(dfd);
  return ok;
}

}  // namespace

Bytes encode_record(std::uint8_t type, BytesView payload) {
  // CRC covers [type][len][payload]; assemble that span first.
  Writer body;
  body.u8(type);
  body.u32(static_cast<std::uint32_t>(payload.size()));
  body.raw(payload);
  const Bytes& covered = body.data();

  Writer w;
  w.u8(type);
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.u32(crc32(covered));
  w.raw(payload);
  return std::move(w).take();
}

JournalReplay decode_journal(BytesView data) {
  JournalReplay out;
  std::size_t pos = 0;
  while (pos < data.size()) {
    Reader r(data.subspan(pos));
    const std::uint8_t type = r.u8();
    const std::uint32_t len = r.u32();
    const std::uint32_t crc = r.u32();
    if (!r.ok()) {
      // Header itself is torn.
      out.torn_tail = true;
      out.tail_error = r.error();
      break;
    }
    if (len > kMaxRecordBytes) {
      out.torn_tail = true;
      out.tail_error = DecodeError::kOversized;
      break;
    }
    if (len > r.remaining()) {
      out.torn_tail = true;
      out.tail_error = DecodeError::kBadLength;
      break;
    }
    Bytes payload = r.raw(len);

    // Re-derive the CRC over [type][len][payload] exactly as the writer did.
    Writer covered;
    covered.u8(type);
    covered.u32(len);
    covered.raw(payload);
    if (crc32(covered.data()) != crc) {
      out.torn_tail = true;
      out.tail_error = DecodeError::kBadValue;
      break;
    }

    out.records.push_back(JournalRecord{type, std::move(payload)});
    pos += kFrameHeaderBytes + len;
  }
  out.consumed = pos;
  // A clean stream consumed everything.
  if (!out.torn_tail && pos != data.size()) out.torn_tail = true;
  return out;
}

JournalFile::~JournalFile() { close(); }

void JournalFile::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

std::optional<JournalReplay> JournalFile::open(const std::string& path) {
  close();
  path_ = path;
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    error_ = errno_string("open journal");
    return std::nullopt;
  }

  auto data = read_file(path);
  if (!data) {
    error_ = "read journal failed";
    close();
    return std::nullopt;
  }
  JournalReplay replay = decode_journal(*data);
  if (replay.consumed != data->size()) {
    // Torn or corrupt tail from a crash mid-append: truncate it away so new
    // appends start on a frame boundary (replay already excludes it).
    if (::ftruncate(fd_, static_cast<off_t>(replay.consumed)) != 0 || ::fsync(fd_) != 0) {
      error_ = errno_string("truncate torn tail");
      close();
      return std::nullopt;
    }
    ++torn_tails_;
  }
  if (::lseek(fd_, 0, SEEK_END) < 0) {
    error_ = errno_string("seek journal");
    close();
    return std::nullopt;
  }
  return replay;
}

bool JournalFile::append(std::uint8_t type, BytesView payload) {
  if (fd_ < 0) {
    error_ = "journal not open";
    return false;
  }
  if (payload.size() > kMaxRecordBytes) {
    error_ = "record payload over kMaxRecordBytes";
    return false;
  }
  const Bytes frame = encode_record(type, payload);
  if (!write_all(fd_, frame.data(), frame.size())) {
    error_ = errno_string("append journal");
    return false;
  }
  if (::fsync(fd_) != 0) {
    error_ = errno_string("fsync journal");
    return false;
  }
  return true;
}

bool JournalFile::reset() {
  if (fd_ < 0) {
    error_ = "journal not open";
    return false;
  }
  if (::ftruncate(fd_, 0) != 0 || ::lseek(fd_, 0, SEEK_SET) < 0 || ::fsync(fd_) != 0) {
    error_ = errno_string("reset journal");
    return false;
  }
  return true;
}

namespace {

bool atomic_write_impl(const std::string& path, BytesView data,
                       std::string* error, bool durable) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    if (error) *error = errno_string("open tmp");
    return false;
  }
  const bool wrote =
      write_all(fd, data.data(), data.size()) && (!durable || ::fsync(fd) == 0);
  ::close(fd);
  if (!wrote) {
    if (error) *error = errno_string("write tmp");
    ::unlink(tmp.c_str());
    return false;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    if (error) *error = errno_string("rename");
    ::unlink(tmp.c_str());
    return false;
  }
  // Make the rename itself durable.
  if (durable && !fsync_dir_of(path)) {
    if (error) *error = errno_string("fsync dir");
    return false;
  }
  return true;
}

}  // namespace

bool atomic_write_file(const std::string& path, BytesView data, std::string* error) {
  return atomic_write_impl(path, data, error, /*durable=*/true);
}

bool atomic_publish_file(const std::string& path, BytesView data, std::string* error) {
  return atomic_write_impl(path, data, error, /*durable=*/false);
}

std::optional<Bytes> read_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return std::nullopt;
  Bytes out;
  std::array<std::uint8_t, 64 * 1024> buf;
  for (;;) {
    const ssize_t n = ::read(fd, buf.data(), buf.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return std::nullopt;
    }
    if (n == 0) break;
    out.insert(out.end(), buf.begin(), buf.begin() + n);
  }
  ::close(fd);
  return out;
}

}  // namespace whisper::store

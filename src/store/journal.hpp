// Durable storage primitives for crash recovery (DESIGN.md §14).
//
// Two building blocks, both decoded through the bounds-checked Reader /
// DecodeError taxonomy so hostile or torn on-disk bytes can never drive an
// oversized allocation or a partial-record apply:
//
//  - An *atomic snapshot*: the full node state serialized into a temp file,
//    fsync'd, then renamed over the live snapshot (and the directory
//    fsync'd). A crash at any point leaves either the old snapshot or the
//    new one, never a mix.
//  - An *append-only journal* of CRC-framed records written between
//    snapshots. Appends are fsync'd before the caller proceeds
//    (fsync-on-commit). Replay is torn-write tolerant: decoding stops at
//    the first truncated or CRC-failing frame — exactly what a crash in
//    the middle of an append leaves behind — and the torn tail is
//    truncated away on open so it can never shadow later appends.
//
// Record framing (little-endian, matching Writer):
//   [u8 type][u32 payload_len][u32 crc32][payload_len bytes]
// The CRC covers type + length + payload, so a frame whose header was
// half-written fails the check even when the payload bytes happen to be
// present from an earlier file generation.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/crc32.hpp"
#include "common/serialize.hpp"

namespace whisper::store {

/// Hard cap on a single journal record payload. Anything larger on disk is
/// treated as corruption (kOversized), not an allocation request.
inline constexpr std::size_t kMaxRecordBytes = 256 * 1024;

/// CRC-32 (IEEE 802.3, reflected) over `data`. The implementation moved to
/// common/crc32.hpp so the telemetry health records can share it; this alias
/// keeps existing store call sites and fuzz harnesses unchanged.
using whisper::crc32;

/// One replayed journal record. `type` is opaque at this layer; the state
/// layer interprets it (store::RecordType).
struct JournalRecord {
  std::uint8_t type = 0;
  Bytes payload;
};

/// Result of decoding a journal byte stream.
struct JournalReplay {
  std::vector<JournalRecord> records;
  /// Bytes consumed by complete, CRC-valid frames. Anything after this
  /// offset is a torn or corrupt tail.
  std::size_t consumed = 0;
  /// True when trailing bytes were present but did not form a valid frame
  /// (crash mid-append, or corruption).
  bool torn_tail = false;
  /// Why decoding stopped (kNone on a clean end-of-stream).
  DecodeError tail_error = DecodeError::kNone;
};

/// Encode one record with its CRC frame.
Bytes encode_record(std::uint8_t type, BytesView payload);

/// Pure, allocation-bounded journal decoder (also the fuzz target).
/// Never throws; never reads past `data`.
JournalReplay decode_journal(BytesView data);

/// Append-only journal file with fsync-on-commit semantics.
class JournalFile {
 public:
  JournalFile() = default;
  ~JournalFile();

  JournalFile(const JournalFile&) = delete;
  JournalFile& operator=(const JournalFile&) = delete;

  /// Open (creating if absent) and replay the journal at `path`. A torn
  /// tail is truncated away so the next append starts at a clean frame
  /// boundary. Returns nullopt only on I/O failure (not on torn data).
  std::optional<JournalReplay> open(const std::string& path);

  /// Append one CRC-framed record and fsync. False on I/O failure.
  bool append(std::uint8_t type, BytesView payload);

  /// Truncate to empty (after a snapshot subsumed the journal) and fsync.
  bool reset();

  void close();
  bool is_open() const { return fd_ >= 0; }
  const std::string& last_error() const { return error_; }

  /// Torn tails truncated by open() over this object's lifetime.
  std::uint64_t torn_tails_truncated() const { return torn_tails_; }

 private:
  int fd_ = -1;
  std::string path_;
  std::string error_;
  std::uint64_t torn_tails_ = 0;
};

/// Write `data` to `path` atomically: temp file in the same directory,
/// fsync, rename, directory fsync. False on I/O failure.
bool atomic_write_file(const std::string& path, BytesView data, std::string* error = nullptr);

/// Rename-atomic publish WITHOUT the fsyncs: readers can never observe a
/// torn file, but the bytes are not durable across power loss. For
/// ephemeral high-frequency artifacts (live stats records) where the two
/// fsyncs of atomic_write_file cost ~1.5 ms each tick and the data is
/// worthless after a crash anyway. Durable state must keep using
/// atomic_write_file.
bool atomic_publish_file(const std::string& path, BytesView data,
                         std::string* error = nullptr);

/// Read a whole file. nullopt if it does not exist or cannot be read.
std::optional<Bytes> read_file(const std::string& path);

}  // namespace whisper::store

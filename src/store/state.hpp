// Durable node state: what a whisper_noded process must remember across a
// kill -9 to come back as *itself* (DESIGN.md §14).
//
//  - identity: node id, public flag, bound endpoint, RSA keypair (all CRT
//    components, so private ops stay fast after restore);
//  - incarnation: the transport/WCL epoch, bumped on every boot from
//    existing state so peers can tell a restart from a replay;
//  - groups: per-group PPSS membership — key epoch history, our passport,
//    and (leader) the group private key or (member) the accreditation and
//    entry point needed to re-join and re-validate the passport.
//
// Layout on disk under --state-dir:
//   snapshot.bin   whole NodeState, written atomically (tmp+fsync+rename)
//   journal.bin    CRC-framed deltas since the snapshot (store::RecordType)
//
// Open = load snapshot, replay journal over it, truncate any torn tail.
// All decoding goes through Reader with explicit caps; a corrupt store is
// reported, never trusted.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "common/serialize.hpp"
#include "crypto/rsa.hpp"
#include "pss/contact.hpp"
#include "ppss/group.hpp"
#include "store/journal.hpp"
#include "wcl/wcl.hpp"

namespace whisper::store {

/// Snapshot format magic + version ("WSN" + 1).
inline constexpr std::uint32_t kSnapshotMagic = 0x0157534eu;

/// Caps for store decoding (a node's own state, not hostile wire input —
/// but the file may be damaged, so bounds still apply).
inline constexpr std::size_t kMaxStoredGroups = 64;
inline constexpr std::size_t kMaxStoredEpochs = 256;
inline constexpr std::size_t kMaxStoredPeerHints = 256;

/// Journal record types (u8 on the wire).
enum class RecordType : std::uint8_t {
  /// payload: u32 incarnation — bumped-on-boot epoch.
  kIncarnation = 1,
  /// payload: StoredGroup — upserts by group id.
  kGroup = 2,
  /// payload: count16 of ContactCard — replaces the peer hint list.
  kPeerHints = 3,
};

/// Everything needed to resume one group membership.
struct StoredGroup {
  GroupId group;
  bool is_leader = false;
  /// Group key epoch history (epoch -> public key), for passport
  /// verification across re-keys.
  std::vector<std::pair<std::uint64_t, crypto::RsaPublicKey>> epochs;
  /// Our passport (may be empty-signature if we crashed mid-join).
  ppss::Passport passport;
  /// Leader only: the group private key (all components).
  std::optional<crypto::RsaKeyPair> group_key;
  /// Member only: the invitation we joined with (re-sent on rejoin to
  /// re-validate our passport with the group).
  std::optional<ppss::Accreditation> accreditation;
  /// Member only: the leader's WCL descriptor used as the rejoin entry.
  std::optional<wcl::RemotePeer> entry_point;

  void serialize(Writer& w) const;
  static std::optional<StoredGroup> deserialize(Reader& r);
};

/// The full durable state of one node.
struct NodeState {
  NodeId id;
  bool is_public = true;
  /// The endpoint we were bound to; restart re-binds the same port so
  /// peers' contact cards and punched routes stay valid.
  Endpoint endpoint;
  /// Transport/WCL incarnation epoch. 1 on first boot; bumped before the
  /// node touches the network on every boot from existing state.
  std::uint32_t incarnation = 1;
  crypto::RsaKeyPair identity;
  std::vector<StoredGroup> groups;
  /// Last known contact cards of peers (bootstrap hints for rejoin).
  std::vector<pss::ContactCard> peer_hints;

  Bytes serialize() const;
  static std::optional<NodeState> deserialize(BytesView data,
                                              DecodeError* why = nullptr);

  StoredGroup* find_group(GroupId g);
  void upsert_group(StoredGroup g);
};

/// Serialize a keypair (all 8 BigInt components) for the store.
void serialize_keypair(Writer& w, const crypto::RsaKeyPair& kp);
std::optional<crypto::RsaKeyPair> deserialize_keypair(Reader& r);

/// Snapshot + journal store rooted at one directory.
class NodeStateStore {
 public:
  NodeStateStore() = default;

  NodeStateStore(const NodeStateStore&) = delete;
  NodeStateStore& operator=(const NodeStateStore&) = delete;

  /// Open (creating the directory if needed), load the snapshot if one
  /// exists and replay the journal over it. False on I/O failure or a
  /// corrupt snapshot.
  bool open(const std::string& dir);

  /// True when open() found existing state to resume from.
  bool has_state() const { return has_state_; }

  NodeState& state() { return state_; }
  const NodeState& state() const { return state_; }

  /// Write the full state as a new atomic snapshot and clear the journal.
  bool commit_snapshot();

  /// Journal a bumped incarnation (fsync'd before returning).
  bool record_incarnation(std::uint32_t incarnation);
  /// Journal a group upsert (fsync'd before returning).
  bool record_group(const StoredGroup& g);
  /// Journal a replacement peer-hint list (fsync'd before returning).
  bool record_peer_hints(const std::vector<pss::ContactCard>& hints);

  const std::string& last_error() const { return error_; }
  std::uint64_t journal_records_replayed() const { return replayed_; }
  std::uint64_t torn_tails_truncated() const { return journal_.torn_tails_truncated(); }

  std::string snapshot_path() const { return dir_ + "/snapshot.bin"; }
  std::string journal_path() const { return dir_ + "/journal.bin"; }

 private:
  bool apply_record(const JournalRecord& rec);

  std::string dir_;
  NodeState state_;
  JournalFile journal_;
  bool has_state_ = false;
  std::uint64_t replayed_ = 0;
  std::string error_;
};

}  // namespace whisper::store

#include "ppss/group.hpp"

#include <algorithm>

namespace whisper::ppss {

void Passport::serialize(Writer& w) const {
  w.node_id(node);
  w.u64(epoch);
  w.bytes(signature);
}

std::optional<Passport> Passport::deserialize(Reader& r) {
  Passport p;
  p.node = r.node_id();
  p.epoch = r.u64();
  p.signature = r.bytes(kMaxSignatureBytes);
  if (!r.ok()) return std::nullopt;
  return p;
}

void Accreditation::serialize(Writer& w) const {
  w.group_id(group);
  w.node_id(node);
  w.u64(epoch);
  w.bytes(signature);
}

std::optional<Accreditation> Accreditation::deserialize(Reader& r) {
  Accreditation a;
  a.group = r.group_id();
  a.node = r.node_id();
  a.epoch = r.u64();
  a.signature = r.bytes(kMaxSignatureBytes);
  if (!r.ok()) return std::nullopt;
  return a;
}

void GroupKeyring::add_epoch(std::uint64_t epoch, crypto::RsaPublicKey key) {
  for (auto& [e, k] : keys_) {
    if (e == epoch) {
      k = std::move(key);
      return;
    }
  }
  keys_.emplace_back(epoch, std::move(key));
}

std::uint64_t GroupKeyring::latest_epoch() const {
  std::uint64_t latest = 0;
  for (const auto& [e, k] : keys_) latest = std::max(latest, e);
  return latest;
}

std::optional<crypto::RsaPublicKey> GroupKeyring::key_for(std::uint64_t epoch) const {
  for (const auto& [e, k] : keys_) {
    if (e == epoch) return k;
  }
  return std::nullopt;
}

Bytes GroupKeyring::passport_message(GroupId group, NodeId node, std::uint64_t epoch) {
  Writer w;
  w.str("whisper-passport");
  w.group_id(group);
  w.node_id(node);
  w.u64(epoch);
  return std::move(w).take();
}

Bytes GroupKeyring::accreditation_message(GroupId group, NodeId node, std::uint64_t epoch) {
  Writer w;
  w.str("whisper-accreditation");
  w.group_id(group);
  w.node_id(node);
  w.u64(epoch);
  return std::move(w).take();
}

bool GroupKeyring::verify_passport(const Passport& p) const {
  auto key = key_for(p.epoch);
  if (!key) return false;
  return crypto::rsa_verify(*key, passport_message(group_, p.node, p.epoch), p.signature);
}

bool GroupKeyring::verify_accreditation(const Accreditation& a) const {
  if (a.group != group_) return false;
  auto key = key_for(a.epoch);
  if (!key) return false;
  return crypto::rsa_verify(*key, accreditation_message(a.group, a.node, a.epoch),
                            a.signature);
}

Passport issue_passport(GroupId group, std::uint64_t epoch, NodeId node,
                        const crypto::RsaKeyPair& group_key) {
  Passport p;
  p.node = node;
  p.epoch = epoch;
  p.signature = crypto::rsa_sign(group_key, GroupKeyring::passport_message(group, node, epoch));
  return p;
}

Accreditation issue_accreditation(GroupId group, std::uint64_t epoch, NodeId node,
                                  const crypto::RsaKeyPair& group_key) {
  Accreditation a;
  a.group = group;
  a.node = node;
  a.epoch = epoch;
  a.signature =
      crypto::rsa_sign(group_key, GroupKeyring::accreditation_message(group, node, epoch));
  return a;
}

}  // namespace whisper::ppss

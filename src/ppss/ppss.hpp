// PPSS: the Private Peer Sampling Service (§IV).
//
// One instance per (node, group). Provides a private partial view of group
// members, refreshed by gossip exchanges that travel exclusively over WCL
// confidential routes. View entries are RemotePeer descriptors: contact
// card, public key, and — for N-nodes — the Π P-node helpers needed to
// build a WCL path to them. Every message ships the sender's passport;
// invalid passports are silently ignored.
//
// Also implemented here:
//  - join protocol (accreditation -> leader -> passport + bootstrap view);
//  - persistent connection pool (PCP): pinned peers re-pinged periodically
//    so their helper sets stay fresh (§IV-C);
//  - leader liveness via heartbeat ages piggybacked on gossip, and leader
//    election by gossip aggregation of the maximum id-hash, followed by a
//    group-key rotation announced by the winner (§IV-A).
//  - application messaging between group members over WCL, with the
//    sender's descriptor shipped so the receiver can answer with a single
//    WCL path (used by T-Chord, §V-G).
#pragma once

#include <functional>
#include <optional>
#include "common/densemap.hpp"

#include "common/guard.hpp"
#include "ppss/group.hpp"
#include "pss/view.hpp"
#include "net/cpumeter.hpp"
#include "telemetry/scope.hpp"
#include "wcl/wcl.hpp"

namespace whisper::ppss {

struct PpssConfig {
  std::size_t view_size = 10;
  std::size_t gossip_size = 5;  // entries per exchange (the paper's figure)
  /// Entries older than this many cycles are dropped: their Π helper sets
  /// are too stale to open WCL paths reliably.
  std::uint32_t max_entry_age = 8;
  net::Time cycle = 1 * net::kMinute;
  net::Time response_timeout = 15 * net::kSecond;
  net::Time pcp_refresh = 2 * net::kMinute;
  /// A leader is presumed dead when no heartbeat has been observed for this
  /// long; an election then starts.
  net::Time leader_timeout = 5 * net::kMinute;
  /// Election converges after the max-hash proposal has been stable for
  /// this many consecutive cycles.
  int election_stable_cycles = 3;
  std::size_t join_max_retries = 3;
  /// Process incarnation epoch (DESIGN.md §14). Scopes outgoing gossip
  /// seqs and app nonces so a restarted member's counters never collide
  /// with its previous life inside peers' replay-suppression windows —
  /// otherwise the first post-restart frames would be dropped as replays.
  std::uint32_t incarnation = 0;

  // --- Hostile-input hardening. ---
  /// Cap on gossip/bootstrap entries per frame (well above gossip_size).
  std::size_t max_gossip_entries = 32;
  /// Cap on key-history epochs accepted in a join response.
  std::size_t max_key_epochs = 256;
  /// Cap on an application payload carried in a kApp frame.
  std::size_t max_app_payload = 64 * 1024;
  /// Replay-suppression window: distinct (sender, kind, seq/nonce)
  /// fingerprints remembered per instance; 0 disables suppression. Join
  /// frames are deliberately exempt — retries resend identical bytes.
  std::size_t replay_window = 1024;
  /// Bound on the verified-passport signature cache.
  std::size_t passport_cache = 1024;
  /// Per-member inbound budget, applied only after the sender's passport
  /// verifies (frames/sec and burst; 0 disables).
  double peer_rate_per_sec = 20.0;
  double peer_rate_burst = 60.0;
  std::size_t guard_max_peers = 1024;
};

/// Entry of a private view: a reachable member descriptor plus gossip age.
struct PrivateEntry {
  wcl::RemotePeer peer;
  std::uint32_t age = 0;

  NodeId id() const { return peer.card.id; }
  bool is_public() const { return peer.card.is_public; }

  void serialize(Writer& w) const;
  static std::optional<PrivateEntry> deserialize(Reader& r);
};

class Ppss {
 public:
  Ppss(net::Clock& clock, wcl::Wcl& wcl, NodeId self, GroupId group, net::CpuMeter& cpu,
       PpssConfig config, Rng rng, telemetry::Scope telemetry = {});
  ~Ppss();

  Ppss(const Ppss&) = delete;
  Ppss& operator=(const Ppss&) = delete;

  GroupId group() const { return group_; }
  NodeId self() const { return self_; }

  /// Create the group: this node becomes the founding leader, holding the
  /// group private key, with a self-issued passport.
  void found_group(crypto::RsaKeyPair group_key);

  /// Leader-side: issue an invitation for `node`.
  std::optional<Accreditation> invite(NodeId node) const;

  /// Join with an accreditation through a known member of the group
  /// (the entry point; per the paper, join requests reach a leader — if the
  /// entry point is not a leader the request is forwarded to one).
  void join(const Accreditation& accreditation, const wcl::RemotePeer& entry_point);

  /// Resume membership from durable state after a crash (DESIGN.md §14):
  /// restore the key-epoch history and our passport, and for a leader the
  /// group private key. The persisted passport is re-verified against the
  /// restored keyring before being trusted — a corrupted or tampered store
  /// must not grant membership; callers check joined() afterwards. Members
  /// additionally call join() with their stored accreditation to
  /// re-validate the passport with the group and fetch a fresh view (the
  /// Pretty Private Group Management re-entry bar).
  void resume(const std::vector<std::pair<std::uint64_t, crypto::RsaPublicKey>>& epochs,
              const Passport& passport,
              std::optional<crypto::RsaKeyPair> group_key = std::nullopt);

  bool joined() const { return !passport_.signature.empty(); }
  bool is_leader() const { return group_key_.has_value(); }
  const Passport& passport() const { return passport_; }
  const GroupKeyring& keyring() const { return keyring_; }
  std::uint64_t leader_epoch() const { return keyring_.latest_epoch(); }

  void start();
  void stop();

  const pss::View<PrivateEntry>& private_view() const { return view_; }

  /// Called by the node-level dispatcher with a group-stripped WCL payload.
  void handle_payload(BytesView payload);

  // --- Persistent connection pool (§IV-C). ---
  void make_persistent(const wcl::RemotePeer& peer);
  void drop_persistent(NodeId id);
  std::optional<wcl::RemotePeer> persistent_peer(NodeId id) const;
  std::size_t pcp_size() const { return pcp_.size(); }

  // --- Application traffic. ---
  /// Sender descriptor + payload, so the app can answer with a single path.
  using AppHandler = std::function<void(const wcl::RemotePeer& from, BytesView payload)>;
  /// Handler for the default application channel (app id 0).
  AppHandler on_app_message;
  /// Several protocols can share one group: each registers under its own
  /// app id (1..255); id 0 is `on_app_message`.
  void register_app(std::uint8_t app_id, AppHandler handler);

  /// Send to a member known from the private view or the PCP.
  bool send_app(NodeId to, BytesView payload, std::uint8_t app_id = 0);
  /// Send to an explicitly known member descriptor (e.g. replying).
  bool send_app_to(const wcl::RemotePeer& to, BytesView payload, std::uint8_t app_id = 0);

  /// Resolve a member descriptor (PCP first, then private view).
  std::optional<wcl::RemotePeer> resolve(NodeId id) const;

  /// This node's own current descriptor (card, key, helpers) — what other
  /// members need to reach us with a single WCL path.
  wcl::RemotePeer self_descriptor() const;

  struct Stats {
    std::uint64_t exchanges_initiated = 0;
    std::uint64_t exchanges_completed = 0;
    std::uint64_t exchanges_timed_out = 0;
    std::uint64_t bad_passports = 0;
    std::uint64_t joins_served = 0;
    std::uint64_t elections_won = 0;
    std::uint64_t elections_observed = 0;
    std::uint64_t decode_rejects = 0;
    std::uint64_t replays_suppressed = 0;
    std::uint64_t rate_limited = 0;
  };
  const Stats& stats() const { return stats_; }

  /// Callback fired when an exchange completes, with the round-trip time —
  /// the data source for Fig. 7.
  std::function<void(net::Time rtt)> on_exchange_rtt;

  /// Telemetry handle (layers stacked on PPSS — e.g. T-Chord — inherit it).
  const telemetry::Scope& telemetry() const { return tel_; }

 private:
  struct GossipMeta {
    std::uint64_t leader_epoch = 0;
    /// Microseconds since the sender last observed a leader heartbeat.
    std::uint64_t heartbeat_age_us = 0;
    /// Election proposal: the max id-hash seen (0 when no election).
    std::uint64_t proposal_hash = 0;
    NodeId proposal_node;
    /// Key rotation announcement (present when epoch advanced).
    Bytes rotation;  // empty when absent
  };

  void on_cycle();
  void on_pcp_refresh();
  void handle_gossip(std::uint8_t kind, Reader& r);
  void handle_join_request(Reader& r);
  void handle_join_response(Reader& r);
  void handle_ping(std::uint8_t kind, Reader& r);
  void handle_app(Reader& r);

  /// Count (and flight-attribute) a malformed frame. PPSS frames arrive
  /// over anonymized WCL routes, so decode failures cannot be pinned on a
  /// network peer — they are counted, never fed to quarantine (blaming the
  /// claimed sender would let an attacker frame honest members).
  void reject_frame(Reader& r);
  /// True when the already-verified sender is over budget or the frame's
  /// (sender, kind, seq) fingerprint is a replay; counts the drop.
  bool suppress_or_limit(NodeId sender, std::uint8_t kind, std::uint64_t seq);

  bool verify_passport_cached(const Passport& p);
  PrivateEntry self_entry();
  Bytes encode_gossip(std::uint8_t kind, std::uint32_t seq,
                      const std::vector<PrivateEntry>& buffer);
  GossipMeta current_meta();
  void absorb_meta(const GossipMeta& meta);
  void absorb_rotation(const GossipMeta& meta);
  void maybe_elect();
  Bytes make_rotation_announcement();
  void send_join_request();

  net::Clock& clock_;
  wcl::Wcl& wcl_;
  NodeId self_;
  GroupId group_;
  net::CpuMeter& cpu_;
  PpssConfig config_;
  Rng rng_;
  crypto::Drbg drbg_;

  GroupKeyring keyring_;
  Passport passport_;
  std::optional<crypto::RsaKeyPair> group_key_;  // leaders only

  pss::View<PrivateEntry> view_;
  bool running_ = false;
  net::TimerId cycle_timer_ = 0;
  net::TimerId pcp_timer_ = 0;

  // Pending gossip exchanges (seq -> partner/timer/start time).
  struct PendingExchange {
    NodeId partner;
    net::TimerId timeout_timer = 0;
    net::Time started_at = 0;
    /// Flight-record root of this exchange (0 while tracing is off).
    std::uint64_t trace_root = 0;
  };
  DenseMap<std::uint32_t, PendingExchange> pending_;
  std::uint32_t next_seq_ = 1;

  // Join state.
  struct PendingJoin {
    Accreditation accreditation;
    wcl::RemotePeer entry_point;
    std::size_t attempts = 0;
    net::TimerId retry_timer = 0;
    /// Flight-record root spanning every join attempt (0 = untraced).
    std::uint64_t trace_root = 0;
  };
  std::optional<PendingJoin> pending_join_;

  // PCP.
  struct PinnedPeer {
    wcl::RemotePeer peer;
    int missed_pings = 0;
  };
  DenseMap<NodeId, PinnedPeer> pcp_;
  DenseMap<std::uint32_t, NodeId> pending_pings_;

  // Leader liveness & election.
  net::Time last_heartbeat_seen_ = 0;
  std::uint64_t election_proposal_hash_ = 0;
  NodeId election_proposal_node_;
  int election_stable_count_ = 0;

  // Passport verification cache (verified signature fingerprints), bounded
  // so hostile passport floods cannot grow it.
  ReplayWindow verified_passports_;
  // Replay suppression over (sender, kind, seq/nonce) fingerprints.
  ReplayWindow replay_window_;
  // Per-verified-member admission control.
  PeerGuard guard_;
  // Nonce source for our own outgoing app frames.
  std::uint64_t next_app_nonce_ = 1;

  // Registered application channels (app id 1..255).
  DenseMap<std::uint8_t, AppHandler> app_handlers_;

  Stats stats_;

  telemetry::Scope tel_;
  telemetry::Counter& m_initiated_;
  telemetry::Counter& m_completed_;
  telemetry::Counter& m_timed_out_;
  telemetry::Counter& m_passport_checks_;
  telemetry::Counter& m_passport_bad_;
  telemetry::Counter& m_joins_served_;
  telemetry::Counter& m_decode_rejects_;
  telemetry::Counter& m_replays_;
  telemetry::Counter& m_rate_limited_;
  telemetry::Histogram& m_rtt_;
  telemetry::Histogram& m_view_size_;
};

}  // namespace whisper::ppss

#include "ppss/ppss.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "crypto/sha256.hpp"

namespace whisper::ppss {

namespace {
constexpr std::uint8_t kKindGossipReq = 1;
constexpr std::uint8_t kKindGossipResp = 2;
constexpr std::uint8_t kKindJoinReq = 3;
constexpr std::uint8_t kKindJoinResp = 4;
constexpr std::uint8_t kKindPing = 5;
constexpr std::uint8_t kKindPong = 6;
constexpr std::uint8_t kKindApp = 7;

/// Largest rotation announcement a gossip frame may carry: group id +
/// epoch + serialized public key + announcer id, with headroom.
constexpr std::size_t kMaxRotationBytes = crypto::kMaxKeyWireBytes + 64;

/// Fingerprint of a frame for replay suppression: the claimed sender, the
/// frame kind, and its sequence number / nonce. Join frames never go
/// through this (retries resend identical bytes on purpose).
std::uint64_t frame_fingerprint(NodeId node, std::uint8_t kind, std::uint64_t seq) {
  Writer w;
  w.node_id(node);
  w.u8(kind);
  w.u64(seq);
  return crypto::fingerprint64(w.data());
}

std::uint64_t election_hash(NodeId node, std::uint64_t epoch) {
  Writer w;
  w.node_id(node);
  w.u64(epoch);
  return crypto::fingerprint64(w.data());
}

}  // namespace

void PrivateEntry::serialize(Writer& w) const {
  peer.serialize(w);
  w.u32(age);
}

std::optional<PrivateEntry> PrivateEntry::deserialize(Reader& r) {
  PrivateEntry e;
  auto peer = wcl::RemotePeer::deserialize(r);
  if (!peer) return std::nullopt;
  e.peer = std::move(*peer);
  e.age = r.u32();
  if (!r.ok()) return std::nullopt;
  return e;
}

Ppss::Ppss(net::Clock& clock, wcl::Wcl& wcl, NodeId self, GroupId group, net::CpuMeter& cpu,
           PpssConfig config, Rng rng, telemetry::Scope telemetry)
    : clock_(clock), wcl_(wcl), self_(self), group_(group), cpu_(cpu), config_(config), rng_(rng),
      drbg_(rng_.next_u64()), keyring_(group), view_(config.view_size),
      verified_passports_(config.passport_cache), replay_window_(config.replay_window),
      guard_(PeerGuardConfig{config.peer_rate_per_sec, config.peer_rate_burst,
                             /*decode_fail_threshold=*/3, config.guard_max_peers}),
      tel_(telemetry),
      m_initiated_(tel_.counter("ppss.exchanges.initiated")),
      m_completed_(tel_.counter("ppss.exchanges.completed")),
      m_timed_out_(tel_.counter("ppss.exchanges.timed_out")),
      m_passport_checks_(tel_.counter("ppss.passport.checks")),
      m_passport_bad_(tel_.counter("ppss.passport.bad")),
      m_joins_served_(tel_.counter("ppss.joins.served")),
      m_decode_rejects_(tel_.counter("ppss.decode.rejects")),
      m_replays_(tel_.counter("ppss.replay.suppressed")),
      m_rate_limited_(tel_.counter("ppss.rate.limited")),
      // PPSS exchanges ride multi-hop WCL routes: RTTs from tens of ms up
      // to the paper's multi-second Fig. 7 tail.
      m_rtt_(tel_.histogram("ppss.exchange.rtt_us",
                            telemetry::BucketSpec::log_spaced(1'000, 60'000'000))),
      m_view_size_(tel_.histogram("ppss.view.size",
                                  telemetry::BucketSpec::linear(0, 64, 64))) {
  // Incarnation-scoped counters (DESIGN.md §14): a restarted process must
  // not reuse seqs/nonces its previous life already spent, or peers'
  // replay-suppression windows drop its first frames as duplicates. Join
  // frames are exempt from suppression, which is why a rejoin gets through
  // even before this scoping matters.
  next_seq_ = (static_cast<std::uint32_t>(config_.incarnation & 0xffu) << 24) | 1u;
  next_app_nonce_ =
      (static_cast<std::uint64_t>(config_.incarnation) << 32) | 1u;
}

Ppss::~Ppss() { stop(); }

void Ppss::found_group(crypto::RsaKeyPair group_key) {
  keyring_.add_epoch(1, group_key.pub);
  passport_ = issue_passport(group_, 1, self_, group_key);
  group_key_ = std::move(group_key);
  last_heartbeat_seen_ = clock_.now();
}

std::optional<Accreditation> Ppss::invite(NodeId node) const {
  if (!group_key_) return std::nullopt;
  return issue_accreditation(group_, keyring_.latest_epoch(), node, *group_key_);
}

void Ppss::join(const Accreditation& accreditation, const wcl::RemotePeer& entry_point) {
  pending_join_ = PendingJoin{accreditation, entry_point, 0, 0};
  send_join_request();
}

void Ppss::resume(const std::vector<std::pair<std::uint64_t, crypto::RsaPublicKey>>& epochs,
                  const Passport& passport, std::optional<crypto::RsaKeyPair> group_key) {
  for (const auto& [epoch, key] : epochs) keyring_.add_epoch(epoch, key);
  if (group_key) {
    // Leader restore: the private key must actually match an epoch we
    // recorded, otherwise the store is inconsistent — refuse leadership.
    if (auto latest = keyring_.key_for(keyring_.latest_epoch());
        latest && *latest == group_key->pub) {
      group_key_ = std::move(*group_key);
    }
  }
  // The passport only counts if the restored keyring vouches for it.
  if (!passport.signature.empty() && keyring_.verify_passport(passport)) {
    passport_ = passport;
    last_heartbeat_seen_ = clock_.now();
  }
}

void Ppss::send_join_request() {
  if (!pending_join_) return;
  PendingJoin& pj = *pending_join_;
  if (pj.attempts >= config_.join_max_retries) {
    pending_join_.reset();
    return;
  }
  ++pj.attempts;

  Writer w;
  w.group_id(group_);
  w.u8(kKindJoinReq);
  pj.accreditation.serialize(w);
  wcl::RemotePeer self_desc = wcl_.self_peer();
  self_desc.serialize(w);
  if (telemetry::FlightRecorder* fr = tel_.flight();
      fr != nullptr && fr->enabled() && pj.trace_root == 0) {
    pj.trace_root =
        fr->new_root(telemetry::TraceLayer::kPpss, self_.value, "group=" + group_.str());
  }
  {
    telemetry::TraceContext root_ctx;
    root_ctx.root = pj.trace_root;
    telemetry::ScopedTraceContext guard(tel_.flight(), root_ctx);
    wcl_.send_confidential(pj.entry_point, w.data());
  }

  pj.retry_timer = clock_.schedule_after(config_.response_timeout, [this] {
    if (pending_join_) send_join_request();
  });
}

void Ppss::start() {
  if (running_) return;
  running_ = true;
  last_heartbeat_seen_ = clock_.now();
  cycle_timer_ = clock_.schedule_after(rng_.next_below(config_.cycle), [this] { on_cycle(); });
  pcp_timer_ = clock_.schedule_after(config_.pcp_refresh, [this] { on_pcp_refresh(); });
}

void Ppss::on_pcp_refresh() {
  if (!running_) return;
  pcp_timer_ = clock_.schedule_after(config_.pcp_refresh, [this] { on_pcp_refresh(); });
  // Ping every pinned peer to refresh the helper sets used to reach it.
  for (auto&& [id, pinned] : pcp_) {
    const std::uint32_t seq = next_seq_++;
    Writer w;
    w.group_id(group_);
    w.u8(kKindPing);
    w.u32(seq);
    passport_.serialize(w);
    self_entry().serialize(w);
    wcl_.send_confidential(pinned.peer, w.data());
    pending_pings_[seq] = id;
    ++pinned.missed_pings;
  }
  // Drop peers that stopped answering.
  erase_if(pcp_, [](const auto& kv) { return kv.second.missed_pings > 3; });
}

void Ppss::stop() {
  if (!running_) return;
  running_ = false;
  if (cycle_timer_ != 0) clock_.cancel(cycle_timer_);
  if (pcp_timer_ != 0) clock_.cancel(pcp_timer_);
  for (auto&& [seq, p] : pending_) {
    if (p.timeout_timer != 0) clock_.cancel(p.timeout_timer);
  }
  pending_.clear();
  if (pending_join_ && pending_join_->retry_timer != 0) {
    clock_.cancel(pending_join_->retry_timer);
  }
  pending_join_.reset();
}

PrivateEntry Ppss::self_entry() {
  PrivateEntry e;
  e.peer = wcl_.self_peer();
  e.age = 0;
  return e;
}

Ppss::GossipMeta Ppss::current_meta() {
  GossipMeta meta;
  meta.leader_epoch = keyring_.latest_epoch();
  if (is_leader()) {
    meta.heartbeat_age_us = 0;
    last_heartbeat_seen_ = clock_.now();
  } else {
    meta.heartbeat_age_us = clock_.now() - std::min(last_heartbeat_seen_, clock_.now());
  }
  meta.proposal_hash = election_proposal_hash_;
  meta.proposal_node = election_proposal_node_;
  return meta;
}

Bytes Ppss::make_rotation_announcement() {
  // Signed by the new leader's node key. Members trust it because the
  // announcing node carries the winning election hash (nodes are honest-
  // but-curious; they follow the protocol).
  Writer w;
  w.group_id(group_);
  w.u64(keyring_.latest_epoch());
  auto key = keyring_.key_for(keyring_.latest_epoch());
  w.bytes(key ? key->serialize() : Bytes{});
  w.node_id(self_);
  return std::move(w).take();
}

void Ppss::absorb_meta(const GossipMeta& meta) {
  // Heartbeat freshness: the sender saw a leader heartbeat_age_us ago.
  const net::Time implied = clock_.now() - std::min<std::uint64_t>(meta.heartbeat_age_us, clock_.now());
  last_heartbeat_seen_ = std::max(last_heartbeat_seen_, implied);

  // Election aggregation: keep the max proposal.
  if (meta.proposal_hash > election_proposal_hash_) {
    election_proposal_hash_ = meta.proposal_hash;
    election_proposal_node_ = meta.proposal_node;
    election_stable_count_ = 0;
  }
}

void Ppss::absorb_rotation(const GossipMeta& meta) {
  // Key rotation: adopt newer epochs.
  if (!meta.rotation.empty() && meta.leader_epoch > keyring_.latest_epoch()) {
    Reader r(meta.rotation);
    const GroupId g = r.group_id();
    const std::uint64_t epoch = r.u64();
    auto key = crypto::RsaPublicKey::deserialize(r.bytes(crypto::kMaxKeyWireBytes));
    const NodeId announcer = r.node_id();
    if (r.expect_done() && g == group_ && key && epoch == meta.leader_epoch) {
      keyring_.add_epoch(epoch, *key);
      last_heartbeat_seen_ = clock_.now();
      election_proposal_hash_ = 0;
      election_proposal_node_ = NodeId{};
      election_stable_count_ = 0;
      (void)announcer;
    }
  }
}

void Ppss::maybe_elect() {
  if (is_leader()) return;
  if (clock_.now() < last_heartbeat_seen_ + config_.leader_timeout) {
    // Leader alive: no election.
    election_proposal_hash_ = 0;
    election_proposal_node_ = NodeId{};
    election_stable_count_ = 0;
    return;
  }
  ++stats_.elections_observed;
  // Propose our own hash if it beats everything seen.
  const std::uint64_t own = election_hash(self_, keyring_.latest_epoch() + 1);
  if (own > election_proposal_hash_) {
    election_proposal_hash_ = own;
    election_proposal_node_ = self_;
    election_stable_count_ = 0;
  } else {
    ++election_stable_count_;
  }
  // Converged and we are the winner: rotate the group key.
  if (election_proposal_node_ == self_ &&
      election_stable_count_ >= config_.election_stable_cycles) {
    crypto::RsaKeyPair new_key =
        crypto::RsaKeyPair::generate(keyring_.key_for(keyring_.latest_epoch())
                                         ? keyring_.key_for(keyring_.latest_epoch())->n.bit_length()
                                         : 512,
                                     drbg_);
    const std::uint64_t new_epoch = keyring_.latest_epoch() + 1;
    keyring_.add_epoch(new_epoch, new_key.pub);
    passport_ = issue_passport(group_, new_epoch, self_, new_key);
    group_key_ = std::move(new_key);
    last_heartbeat_seen_ = clock_.now();
    election_proposal_hash_ = 0;
    election_proposal_node_ = NodeId{};
    election_stable_count_ = 0;
    ++stats_.elections_won;
  }
}

Bytes Ppss::encode_gossip(std::uint8_t kind, std::uint32_t seq,
                          const std::vector<PrivateEntry>& buffer) {
  Writer w;
  w.group_id(group_);
  w.u8(kind);
  w.u32(seq);
  passport_.serialize(w);
  // Gossip metadata (leader liveness / election / rotation).
  GossipMeta meta = current_meta();
  w.u64(meta.leader_epoch);
  w.u64(meta.heartbeat_age_us);
  w.u64(meta.proposal_hash);
  w.node_id(meta.proposal_node);
  if (is_leader()) {
    w.bytes(make_rotation_announcement());
  } else {
    w.bytes(Bytes{});
  }
  w.u16(static_cast<std::uint16_t>(buffer.size()));
  for (const auto& e : buffer) e.serialize(w);
  return std::move(w).take();
}

void Ppss::on_cycle() {
  if (!running_) return;
  cycle_timer_ = clock_.schedule_after(config_.cycle, [this] { on_cycle(); });
  if (!joined()) return;

  maybe_elect();
  view_.age_all();
  view_.expire_older_than(config_.max_entry_age);
  // Private-view health: the fill distribution over cycles and members.
  m_view_size_.observe(static_cast<double>(view_.size()));
  const PrivateEntry* partner = view_.oldest();
  if (partner == nullptr) return;

  const std::uint32_t seq = next_seq_++;
  const wcl::RemotePeer partner_peer = partner->peer;
  // Swap the partner out; it returns fresh in the response buffer.
  view_.remove(partner_peer.card.id);

  std::vector<PrivateEntry> buffer;
  buffer.push_back(self_entry());
  auto subset = view_.random_subset(config_.gossip_size - 1, rng_);
  buffer.insert(buffer.end(), subset.begin(), subset.end());

  ++stats_.exchanges_initiated;
  m_initiated_.add(1);
  // Root trace of the whole exchange; arming just the root id (no message
  // trace yet) makes the request — and, via the delivered context at the
  // partner, the response — children of this root.
  std::uint64_t trace_root = 0;
  if (telemetry::FlightRecorder* fr = tel_.flight(); fr != nullptr && fr->enabled()) {
    trace_root =
        fr->new_root(telemetry::TraceLayer::kPpss, self_.value, "group=" + group_.str());
  }
  {
    telemetry::TraceContext root_ctx;
    root_ctx.root = trace_root;
    telemetry::ScopedTraceContext guard(tel_.flight(), root_ctx);
    wcl_.send_confidential(partner_peer, encode_gossip(kKindGossipReq, seq, buffer));
  }

  PendingExchange pending;
  pending.partner = partner_peer.card.id;
  pending.started_at = clock_.now();
  pending.trace_root = trace_root;
  pending.timeout_timer = clock_.schedule_after(config_.response_timeout, [this, seq] {
    auto it = pending_.find(seq);
    if (it == pending_.end()) return;
    if (telemetry::FlightRecorder* fr = tel_.flight();
        fr != nullptr && fr->enabled() && it->second.trace_root != 0) {
      fr->end(it->second.trace_root, self_.value, clock_.now(), "timeout", 1, 0);
    }
    view_.remove(it->second.partner);
    pending_.erase(it);
    ++stats_.exchanges_timed_out;
    m_timed_out_.add(1);
    tel_.instant("ppss.exchange.timeout", "ppss", clock_.now());
  });
  pending_[seq] = pending;
}

bool Ppss::verify_passport_cached(const Passport& p) {
  m_passport_checks_.add(1);
  if (p.signature.empty()) return false;
  Writer w;
  w.node_id(p.node);
  w.u64(p.epoch);
  w.raw(p.signature);
  const std::uint64_t fp = crypto::fingerprint64(w.data());
  if (verified_passports_.contains(fp)) return true;
  bool ok = false;
  cpu_.charge(net::CpuCategory::kRsaSign, [&] { ok = keyring_.verify_passport(p); });
  if (ok) verified_passports_.seen_or_insert(fp);
  return ok;
}

void Ppss::reject_frame(Reader& r) {
  DecodeError err = r.reject_reason();
  if (err == DecodeError::kNone) err = DecodeError::kBadValue;
  ++stats_.decode_rejects;
  tel_.drop_frame(m_decode_rejects_, clock_.now(),
                  std::string("decode:") + decode_error_name(err));
}

bool Ppss::suppress_or_limit(NodeId sender, std::uint8_t kind, std::uint64_t seq) {
  if (replay_window_.seen_or_insert(frame_fingerprint(sender, kind, seq))) {
    ++stats_.replays_suppressed;
    tel_.drop_frame(m_replays_, clock_.now(), "replay");
    return true;
  }
  if (!guard_.admit(sender, clock_.now())) {
    ++stats_.rate_limited;
    tel_.drop_frame(m_rate_limited_, clock_.now(), "ratelimit");
    return true;
  }
  return false;
}

void Ppss::handle_payload(BytesView payload) {
  Reader r(payload);
  const std::uint8_t kind = r.u8();
  if (!r.ok()) {
    reject_frame(r);
    return;
  }
  switch (kind) {
    case kKindGossipReq:
    case kKindGossipResp:
      handle_gossip(kind, r);
      break;
    case kKindJoinReq:
      handle_join_request(r);
      break;
    case kKindJoinResp:
      handle_join_response(r);
      break;
    case kKindPing:
    case kKindPong:
      handle_ping(kind, r);
      break;
    case kKindApp:
      handle_app(r);
      break;
    default:
      r.fail(DecodeError::kBadValue);
      reject_frame(r);
      break;
  }
}

void Ppss::handle_gossip(std::uint8_t kind, Reader& r) {
  const std::uint32_t seq = r.u32();
  auto passport = Passport::deserialize(r);
  GossipMeta meta;
  meta.leader_epoch = r.u64();
  meta.heartbeat_age_us = r.u64();
  meta.proposal_hash = r.u64();
  meta.proposal_node = r.node_id();
  meta.rotation = r.bytes(kMaxRotationBytes);
  const std::uint16_t count = r.count16(config_.max_gossip_entries);
  std::vector<PrivateEntry> received;
  for (std::uint16_t i = 0; i < count && r.ok(); ++i) {
    auto e = PrivateEntry::deserialize(r);
    if (!e) break;
    received.push_back(std::move(*e));
  }
  if (!r.ok() || !passport || received.empty() || !r.expect_done()) {
    reject_frame(r);
    return;
  }
  if (received.front().peer.card.id != passport->node) {
    r.fail(DecodeError::kBadValue);
    reject_frame(r);
    return;
  }
  if (!joined()) return;

  // Rotation announcements must be absorbed before passport verification:
  // after an election the winner's passport is signed with the very epoch
  // key the announcement delivers. The announcement only takes effect for
  // a strictly newer epoch, so replays are no-ops. Heartbeat and election
  // fields are absorbed only after the passport verifies.
  absorb_rotation(meta);
  if (!verify_passport_cached(*passport)) {
    ++stats_.bad_passports;
    m_passport_bad_.add(1);
    return;  // silently ignore, never reveal membership
  }
  const wcl::RemotePeer sender = received.front().peer;
  if (suppress_or_limit(sender.card.id, kind, seq)) return;
  absorb_meta(meta);

  if (kind == kKindGossipReq) {
    std::vector<PrivateEntry> buffer;
    buffer.push_back(self_entry());
    auto subset = view_.random_subset(config_.gossip_size - 1, rng_);
    buffer.insert(buffer.end(), subset.begin(), subset.end());
    wcl_.send_confidential(sender, encode_gossip(kKindGossipResp, seq, buffer));
    view_.merge(received, self_, /*pi_min_public=*/0, rng_);
  } else {
    auto it = pending_.find(seq);
    if (it == pending_.end() || it->second.partner != sender.card.id) return;
    if (it->second.timeout_timer != 0) clock_.cancel(it->second.timeout_timer);
    const net::Time rtt = clock_.now() - it->second.started_at;
    if (telemetry::FlightRecorder* fr = tel_.flight();
        fr != nullptr && fr->enabled() && it->second.trace_root != 0) {
      fr->end(it->second.trace_root, self_.value, clock_.now(), "completed", 1, rtt);
    }
    pending_.erase(it);
    view_.merge(received, self_, /*pi_min_public=*/0, rng_);
    ++stats_.exchanges_completed;
    m_completed_.add(1);
    m_rtt_.observe(static_cast<double>(rtt));
    tel_.complete("ppss.exchange", "ppss", clock_.now() - rtt, rtt);
    if (on_exchange_rtt) on_exchange_rtt(rtt);
  }
}

void Ppss::handle_join_request(Reader& r) {
  auto accreditation = Accreditation::deserialize(r);
  auto joiner = wcl::RemotePeer::deserialize(r);
  if (!accreditation || !joiner || !r.expect_done()) {
    reject_frame(r);
    return;
  }
  if (!joined()) return;

  if (!is_leader()) {
    // Forward to a leader if we can find one; otherwise drop (the joiner
    // retries; the paper's model expects joins to reach a leader).
    return;
  }
  bool ok = false;
  cpu_.charge(net::CpuCategory::kRsaSign,
              [&] { ok = keyring_.verify_accreditation(*accreditation); });
  if (!ok || accreditation->node != joiner->card.id) return;

  ++stats_.joins_served;
  m_joins_served_.add(1);
  Passport passport;
  cpu_.charge(net::CpuCategory::kRsaSign, [&] {
    passport = issue_passport(group_, keyring_.latest_epoch(), joiner->card.id, *group_key_);
  });

  Writer w;
  w.group_id(group_);
  w.u8(kKindJoinResp);
  passport.serialize(w);
  // Full key history so old passports verify at the joiner too.
  w.u16(static_cast<std::uint16_t>(keyring_.epochs()));
  for (std::uint64_t epoch = 1; epoch <= keyring_.latest_epoch(); ++epoch) {
    if (auto key = keyring_.key_for(epoch)) {
      w.u64(epoch);
      w.bytes(key->serialize());
    }
  }
  // Bootstrap entries: ourself plus a view sample.
  std::vector<PrivateEntry> boot;
  boot.push_back(self_entry());
  auto subset = view_.random_subset(config_.gossip_size - 1, rng_);
  boot.insert(boot.end(), subset.begin(), subset.end());
  w.u16(static_cast<std::uint16_t>(boot.size()));
  for (const auto& e : boot) e.serialize(w);

  wcl_.send_confidential(*joiner, w.data());

  // Remember the joiner ourselves.
  view_.insert(PrivateEntry{*joiner, 0});
  view_.truncate_biased(0, rng_);
}

void Ppss::handle_join_response(Reader& r) {
  if (!pending_join_) return;
  auto passport = Passport::deserialize(r);
  if (!passport) {
    reject_frame(r);
    return;
  }
  if (passport->node != self_) return;
  // Parse the full key history and bootstrap view before mutating anything:
  // a frame that fails partway through must leave the keyring untouched.
  const std::uint16_t n_keys = r.count16(config_.max_key_epochs);
  std::vector<std::pair<std::uint64_t, crypto::RsaPublicKey>> keys;
  for (std::uint16_t i = 0; i < n_keys && r.ok(); ++i) {
    const std::uint64_t epoch = r.u64();
    auto key = crypto::RsaPublicKey::deserialize(r.bytes(crypto::kMaxKeyWireBytes));
    if (!r.ok() || !key) break;
    keys.emplace_back(epoch, std::move(*key));
  }
  const std::uint16_t n_entries = r.count16(config_.max_gossip_entries);
  std::vector<PrivateEntry> boot;
  for (std::uint16_t i = 0; i < n_entries && r.ok(); ++i) {
    auto e = PrivateEntry::deserialize(r);
    if (!e) break;
    boot.push_back(std::move(*e));
  }
  if (!r.ok() || keys.size() != n_keys || boot.size() != n_entries || !r.expect_done()) {
    reject_frame(r);
    return;
  }
  for (auto& [epoch, key] : keys) keyring_.add_epoch(epoch, std::move(key));

  // Validate our own passport before trusting it.
  if (!keyring_.verify_passport(*passport)) return;
  passport_ = *passport;
  if (pending_join_->retry_timer != 0) clock_.cancel(pending_join_->retry_timer);
  if (telemetry::FlightRecorder* fr = tel_.flight();
      fr != nullptr && fr->enabled() && pending_join_->trace_root != 0) {
    fr->end(pending_join_->trace_root, self_.value, clock_.now(), "joined",
            static_cast<std::uint16_t>(pending_join_->attempts), 0);
  }
  pending_join_.reset();
  last_heartbeat_seen_ = clock_.now();

  for (auto& e : boot) {
    if (e.id() == self_) continue;
    view_.insert(std::move(e));
  }
  view_.truncate_biased(0, rng_);
}

void Ppss::handle_ping(std::uint8_t kind, Reader& r) {
  const std::uint32_t seq = r.u32();
  auto passport = Passport::deserialize(r);
  auto entry = PrivateEntry::deserialize(r);
  if (!r.ok() || !passport || !entry || !r.expect_done()) {
    reject_frame(r);
    return;
  }
  if (!joined()) return;
  if (!verify_passport_cached(*passport) || passport->node != entry->id()) {
    ++stats_.bad_passports;
    m_passport_bad_.add(1);
    return;
  }
  if (suppress_or_limit(entry->id(), kind, seq)) return;

  if (kind == kKindPing) {
    // Refresh our knowledge of the pinger and answer with our fresh entry.
    view_.insert(*entry);
    view_.truncate_biased(0, rng_);
    Writer w;
    w.group_id(group_);
    w.u8(kKindPong);
    w.u32(seq);
    passport_.serialize(w);
    self_entry().serialize(w);
    wcl_.send_confidential(entry->peer, w.data());
  } else {
    auto it = pending_pings_.find(seq);
    if (it == pending_pings_.end() || it->second != entry->id()) return;
    pending_pings_.erase(it);
    auto pinned = pcp_.find(entry->id());
    if (pinned != pcp_.end()) {
      pinned->second.peer = entry->peer;  // fresh helpers
      pinned->second.missed_pings = 0;
    }
  }
}

void Ppss::handle_app(Reader& r) {
  auto passport = Passport::deserialize(r);
  auto sender = wcl::RemotePeer::deserialize(r);
  const std::uint64_t nonce = r.u64();
  const std::uint8_t app_id = r.u8();
  Bytes payload = r.bytes(config_.max_app_payload);
  if (!r.ok() || !passport || !sender || !r.expect_done()) {
    reject_frame(r);
    return;
  }
  if (!joined()) return;
  if (!verify_passport_cached(*passport) || passport->node != sender->card.id) {
    ++stats_.bad_passports;
    m_passport_bad_.add(1);
    return;
  }
  if (suppress_or_limit(sender->card.id, kKindApp, nonce)) return;
  if (app_id == 0) {
    if (on_app_message) on_app_message(*sender, payload);
    return;
  }
  auto it = app_handlers_.find(app_id);
  if (it != app_handlers_.end() && it->second) it->second(*sender, payload);
}

void Ppss::register_app(std::uint8_t app_id, AppHandler handler) {
  app_handlers_[app_id] = std::move(handler);
}

void Ppss::make_persistent(const wcl::RemotePeer& peer) {
  pcp_[peer.card.id] = PinnedPeer{peer, 0};
}

void Ppss::drop_persistent(NodeId id) { pcp_.erase(id); }

std::optional<wcl::RemotePeer> Ppss::persistent_peer(NodeId id) const {
  auto it = pcp_.find(id);
  if (it == pcp_.end()) return std::nullopt;
  return it->second.peer;
}

wcl::RemotePeer Ppss::self_descriptor() const { return wcl_.self_peer(); }

std::optional<wcl::RemotePeer> Ppss::resolve(NodeId id) const {
  if (auto pinned = persistent_peer(id)) return pinned;
  if (const PrivateEntry* e = view_.find(id)) return e->peer;
  return std::nullopt;
}

bool Ppss::send_app(NodeId to, BytesView payload, std::uint8_t app_id) {
  auto peer = resolve(to);
  if (!peer) return false;
  return send_app_to(*peer, payload, app_id);
}

bool Ppss::send_app_to(const wcl::RemotePeer& to, BytesView payload, std::uint8_t app_id) {
  if (!joined()) return false;
  Writer w;
  w.group_id(group_);
  w.u8(kKindApp);
  passport_.serialize(w);
  wcl_.self_peer().serialize(w);
  // Fresh nonce per frame: receivers suppress replayed (sender, nonce)
  // pairs, so a captured app frame cannot be re-injected.
  w.u64(next_app_nonce_++);
  w.u8(app_id);
  w.bytes(payload);
  return wcl_.send_confidential(to, w.data());
}

}  // namespace whisper::ppss

// Private group management primitives (§IV-A).
//
// A private group has a public/private keypair; all members know the public
// key, leaders hold the private key. Joining requires an accreditation
// (signed invitation); the leader answers with a passport — the node's id
// signed with the group key — which members ship with every intra-group
// message. Messages with invalid passports are silently ignored, so a node
// never reveals group membership to non-members.
//
// Group keys rotate on leader election: the keyring keeps the history of
// group public keys (epoch-indexed) so passports issued under earlier keys
// keep verifying.
#pragma once

#include <optional>
#include <unordered_set>
#include <vector>

#include "common/ids.hpp"
#include "common/serialize.hpp"
#include "crypto/rsa.hpp"

namespace whisper::ppss {

/// Wire cap on a passport/accreditation signature. A signature is one RSA
/// block, so 512 bytes covers 4096-bit group keys; a hostile length prefix
/// cannot force a larger allocation.
inline constexpr std::size_t kMaxSignatureBytes = 512;

/// A member's proof of group membership: its node id signed with the group
/// private key of some epoch.
struct Passport {
  NodeId node;
  std::uint64_t epoch = 0;
  Bytes signature;

  void serialize(Writer& w) const;
  static std::optional<Passport> deserialize(Reader& r);
};

/// An invitation to join: signed by a group key (or an external invitation
/// manager — here always the group key).
struct Accreditation {
  GroupId group;
  NodeId node;
  std::uint64_t epoch = 0;
  Bytes signature;

  void serialize(Writer& w) const;
  static std::optional<Accreditation> deserialize(Reader& r);
};

/// The history of group public keys, epoch-indexed.
class GroupKeyring {
 public:
  explicit GroupKeyring(GroupId group) : group_(group) {}

  GroupId group() const { return group_; }

  void add_epoch(std::uint64_t epoch, crypto::RsaPublicKey key);
  std::uint64_t latest_epoch() const;
  std::optional<crypto::RsaPublicKey> key_for(std::uint64_t epoch) const;
  std::size_t epochs() const { return keys_.size(); }

  /// Verify a passport against the epoch key it claims.
  bool verify_passport(const Passport& p) const;
  bool verify_accreditation(const Accreditation& a) const;

  /// Message bytes a passport signature covers.
  static Bytes passport_message(GroupId group, NodeId node, std::uint64_t epoch);
  static Bytes accreditation_message(GroupId group, NodeId node, std::uint64_t epoch);

 private:
  GroupId group_;
  std::vector<std::pair<std::uint64_t, crypto::RsaPublicKey>> keys_;
};

/// Leader-side issuing helpers.
Passport issue_passport(GroupId group, std::uint64_t epoch, NodeId node,
                        const crypto::RsaKeyPair& group_key);
Accreditation issue_accreditation(GroupId group, std::uint64_t epoch, NodeId node,
                                  const crypto::RsaKeyPair& group_key);

}  // namespace whisper::ppss

#include "nat/rules.hpp"

#include <cassert>
#include <string>
#include <utility>

namespace whisper::nat {

const char* nat_type_name(NatType t) {
  switch (t) {
    case NatType::kNone:
      return "public";
    case NatType::kFullCone:
      return "full_cone";
    case NatType::kRestrictedCone:
      return "restricted_cone";
    case NatType::kPortRestrictedCone:
      return "port_restricted_cone";
    case NatType::kSymmetric:
      return "sym";
  }
  return "?";
}

std::optional<NatType> nat_type_from_name(const std::string& name) {
  if (name == "public" || name == "none") return NatType::kNone;
  if (name == "full_cone" || name == "full") return NatType::kFullCone;
  if (name == "restricted_cone" || name == "restricted") {
    return NatType::kRestrictedCone;
  }
  if (name == "port_restricted_cone" || name == "port_restricted") {
    return NatType::kPortRestrictedCone;
  }
  if (name == "sym" || name == "symmetric") return NatType::kSymmetric;
  return std::nullopt;
}

NatDevice::NatDevice(NatType type, std::uint32_t public_ip, NatConfig config,
                     NowFn now)
    : type_(type), public_ip_(public_ip), config_(config), now_(std::move(now)),
      next_port_(config.base_port) {
  assert(type != NatType::kNone);
}

std::uint16_t NatDevice::allocate_port() {
  if (alloc_) return alloc_();
  return next_port_++;
}

std::optional<Endpoint> NatDevice::outbound(Endpoint internal_src, Endpoint dst) {
  // Cone NATs reuse one mapping per internal endpoint (endpoint-independent
  // mapping); symmetric NATs allocate one per destination.
  const Endpoint map_key_dst = type_ == NatType::kSymmetric ? dst : Endpoint{};
  auto key = std::make_pair(internal_src, map_key_dst);

  auto it = mappings_.find(key);
  if (it != mappings_.end() && it->second.expires <= now_()) {
    mappings_.erase(it);
    it = mappings_.end();
  }
  if (it == mappings_.end()) {
    Mapping m;
    m.internal = internal_src;
    m.external_port = allocate_port();
    if (m.external_port == 0) return std::nullopt;  // backend bind failed
    m.sym_dst = dst;
    it = mappings_.emplace(key, std::move(m)).first;
  }
  Mapping& m = it->second;
  m.expires = now_() + config_.lease;
  m.contacted_ips.insert(dst.ip);
  m.contacted_eps.insert(dst);
  return Endpoint{public_ip_, m.external_port};
}

NatDevice::Mapping* NatDevice::find_by_port(std::uint16_t port) {
  for (auto& [key, m] : mappings_) {
    if (m.external_port == port) {
      if (m.expires <= now_()) return nullptr;
      return &m;
    }
  }
  return nullptr;
}

std::optional<Endpoint> NatDevice::inbound(std::uint16_t external_port, Endpoint src) {
  Mapping* m = find_by_port(external_port);
  if (m == nullptr) return std::nullopt;

  switch (type_) {
    case NatType::kFullCone:
      break;  // endpoint-independent filtering: anyone may send
    case NatType::kRestrictedCone:
      if (!m->contacted_ips.contains(src.ip)) return std::nullopt;
      break;
    case NatType::kPortRestrictedCone:
      if (!m->contacted_eps.contains(src)) return std::nullopt;
      break;
    case NatType::kSymmetric:
      // Address-and-port-dependent filtering against the mapping's one
      // destination.
      if (src != m->sym_dst) return std::nullopt;
      break;
    case NatType::kNone:
      break;
  }
  return m->internal;
}

std::vector<std::uint16_t> NatDevice::prune() {
  const net::Time now = now_();
  std::vector<std::uint16_t> freed;
  for (auto it = mappings_.begin(); it != mappings_.end();) {
    if (it->second.expires <= now) {
      freed.push_back(it->second.external_port);
      it = mappings_.erase(it);
    } else {
      ++it;
    }
  }
  return freed;
}

std::optional<net::Time> NatDevice::expiry_of(std::uint16_t external_port) const {
  for (const auto& [key, m] : mappings_) {
    if (m.external_port == external_port && m.expires > now_()) {
      return m.expires;
    }
  }
  return std::nullopt;
}

std::vector<std::uint16_t> NatDevice::reset() {
  std::vector<std::uint16_t> freed;
  freed.reserve(mappings_.size());
  for (const auto& [key, m] : mappings_) freed.push_back(m.external_port);
  mappings_.clear();
  return freed;
}

std::size_t NatDevice::active_mappings() const {
  std::size_t n = 0;
  for (const auto& [key, m] : mappings_) {
    if (m.expires > now_()) ++n;
  }
  return n;
}

NatType draw_nat_type(Rng& rng, double natted_fraction) {
  if (!rng.next_bool(natted_fraction)) return NatType::kNone;
  switch (rng.next_below(4)) {
    case 0:
      return NatType::kFullCone;
    case 1:
      return NatType::kRestrictedCone;
    case 2:
      return NatType::kPortRestrictedCone;
    default:
      return NatType::kSymmetric;
  }
}

}  // namespace whisper::nat

// NAT device emulation (the paper's SPLAY NAT-emulation feature, §V-A).
//
// Four device types are emulated, mirroring the paper's setup:
//   full_cone            one external port per internal endpoint; anyone may
//                        send to it once it exists.
//   restricted_cone      same mapping; inbound allowed only from IPs the
//                        internal endpoint has sent to.
//   port_restricted_cone same mapping; inbound allowed only from exact
//                        ip:port pairs the internal endpoint has sent to.
//   symmetric            a fresh external port per (internal, destination)
//                        pair; inbound allowed only from that destination.
//                        Hole punching fails; relays are required (as Nylon
//                        observes).
//
// Mappings follow RFC 4787/5382 behaviour: created and refreshed by outbound
// traffic, expired after a lease (default 5 minutes, the Cisco UDP figure
// cited by the paper).
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/densemap.hpp"
#include "common/ids.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace whisper::nat {

enum class NatType : std::uint8_t {
  kNone = 0,  // public node, no device
  kFullCone = 1,
  kRestrictedCone = 2,
  kPortRestrictedCone = 3,
  kSymmetric = 4,
};

const char* nat_type_name(NatType t);

struct NatConfig {
  /// Association-rule lease; outbound traffic refreshes it. The default
  /// models TCP-style connections (the paper's prototype: Cisco quotes 24 h
  /// for TCP vs 5 min for UDP; we default to a conservative hour). Set to
  /// 5 minutes to study the UDP regime.
  sim::Time lease = 60 * sim::kMinute;
  /// First external port handed out.
  std::uint16_t base_port = 20000;
};

/// One emulated NAT device, owning one public IP.
class NatDevice {
 public:
  NatDevice(NatType type, std::uint32_t public_ip, NatConfig config, sim::Simulator& sim);

  NatType type() const { return type_; }
  std::uint32_t public_ip() const { return public_ip_; }

  /// Outbound packet from `internal_src` to `dst`: create/refresh the
  /// mapping, record the destination in the filter, return the external
  /// (public) source endpoint.
  std::optional<Endpoint> outbound(Endpoint internal_src, Endpoint dst);

  /// Inbound packet to our `external_port` from `src`: return the internal
  /// endpoint to deliver to, or nullopt if the filter drops it.
  std::optional<Endpoint> inbound(std::uint16_t external_port, Endpoint src);

  /// Number of live (unexpired) mappings.
  std::size_t active_mappings() const;

  /// Drop every mapping and its filter state (device reboot / power cycle).
  /// In-flight inbound packets to old external ports are filtered out; the
  /// node must re-open mappings with outbound traffic — the fault the
  /// fabric's "natreset" kind injects.
  void reset();

 private:
  struct Mapping {
    Endpoint internal;
    std::uint16_t external_port = 0;
    sim::Time expires = 0;
    // Filtering state: destinations this mapping has sent to.
    std::set<std::uint32_t> contacted_ips;
    std::set<Endpoint> contacted_eps;
    // Symmetric only: the one destination this mapping serves.
    Endpoint sym_dst;
  };

  Mapping* find_by_port(std::uint16_t port);
  std::uint16_t allocate_port();

  NatType type_;
  std::uint32_t public_ip_;
  NatConfig config_;
  sim::Simulator& sim_;
  std::uint16_t next_port_;
  // Cone NATs: keyed by internal endpoint. Symmetric: keyed by
  // (internal, destination).
  std::map<std::pair<Endpoint, Endpoint>, Mapping> mappings_;
};

/// The collection of all NAT devices in a deployment; implements the
/// sim::Network translator hook. Also acts as the address allocator for
/// the whole simulated internet.
class NatFabric : public sim::AddressTranslator {
 public:
  explicit NatFabric(sim::Simulator& sim, NatConfig config = {});

  /// Allocate a public node address (no NAT device).
  Endpoint add_public_node();

  /// Allocate a private address behind a fresh NAT device of the given type.
  Endpoint add_natted_node(NatType type);

  /// Explicit-address variants for the sharded testbed: addresses there are
  /// a pure function of the global node index, so every shard's fabric
  /// registers non-colliding, shard-count-invariant endpoints instead of
  /// drawing from its own sequential allocator.
  Endpoint add_public_node_at(std::uint32_t public_ip);
  Endpoint add_natted_node_at(NatType type, std::uint32_t private_ip,
                              std::uint32_t device_ip);

  /// Remove a node's addressing state (churn departure).
  void remove_node(Endpoint internal_ep);

  /// Reset the NAT device in front of `internal_ep` (no-op for public
  /// nodes). Returns true if a device was reset.
  bool reset_mappings(Endpoint internal_ep);

  bool is_public(Endpoint internal_ep) const;
  NatType type_of(Endpoint internal_ep) const;

  // sim::AddressTranslator:
  std::optional<Endpoint> outbound(Endpoint internal_src, Endpoint public_dst) override;
  std::optional<Endpoint> inbound(Endpoint public_dst, Endpoint public_src) override;

  std::size_t device_count() const { return devices_.size(); }

 private:
  sim::Simulator& sim_;
  NatConfig config_;
  std::uint32_t next_public_ip_ = (1u << 24) | 1;    // 1.0.0.1...
  std::uint32_t next_private_ip_ = (10u << 24) | 1;  // 10.0.0.1...
  std::uint32_t next_device_ip_ = (100u << 24) | 1;  // 100.0.0.1...
  // internal endpoint -> owning device index (or none for public nodes)
  DenseMap<Endpoint, std::size_t> node_device_;
  DenseMap<std::uint32_t, std::size_t> device_by_ip_;
  std::vector<std::unique_ptr<NatDevice>> devices_;
  DenseMap<Endpoint, NatType> node_type_;
};

/// Deployment mix helper: draw a NAT type according to the paper's default
/// population (70% natted, evenly split across the four types).
NatType draw_nat_type(Rng& rng, double natted_fraction = 0.7);

}  // namespace whisper::nat

// Simulator-side NAT fabric (the paper's SPLAY NAT-emulation feature, §V-A).
//
// The per-device mapping/filtering rules live in the backend-agnostic rule
// engine (nat/rules.hpp) — shared verbatim with the real-socket interposer
// in net/shim.hpp. This file keeps the sim coupling: NatFabric owns every
// device in a simulated deployment, allocates the address plan, and plugs
// into sim::Network as its AddressTranslator.
#pragma once

#include <memory>
#include <vector>

#include "common/densemap.hpp"
#include "common/ids.hpp"
#include "nat/rules.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace whisper::nat {

/// The collection of all NAT devices in a deployment; implements the
/// sim::Network translator hook. Also acts as the address allocator for
/// the whole simulated internet.
class NatFabric : public sim::AddressTranslator {
 public:
  explicit NatFabric(sim::Simulator& sim, NatConfig config = {});

  /// Allocate a public node address (no NAT device).
  Endpoint add_public_node();

  /// Allocate a private address behind a fresh NAT device of the given type.
  Endpoint add_natted_node(NatType type);

  /// Explicit-address variants for the sharded testbed: addresses there are
  /// a pure function of the global node index, so every shard's fabric
  /// registers non-colliding, shard-count-invariant endpoints instead of
  /// drawing from its own sequential allocator.
  Endpoint add_public_node_at(std::uint32_t public_ip);
  Endpoint add_natted_node_at(NatType type, std::uint32_t private_ip,
                              std::uint32_t device_ip);

  /// Remove a node's addressing state (churn departure).
  void remove_node(Endpoint internal_ep);

  /// Reset the NAT device in front of `internal_ep` (no-op for public
  /// nodes). Returns true if a device was reset.
  bool reset_mappings(Endpoint internal_ep);

  bool is_public(Endpoint internal_ep) const;
  NatType type_of(Endpoint internal_ep) const;

  // sim::AddressTranslator:
  std::optional<Endpoint> outbound(Endpoint internal_src, Endpoint public_dst) override;
  std::optional<Endpoint> inbound(Endpoint public_dst, Endpoint public_src) override;

  std::size_t device_count() const { return devices_.size(); }

 private:
  sim::Simulator& sim_;
  NatConfig config_;
  std::uint32_t next_public_ip_ = (1u << 24) | 1;    // 1.0.0.1...
  std::uint32_t next_private_ip_ = (10u << 24) | 1;  // 10.0.0.1...
  std::uint32_t next_device_ip_ = (100u << 24) | 1;  // 100.0.0.1...
  // internal endpoint -> owning device index (or none for public nodes)
  DenseMap<Endpoint, std::size_t> node_device_;
  DenseMap<std::uint32_t, std::size_t> device_by_ip_;
  std::vector<std::unique_ptr<NatDevice>> devices_;
  DenseMap<Endpoint, NatType> node_type_;
};

}  // namespace whisper::nat

#include "nat/nat.hpp"

#include <cassert>

namespace whisper::nat {

NatFabric::NatFabric(sim::Simulator& sim, NatConfig config) : sim_(sim), config_(config) {}

Endpoint NatFabric::add_public_node() {
  Endpoint ep{next_public_ip_++, 5000};
  node_type_[ep] = NatType::kNone;
  return ep;
}

Endpoint NatFabric::add_natted_node(NatType type) {
  return add_natted_node_at(type, next_private_ip_++, next_device_ip_++);
}

Endpoint NatFabric::add_public_node_at(std::uint32_t public_ip) {
  Endpoint ep{public_ip, 5000};
  node_type_[ep] = NatType::kNone;
  return ep;
}

Endpoint NatFabric::add_natted_node_at(NatType type, std::uint32_t private_ip,
                                       std::uint32_t device_ip) {
  assert(type != NatType::kNone);
  Endpoint internal{private_ip, 5000};
  auto device = std::make_unique<NatDevice>(type, device_ip, config_,
                                            [this] { return sim_.now(); });
  device_by_ip_[device->public_ip()] = devices_.size();
  node_device_[internal] = devices_.size();
  node_type_[internal] = type;
  devices_.push_back(std::move(device));
  return internal;
}

void NatFabric::remove_node(Endpoint internal_ep) {
  // The device stays registered (mappings expire naturally) but the node's
  // bookkeeping goes away.
  node_device_.erase(internal_ep);
  node_type_.erase(internal_ep);
}

bool NatFabric::reset_mappings(Endpoint internal_ep) {
  auto it = node_device_.find(internal_ep);
  if (it == node_device_.end()) return false;
  devices_[it->second]->reset();
  return true;
}

bool NatFabric::is_public(Endpoint internal_ep) const {
  auto it = node_type_.find(internal_ep);
  return it != node_type_.end() && it->second == NatType::kNone;
}

NatType NatFabric::type_of(Endpoint internal_ep) const {
  auto it = node_type_.find(internal_ep);
  return it == node_type_.end() ? NatType::kNone : it->second;
}

std::optional<Endpoint> NatFabric::outbound(Endpoint internal_src, Endpoint public_dst) {
  auto it = node_device_.find(internal_src);
  if (it == node_device_.end()) return internal_src;  // public node: no rewrite
  return devices_[it->second]->outbound(internal_src, public_dst);
}

std::optional<Endpoint> NatFabric::inbound(Endpoint public_dst, Endpoint public_src) {
  auto it = device_by_ip_.find(public_dst.ip);
  if (it == device_by_ip_.end()) return public_dst;  // public node: direct
  return devices_[it->second]->inbound(public_dst.port, public_src);
}

}  // namespace whisper::nat

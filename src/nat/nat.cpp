#include "nat/nat.hpp"

#include <cassert>

namespace whisper::nat {

const char* nat_type_name(NatType t) {
  switch (t) {
    case NatType::kNone:
      return "public";
    case NatType::kFullCone:
      return "full_cone";
    case NatType::kRestrictedCone:
      return "restricted_cone";
    case NatType::kPortRestrictedCone:
      return "port_restricted_cone";
    case NatType::kSymmetric:
      return "sym";
  }
  return "?";
}

NatDevice::NatDevice(NatType type, std::uint32_t public_ip, NatConfig config,
                     sim::Simulator& sim)
    : type_(type), public_ip_(public_ip), config_(config), sim_(sim),
      next_port_(config.base_port) {
  assert(type != NatType::kNone);
}

std::uint16_t NatDevice::allocate_port() { return next_port_++; }

std::optional<Endpoint> NatDevice::outbound(Endpoint internal_src, Endpoint dst) {
  // Cone NATs reuse one mapping per internal endpoint (endpoint-independent
  // mapping); symmetric NATs allocate one per destination.
  const Endpoint map_key_dst = type_ == NatType::kSymmetric ? dst : Endpoint{};
  auto key = std::make_pair(internal_src, map_key_dst);

  auto it = mappings_.find(key);
  if (it != mappings_.end() && it->second.expires <= sim_.now()) {
    mappings_.erase(it);
    it = mappings_.end();
  }
  if (it == mappings_.end()) {
    Mapping m;
    m.internal = internal_src;
    m.external_port = allocate_port();
    m.sym_dst = dst;
    it = mappings_.emplace(key, std::move(m)).first;
  }
  Mapping& m = it->second;
  m.expires = sim_.now() + config_.lease;
  m.contacted_ips.insert(dst.ip);
  m.contacted_eps.insert(dst);
  return Endpoint{public_ip_, m.external_port};
}

NatDevice::Mapping* NatDevice::find_by_port(std::uint16_t port) {
  for (auto& [key, m] : mappings_) {
    if (m.external_port == port) {
      if (m.expires <= sim_.now()) return nullptr;
      return &m;
    }
  }
  return nullptr;
}

std::optional<Endpoint> NatDevice::inbound(std::uint16_t external_port, Endpoint src) {
  Mapping* m = find_by_port(external_port);
  if (m == nullptr) return std::nullopt;

  switch (type_) {
    case NatType::kFullCone:
      break;  // endpoint-independent filtering: anyone may send
    case NatType::kRestrictedCone:
      if (!m->contacted_ips.contains(src.ip)) return std::nullopt;
      break;
    case NatType::kPortRestrictedCone:
      if (!m->contacted_eps.contains(src)) return std::nullopt;
      break;
    case NatType::kSymmetric:
      // Address-and-port-dependent filtering against the mapping's one
      // destination.
      if (src != m->sym_dst) return std::nullopt;
      break;
    case NatType::kNone:
      break;
  }
  return m->internal;
}

void NatDevice::reset() { mappings_.clear(); }

std::size_t NatDevice::active_mappings() const {
  std::size_t n = 0;
  for (const auto& [key, m] : mappings_) {
    if (m.expires > sim_.now()) ++n;
  }
  return n;
}

NatFabric::NatFabric(sim::Simulator& sim, NatConfig config) : sim_(sim), config_(config) {}

Endpoint NatFabric::add_public_node() {
  Endpoint ep{next_public_ip_++, 5000};
  node_type_[ep] = NatType::kNone;
  return ep;
}

Endpoint NatFabric::add_natted_node(NatType type) {
  return add_natted_node_at(type, next_private_ip_++, next_device_ip_++);
}

Endpoint NatFabric::add_public_node_at(std::uint32_t public_ip) {
  Endpoint ep{public_ip, 5000};
  node_type_[ep] = NatType::kNone;
  return ep;
}

Endpoint NatFabric::add_natted_node_at(NatType type, std::uint32_t private_ip,
                                       std::uint32_t device_ip) {
  assert(type != NatType::kNone);
  Endpoint internal{private_ip, 5000};
  auto device = std::make_unique<NatDevice>(type, device_ip, config_, sim_);
  device_by_ip_[device->public_ip()] = devices_.size();
  node_device_[internal] = devices_.size();
  node_type_[internal] = type;
  devices_.push_back(std::move(device));
  return internal;
}

void NatFabric::remove_node(Endpoint internal_ep) {
  // The device stays registered (mappings expire naturally) but the node's
  // bookkeeping goes away.
  node_device_.erase(internal_ep);
  node_type_.erase(internal_ep);
}

bool NatFabric::reset_mappings(Endpoint internal_ep) {
  auto it = node_device_.find(internal_ep);
  if (it == node_device_.end()) return false;
  devices_[it->second]->reset();
  return true;
}

bool NatFabric::is_public(Endpoint internal_ep) const {
  auto it = node_type_.find(internal_ep);
  return it != node_type_.end() && it->second == NatType::kNone;
}

NatType NatFabric::type_of(Endpoint internal_ep) const {
  auto it = node_type_.find(internal_ep);
  return it == node_type_.end() ? NatType::kNone : it->second;
}

std::optional<Endpoint> NatFabric::outbound(Endpoint internal_src, Endpoint public_dst) {
  auto it = node_device_.find(internal_src);
  if (it == node_device_.end()) return internal_src;  // public node: no rewrite
  return devices_[it->second]->outbound(internal_src, public_dst);
}

std::optional<Endpoint> NatFabric::inbound(Endpoint public_dst, Endpoint public_src) {
  auto it = device_by_ip_.find(public_dst.ip);
  if (it == device_by_ip_.end()) return public_dst;  // public node: direct
  return devices_[it->second]->inbound(public_dst.port, public_src);
}

NatType draw_nat_type(Rng& rng, double natted_fraction) {
  if (!rng.next_bool(natted_fraction)) return NatType::kNone;
  switch (rng.next_below(4)) {
    case 0:
      return NatType::kFullCone;
    case 1:
      return NatType::kRestrictedCone;
    case 2:
      return NatType::kPortRestrictedCone;
    default:
      return NatType::kSymmetric;
  }
}

}  // namespace whisper::nat

// Backend-agnostic NAT rule engine (the paper's SPLAY NAT-emulation feature,
// §V-A), shared by the deterministic simulator fabric (nat.hpp) and the real
// UDP interposer (net/shim.hpp).
//
// Four device types are emulated, mirroring the paper's setup:
//   full_cone            one external port per internal endpoint; anyone may
//                        send to it once it exists.
//   restricted_cone      same mapping; inbound allowed only from IPs the
//                        internal endpoint has sent to.
//   port_restricted_cone same mapping; inbound allowed only from exact
//                        ip:port pairs the internal endpoint has sent to.
//   symmetric            a fresh external port per (internal, destination)
//                        pair; inbound allowed only from that destination.
//                        Hole punching fails; relays are required (as Nylon
//                        observes).
//
// Mappings follow RFC 4787/5382 behaviour: created and refreshed by outbound
// traffic, expired after a lease (default 5 minutes, the Cisco UDP figure
// cited by the paper).
//
// Time comes from an injected now-function rather than a simulator handle so
// the same rules run against sim::Simulator virtual time and the UDP
// backend's wall clock. External ports are sequential by default; a backend
// that must bind a real socket per mapping injects a port allocator whose
// side effect is the bind (returning 0 on bind failure).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "net/time.hpp"

namespace whisper::nat {

enum class NatType : std::uint8_t {
  kNone = 0,  // public node, no device
  kFullCone = 1,
  kRestrictedCone = 2,
  kPortRestrictedCone = 3,
  kSymmetric = 4,
};

const char* nat_type_name(NatType t);

/// Parse a NAT type name as printed by nat_type_name(), plus the common
/// aliases ("none", "full", "restricted", "port_restricted", "symmetric").
std::optional<NatType> nat_type_from_name(const std::string& name);

struct NatConfig {
  /// Association-rule lease; outbound traffic refreshes it. The default
  /// models TCP-style connections (the paper's prototype: Cisco quotes 24 h
  /// for TCP vs 5 min for UDP; we default to a conservative hour). Set to
  /// 5 minutes to study the UDP regime.
  net::Time lease = 60 * net::kMinute;
  /// First external port handed out (sequential allocator only).
  std::uint16_t base_port = 20000;
};

/// One emulated NAT device, owning one public IP.
class NatDevice {
 public:
  using NowFn = std::function<net::Time()>;
  /// Allocates the next external port. A real backend binds a socket here
  /// and returns its port; 0 means allocation failed and the outbound packet
  /// is dropped.
  using PortAllocator = std::function<std::uint16_t()>;

  NatDevice(NatType type, std::uint32_t public_ip, NatConfig config, NowFn now);

  /// Override the sequential port allocator (see PortAllocator).
  void set_port_allocator(PortAllocator alloc) { alloc_ = std::move(alloc); }

  NatType type() const { return type_; }
  std::uint32_t public_ip() const { return public_ip_; }

  /// Outbound packet from `internal_src` to `dst`: create/refresh the
  /// mapping, record the destination in the filter, return the external
  /// (public) source endpoint.
  std::optional<Endpoint> outbound(Endpoint internal_src, Endpoint dst);

  /// Inbound packet to our `external_port` from `src`: return the internal
  /// endpoint to deliver to, or nullopt if the filter drops it.
  std::optional<Endpoint> inbound(std::uint16_t external_port, Endpoint src);

  /// Number of live (unexpired) mappings.
  std::size_t active_mappings() const;

  /// Remove every expired mapping, returning the external ports freed — the
  /// backend closes their sockets. Expiry is also checked lazily on the
  /// outbound/inbound paths, so calling this is optional for correctness.
  std::vector<std::uint16_t> prune();

  /// Lease deadline of a live mapping by external port, if any.
  std::optional<net::Time> expiry_of(std::uint16_t external_port) const;

  /// Drop every mapping and its filter state (device reboot / power cycle),
  /// returning the external ports freed. In-flight inbound packets to old
  /// external ports are filtered out; the node must re-open mappings with
  /// outbound traffic — the fault the fabric's "natreset" kind injects and
  /// the localnet supervisor's "natreboot" chaos event.
  std::vector<std::uint16_t> reset();

 private:
  struct Mapping {
    Endpoint internal;
    std::uint16_t external_port = 0;
    net::Time expires = 0;
    // Filtering state: destinations this mapping has sent to.
    std::set<std::uint32_t> contacted_ips;
    std::set<Endpoint> contacted_eps;
    // Symmetric only: the one destination this mapping serves.
    Endpoint sym_dst;
  };

  Mapping* find_by_port(std::uint16_t port);
  std::uint16_t allocate_port();

  NatType type_;
  std::uint32_t public_ip_;
  NatConfig config_;
  NowFn now_;
  PortAllocator alloc_;
  std::uint16_t next_port_;
  // Cone NATs: keyed by internal endpoint. Symmetric: keyed by
  // (internal, destination).
  std::map<std::pair<Endpoint, Endpoint>, Mapping> mappings_;
};

/// Deployment mix helper: draw a NAT type according to the paper's default
/// population (70% natted, evenly split across the four types).
NatType draw_nat_type(Rng& rng, double natted_fraction = 0.7);

}  // namespace whisper::nat

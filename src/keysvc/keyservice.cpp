#include "keysvc/keyservice.hpp"

namespace whisper::keysvc {

namespace {
constexpr std::uint8_t kKindRequest = 1;
constexpr std::uint8_t kKindResponse = 2;
}  // namespace

KeyService::KeyService(net::Clock& clock, nylon::Transport& transport,
                       const crypto::RsaKeyPair& own, KeyServiceConfig config)
    : clock_(clock), transport_(transport), own_(own), config_(config) {
  transport_.register_handler(nylon::kTagKeys,
                              [this](NodeId from, BytesView p) { handle_message(from, p); });
}

KeyService::~KeyService() {
  for (auto&& [seq, pending] : pending_) {
    if (pending.timeout_timer != 0) clock_.cancel(pending.timeout_timer);
  }
}

Bytes KeyService::piggyback() const {
  // key_wire_size == 0 disables the key sampling service entirely (the
  // Fig. 6 baseline): no key travels with gossip messages.
  if (config_.key_wire_size == 0) return {};
  return own_.pub.serialize_padded(config_.key_wire_size);
}

void KeyService::consume(const pss::ContactCard& from, BytesView extra) {
  if (extra.empty()) return;
  auto key = crypto::RsaPublicKey::deserialize(extra);
  if (key) store(from.id, *key);
}

void KeyService::store(NodeId id, const crypto::RsaPublicKey& key) {
  auto it = cache_.find(id);
  if (it != cache_.end()) {
    it->second = key;
    return;
  }
  if (config_.max_cached_keys > 0) {
    while (cache_.size() >= config_.max_cached_keys && !cache_order_.empty()) {
      cache_.erase(cache_order_.front());
      cache_order_.pop_front();
      ++cache_evictions_;
    }
  }
  cache_order_.push_back(id);
  cache_.emplace(id, key);
}

std::optional<crypto::RsaPublicKey> KeyService::key_of(NodeId id) const {
  auto it = cache_.find(id);
  if (it == cache_.end()) return std::nullopt;
  return it->second;
}

void KeyService::request_key(
    const pss::ContactCard& target,
    std::function<void(std::optional<crypto::RsaPublicKey>)> callback) {
  // Serve from cache when possible.
  if (auto cached = key_of(target.id)) {
    callback(*cached);
    return;
  }
  const std::uint32_t seq = next_seq_++;
  Writer w;
  w.u8(kKindRequest);
  w.u32(seq);
  transport_.self_card().serialize(w);  // so a natted requester can be answered
  transport_.send(target, nylon::kTagKeys, w.data(), net::Proto::kKeys);

  PendingRequest pending;
  pending.target = target.id;
  pending.callback = std::move(callback);
  pending.timeout_timer = clock_.schedule_after(config_.request_timeout, [this, seq] {
    auto it = pending_.find(seq);
    if (it == pending_.end()) return;
    auto cb = std::move(it->second.callback);
    pending_.erase(it);
    cb(std::nullopt);
  });
  pending_[seq] = std::move(pending);
}

void KeyService::handle_message(NodeId from, BytesView payload) {
  Reader r(payload);
  const std::uint8_t kind = r.u8();
  const std::uint32_t seq = r.u32();
  if (!r.ok() || (kind != kKindRequest && kind != kKindResponse)) {
    ++decode_rejects_;
    return;
  }

  if (kind == kKindRequest) {
    pss::ContactCard requester = pss::ContactCard::deserialize(r);
    if (!r.expect_done() || requester.id != from) {
      ++decode_rejects_;
      return;
    }
    Writer w;
    w.u8(kKindResponse);
    w.u32(seq);
    w.bytes(piggyback());
    transport_.send(requester, nylon::kTagKeys, w.data(), net::Proto::kKeys);
    return;
  }
  if (kind == kKindResponse) {
    auto it = pending_.find(seq);
    if (it == pending_.end() || it->second.target != from) return;
    Bytes key_bytes = r.bytes(crypto::kMaxKeyWireBytes);
    if (!r.expect_done()) {
      ++decode_rejects_;
      return;
    }
    auto key = crypto::RsaPublicKey::deserialize(key_bytes);
    if (key) store(from, *key);
    auto cb = std::move(it->second.callback);
    if (it->second.timeout_timer != 0) clock_.cancel(it->second.timeout_timer);
    pending_.erase(it);
    cb(key);
  }
}

}  // namespace whisper::keysvc

// Decentralized public key management (§III-B-2).
//
// Every gossip exchange piggybacks the sender's public key, so a node ends
// up knowing the key of everything in its connection backlog (the CB is fed
// by the same exchanges). Keys are additionally fetchable on demand — the
// WCL uses this when it must pull a fresh P-node into the CB to restore the
// Π invariant ("keys are also exchanged with the P-nodes that are
// explicitly contacted").
//
// Keys travel padded to `key_wire_size` bytes (default 1 KB, the figure the
// paper uses for its bandwidth accounting).
#pragma once

#include <deque>
#include <functional>
#include <optional>
#include "common/densemap.hpp"

#include "crypto/rsa.hpp"
#include "nylon/transport.hpp"
#include "net/spi.hpp"

namespace whisper::keysvc {

struct KeyServiceConfig {
  /// Wire size each public key is padded to (the paper accounts 1 KB per
  /// key). 0 disables piggybacking entirely (Fig. 6's no-KS baseline).
  std::size_t key_wire_size = 1024;
  net::Time request_timeout = 5 * net::kSecond;
  /// Hard cap on cached peer keys (peer-driven state; FIFO eviction).
  std::size_t max_cached_keys = 4096;
};

class KeyService {
 public:
  KeyService(net::Clock& clock, nylon::Transport& transport, const crypto::RsaKeyPair& own,
             KeyServiceConfig config = {});
  ~KeyService();

  KeyService(const KeyService&) = delete;
  KeyService& operator=(const KeyService&) = delete;

  const crypto::RsaPublicKey& own_public() const { return own_.pub; }
  const crypto::RsaKeyPair& own_pair() const { return own_; }

  /// PSS piggyback hooks. Wire these to NylonPss::extra_provider/consumer.
  Bytes piggyback() const;
  void consume(const pss::ContactCard& from, BytesView extra);

  void store(NodeId id, const crypto::RsaPublicKey& key);
  std::optional<crypto::RsaPublicKey> key_of(NodeId id) const;
  std::size_t cache_size() const { return cache_.size(); }
  std::uint64_t decode_rejects() const { return decode_rejects_; }
  std::uint64_t cache_evictions() const { return cache_evictions_; }

  /// Explicitly fetch `target`'s public key (request/response over the
  /// transport). The callback fires exactly once: with the key, or with
  /// nullopt after the timeout.
  void request_key(const pss::ContactCard& target,
                   std::function<void(std::optional<crypto::RsaPublicKey>)> callback);

 private:
  void handle_message(NodeId from, BytesView payload);

  net::Clock& clock_;
  nylon::Transport& transport_;
  const crypto::RsaKeyPair& own_;
  KeyServiceConfig config_;
  DenseMap<NodeId, crypto::RsaPublicKey> cache_;
  std::deque<NodeId> cache_order_;  // insertion order, for FIFO eviction
  std::uint64_t decode_rejects_ = 0;
  std::uint64_t cache_evictions_ = 0;

  struct PendingRequest {
    NodeId target;
    std::function<void(std::optional<crypto::RsaPublicKey>)> callback;
    net::TimerId timeout_timer = 0;
  };
  DenseMap<std::uint32_t, PendingRequest> pending_;
  std::uint32_t next_seq_ = 1;
};

}  // namespace whisper::keysvc

// SHA-256 (FIPS 180-4). Used for signatures, passports, key fingerprints,
// and as the extractor for deterministic key-material derivation.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace whisper::crypto {

using Digest256 = std::array<std::uint8_t, 32>;

/// Incremental SHA-256.
class Sha256 {
 public:
  Sha256();

  Sha256& update(BytesView data);
  Sha256& update(const void* data, std::size_t n);
  Digest256 finish();

  /// One-shot convenience.
  static Digest256 hash(BytesView data);

 private:
  void process_block(const std::uint8_t* block);

  std::uint32_t h_[8];
  std::uint8_t buf_[64];
  std::size_t buf_len_ = 0;
  std::uint64_t total_len_ = 0;
};

/// Truncated 64-bit fingerprint of a byte string (for ids derived from keys).
std::uint64_t fingerprint64(BytesView data);

}  // namespace whisper::crypto

// Arbitrary-precision unsigned integers, sized for RSA (512..4096 bits).
//
// Representation: little-endian vector of 64-bit limbs, normalized so the
// most significant limb is non-zero (zero is the empty vector). Intermediate
// arithmetic uses unsigned __int128. Modular exponentiation uses Montgomery
// multiplication (CIOS), which requires an odd modulus — always the case for
// RSA moduli and Miller-Rabin candidates. A general Knuth-D division is
// provided for everything else.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/bytes.hpp"

namespace whisper::crypto {

class BigInt {
 public:
  BigInt() = default;
  BigInt(std::uint64_t v);  // NOLINT(google-explicit-constructor): numeric literal convenience

  /// Big-endian byte import/export (network order, as used on the wire).
  static BigInt from_bytes(BytesView be);
  Bytes to_bytes() const;
  /// Fixed-width big-endian export, left-padded with zeros. Value must fit.
  Bytes to_bytes_padded(std::size_t width) const;

  static BigInt from_hex(const std::string& hex);
  std::string to_hex() const;

  bool is_zero() const { return limbs_.empty(); }
  bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  bool is_one() const { return limbs_.size() == 1 && limbs_[0] == 1; }
  std::size_t bit_length() const;
  bool bit(std::size_t i) const;

  // Comparisons.
  int compare(const BigInt& o) const;
  bool operator==(const BigInt& o) const { return compare(o) == 0; }
  bool operator!=(const BigInt& o) const { return compare(o) != 0; }
  bool operator<(const BigInt& o) const { return compare(o) < 0; }
  bool operator<=(const BigInt& o) const { return compare(o) <= 0; }
  bool operator>(const BigInt& o) const { return compare(o) > 0; }
  bool operator>=(const BigInt& o) const { return compare(o) >= 0; }

  // Arithmetic. Subtraction requires *this >= o (unsigned domain).
  BigInt operator+(const BigInt& o) const;
  BigInt operator-(const BigInt& o) const;
  BigInt operator*(const BigInt& o) const;
  BigInt operator<<(std::size_t bits) const;
  BigInt operator>>(std::size_t bits) const;

  /// (quotient, remainder); divisor must be non-zero.
  std::pair<BigInt, BigInt> divmod(const BigInt& divisor) const;
  BigInt operator/(const BigInt& o) const { return divmod(o).first; }
  BigInt operator%(const BigInt& o) const { return divmod(o).second; }

  /// Remainder modulo a single 64-bit value (fast path for prime sieving).
  std::uint64_t mod_u64(std::uint64_t m) const;

  /// (this ^ exp) mod m. m must be odd (Montgomery); asserts otherwise.
  BigInt modexp(const BigInt& exp, const BigInt& m) const;

  /// Modular inverse via binary extended gcd; returns zero if not invertible.
  BigInt modinv(const BigInt& m) const;

  static BigInt gcd(BigInt a, BigInt b);

  const std::vector<std::uint64_t>& limbs() const { return limbs_; }

 private:
  void trim();
  static BigInt from_limbs(std::vector<std::uint64_t> limbs);

  std::vector<std::uint64_t> limbs_;
};

}  // namespace whisper::crypto

// Arbitrary-precision unsigned integers, sized for RSA (512..4096 bits).
//
// Representation: little-endian vector of 64-bit limbs, normalized so the
// most significant limb is non-zero (zero is the empty vector). Intermediate
// arithmetic uses unsigned __int128. Modular exponentiation uses Montgomery
// multiplication (CIOS), which requires an odd modulus — always the case for
// RSA moduli and Miller-Rabin candidates. A general Knuth-D division is
// provided for everything else.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/bytes.hpp"

namespace whisper::crypto {

class BigInt {
 public:
  BigInt() = default;
  BigInt(std::uint64_t v);  // NOLINT(google-explicit-constructor): numeric literal convenience

  /// Big-endian byte import/export (network order, as used on the wire).
  static BigInt from_bytes(BytesView be);
  Bytes to_bytes() const;
  /// Fixed-width big-endian export, left-padded with zeros. Value must fit.
  Bytes to_bytes_padded(std::size_t width) const;

  static BigInt from_hex(const std::string& hex);
  std::string to_hex() const;

  bool is_zero() const { return limbs_.empty(); }
  bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  bool is_one() const { return limbs_.size() == 1 && limbs_[0] == 1; }
  std::size_t bit_length() const;
  bool bit(std::size_t i) const;

  // Comparisons.
  int compare(const BigInt& o) const;
  bool operator==(const BigInt& o) const { return compare(o) == 0; }
  bool operator!=(const BigInt& o) const { return compare(o) != 0; }
  bool operator<(const BigInt& o) const { return compare(o) < 0; }
  bool operator<=(const BigInt& o) const { return compare(o) <= 0; }
  bool operator>(const BigInt& o) const { return compare(o) > 0; }
  bool operator>=(const BigInt& o) const { return compare(o) >= 0; }

  // Arithmetic. Subtraction requires *this >= o (unsigned domain).
  BigInt operator+(const BigInt& o) const;
  BigInt operator-(const BigInt& o) const;
  BigInt operator*(const BigInt& o) const;
  BigInt operator<<(std::size_t bits) const;
  BigInt operator>>(std::size_t bits) const;

  /// (quotient, remainder); divisor must be non-zero.
  std::pair<BigInt, BigInt> divmod(const BigInt& divisor) const;
  BigInt operator/(const BigInt& o) const { return divmod(o).first; }
  BigInt operator%(const BigInt& o) const { return divmod(o).second; }

  /// Remainder modulo a single 64-bit value (fast path for prime sieving).
  std::uint64_t mod_u64(std::uint64_t m) const;

  /// (this ^ exp) mod m. m must be odd (Montgomery); asserts otherwise.
  BigInt modexp(const BigInt& exp, const BigInt& m) const;

  /// Modular inverse via binary extended gcd; returns zero if not invertible.
  BigInt modinv(const BigInt& m) const;

  static BigInt gcd(BigInt a, BigInt b);

  /// In-place product: out = a * b, reusing out's limb storage (no
  /// allocation once its capacity suffices). out must not alias a or b.
  static void mul_into(const BigInt& a, const BigInt& b, BigInt& out);

  /// In-place reduction: *this %= m. Values already below m return without
  /// touching storage, so tight multiply-reduce loops can call this
  /// unconditionally.
  void mod_assign(const BigInt& m);

  const std::vector<std::uint64_t>& limbs() const { return limbs_; }

 private:
  friend class MontgomeryCtx;

  void trim();
  static BigInt from_limbs(std::vector<std::uint64_t> limbs);

  std::vector<std::uint64_t> limbs_;
};

/// Reusable Montgomery machinery for one odd modulus.
///
/// Construction precomputes the CIOS constants (n', R^2 mod n, R mod n),
/// which cost a full-width division — by far the most expensive part of a
/// from-scratch modexp call. Callers that repeatedly exponentiate against
/// the same modulus (every RSA operation on a given key) should build one
/// context per modulus and reuse it; `RsaPublicKey::mont()` and
/// `RsaKeyPair::mont_p()/mont_q()` cache exactly that.
///
/// modexp() uses fixed 4-bit windows: a 16-entry power table is built per
/// call (it depends on the base), then the main loop does 4 squarings plus
/// at most one table multiply per window. The inner loop runs entirely on
/// preallocated limb buffers — the CIOS accumulator is a context-owned
/// scratch vector, so no limb storage is allocated per multiplication.
/// Results are bit-identical to the square-and-multiply path: both compute
/// plain (base ^ exp) mod n.
///
/// Thread-compatible, not thread-safe: the shared scratch buffer means one
/// context must not be used from two threads at once (the simulator is
/// single-threaded throughout).
class MontgomeryCtx {
 public:
  /// `modulus` must be odd and non-zero.
  explicit MontgomeryCtx(const BigInt& modulus);

  const BigInt& modulus() const { return modulus_; }
  std::size_t limb_count() const { return n_.size(); }

  /// (base ^ exp) mod modulus. Fixed-window for large exponents, plain
  /// left-to-right binary for short ones (e.g. e = 65537), where building
  /// the window table would cost more than it saves.
  BigInt modexp(const BigInt& base, const BigInt& exp) const;

 private:
  /// CIOS Montgomery multiplication: out = a*b*R^{-1} mod n on raw k-limb
  /// buffers. Uses the context scratch; out may alias a or b (all reads of
  /// a/b happen before out is written).
  void mul(const std::uint64_t* a, const std::uint64_t* b, std::uint64_t* out) const;

  BigInt modulus_;
  std::vector<std::uint64_t> n_;         // modulus limbs
  std::uint64_t n_prime_ = 0;            // -n^{-1} mod 2^64
  std::vector<std::uint64_t> r2_;        // R^2 mod n, R = 2^(64k)
  std::vector<std::uint64_t> one_mont_;  // R mod n = Montgomery form of 1
  mutable std::vector<std::uint64_t> scratch_;  // CIOS accumulator, reused
};

}  // namespace whisper::crypto

#include "crypto/random.hpp"

#include <cstring>

namespace whisper::crypto {

Drbg::Drbg(std::uint64_t seed) {
  std::uint8_t seed_bytes[8];
  std::memcpy(seed_bytes, &seed, 8);
  const Digest256 d = Sha256::hash(BytesView(seed_bytes, 8));
  std::memcpy(seed_, d.data(), 32);
}

Drbg::Drbg(Rng& rng) : Drbg(rng.next_u64()) {}

void Drbg::refill() {
  Sha256 h;
  h.update(seed_, 32);
  std::uint8_t ctr[8];
  std::memcpy(ctr, &counter_, 8);
  h.update(ctr, 8);
  block_ = h.finish();
  ++counter_;
  pos_ = 0;
}

void Drbg::fill(std::uint8_t* out, std::size_t n) {
  while (n > 0) {
    if (pos_ >= 32) refill();
    const std::size_t take = std::min<std::size_t>(n, 32 - pos_);
    std::memcpy(out, block_.data() + pos_, take);
    pos_ += take;
    out += take;
    n -= take;
  }
}

Bytes Drbg::bytes(std::size_t n) {
  Bytes out(n);
  fill(out.data(), n);
  return out;
}

std::uint64_t Drbg::u64() {
  std::uint64_t v = 0;
  fill(reinterpret_cast<std::uint8_t*>(&v), 8);
  return v;
}

std::uint64_t Drbg::below(std::uint64_t bound) {
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = u64();
    if (r >= threshold) return r % bound;
  }
}

}  // namespace whisper::crypto

#include "crypto/aes128.hpp"

#include <cstring>

namespace whisper::crypto {

namespace {

// S-box tables built once at startup from the GF(2^8) inverse + affine map.
struct SboxTables {
  std::uint8_t sbox[256];
  std::uint8_t inv_sbox[256];

  SboxTables() {
    // Multiplicative inverses via exp/log tables over generator 3.
    std::uint8_t exp[256], log[256];
    std::uint8_t x = 1;
    for (int i = 0; i < 256; ++i) {
      exp[i] = x;
      log[x] = static_cast<std::uint8_t>(i);
      // multiply x by 3 in GF(2^8)
      x = static_cast<std::uint8_t>(x ^ ((x << 1) ^ ((x & 0x80) ? 0x1b : 0)));
    }
    for (int i = 0; i < 256; ++i) {
      std::uint8_t inv = i == 0 ? 0 : exp[255 - log[i]];
      // Affine transformation.
      std::uint8_t s = static_cast<std::uint8_t>(
          inv ^ static_cast<std::uint8_t>((inv << 1) | (inv >> 7)) ^
          static_cast<std::uint8_t>((inv << 2) | (inv >> 6)) ^
          static_cast<std::uint8_t>((inv << 3) | (inv >> 5)) ^
          static_cast<std::uint8_t>((inv << 4) | (inv >> 4)) ^ 0x63);
      sbox[i] = s;
      inv_sbox[s] = static_cast<std::uint8_t>(i);
    }
  }
};

const SboxTables& tables() {
  static const SboxTables t;
  return t;
}

std::uint8_t xtime(std::uint8_t a) {
  return static_cast<std::uint8_t>((a << 1) ^ ((a & 0x80) ? 0x1b : 0));
}

std::uint8_t gmul(std::uint8_t a, std::uint8_t b) {
  std::uint8_t p = 0;
  for (int i = 0; i < 8; ++i) {
    if (b & 1) p ^= a;
    a = xtime(a);
    b >>= 1;
  }
  return p;
}

}  // namespace

Aes128::Aes128(const AesKey& key) {
  const auto& t = tables();
  std::memcpy(round_keys_[0], key.data(), 16);
  std::uint8_t rcon = 1;
  for (int r = 1; r <= 10; ++r) {
    std::uint8_t* rk = round_keys_[r];
    const std::uint8_t* prev = round_keys_[r - 1];
    // RotWord + SubWord + Rcon on the last word of the previous round key.
    rk[0] = static_cast<std::uint8_t>(prev[0] ^ t.sbox[prev[13]] ^ rcon);
    rk[1] = static_cast<std::uint8_t>(prev[1] ^ t.sbox[prev[14]]);
    rk[2] = static_cast<std::uint8_t>(prev[2] ^ t.sbox[prev[15]]);
    rk[3] = static_cast<std::uint8_t>(prev[3] ^ t.sbox[prev[12]]);
    for (int i = 4; i < 16; ++i) rk[i] = static_cast<std::uint8_t>(prev[i] ^ rk[i - 4]);
    rcon = xtime(rcon);
  }
}

void Aes128::encrypt_block(const std::uint8_t in[16], std::uint8_t out[16]) const {
  const auto& t = tables();
  std::uint8_t s[16];
  for (int i = 0; i < 16; ++i) s[i] = static_cast<std::uint8_t>(in[i] ^ round_keys_[0][i]);

  for (int round = 1; round <= 10; ++round) {
    // SubBytes
    for (auto& b : s) b = t.sbox[b];
    // ShiftRows (state is column-major: s[4c + r] is row r, column c)
    std::uint8_t tmp[16];
    for (int c = 0; c < 4; ++c)
      for (int r = 0; r < 4; ++r) tmp[4 * c + r] = s[4 * ((c + r) % 4) + r];
    std::memcpy(s, tmp, 16);
    // MixColumns (skipped in the final round)
    if (round < 10) {
      for (int c = 0; c < 4; ++c) {
        std::uint8_t* col = s + 4 * c;
        const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
        col[0] = static_cast<std::uint8_t>(xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3);
        col[1] = static_cast<std::uint8_t>(a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3);
        col[2] = static_cast<std::uint8_t>(a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3));
        col[3] = static_cast<std::uint8_t>((xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3));
      }
    }
    // AddRoundKey
    for (int i = 0; i < 16; ++i) s[i] = static_cast<std::uint8_t>(s[i] ^ round_keys_[round][i]);
  }
  std::memcpy(out, s, 16);
}

void Aes128::decrypt_block(const std::uint8_t in[16], std::uint8_t out[16]) const {
  const auto& t = tables();
  std::uint8_t s[16];
  for (int i = 0; i < 16; ++i) s[i] = static_cast<std::uint8_t>(in[i] ^ round_keys_[10][i]);

  for (int round = 9; round >= 0; --round) {
    // InvShiftRows
    std::uint8_t tmp[16];
    for (int c = 0; c < 4; ++c)
      for (int r = 0; r < 4; ++r) tmp[4 * ((c + r) % 4) + r] = s[4 * c + r];
    std::memcpy(s, tmp, 16);
    // InvSubBytes
    for (auto& b : s) b = t.inv_sbox[b];
    // AddRoundKey
    for (int i = 0; i < 16; ++i) s[i] = static_cast<std::uint8_t>(s[i] ^ round_keys_[round][i]);
    // InvMixColumns (skipped before the last AddRoundKey, i.e. round 0)
    if (round > 0) {
      for (int c = 0; c < 4; ++c) {
        std::uint8_t* col = s + 4 * c;
        const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
        col[0] = static_cast<std::uint8_t>(gmul(a0, 14) ^ gmul(a1, 11) ^ gmul(a2, 13) ^
                                           gmul(a3, 9));
        col[1] = static_cast<std::uint8_t>(gmul(a0, 9) ^ gmul(a1, 14) ^ gmul(a2, 11) ^
                                           gmul(a3, 13));
        col[2] = static_cast<std::uint8_t>(gmul(a0, 13) ^ gmul(a1, 9) ^ gmul(a2, 14) ^
                                           gmul(a3, 11));
        col[3] = static_cast<std::uint8_t>(gmul(a0, 11) ^ gmul(a1, 13) ^ gmul(a2, 9) ^
                                           gmul(a3, 14));
      }
    }
  }
  std::memcpy(out, s, 16);
}

Bytes aes128_ctr(const AesKey& key, const AesBlock& iv, BytesView data) {
  const Aes128 cipher(key);
  Bytes out(data.size());
  AesBlock counter = iv;
  std::uint8_t keystream[16];
  for (std::size_t off = 0; off < data.size(); off += 16) {
    cipher.encrypt_block(counter.data(), keystream);
    const std::size_t n = std::min<std::size_t>(16, data.size() - off);
    for (std::size_t i = 0; i < n; ++i)
      out[off + i] = static_cast<std::uint8_t>(data[off + i] ^ keystream[i]);
    // Increment the counter block (big-endian).
    for (int i = 15; i >= 0; --i) {
      if (++counter[static_cast<std::size_t>(i)] != 0) break;
    }
  }
  return out;
}

}  // namespace whisper::crypto

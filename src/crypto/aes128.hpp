// AES-128 (FIPS 197) block cipher plus CTR mode.
//
// The paper uses AES for the symmetric leg of the hybrid onion encryption
// (content encrypted under a fresh random key k, k itself RSA-wrapped).
// CTR mode keeps ciphertext length equal to plaintext length, which keeps
// onion-layer size accounting simple.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace whisper::crypto {

using AesKey = std::array<std::uint8_t, 16>;
using AesBlock = std::array<std::uint8_t, 16>;

/// AES-128 with a precomputed key schedule.
class Aes128 {
 public:
  explicit Aes128(const AesKey& key);

  void encrypt_block(const std::uint8_t in[16], std::uint8_t out[16]) const;
  void decrypt_block(const std::uint8_t in[16], std::uint8_t out[16]) const;

 private:
  std::uint8_t round_keys_[11][16];
};

/// CTR-mode encryption/decryption (the operation is its own inverse).
/// The 16-byte IV is the initial counter block.
Bytes aes128_ctr(const AesKey& key, const AesBlock& iv, BytesView data);

}  // namespace whisper::crypto

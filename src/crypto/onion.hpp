// Onion codec: the layered encryption used by the WCL (Section III-A).
//
// The source S prepares a path S -> M_1 -> ... -> M_f -> D. It first seals
// (content key k, ⊥) to D, then wraps layers outside-in: for each mix M the
// layer plaintext is (next-hop id || inner layer), sealed to M's public key
// with the hybrid envelope. The message body is AES-CTR(k, content) and
// travels next to the onion header unchanged; only D can read it.
//
// A mix that peels its layer learns only the next hop — it cannot tell
// whether the next hop is another mix or the destination, nor whether its
// predecessor was a mix or the source (relationship anonymity). Note that
// headers shrink by one envelope per hop; the paper does not employ
// fixed-size cells and neither do we (single-link observers are in scope,
// multi-point traffic analysis is excluded by the threat model).
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "crypto/envelope.hpp"

namespace whisper::crypto {

/// One hop of an onion path (a mix or the final destination).
struct OnionHop {
  NodeId id;
  RsaPublicKey key;
  /// Address hint for reaching this hop, baked into the *previous* layer so
  /// the forwarding mix knows where to send. May be nil when the forwarder
  /// is expected to resolve the node locally (e.g. the next-to-last hop has
  /// a NAT-traversal route to the destination from a recent gossip
  /// exchange).
  Endpoint addr;
};

/// Wire caps for onion frames. Headers hold one envelope per hop (a few
/// hundred bytes each at the paper's key sizes); bodies carry application
/// payloads. A forged length prefix beyond these is rejected before any
/// allocation happens.
inline constexpr std::size_t kMaxOnionHeader = 16 * 1024;
inline constexpr std::size_t kMaxOnionBody = 1024 * 1024;

/// A fully built onion message: the layered header plus the content body.
struct OnionPacket {
  Bytes header;
  Bytes body;

  Bytes serialize() const;
  static std::optional<OnionPacket> deserialize(BytesView data);
  std::size_t wire_size() const { return header.size() + body.size() + 8; }
};

/// The symmetric content key material carried in the innermost layer.
struct OnionKeys {
  AesKey k;
  AesBlock iv;
};

OnionKeys onion_fresh_keys(Drbg& drbg);

/// Encrypt/decrypt the content body with the content key (CTR mode: the
/// same operation in both directions). Split out from onion_build so that
/// callers can account AES time separately from RSA time (Table II).
Bytes onion_crypt_body(const OnionKeys& keys, BytesView data);

/// Build just the layered header for `path` carrying `keys` to the
/// destination. Path: mixes in forward order, destination last; the source
/// is not part of the path. Must be non-empty.
Bytes onion_build_header(std::span<const OnionHop> path, const OnionKeys& keys, Drbg& drbg);

/// Convenience: fresh keys + body encryption + header build.
OnionPacket onion_build(std::span<const OnionHop> path, BytesView content, Drbg& drbg);

/// Result of peeling one layer at a node.
struct OnionPeel {
  /// True iff this node is the destination; `content` is then the decrypted
  /// message and `next_hop`/`next_packet` are meaningless.
  bool is_destination = false;
  NodeId next_hop;
  /// Address hint for the next hop (nil if the forwarder must resolve it).
  Endpoint next_addr;
  OnionPacket next_packet;
  /// Destination only: content key material (for onion_crypt_body).
  OnionKeys keys{};
  /// Destination only, onion_peel() convenience: the decrypted content.
  Bytes content;
};

/// Peel one header layer with the local private key; does NOT decrypt the
/// body (at the destination, `keys` is populated instead). nullopt if the
/// packet is not addressed to this key or is malformed.
std::optional<OnionPeel> onion_peel_header(const RsaKeyPair& key, const OnionPacket& packet);

/// Convenience: peel and, at the destination, also decrypt the body.
std::optional<OnionPeel> onion_peel(const RsaKeyPair& key, const OnionPacket& packet);

}  // namespace whisper::crypto

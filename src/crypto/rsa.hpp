// RSA: key generation, encryption, and signatures.
//
// Used by WHISPER in three places:
//  - each node's keypair wraps the per-layer AES keys of onion paths (WCL);
//  - each private group's keypair signs member passports (PPSS);
//  - leaders sign key-rotation announcements after leader election.
//
// Padding is PKCS#1 v1.5 style (type 2 for encryption, type 1 for
// signatures). Key size is configurable: large simulations default to
// 512-bit keys so that generating a thousand keypairs stays cheap, while
// 1024/2048-bit keys are exercised in tests and micro-benchmarks. The paper
// quotes 1 KB serialized public keys; the wire encoding below can pad to an
// arbitrary width so bandwidth experiments can match that figure.
#pragma once

#include <cstdint>
#include <optional>

#include "common/bytes.hpp"
#include "crypto/bigint.hpp"
#include "crypto/random.hpp"

namespace whisper::crypto {

struct RsaPublicKey {
  BigInt n;
  BigInt e;

  /// Modulus size in bytes; ciphertexts and signatures have this length.
  std::size_t block_size() const { return (n.bit_length() + 7) / 8; }
  /// Largest message acceptable to encrypt() (padding takes 11 bytes).
  std::size_t max_message() const { return block_size() >= 11 ? block_size() - 11 : 0; }

  Bytes serialize() const;
  static std::optional<RsaPublicKey> deserialize(BytesView data);

  /// Serialize padded with trailing zeros to exactly `width` bytes (to match
  /// the paper's 1 KB-per-public-key accounting). Must fit.
  Bytes serialize_padded(std::size_t width) const;

  /// Stable 64-bit fingerprint of the key (used as a key id).
  std::uint64_t fingerprint() const;

  bool operator==(const RsaPublicKey& o) const { return n == o.n && e == o.e; }
};

struct RsaKeyPair {
  RsaPublicKey pub;
  BigInt d;  // private exponent

  /// Generate a keypair with the given modulus size from the DRBG.
  static RsaKeyPair generate(std::size_t bits, Drbg& drbg);
};

/// PKCS#1-v1.5-type-2 encryption of msg (must be <= pub.max_message()).
/// Returns block_size() bytes; empty on oversize input.
Bytes rsa_encrypt(const RsaPublicKey& pub, BytesView msg, Drbg& drbg);

/// Inverse of rsa_encrypt; nullopt on malformed padding.
std::optional<Bytes> rsa_decrypt(const RsaKeyPair& key, BytesView ciphertext);

/// Sign SHA-256(msg) with PKCS#1-v1.5-type-1 padding.
Bytes rsa_sign(const RsaKeyPair& key, BytesView msg);

bool rsa_verify(const RsaPublicKey& pub, BytesView msg, BytesView signature);

/// Miller-Rabin probabilistic primality test (`rounds` random bases).
bool is_probable_prime(const BigInt& n, Drbg& drbg, int rounds = 24);

/// Generate a random prime of exactly `bits` bits (top two bits set).
BigInt generate_prime(std::size_t bits, Drbg& drbg);

}  // namespace whisper::crypto

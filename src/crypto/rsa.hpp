// RSA: key generation, encryption, and signatures.
//
// Used by WHISPER in three places:
//  - each node's keypair wraps the per-layer AES keys of onion paths (WCL);
//  - each private group's keypair signs member passports (PPSS);
//  - leaders sign key-rotation announcements after leader election.
//
// Padding is PKCS#1 v1.5 style (type 2 for encryption, type 1 for
// signatures). Key size is configurable: large simulations default to
// 512-bit keys so that generating a thousand keypairs stays cheap, while
// 1024/2048-bit keys are exercised in tests and micro-benchmarks. The paper
// quotes 1 KB serialized public keys; the wire encoding below can pad to an
// arbitrary width so bandwidth experiments can match that figure.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "common/bytes.hpp"
#include "crypto/bigint.hpp"
#include "crypto/random.hpp"

namespace whisper::crypto {

/// Wire cap on each serialized key component (n, e): 1024 bytes covers
/// 8192-bit moduli, far above anything the stack generates. A forged length
/// prefix cannot allocate (or modexp) beyond it.
inline constexpr std::size_t kMaxKeyComponentBytes = 1024;
/// Cap on a whole serialized public key blob (two components + prefixes,
/// plus fixed-width piggyback padding).
inline constexpr std::size_t kMaxKeyWireBytes = 4096;

struct RsaPublicKey {
  BigInt n;
  BigInt e;

  /// Modulus size in bytes; ciphertexts and signatures have this length.
  std::size_t block_size() const { return (n.bit_length() + 7) / 8; }
  /// Largest message acceptable to encrypt() (padding takes 11 bytes).
  std::size_t max_message() const { return block_size() >= 11 ? block_size() - 11 : 0; }

  Bytes serialize() const;
  static std::optional<RsaPublicKey> deserialize(BytesView data);

  /// Serialize padded with trailing zeros to exactly `width` bytes (to match
  /// the paper's 1 KB-per-public-key accounting). Must fit.
  Bytes serialize_padded(std::size_t width) const;

  /// Stable 64-bit fingerprint of the key (used as a key id).
  std::uint64_t fingerprint() const;

  bool operator==(const RsaPublicKey& o) const { return n == o.n && e == o.e; }

  /// Cached Montgomery context for n, built on first use. Copies of the key
  /// made after the first operation share the context (shared_ptr), so
  /// repeated envelope_seal/onion_build_header calls against the same key
  /// reuse the precomputed constants instead of rebuilding them.
  /// deserialize() always yields a key with a cold cache, so a stale
  /// context can never survive a wire round-trip; code that assigns `n`
  /// directly must also reset `mont_cache`.
  const MontgomeryCtx& mont() const;

  // Lazily-built cache; excluded from serialize()/operator==. Public so the
  // struct stays an aggregate (RsaPublicKey{n, e} is used throughout).
  mutable std::shared_ptr<const MontgomeryCtx> mont_cache{};
};

struct RsaKeyPair {
  RsaPublicKey pub;
  BigInt d;  // private exponent

  // CRT material (n = p*q, dp = d mod p-1, dq = d mod q-1,
  // qinv = q^{-1} mod p). Zero for keys assembled from just (n, e, d);
  // private operations then fall back to one full-size exponentiation.
  BigInt p;
  BigInt q;
  BigInt dp;
  BigInt dq;
  BigInt qinv;

  bool has_crt() const { return !p.is_zero(); }

  /// Cached Montgomery contexts for the CRT primes (see RsaPublicKey::mont
  /// for the caching/invalidation contract). Only valid when has_crt().
  const MontgomeryCtx& mont_p() const;
  const MontgomeryCtx& mont_q() const;

  /// Pre-build all Montgomery caches (modulus and CRT primes) so that
  /// copies of this keypair share them. The keypool warms each pooled key
  /// once; every node borrowing the key then hits warm caches.
  void warm_cache() const;

  mutable std::shared_ptr<const MontgomeryCtx> mont_p_cache{};
  mutable std::shared_ptr<const MontgomeryCtx> mont_q_cache{};

  /// Generate a keypair with the given modulus size from the DRBG. Fills
  /// the CRT fields.
  static RsaKeyPair generate(std::size_t bits, Drbg& drbg);
};

/// The RSA private-key primitive: c^d mod n. Routes through two half-size
/// exponentiations recombined with Garner's formula when CRT material is
/// present (~3-4x faster); bit-identical to the plain path either way.
/// `c` must be < n.
BigInt rsa_private_op(const RsaKeyPair& key, const BigInt& c);

/// PKCS#1-v1.5-type-2 encryption of msg (must be <= pub.max_message()).
/// Returns block_size() bytes; empty on oversize input.
Bytes rsa_encrypt(const RsaPublicKey& pub, BytesView msg, Drbg& drbg);

/// Inverse of rsa_encrypt; nullopt on malformed padding.
std::optional<Bytes> rsa_decrypt(const RsaKeyPair& key, BytesView ciphertext);

/// Sign SHA-256(msg) with PKCS#1-v1.5-type-1 padding.
Bytes rsa_sign(const RsaKeyPair& key, BytesView msg);

bool rsa_verify(const RsaPublicKey& pub, BytesView msg, BytesView signature);

/// Miller-Rabin probabilistic primality test (`rounds` random bases).
bool is_probable_prime(const BigInt& n, Drbg& drbg, int rounds = 24);

/// Generate a random prime of exactly `bits` bits (top two bits set).
BigInt generate_prime(std::size_t bits, Drbg& drbg);

}  // namespace whisper::crypto

// HMAC-SHA256 (RFC 2104) and authenticated body encryption.
//
// AES-CTR alone is malleable: a link attacker could flip plaintext bits
// without detection (the paper's honest-but-curious model excludes this,
// but a production middleware should not). The WCL can therefore run its
// content bodies in encrypt-then-MAC mode: AES-CTR + HMAC-SHA256 under
// keys derived from the onion content key.
#pragma once

#include <optional>

#include "common/bytes.hpp"
#include "crypto/aes128.hpp"
#include "crypto/sha256.hpp"

namespace whisper::crypto {

/// HMAC-SHA256 over `data` with an arbitrary-length key.
Digest256 hmac_sha256(BytesView key, BytesView data);

/// Encrypt-then-MAC: AES-CTR(key, iv) over `plaintext`, then HMAC-SHA256
/// (with a derived MAC key) over the ciphertext, appended (32 bytes).
Bytes seal_authenticated(const AesKey& key, const AesBlock& iv, BytesView plaintext);

/// Verify and decrypt; nullopt when the tag does not match.
std::optional<Bytes> open_authenticated(const AesKey& key, const AesBlock& iv,
                                        BytesView sealed);

}  // namespace whisper::crypto

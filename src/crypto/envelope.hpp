// Hybrid encryption envelope: an RSA-wrapped AES key plus AES-CTR payload.
//
// RSA blocks are too small to carry an onion layer (which itself contains
// the next, already-encrypted layer), so each layer is sealed hybridly:
//   envelope = RSA_pk(aes_key || iv) || AES-CTR_{aes_key,iv}(payload)
#pragma once

#include <optional>

#include "common/bytes.hpp"
#include "crypto/aes128.hpp"
#include "crypto/rsa.hpp"

namespace whisper::crypto {

/// Seal `payload` to the holder of `pub`'s private key.
Bytes envelope_seal(const RsaPublicKey& pub, BytesView payload, Drbg& drbg);

/// Open an envelope sealed to `key`. nullopt if malformed.
std::optional<Bytes> envelope_open(const RsaKeyPair& key, BytesView envelope);

/// Size of envelope_seal output for a payload of the given size.
std::size_t envelope_size(const RsaPublicKey& pub, std::size_t payload_size);

}  // namespace whisper::crypto

#include "crypto/envelope.hpp"

#include <cstring>

namespace whisper::crypto {

Bytes envelope_seal(const RsaPublicKey& pub, BytesView payload, Drbg& drbg) {
  AesKey key;
  AesBlock iv;
  drbg.fill(key.data(), key.size());
  drbg.fill(iv.data(), iv.size());

  Bytes wrapped_input(32);
  std::memcpy(wrapped_input.data(), key.data(), 16);
  std::memcpy(wrapped_input.data() + 16, iv.data(), 16);
  Bytes rsa_block = rsa_encrypt(pub, wrapped_input, drbg);
  if (rsa_block.empty()) return {};

  Bytes body = aes128_ctr(key, iv, payload);
  Bytes out;
  out.reserve(rsa_block.size() + body.size());
  out.insert(out.end(), rsa_block.begin(), rsa_block.end());
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

std::optional<Bytes> envelope_open(const RsaKeyPair& key, BytesView envelope) {
  const std::size_t k = key.pub.block_size();
  if (envelope.size() < k) return std::nullopt;
  auto wrapped = rsa_decrypt(key, envelope.subspan(0, k));
  if (!wrapped || wrapped->size() != 32) return std::nullopt;
  AesKey aes_key;
  AesBlock iv;
  std::memcpy(aes_key.data(), wrapped->data(), 16);
  std::memcpy(iv.data(), wrapped->data() + 16, 16);
  return aes128_ctr(aes_key, iv, envelope.subspan(k));
}

std::size_t envelope_size(const RsaPublicKey& pub, std::size_t payload_size) {
  return pub.block_size() + payload_size;
}

}  // namespace whisper::crypto

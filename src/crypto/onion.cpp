#include "crypto/onion.hpp"

#include <cassert>
#include <cstring>

#include "common/serialize.hpp"

namespace whisper::crypto {

Bytes OnionPacket::serialize() const {
  Writer w;
  w.bytes(header);
  w.bytes(body);
  return std::move(w).take();
}

std::optional<OnionPacket> OnionPacket::deserialize(BytesView data) {
  Reader r(data);
  OnionPacket p;
  p.header = r.bytes(kMaxOnionHeader);
  p.body = r.bytes(kMaxOnionBody);
  if (!r.expect_done()) return std::nullopt;
  return p;
}

OnionKeys onion_fresh_keys(Drbg& drbg) {
  OnionKeys keys;
  drbg.fill(keys.k.data(), keys.k.size());
  drbg.fill(keys.iv.data(), keys.iv.size());
  return keys;
}

Bytes onion_crypt_body(const OnionKeys& keys, BytesView data) {
  return aes128_ctr(keys.k, keys.iv, data);
}

Bytes onion_build_header(std::span<const OnionHop> path, const OnionKeys& keys, Drbg& drbg) {
  assert(!path.empty());

  // Innermost layer, for the destination: (⊥, k, iv).
  const OnionHop& dest = path.back();
  Bytes layer;
  {
    Writer w;
    w.node_id(kNilNode);
    w.raw(BytesView(keys.k.data(), keys.k.size()));
    w.raw(BytesView(keys.iv.data(), keys.iv.size()));
    layer = envelope_seal(dest.key, w.data(), drbg);
  }

  // Wrap outwards: each mix learns only the identity (and address hint) of
  // its successor.
  for (std::size_t i = path.size() - 1; i-- > 0;) {
    Writer w;
    w.node_id(path[i + 1].id);
    w.endpoint(path[i + 1].addr);
    w.raw(layer);
    layer = envelope_seal(path[i].key, w.data(), drbg);
  }
  return layer;
}

OnionPacket onion_build(std::span<const OnionHop> path, BytesView content, Drbg& drbg) {
  const OnionKeys keys = onion_fresh_keys(drbg);
  OnionPacket packet;
  packet.body = onion_crypt_body(keys, content);
  packet.header = onion_build_header(path, keys, drbg);
  return packet;
}

std::optional<OnionPeel> onion_peel_header(const RsaKeyPair& key, const OnionPacket& packet) {
  auto plain = envelope_open(key, packet.header);
  if (!plain) return std::nullopt;
  Reader r(*plain);
  const NodeId next = r.node_id();
  if (!r.ok()) return std::nullopt;

  OnionPeel result;
  if (next == kNilNode) {
    // Destination: remainder is (k, iv).
    if (r.remaining() != 32) return std::nullopt;
    Bytes kiv = r.rest();
    std::memcpy(result.keys.k.data(), kiv.data(), 16);
    std::memcpy(result.keys.iv.data(), kiv.data() + 16, 16);
    result.is_destination = true;
  } else {
    result.next_hop = next;
    result.next_addr = r.endpoint();
    if (!r.ok()) return std::nullopt;
    result.next_packet.header = r.rest();
    result.next_packet.body = packet.body;
  }
  return result;
}

std::optional<OnionPeel> onion_peel(const RsaKeyPair& key, const OnionPacket& packet) {
  auto result = onion_peel_header(key, packet);
  if (result && result->is_destination) {
    result->content = onion_crypt_body(result->keys, packet.body);
  }
  return result;
}

}  // namespace whisper::crypto

#include "crypto/hmac.hpp"

#include <cstring>

namespace whisper::crypto {

Digest256 hmac_sha256(BytesView key, BytesView data) {
  std::uint8_t block[64] = {};
  if (key.size() > 64) {
    const Digest256 hashed = Sha256::hash(key);
    std::memcpy(block, hashed.data(), hashed.size());
  } else {
    std::memcpy(block, key.data(), key.size());
  }

  std::uint8_t ipad[64], opad[64];
  for (int i = 0; i < 64; ++i) {
    ipad[i] = static_cast<std::uint8_t>(block[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(block[i] ^ 0x5c);
  }

  Sha256 inner;
  inner.update(ipad, 64);
  inner.update(data);
  const Digest256 inner_digest = inner.finish();

  Sha256 outer;
  outer.update(opad, 64);
  outer.update(inner_digest.data(), inner_digest.size());
  return outer.finish();
}

namespace {

// Derive the MAC key from the encryption key so the onion header still only
// carries 32 bytes of key material.
Bytes derive_mac_key(const AesKey& key, const AesBlock& iv) {
  Bytes in;
  in.reserve(16 + 16 + 4);
  in.insert(in.end(), key.begin(), key.end());
  in.insert(in.end(), iv.begin(), iv.end());
  const char tag[4] = {'m', 'a', 'c', '1'};
  in.insert(in.end(), tag, tag + 4);
  const Digest256 d = Sha256::hash(in);
  return Bytes(d.begin(), d.end());
}

}  // namespace

Bytes seal_authenticated(const AesKey& key, const AesBlock& iv, BytesView plaintext) {
  Bytes out = aes128_ctr(key, iv, plaintext);
  const Digest256 tag = hmac_sha256(derive_mac_key(key, iv), out);
  out.insert(out.end(), tag.begin(), tag.end());
  return out;
}

std::optional<Bytes> open_authenticated(const AesKey& key, const AesBlock& iv,
                                        BytesView sealed) {
  if (sealed.size() < 32) return std::nullopt;
  const BytesView ciphertext = sealed.subspan(0, sealed.size() - 32);
  const BytesView tag = sealed.subspan(sealed.size() - 32);
  const Digest256 expected = hmac_sha256(derive_mac_key(key, iv), ciphertext);
  // Constant-time comparison.
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < 32; ++i) diff |= static_cast<std::uint8_t>(expected[i] ^ tag[i]);
  if (diff != 0) return std::nullopt;
  return aes128_ctr(key, iv, ciphertext);
}

}  // namespace whisper::crypto

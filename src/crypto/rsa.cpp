#include "crypto/rsa.hpp"

#include <array>

#include "common/serialize.hpp"

namespace whisper::crypto {

namespace {

// Small primes for fast trial division before Miller-Rabin.
constexpr std::uint64_t kSmallPrimes[] = {
    3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,  47,  53,  59,  61,
    67,  71,  73,  79,  83,  89,  97,  101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
    151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223, 227, 229, 233, 239,
    241, 251, 257, 263, 269, 271, 277, 281, 283, 293, 307, 311, 313, 317, 331, 337, 347};

}  // namespace

bool is_probable_prime(const BigInt& n, Drbg& drbg, int rounds) {
  if (n < BigInt{2}) return false;
  if (n == BigInt{2} || n == BigInt{3}) return true;
  if (!n.is_odd()) return false;
  for (std::uint64_t p : kSmallPrimes) {
    if (n == BigInt{p}) return true;
    if (n.mod_u64(p) == 0) return false;
  }

  // Write n-1 = d * 2^r with d odd.
  const BigInt n_minus_1 = n - BigInt{1};
  BigInt d = n_minus_1;
  std::size_t r = 0;
  while (!d.is_odd()) {
    d = d >> 1;
    ++r;
  }

  const std::size_t bits = n.bit_length();
  for (int round = 0; round < rounds; ++round) {
    // Random base a in [2, n-2].
    BigInt a;
    do {
      Bytes raw = drbg.bytes((bits + 7) / 8);
      a = BigInt::from_bytes(raw) % n;
    } while (a < BigInt{2} || a > n - BigInt{2});

    BigInt x = a.modexp(d, n);
    if (x.is_one() || x == n_minus_1) continue;
    bool composite = true;
    BigInt sq;
    for (std::size_t i = 0; i + 1 < r; ++i) {
      BigInt::mul_into(x, x, sq);
      sq.mod_assign(n);
      std::swap(x, sq);
      if (x == n_minus_1) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

BigInt generate_prime(std::size_t bits, Drbg& drbg) {
  for (;;) {
    Bytes raw = drbg.bytes((bits + 7) / 8);
    // Force exact bit length with the top two bits set (so products of two
    // such primes have exactly 2*bits bits), and force odd.
    const std::size_t top_bit = (bits - 1) % 8;
    raw[0] |= static_cast<std::uint8_t>(1u << top_bit);
    if (top_bit > 0)
      raw[0] |= static_cast<std::uint8_t>(1u << (top_bit - 1));
    else if (raw.size() > 1)
      raw[1] |= 0x80;
    // Clear any bits above the requested length.
    raw[0] &= static_cast<std::uint8_t>((2u << top_bit) - 1);
    raw.back() |= 1;
    BigInt candidate = BigInt::from_bytes(raw);
    if (is_probable_prime(candidate, drbg)) return candidate;
  }
}

RsaKeyPair RsaKeyPair::generate(std::size_t bits, Drbg& drbg) {
  const BigInt e{65537};
  for (;;) {
    const BigInt p = generate_prime(bits / 2, drbg);
    const BigInt q = generate_prime(bits - bits / 2, drbg);
    if (p == q) continue;
    const BigInt n = p * q;
    const BigInt phi = (p - BigInt{1}) * (q - BigInt{1});
    if (BigInt::gcd(e, phi) != BigInt{1}) continue;
    const BigInt d = e.modinv(phi);
    if (d.is_zero()) continue;
    RsaKeyPair key{RsaPublicKey{n, e}, d};
    key.p = p;
    key.q = q;
    key.dp = d % (p - BigInt{1});
    key.dq = d % (q - BigInt{1});
    key.qinv = q.modinv(p);
    return key;
  }
}

const MontgomeryCtx& RsaPublicKey::mont() const {
  if (!mont_cache) mont_cache = std::make_shared<const MontgomeryCtx>(n);
  return *mont_cache;
}

const MontgomeryCtx& RsaKeyPair::mont_p() const {
  if (!mont_p_cache) mont_p_cache = std::make_shared<const MontgomeryCtx>(p);
  return *mont_p_cache;
}

const MontgomeryCtx& RsaKeyPair::mont_q() const {
  if (!mont_q_cache) mont_q_cache = std::make_shared<const MontgomeryCtx>(q);
  return *mont_q_cache;
}

void RsaKeyPair::warm_cache() const {
  pub.mont();
  if (has_crt()) {
    mont_p();
    mont_q();
  }
}

BigInt rsa_private_op(const RsaKeyPair& key, const BigInt& c) {
  if (!key.has_crt()) return c.modexp(key.d, key.pub.n);
  // Two half-size exponentiations (modexp reduces the base internally)...
  const BigInt m1 = key.mont_p().modexp(c, key.dp);
  const BigInt m2 = key.mont_q().modexp(c, key.dq);
  // ...recombined with Garner: m = m2 + q * (qinv * (m1 - m2) mod p).
  BigInt diff = (m1 + key.p) - m2 % key.p;  // keep the subtraction non-negative
  diff.mod_assign(key.p);
  const BigInt h = (key.qinv * diff) % key.p;
  return m2 + h * key.q;
}

Bytes RsaPublicKey::serialize() const {
  Writer w;
  w.bytes(n.to_bytes());
  w.bytes(e.to_bytes());
  return std::move(w).take();
}

std::optional<RsaPublicKey> RsaPublicKey::deserialize(BytesView data) {
  Reader r(data);
  Bytes nb = r.bytes(kMaxKeyComponentBytes);
  Bytes eb = r.bytes(kMaxKeyComponentBytes);
  if (!r.ok()) return std::nullopt;
  // Trailing bytes must be all-zero padding: serialize_padded() pads keys to
  // a fixed width for the key-sampling piggyback, and that padding is the
  // only tail a well-formed encoding can carry.
  for (const std::uint8_t b : r.rest()) {
    if (b != 0) return std::nullopt;
  }
  RsaPublicKey key{BigInt::from_bytes(nb), BigInt::from_bytes(eb)};
  if (key.n.is_zero() || key.e.is_zero()) return std::nullopt;
  return key;
}

Bytes RsaPublicKey::serialize_padded(std::size_t width) const {
  Bytes out = serialize();
  if (out.size() < width) out.resize(width, 0);
  return out;
}

std::uint64_t RsaPublicKey::fingerprint() const { return fingerprint64(serialize()); }

Bytes rsa_encrypt(const RsaPublicKey& pub, BytesView msg, Drbg& drbg) {
  const std::size_t k = pub.block_size();
  if (msg.size() > pub.max_message()) return {};
  // 0x00 0x02 PS(nonzero random, >=8 bytes) 0x00 msg
  Bytes block(k, 0);
  block[1] = 0x02;
  const std::size_t ps_len = k - 3 - msg.size();
  // Batch-fill the PS region, then resample only the (rare) zero bytes:
  // PKCS#1 requires every padding byte to be nonzero.
  drbg.fill(block.data() + 2, ps_len);
  for (std::size_t i = 0; i < ps_len; ++i) {
    while (block[2 + i] == 0) drbg.fill(&block[2 + i], 1);
  }
  block[2 + ps_len] = 0x00;
  std::copy(msg.begin(), msg.end(), block.begin() + static_cast<std::ptrdiff_t>(3 + ps_len));

  const BigInt m = BigInt::from_bytes(block);
  const BigInt c = pub.mont().modexp(m, pub.e);
  return c.to_bytes_padded(k);
}

std::optional<Bytes> rsa_decrypt(const RsaKeyPair& key, BytesView ciphertext) {
  const std::size_t k = key.pub.block_size();
  if (ciphertext.size() != k) return std::nullopt;
  const BigInt c = BigInt::from_bytes(ciphertext);
  if (c >= key.pub.n) return std::nullopt;
  const BigInt m = rsa_private_op(key, c);
  const Bytes block = m.to_bytes_padded(k);
  if (block[0] != 0x00 || block[1] != 0x02) return std::nullopt;
  std::size_t i = 2;
  while (i < k && block[i] != 0x00) ++i;
  if (i < 10 || i >= k) return std::nullopt;  // PS must be >= 8 bytes
  return Bytes(block.begin() + static_cast<std::ptrdiff_t>(i + 1), block.end());
}

Bytes rsa_sign(const RsaKeyPair& key, BytesView msg) {
  const std::size_t k = key.pub.block_size();
  const Digest256 digest = Sha256::hash(msg);
  // 0x00 0x01 0xFF..0xFF 0x00 digest
  Bytes block(k, 0xff);
  block[0] = 0x00;
  block[1] = 0x01;
  block[k - 33] = 0x00;
  std::copy(digest.begin(), digest.end(), block.begin() + static_cast<std::ptrdiff_t>(k - 32));
  const BigInt m = BigInt::from_bytes(block);
  const BigInt s = rsa_private_op(key, m);
  return s.to_bytes_padded(k);
}

bool rsa_verify(const RsaPublicKey& pub, BytesView msg, BytesView signature) {
  const std::size_t k = pub.block_size();
  if (signature.size() != k || k < 35) return false;
  const BigInt s = BigInt::from_bytes(signature);
  if (s >= pub.n) return false;
  const BigInt m = pub.mont().modexp(s, pub.e);
  const Bytes block = m.to_bytes_padded(k);
  if (block[0] != 0x00 || block[1] != 0x01) return false;
  for (std::size_t i = 2; i < k - 33; ++i) {
    if (block[i] != 0xff) return false;
  }
  if (block[k - 33] != 0x00) return false;
  const Digest256 digest = Sha256::hash(msg);
  return std::equal(digest.begin(), digest.end(),
                    block.begin() + static_cast<std::ptrdiff_t>(k - 32));
}

}  // namespace whisper::crypto

// Deterministic random byte generator for key material.
//
// The simulator must be reproducible, so key material is derived from the
// seeded simulation RNG through a SHA-256-based extract-expand construction
// (a simplified HKDF). In a production deployment this would be replaced by
// the OS entropy source; the interface is the only contact point.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "crypto/sha256.hpp"

namespace whisper::crypto {

/// Deterministic byte stream extracted from a seed via SHA-256 in counter
/// mode: block_i = SHA256(seed || i).
class Drbg {
 public:
  explicit Drbg(std::uint64_t seed);
  /// Seed from a general-purpose Rng stream (forks the stream).
  explicit Drbg(Rng& rng);

  void fill(std::uint8_t* out, std::size_t n);
  Bytes bytes(std::size_t n);
  std::uint64_t u64();
  /// Uniform below bound (rejection sampled).
  std::uint64_t below(std::uint64_t bound);

 private:
  void refill();

  std::uint8_t seed_[32];
  std::uint64_t counter_ = 0;
  Digest256 block_{};
  std::size_t pos_ = 32;  // force refill on first use
};

}  // namespace whisper::crypto

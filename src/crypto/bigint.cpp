#include "crypto/bigint.hpp"

#include <algorithm>
#include <cassert>

namespace whisper::crypto {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

BigInt::BigInt(u64 v) {
  if (v) limbs_.push_back(v);
}

void BigInt::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigInt BigInt::from_limbs(std::vector<u64> limbs) {
  BigInt r;
  r.limbs_ = std::move(limbs);
  r.trim();
  return r;
}

BigInt BigInt::from_bytes(BytesView be) {
  BigInt r;
  r.limbs_.assign((be.size() + 7) / 8, 0);
  for (std::size_t i = 0; i < be.size(); ++i) {
    // be[i] is the (size-1-i)-th byte from the least significant end.
    const std::size_t byte_pos = be.size() - 1 - i;
    r.limbs_[byte_pos / 8] |= static_cast<u64>(be[i]) << (8 * (byte_pos % 8));
  }
  r.trim();
  return r;
}

Bytes BigInt::to_bytes() const {
  if (limbs_.empty()) return {0};
  const std::size_t bytes = (bit_length() + 7) / 8;
  return to_bytes_padded(bytes);
}

Bytes BigInt::to_bytes_padded(std::size_t width) const {
  Bytes out(width, 0);
  for (std::size_t byte_pos = 0; byte_pos < width; ++byte_pos) {
    const std::size_t limb = byte_pos / 8;
    if (limb >= limbs_.size()) break;
    out[width - 1 - byte_pos] = static_cast<std::uint8_t>(limbs_[limb] >> (8 * (byte_pos % 8)));
  }
  // Verify the value fits (higher bytes must be zero).
  assert(bit_length() <= width * 8);
  return out;
}

BigInt BigInt::from_hex(const std::string& hex) {
  std::string h = hex;
  if (h.size() % 2) h.insert(h.begin(), '0');
  return from_bytes(whisper::from_hex(h));
}

std::string BigInt::to_hex() const {
  Bytes b = to_bytes();
  std::string h = whisper::to_hex(b);
  // Strip leading zero nibble pairs but keep at least "0".
  std::size_t i = 0;
  while (i + 1 < h.size() && h[i] == '0') ++i;
  return h.substr(i);
}

std::size_t BigInt::bit_length() const {
  if (limbs_.empty()) return 0;
  const u64 top = limbs_.back();
  return (limbs_.size() - 1) * 64 + (64 - static_cast<std::size_t>(__builtin_clzll(top)));
}

bool BigInt::bit(std::size_t i) const {
  const std::size_t limb = i / 64;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 64)) & 1;
}

int BigInt::compare(const BigInt& o) const {
  if (limbs_.size() != o.limbs_.size()) return limbs_.size() < o.limbs_.size() ? -1 : 1;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != o.limbs_[i]) return limbs_[i] < o.limbs_[i] ? -1 : 1;
  }
  return 0;
}

BigInt BigInt::operator+(const BigInt& o) const {
  std::vector<u64> out(std::max(limbs_.size(), o.limbs_.size()) + 1, 0);
  u128 carry = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    u128 sum = carry;
    if (i < limbs_.size()) sum += limbs_[i];
    if (i < o.limbs_.size()) sum += o.limbs_[i];
    out[i] = static_cast<u64>(sum);
    carry = sum >> 64;
  }
  return from_limbs(std::move(out));
}

BigInt BigInt::operator-(const BigInt& o) const {
  assert(compare(o) >= 0);
  std::vector<u64> out(limbs_.size(), 0);
  u64 borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const u64 rhs = i < o.limbs_.size() ? o.limbs_[i] : 0;
    const u64 lhs = limbs_[i];
    u64 diff = lhs - rhs;
    const u64 b1 = lhs < rhs ? 1 : 0;
    const u64 diff2 = diff - borrow;
    const u64 b2 = diff < borrow ? 1 : 0;
    out[i] = diff2;
    borrow = b1 | b2;
  }
  assert(borrow == 0);
  return from_limbs(std::move(out));
}

BigInt BigInt::operator*(const BigInt& o) const {
  BigInt out;
  mul_into(*this, o, out);
  return out;
}

void BigInt::mul_into(const BigInt& a, const BigInt& b, BigInt& out) {
  assert(&out != &a && &out != &b);
  if (a.limbs_.empty() || b.limbs_.empty()) {
    out.limbs_.clear();
    return;
  }
  out.limbs_.assign(a.limbs_.size() + b.limbs_.size(), 0);
  std::vector<u64>& prod = out.limbs_;
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    u128 carry = 0;
    const u64 ai = a.limbs_[i];
    for (std::size_t j = 0; j < b.limbs_.size(); ++j) {
      u128 cur = static_cast<u128>(ai) * b.limbs_[j] + prod[i + j] + carry;
      prod[i + j] = static_cast<u64>(cur);
      carry = cur >> 64;
    }
    std::size_t k = i + b.limbs_.size();
    while (carry) {
      u128 cur = static_cast<u128>(prod[k]) + carry;
      prod[k] = static_cast<u64>(cur);
      carry = cur >> 64;
      ++k;
    }
  }
  out.trim();
}

void BigInt::mod_assign(const BigInt& m) {
  if (compare(m) < 0) return;
  *this = divmod(m).second;
}

BigInt BigInt::operator<<(std::size_t bits) const {
  if (limbs_.empty()) return {};
  const std::size_t limb_shift = bits / 64;
  const std::size_t bit_shift = bits % 64;
  std::vector<u64> out(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    out[i + limb_shift] |= bit_shift ? (limbs_[i] << bit_shift) : limbs_[i];
    if (bit_shift) out[i + limb_shift + 1] |= limbs_[i] >> (64 - bit_shift);
  }
  return from_limbs(std::move(out));
}

BigInt BigInt::operator>>(std::size_t bits) const {
  const std::size_t limb_shift = bits / 64;
  if (limb_shift >= limbs_.size()) return {};
  const std::size_t bit_shift = bits % 64;
  std::vector<u64> out(limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = bit_shift ? (limbs_[i + limb_shift] >> bit_shift) : limbs_[i + limb_shift];
    if (bit_shift && i + limb_shift + 1 < limbs_.size())
      out[i] |= limbs_[i + limb_shift + 1] << (64 - bit_shift);
  }
  return from_limbs(std::move(out));
}

// Knuth TAOCP vol.2 algorithm D, base 2^64.
std::pair<BigInt, BigInt> BigInt::divmod(const BigInt& divisor) const {
  assert(!divisor.is_zero());
  if (compare(divisor) < 0) return {BigInt{}, *this};

  // Single-limb divisor fast path.
  if (divisor.limbs_.size() == 1) {
    const u64 d = divisor.limbs_[0];
    std::vector<u64> q(limbs_.size(), 0);
    u128 rem = 0;
    for (std::size_t i = limbs_.size(); i-- > 0;) {
      u128 cur = (rem << 64) | limbs_[i];
      q[i] = static_cast<u64>(cur / d);
      rem = cur % d;
    }
    return {from_limbs(std::move(q)), BigInt{static_cast<u64>(rem)}};
  }

  // Normalize: shift so divisor's top limb has its high bit set.
  const int shift = __builtin_clzll(divisor.limbs_.back());
  const BigInt u_n = *this << static_cast<std::size_t>(shift);
  const BigInt v_n = divisor << static_cast<std::size_t>(shift);
  const std::size_t n = v_n.limbs_.size();
  const std::size_t m = u_n.limbs_.size() >= n ? u_n.limbs_.size() - n : 0;

  std::vector<u64> u = u_n.limbs_;
  u.resize(u_n.limbs_.size() + 1, 0);  // u[m+n] extra limb
  const std::vector<u64>& v = v_n.limbs_;
  std::vector<u64> q(m + 1, 0);

  for (std::size_t j = m + 1; j-- > 0;) {
    // Estimate q_hat = (u[j+n]*B + u[j+n-1]) / v[n-1].
    u128 num = (static_cast<u128>(u[j + n]) << 64) | u[j + n - 1];
    u128 q_hat = num / v[n - 1];
    u128 r_hat = num % v[n - 1];
    const u128 kBase = static_cast<u128>(1) << 64;
    while (q_hat >= kBase ||
           q_hat * v[n - 2] > ((r_hat << 64) | u[j + n - 2])) {
      q_hat -= 1;
      r_hat += v[n - 1];
      if (r_hat >= kBase) break;
    }

    // Multiply-and-subtract: u[j..j+n] -= q_hat * v.
    u128 borrow = 0;
    u128 carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      u128 prod = q_hat * v[i] + carry;
      carry = prod >> 64;
      const u64 plo = static_cast<u64>(prod);
      const u64 ui = u[j + i];
      u64 diff = ui - plo;
      u64 b = ui < plo ? 1 : 0;
      const u64 diff2 = diff - static_cast<u64>(borrow);
      b |= diff < static_cast<u64>(borrow) ? 1 : 0;
      u[j + i] = diff2;
      borrow = b;
    }
    {
      // carry <= B-1 and borrow <= 1, so sub can equal B: do this in 128 bits.
      const u128 sub = carry + borrow;
      const u128 top = u[j + n];
      if (top >= sub) {
        u[j + n] = static_cast<u64>(top - sub);
        borrow = 0;
      } else {
        u[j + n] = static_cast<u64>(top + (static_cast<u128>(1) << 64) - sub);
        borrow = 1;
      }
    }

    if (borrow) {
      // q_hat was one too large; add back.
      q_hat -= 1;
      u128 c = 0;
      for (std::size_t i = 0; i < n; ++i) {
        u128 sum = static_cast<u128>(u[j + i]) + v[i] + c;
        u[j + i] = static_cast<u64>(sum);
        c = sum >> 64;
      }
      u[j + n] += static_cast<u64>(c);
    }
    q[j] = static_cast<u64>(q_hat);
  }

  u.resize(n);
  BigInt rem = from_limbs(std::move(u)) >> static_cast<std::size_t>(shift);
  return {from_limbs(std::move(q)), std::move(rem)};
}

u64 BigInt::mod_u64(u64 m) const {
  assert(m != 0);
  u128 rem = 0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    rem = ((rem << 64) | limbs_[i]) % m;
  }
  return static_cast<u64>(rem);
}

MontgomeryCtx::MontgomeryCtx(const BigInt& modulus) : modulus_(modulus) {
  assert(modulus.is_odd() && !modulus.is_zero());
  n_ = modulus.limbs_;
  const std::size_t k = n_.size();
  // n' = -n[0]^{-1} mod 2^64, via Newton iteration.
  u64 inv = n_[0];  // correct to 3 bits for odd n[0]
  for (int i = 0; i < 5; ++i) inv *= 2 - n_[0] * inv;
  n_prime_ = ~inv + 1;  // -inv
  // R^2 mod n (one full-width division — the expensive precompute).
  BigInt r = (BigInt{1} << (64 * k)) % modulus;
  BigInt r2b;
  BigInt::mul_into(r, r, r2b);
  r2b.mod_assign(modulus);
  r2_ = r2b.limbs_;
  r2_.resize(k, 0);
  // Montgomery form of 1: mul(1, R^2) = R mod n.
  one_mont_.assign(k, 0);
  std::vector<u64> one(k, 0);
  one[0] = 1;
  scratch_.assign(k + 2, 0);
  mul(one.data(), r2_.data(), one_mont_.data());
}

void MontgomeryCtx::mul(const u64* a, const u64* b, u64* out) const {
  const std::size_t k = n_.size();
  std::vector<u64>& t = scratch_;
  std::fill(t.begin(), t.end(), 0);
  for (std::size_t i = 0; i < k; ++i) {
    // t += a[i] * b
    u128 carry = 0;
    for (std::size_t j = 0; j < k; ++j) {
      u128 cur = static_cast<u128>(a[i]) * b[j] + t[j] + carry;
      t[j] = static_cast<u64>(cur);
      carry = cur >> 64;
    }
    u128 cur = static_cast<u128>(t[k]) + carry;
    t[k] = static_cast<u64>(cur);
    t[k + 1] = static_cast<u64>(cur >> 64);

    // m = t[0] * n' mod 2^64; t += m * n; t >>= 64
    const u64 m = t[0] * n_prime_;
    carry = 0;
    {
      u128 c0 = static_cast<u128>(m) * n_[0] + t[0];
      carry = c0 >> 64;
    }
    for (std::size_t j = 1; j < k; ++j) {
      u128 c = static_cast<u128>(m) * n_[j] + t[j] + carry;
      t[j - 1] = static_cast<u64>(c);
      carry = c >> 64;
    }
    u128 c = static_cast<u128>(t[k]) + carry;
    t[k - 1] = static_cast<u64>(c);
    t[k] = t[k + 1] + static_cast<u64>(c >> 64);
    t[k + 1] = 0;
  }
  // Conditional subtraction if t >= n.
  bool ge = t[k] != 0;
  if (!ge) {
    ge = true;
    for (std::size_t i = k; i-- > 0;) {
      if (t[i] != n_[i]) {
        ge = t[i] > n_[i];
        break;
      }
    }
  }
  if (ge) {
    u64 borrow = 0;
    for (std::size_t i = 0; i < k; ++i) {
      const u64 lhs = t[i];
      u64 diff = lhs - n_[i];
      u64 b2 = lhs < n_[i] ? 1 : 0;
      const u64 diff2 = diff - borrow;
      b2 |= diff < borrow ? 1 : 0;
      out[i] = diff2;
      borrow = b2;
    }
  } else {
    for (std::size_t i = 0; i < k; ++i) out[i] = t[i];
  }
}

BigInt MontgomeryCtx::modexp(const BigInt& base, const BigInt& exp) const {
  if (modulus_.is_one()) return {};
  const std::size_t k = n_.size();

  // base (reduced) in Montgomery form.
  BigInt b = base;
  b.mod_assign(modulus_);
  std::vector<u64> x(k, 0);
  {
    std::vector<u64> breg = b.limbs_;
    breg.resize(k, 0);
    mul(breg.data(), r2_.data(), x.data());  // x = base * R mod n
  }

  std::vector<u64> acc = one_mont_;  // acc = 1 in Montgomery form
  std::vector<u64> tmp(k, 0);
  const std::size_t bits = exp.bit_length();

  if (bits <= 20) {
    // Short exponents (RSA public e = 65537): plain left-to-right binary;
    // a window table's 14 extra multiplies would outweigh the savings.
    for (std::size_t i = bits; i-- > 0;) {
      mul(acc.data(), acc.data(), tmp.data());
      std::swap(acc, tmp);
      if (exp.bit(i)) {
        mul(acc.data(), x.data(), tmp.data());
        std::swap(acc, tmp);
      }
    }
  } else {
    // Fixed 4-bit windows: table[w] = base^w in Montgomery form.
    std::vector<u64> table(16 * k, 0);
    std::copy(one_mont_.begin(), one_mont_.end(), table.begin());
    std::copy(x.begin(), x.end(), table.begin() + static_cast<std::ptrdiff_t>(k));
    for (std::size_t w = 2; w < 16; ++w) {
      mul(&table[(w - 1) * k], x.data(), &table[w * k]);
    }
    const std::size_t windows = (bits + 3) / 4;
    for (std::size_t w = windows; w-- > 0;) {
      if (w + 1 != windows) {
        for (int s = 0; s < 4; ++s) {
          mul(acc.data(), acc.data(), tmp.data());
          std::swap(acc, tmp);
        }
      }
      unsigned win = 0;
      for (int bit_idx = 3; bit_idx >= 0; --bit_idx) {
        win = (win << 1) | static_cast<unsigned>(exp.bit(4 * w + static_cast<std::size_t>(bit_idx)));
      }
      if (win != 0) {
        mul(acc.data(), &table[win * k], tmp.data());
        std::swap(acc, tmp);
      }
    }
  }

  // Convert out of Montgomery form: acc * 1 * R^{-1}.
  std::vector<u64> one(k, 0);
  one[0] = 1;
  mul(acc.data(), one.data(), tmp.data());
  return BigInt::from_limbs(std::move(tmp));
}

BigInt BigInt::modexp(const BigInt& exp, const BigInt& m) const {
  assert(m.is_odd() && !m.is_zero());
  if (m.is_one()) return {};
  return MontgomeryCtx(m).modexp(*this, exp);
}

BigInt BigInt::modinv(const BigInt& m) const {
  // Extended Euclid on (a, m) with bookkeeping in the integers; we track
  // coefficients as (sign, magnitude) pairs since BigInt is unsigned.
  if (m.is_zero() || is_zero()) return {};
  BigInt a = *this % m;
  if (a.is_zero()) return {};

  BigInt r0 = m, r1 = a;
  // t0 = 0, t1 = 1; signs: +1 / -1
  BigInt t0{}, t1{1};
  int s0 = 1, s1 = 1;

  while (!r1.is_zero()) {
    auto [q, r2] = r0.divmod(r1);
    // t2 = t0 - q * t1 (signed arithmetic on magnitudes)
    BigInt qt = q * t1;
    BigInt t2;
    int s2;
    if (s0 == s1) {
      if (t0 >= qt) {
        t2 = t0 - qt;
        s2 = s0;
      } else {
        t2 = qt - t0;
        s2 = -s1;
      }
    } else {
      t2 = t0 + qt;
      s2 = s0;
    }
    r0 = std::move(r1);
    r1 = std::move(r2);
    t0 = std::move(t1);
    s0 = s1;
    t1 = std::move(t2);
    s1 = s2;
  }

  if (!r0.is_one()) return {};  // not coprime
  if (s0 < 0) return m - (t0 % m);
  return t0 % m;
}

BigInt BigInt::gcd(BigInt a, BigInt b) {
  while (!b.is_zero()) {
    BigInt r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

}  // namespace whisper::crypto

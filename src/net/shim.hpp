// Deterministic NAT + impairment interposer over any net::Stack
// (DESIGN.md §16).
//
// ShimStack sits between the protocol stack and the real transport so live
// processes experience the paper's network — NAT devices in front of nodes
// and a lossy, slow internet between them — without root or kernel netem:
//
//   - Per attached endpoint, a NAT profile enforces the *same* rule engine
//     the simulator fabric uses (nat/rules.hpp: full cone / restricted cone
//     / port-restricted cone / symmetric, RFC 4787/5382 lease semantics).
//     Each NAT mapping is a real bound UDP socket on the device's own
//     loopback IP (all of 127/8 is host-local), so peers genuinely observe
//     the mapped external source address and hole punching succeeds or
//     fails by the device's actual filtering — not by convention.
//   - Seeded netem-style egress impairments: loss, base delay ± uniform
//     jitter, reorder holds, duplication and an egress rate cap. Drop/
//     duplicate/delay decisions are a pure function of (seed, per-node send
//     index), so two same-seed runs sample identical schedules even though
//     packets land at wall-clock times (the determinism model: decisions
//     are deterministic, arrival times are not).
//   - Lease expiry and delayed emissions ride the backend's timer wheel;
//     nat_reboot() wipes every mapping mid-run (the chaos supervisor's
//     "natreboot" event) and nodes must recover by re-registering.
//
// Endpoints with no profile (or an all-default one) pass through untouched:
// attach/send go straight to the inner stack, byte-identical to running
// without the shim.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "common/rng.hpp"
#include "nat/rules.hpp"
#include "net/spi.hpp"

namespace whisper::net {

/// Seeded netem-style egress impairments (all off by default).
struct ImpairConfig {
  double loss = 0.0;       // P(drop) per datagram
  double duplicate = 0.0;  // P(one extra copy)
  double reorder = 0.0;    // P(extra hold), reordering vs in-window packets
  Time delay = 0;          // base one-way delay added to every datagram
  Time jitter = 0;         // uniform ±jitter around the base delay
  std::uint64_t rate_bps = 0;  // egress rate cap; 0 = uncapped

  bool any() const {
    return loss > 0 || duplicate > 0 || reorder > 0 || delay > 0 ||
           jitter > 0 || rate_bps > 0;
  }
};

/// Parse an impairment spec: comma-separated `key:value` with keys
///   loss:F  dup:F  reorder:F         (probabilities in [0,1])
///   delay:DUR[±DUR]                  (e.g. 20ms±10ms; '~' also accepted)
///   rate:N[kbps|mbps|bps]
/// Durations accept us/ms/s suffixes (default ms). Returns nullopt and
/// fills *err on malformed input. Empty spec = no impairment.
std::optional<ImpairConfig> parse_impair(const std::string& spec,
                                         std::string* err = nullptr);

/// Per-endpoint shim behavior; default = public, unimpaired (pass-through).
struct ShimProfile {
  nat::NatType nat = nat::NatType::kNone;
  /// The emulated device's public IP; required when natted. Distinct per
  /// device so IP-based (restricted-cone) filtering means something.
  std::uint32_t device_ip = 0;
  ImpairConfig impair;
};

/// One sampled impairment verdict — the unit of the determinism contract.
struct ImpairDecision {
  std::uint64_t seq = 0;  // per-node send index
  bool dropped = false;
  std::size_t copies = 1;
  Time delay0 = 0;  // scheduled hold of the primary copy
  Time delay1 = 0;  // of the duplicate, if any

  bool operator==(const ImpairDecision&) const = default;
};

/// Shim event for the JSONL event log (CI artifact / diagnostics).
struct ShimEvent {
  Time t = 0;
  const char* kind = "";  // send|loss|dup|rate_drop|nat_map|nat_filter|
                          // nat_expire|nat_reboot
  Endpoint a;             // send/loss: wire src; nat_*: external endpoint
  Endpoint b;             // send/loss: dst;      nat_*: internal endpoint
  std::uint64_t seq = 0;
  Time delay = 0;
};

/// Render one event as a JSON line (no trailing newline).
std::string shim_event_json(const ShimEvent& ev);

struct ShimConfig {
  std::uint64_t seed = 1;
  /// Lease for emulated NAT mappings (rules engine config).
  nat::NatConfig nat;
  /// Binds a fresh mapping socket on the given device IP (port 0 = OS
  /// assigned) and returns its endpoint — UdpBackend::reserve_endpoint_on.
  /// Required when any profile is natted.
  std::function<std::optional<Endpoint>(std::uint32_t bind_ip)> reserve;
  /// Queueing horizon for the rate cap: a packet whose token-bucket start
  /// would sit further out than this is tail-dropped.
  Time rate_horizon = 500 * kMillisecond;
  /// Record every ImpairDecision (determinism tests).
  bool record_decisions = false;
};

class ShimStack final : public Stack {
 public:
  ShimStack(Clock& clock, Stack& inner, ShimConfig config);
  ~ShimStack() override;

  ShimStack(const ShimStack&) = delete;
  ShimStack& operator=(const ShimStack&) = delete;

  /// Declare `internal_ep`'s NAT/impairment profile. Must be called before
  /// attach(internal_ep, ...); endpoints without a profile pass through.
  void set_profile(Endpoint internal_ep, ShimProfile profile);

  /// Sink for the shim event log (one ShimEvent per decision that altered
  /// or translated traffic). Called inline on the event-loop thread.
  void set_event_sink(std::function<void(const ShimEvent&)> sink) {
    event_sink_ = std::move(sink);
  }

  // --- Stack. ---
  void attach(Endpoint internal_ep, Handler handler) override;
  void detach(Endpoint internal_ep) override;
  bool attached(Endpoint internal_ep) const override;
  bool send(Endpoint internal_src, Endpoint public_dst, Bytes payload,
            Proto proto) override;
  void redeliver(Endpoint internal_dst, Datagram dgram) override;
  std::uint64_t packets_sent() const override { return inner_.packets_sent(); }
  std::uint64_t packets_delivered() const override {
    return inner_.packets_delivered();
  }
  void set_fault_interposer(FaultInterposer* faults) override {
    inner_.set_fault_interposer(faults);
  }
  void set_flight(telemetry::FlightRecorder* flight) override {
    inner_.set_flight(flight);
  }
  void set_tracer(telemetry::Tracer* tracer) override {
    inner_.set_tracer(tracer);
  }

  // --- NAT control / introspection. ---
  /// Wipe every device's mapping table and close the mapping sockets (the
  /// "natreboot" chaos event). Nodes recover via re-registration: the next
  /// outbound packet opens a fresh mapping on a new external port. Returns
  /// the number of mappings dropped.
  std::size_t nat_reboot();
  nat::NatType type_of(Endpoint internal_ep) const;
  /// The internal endpoint owning a shim mapping socket, if any (lets a
  /// flight-recorder node resolver attribute mapping traffic to its node).
  std::optional<Endpoint> owner_of(Endpoint external_ep) const;
  /// Live mappings across all devices.
  std::size_t mappings_active() const;

  // --- Counters (exported as node metrics by whisper_noded). ---
  std::uint64_t impair_dropped() const { return impair_dropped_; }
  std::uint64_t impair_duplicated() const { return impair_duplicated_; }
  std::uint64_t impair_delayed() const { return impair_delayed_; }
  std::uint64_t rate_dropped() const { return rate_dropped_; }
  std::uint64_t nat_filtered() const { return nat_filtered_; }
  std::uint64_t nat_mappings_created() const { return nat_mappings_created_; }
  std::uint64_t nat_expired() const { return nat_expired_; }
  std::uint64_t nat_reboots() const { return nat_reboots_; }

  /// Recorded decisions (ShimConfig::record_decisions), in sample order.
  const std::vector<ImpairDecision>& decisions() const { return decisions_; }

 private:
  struct NodeState {
    Endpoint internal;
    ShimProfile profile;
    Handler handler;  // natted nodes only; pass-through keeps it in inner
    std::unique_ptr<nat::NatDevice> device;  // natted only
    Rng rng;
    std::uint64_t seq = 0;       // send counter, drives the decision stream
    Time rate_free_at = 0;       // token-bucket cursor
    // external port -> mapping socket endpoint / expiry timer.
    std::map<std::uint16_t, Endpoint> mapping_eps;
    std::map<std::uint16_t, TimerId> mapping_timers;

    explicit NodeState(Rng r) : rng(r) {}
  };

  NodeState* find_node(Endpoint internal_ep);
  ImpairDecision decide(NodeState& n);
  void on_mapping_rx(Endpoint internal_ep, const Datagram& dgram);
  /// Register a freshly-allocated mapping socket and arm its lease timer.
  void adopt_mapping(NodeState& n, Endpoint external);
  void close_mapping(NodeState& n, std::uint16_t port);
  void check_mapping_expiry(Endpoint internal_ep, std::uint16_t port);
  void emit_event(const char* kind, Endpoint a, Endpoint b, std::uint64_t seq,
                  Time delay);

  Clock& clock_;
  Stack& inner_;
  ShimConfig config_;
  std::map<Endpoint, ShimProfile> profiles_;
  std::map<Endpoint, NodeState> nodes_;
  std::map<Endpoint, Endpoint> mapping_owner_;  // external -> internal
  std::function<void(const ShimEvent&)> event_sink_;
  std::vector<ImpairDecision> decisions_;
  std::size_t nodes_created_ = 0;
  // Scratch for the port-allocator callback (rules engine -> adopt_mapping).
  std::optional<Endpoint> pending_alloc_;

  std::uint64_t impair_dropped_ = 0;
  std::uint64_t impair_duplicated_ = 0;
  std::uint64_t impair_delayed_ = 0;
  std::uint64_t rate_dropped_ = 0;
  std::uint64_t nat_filtered_ = 0;
  std::uint64_t nat_mappings_created_ = 0;
  std::uint64_t nat_expired_ = 0;
  std::uint64_t nat_reboots_ = 0;
};

}  // namespace whisper::net

#include "net/wheel.hpp"

#include <algorithm>

namespace whisper::net {

namespace {
// A single noded keeps a handful of timers per protocol layer; a whole
// in-process loopback mesh keeps a few per node. Reserve enough that
// steady-state arming never reallocates.
constexpr std::size_t kInitialCapacity = 1024;
}  // namespace

TimerWheel::TimerWheel() {
  heap_.reserve(kInitialCapacity);
  slots_.reserve(kInitialCapacity);
  free_slots_.reserve(kInitialCapacity);
}

std::uint32_t TimerWheel::claim_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t s = free_slots_.back();
    free_slots_.pop_back();
    return s;
  }
  slots_.push_back(Slot{});
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void TimerWheel::retire_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.live = false;
  if (++s.gen == 0) s.gen = 1;  // keep ids non-zero across generation wrap
  free_slots_.push_back(slot);
  --live_count_;
}

bool TimerWheel::stale(TimerId id) const {
  const std::uint32_t slot = static_cast<std::uint32_t>(id);
  const std::uint32_t gen = static_cast<std::uint32_t>(id >> 32);
  if (slot >= slots_.size()) return true;
  const Slot& s = slots_[slot];
  return !s.live || s.gen != gen;
}

void TimerWheel::drop_stale_front() {
  while (!heap_.empty() && stale(heap_.front().id)) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

TimerId TimerWheel::schedule(Time at, std::function<void()> fn) {
  const std::uint32_t slot = claim_slot();
  Slot& s = slots_[slot];
  s.live = true;
  ++live_count_;
  const TimerId id = make_id(slot, s.gen);
  heap_.push_back(Entry{at, next_seq_++, id, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  return id;
}

void TimerWheel::cancel(TimerId id) {
  // Only ids naming a pending timer can be cancelled; anything else is a
  // stale generation and a no-op. The heap entry stays behind and is
  // dropped lazily when it surfaces at the front.
  if (stale(id)) return;
  retire_slot(static_cast<std::uint32_t>(id));
  ++cancelled_;
}

std::optional<Time> TimerWheel::next_deadline() {
  drop_stale_front();
  if (heap_.empty()) return std::nullopt;
  return heap_.front().at;
}

std::size_t TimerWheel::advance(Time now) {
  std::size_t n = 0;
  for (;;) {
    drop_stale_front();
    if (heap_.empty() || heap_.front().at > now) break;
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Entry e = std::move(heap_.back());
    heap_.pop_back();
    retire_slot(static_cast<std::uint32_t>(e.id));
    ++fired_;
    ++n;
    e.fn();
  }
  return n;
}

}  // namespace whisper::net

// Per-node CPU accounting with wall-clock measurement of crypto work.
//
// The paper's Table II reports average CPU time per PPSS cycle spent in AES
// vs RSA, split by node class. Because our AES/RSA are real implementations,
// we measure actual wall-clock time per operation, accumulate it per node
// and category, and also charge it to the backend clock so that latency
// distributions (Fig. 7) include processing time. Backend-agnostic: under
// the simulator the charge extends virtual time, under the UDP backend the
// work already took that long on the real clock.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>

#include "net/time.hpp"

namespace whisper::net {

enum class CpuCategory : std::uint8_t {
  kAes = 0,        // symmetric content encryption/decryption
  kRsaEncrypt = 1, // onion path preparation (seal operations)
  kRsaDecrypt = 2, // onion peeling / envelope opening
  kRsaSign = 3,    // passport issuance & verification
  // Subsystem handler time: wall-clock spent dispatching one inbound frame
  // into the named layer, crypto included. PPSS handling nests inside the
  // WCL handler (confidential payloads surface through the onion exit), so
  // kPpssHandler is a subset of kWclHandler, and the crypto categories
  // above overlap every handler bucket — report them side by side, never
  // sum them.
  kPssHandler = 4,
  kKeysHandler = 5,
  kWclHandler = 6,
  kPpssHandler = 7,
  kCount = 8,
};

/// Stable lower-case label for a category ("aes", "pss_handler", ...).
inline const char* cpu_category_name(CpuCategory cat) {
  switch (cat) {
    case CpuCategory::kAes: return "aes";
    case CpuCategory::kRsaEncrypt: return "rsa_encrypt";
    case CpuCategory::kRsaDecrypt: return "rsa_decrypt";
    case CpuCategory::kRsaSign: return "rsa_sign";
    case CpuCategory::kPssHandler: return "pss_handler";
    case CpuCategory::kKeysHandler: return "keys_handler";
    case CpuCategory::kWclHandler: return "wcl_handler";
    case CpuCategory::kPpssHandler: return "ppss_handler";
    case CpuCategory::kCount: break;
  }
  return "unknown";
}

class CpuMeter {
 public:
  /// Run `fn`, measure its wall-clock duration, account it under `cat`, and
  /// return the elapsed time as microseconds (>= 1).
  template <typename Fn>
  Time charge(CpuCategory cat, Fn&& fn) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const auto end = std::chrono::steady_clock::now();
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(end - start).count();
    const Time t = us > 0 ? static_cast<Time>(us) : 1;
    spent_[static_cast<std::size_t>(cat)] += t;
    ++ops_[static_cast<std::size_t>(cat)];
    if (probe_) probe_(cat, t);
    return t;
  }

  /// Optional per-operation sample sink (used by the Fig. 7 bench to build
  /// distributions of individual crypto-operation durations).
  void set_probe(std::function<void(CpuCategory, Time)> probe) { probe_ = std::move(probe); }

  Time spent(CpuCategory cat) const { return spent_[static_cast<std::size_t>(cat)]; }
  std::uint64_t ops(CpuCategory cat) const { return ops_[static_cast<std::size_t>(cat)]; }
  Time total() const {
    Time t = 0;
    for (auto v : spent_) t += v;
    return t;
  }
  void reset() {
    for (auto& v : spent_) v = 0;
    for (auto& v : ops_) v = 0;
  }

 private:
  Time spent_[static_cast<std::size_t>(CpuCategory::kCount)] = {};
  std::uint64_t ops_[static_cast<std::size_t>(CpuCategory::kCount)] = {};
  std::function<void(CpuCategory, Time)> probe_;
};

}  // namespace whisper::net

#include "net/udp.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <ctime>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>

#include "telemetry/flight.hpp"
#include "telemetry/trace.hpp"

namespace whisper::net {

namespace {

// Frame header on every UDP datagram: magic "WP", version, proto tag.
// Version 1 = bare header; version 2 = header + 27-byte TraceContext
// extension (trace_wire opt-in). Receivers accept both.
constexpr std::uint8_t kMagic0 = 0x57;  // 'W'
constexpr std::uint8_t kMagic1 = 0x50;  // 'P'
constexpr std::uint8_t kVersion = 1;
constexpr std::uint8_t kVersionTraced = 2;
constexpr std::size_t kHeaderLen = 4;
constexpr std::size_t kTraceCtxLen = 8 + 8 + 4 + 4 + 2 + 1;  // 27

constexpr int kMaxEpollEvents = 64;

void put_le(Bytes& out, std::uint64_t v, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint64_t get_le(const std::uint8_t* p, std::size_t n) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < n; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

void append_trace_ctx(Bytes& frame, const telemetry::TraceContext& ctx) {
  put_le(frame, ctx.root, 8);
  put_le(frame, ctx.trace_id, 8);
  put_le(frame, ctx.hop, 4);
  put_le(frame, ctx.seq, 4);
  put_le(frame, ctx.attempt, 2);
  frame.push_back(static_cast<std::uint8_t>(ctx.layer));
}

telemetry::TraceContext parse_trace_ctx(const std::uint8_t* p) {
  telemetry::TraceContext ctx;
  ctx.root = get_le(p, 8);
  ctx.trace_id = get_le(p + 8, 8);
  ctx.hop = static_cast<std::uint32_t>(get_le(p + 16, 4));
  ctx.seq = static_cast<std::uint32_t>(get_le(p + 20, 4));
  ctx.attempt = static_cast<std::uint16_t>(get_le(p + 24, 2));
  ctx.layer = static_cast<telemetry::TraceLayer>(p[26]);
  return ctx;
}

std::uint64_t monotonic_ns() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

sockaddr_in to_sockaddr(Endpoint ep) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(ep.ip);
  sa.sin_port = htons(ep.port);
  return sa;
}

Endpoint from_sockaddr(const sockaddr_in& sa) {
  return Endpoint{ntohl(sa.sin_addr.s_addr), ntohs(sa.sin_port)};
}

}  // namespace

UdpBackend::UdpBackend(Config config) : config_(config) {
  epoch_ns_ = config_.epoch_ns >= 0 ? static_cast<std::uint64_t>(config_.epoch_ns)
                                    : monotonic_ns();
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) last_error_ = std::string("epoll_create1: ") + std::strerror(errno);
}

UdpBackend::~UdpBackend() {
  for (auto& [ep, sock] : sockets_) {
    if (sock.fd >= 0) ::close(sock.fd);
  }
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

Time UdpBackend::now() const {
  return (monotonic_ns() - epoch_ns_) / 1000;
}

TimerId UdpBackend::schedule_at(Time at, std::function<void()> fn) {
  return wheel_.schedule(at, std::move(fn));
}

TimerId UdpBackend::schedule_after(Time delay, std::function<void()> fn) {
  return wheel_.schedule(now() + delay, std::move(fn));
}

void UdpBackend::cancel(TimerId id) { wheel_.cancel(id); }

std::optional<Endpoint> UdpBackend::open_socket(Endpoint ep) {
  const int fd = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    last_error_ = std::string("socket: ") + std::strerror(errno);
    return std::nullopt;
  }
#ifdef SO_RXQ_OVFL
  // Ask the kernel to report receive-queue overflow (drops since socket
  // creation) as a per-datagram cmsg; best-effort, the counter just stays
  // zero where unsupported.
  {
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_RXQ_OVFL, &one, sizeof one);
  }
#endif
  sockaddr_in sa = to_sockaddr(ep);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) != 0) {
    last_error_ = "bind " + ep.str() + ": " + std::strerror(errno);
    ::close(fd);
    return std::nullopt;
  }
  // Learn the OS-assigned port when the caller asked for port 0.
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    last_error_ = std::string("getsockname: ") + std::strerror(errno);
    ::close(fd);
    return std::nullopt;
  }
  const Endpoint actual = from_sockaddr(bound);
  epoll_event ev{};
  ev.events = EPOLLIN;  // level-triggered
  ev.data.fd = fd;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    last_error_ = std::string("epoll_ctl(ADD): ") + std::strerror(errno);
    ::close(fd);
    return std::nullopt;
  }
  sockets_[actual] = SocketState{fd, actual, nullptr};
  fd_to_ep_[fd] = actual;
  return actual;
}

std::optional<Endpoint> UdpBackend::reserve_endpoint() {
  return open_socket(Endpoint{config_.bind_ip, 0});
}

std::optional<Endpoint> UdpBackend::reserve_endpoint_on(std::uint32_t bind_ip) {
  return open_socket(Endpoint{bind_ip, 0});
}

void UdpBackend::attach(Endpoint internal_ep, Handler handler) {
  auto it = sockets_.find(internal_ep);
  if (it == sockets_.end()) {
    if (!open_socket(internal_ep)) return;  // last_error() has the reason
    it = sockets_.find(internal_ep);
  }
  it->second.handler = std::move(handler);
}

void UdpBackend::close_socket(Endpoint ep) {
  auto it = sockets_.find(ep);
  if (it == sockets_.end()) return;
  if (it->second.fd >= 0) {
    epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, it->second.fd, nullptr);
    fd_to_ep_.erase(it->second.fd);
    ::close(it->second.fd);
  }
  sockets_.erase(it);
}

void UdpBackend::detach(Endpoint internal_ep) { close_socket(internal_ep); }

bool UdpBackend::attached(Endpoint internal_ep) const {
  auto it = sockets_.find(internal_ep);
  return it != sockets_.end() && it->second.handler != nullptr;
}

void UdpBackend::emit(int fd, Endpoint src, Endpoint dst, const Bytes& payload,
                      Proto proto, const telemetry::TraceContext* trace) {
  Bytes frame;
  frame.reserve(kHeaderLen + (trace != nullptr ? kTraceCtxLen : 0) + payload.size());
  frame.push_back(kMagic0);
  frame.push_back(kMagic1);
  frame.push_back(trace != nullptr ? kVersionTraced : kVersion);
  frame.push_back(static_cast<std::uint8_t>(proto));
  if (trace != nullptr) append_trace_ctx(frame, *trace);
  frame.insert(frame.end(), payload.begin(), payload.end());

  if (config_.send_error_hook) {
    if (const int injected = config_.send_error_hook(dst); injected != 0) {
      count_drop(classify_sendto_errno(injected));
      return;
    }
  }

  const sockaddr_in sa = to_sockaddr(dst);
  const ssize_t n = ::sendto(fd, frame.data(), frame.size(), 0,
                             reinterpret_cast<const sockaddr*>(&sa), sizeof(sa));
  if (n < 0) {
    // Best-effort datagram semantics: every sendto failure is ordinary
    // datagram loss to the protocol stack — the retry machinery (WCL RTO,
    // PSS cycles) already covers it, and a blocking retry loop in the hot
    // path would be worse than one lost datagram. But the *cause* is
    // counted: transient kernel backpressure (ENOBUFS/EAGAIN/ENOMEM) and
    // ICMP-driven refusals (a crashed peer's port answering with
    // port-unreachable) are operationally different from random loss, and
    // none of them may kill the loop.
    count_drop(classify_sendto_errno(errno));
    return;
  }
  bytes_sent_ += static_cast<std::uint64_t>(n);
  if (config_.frame_tap) config_.frame_tap(BytesView(frame), /*outbound=*/true);
  (void)src;
}

bool UdpBackend::send(Endpoint internal_src, Endpoint public_dst, Bytes payload,
                      Proto proto) {
  auto it = sockets_.find(internal_src);
  if (it == sockets_.end()) return false;
  const int fd = it->second.fd;
  ++packets_sent_;

  Datagram dgram{internal_src, public_dst, std::move(payload), proto, {}};
  const bool tracing_flight = flight_ != nullptr && flight_->enabled();
  if (tracing_flight) dgram.trace = flight_->context();

  std::size_t copies = 1;
  Time extra_delay = 0;
  if (faults_ != nullptr) {
    const auto verdict = faults_->on_wire(internal_src, dgram);
    copies = verdict.copies;
    extra_delay = verdict.extra_delay;
  }
  if (copies == 0) {
    count_drop(DropReason::kFault);
    return true;  // the sender emitted it; it died on the wire
  }

  for (std::size_t i = 0; i < copies; ++i) {
    if (i > 0) ++packets_duplicated_;
    if (tracing_flight && dgram.trace.valid()) {
      // Without trace_wire the context cannot travel inside the datagram
      // (zero wire bytes), so this backend records only the sender's side
      // of each hop; with trace_wire the same context rides the frame and
      // the receiving process logs the paired wire_in.
      dgram.trace.seq = flight_->next_wire_seq();
      const std::uint64_t src_node = flight_->node_of(internal_src);
      flight_->wire_out(dgram.trace, src_node, now(), extra_delay);
      if (tracer_ != nullptr && tracer_->enabled()) {
        tracer_->flow_begin("net.hop", "net", src_node, now(),
                            dgram.trace.trace_id ^ (static_cast<std::uint64_t>(dgram.trace.seq) << 32));
      }
    }
    const bool carry_ctx =
        config_.trace_wire && tracing_flight && dgram.trace.valid();
    if (extra_delay == 0) {
      emit(fd, internal_src, public_dst, dgram.payload, proto,
           carry_ctx ? &dgram.trace : nullptr);
    } else {
      // Fault-injected delay: hold the bytes on the wheel, then emit. The
      // socket may be gone by then (detach); that drop is the same loss the
      // real network would produce.
      schedule_after(extra_delay, [this, internal_src, public_dst,
                                   payload = dgram.payload, proto, carry_ctx,
                                   trace = dgram.trace] {
        auto sit = sockets_.find(internal_src);
        if (sit == sockets_.end()) {
          count_drop(DropReason::kLoss);
          return;
        }
        emit(sit->second.fd, internal_src, public_dst, payload, proto,
             carry_ctx ? &trace : nullptr);
      });
    }
  }
  return true;
}

void UdpBackend::redeliver(Endpoint internal_dst, Datagram dgram) {
  auto it = sockets_.find(internal_dst);
  if (it == sockets_.end() || it->second.handler == nullptr) {
    count_drop(DropReason::kDetach);
    return;
  }
  ++packets_delivered_;
  it->second.handler(dgram);
}

void UdpBackend::deliver(SocketState& sock, Datagram dgram) {
  if (faults_ != nullptr) {
    switch (faults_->on_deliver(dgram.src, sock.ep, dgram)) {
      case FaultInterposer::Gate::kDrop:
        count_drop(DropReason::kFault);
        return;
      case FaultInterposer::Gate::kQueue:
        return;  // interposer owns it now
      case FaultInterposer::Gate::kDeliver:
        break;
    }
  }
  if (sock.handler == nullptr) {
    count_drop(DropReason::kDetach);
    return;
  }
  ++packets_delivered_;
  // A context parsed off a version-2 frame (trace_wire sender) pairs the
  // remote wire_out with a local wire_in and arms the ambient context —
  // exactly what the sim network does on delivery — so the causal chain
  // continues across the process boundary.
  if (flight_ != nullptr && flight_->enabled() && dgram.trace.valid()) {
    const std::uint64_t dst_node = flight_->node_of(sock.ep);
    flight_->wire_in(dgram.trace, dst_node, now());
    telemetry::ScopedTraceContext guard(flight_, dgram.trace.next_hop());
    sock.handler(dgram);
    return;
  }
  sock.handler(dgram);
}

void UdpBackend::drain_socket(int fd) {
  std::vector<std::uint8_t> buf(config_.max_datagram);
  for (;;) {
    // The socket may have been detached by a handler run earlier in this
    // drain; stop touching the fd the moment it leaves the table.
    auto eit = fd_to_ep_.find(fd);
    if (eit == fd_to_ep_.end()) return;
    const Endpoint ep = eit->second;

    sockaddr_in from{};
    iovec iov{buf.data(), buf.size()};
    alignas(cmsghdr) char cmsg_buf[CMSG_SPACE(sizeof(std::uint32_t))];
    msghdr msg{};
    msg.msg_name = &from;
    msg.msg_namelen = sizeof(from);
    msg.msg_iov = &iov;
    msg.msg_iovlen = 1;
    msg.msg_control = cmsg_buf;
    msg.msg_controllen = sizeof cmsg_buf;
    const ssize_t n = ::recvmsg(fd, &msg, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN/EWOULDBLOCK: drained
    }
    bytes_received_ += static_cast<std::uint64_t>(n);
#ifdef SO_RXQ_OVFL
    for (cmsghdr* c = CMSG_FIRSTHDR(&msg); c != nullptr; c = CMSG_NXTHDR(&msg, c)) {
      if (c->cmsg_level != SOL_SOCKET || c->cmsg_type != SO_RXQ_OVFL) continue;
      std::uint32_t dropped = 0;
      std::memcpy(&dropped, CMSG_DATA(c), sizeof dropped);
      if (auto sit = sockets_.find(ep); sit != sockets_.end()) {
        // The cmsg carries a cumulative per-socket counter; fold the delta
        // into the backend-wide total (the counter can wrap at 2^32).
        rx_kernel_drops_ += dropped - sit->second.rxq_ovfl;
        sit->second.rxq_ovfl = dropped;
      }
    }
#endif
    if (static_cast<std::size_t>(n) < kHeaderLen || buf[0] != kMagic0 ||
        buf[1] != kMagic1 ||
        (buf[2] != kVersion && buf[2] != kVersionTraced) ||
        buf[3] >= static_cast<std::uint8_t>(Proto::kCount)) {
      ++frame_rejects_;  // stray or hostile datagram; not ours
      continue;
    }
    std::size_t payload_off = kHeaderLen;
    if (buf[2] == kVersionTraced) {
      if (static_cast<std::size_t>(n) < kHeaderLen + kTraceCtxLen) {
        ++frame_rejects_;  // truncated trace extension
        continue;
      }
      payload_off += kTraceCtxLen;
    }
    auto sit = sockets_.find(ep);
    if (sit == sockets_.end()) return;
    if (config_.frame_tap) {
      config_.frame_tap(BytesView(buf.data(), static_cast<std::size_t>(n)),
                        /*outbound=*/false);
    }
    Datagram dgram;
    dgram.src = from_sockaddr(from);
    dgram.dst = ep;
    dgram.proto = static_cast<Proto>(buf[3]);
    if (buf[2] == kVersionTraced) {
      dgram.trace = parse_trace_ctx(buf.data() + kHeaderLen);
    }
    dgram.payload.assign(buf.begin() + static_cast<std::ptrdiff_t>(payload_off),
                         buf.begin() + n);
    deliver(sit->second, std::move(dgram));
  }
}

void UdpBackend::poll(Time max_wait) {
  const Time start = now();
  Time budget = std::min(max_wait, config_.max_poll_wait);
  if (auto deadline = wheel_.next_deadline()) {
    budget = *deadline > start ? std::min(budget, *deadline - start) : 0;
  }
  const int timeout_ms = static_cast<int>(std::min<Time>(budget / 1000, 60'000));

  epoll_event events[kMaxEpollEvents];
  const int n = epoll_wait(epoll_fd_, events, kMaxEpollEvents, timeout_ms);
  if (n < 0) {
    if (errno != EINTR) {
      last_error_ = std::string("epoll_wait: ") + std::strerror(errno);
    }
    // EINTR: a signal woke us (request_stop from a handler, SIGALRM, ...).
    // Fall through to the timer pass — due timers must still fire.
  }
  for (int i = 0; i < std::max(n, 0); ++i) {
    drain_socket(events[i].data.fd);
  }
  wheel_.advance(now());
}

void UdpBackend::run_for(Time duration) {
  const Time deadline = now() + duration;
  while (!stop_requested()) {
    const Time t = now();
    if (t >= deadline) break;
    poll(deadline - t);
  }
}

void UdpBackend::run() {
  while (!stop_requested()) {
    poll(config_.max_poll_wait);
  }
}

}  // namespace whisper::net

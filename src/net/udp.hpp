// Real-network backend: non-blocking UDP sockets on a level-triggered
// epoll loop, timers on a monotonic-clock wheel.
//
// One UdpBackend is one single-threaded event loop, exactly like the
// simulator: it can host a single node (whisper_noded) or a whole
// in-process mesh with one socket per node on distinct loopback ports
// (the cross-backend equivalence test, bench_throughput --backend=udp).
// Handlers and timer callbacks run on the thread inside poll()/run_for()/
// run(); the backend is not thread-safe and does not need to be.
//
// Wire format: each protocol datagram travels as one UDP datagram with a
// 4-byte frame header [0x57 'W', 0x50 'P', version, proto] so the receiver
// can restore the traffic-accounting tag and discard stray packets. By
// default (version 1) the causal TraceContext does NOT travel — flight
// tracing keeps its zero-wire-bytes contract (tap-digest-asserted), so each
// process records its own side of a flight and wire_in hop pairing is a
// sim-only luxury. Opting in with UdpConfig::trace_wire emits version-2
// frames whose header is followed by the 27-byte TraceContext
// (root u64 | trace u64 | hop u32 | seq u32 | attempt u16 | layer u8,
// little-endian), letting receivers log paired wire_in events so
// whisper_trace can merge per-process event exports into cross-process
// per-hop RTT decompositions (DESIGN.md §15). Receivers accept both
// versions regardless of the local flag; anonymity-sensitive deployments
// simply never enable the flag.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>

#include "common/bytes.hpp"
#include "net/spi.hpp"
#include "net/wheel.hpp"

namespace whisper::telemetry {
class Tracer;
class FlightRecorder;
}  // namespace whisper::telemetry

namespace whisper::net {

struct UdpConfig {
  /// Address new sockets bind to when reserve_endpoint() picks the port.
  std::uint32_t bind_ip = (127u << 24) | 1;  // 127.0.0.1
  /// Largest datagram accepted off the wire (frame header included).
  std::size_t max_datagram = 64 * 1024 + 64;
  /// Ceiling on one epoll_wait sleep, so stop requests and run_for
  /// deadlines are honored promptly even with no timers armed.
  Time max_poll_wait = 250 * kMillisecond;
  /// Opt-in cross-process flight tracing: emit version-2 frames carrying
  /// the sender's TraceContext (27 extra wire bytes per traced datagram).
  /// OFF by default — the zero-wire-bytes anonymity contract holds unless
  /// the operator explicitly trades it for observability.
  bool trace_wire = false;
  /// Shared CLOCK_MONOTONIC epoch (nanoseconds) for now(). Negative =
  /// sample at construction (each backend gets its own zero). A supervisor
  /// passes one epoch to every process it forks so cross-process flight
  /// timestamps are directly comparable (CLOCK_MONOTONIC is boot-relative,
  /// hence machine-wide).
  std::int64_t epoch_ns = -1;
  /// Test-only: consulted before each sendto(). A nonzero return simulates
  /// that errno from the syscall (the datagram is not sent); 0 sends for
  /// real. Unit tests inject ENOBUFS/ECONNREFUSED here — there is no
  /// portable way to make a real loopback socket produce them on demand.
  std::function<int(Endpoint dst)> send_error_hook;
  /// Test-only: observes every framed datagram exactly as it hits / left
  /// the wire (header included). The zero-wire-bytes test digests tapped
  /// frames from a traced and an untraced run and asserts byte equality.
  std::function<void(BytesView frame, bool outbound)> frame_tap;
};

class UdpBackend final : public Clock, public Stack {
 public:
  using Config = UdpConfig;

  explicit UdpBackend(Config config = {});
  ~UdpBackend() override;

  UdpBackend(const UdpBackend&) = delete;
  UdpBackend& operator=(const UdpBackend&) = delete;

  // --- Clock (monotonic, microseconds since backend construction). ---
  Time now() const override;
  TimerId schedule_at(Time at, std::function<void()> fn) override;
  TimerId schedule_after(Time delay, std::function<void()> fn) override;
  void cancel(TimerId id) override;

  // --- Stack. ---
  /// Bind a socket at `internal_ep` (or claim one previously handed out by
  /// reserve_endpoint()) and deliver its datagrams to `handler`. On bind
  /// failure the endpoint stays unattached (attached() == false) and
  /// last_error() describes why.
  void attach(Endpoint internal_ep, Handler handler) override;
  void detach(Endpoint internal_ep) override;
  bool attached(Endpoint internal_ep) const override;
  bool send(Endpoint internal_src, Endpoint public_dst, Bytes payload,
            Proto proto) override;
  void redeliver(Endpoint internal_dst, Datagram dgram) override;
  std::uint64_t packets_sent() const override { return packets_sent_; }
  std::uint64_t packets_delivered() const override { return packets_delivered_; }
  void set_fault_interposer(FaultInterposer* faults) override { faults_ = faults; }
  void set_flight(telemetry::FlightRecorder* flight) override { flight_ = flight; }
  void set_tracer(telemetry::Tracer* tracer) override { tracer_ = tracer; }

  /// Bind a fresh socket on an OS-assigned loopback port and return its
  /// endpoint without installing a handler yet; a later attach() with the
  /// same endpoint claims the already-bound socket. This is how tools and
  /// tests get collision-free ports: the endpoint that goes into a node's
  /// ContactCard is the port the OS actually assigned. Returns nullopt on
  /// socket/bind failure (see last_error()).
  std::optional<Endpoint> reserve_endpoint();

  /// reserve_endpoint() on an explicit bind address instead of
  /// config_.bind_ip. The NAT shim allocates its per-device mapping sockets
  /// here: each emulated device owns a distinct loopback IP (all of 127/8 is
  /// local), so IP-based restricted-cone filtering is real.
  std::optional<Endpoint> reserve_endpoint_on(std::uint32_t bind_ip);

  // --- Event loop. ---
  /// One iteration: sleep until I/O, the next timer deadline, or
  /// `max_wait` (whichever is earliest), drain ready sockets, fire due
  /// timers. EINTR is absorbed (treated as a zero-event wakeup).
  void poll(Time max_wait);
  /// Pump the loop for `duration` of wall time.
  void run_for(Time duration);
  /// Pump the loop until request_stop() is called.
  void run();
  /// Make run() return at the next loop iteration. Safe to call from a
  /// signal handler (a lock-free atomic store; the signal's EINTR wakes
  /// the epoll sleep).
  void request_stop() { stop_requested_.store(true, std::memory_order_relaxed); }
  bool stop_requested() const { return stop_requested_.load(std::memory_order_relaxed); }

  // --- Introspection. ---
  std::uint64_t packets_dropped(DropReason r) const {
    return packets_dropped_[static_cast<std::size_t>(r)];
  }
  /// Stray/garbage datagrams rejected by the frame-header check.
  std::uint64_t frame_rejects() const { return frame_rejects_; }
  /// Datagrams the kernel dropped on our receive queues (SO_RXQ_OVFL),
  /// summed across sockets. Distinguishes kernel overflow from shim/network
  /// loss in fleet stats: this counter moving means the event loop is not
  /// draining fast enough, not that the (emulated) network is lossy.
  std::uint64_t rx_kernel_drops() const { return rx_kernel_drops_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t bytes_received() const { return bytes_received_; }
  std::size_t pending_timers() const { return wheel_.pending(); }
  const std::string& last_error() const { return last_error_; }

 private:
  struct SocketState {
    int fd = -1;
    Endpoint ep;
    Handler handler;  // null while only reserved
    // Last SO_RXQ_OVFL counter seen on this socket (kernel drop count since
    // socket creation, attached per-datagram as a cmsg).
    std::uint32_t rxq_ovfl = 0;
  };

  /// Create + bind a non-blocking socket at `ep` (port 0 = OS-assigned) and
  /// register it with epoll. Returns the bound endpoint, nullopt on error.
  std::optional<Endpoint> open_socket(Endpoint ep);
  void close_socket(Endpoint ep);
  void drain_socket(int fd);
  void deliver(SocketState& sock, Datagram dgram);
  /// Emit one framed UDP datagram; counts and classifies failures. `trace`
  /// non-null emits a version-2 frame carrying the context (trace_wire).
  void emit(int fd, Endpoint src, Endpoint dst, const Bytes& payload, Proto proto,
            const telemetry::TraceContext* trace = nullptr);
  void count_drop(DropReason r) { ++packets_dropped_[static_cast<std::size_t>(r)]; }

  Config config_;
  int epoll_fd_ = -1;
  std::uint64_t epoch_ns_ = 0;  // CLOCK_MONOTONIC at construction
  TimerWheel wheel_;
  std::unordered_map<Endpoint, SocketState> sockets_;
  std::unordered_map<int, Endpoint> fd_to_ep_;
  FaultInterposer* faults_ = nullptr;
  telemetry::FlightRecorder* flight_ = nullptr;
  telemetry::Tracer* tracer_ = nullptr;
  std::atomic<bool> stop_requested_{false};
  std::uint64_t packets_sent_ = 0;
  std::uint64_t packets_delivered_ = 0;
  std::uint64_t packets_duplicated_ = 0;
  std::uint64_t packets_dropped_[static_cast<std::size_t>(DropReason::kCount)] = {};
  std::uint64_t frame_rejects_ = 0;
  std::uint64_t rx_kernel_drops_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bytes_received_ = 0;
  std::string last_error_;
};

}  // namespace whisper::net

// SimBackend: the deterministic simulator presented through the transport
// SPI. sim::Simulator is-a net::Clock and sim::Network is-a net::Stack, so
// this wrapper adds no state and no indirection — protocol stacks built
// against the SPI run on the exact code paths the pre-SPI stack ran on,
// which is what keeps same-seed telemetry byte-identical to the golden
// digests.
//
// Header-only on purpose: the net core library must not link against sim
// (sim links against net for the shared Time/Datagram types); anything
// constructing a SimBackend already links both.
#pragma once

#include "net/spi.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace whisper::net {

class SimBackend {
 public:
  SimBackend(sim::Simulator& sim, sim::Network& net) : sim_(sim), net_(net) {}

  Clock& clock() { return sim_; }
  Stack& stack() { return net_; }
  sim::Simulator& simulator() { return sim_; }
  sim::Network& network() { return net_; }

  /// Advance virtual time (the simulator runs to the horizon instantly;
  /// the UDP backend's equivalent pumps epoll for the same wall duration).
  void run_for(Time duration) { sim_.run_until(sim_.now() + duration); }

 private:
  sim::Simulator& sim_;
  sim::Network& net_;
};

}  // namespace whisper::net

// Transport SPI: the seam between WHISPER's protocol stack and whatever
// carries its datagrams and drives its timers.
//
// Protocol code (nylon transport, PSS, key service, WCL, PPSS, overlays)
// is written exclusively against `Clock` and `Stack`. Two backends exist:
//
//   net::SimBackend  — the deterministic discrete-event simulator
//                      (sim::Simulator is-a Clock, sim::Network is-a
//                      Stack). Same-seed runs stay byte-identical to the
//                      pre-SPI stack: the sim code path is unchanged,
//                      only reached through a vtable now.
//   net::UdpBackend  — a real UDP/epoll event loop (level-triggered,
//                      non-blocking sockets) with a monotonic-clock timer
//                      wheel. One backend instance can host one node
//                      (whisper_noded) or a whole in-process mesh on
//                      loopback ports (tests, bench_throughput --backend=udp).
//
// The fault fabric and the observability layers plug into the same seam:
// `FaultInterposer` is consulted by any backend that supports fault
// injection, and `clock_fn` adapts a Clock into the timestamp callback the
// Tracer/FlightRecorder expect, so traces carry virtual micros under the
// sim and monotonic wall micros under UDP without the telemetry layer
// knowing the difference.
#pragma once

#include <cstdint>
#include <functional>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "net/datagram.hpp"
#include "net/time.hpp"

namespace whisper::telemetry {
class Tracer;
class FlightRecorder;
}  // namespace whisper::telemetry

namespace whisper::net {

/// Timer service: now / schedule / cancel. Implemented by sim::Simulator
/// (virtual time) and UdpBackend (monotonic wall time).
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current time in microseconds on this backend's clock.
  virtual Time now() const = 0;

  /// Schedule `fn` to run at absolute time `at` (>= now). Returns a
  /// non-zero id usable with cancel().
  virtual TimerId schedule_at(Time at, std::function<void()> fn) = 0;
  /// Schedule `fn` to run `delay` from now.
  virtual TimerId schedule_after(Time delay, std::function<void()> fn) = 0;
  /// Cancel a pending timer; no-op if already fired or cancelled.
  virtual void cancel(TimerId id) = 0;
};

/// Fault interposition hook (implemented by faults::FaultFabric). Consulted
/// on the sender side after NAT source rewriting (wire vantage point) and
/// again on the receiver side before the handler runs, so fault targeting
/// works on *internal* endpoints — stable node identities — while
/// corruption mutates the wire bytes. Backend-agnostic: the sim network
/// honors every verdict; the UDP backend honors drops, duplicates and
/// delays for the copies it originates locally.
class FaultInterposer {
 public:
  virtual ~FaultInterposer() = default;

  /// Sender-side verdict. `copies == 0` drops the packet before it reaches
  /// the wire (counted as a fault drop); `copies > 1` injects duplicates,
  /// each with an independently sampled network delay. `extra_delay` is
  /// added to every copy's delay (delay spikes, reordering). The payload
  /// may be mutated in place (single-bit corruption).
  struct WireVerdict {
    std::size_t copies = 1;
    Time extra_delay = 0;
  };
  virtual WireVerdict on_wire(Endpoint internal_src, Datagram& dgram) = 0;

  /// Receiver-side gate, after NAT resolution but before the handler runs.
  enum class Gate {
    kDeliver,  // pass through
    kDrop,     // drop (partition / loss episode): counted as a fault drop
    kQueue,    // consumed: destination is paused, interposer queued the packet
  };
  virtual Gate on_deliver(Endpoint internal_src, Endpoint internal_dst,
                          const Datagram& dgram) = 0;
};

/// Datagram service: a set of locally-hosted endpoints, each with a receive
/// handler, plus send. Implemented by sim::Network (the whole simulated
/// internet lives in one Stack) and UdpBackend (every attached endpoint is
/// a bound, non-blocking UDP socket on this host).
class Stack {
 public:
  virtual ~Stack() = default;

  using Handler = std::function<void(const Datagram&)>;

  /// Bind a node's receive handler at its internal endpoint.
  virtual void attach(Endpoint internal_ep, Handler handler) = 0;
  /// Remove a node (e.g. churn departure). Packets in flight are dropped on
  /// arrival.
  virtual void detach(Endpoint internal_ep) = 0;
  virtual bool attached(Endpoint internal_ep) const = 0;

  /// Send a datagram from a locally-hosted internal endpoint to a *public*
  /// destination endpoint. Returns false if the sender could not even emit
  /// the packet (no NAT mapping possible / endpoint not attached). Delivery
  /// itself is asynchronous and silently subject to loss and filtering.
  virtual bool send(Endpoint internal_src, Endpoint public_dst, Bytes payload,
                    Proto proto) = 0;

  /// Hand back a datagram the fault interposer claimed with Gate::kQueue:
  /// deliver it to the destination's handler now, bypassing the fault gate
  /// (the interposer already ruled on it once).
  virtual void redeliver(Endpoint internal_dst, Datagram dgram) = 0;

  /// Total datagrams handed to the wire / delivered to local handlers.
  virtual std::uint64_t packets_sent() const = 0;
  virtual std::uint64_t packets_delivered() const = 0;

  // --- Interposition / observability hooks. Default no-ops so a backend
  // opts into each capability it can honor. ---

  /// Install the fault fabric. May be null (no faults; zero overhead).
  virtual void set_fault_interposer(FaultInterposer* /*faults*/) {}

  /// Install the flight recorder for causal tracing (per-hop latency
  /// decomposition). Null or disabled costs one branch per packet.
  virtual void set_flight(telemetry::FlightRecorder* /*flight*/) {}

  /// Install a tracer for cross-node flow events ('s' at emission, 'f' at
  /// delivery, one pair per traced wire traversal).
  virtual void set_tracer(telemetry::Tracer* /*tracer*/) {}
};

/// Adapt a Clock into the `std::function<uint64_t()>` timestamp source the
/// telemetry layer takes (Tracer::set_clock, FlightRecorder::set_clock).
/// This is the wall-clock adapter that makes traces and `whisper_trace`
/// work unchanged on the UDP backend. `clock` must outlive the returned
/// callable.
inline std::function<std::uint64_t()> clock_fn(const Clock& clock) {
  return [&clock] { return clock.now(); };
}

}  // namespace whisper::net

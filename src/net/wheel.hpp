// Monotonic-clock timer wheel for the UDP/epoll backend.
//
// Reuses the slot/generation cancellation design from the simulator's
// event loop (PR 2): each pending timer owns a slot in a pooled table and
// its TimerId carries the slot's generation at arm time, so cancel() is an
// O(1) array probe with no hashing, and ids for retired occupants go stale
// automatically. Expiry order is total and deterministic given the same
// sequence of arms: (deadline, insertion seq) — FIFO among timers due at
// the same microsecond, exactly like the simulator, so protocol code
// observes the same firing discipline on both backends.
//
// Unlike the simulator the wheel does not own a clock: the epoll loop
// feeds it the current monotonic time (`advance`) and asks how long it may
// sleep (`next_deadline`), which keeps the wheel a pure data structure —
// trivially unit-testable without sockets or real sleeping.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "net/time.hpp"

namespace whisper::net {

class TimerWheel {
 public:
  TimerWheel();

  /// Arm `fn` to fire once `advance(now)` is called with now >= `at`.
  /// Returns a non-zero id usable with cancel().
  TimerId schedule(Time at, std::function<void()> fn);
  /// Disarm a pending timer; no-op for fired/cancelled/unknown ids.
  void cancel(TimerId id);

  /// Pending (armed, not yet fired or cancelled) timers.
  std::size_t pending() const { return live_count_; }
  std::uint64_t fired() const { return fired_; }
  std::uint64_t cancelled() const { return cancelled_; }

  /// Earliest pending deadline, or nullopt when idle — the epoll wait
  /// budget. Prunes cancelled entries from the heap front as a side effect.
  std::optional<Time> next_deadline();

  /// Fire every timer with deadline <= `now`, in (deadline, arm-order).
  /// Callbacks may arm and cancel timers freely, including ones that
  /// become due within this same call. Returns the number fired.
  std::size_t advance(Time now);

 private:
  struct Entry {
    Time at;
    std::uint64_t seq;  // tie-breaker: FIFO among same-deadline timers
    TimerId id;
    std::function<void()> fn;
  };
  /// Min-heap order on (at, seq) for std::push_heap/pop_heap (which build
  /// max-heaps, hence the inverted comparison).
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  /// One entry per timer slot. `gen` is bumped every time the slot retires
  /// (fire or cancel), so TimerIds minted for earlier occupants go stale.
  struct Slot {
    std::uint32_t gen = 1;
    bool live = false;
  };

  static TimerId make_id(std::uint32_t slot, std::uint32_t gen) {
    return (static_cast<TimerId>(gen) << 32) | slot;
  }

  std::uint32_t claim_slot();
  void retire_slot(std::uint32_t slot);
  bool stale(TimerId id) const;
  void drop_stale_front();

  std::vector<Entry> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t live_count_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t fired_ = 0;
  std::uint64_t cancelled_ = 0;
};

}  // namespace whisper::net

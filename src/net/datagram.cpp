#include "net/datagram.hpp"

namespace whisper::net {

const char* proto_name(Proto p) {
  switch (p) {
    case Proto::kPss: return "pss";
    case Proto::kKeys: return "keys";
    case Proto::kWcl: return "wcl";
    case Proto::kPpss: return "ppss";
    case Proto::kControl: return "control";
    case Proto::kApp: return "app";
    case Proto::kCount: break;
  }
  return "unknown";
}

const char* drop_reason_name(DropReason r) {
  switch (r) {
    case DropReason::kLoss: return "loss";
    case DropReason::kFilter: return "filter";
    case DropReason::kDetach: return "detach";
    case DropReason::kFault: return "fault";
    case DropReason::kCount: break;
  }
  return "unknown";
}

}  // namespace whisper::net

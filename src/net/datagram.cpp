#include "net/datagram.hpp"

#include <cerrno>

namespace whisper::net {

const char* proto_name(Proto p) {
  switch (p) {
    case Proto::kPss: return "pss";
    case Proto::kKeys: return "keys";
    case Proto::kWcl: return "wcl";
    case Proto::kPpss: return "ppss";
    case Proto::kControl: return "control";
    case Proto::kApp: return "app";
    case Proto::kCount: break;
  }
  return "unknown";
}

const char* drop_reason_name(DropReason r) {
  switch (r) {
    case DropReason::kLoss: return "loss";
    case DropReason::kFilter: return "filter";
    case DropReason::kDetach: return "detach";
    case DropReason::kFault: return "fault";
    case DropReason::kBackpressure: return "backpressure";
    case DropReason::kRefused: return "refused";
    case DropReason::kCount: break;
  }
  return "unknown";
}

DropReason classify_sendto_errno(int err) {
  switch (err) {
    // Local, transient: buffers full or allocation pressure. The datagram
    // is gone but the socket is fine; retrying later will succeed.
    case ENOBUFS:
    case ENOMEM:
    case EAGAIN:
#if EWOULDBLOCK != EAGAIN
    case EWOULDBLOCK:
#endif
      return DropReason::kBackpressure;
    // Peer-side: a previous datagram drew an ICMP port-unreachable (the
    // peer process died — exactly what a crashed node looks like), or the
    // route/host is down, or a local firewall rule vetoed the send.
    case ECONNREFUSED:
    case EHOSTUNREACH:
    case ENETUNREACH:
    case EHOSTDOWN:
    case ENETDOWN:
    case EPERM:
      return DropReason::kRefused;
    default:
      return DropReason::kLoss;
  }
}

}  // namespace whisper::net

#include "net/shim.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace whisper::net {

namespace {

// Strip leading/trailing spaces (impair specs come off command lines).
std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

std::optional<double> parse_double(const std::string& s) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0') return std::nullopt;
  return v;
}

/// "20ms" / "250us" / "1.5s" / bare number (milliseconds).
std::optional<Time> parse_duration(const std::string& raw) {
  const std::string s = trim(raw);
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || v < 0) return std::nullopt;
  const std::string suffix = trim(end);
  double scale = 1e3;  // default: milliseconds
  if (suffix == "us") {
    scale = 1;
  } else if (suffix == "ms" || suffix.empty()) {
    scale = 1e3;
  } else if (suffix == "s") {
    scale = 1e6;
  } else {
    return std::nullopt;
  }
  return static_cast<Time>(v * scale);
}

/// "1mbps" / "512kbps" / "80000bps" / bare number (bits per second).
std::optional<std::uint64_t> parse_rate(const std::string& raw) {
  const std::string s = trim(raw);
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || v <= 0) return std::nullopt;
  const std::string suffix = trim(end);
  double scale = 1;
  if (suffix == "kbps") {
    scale = 1e3;
  } else if (suffix == "mbps") {
    scale = 1e6;
  } else if (!(suffix.empty() || suffix == "bps")) {
    return std::nullopt;
  }
  return static_cast<std::uint64_t>(v * scale);
}

Time sample_delay(Rng& rng, const ImpairConfig& c) {
  std::int64_t v = static_cast<std::int64_t>(c.delay);
  if (c.jitter > 0) {
    v += rng.next_range(-static_cast<std::int64_t>(c.jitter),
                        static_cast<std::int64_t>(c.jitter));
  }
  return v > 0 ? static_cast<Time>(v) : 0;
}

}  // namespace

std::optional<ImpairConfig> parse_impair(const std::string& spec,
                                         std::string* err) {
  ImpairConfig out;
  std::string rest = spec;
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string item = trim(rest.substr(0, comma));
    rest = comma == std::string::npos ? "" : rest.substr(comma + 1);
    if (item.empty()) continue;
    const std::size_t colon = item.find(':');
    if (colon == std::string::npos) {
      if (err != nullptr) *err = "impair item needs key:value: " + item;
      return std::nullopt;
    }
    const std::string key = trim(item.substr(0, colon));
    const std::string val = trim(item.substr(colon + 1));
    bool ok = false;
    if (key == "loss" || key == "dup" || key == "reorder") {
      if (const auto p = parse_double(val); p && *p >= 0 && *p <= 1) {
        (key == "loss" ? out.loss : key == "dup" ? out.duplicate : out.reorder) = *p;
        ok = true;
      }
    } else if (key == "delay") {
      // "20ms±10ms" — the ± is UTF-8 (0xC2 0xB1); '~' is the ASCII spelling.
      std::string base = val, jitter;
      std::size_t sep = val.find("\xc2\xb1");
      std::size_t sep_len = 2;
      if (sep == std::string::npos) {
        sep = val.find('~');
        sep_len = 1;
      }
      if (sep != std::string::npos) {
        base = val.substr(0, sep);
        jitter = val.substr(sep + sep_len);
      }
      const auto b = parse_duration(base);
      const auto j = jitter.empty() ? std::optional<Time>(0) : parse_duration(jitter);
      if (b && j) {
        out.delay = *b;
        out.jitter = *j;
        ok = true;
      }
    } else if (key == "rate") {
      if (const auto r = parse_rate(val)) {
        out.rate_bps = *r;
        ok = true;
      }
    }
    if (!ok) {
      if (err != nullptr) *err = "bad impair item: " + item;
      return std::nullopt;
    }
  }
  return out;
}

std::string shim_event_json(const ShimEvent& ev) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "{\"t\":%llu,\"ev\":\"%s\",\"a\":\"%s\",\"b\":\"%s\","
                "\"seq\":%llu,\"delay_us\":%llu}",
                static_cast<unsigned long long>(ev.t), ev.kind,
                ev.a.str().c_str(), ev.b.str().c_str(),
                static_cast<unsigned long long>(ev.seq),
                static_cast<unsigned long long>(ev.delay));
  return buf;
}

ShimStack::ShimStack(Clock& clock, Stack& inner, ShimConfig config)
    : clock_(clock), inner_(inner), config_(std::move(config)) {}

ShimStack::~ShimStack() {
  for (auto& [ep, n] : nodes_) {
    for (auto& [port, timer] : n.mapping_timers) clock_.cancel(timer);
    for (auto& [port, ext] : n.mapping_eps) inner_.detach(ext);
  }
}

void ShimStack::set_profile(Endpoint internal_ep, ShimProfile profile) {
  profiles_[internal_ep] = profile;
}

void ShimStack::emit_event(const char* kind, Endpoint a, Endpoint b,
                           std::uint64_t seq, Time delay) {
  if (!event_sink_) return;
  event_sink_(ShimEvent{clock_.now(), kind, a, b, seq, delay});
}

ShimStack::NodeState* ShimStack::find_node(Endpoint internal_ep) {
  auto it = nodes_.find(internal_ep);
  return it == nodes_.end() ? nullptr : &it->second;
}

void ShimStack::attach(Endpoint internal_ep, Handler handler) {
  const auto pit = profiles_.find(internal_ep);
  const ShimProfile profile =
      pit == profiles_.end() ? ShimProfile{} : pit->second;
  if (profile.nat == nat::NatType::kNone && !profile.impair.any()) {
    inner_.attach(internal_ep, std::move(handler));  // pure pass-through
    return;
  }
  // Child rng stream: stable per attach order, independent of OS-assigned
  // port numbers, so same-seed runs sample identical schedules.
  NodeState n(Rng(config_.seed + 0x9e3779b97f4a7c15ull * (nodes_created_ + 1)));
  ++nodes_created_;
  n.internal = internal_ep;
  n.profile = profile;
  if (profile.nat != nat::NatType::kNone) {
    n.device = std::make_unique<nat::NatDevice>(
        profile.nat, profile.device_ip, config_.nat,
        [this] { return clock_.now(); });
    n.device->set_port_allocator([this, ip = profile.device_ip]() -> std::uint16_t {
      if (!config_.reserve) return 0;
      const auto ep = config_.reserve(ip);
      if (!ep) return 0;
      pending_alloc_ = ep;
      return ep->port;
    });
    // The internal endpoint never appears on the wire: traffic enters and
    // leaves through per-mapping sockets on the device IP. The handler
    // lives here; any inner socket reserved at internal_ep stays idle.
    n.handler = std::move(handler);
  } else {
    // Impair-only: inbound path untouched, egress shaped in send().
    inner_.attach(internal_ep, std::move(handler));
  }
  nodes_.emplace(internal_ep, std::move(n));
}

void ShimStack::detach(Endpoint internal_ep) {
  auto it = nodes_.find(internal_ep);
  if (it != nodes_.end()) {
    NodeState& n = it->second;
    for (auto& [port, timer] : n.mapping_timers) clock_.cancel(timer);
    for (auto& [port, ext] : n.mapping_eps) {
      inner_.detach(ext);
      mapping_owner_.erase(ext);
    }
    nodes_.erase(it);
  }
  inner_.detach(internal_ep);
}

bool ShimStack::attached(Endpoint internal_ep) const {
  const auto it = nodes_.find(internal_ep);
  if (it != nodes_.end() && it->second.device != nullptr) {
    return it->second.handler != nullptr;
  }
  return inner_.attached(internal_ep);
}

void ShimStack::adopt_mapping(NodeState& n, Endpoint external) {
  ++nat_mappings_created_;
  mapping_owner_[external] = n.internal;
  n.mapping_eps[external.port] = external;
  inner_.attach(external, [this, internal = n.internal](const Datagram& d) {
    on_mapping_rx(internal, d);
  });
  const auto expiry = n.device->expiry_of(external.port);
  const Time at = expiry ? *expiry : clock_.now() + config_.nat.lease;
  n.mapping_timers[external.port] = clock_.schedule_at(
      at + kMillisecond, [this, internal = n.internal, port = external.port] {
        check_mapping_expiry(internal, port);
      });
  emit_event("nat_map", external, n.internal, 0, 0);
}

void ShimStack::close_mapping(NodeState& n, std::uint16_t port) {
  const auto eit = n.mapping_eps.find(port);
  if (eit == n.mapping_eps.end()) return;
  inner_.detach(eit->second);
  mapping_owner_.erase(eit->second);
  n.mapping_eps.erase(eit);
  if (const auto tit = n.mapping_timers.find(port); tit != n.mapping_timers.end()) {
    clock_.cancel(tit->second);
    n.mapping_timers.erase(tit);
  }
}

void ShimStack::check_mapping_expiry(Endpoint internal_ep, std::uint16_t port) {
  NodeState* n = find_node(internal_ep);
  if (n == nullptr) return;
  n->mapping_timers.erase(port);
  if (const auto expiry = n->device->expiry_of(port)) {
    // Refreshed by outbound traffic since the timer was armed: re-arm.
    n->mapping_timers[port] = clock_.schedule_at(
        *expiry + kMillisecond,
        [this, internal_ep, port] { check_mapping_expiry(internal_ep, port); });
    return;
  }
  // Expired (or lazily replaced): free the rules-engine entry and close the
  // socket — inbound to this external port now dies exactly like on a real
  // device that timed out the association.
  n->device->prune();
  const auto eit = n->mapping_eps.find(port);
  const Endpoint ext = eit != n->mapping_eps.end() ? eit->second : Endpoint{};
  close_mapping(*n, port);
  ++nat_expired_;
  emit_event("nat_expire", ext, internal_ep, 0, 0);
}

void ShimStack::on_mapping_rx(Endpoint internal_ep, const Datagram& dgram) {
  NodeState* n = find_node(internal_ep);
  if (n == nullptr) return;
  const auto internal = n->device->inbound(dgram.dst.port, dgram.src);
  if (!internal) {
    ++nat_filtered_;
    emit_event("nat_filter", dgram.dst, dgram.src, 0, 0);
    return;
  }
  if (n->handler == nullptr) return;
  Datagram out = dgram;
  out.dst = *internal;
  n->handler(out);
}

ImpairDecision ShimStack::decide(NodeState& n) {
  ImpairDecision d;
  d.seq = n.seq++;
  const ImpairConfig& c = n.profile.impair;
  // Fixed sampling order per packet: the decision stream is a pure function
  // of (seed, config, send index) — the shim's determinism contract.
  if (c.loss > 0 && n.rng.next_bool(c.loss)) d.dropped = true;
  bool dup = false;
  if (c.duplicate > 0 && n.rng.next_bool(c.duplicate)) dup = true;
  if (dup) d.copies = 2;
  if (c.delay > 0 || c.jitter > 0) {
    d.delay0 = sample_delay(n.rng, c);
    if (dup) d.delay1 = sample_delay(n.rng, c);
  }
  if (c.reorder > 0 && n.rng.next_bool(c.reorder)) {
    // Hold the primary copy an extra beat so in-window packets (and the
    // duplicate) overtake it.
    d.delay0 += std::max<Time>(kMillisecond, c.delay + 4 * c.jitter);
  }
  if (config_.record_decisions) decisions_.push_back(d);
  return d;
}

bool ShimStack::send(Endpoint internal_src, Endpoint public_dst, Bytes payload,
                     Proto proto) {
  NodeState* n = find_node(internal_src);
  if (n == nullptr) {
    return inner_.send(internal_src, public_dst, std::move(payload), proto);
  }

  // NAT translation first: the packet reaches the device (creating or
  // refreshing the mapping) even when the lossy internet then eats it —
  // which is exactly what keeps registration retries able to open holes
  // under loss.
  Endpoint wire_src = internal_src;
  if (n->device != nullptr) {
    pending_alloc_.reset();
    const auto external = n->device->outbound(internal_src, public_dst);
    if (pending_alloc_) adopt_mapping(*n, *pending_alloc_);
    if (!external) return true;  // port allocation failed: died at the device
    wire_src = *external;
  }

  ImpairDecision d = decide(*n);
  const ImpairConfig& c = n->profile.impair;
  if (!d.dropped && c.rate_bps > 0) {
    // Token bucket on wall time: serialization cost queues behind earlier
    // packets; beyond the horizon the queue tail-drops. Deliberately outside
    // the recorded decision stream (it depends on arrival times).
    const Time cost =
        (static_cast<Time>(payload.size() + 32) * 8 * 1'000'000) / c.rate_bps;
    const Time now = clock_.now();
    const Time start = std::max(now, n->rate_free_at);
    if (start - now > config_.rate_horizon) {
      ++rate_dropped_;
      emit_event("rate_drop", wire_src, public_dst, d.seq, 0);
      return true;
    }
    n->rate_free_at = start + cost * d.copies;
    d.delay0 += start - now;
    d.delay1 += start - now;
  }
  if (d.dropped) {
    ++impair_dropped_;
    emit_event("loss", wire_src, public_dst, d.seq, 0);
    return true;  // emitted, then died on the (emulated) wire
  }

  for (std::size_t i = 0; i < d.copies; ++i) {
    const Time hold = i == 0 ? d.delay0 : d.delay1;
    if (i > 0) {
      ++impair_duplicated_;
      emit_event("dup", wire_src, public_dst, d.seq, hold);
    }
    if (hold == 0) {
      inner_.send(wire_src, public_dst, payload, proto);
    } else {
      ++impair_delayed_;
      clock_.schedule_after(hold, [this, wire_src, public_dst,
                                   payload = payload, proto] {
        // The mapping socket may be gone by now (lease expiry, reboot):
        // that loss is the real device's behavior too.
        inner_.send(wire_src, public_dst, std::move(payload), proto);
      });
    }
  }
  return true;
}

void ShimStack::redeliver(Endpoint internal_dst, Datagram dgram) {
  NodeState* n = find_node(internal_dst);
  if (n != nullptr && n->device != nullptr) {
    if (n->handler != nullptr) n->handler(dgram);
    return;
  }
  inner_.redeliver(internal_dst, std::move(dgram));
}

std::size_t ShimStack::nat_reboot() {
  std::size_t dropped = 0;
  for (auto& [ep, n] : nodes_) {
    if (n.device == nullptr) continue;
    const auto ports = n.device->reset();
    for (const std::uint16_t port : ports) close_mapping(n, port);
    dropped += ports.size();
    if (!ports.empty()) emit_event("nat_reboot", ep, Endpoint{}, ports.size(), 0);
  }
  if (dropped > 0) ++nat_reboots_;
  return dropped;
}

nat::NatType ShimStack::type_of(Endpoint internal_ep) const {
  const auto it = profiles_.find(internal_ep);
  return it == profiles_.end() ? nat::NatType::kNone : it->second.nat;
}

std::optional<Endpoint> ShimStack::owner_of(Endpoint external_ep) const {
  const auto it = mapping_owner_.find(external_ep);
  if (it == mapping_owner_.end()) return std::nullopt;
  return it->second;
}

std::size_t ShimStack::mappings_active() const {
  std::size_t n = 0;
  for (const auto& [ep, node] : nodes_) {
    if (node.device != nullptr) n += node.device->active_mappings();
  }
  return n;
}

}  // namespace whisper::net

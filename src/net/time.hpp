// Canonical time types for the transport SPI.
//
// `Time` is microseconds on whatever clock the active backend provides: the
// simulator's virtual clock (deterministic, starts at 0) or the UDP
// backend's monotonic wall clock (CLOCK_MONOTONIC, rebased to 0 at backend
// construction so timestamps stay small and comparable across backends).
// Protocol code never learns which one it is running on.
//
// `sim::Time`/`sim::TimerId` are aliases of these types, so all existing
// sim-era spellings remain valid.
#pragma once

#include <cstdint>

namespace whisper::net {

/// Microseconds on the active backend's clock.
using Time = std::uint64_t;

inline constexpr Time kMicrosecond = 1;
inline constexpr Time kMillisecond = 1000;
inline constexpr Time kSecond = 1'000'000;
inline constexpr Time kMinute = 60 * kSecond;

/// Handle for cancelling a scheduled timer. Encodes (generation << 32 |
/// slot); generations start at 1, so a valid id is never 0 — protocol code
/// uses 0 as a "no timer armed" sentinel. Both backends mint ids with this
/// scheme (the simulator's event heap and the UDP timer wheel share the
/// slot/generation design from PR 2).
using TimerId = std::uint64_t;

}  // namespace whisper::net

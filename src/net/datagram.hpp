// The datagram as protocol code sees it, independent of the backend that
// carried it. Moved out of sim::Network so the same struct flows through
// the deterministic simulator and the real UDP/epoll stack; sim:: keeps
// aliases for source compatibility.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "telemetry/flight.hpp"

namespace whisper::net {

/// Protocol tags for traffic accounting.
enum class Proto : std::uint8_t {
  kPss = 0,      // peer sampling gossip
  kKeys = 1,     // public key piggyback share
  kWcl = 2,      // onion-routed confidential traffic
  kPpss = 3,     // private peer sampling payloads (inside WCL accounting)
  kControl = 4,  // NAT rendezvous / hole punching control traffic
  kApp = 5,      // application traffic
  kCount = 6,
};

/// Telemetry label value for a protocol tag ("pss", "keys", ...).
const char* proto_name(Proto p);

/// A datagram as observed on the wire (addresses are *public* ones when NAT
/// devices are on the path).
///
/// `trace` is backend-side metadata only — it never serializes into
/// `payload`, so the wire bytes an attacker (or the wiretap) sees are
/// byte-identical with tracing on or off. The UDP backend carries the proto
/// tag in a 4-byte frame header (see udp.cpp) but never the trace context:
/// causal flight traces stay per-process observability, costing zero
/// protocol wire bytes on both backends.
struct Datagram {
  Endpoint src;
  Endpoint dst;
  Bytes payload;
  Proto proto = Proto::kApp;
  telemetry::TraceContext trace;
};

/// Why a packet never reached its destination handler. Labels the
/// "net.packets.dropped" counter instances.
enum class DropReason : std::uint8_t {
  kLoss = 0,          // latency model declared it lost in transit / send syscall failed
  kFilter = 1,        // destination NAT device filtered it out
  kDetach = 2,        // destination departed (no handler bound)
  kFault = 3,         // fault fabric dropped it (partition, loss episode, ...)
  kBackpressure = 4,  // transient local resource exhaustion (ENOBUFS/EAGAIN/ENOMEM)
  kRefused = 5,       // destination refused/unreachable (ICMP-driven ECONNREFUSED etc.)
  kCount = 6,
};
const char* drop_reason_name(DropReason r);

/// Classify a failed sendto() errno into the drop taxonomy. Transient
/// kernel-side pressure and ICMP-driven refusals are ordinary datagram
/// loss to the protocol stack (the WCL RTO / PSS cycles retry), but they
/// are *counted* separately so an operator can tell "my socket buffers are
/// too small" from "the peer is gone" from genuine wire loss.
DropReason classify_sendto_errno(int err);

}  // namespace whisper::net

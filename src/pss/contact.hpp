// Contact cards: how view entries describe a reachable node.
//
// In a NAT-constrained network (Nylon, §II-C) knowing a node's id is not
// enough to reach it: N-nodes are only reachable through their relay (or a
// punched hole). A ContactCard bundles identity with reachability.
#pragma once

#include <optional>

#include "common/ids.hpp"
#include "common/serialize.hpp"

namespace whisper::pss {

struct ContactCard {
  NodeId id;
  /// Where to send datagrams: the node's own public endpoint (P-node) or
  /// the public endpoint of its relay (N-node).
  Endpoint addr;
  bool is_public = false;
  /// Relay node id (nil for P-nodes).
  NodeId relay_id;

  bool operator==(const ContactCard& o) const {
    return id == o.id && addr == o.addr && is_public == o.is_public && relay_id == o.relay_id;
  }

  void serialize(Writer& w) const {
    w.node_id(id);
    w.endpoint(addr);
    w.boolean(is_public);
    w.node_id(relay_id);
  }

  static ContactCard deserialize(Reader& r) {
    ContactCard c;
    c.id = r.node_id();
    c.addr = r.endpoint();
    c.is_public = r.boolean();
    c.relay_id = r.node_id();
    return c;
  }

  /// Serialized size on the wire.
  static constexpr std::size_t kWireSize = 8 + 6 + 1 + 8;
};

}  // namespace whisper::pss

#include "pss/metrics.hpp"

#include <deque>

namespace whisper::pss {

Samples clustering_coefficients(const OverlayGraph& graph) {
  // Edge lookup set for O(1) membership tests.
  std::unordered_map<NodeId, std::unordered_set<NodeId>> out;
  out.reserve(graph.size());
  for (const auto& [node, nbrs] : graph) {
    out[node].insert(nbrs.begin(), nbrs.end());
  }
  auto connected = [&](NodeId a, NodeId b) {
    auto ita = out.find(a);
    if (ita != out.end() && ita->second.contains(b)) return true;
    auto itb = out.find(b);
    return itb != out.end() && itb->second.contains(a);
  };

  Samples coeffs;
  for (const auto& [node, nbrs] : graph) {
    if (nbrs.size() < 2) {
      coeffs.add(0.0);
      continue;
    }
    std::size_t links = 0, pairs = 0;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
        ++pairs;
        if (connected(nbrs[i], nbrs[j])) ++links;
      }
    }
    coeffs.add(static_cast<double>(links) / static_cast<double>(pairs));
  }
  return coeffs;
}

std::unordered_map<NodeId, std::int64_t> in_degrees(const OverlayGraph& graph) {
  std::unordered_map<NodeId, std::int64_t> deg;
  for (const auto& [node, nbrs] : graph) {
    deg.try_emplace(node, 0);
    for (NodeId n : nbrs) ++deg[n];
  }
  return deg;
}

double reachable_fraction(const OverlayGraph& graph, NodeId start) {
  if (graph.empty()) return 0.0;
  std::unordered_set<NodeId> visited{start};
  std::deque<NodeId> frontier{start};
  while (!frontier.empty()) {
    const NodeId cur = frontier.front();
    frontier.pop_front();
    auto it = graph.find(cur);
    if (it == graph.end()) continue;
    for (NodeId n : it->second) {
      if (visited.insert(n).second) frontier.push_back(n);
    }
  }
  std::size_t in_graph = 0;
  for (const auto& [node, nbrs] : graph) {
    (void)nbrs;
    if (visited.contains(node)) ++in_graph;
  }
  return static_cast<double>(in_graph) / static_cast<double>(graph.size());
}

}  // namespace whisper::pss

// Overlay graph quality metrics (Fig. 5): local clustering coefficient and
// in-degree distributions over the directed graph induced by the views.
#pragma once

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ids.hpp"
#include "common/stats.hpp"

namespace whisper::pss {

/// Directed overlay snapshot: node -> set of out-neighbours (its view).
using OverlayGraph = std::unordered_map<NodeId, std::vector<NodeId>>;

/// Local clustering coefficient of each node: among the pairs of its
/// out-neighbours, the fraction connected by an edge in either direction.
/// Nodes with fewer than two out-neighbours contribute 0.
Samples clustering_coefficients(const OverlayGraph& graph);

/// In-degree of every node present in the graph (as key or as target).
std::unordered_map<NodeId, std::int64_t> in_degrees(const OverlayGraph& graph);

/// Fraction of nodes reachable from `start` following out-edges.
double reachable_fraction(const OverlayGraph& graph, NodeId start);

}  // namespace whisper::pss

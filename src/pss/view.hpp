// Partial views and the gossip merge/truncation policies (§II-B, §III-B).
//
// View<Entry> is generic over the entry type so the same machinery serves
// both the system-wide PSS (entries = ContactCard + age) and the private
// PPSS views (entries additionally carry public keys and Π P-node contact
// sets). An Entry must provide:
//   NodeId id() const;
//   bool is_public() const;
//   std::uint32_t age;           (mutable field)
//
// The merge policy follows the healer strategy of Jelasity et al.: partner
// selection picks the oldest entry (tail), and after an exchange the union
// of the view and the received buffer is truncated by first *healing*
// (dropping the H oldest entries, which flushes failed/stale descriptors)
// and then evicting uniformly at random down to capacity. The random step
// is essential: truncating purely by age lets the freshest descriptors
// snowball through the network (preferential attachment — we measured
// in-degree hubs of 25x the mean and clustering an order of magnitude above
// random before adopting it).
//
// truncate_biased() adds WHISPER's Π modification (§III-B-1): the Π
// freshest P-nodes are protected from both the healing and the random
// eviction, even if the unbiased policy would discard them.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/ids.hpp"
#include "common/rng.hpp"

namespace whisper::pss {

template <typename Entry>
class View {
 public:
  explicit View(std::size_t capacity) : capacity_(capacity) {}

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const std::vector<Entry>& entries() const { return entries_; }

  bool contains(NodeId id) const {
    return std::any_of(entries_.begin(), entries_.end(),
                       [&](const Entry& e) { return e.id() == id; });
  }

  const Entry* find(NodeId id) const {
    for (const auto& e : entries_) {
      if (e.id() == id) return &e;
    }
    return nullptr;
  }

  /// Age every entry by one cycle.
  void age_all() {
    for (auto& e : entries_) ++e.age;
  }

  /// Drop entries older than `max_age` cycles (bounded-staleness guarantee:
  /// failed or departed nodes disappear from live views after a bounded
  /// time even if random eviction spared them).
  void expire_older_than(std::uint32_t max_age) {
    std::erase_if(entries_, [&](const Entry& e) { return e.age > max_age; });
  }

  /// The entry with the highest age (gossip partner selection). nullptr if
  /// empty.
  const Entry* oldest() const {
    const Entry* best = nullptr;
    for (const auto& e : entries_) {
      if (best == nullptr || e.age > best->age) best = &e;
    }
    return best;
  }

  void remove(NodeId id) {
    std::erase_if(entries_, [&](const Entry& e) { return e.id() == id; });
  }

  /// Direct insertion (bootstrap); dedupes by id keeping the younger entry.
  void insert(Entry e) {
    for (auto& cur : entries_) {
      if (cur.id() == e.id()) {
        if (e.age < cur.age) cur = std::move(e);
        return;
      }
    }
    entries_.push_back(std::move(e));
  }

  /// Random subset of up to n entries (the gossip buffer complement; the
  /// caller prepends its own fresh self-entry).
  std::vector<Entry> random_subset(std::size_t n, Rng& rng) const {
    std::vector<std::size_t> idx(entries_.size());
    for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    rng.shuffle(idx);
    std::vector<Entry> out;
    const std::size_t take = std::min(n, idx.size());
    out.reserve(take);
    for (std::size_t i = 0; i < take; ++i) out.push_back(entries_[idx[i]]);
    return out;
  }

  /// Number of oldest entries removed first during truncation (healing).
  static constexpr std::size_t kHealing = 2;

  /// Healer merge: union of current entries and `received` (dedup by id,
  /// keep the youngest), excluding `self`, then biased truncation to
  /// capacity with `pi_min_public` protected P-slots.
  void merge(const std::vector<Entry>& received, NodeId self, std::size_t pi_min_public,
             Rng& rng) {
    for (const auto& e : received) {
      if (e.id() == self) continue;
      insert(e);
    }
    truncate_biased(pi_min_public, rng);
  }

  std::size_t count_public() const {
    return static_cast<std::size_t>(std::count_if(
        entries_.begin(), entries_.end(), [](const Entry& e) { return e.is_public(); }));
  }

  /// Biased truncation (Section III-B-1): heal (drop the kHealing oldest),
  /// then evict uniformly at random down to capacity. Two biases, both
  /// inactive when pi_min_public == 0 (exact unbiased policy):
  ///  - the Π freshest P-nodes are protected from every eviction;
  ///  - P-nodes *above* the Π threshold are discarded in priority (the
  ///    paper's load-limiting secondary bias — without it, protected
  ///    entries linger in gossip buffers and P-node presence snowballs far
  ///    past Π).
  void truncate_biased(std::size_t pi_min_public, Rng& rng) {
    if (entries_.size() <= capacity_) return;

    // Youngest first (stable: ties keep insertion order).
    std::stable_sort(entries_.begin(), entries_.end(),
                     [](const Entry& a, const Entry& b) { return a.age < b.age; });

    // Mark the Π freshest P-nodes as protected.
    std::vector<char> protected_flag(entries_.size(), 0);
    std::size_t publics = 0;
    std::size_t protected_publics = 0;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (!entries_[i].is_public()) continue;
      ++publics;
      if (protected_publics < pi_min_public) {
        protected_flag[i] = 1;
        ++protected_publics;
      }
    }
    auto erase_at = [&](std::size_t i) {
      if (entries_[i].is_public()) --publics;
      entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(i));
      protected_flag.erase(protected_flag.begin() + static_cast<std::ptrdiff_t>(i));
    };
    // The load-limiting secondary bias kicks in on clear excess only:
    // protection alone makes P descriptors longer-lived and hence more
    // prevalent (the paper's Fig. 5 in-degree shift); trimming every P-node
    // above Π would instead clamp P presence below its natural share.
    auto excess_publics = [&] { return pi_min_public > 0 && publics > 2 * pi_min_public + 1; };

    // Oldest victim matching `want_public`; entries_.size() if none.
    auto oldest_victim = [&](bool only_public) {
      for (std::size_t i = entries_.size(); i-- > 0;) {
        if (protected_flag[i]) continue;
        if (only_public && !entries_[i].is_public()) continue;
        return i;
      }
      return entries_.size();
    };

    // Healing: drop the oldest entries, discarding the oldest P-nodes above
    // the excess threshold in priority.
    for (std::size_t healed = 0; healed < kHealing && entries_.size() > capacity_; ++healed) {
      std::size_t victim = excess_publics() ? oldest_victim(true) : entries_.size();
      if (victim == entries_.size()) victim = oldest_victim(false);
      if (victim == entries_.size()) return;  // everything protected
      erase_at(victim);
    }
    // Random eviction for the remainder (unbiased between classes: only the
    // healing step prefers P-nodes, so P presence settles between the
    // population share and Π + a margin rather than being clamped to Π).
    while (entries_.size() > capacity_) {
      std::vector<std::size_t> candidates;
      for (std::size_t i = 0; i < entries_.size(); ++i) {
        if (!protected_flag[i]) candidates.push_back(i);
      }
      if (candidates.empty()) return;  // everything protected
      erase_at(candidates[rng.pick_index(candidates)]);
    }
  }

 private:
  std::size_t capacity_;
  std::vector<Entry> entries_;
};

}  // namespace whisper::pss

#include "wcl/backlog.hpp"

#include <algorithm>

namespace whisper::wcl {

std::size_t ConnectionBacklog::push(CbEntry entry) {
  remove(entry.card.id);
  entries_.push_front(std::move(entry));
  std::size_t evicted = 0;
  while (entries_.size() > capacity_) {
    entries_.pop_back();
    ++evicted;
  }
  return evicted;
}

bool ConnectionBacklog::contains(NodeId id) const { return find(id) != nullptr; }

const CbEntry* ConnectionBacklog::find(NodeId id) const {
  for (const auto& e : entries_) {
    if (e.card.id == id) return &e;
  }
  return nullptr;
}

void ConnectionBacklog::remove(NodeId id) {
  std::erase_if(entries_, [&](const CbEntry& e) { return e.card.id == id; });
}

std::size_t ConnectionBacklog::count_public() const {
  return static_cast<std::size_t>(std::count_if(
      entries_.begin(), entries_.end(), [](const CbEntry& e) { return e.card.is_public; }));
}

std::vector<const CbEntry*> ConnectionBacklog::publics() const {
  std::vector<const CbEntry*> out;
  for (const auto& e : entries_) {
    if (e.card.is_public) out.push_back(&e);
  }
  return out;
}

}  // namespace whisper::wcl

// The connection backlog (CB, §III-A).
//
// A FIFO of the nodes this node recently completed gossip exchanges with —
// exactly the peers towards which a NAT-resilient route is known to be open
// (gossip is bidirectional, so both directions work). Capacity is 2c (twice
// the PSS view size): with one initiated and on average one received
// exchange per cycle, an entry stays at most c cycles — well within NAT
// lease times. The WCL picks its first mix here, and the Π freshest P-node
// entries are the helpers advertised in PPSS view entries.
#pragma once

#include <deque>
#include <optional>
#include <vector>

#include "crypto/rsa.hpp"
#include "pss/contact.hpp"

namespace whisper::wcl {

struct CbEntry {
  pss::ContactCard card;
  crypto::RsaPublicKey key;
};

class ConnectionBacklog {
 public:
  explicit ConnectionBacklog(std::size_t capacity) : capacity_(capacity) {}

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const std::deque<CbEntry>& entries() const { return entries_; }

  /// Insert at the head (most recent). An existing entry for the same node
  /// is refreshed and moved to the head; overflow evicts the tail. Returns
  /// the number of entries evicted by the overflow (telemetry).
  std::size_t push(CbEntry entry);

  bool contains(NodeId id) const;
  const CbEntry* find(NodeId id) const;
  void remove(NodeId id);

  std::size_t count_public() const;
  /// P-node entries, freshest first.
  std::vector<const CbEntry*> publics() const;

 private:
  std::size_t capacity_;
  std::deque<CbEntry> entries_;  // head = freshest
};

}  // namespace whisper::wcl

// WCL: the WHISPER Communication Layer (§III).
//
// Provides a one-way confidential channel from a source S to a destination
// D through two mixes A and B (S → A → B → D):
//  - A is drawn from S's connection backlog (a NAT-valid route is open);
//  - B is one of the Π P-node "helpers" advertised alongside D (a P-node
//    that recently gossiped with D and can therefore reach it);
//  - content is AES-encrypted with a fresh key k carried to D inside the
//    layered onion header; mixes learn only their successor.
//
// Delivery feedback travels hop-by-hop back along the same links (ACK from
// the destination, NACK from a mix that cannot forward), so relationship
// anonymity is preserved: every node only ever talks to its direct
// neighbours on the path. Unanswered attempts time out. The source retries
// with alternative mixes up to Π times (paper footnote 3), then reports
// that no alternative route exists.
#pragma once

#include <deque>
#include <functional>
#include "common/densemap.hpp"

#include "common/guard.hpp"
#include "crypto/hmac.hpp"
#include "crypto/onion.hpp"
#include "keysvc/keyservice.hpp"
#include "nylon/pss.hpp"
#include "nylon/transport.hpp"
#include "net/cpumeter.hpp"
#include "telemetry/scope.hpp"
#include "wcl/backlog.hpp"
#include "wcl/rtt.hpp"

namespace whisper::wcl {

/// A P-node helper: the next-to-last hop candidate for reaching some node.
struct Helper {
  pss::ContactCard card;
  crypto::RsaPublicKey key;

  void serialize(Writer& w) const;
  static std::optional<Helper> deserialize(Reader& r);
};

/// Everything needed to open a WCL path towards a node: its card, its
/// public key, and (for N-nodes) Π helpers. This is what PPSS view entries
/// carry (§IV-B).
struct RemotePeer {
  pss::ContactCard card;
  crypto::RsaPublicKey key;
  std::vector<Helper> helpers;

  void serialize(Writer& w) const;
  static std::optional<RemotePeer> deserialize(Reader& r);
};

enum class SendOutcome {
  kSuccessFirstTry,     // first constructed path delivered
  kSuccessAlternative,  // a retry with alternative mixes delivered
  kNoAlternative,       // all alternatives exhausted
};

struct WclConfig {
  /// Incarnation epoch of this node's process (DESIGN.md §14). Scopes the
  /// message-id space: ids are minted as
  /// (incarnation << 44) | (self << 20) | seq, so a restarted node can
  /// never re-mint ids its peers still hold in replay windows or pending
  /// mix state — the mis-ack path a naive restart would hit.
  std::uint32_t incarnation = 0;
  std::size_t pi = 3;                          // Π
  std::size_t cb_capacity = 20;                // 2c
  /// Number of mixes on a path (the paper's default is 2: S → A → B → D).
  /// f mixes tolerate f−1 colluding nodes (footnote 2); values above 2 add
  /// P-node mixes between A and B. Must be >= 1.
  std::size_t mixes = 2;
  std::size_t max_retries = 3;                 // alternatives tried after the first attempt
  /// Initial per-attempt timeout, used until an RTT sample exists for the
  /// destination. After that the adaptive RTO (SRTT + 4·RTTVAR) governs,
  /// clamped to [min_rto, max_rto], doubling per retry with deterministic
  /// jitter.
  net::Time ack_timeout = 5 * net::kSecond;
  net::Time min_rto = 200 * net::kMillisecond;
  net::Time max_rto = 30 * net::kSecond;
  net::Time pending_forward_ttl = 60 * net::kSecond;
  /// Period of the mix-state sweep evicting expired pending_forwards_
  /// entries (0 disables). Without it a mix that never sees the ACK/NACK
  /// for a forwarded onion leaks an entry per loss — unbounded growth under
  /// sustained fault injection.
  net::Time sweep_interval = 30 * net::kSecond;
  /// Encrypt-then-MAC the content body (AES-CTR + HMAC-SHA256, +32 bytes).
  /// The paper uses plain AES (its model excludes active tampering), so the
  /// default reproduces that; enable for integrity-protected deployments.
  bool authenticated_bodies = false;

  /// Deterministic processing costs charged to the virtual clock (actual
  /// wall-clock measurements still flow into the CPU meters for Table II /
  /// Fig. 7, but folding *measured* time into event ordering would make
  /// runs irreproducible). Defaults calibrated from bench_crypto_micro at
  /// 512-bit keys.
  net::Time virtual_rsa_seal_cost = 15;      // us per onion layer sealed
  net::Time virtual_rsa_peel_cost = 160;     // us per layer peeled
  net::Time virtual_aes_cost_per_kb = 30;    // us per KB of body

  // --- Hostile-input defenses (defaults generous enough that honest
  // traffic never trips them). ---
  /// Hard cap on mix forward-state entries; overflow evicts the oldest
  /// (FIFO — entries expire in insertion order, so FIFO == earliest-expiry).
  std::size_t max_pending_forwards = 4096;
  /// Hard cap on per-destination RTT estimators (FIFO eviction).
  std::size_t max_rtt_peers = 512;
  /// Onion-header replay window: fingerprints of recently seen headers;
  /// a repeat is dropped without peeling (0 disables).
  std::size_t replay_window = 1024;
  /// Per-peer inbound WCL frame budget (frames/sec; 0 disables).
  double peer_rate_per_sec = 200;
  double peer_rate_burst = 400;
  /// Consecutive malformed frames from one peer before it is reported to
  /// the PSS suspicion/quarantine path.
  int decode_fail_threshold = 3;
  std::size_t guard_max_peers = 1024;
};

/// Wire cap on helpers per RemotePeer descriptor (honest peers ship Π ≈ 3).
inline constexpr std::size_t kMaxWireHelpers = 16;

class Wcl {
 public:
  Wcl(net::Clock& clock, nylon::Transport& transport, keysvc::KeyService& keys,
      nylon::NylonPss& pss, net::CpuMeter& cpu, WclConfig config, Rng rng,
      telemetry::Scope telemetry = {});
  ~Wcl();

  Wcl(const Wcl&) = delete;
  Wcl& operator=(const Wcl&) = delete;

  /// Feed a completed gossip exchange (wired to NylonPss::on_exchange):
  /// inserts the partner into the CB and restores the Π P-node invariant.
  void on_gossip_exchange(const pss::ContactCard& partner);

  /// Incarnation-bump proof-of-life from the transport: the peer restarted,
  /// so its RTT history describes a dead process (and its old socket). Drop
  /// the estimator; the next exchange re-seeds it.
  void note_peer_restart(NodeId peer);

  using SendCallback = std::function<void(SendOutcome)>;

  /// Send `payload` confidentially to `dest`. Returns false if no path can
  /// even be attempted (empty CB / no helpers). The callback fires once
  /// with the final outcome.
  bool send_confidential(const RemotePeer& dest, BytesView payload, SendCallback callback = {});

  /// Upcall with the decrypted payload when this node is a destination.
  std::function<void(Bytes payload)> on_deliver;

  /// Observation hook: fires once per send_confidential with the final
  /// outcome and the destination. Benches use it to apply the paper's
  /// accounting (a path that fails because the destination itself is dead
  /// is a destination failure, not a WCL route failure — footnote 3).
  std::function<void(NodeId dest, SendOutcome outcome)> outcome_probe;

  const ConnectionBacklog& backlog() const { return cb_; }

  /// This node's own helpers: the Π freshest P-nodes of the CB, shipped in
  /// PPSS entries describing this node. Empty helpers are normal for
  /// P-nodes (any known P-node can serve as their next-to-last hop).
  std::vector<Helper> own_helpers() const;

  /// The RemotePeer descriptor other nodes can use to reach this node.
  RemotePeer self_peer() const;

  struct Stats {
    std::uint64_t first_try_success = 0;
    std::uint64_t alternative_success = 0;
    std::uint64_t no_alternative = 0;
    std::uint64_t onions_forwarded = 0;
    std::uint64_t onions_delivered = 0;
    std::uint64_t forward_failures = 0;
    std::uint64_t total_attempts = 0;
    /// Authenticated bodies whose MAC failed (tampering detected).
    std::uint64_t bodies_rejected = 0;
    /// Mix-state entries evicted by the sweep (ACK/NACK never came back).
    std::uint64_t forwards_expired = 0;
    /// Malformed inbound frames rejected (typed DecodeError taxonomy).
    std::uint64_t decode_rejects = 0;
    /// Frames dropped by the per-peer token bucket.
    std::uint64_t rate_limited = 0;
    /// Onions dropped by the header replay window.
    std::uint64_t replays_suppressed = 0;
    /// Mix-state entries evicted by the hard cap (not the TTL sweep).
    std::uint64_t forwards_evicted = 0;
    /// Backlog entries evicted by capacity overflow.
    std::uint64_t backlog_evicted = 0;
    /// Peers reported to the PSS quarantine path for repeated garbage.
    std::uint64_t misbehavior_reports = 0;
  };
  const Stats& stats() const { return stats_; }

  /// Per-destination RTT state (empty estimator if none yet).
  const RttEstimator& rtt_of(NodeId dest) const;
  /// The timeout the next first attempt towards `dest` would use.
  net::Time current_rto(NodeId dest) const;
  std::size_t pending_forward_count() const { return pending_forwards_.size(); }

 private:
  struct PendingSend {
    RemotePeer dest;
    Bytes payload;
    SendCallback callback;
    std::size_t attempts = 0;
    DenseSet<NodeId> tried_helpers;
    net::TimerId timeout_timer = 0;
    /// When the latest attempt's onion hit the wire (for RTT sampling).
    net::Time sent_at = 0;
    /// Causal trace of this message (invalid while tracing is off). `hop`
    /// stays 0 at the source; `attempt` tracks the current try.
    telemetry::TraceContext trace;
    /// Virtual time of send_confidential() — the flight record's RTT is
    /// measured from here so decomposition includes the first build.
    net::Time trace_begin = 0;
  };

  void handle_message(NodeId from, BytesView payload);
  void handle_onion(NodeId from, Reader& r);
  /// Count a malformed frame from `from` (counter + flight drop + guard
  /// scoring; threshold crossings are reported to the PSS quarantine path).
  void reject_frame(NodeId from, Reader& r);
  /// Enforce the pending_forwards_ hard cap before an insert.
  void evict_forwards();
  void handle_ack(std::uint64_t msg_id, bool success);
  bool attempt(std::uint64_t msg_id, PendingSend& pending);
  void finish(std::uint64_t msg_id, SendOutcome outcome);
  void ensure_pi();
  void send_signal(const pss::ContactCard& to, bool success, std::uint64_t msg_id);
  /// Timeout for the next attempt of `pending`: adaptive RTO doubled per
  /// prior attempt, plus deterministic jitter.
  net::Time attempt_timeout(const PendingSend& pending);
  void sweep();

  net::Clock& clock_;
  nylon::Transport& transport_;
  keysvc::KeyService& keys_;
  nylon::NylonPss& pss_;
  net::CpuMeter& cpu_;
  WclConfig config_;
  Rng rng_;
  crypto::Drbg drbg_;
  ConnectionBacklog cb_;

  DenseMap<std::uint64_t, PendingSend> pending_sends_;
  std::uint64_t next_msg_id_;

  // Mix state: where an in-flight onion came from, for ACK/NACK backtracking.
  struct PendingForward {
    pss::ContactCard predecessor;
    net::Time expires = 0;
  };
  DenseMap<std::uint64_t, PendingForward> pending_forwards_;
  /// Insertion order of pending_forwards_ (expiry is monotone in insertion
  /// time, so the front is always the earliest-expiring live entry). May
  /// hold ids already acked away — eviction skips those lazily, and the
  /// sweep compacts it.
  std::deque<std::uint64_t> forward_order_;
  net::TimerId sweep_timer_ = 0;

  // Per-destination RTT estimators, fed by first-attempt ACK round-trips.
  // Capped: peer-driven (one estimator per destination ever talked to).
  DenseMap<NodeId, RttEstimator> rtt_;
  std::deque<NodeId> rtt_order_;

  // Per-peer admission + decode scoring, and the onion replay window.
  PeerGuard guard_;
  ReplayWindow replay_window_;

  // P-nodes currently being fetched to restore the Π invariant.
  DenseSet<NodeId> pnode_fetches_;

  Stats stats_;

  telemetry::Scope tel_;
  telemetry::Counter& m_first_try_;
  telemetry::Counter& m_alternative_;
  telemetry::Counter& m_no_alternative_;
  telemetry::Counter& m_forwarded_;
  telemetry::Counter& m_delivered_;
  telemetry::Counter& m_forward_failures_;
  telemetry::Counter& m_forwards_expired_;
  telemetry::Counter& m_decode_rejects_;
  telemetry::Counter& m_rate_limited_;
  telemetry::Counter& m_replays_;
  telemetry::Counter& m_forwards_evicted_;
  telemetry::Counter& m_backlog_evicted_;
  telemetry::Gauge& m_backlog_depth_;
  telemetry::Gauge& m_srtt_;
};

}  // namespace whisper::wcl

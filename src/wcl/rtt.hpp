// Jacobson/Karels round-trip estimation (RFC 6298 constants).
//
// The seed's WCL used one fixed ack_timeout for every destination. Under
// fault injection (delay spikes, loss episodes) that is the worst of both
// worlds: too short for far/slow paths (spurious retries burn the Π
// alternatives) and too long for near paths (a lost onion stalls the send
// for seconds). Each source therefore tracks SRTT/RTTVAR per destination
// from end-to-end ACK round-trips and times out at RTO = SRTT + 4·RTTVAR,
// doubled per retry (exponential backoff). Karn's algorithm applies: only
// first-attempt round-trips are sampled, since a retried send's ACK cannot
// be attributed to one attempt.
#pragma once

#include <algorithm>
#include <cstdint>

#include "net/spi.hpp"

namespace whisper::wcl {

class RttEstimator {
 public:
  /// Feed one round-trip measurement.
  void sample(net::Time rtt) {
    if (!has_sample_) {
      // RFC 6298 §2.2: first measurement.
      srtt_ = rtt;
      rttvar_ = rtt / 2;
      has_sample_ = true;
      return;
    }
    // §2.3 with alpha = 1/8, beta = 1/4, in integer microseconds.
    const net::Time err = srtt_ > rtt ? srtt_ - rtt : rtt - srtt_;
    rttvar_ = (3 * rttvar_ + err) / 4;
    srtt_ = (7 * srtt_ + rtt) / 8;
  }

  bool has_sample() const { return has_sample_; }
  net::Time srtt() const { return srtt_; }
  net::Time rttvar() const { return rttvar_; }

  /// Retransmission timeout, clamped to [min_rto, max_rto]. Before any
  /// sample exists, returns `initial`.
  net::Time rto(net::Time initial, net::Time min_rto, net::Time max_rto) const {
    if (!has_sample_) return initial;
    const net::Time raw = srtt_ + std::max<net::Time>(4 * rttvar_, net::kMillisecond);
    return std::clamp(raw, min_rto, max_rto);
  }

 private:
  bool has_sample_ = false;
  net::Time srtt_ = 0;
  net::Time rttvar_ = 0;
};

}  // namespace whisper::wcl

#include "wcl/wcl.hpp"

#include <algorithm>

#include "crypto/sha256.hpp"

namespace whisper::wcl {

namespace {
constexpr std::uint8_t kKindOnion = 1;
constexpr std::uint8_t kKindAck = 2;
constexpr std::uint8_t kKindNack = 3;
}  // namespace

void Helper::serialize(Writer& w) const {
  card.serialize(w);
  w.bytes(key.serialize());
}

std::optional<Helper> Helper::deserialize(Reader& r) {
  Helper h;
  h.card = pss::ContactCard::deserialize(r);
  auto key = crypto::RsaPublicKey::deserialize(r.bytes(crypto::kMaxKeyWireBytes));
  if (!r.ok() || !key) {
    if (r.ok()) r.fail(DecodeError::kBadValue);
    return std::nullopt;
  }
  h.key = *key;
  return h;
}

void RemotePeer::serialize(Writer& w) const {
  card.serialize(w);
  w.bytes(key.serialize());
  w.u8(static_cast<std::uint8_t>(helpers.size()));
  for (const auto& h : helpers) h.serialize(w);
}

std::optional<RemotePeer> RemotePeer::deserialize(Reader& r) {
  RemotePeer p;
  p.card = pss::ContactCard::deserialize(r);
  auto key = crypto::RsaPublicKey::deserialize(r.bytes(crypto::kMaxKeyWireBytes));
  if (!r.ok() || !key) {
    if (r.ok()) r.fail(DecodeError::kBadValue);
    return std::nullopt;
  }
  p.key = *key;
  const std::uint8_t n = r.u8();
  if (!r.ok()) return std::nullopt;
  if (n > kMaxWireHelpers) {
    r.fail(DecodeError::kOversized);
    return std::nullopt;
  }
  for (std::uint8_t i = 0; i < n; ++i) {
    auto h = Helper::deserialize(r);
    if (!h) return std::nullopt;
    p.helpers.push_back(std::move(*h));
  }
  return p;
}

Wcl::Wcl(net::Clock& clock, nylon::Transport& transport, keysvc::KeyService& keys,
         nylon::NylonPss& pss, net::CpuMeter& cpu, WclConfig config, Rng rng,
         telemetry::Scope telemetry)
    : clock_(clock), transport_(transport), keys_(keys), pss_(pss), cpu_(cpu), config_(config),
      rng_(rng), drbg_(rng_.next_u64()), cb_(config.cb_capacity),
      next_msg_id_((static_cast<std::uint64_t>(config.incarnation) << 44) |
                   ((transport.self().value << 20) & ((1ull << 44) - 1))),
      tel_(telemetry),
      m_first_try_(tel_.counter("wcl.sends.first_try")),
      m_alternative_(tel_.counter("wcl.sends.alternative")),
      m_no_alternative_(tel_.counter("wcl.sends.no_alternative")),
      m_forwarded_(tel_.counter("wcl.onions.forwarded")),
      m_delivered_(tel_.counter("wcl.onions.delivered")),
      m_forward_failures_(tel_.counter("wcl.forward.failures")),
      m_forwards_expired_(tel_.counter("wcl.forwards.expired")),
      m_decode_rejects_(tel_.counter("wcl.decode.rejects")),
      m_rate_limited_(tel_.counter("wcl.rate.limited")),
      m_replays_(tel_.counter("wcl.replay.suppressed")),
      m_forwards_evicted_(tel_.counter("wcl.forwards.evicted")),
      m_backlog_evicted_(tel_.counter("wcl.backlog.evicted")),
      m_backlog_depth_(tel_.gauge("wcl.backlog.depth", {{"node", tel_.node_label()}})),
      m_srtt_(tel_.gauge("wcl.rtt.srtt_us", {{"node", tel_.node_label()}})) {
  PeerGuardConfig gc;
  gc.rate_per_sec = config_.peer_rate_per_sec;
  gc.burst = config_.peer_rate_burst;
  gc.decode_fail_threshold = config_.decode_fail_threshold;
  gc.max_peers = config_.guard_max_peers;
  guard_ = PeerGuard(gc);
  replay_window_ = ReplayWindow(config_.replay_window);
  transport_.register_handler(nylon::kTagWcl,
                              [this](NodeId from, BytesView p) { handle_message(from, p); });
  if (config_.sweep_interval > 0) {
    sweep_timer_ = clock_.schedule_after(config_.sweep_interval, [this] { sweep(); });
  }
}

Wcl::~Wcl() {
  for (auto&& [id, pending] : pending_sends_) {
    if (pending.timeout_timer != 0) clock_.cancel(pending.timeout_timer);
  }
  if (sweep_timer_ != 0) clock_.cancel(sweep_timer_);
}

void Wcl::sweep() {
  const net::Time now = clock_.now();
  for (auto it = pending_forwards_.begin(); it != pending_forwards_.end();) {
    if (it->second.expires <= now) {
      it = pending_forwards_.erase(it);
      ++stats_.forwards_expired;
      m_forwards_expired_.add(1);
    } else {
      ++it;
    }
  }
  // Compact the insertion-order index: drop ids whose entries were acked
  // away or expired, so the deque cannot outgrow the map.
  std::erase_if(forward_order_,
                [&](std::uint64_t id) { return pending_forwards_.count(id) == 0; });
  sweep_timer_ = clock_.schedule_after(config_.sweep_interval, [this] { sweep(); });
}

void Wcl::evict_forwards() {
  while (pending_forwards_.size() >= config_.max_pending_forwards &&
         !forward_order_.empty()) {
    const std::uint64_t victim = forward_order_.front();
    forward_order_.pop_front();
    if (pending_forwards_.erase(victim) != 0) {
      ++stats_.forwards_evicted;
      m_forwards_evicted_.add(1);
    }
  }
}

void Wcl::reject_frame(NodeId from, Reader& r) {
  DecodeError err = r.reject_reason();
  if (err == DecodeError::kNone) err = DecodeError::kBadValue;
  ++stats_.decode_rejects;
  tel_.drop_frame(m_decode_rejects_, clock_.now(),
                  std::string("decode:") + decode_error_name(err));
  if (guard_.note_decode_failure(from, clock_.now())) {
    ++stats_.misbehavior_reports;
    pss_.report_misbehavior(from);
  }
}

const RttEstimator& Wcl::rtt_of(NodeId dest) const {
  static const RttEstimator kEmpty{};
  auto it = rtt_.find(dest);
  return it == rtt_.end() ? kEmpty : it->second;
}

void Wcl::note_peer_restart(NodeId peer) {
  // rtt_order_ keeps the id; eviction skips entries already erased.
  rtt_.erase(peer);
}

net::Time Wcl::current_rto(NodeId dest) const {
  return rtt_of(dest).rto(config_.ack_timeout, config_.min_rto, config_.max_rto);
}

net::Time Wcl::attempt_timeout(const PendingSend& pending) {
  const net::Time base = current_rto(pending.dest.card.id);
  // Exponential backoff across this send's attempts, capped so the shift
  // cannot overflow and the wait stays within max_rto.
  const std::size_t backoffs = std::min<std::size_t>(pending.attempts, 16);
  net::Time timeout = base;
  for (std::size_t i = 1; i < backoffs && timeout < config_.max_rto; ++i) timeout *= 2;
  timeout = std::min(timeout, config_.max_rto);
  // Deterministic jitter (seeded rng) de-synchronises retry storms after a
  // partition heals.
  return timeout + rng_.next_below(timeout / 4 + 1);
}

void Wcl::on_gossip_exchange(const pss::ContactCard& partner) {
  auto key = keys_.key_of(partner.id);
  if (!key) return;  // key not piggybacked yet; the next exchange will carry it
  const std::size_t evicted = cb_.push(CbEntry{partner, *key});
  if (evicted > 0) {
    stats_.backlog_evicted += evicted;
    m_backlog_evicted_.add(static_cast<std::uint64_t>(evicted));
  }
  m_backlog_depth_.set(static_cast<double>(cb_.size()));
  ensure_pi();
}

void Wcl::ensure_pi() {
  if (cb_.count_public() + pnode_fetches_.size() >= config_.pi) return;
  // Pull fresh P-nodes from the PSS view into the CB, opening a path to
  // them by way of the key request/response exchange (§III-A).
  for (const auto& entry : pss_.view().entries()) {
    if (cb_.count_public() + pnode_fetches_.size() >= config_.pi) break;
    if (!entry.is_public()) continue;
    if (cb_.contains(entry.card.id) || pnode_fetches_.contains(entry.card.id)) continue;
    const pss::ContactCard card = entry.card;
    pnode_fetches_.insert(card.id);
    keys_.request_key(card, [this, card](std::optional<crypto::RsaPublicKey> key) {
      pnode_fetches_.erase(card.id);
      if (key) {
        const std::size_t evicted = cb_.push(CbEntry{card, *key});
        if (evicted > 0) {
          stats_.backlog_evicted += evicted;
          m_backlog_evicted_.add(static_cast<std::uint64_t>(evicted));
        }
        m_backlog_depth_.set(static_cast<double>(cb_.size()));
      } else {
        ensure_pi();  // try another candidate
      }
    });
  }
}

std::vector<Helper> Wcl::own_helpers() const {
  std::vector<Helper> out;
  for (const CbEntry* e : cb_.publics()) {
    if (out.size() >= config_.pi) break;
    out.push_back(Helper{e->card, e->key});
  }
  return out;
}

RemotePeer Wcl::self_peer() const {
  RemotePeer peer;
  peer.card = transport_.self_card();
  peer.key = keys_.own_public();
  peer.helpers = own_helpers();
  return peer;
}

bool Wcl::send_confidential(const RemotePeer& dest, BytesView payload, SendCallback callback) {
  if (dest.card.id == transport_.self()) return false;
  const std::uint64_t msg_id = next_msg_id_++;
  PendingSend pending;
  pending.dest = dest;
  pending.payload.assign(payload.begin(), payload.end());
  pending.callback = std::move(callback);
  if (telemetry::FlightRecorder* fr = tel_.flight(); fr != nullptr && fr->enabled()) {
    // Adopt the ambient root (a PPSS exchange or T-Chord lookup this message
    // serves); 0 when the message is itself the top-level operation.
    pending.trace.root = fr->context().root;
    pending.trace.trace_id = fr->new_trace(telemetry::TraceLayer::kWcl,
                                           transport_.self().value, pending.trace.root,
                                           dest.card.id.value);
    pending.trace.layer = telemetry::TraceLayer::kWcl;
    pending.trace_begin = clock_.now();
  }
  auto [it, inserted] = pending_sends_.emplace(msg_id, std::move(pending));
  if (!attempt(msg_id, it->second)) {
    // Not a single path could be constructed.
    auto cb = std::move(it->second.callback);
    const NodeId dest_id = it->second.dest.card.id;
    if (telemetry::FlightRecorder* fr = tel_.flight();
        fr != nullptr && fr->enabled() && it->second.trace.valid()) {
      fr->end(it->second.trace.trace_id, transport_.self().value, clock_.now(), "no_path",
              static_cast<std::uint16_t>(it->second.attempts), 0);
    }
    pending_sends_.erase(it);
    ++stats_.no_alternative;
    m_no_alternative_.add(1);
    tel_.instant("wcl.send.no_path", "wcl", clock_.now());
    if (outcome_probe) outcome_probe(dest_id, SendOutcome::kNoAlternative);
    if (cb) cb(SendOutcome::kNoAlternative);
    return false;
  }
  return true;
}

bool Wcl::attempt(std::uint64_t msg_id, PendingSend& pending) {
  const NodeId self = transport_.self();
  const RemotePeer& dest = pending.dest;

  // First mix A: a random CB entry distinct from the destination and from
  // the helper we will pick.
  std::vector<const CbEntry*> a_candidates;
  for (const auto& e : cb_.entries()) {
    if (e.card.id == dest.card.id || e.card.id == self) continue;
    a_candidates.push_back(&e);
  }
  if (a_candidates.empty()) return false;

  // Second mix B: an untried helper of the destination; for P-node
  // destinations without helpers, any P-node from our CB works (§IV-B).
  std::vector<Helper> b_candidates;
  for (const auto& h : dest.helpers) {
    if (!h.card.is_public) continue;
    if (h.card.id == dest.card.id || h.card.id == self) continue;
    if (pending.tried_helpers.contains(h.card.id)) continue;
    b_candidates.push_back(h);
  }
  if (b_candidates.empty() && dest.card.is_public) {
    for (const CbEntry* e : cb_.publics()) {
      if (e->card.id == dest.card.id || e->card.id == self) continue;
      if (pending.tried_helpers.contains(e->card.id)) continue;
      b_candidates.push_back(Helper{e->card, e->key});
    }
  }
  if (b_candidates.empty()) return false;

  const Helper b = b_candidates[rng_.pick_index(b_candidates)];
  pending.tried_helpers.insert(b.card.id);

  // A must differ from B.
  std::vector<const CbEntry*> a_filtered;
  for (const CbEntry* e : a_candidates) {
    if (e->card.id != b.card.id) a_filtered.push_back(e);
  }
  if (a_filtered.empty()) return false;
  const CbEntry a = *a_filtered[rng_.pick_index(a_filtered)];

  ++pending.attempts;
  ++stats_.total_attempts;
  telemetry::FlightRecorder* fr = tel_.flight();
  const bool traced = fr != nullptr && fr->enabled() && pending.trace.valid();
  if (traced) {
    pending.trace.attempt = static_cast<std::uint16_t>(pending.attempts);
    fr->retry(pending.trace.trace_id, self.value, clock_.now(), pending.trace.attempt);
  }

  // Build the onion S -> A [-> M...] -> B -> D. Mixes after A must be
  // P-nodes (reachable without setup) and get explicit address hints; D's
  // hint is its public address when it has one, nil otherwise (B then
  // resolves D from its own backlog / relay / punched-route state).
  std::vector<crypto::OnionHop> path;
  // With a single mix the helper B is the whole path (it is the only node
  // guaranteed to reach D); anonymity towards B is forfeited.
  if (config_.mixes >= 2) {
    path.push_back(crypto::OnionHop{a.card.id, a.key, Endpoint{}});
  }
  if (config_.mixes > 2) {
    // Middle mixes: distinct P-nodes from our CB (collusion hardening,
    // paper footnote 2: f mixes tolerate f-1 colluders).
    std::vector<const CbEntry*> middle_pool;
    for (const CbEntry* e : cb_.publics()) {
      if (e->card.id == dest.card.id || e->card.id == self) continue;
      if (e->card.id == a.card.id || e->card.id == b.card.id) continue;
      middle_pool.push_back(e);
    }
    rng_.shuffle(middle_pool);
    for (std::size_t m = 0; m + 2 < config_.mixes && m < middle_pool.size(); ++m) {
      path.push_back(
          crypto::OnionHop{middle_pool[m]->card.id, middle_pool[m]->key,
                           middle_pool[m]->card.addr});
    }
  }
  path.push_back(crypto::OnionHop{b.card.id, b.key, b.card.addr});
  const Endpoint dest_hint = dest.card.is_public ? dest.card.addr : Endpoint{};
  path.push_back(crypto::OnionHop{dest.card.id, dest.key, dest_hint});

  const crypto::OnionKeys keys = crypto::onion_fresh_keys(drbg_);
  crypto::OnionPacket packet;
  // Deterministic virtual processing cost (measured wall time is recorded
  // separately by the CPU meter and must not perturb event ordering).
  const net::Time crypto_time =
      config_.virtual_rsa_seal_cost * path.size() +
      config_.virtual_aes_cost_per_kb * (pending.payload.size() / 1024 + 1);
  cpu_.charge(net::CpuCategory::kAes, [&] {
    // One cleartext mode byte tells the destination how to open the body.
    if (config_.authenticated_bodies) {
      packet.body = crypto::seal_authenticated(keys.k, keys.iv, pending.payload);
      packet.body.insert(packet.body.begin(), 1);
    } else {
      packet.body = crypto::onion_crypt_body(keys, pending.payload);
      packet.body.insert(packet.body.begin(), 0);
    }
  });
  cpu_.charge(net::CpuCategory::kRsaEncrypt, [&] {
    packet.header = crypto::onion_build_header(path, keys, drbg_);
  });
  // The build occupies the virtual clock for `crypto_time`; emit the span
  // with that charged duration (RAII would see zero virtual elapsed time).
  tel_.complete("wcl.onion.build", "wcl", clock_.now(), crypto_time,
                {{"hops", std::to_string(path.size())}});
  if (traced) fr->crypto(pending.trace, self.value, clock_.now(), crypto_time, "build");

  Writer w;
  w.u8(kKindOnion);
  w.u64(msg_id);
  transport_.self_card().serialize(w);
  w.raw(packet.serialize());
  // Charge the measured crypto time to the virtual clock: the packet leaves
  // only after the onion has been built. The deferred lambda re-arms this
  // message's trace context so the network stamps the outbound datagram.
  const pss::ContactCard first_hop = config_.mixes >= 2 ? a.card : b.card;
  clock_.schedule_after(crypto_time,
                      [this, card = first_hop, data = std::move(w).take(),
                       ctx = traced ? pending.trace : telemetry::TraceContext{}] {
                        telemetry::ScopedTraceContext guard(tel_.flight(), ctx);
                        transport_.send(card, nylon::kTagWcl, data, net::Proto::kWcl);
                      });

  pending.sent_at = clock_.now() + crypto_time;
  if (pending.timeout_timer != 0) clock_.cancel(pending.timeout_timer);
  pending.timeout_timer =
      clock_.schedule_after(crypto_time + attempt_timeout(pending), [this, msg_id] {
        if (telemetry::FlightRecorder* rec = tel_.flight();
            rec != nullptr && rec->enabled()) {
          if (auto it = pending_sends_.find(msg_id);
              it != pending_sends_.end() && it->second.trace.valid()) {
            rec->timeout(it->second.trace.trace_id, transport_.self().value, clock_.now(),
                         static_cast<std::uint16_t>(it->second.attempts));
          }
        }
        handle_ack(msg_id, /*success=*/false);
      });
  return true;
}

void Wcl::finish(std::uint64_t msg_id, SendOutcome outcome) {
  auto it = pending_sends_.find(msg_id);
  if (it == pending_sends_.end()) return;
  if (it->second.timeout_timer != 0) clock_.cancel(it->second.timeout_timer);
  auto cb = std::move(it->second.callback);
  const NodeId dest = it->second.dest.card.id;
  if (telemetry::FlightRecorder* fr = tel_.flight();
      fr != nullptr && fr->enabled() && it->second.trace.valid()) {
    const bool ok = outcome != SendOutcome::kNoAlternative;
    const std::uint64_t rtt =
        ok && clock_.now() >= it->second.trace_begin ? clock_.now() - it->second.trace_begin : 0;
    fr->end(it->second.trace.trace_id, transport_.self().value, clock_.now(),
            ok ? "delivered" : "no_route",
            static_cast<std::uint16_t>(it->second.attempts), rtt);
  }
  pending_sends_.erase(it);
  if (outcome_probe) outcome_probe(dest, outcome);
  switch (outcome) {
    case SendOutcome::kSuccessFirstTry:
      ++stats_.first_try_success;
      m_first_try_.add(1);
      break;
    case SendOutcome::kSuccessAlternative:
      ++stats_.alternative_success;
      m_alternative_.add(1);
      break;
    case SendOutcome::kNoAlternative:
      ++stats_.no_alternative;
      m_no_alternative_.add(1);
      break;
  }
  if (cb) cb(outcome);
}

void Wcl::handle_ack(std::uint64_t msg_id, bool success) {
  auto it = pending_sends_.find(msg_id);
  if (it == pending_sends_.end()) return;
  PendingSend& pending = it->second;
  if (success) {
    // Karn's algorithm: only unambiguous (first-attempt) round-trips feed
    // the estimator — a retried send's ACK could belong to any attempt.
    if (pending.attempts == 1 && pending.sent_at != 0 && clock_.now() >= pending.sent_at) {
      const NodeId dest = pending.dest.card.id;
      if (rtt_.count(dest) == 0) {
        // Estimators are per-destination state: cap them, evicting the
        // oldest-tracked destination (entries are never erased elsewhere,
        // so the FIFO front is always live).
        while (rtt_.size() >= config_.max_rtt_peers && !rtt_order_.empty()) {
          rtt_.erase(rtt_order_.front());
          rtt_order_.pop_front();
        }
        rtt_order_.push_back(dest);
      }
      RttEstimator& est = rtt_[dest];
      est.sample(clock_.now() - pending.sent_at);
      m_srtt_.set(static_cast<double>(est.srtt()));
    }
    finish(msg_id, pending.attempts <= 1 ? SendOutcome::kSuccessFirstTry
                                         : SendOutcome::kSuccessAlternative);
    return;
  }
  // Failed attempt: retry with an alternative path, up to Π alternatives.
  if (pending.attempts > config_.max_retries || !attempt(msg_id, pending)) {
    finish(msg_id, SendOutcome::kNoAlternative);
  }
}

void Wcl::send_signal(const pss::ContactCard& to, bool success, std::uint64_t msg_id) {
  Writer w;
  w.u8(success ? kKindAck : kKindNack);
  w.u64(msg_id);
  transport_.send(to, nylon::kTagWcl, w.data(), net::Proto::kWcl);
}

void Wcl::handle_message(NodeId from, BytesView payload) {
  if (!guard_.admit(from, clock_.now())) {
    ++stats_.rate_limited;
    tel_.drop_frame(m_rate_limited_, clock_.now(), "ratelimit");
    return;
  }
  Reader r(payload);
  const std::uint8_t kind = r.u8();
  if (!r.ok() || kind < kKindOnion || kind > kKindNack) {
    if (r.ok()) r.fail(DecodeError::kBadValue);
    reject_frame(from, r);
    return;
  }
  if (kind == kKindOnion) {
    handle_onion(from, r);
    return;
  }
  // ACK/NACK: either meant for one of our sends, or backtracking through us.
  const std::uint64_t msg_id = r.u64();
  if (!r.expect_done()) {
    reject_frame(from, r);
    return;
  }
  guard_.note_ok(from);
  if (auto fw = pending_forwards_.find(msg_id); fw != pending_forwards_.end()) {
    if (fw->second.expires > clock_.now()) {
      send_signal(fw->second.predecessor, kind == kKindAck, msg_id);
    }
    pending_forwards_.erase(fw);
    return;
  }
  if (telemetry::FlightRecorder* fr = tel_.flight(); fr != nullptr && fr->enabled()) {
    if (auto ps = pending_sends_.find(msg_id);
        ps != pending_sends_.end() && ps->second.trace.valid()) {
      fr->ack(ps->second.trace.trace_id, transport_.self().value, clock_.now(),
              kind == kKindAck);
    }
  }
  handle_ack(msg_id, kind == kKindAck);
  (void)from;
}

void Wcl::handle_onion(NodeId from, Reader& r) {
  const std::uint64_t msg_id = r.u64();
  const pss::ContactCard predecessor = pss::ContactCard::deserialize(r);
  auto packet = crypto::OnionPacket::deserialize(r.rest());
  if (!r.ok() || !packet || predecessor.id != from) {
    if (r.ok()) r.fail(DecodeError::kBadValue);
    reject_frame(from, r);
    return;
  }
  guard_.note_ok(from);

  // Replay window: a header we have already seen (a captured onion
  // re-injected by a misbehaving peer, or a network duplicate) is dropped
  // without peeling. Retries always carry a freshly built header, so this
  // never suppresses a legitimate attempt.
  if (config_.replay_window > 0) {
    const std::uint64_t fp = crypto::fingerprint64(packet->header);
    if (replay_window_.seen_or_insert(fp)) {
      ++stats_.replays_suppressed;
      tel_.drop_frame(m_replays_, clock_.now(), "replay");
      return;
    }
  }

  std::optional<crypto::OnionPeel> peel;
  net::Time crypto_time = config_.virtual_rsa_peel_cost;
  cpu_.charge(net::CpuCategory::kRsaDecrypt, [&] {
    peel = crypto::onion_peel_header(keys_.own_pair(), *packet);
  });
  if (!peel) {
    // Not addressed to us / corrupt: report failure so the source retries.
    send_signal(predecessor, /*success=*/false, msg_id);
    return;
  }

  if (peel->is_destination) {
    if (packet->body.empty()) {
      send_signal(predecessor, /*success=*/false, msg_id);
      return;
    }
    const std::uint8_t mode = packet->body.front();
    const BytesView body(packet->body.data() + 1, packet->body.size() - 1);
    Bytes content;
    bool body_ok = true;
    crypto_time += config_.virtual_aes_cost_per_kb * (body.size() / 1024 + 1);
    cpu_.charge(net::CpuCategory::kAes, [&] {
      if (mode == 1) {
        auto opened = crypto::open_authenticated(peel->keys.k, peel->keys.iv, body);
        if (opened) {
          content = std::move(*opened);
        } else {
          body_ok = false;  // tampered in transit
        }
      } else {
        content = crypto::onion_crypt_body(peel->keys, body);
      }
    });
    if (!body_ok) {
      ++stats_.bodies_rejected;
      send_signal(predecessor, /*success=*/false, msg_id);
      return;
    }
    ++stats_.onions_delivered;
    m_delivered_.add(1);
    tel_.complete("wcl.onion.open", "wcl", clock_.now(), crypto_time);
    telemetry::FlightRecorder* fr = tel_.flight();
    const telemetry::TraceContext ctx =
        fr != nullptr && fr->enabled() ? fr->context() : telemetry::TraceContext{};
    if (ctx.valid()) fr->crypto(ctx, transport_.self().value, clock_.now(), crypto_time, "open");
    // Deliver (and ack) after the measured decryption time has elapsed on
    // the virtual clock. Re-arm the inbound trace context so the ACK chain
    // and whatever the payload triggers (a PPSS response) stay causally
    // linked to this message.
    clock_.schedule_after(crypto_time,
                        [this, predecessor, msg_id, ctx,
                         content = std::move(content)]() mutable {
                          telemetry::ScopedTraceContext guard(tel_.flight(), ctx);
                          send_signal(predecessor, /*success=*/true, msg_id);
                          if (on_deliver) on_deliver(std::move(content));
                        });
    return;
  }

  // Mix role: resolve the next hop and forward. Resolution order: the
  // address hint baked into the onion layer (always present for the P-node
  // second mix), then our connection backlog (fresh gossip partners), then
  // transport-level state — a still-open punched route or our own relay
  // registration (we may be the destination's relay). The last two are what
  // makes the next-to-last hop work: that mix was chosen *because* it
  // recently exchanged with the destination, so the NAT state is open even
  // when the CB entry has already rotated out.
  Writer w;
  w.u8(kKindOnion);
  w.u64(msg_id);
  transport_.self_card().serialize(w);
  w.raw(peel->next_packet.serialize());

  // Resolve now, but put the packet on the wire only after the measured
  // peel time has elapsed on the virtual clock.
  std::optional<pss::ContactCard> next_card;
  if (!peel->next_addr.is_nil()) {
    pss::ContactCard card;
    card.id = peel->next_hop;
    card.addr = peel->next_addr;
    card.is_public = true;
    next_card = card;
  } else if (const CbEntry* e = cb_.find(peel->next_hop)) {
    next_card = e->card;
  }

  const NodeId next_hop = peel->next_hop;
  tel_.complete("wcl.onion.relay", "wcl", clock_.now(), crypto_time);
  telemetry::FlightRecorder* fr = tel_.flight();
  const telemetry::TraceContext ctx =
      fr != nullptr && fr->enabled() ? fr->context() : telemetry::TraceContext{};
  if (ctx.valid()) fr->crypto(ctx, transport_.self().value, clock_.now(), crypto_time, "peel");
  clock_.schedule_after(
      crypto_time,
      [this, predecessor, msg_id, next_hop, next_card, ctx, data = std::move(w).take()] {
        telemetry::ScopedTraceContext guard(tel_.flight(), ctx);
        const bool sent =
            next_card.has_value()
                ? transport_.send(*next_card, nylon::kTagWcl, data, net::Proto::kWcl)
                : transport_.send_by_id(next_hop, nylon::kTagWcl, data, net::Proto::kWcl);
        if (!sent) {
          ++stats_.forward_failures;
          m_forward_failures_.add(1);
          if (telemetry::FlightRecorder* rec = tel_.flight();
              rec != nullptr && rec->enabled() && ctx.valid()) {
            rec->drop(ctx, transport_.self().value, clock_.now(), "no_forward");
          }
          send_signal(predecessor, /*success=*/false, msg_id);
          return;
        }
        if (pending_forwards_.count(msg_id) == 0) {
          evict_forwards();
          forward_order_.push_back(msg_id);
        }
        pending_forwards_[msg_id] =
            PendingForward{predecessor, clock_.now() + config_.pending_forward_ttl};
        ++stats_.onions_forwarded;
        m_forwarded_.add(1);
      });
}

}  // namespace whisper::wcl

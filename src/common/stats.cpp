#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

namespace whisper {

void Samples::ensure_sorted() const {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double Samples::sum() const { return std::accumulate(values_.begin(), values_.end(), 0.0); }

double Samples::mean() const { return values_.empty() ? 0.0 : sum() / values_.size(); }

double Samples::stddev() const {
  if (values_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double v : values_) acc += (v - m) * (v - m);
  return std::sqrt(acc / (values_.size() - 1));
}

double Samples::min() const {
  ensure_sorted();
  return values_.empty() ? 0.0 : values_.front();
}

double Samples::max() const {
  ensure_sorted();
  return values_.empty() ? 0.0 : values_.back();
}

double Samples::percentile(double p) const {
  if (values_.empty()) return 0.0;
  ensure_sorted();
  if (p <= 0) return values_.front();
  if (p >= 100) return values_.back();
  const double rank = p / 100.0 * (values_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const double frac = rank - lo;
  if (lo + 1 >= values_.size()) return values_.back();
  return values_[lo] * (1.0 - frac) + values_[lo + 1] * frac;
}

std::vector<double> Samples::cdf_at(const std::vector<double>& xs) const {
  ensure_sorted();
  std::vector<double> out;
  out.reserve(xs.size());
  for (double x : xs) {
    auto it = std::upper_bound(values_.begin(), values_.end(), x);
    out.push_back(values_.empty() ? 0.0
                                  : static_cast<double>(it - values_.begin()) / values_.size());
  }
  return out;
}

std::vector<std::pair<double, double>> Samples::cdf_series(int points) const {
  std::vector<std::pair<double, double>> out;
  if (values_.empty() || points < 2) return out;
  ensure_sorted();
  const double lo = values_.front();
  const double hi = values_.back();
  const double step = (hi - lo) / (points - 1);
  for (int i = 0; i < points; ++i) {
    const double x = lo + step * i;
    auto it = std::upper_bound(values_.begin(), values_.end(), x);
    out.emplace_back(x, static_cast<double>(it - values_.begin()) / values_.size());
  }
  return out;
}

std::string format_cdf(const Samples& s, int points, const std::string& x_label) {
  std::string out = "  " + x_label + "  CDF\n";
  char line[96];
  for (auto [x, f] : s.cdf_series(points)) {
    std::snprintf(line, sizeof(line), "  %12.4f  %6.2f%%\n", x, f * 100.0);
    out += line;
  }
  return out;
}

std::string format_stacked_percentiles(const Samples& s) {
  char line[160];
  std::snprintf(line, sizeof(line), "p5=%.3f p25=%.3f p50=%.3f p75=%.3f p90=%.3f",
                s.percentile(5), s.percentile(25), s.percentile(50), s.percentile(75),
                s.percentile(90));
  return line;
}

std::vector<std::pair<std::int64_t, double>> IntDistribution::cdf(std::int64_t lo,
                                                                  std::int64_t hi) const {
  std::vector<std::int64_t> sorted = values_;
  std::sort(sorted.begin(), sorted.end());
  std::vector<std::pair<std::int64_t, double>> out;
  for (std::int64_t x = lo; x <= hi; ++x) {
    auto it = std::upper_bound(sorted.begin(), sorted.end(), x);
    out.emplace_back(x, sorted.empty()
                            ? 0.0
                            : static_cast<double>(it - sorted.begin()) / sorted.size());
  }
  return out;
}

double IntDistribution::mean() const {
  if (values_.empty()) return 0.0;
  double acc = 0.0;
  for (auto v : values_) acc += static_cast<double>(v);
  return acc / values_.size();
}

std::int64_t IntDistribution::max() const {
  std::int64_t m = 0;
  for (auto v : values_) m = std::max(m, v);
  return m;
}

}  // namespace whisper

// Byte-buffer alias and hex helpers.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace whisper {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

inline std::string to_hex(BytesView data) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0x0f]);
  }
  return out;
}

inline Bytes from_hex(const std::string& hex) {
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i + 1 < hex.size(); i += 2) {
    int hi = nibble(hex[i]);
    int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) break;
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

inline Bytes to_bytes(const std::string& s) { return Bytes(s.begin(), s.end()); }

inline std::string to_string(BytesView data) {
  return std::string(reinterpret_cast<const char*>(data.data()), data.size());
}

}  // namespace whisper

// Statistics helpers for the evaluation harness: summaries, percentiles,
// CDF series (the paper reports most results as CDFs and stacked
// percentile plots).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace whisper {

/// Accumulates samples and answers summary/percentile/CDF queries.
class Samples {
 public:
  void add(double v) {
    values_.push_back(v);
    sorted_ = false;
  }
  void add_n(double v, std::size_t n) {
    values_.insert(values_.end(), n, v);
    sorted_ = false;
  }

  std::size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  double sum() const;
  double mean() const;
  double stddev() const;
  double min() const;
  double max() const;

  /// p in [0, 100]. Linear interpolation between order statistics.
  double percentile(double p) const;

  /// CDF evaluated at the given points: fraction of samples <= x.
  std::vector<double> cdf_at(const std::vector<double>& xs) const;

  /// Evenly-spaced CDF series over [min, max] with `points` steps,
  /// as (x, fraction<=x) pairs. Useful for printing paper-style CDF plots.
  std::vector<std::pair<double, double>> cdf_series(int points) const;

  const std::vector<double>& values() const { return values_; }
  void clear() {
    values_.clear();
    sorted_ = false;
  }

 private:
  void ensure_sorted() const;

  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
};

/// Renders a textual CDF plot: one line per step, "x fraction".
std::string format_cdf(const Samples& s, int points, const std::string& x_label);

/// Renders the paper's stacked-percentile representation: 5/25/50/75/90th.
std::string format_stacked_percentiles(const Samples& s);

/// Integer-keyed distribution (e.g. in-degrees): counts per value.
class IntDistribution {
 public:
  void add(std::int64_t v) { values_.push_back(v); }
  std::size_t count() const { return values_.size(); }
  /// CDF: fraction of values <= x for x in [lo, hi].
  std::vector<std::pair<std::int64_t, double>> cdf(std::int64_t lo, std::int64_t hi) const;
  double mean() const;
  std::int64_t max() const;
  const std::vector<std::int64_t>& values() const { return values_; }

 private:
  std::vector<std::int64_t> values_;
};

}  // namespace whisper

// Deterministic random number generation.
//
// All randomness in a simulation flows from a single seeded root Rng; child
// streams are forked so that adding a consumer does not perturb the draws of
// unrelated components. This is what makes whole-deployment runs reproducible.
#pragma once

#include <cstdint>
#include <vector>

namespace whisper {

/// Deterministic PRNG (xoshiro256** core) with convenience draws.
/// Not cryptographically secure on its own; crypto key material is derived
/// through SHA-256-based extraction in crypto/random.hpp.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit draw.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t next_range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli draw with probability p of returning true.
  bool next_bool(double p);

  /// Standard normal via Box-Muller.
  double next_gaussian();

  /// Lognormal draw with the given parameters of the underlying normal.
  double next_lognormal(double mu, double sigma);

  /// Exponential draw with the given rate (mean 1/rate).
  double next_exponential(double rate);

  /// Fill a buffer with uniform bytes.
  void fill_bytes(std::uint8_t* out, std::size_t n);

  /// Fork an independent child stream. Deterministic: the k-th fork of a
  /// given Rng state is always the same stream.
  Rng fork();

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Pick a uniformly random element index; container must be non-empty.
  template <typename C>
  std::size_t pick_index(const C& c) {
    return static_cast<std::size_t>(next_below(c.size()));
  }

 private:
  std::uint64_t s_[4];
  bool have_gauss_ = false;
  double spare_gauss_ = 0.0;
};

}  // namespace whisper

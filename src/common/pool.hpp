// FlatPool: fixed-capacity object pool with generation-checked handles.
//
// The simulator's slot/generation timer table (sim/simulator.hpp) proved the
// idiom: objects live in one contiguous preallocated slab, callers hold a
// 64-bit handle (generation << 32 | index), and a handle minted for an
// earlier occupant of a reused slot goes stale instead of dangling. This
// header generalizes that design for protocol state, in the flat style of
// high-performance networking codebases: no per-object heap allocation, no
// pointer-chasing, O(1) acquire/release, stable addresses for the pool's
// lifetime.
//
// Handles are never 0 (generations start at 1), so 0 doubles as the "no
// object" sentinel exactly like TimerId.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <new>
#include <utility>
#include <vector>

namespace whisper {

/// Handle into a FlatPool. 0 is "null"; otherwise (gen << 32) | index.
using PoolHandle = std::uint64_t;

inline constexpr PoolHandle kNullPoolHandle = 0;

template <typename T>
class FlatPool {
 public:
  /// One slab of `capacity` objects, allocated up front. The pool never
  /// grows: acquire() on a full pool returns the null handle, which keeps
  /// memory bounded and allocation out of the hot path by construction.
  explicit FlatPool(std::size_t capacity) : capacity_(capacity) {
    slots_.resize(capacity);
    storage_ = static_cast<Cell*>(::operator new[](capacity * sizeof(Cell),
                                                   std::align_val_t{alignof(Cell)}));
    free_.reserve(capacity);
    // Hand out low indices first (freelist is popped from the back).
    for (std::size_t i = capacity; i > 0; --i) {
      free_.push_back(static_cast<std::uint32_t>(i - 1));
    }
  }

  ~FlatPool() {
    clear();
    ::operator delete[](storage_, std::align_val_t{alignof(Cell)});
  }

  FlatPool(const FlatPool&) = delete;
  FlatPool& operator=(const FlatPool&) = delete;

  /// Construct an object in a free slot; null handle when exhausted.
  template <typename... Args>
  PoolHandle acquire(Args&&... args) {
    if (free_.empty()) return kNullPoolHandle;
    const std::uint32_t idx = free_.back();
    free_.pop_back();
    Slot& s = slots_[idx];
    assert(!s.live);
    new (&storage_[idx]) T(std::forward<Args>(args)...);
    s.live = true;
    ++live_;
    return make_handle(idx, s.gen);
  }

  /// The object named by `h`, or nullptr when `h` is null, out of range, or
  /// stale (its slot was released and possibly reused since).
  T* get(PoolHandle h) {
    const std::uint32_t idx = index_of(h);
    if (idx >= capacity_ || !slots_[idx].live || slots_[idx].gen != gen_of(h)) {
      return nullptr;
    }
    return ptr(idx);
  }
  const T* get(PoolHandle h) const {
    return const_cast<FlatPool*>(this)->get(h);
  }

  /// Destroy the object and recycle its slot, bumping the generation so
  /// outstanding handles to it go stale. False when `h` was already stale.
  bool release(PoolHandle h) {
    const std::uint32_t idx = index_of(h);
    if (idx >= capacity_ || !slots_[idx].live || slots_[idx].gen != gen_of(h)) {
      return false;
    }
    ptr(idx)->~T();
    Slot& s = slots_[idx];
    s.live = false;
    if (++s.gen == 0) s.gen = 1;  // keep handles non-zero across wrap
    free_.push_back(idx);
    --live_;
    return true;
  }

  /// Destroy every live object (handles all go stale).
  void clear() {
    for (std::size_t i = 0; i < capacity_; ++i) {
      if (!slots_[i].live) continue;
      ptr(static_cast<std::uint32_t>(i))->~T();
      Slot& s = slots_[i];
      s.live = false;
      if (++s.gen == 0) s.gen = 1;
      free_.push_back(static_cast<std::uint32_t>(i));
    }
    live_ = 0;
  }

  std::size_t size() const { return live_; }
  std::size_t capacity() const { return capacity_; }
  bool full() const { return free_.empty(); }

 private:
  struct Slot {
    std::uint32_t gen = 1;
    bool live = false;
  };
  using Cell = std::aligned_storage_t<sizeof(T), alignof(T)>;

  static PoolHandle make_handle(std::uint32_t idx, std::uint32_t gen) {
    return (static_cast<PoolHandle>(gen) << 32) | idx;
  }
  static std::uint32_t index_of(PoolHandle h) { return static_cast<std::uint32_t>(h); }
  static std::uint32_t gen_of(PoolHandle h) { return static_cast<std::uint32_t>(h >> 32); }

  T* ptr(std::uint32_t idx) { return std::launder(reinterpret_cast<T*>(&storage_[idx])); }

  std::size_t capacity_;
  std::vector<Slot> slots_;
  Cell* storage_ = nullptr;
  std::vector<std::uint32_t> free_;
  std::size_t live_ = 0;
};

}  // namespace whisper

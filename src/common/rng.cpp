#include "common/rng.hpp"

#include <cassert>
#include <cmath>
#include <cstring>

namespace whisper {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::next_range(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full 64-bit range
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::next_bool(double p) { return next_double() < p; }

double Rng::next_gaussian() {
  if (have_gauss_) {
    have_gauss_ = false;
    return spare_gauss_;
  }
  double u1 = 0.0;
  while (u1 <= 1e-300) u1 = next_double();
  const double u2 = next_double();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  spare_gauss_ = mag * std::sin(2.0 * M_PI * u2);
  have_gauss_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

double Rng::next_lognormal(double mu, double sigma) {
  return std::exp(mu + sigma * next_gaussian());
}

double Rng::next_exponential(double rate) {
  double u = 1.0 - next_double();
  if (u <= 1e-300) u = 1e-300;
  return -std::log(u) / rate;
}

void Rng::fill_bytes(std::uint8_t* out, std::size_t n) {
  while (n >= 8) {
    std::uint64_t v = next_u64();
    std::memcpy(out, &v, 8);
    out += 8;
    n -= 8;
  }
  if (n > 0) {
    std::uint64_t v = next_u64();
    std::memcpy(out, &v, n);
  }
}

Rng Rng::fork() { return Rng(next_u64()); }

}  // namespace whisper

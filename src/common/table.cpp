#include "common/table.hpp"

#include <algorithm>
#include <cstdio>

namespace whisper {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());

  auto pad = [](const std::string& s, std::size_t w) {
    return s + std::string(w - s.size(), ' ');
  };

  std::string out = "  ";
  for (std::size_t c = 0; c < headers_.size(); ++c)
    out += pad(headers_[c], widths[c]) + (c + 1 < headers_.size() ? "  " : "\n");
  out += "  ";
  for (std::size_t c = 0; c < headers_.size(); ++c)
    out += std::string(widths[c], '-') + (c + 1 < headers_.size() ? "  " : "\n");
  for (const auto& row : rows_) {
    out += "  ";
    for (std::size_t c = 0; c < row.size(); ++c)
      out += pad(row[c], widths[c]) + (c + 1 < row.size() ? "  " : "\n");
  }
  return out;
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

}  // namespace whisper

// DenseMap: open-addressed index over dense key/value arrays.
//
// The protocol layers' hot lookup tables (pending exchanges, forward
// tables, member maps, handler tables) were node-local `unordered_map`s:
// every entry a separate heap node, every scan a pointer chase. DenseMap
// keeps keys and values in two contiguous vectors and resolves lookups
// through a flat linear-probe index of u32 positions, so iteration is a
// linear walk over packed storage and the per-entry overhead is four bytes
// of index instead of a malloc'd bucket node.
//
// Semantics differ from unordered_map in two deliberate ways:
//  - erase() swap-removes, so iteration order is insertion order disturbed
//    by erasures. It is deterministic for a deterministic operation
//    sequence (all the simulator guarantees), just not sorted or stable.
//  - erase(iterator) returns an iterator at the SAME position (now holding
//    the swapped-in last element), which makes the standard expiry-sweep
//    `it = map.erase(it)` idiom work unchanged.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <iterator>
#include <utility>
#include <vector>

namespace whisper {

template <typename K, typename V, typename Hash = std::hash<K>>
class DenseMap {
 public:
  DenseMap() = default;

  /// Reference pair mimicking unordered_map's value_type surface.
  struct Ref {
    const K& first;
    V& second;
    Ref* operator->() { return this; }
  };
  struct ConstRef {
    const K& first;
    const V& second;
    ConstRef* operator->() { return this; }
  };

  class iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = Ref;
    using difference_type = std::ptrdiff_t;
    using pointer = Ref*;
    using reference = Ref;

    iterator(DenseMap* m, std::size_t i) : m_(m), i_(i) {}
    Ref operator*() const { return Ref{m_->keys_[i_], m_->vals_[i_]}; }
    Ref operator->() const { return Ref{m_->keys_[i_], m_->vals_[i_]}; }
    iterator& operator++() { ++i_; return *this; }
    bool operator==(const iterator& o) const { return i_ == o.i_; }
    bool operator!=(const iterator& o) const { return i_ != o.i_; }
    std::size_t pos() const { return i_; }
   private:
    friend class DenseMap;
    DenseMap* m_;
    std::size_t i_;
  };
  class const_iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = ConstRef;
    using difference_type = std::ptrdiff_t;
    using pointer = ConstRef*;
    using reference = ConstRef;

    const_iterator(const DenseMap* m, std::size_t i) : m_(m), i_(i) {}
    ConstRef operator*() const { return ConstRef{m_->keys_[i_], m_->vals_[i_]}; }
    ConstRef operator->() const { return ConstRef{m_->keys_[i_], m_->vals_[i_]}; }
    const_iterator& operator++() { ++i_; return *this; }
    bool operator==(const const_iterator& o) const { return i_ == o.i_; }
    bool operator!=(const const_iterator& o) const { return i_ != o.i_; }
   private:
    const DenseMap* m_;
    std::size_t i_;
  };

  iterator begin() { return iterator(this, 0); }
  iterator end() { return iterator(this, keys_.size()); }
  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, keys_.size()); }

  std::size_t size() const { return keys_.size(); }
  bool empty() const { return keys_.empty(); }

  void reserve(std::size_t n) {
    keys_.reserve(n);
    vals_.reserve(n);
    if (n * 2 > index_.size()) rehash(index_pow2_for(n));
  }

  void clear() {
    keys_.clear();
    vals_.clear();
    index_.assign(index_.size(), kEmpty);
    tombstones_ = 0;
  }

  iterator find(const K& key) {
    const std::size_t b = find_bucket(key);
    return b == kNpos ? end() : iterator(this, index_[b]);
  }
  const_iterator find(const K& key) const {
    const std::size_t b = find_bucket(key);
    return b == kNpos ? end() : const_iterator(this, index_[b]);
  }
  bool contains(const K& key) const { return find_bucket(key) != kNpos; }
  std::size_t count(const K& key) const { return contains(key) ? 1 : 0; }

  V& operator[](const K& key) {
    const std::size_t b = find_bucket(key);
    if (b != kNpos) return vals_[index_[b]];
    return *insert_new(key, V{});
  }

  template <typename... Args>
  std::pair<iterator, bool> try_emplace(const K& key, Args&&... args) {
    const std::size_t b = find_bucket(key);
    if (b != kNpos) return {iterator(this, index_[b]), false};
    insert_new(key, V(std::forward<Args>(args)...));
    return {iterator(this, keys_.size() - 1), true};
  }
  std::pair<iterator, bool> emplace(const K& key, V val) {
    return try_emplace(key, std::move(val));
  }
  std::pair<iterator, bool> insert(std::pair<K, V> kv) {
    return try_emplace(kv.first, std::move(kv.second));
  }
  void insert_or_assign(const K& key, V val) {
    const std::size_t b = find_bucket(key);
    if (b != kNpos) {
      vals_[index_[b]] = std::move(val);
      return;
    }
    insert_new(key, std::move(val));
  }

  std::size_t erase(const K& key) {
    const std::size_t b = find_bucket(key);
    if (b == kNpos) return 0;
    erase_at(b);
    return 1;
  }

  /// Swap-removes; the returned iterator sits at the same position, which
  /// now holds the previous last element (or end()).
  iterator erase(iterator it) {
    assert(it.m_ == this && it.i_ < keys_.size());
    const std::size_t b = find_bucket(keys_[it.i_]);
    assert(b != kNpos);
    erase_at(b);
    return iterator(this, it.i_);
  }

 private:
  static constexpr std::uint32_t kEmpty = UINT32_MAX;
  static constexpr std::uint32_t kTombstone = UINT32_MAX - 1;
  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

  static std::size_t index_pow2_for(std::size_t n) {
    std::size_t cap = 16;
    while (cap < n * 2) cap <<= 1;
    return cap;
  }

  /// Bucket holding `key`, or kNpos.
  std::size_t find_bucket(const K& key) const {
    if (index_.empty()) return kNpos;
    const std::size_t mask = index_.size() - 1;
    std::size_t b = Hash{}(key)&mask;
    for (;;) {
      const std::uint32_t slot = index_[b];
      if (slot == kEmpty) return kNpos;
      if (slot != kTombstone && keys_[slot] == key) return b;
      b = (b + 1) & mask;
    }
  }

  V* insert_new(const K& key, V val) {
    if ((keys_.size() + 1 + tombstones_) * 10 >= index_.size() * 7) {
      rehash(index_pow2_for(keys_.size() + 1));
    }
    const std::size_t mask = index_.size() - 1;
    std::size_t b = Hash{}(key)&mask;
    while (index_[b] != kEmpty && index_[b] != kTombstone) b = (b + 1) & mask;
    if (index_[b] == kTombstone) --tombstones_;
    index_[b] = static_cast<std::uint32_t>(keys_.size());
    keys_.push_back(key);
    vals_.push_back(std::move(val));
    return &vals_.back();
  }

  void erase_at(std::size_t bucket) {
    const std::uint32_t pos = index_[bucket];
    index_[bucket] = kTombstone;
    ++tombstones_;
    const std::uint32_t last = static_cast<std::uint32_t>(keys_.size() - 1);
    if (pos != last) {
      // Move the last element into the hole and repoint its bucket.
      const std::size_t lb = find_bucket(keys_[last]);
      assert(lb != kNpos);
      keys_[pos] = std::move(keys_[last]);
      vals_[pos] = std::move(vals_[last]);
      index_[lb] = pos;
    }
    keys_.pop_back();
    vals_.pop_back();
  }

  void rehash(std::size_t buckets) {
    index_.assign(buckets, kEmpty);
    tombstones_ = 0;
    const std::size_t mask = buckets - 1;
    for (std::uint32_t i = 0; i < keys_.size(); ++i) {
      std::size_t b = Hash{}(keys_[i]) & mask;
      while (index_[b] != kEmpty) b = (b + 1) & mask;
      index_[b] = i;
    }
  }

  std::vector<K> keys_;
  std::vector<V> vals_;
  std::vector<std::uint32_t> index_;
  std::size_t tombstones_ = 0;
};

/// std::erase_if counterpart (found by ADL): drop every entry matching
/// `pred`, which sees a pair-like {first, second} reference.
template <typename K, typename V, typename Hash, typename Pred>
std::size_t erase_if(DenseMap<K, V, Hash>& m, Pred pred) {
  std::size_t erased = 0;
  for (auto it = m.begin(); it != m.end();) {
    if (pred(*it)) {
      it = m.erase(it);
      ++erased;
    } else {
      ++it;
    }
  }
  return erased;
}

/// Set counterpart: same flat index, dense key array, no values.
template <typename K, typename Hash = std::hash<K>>
class DenseSet {
 public:
  bool insert(const K& key) { return map_.try_emplace(key, Empty{}).second; }
  std::size_t erase(const K& key) { return map_.erase(key); }
  bool contains(const K& key) const { return map_.contains(key); }
  std::size_t count(const K& key) const { return map_.count(key); }
  std::size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }
  void clear() { map_.clear(); }
  void reserve(std::size_t n) { map_.reserve(n); }

 private:
  struct Empty {};
  DenseMap<K, Empty, Hash> map_;
};

}  // namespace whisper

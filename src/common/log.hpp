// Minimal leveled logging. Off by default so simulations stay quiet;
// benches and examples raise the level when narrating.
#pragma once

#include <cstdarg>

namespace whisper {

enum class LogLevel { kOff = 0, kError = 1, kWarn = 2, kInfo = 3, kDebug = 4 };

void set_log_level(LogLevel level);
LogLevel log_level();

/// printf-style logging to stderr, gated on the global level.
void logf(LogLevel level, const char* fmt, ...) __attribute__((format(printf, 2, 3)));

#define WHISPER_LOG_ERROR(...) ::whisper::logf(::whisper::LogLevel::kError, __VA_ARGS__)
#define WHISPER_LOG_WARN(...) ::whisper::logf(::whisper::LogLevel::kWarn, __VA_ARGS__)
#define WHISPER_LOG_INFO(...) ::whisper::logf(::whisper::LogLevel::kInfo, __VA_ARGS__)
#define WHISPER_LOG_DEBUG(...) ::whisper::logf(::whisper::LogLevel::kDebug, __VA_ARGS__)

}  // namespace whisper

// Binary serialization used by every protocol message in the stack.
//
// Bandwidth accounting in the simulator counts serialized bytes, so all
// protocol messages go through Writer/Reader instead of being passed as
// in-memory objects. Encoding is little-endian, length-prefixed for
// variable-size fields. Reader is non-throwing: failed reads set an error
// flag and return zero values; callers check ok() once at the end.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>

#include "common/bytes.hpp"
#include "common/ids.hpp"

namespace whisper {

class Writer {
 public:
  Writer() = default;

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { append(&v, 2); }
  void u32(std::uint32_t v) { append(&v, 4); }
  void u64(std::uint64_t v) { append(&v, 8); }
  void f64(double v) { append(&v, 8); }
  void boolean(bool v) { u8(v ? 1 : 0); }

  void node_id(NodeId id) { u64(id.value); }
  void group_id(GroupId id) { u64(id.value); }
  void endpoint(Endpoint ep) {
    u32(ep.ip);
    u16(ep.port);
  }

  /// Length-prefixed byte string (u32 length).
  void bytes(BytesView data) {
    u32(static_cast<std::uint32_t>(data.size()));
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  /// Raw append without a length prefix.
  void raw(BytesView data) { buf_.insert(buf_.end(), data.begin(), data.end()); }

  const Bytes& data() const& { return buf_; }
  Bytes take() && { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  void append(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }

  Bytes buf_;
};

class Reader {
 public:
  explicit Reader(BytesView data) : data_(data) {}

  std::uint8_t u8() {
    std::uint8_t v = 0;
    extract(&v, 1);
    return v;
  }
  std::uint16_t u16() {
    std::uint16_t v = 0;
    extract(&v, 2);
    return v;
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    extract(&v, 4);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    extract(&v, 8);
    return v;
  }
  double f64() {
    double v = 0;
    extract(&v, 8);
    return v;
  }
  bool boolean() { return u8() != 0; }

  NodeId node_id() { return NodeId{u64()}; }
  GroupId group_id() { return GroupId{u64()}; }
  Endpoint endpoint() {
    Endpoint ep;
    ep.ip = u32();
    ep.port = u16();
    return ep;
  }

  Bytes bytes() {
    std::uint32_t n = u32();
    if (n > remaining()) {
      ok_ = false;
      return {};
    }
    Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
              data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }

  std::string str() {
    Bytes b = bytes();
    return std::string(b.begin(), b.end());
  }

  /// Consume all remaining bytes.
  Bytes rest() {
    Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_), data_.end());
    pos_ = data_.size();
    return out;
  }

  std::size_t remaining() const { return data_.size() - pos_; }
  bool ok() const { return ok_; }
  /// True iff all input was consumed and no read failed.
  bool done() const { return ok_ && pos_ == data_.size(); }

 private:
  void extract(void* p, std::size_t n) {
    if (pos_ + n > data_.size()) {
      ok_ = false;
      std::memset(p, 0, n);
      return;
    }
    std::memcpy(p, data_.data() + pos_, n);
    pos_ += n;
  }

  BytesView data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace whisper

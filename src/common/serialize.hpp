// Binary serialization used by every protocol message in the stack.
//
// Bandwidth accounting in the simulator counts serialized bytes, so all
// protocol messages go through Writer/Reader instead of being passed as
// in-memory objects. Encoding is little-endian, length-prefixed for
// variable-size fields. Reader is non-throwing: failed reads set an error
// flag and return zero values; callers check ok() once at the end.
//
// Hostile-input hardening: every failure is classified by a DecodeError so
// protocol layers can reject malformed frames deterministically and count
// them by reason. Length prefixes are validated against both the remaining
// input (kBadLength) and the caller-declared protocol bound (kOversized),
// so a forged prefix can never drive an oversized allocation. Frame
// handlers finish with expect_done(): a valid frame followed by trailing
// garbage is rejected (kTrailingBytes), not silently accepted.
#pragma once

#include <cstdint>
#include <cstring>
#include <limits>
#include <string>

#include "common/bytes.hpp"
#include "common/ids.hpp"

namespace whisper {

/// Why an inbound frame failed to decode. First failure wins: a Reader
/// records the error of the first read that went wrong and zero-fills
/// everything after it, so one frame maps to exactly one reason.
enum class DecodeError : std::uint8_t {
  kNone = 0,
  /// A fixed-width read ran past the end of the input.
  kTruncated = 1,
  /// A length prefix exceeded the bytes actually present.
  kBadLength = 2,
  /// A length or element count exceeded the declared protocol bound.
  kOversized = 3,
  /// Input continued after a complete frame.
  kTrailingBytes = 4,
  /// A field decoded but was semantically invalid (flagged by the caller).
  kBadValue = 5,
};

inline const char* decode_error_name(DecodeError e) {
  switch (e) {
    case DecodeError::kNone: return "none";
    case DecodeError::kTruncated: return "truncated";
    case DecodeError::kBadLength: return "badlength";
    case DecodeError::kOversized: return "oversized";
    case DecodeError::kTrailingBytes: return "trailing";
    case DecodeError::kBadValue: return "badvalue";
  }
  return "unknown";
}

class Writer {
 public:
  Writer() = default;

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { append(&v, 2); }
  void u32(std::uint32_t v) { append(&v, 4); }
  void u64(std::uint64_t v) { append(&v, 8); }
  void f64(double v) { append(&v, 8); }
  void boolean(bool v) { u8(v ? 1 : 0); }

  void node_id(NodeId id) { u64(id.value); }
  void group_id(GroupId id) { u64(id.value); }
  void endpoint(Endpoint ep) {
    u32(ep.ip);
    u16(ep.port);
  }

  /// Length-prefixed byte string (u32 length).
  void bytes(BytesView data) {
    u32(static_cast<std::uint32_t>(data.size()));
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  /// Raw append without a length prefix.
  void raw(BytesView data) { buf_.insert(buf_.end(), data.begin(), data.end()); }

  const Bytes& data() const& { return buf_; }
  Bytes take() && { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  void append(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }

  Bytes buf_;
};

class Reader {
 public:
  explicit Reader(BytesView data) : data_(data) {}

  std::uint8_t u8() {
    std::uint8_t v = 0;
    extract(&v, 1);
    return v;
  }
  std::uint16_t u16() {
    std::uint16_t v = 0;
    extract(&v, 2);
    return v;
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    extract(&v, 4);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    extract(&v, 8);
    return v;
  }
  double f64() {
    double v = 0;
    extract(&v, 8);
    return v;
  }
  bool boolean() { return u8() != 0; }

  NodeId node_id() { return NodeId{u64()}; }
  GroupId group_id() { return GroupId{u64()}; }
  Endpoint endpoint() {
    Endpoint ep;
    ep.ip = u32();
    ep.port = u16();
    return ep;
  }

  /// Length-prefixed byte string, bounded by `max_len` (protocol limit).
  /// The prefix is validated before any allocation happens.
  Bytes bytes(std::size_t max_len = std::numeric_limits<std::uint32_t>::max()) {
    std::uint32_t n = u32();
    if (!ok_) return {};
    if (n > max_len) {
      fail(DecodeError::kOversized);
      return {};
    }
    if (n > remaining()) {
      fail(DecodeError::kBadLength);
      return {};
    }
    Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
              data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }

  std::string str(std::size_t max_len = std::numeric_limits<std::uint32_t>::max()) {
    Bytes b = bytes(max_len);
    return std::string(b.begin(), b.end());
  }

  /// u16 element count validated against a protocol bound. Returns 0 on
  /// failure so `for (i < count)` loops are safe without extra checks.
  std::uint32_t count16(std::size_t max_count) {
    const std::uint32_t n = u16();
    if (!ok_) return 0;
    if (n > max_count) {
      fail(DecodeError::kOversized);
      return 0;
    }
    return n;
  }

  /// Raw byte run of exactly `n` bytes (length known from context, no
  /// prefix on the wire — e.g. CRC-framed journal records).
  Bytes raw(std::size_t n) {
    if (n > remaining()) {
      fail(DecodeError::kTruncated);
      return {};
    }
    Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
              data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }

  /// Consume all remaining bytes.
  Bytes rest() {
    Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_), data_.end());
    pos_ = data_.size();
    return out;
  }

  /// Record a semantic failure spotted by the caller (bad kind byte,
  /// id mismatch, invalid flag...). First error wins.
  void fail(DecodeError e) {
    if (error_ == DecodeError::kNone) error_ = e;
    ok_ = false;
  }

  /// Frame-final check: every read succeeded AND the input is fully
  /// consumed. Trailing bytes after a valid frame are a decode error —
  /// handlers must call this (or done()) before acting on the frame.
  bool expect_done() {
    if (ok_ && pos_ != data_.size()) fail(DecodeError::kTrailingBytes);
    return ok_;
  }

  std::size_t remaining() const { return data_.size() - pos_; }
  bool ok() const { return ok_; }
  /// True iff all input was consumed and no read failed.
  bool done() const { return ok_ && pos_ == data_.size(); }
  /// Why the first failed read failed (kNone while ok()).
  DecodeError error() const { return error_; }
  /// Like error(), but reports kTrailingBytes for an unconsumed tail even
  /// before expect_done() has stamped it — for counters at reject sites.
  DecodeError reject_reason() const {
    if (error_ != DecodeError::kNone) return error_;
    return pos_ != data_.size() ? DecodeError::kTrailingBytes : DecodeError::kNone;
  }

 private:
  void extract(void* p, std::size_t n) {
    if (pos_ + n > data_.size()) {
      fail(DecodeError::kTruncated);
      std::memset(p, 0, n);
      return;
    }
    std::memcpy(p, data_.data() + pos_, n);
    pos_ += n;
  }

  BytesView data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
  DecodeError error_ = DecodeError::kNone;
};

}  // namespace whisper

// Hostile-peer defense primitives shared by the protocol layers.
//
//  - TokenBucket: classic rate limiter over virtual-time microseconds.
//  - ReplayWindow: bounded FIFO set of 64-bit fingerprints — the "nonce
//    window" used to suppress replayed onion headers and passports, and to
//    cap any fingerprint cache that grows with peer-driven input.
//  - PeerGuard: per-peer admission control (token bucket per sender) plus
//    decode-failure scoring that tells the caller when a peer has crossed
//    the misbehavior threshold and should be reported to the PSS
//    suspicion/quarantine path. Tracked-peer state itself is hard-capped
//    with FIFO eviction so an id-spraying attacker cannot grow it.
//
// Everything here is deterministic and allocation-bounded: no wall clock,
// no randomness, O(1) amortized per packet.
#pragma once

#include <cstdint>
#include <deque>
#include "common/densemap.hpp"

#include "common/ids.hpp"

namespace whisper {

/// Token bucket over virtual time. rate_per_sec == 0 disables limiting
/// (always allows) so defenses can default-on without a config sweep.
class TokenBucket {
 public:
  TokenBucket() = default;
  TokenBucket(double rate_per_sec, double burst, std::uint64_t now_us)
      : rate_(rate_per_sec), burst_(burst), tokens_(burst), last_us_(now_us) {}

  bool allow(std::uint64_t now_us) {
    if (rate_ <= 0) return true;
    if (now_us > last_us_) {
      tokens_ += rate_ * static_cast<double>(now_us - last_us_) / 1e6;
      if (tokens_ > burst_) tokens_ = burst_;
      last_us_ = now_us;
    }
    if (tokens_ < 1.0) return false;
    tokens_ -= 1.0;
    return true;
  }

 private:
  double rate_ = 0;
  double burst_ = 0;
  double tokens_ = 0;
  std::uint64_t last_us_ = 0;
};

/// Bounded FIFO set of fingerprints. seen_or_insert() returns true when the
/// fingerprint was already present (a replay); otherwise inserts it,
/// evicting the oldest entry once the window is full.
class ReplayWindow {
 public:
  explicit ReplayWindow(std::size_t capacity = 1024) : capacity_(capacity) {}

  bool seen_or_insert(std::uint64_t fp) {
    if (capacity_ == 0) return false;  // window disabled
    if (seen_.count(fp) != 0) return true;
    if (order_.size() >= capacity_) {
      seen_.erase(order_.front());
      order_.pop_front();
      ++evictions_;
    }
    seen_.insert(fp);
    order_.push_back(fp);
    return false;
  }

  bool contains(std::uint64_t fp) const { return seen_.count(fp) != 0; }
  std::size_t size() const { return seen_.size(); }
  std::uint64_t evictions() const { return evictions_; }

 private:
  std::size_t capacity_;
  DenseSet<std::uint64_t> seen_;
  std::deque<std::uint64_t> order_;
  std::uint64_t evictions_ = 0;
};

struct PeerGuardConfig {
  /// Per-peer inbound frame budget; 0 disables rate limiting.
  double rate_per_sec = 0;
  double burst = 0;
  /// Consecutive decode failures before the peer is reported as
  /// misbehaving (note_ok resets the score).
  int decode_fail_threshold = 3;
  /// Hard cap on tracked peers (FIFO eviction beyond it).
  std::size_t max_peers = 1024;
};

/// Per-peer admission + decode-failure scoring. The guard never quarantines
/// by itself: it only answers "is this frame within budget" and "did this
/// peer just cross the misbehavior threshold" — the caller decides how to
/// report (WCL/PSS feed the PSS suspicion path).
class PeerGuard {
 public:
  PeerGuard() = default;
  explicit PeerGuard(PeerGuardConfig config) : config_(config) {}

  /// False when the peer is over its inbound rate budget.
  bool admit(NodeId peer, std::uint64_t now_us) {
    if (config_.rate_per_sec <= 0) return true;
    State& st = track(peer, now_us);
    const bool ok = st.bucket.allow(now_us);
    if (!ok) ++rate_limited_;
    return ok;
  }

  /// Score a decode failure; true exactly when the failure streak reaches
  /// the threshold (caller reports the peer, score resets).
  bool note_decode_failure(NodeId peer, std::uint64_t now_us) {
    State& st = track(peer, now_us);
    if (++st.decode_failures < config_.decode_fail_threshold) return false;
    st.decode_failures = 0;
    return true;
  }

  /// A well-formed frame clears the peer's failure streak.
  void note_ok(NodeId peer) {
    auto it = peers_.find(peer);
    if (it != peers_.end()) it->second.decode_failures = 0;
  }

  std::size_t tracked() const { return peers_.size(); }
  std::uint64_t rate_limited() const { return rate_limited_; }
  std::uint64_t evictions() const { return evictions_; }

 private:
  struct State {
    TokenBucket bucket;
    int decode_failures = 0;
  };

  State& track(NodeId peer, std::uint64_t now_us) {
    auto it = peers_.find(peer);
    if (it != peers_.end()) return it->second;
    if (peers_.size() >= config_.max_peers && !order_.empty()) {
      peers_.erase(order_.front());
      order_.pop_front();
      ++evictions_;
    }
    order_.push_back(peer);
    State st;
    st.bucket = TokenBucket(config_.rate_per_sec, config_.burst, now_us);
    return peers_.emplace(peer, st).first->second;
  }

  PeerGuardConfig config_;
  DenseMap<NodeId, State> peers_;
  std::deque<NodeId> order_;
  std::uint64_t rate_limited_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace whisper

// CRC-32 (IEEE 802.3, reflected polynomial 0xedb88320) over a byte span.
// Table-driven, no zlib dependency. Shared by the durable-store journal
// framing (store/journal.hpp) and the telemetry health/stats records
// (telemetry/health.hpp) so both sides of a process boundary agree on the
// checksum without linking each other's layer.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"

namespace whisper {

std::uint32_t crc32(BytesView data);

}  // namespace whisper

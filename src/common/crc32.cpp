#include "common/crc32.hpp"

#include <array>

namespace whisper {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (0xedb88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(BytesView data) {
  static const std::array<std::uint32_t, 256> kTable = make_crc_table();
  std::uint32_t c = 0xffffffffu;
  for (std::uint8_t b : data) c = kTable[(c ^ b) & 0xff] ^ (c >> 8);
  return c ^ 0xffffffffu;
}

}  // namespace whisper

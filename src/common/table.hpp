// Minimal fixed-width table printer for the benchmark harness output.
#pragma once

#include <string>
#include <vector>

namespace whisper {

/// Collects rows of strings and renders an aligned ASCII table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  std::string render() const;

  /// Format helper: fixed-precision double.
  static std::string num(double v, int precision = 2);
  /// Format helper: percentage with two decimals ("98.30%").
  static std::string pct(double fraction, int precision = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace whisper

// Arena: chunked bump allocator for phase-scoped scratch memory.
//
// Boot-time planning and export canonicalization build large transient
// structures (bootstrap plans for 100k nodes, merged flight records) whose
// lifetimes end together. An arena turns those thousands of small
// allocations into pointer bumps over a few large chunks, and frees them
// all at once with reset(). Nothing here is thread-safe; one arena belongs
// to one phase on one thread.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace whisper {

class Arena {
 public:
  /// `chunk_bytes` is the granularity of backing allocations; oversized
  /// requests get a dedicated chunk.
  explicit Arena(std::size_t chunk_bytes = 1 << 16) : chunk_bytes_(chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// `size` bytes at `align` alignment. Never fails except by bad_alloc.
  void* allocate(std::size_t size, std::size_t align = alignof(std::max_align_t)) {
    std::uintptr_t p = (cursor_ + (align - 1)) & ~static_cast<std::uintptr_t>(align - 1);
    if (p + size > limit_) {
      new_chunk(size + align);
      p = (cursor_ + (align - 1)) & ~static_cast<std::uintptr_t>(align - 1);
    }
    cursor_ = p + size;
    used_ += size;
    return reinterpret_cast<void*>(p);
  }

  /// Typed helper: uninitialized storage for `n` objects of T.
  template <typename T>
  T* allocate_array(std::size_t n) {
    return static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
  }

  /// Construct one T in the arena. No destructor runs at reset(); only use
  /// for trivially destructible payloads or accept the leak-until-reset.
  template <typename T, typename... Args>
  T* create(Args&&... args) {
    return new (allocate(sizeof(T), alignof(T))) T(std::forward<Args>(args)...);
  }

  /// Drop every allocation but keep the first chunk warm for reuse.
  void reset() {
    if (chunks_.size() > 1) chunks_.resize(1);
    if (!chunks_.empty()) {
      cursor_ = reinterpret_cast<std::uintptr_t>(chunks_.front().get());
      limit_ = cursor_ + chunk_bytes_;
    } else {
      cursor_ = limit_ = 0;
    }
    used_ = 0;
  }

  /// Bytes handed out since construction/reset (excludes alignment pad).
  std::size_t used() const { return used_; }
  std::size_t chunk_count() const { return chunks_.size(); }

 private:
  void new_chunk(std::size_t min_bytes) {
    const std::size_t bytes = min_bytes > chunk_bytes_ ? min_bytes : chunk_bytes_;
    chunks_.push_back(std::make_unique<std::byte[]>(bytes));
    cursor_ = reinterpret_cast<std::uintptr_t>(chunks_.back().get());
    limit_ = cursor_ + bytes;
  }

  std::size_t chunk_bytes_;
  std::vector<std::unique_ptr<std::byte[]>> chunks_;
  std::uintptr_t cursor_ = 0;
  std::uintptr_t limit_ = 0;
  std::size_t used_ = 0;
};

}  // namespace whisper

// Strongly-typed identifiers shared across the WHISPER stack.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace whisper {

/// Identity of a node in the system. Stable for the lifetime of a node
/// incarnation; a node that leaves and rejoins gets a fresh id.
struct NodeId {
  std::uint64_t value = 0;

  constexpr auto operator<=>(const NodeId&) const = default;
  constexpr bool is_nil() const { return value == 0; }
  std::string str() const { return "n" + std::to_string(value); }
};

/// Sentinel node id: "no node". Used e.g. as the next-hop marker at the end
/// of an onion path (the paper's ⊥).
inline constexpr NodeId kNilNode{0};

/// Identity of a private group.
struct GroupId {
  std::uint64_t value = 0;

  constexpr auto operator<=>(const GroupId&) const = default;
  constexpr bool is_nil() const { return value == 0; }
  std::string str() const { return "g" + std::to_string(value); }
};

/// A network endpoint as observed on the (simulated) public Internet or a
/// private LAN segment: IPv4-like address plus UDP-like port.
struct Endpoint {
  std::uint32_t ip = 0;
  std::uint16_t port = 0;

  constexpr auto operator<=>(const Endpoint&) const = default;
  constexpr bool is_nil() const { return ip == 0 && port == 0; }
  std::string str() const {
    return std::to_string((ip >> 24) & 0xff) + "." + std::to_string((ip >> 16) & 0xff) + "." +
           std::to_string((ip >> 8) & 0xff) + "." + std::to_string(ip & 0xff) + ":" +
           std::to_string(port);
  }
};

}  // namespace whisper

template <>
struct std::hash<whisper::NodeId> {
  std::size_t operator()(const whisper::NodeId& id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value);
  }
};

template <>
struct std::hash<whisper::GroupId> {
  std::size_t operator()(const whisper::GroupId& id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value);
  }
};

template <>
struct std::hash<whisper::Endpoint> {
  std::size_t operator()(const whisper::Endpoint& ep) const noexcept {
    return std::hash<std::uint64_t>{}((std::uint64_t{ep.ip} << 16) | ep.port);
  }
};

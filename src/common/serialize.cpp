#include "common/serialize.hpp"

// Header-only; this TU anchors the library target.

#include "common/log.hpp"

#include <cstdio>

namespace whisper {

namespace {
LogLevel g_level = LogLevel::kWarn;
const char* level_tag(LogLevel l) {
  switch (l) {
    case LogLevel::kError:
      return "E";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kDebug:
      return "D";
    default:
      return "?";
  }
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

void logf(LogLevel level, const char* fmt, ...) {
  if (static_cast<int>(level) > static_cast<int>(g_level)) return;
  std::fprintf(stderr, "[%s] ", level_tag(level));
  va_list ap;
  va_start(ap, fmt);
  std::vfprintf(stderr, fmt, ap);
  va_end(ap);
  std::fputc('\n', stderr);
}

}  // namespace whisper

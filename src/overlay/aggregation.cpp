#include "overlay/aggregation.hpp"

#include <algorithm>

namespace whisper::overlay {

namespace {
constexpr std::uint8_t kKindPush = 1;
constexpr std::uint8_t kKindPull = 2;
}  // namespace

Aggregation::Aggregation(net::Clock& clock, ppss::Ppss& ppss, double initial_value,
                         AggregationConfig config, Rng rng)
    : clock_(clock), ppss_(ppss), config_(config), rng_(rng), value_(initial_value) {
  ppss_.register_app(config_.app_id, [this](const wcl::RemotePeer& from, BytesView p) {
    handle_app(from, p);
  });
}

Aggregation::~Aggregation() { stop(); }

void Aggregation::start() {
  if (running_) return;
  running_ = true;
  cycle_timer_ = clock_.schedule_after(rng_.next_below(config_.cycle), [this] { on_cycle(); });
}

void Aggregation::stop() {
  if (!running_) return;
  running_ = false;
  if (cycle_timer_ != 0) clock_.cancel(cycle_timer_);
}

double Aggregation::combine(double mine, double theirs) const {
  switch (config_.kind) {
    case AggregateKind::kAverage:
      return (mine + theirs) / 2.0;
    case AggregateKind::kMax:
      return std::max(mine, theirs);
    case AggregateKind::kMin:
      return std::min(mine, theirs);
  }
  return mine;
}

void Aggregation::on_cycle() {
  if (!running_) return;
  cycle_timer_ = clock_.schedule_after(config_.cycle, [this] { on_cycle(); });

  const auto& view = ppss_.private_view();
  if (view.empty()) return;
  Rng pick = rng_.fork();
  const auto& entries = view.entries();
  const auto& partner = entries[pick.pick_index(entries)];

  Writer w;
  w.u8(kKindPush);
  w.f64(value_);
  ppss_.send_app_to(partner.peer, w.data(), config_.app_id);
}

void Aggregation::handle_app(const wcl::RemotePeer& from, BytesView payload) {
  Reader r(payload);
  const std::uint8_t kind = r.u8();
  const double theirs = r.f64();
  if (!r.ok()) return;

  if (kind == kKindPush) {
    // Classic push-pull: answer with our pre-combination value, then both
    // sides hold combine(mine, theirs).
    Writer w;
    w.u8(kKindPull);
    w.f64(value_);
    ppss_.send_app_to(from, w.data(), config_.app_id);
  }
  value_ = combine(value_, theirs);
  ++exchanges_;
}

}  // namespace whisper::overlay

// Generic T-Man: gossip-based overlay construction inside a private group.
//
// The paper builds T-Chord with the T-Man framework [12] and points at
// further overlays (GosSkip [13], Kelips [14]) as equally valid consumers of
// the PPSS. This module is the reusable core: nodes hold a bounded candidate
// set of (key, descriptor) pairs, gossip the candidates most useful to their
// partner (ranked by a pluggable proximity function), and converge to the
// neighbourhood structure the ranking induces. All traffic runs over the
// PPSS application channel, i.e. through WCL confidential routes.
#pragma once

#include <functional>
#include <map>
#include <optional>

#include "ppss/ppss.hpp"

namespace whisper::overlay {

/// Key on the overlay's metric space.
using OverlayKey = std::uint64_t;

/// A member descriptor placed on the metric space.
struct OverlayDescriptor {
  OverlayKey key = 0;
  wcl::RemotePeer peer;

  NodeId id() const { return peer.card.id; }
  void serialize(Writer& w) const;
  static std::optional<OverlayDescriptor> deserialize(Reader& r);
};

struct TManConfig {
  net::Time cycle = 30 * net::kSecond;
  std::size_t candidate_capacity = 32;
  std::size_t gossip_descriptors = 8;
  /// Fraction of cycles gossiping with the closest candidate (the rest go
  /// to random candidates for connectivity).
  double proximity_bias = 0.5;
  /// PPSS application channel id this instance listens on.
  std::uint8_t app_id = 2;
  /// Cap on descriptors accepted from one gossip frame.
  std::size_t max_wire_descriptors = 32;
};

/// Proximity function: lower = more relevant to `self`. T-Man ranks
/// candidate sets with this when choosing what to keep and what to send.
using RankFn = std::function<std::uint64_t(OverlayKey self, OverlayKey candidate)>;

/// Ready-made rankings.
namespace rank {
/// Ring distance (min of both directions) — T-Chord-style rings.
std::uint64_t ring(OverlayKey self, OverlayKey candidate);
/// Absolute difference on the line — sorted/GosSkip-style overlays.
std::uint64_t line(OverlayKey self, OverlayKey candidate);
}  // namespace rank

class TMan {
 public:
  TMan(net::Clock& clock, ppss::Ppss& ppss, OverlayKey self_key, RankFn rank,
       TManConfig config, Rng rng);
  ~TMan();

  TMan(const TMan&) = delete;
  TMan& operator=(const TMan&) = delete;

  void start();
  void stop();

  OverlayKey self_key() const { return self_key_; }
  std::size_t candidate_count() const { return candidates_.size(); }

  /// The n candidates ranked closest to self.
  std::vector<OverlayDescriptor> closest(std::size_t n) const;
  /// The candidates ranked closest to an arbitrary key.
  std::vector<OverlayDescriptor> closest_to(OverlayKey key, std::size_t n) const;
  /// All candidates in key order (ascending).
  std::vector<OverlayDescriptor> candidates_sorted() const;

  /// Inject a descriptor (e.g. from application traffic).
  void absorb(const OverlayDescriptor& d);

  std::uint64_t exchanges() const { return exchanges_; }
  std::uint64_t decode_rejects() const { return decode_rejects_; }

 private:
  void on_cycle();
  void handle_app(const wcl::RemotePeer& from, BytesView payload);
  std::vector<OverlayDescriptor> best_for(OverlayKey target, std::size_t n) const;
  void trim();

  net::Clock& clock_;
  ppss::Ppss& ppss_;
  OverlayKey self_key_;
  RankFn rank_;
  TManConfig config_;
  Rng rng_;
  bool running_ = false;
  net::TimerId cycle_timer_ = 0;
  std::map<OverlayKey, OverlayDescriptor> candidates_;
  std::uint64_t exchanges_ = 0;
  std::uint64_t decode_rejects_ = 0;
};

/// A node's key on the sorted overlay (hash of its id, distinct domain from
/// the chord keys).
OverlayKey overlay_key_of(NodeId id);

}  // namespace whisper::overlay

#include "overlay/broadcast.hpp"

#include <algorithm>

namespace whisper::overlay {

Broadcast::Broadcast(ppss::Ppss& ppss, BroadcastConfig config, Rng rng)
    : ppss_(ppss), config_(config), rng_(rng),
      next_msg_id_((ppss.self().value << 20) | 1) {
  ppss_.register_app(config_.app_id, [this](const wcl::RemotePeer& from, BytesView p) {
    handle_app(from, p);
  });
}

bool Broadcast::mark_seen(std::uint64_t msg_id) {
  if (seen_.contains(msg_id)) return false;
  if (seen_.size() >= config_.seen_capacity) seen_.clear();  // coarse reset
  seen_.insert(msg_id);
  return true;
}

std::uint64_t Broadcast::publish(BytesView payload) {
  const std::uint64_t msg_id = next_msg_id_++;
  mark_seen(msg_id);
  ++stats_.published;
  ++stats_.delivered;
  if (on_deliver) on_deliver(ppss_.self(), payload);
  forward(msg_id, ppss_.self(), config_.hop_budget, payload, ppss_.self());
  return msg_id;
}

void Broadcast::forward(std::uint64_t msg_id, NodeId origin, std::uint32_t hops_left,
                        BytesView payload, NodeId skip) {
  if (hops_left == 0) return;
  Writer w;
  w.u64(msg_id);
  w.node_id(origin);
  w.u32(hops_left - 1);
  w.bytes(payload);

  // Sample `fanout` distinct members from the private view.
  std::vector<const ppss::PrivateEntry*> pool;
  for (const auto& e : ppss_.private_view().entries()) {
    if (e.id() == skip || e.id() == ppss_.self()) continue;
    pool.push_back(&e);
  }
  rng_.shuffle(pool);
  const std::size_t n = std::min(config_.fanout, pool.size());
  for (std::size_t i = 0; i < n; ++i) {
    ppss_.send_app_to(pool[i]->peer, w.data(), config_.app_id);
    ++stats_.forwarded;
  }
}

void Broadcast::handle_app(const wcl::RemotePeer& from, BytesView payload) {
  Reader r(payload);
  const std::uint64_t msg_id = r.u64();
  const NodeId origin = r.node_id();
  const std::uint32_t hops_left = r.u32();
  const Bytes body = r.bytes(config_.max_payload);
  if (!r.expect_done()) {
    ++stats_.decode_rejects;
    return;
  }

  if (!mark_seen(msg_id)) {
    ++stats_.duplicates;
    return;
  }
  ++stats_.delivered;
  if (on_deliver) on_deliver(origin, body);
  // Clamp the remaining budget: a forged frame cannot amplify itself past
  // the locally configured hop budget.
  forward(msg_id, origin, std::min(hops_left, config_.hop_budget), body, from.card.id);
}

}  // namespace whisper::overlay

// Group broadcast: lpbcast-style probabilistic dissemination [5] inside a
// private group — the "application-level multicast" the paper lists among
// the PSS-powered protocols, here running over confidential channels.
//
// Messages carry an id and a hop budget; every receiver delivers once and
// re-forwards to `fanout` members sampled from its private view. With
// fanout ~3 and log-scale hop budgets, delivery probability approaches 1
// for group-sized populations.
#pragma once

#include <functional>
#include <unordered_set>

#include "ppss/ppss.hpp"

namespace whisper::overlay {

struct BroadcastConfig {
  std::size_t fanout = 3;
  std::uint32_t hop_budget = 6;
  /// Cap on the duplicate-suppression cache.
  std::size_t seen_capacity = 4096;
  std::uint8_t app_id = 4;
  /// Cap on a broadcast body accepted off the wire.
  std::size_t max_payload = 64 * 1024;
};

class Broadcast {
 public:
  Broadcast(ppss::Ppss& ppss, BroadcastConfig config, Rng rng);

  Broadcast(const Broadcast&) = delete;
  Broadcast& operator=(const Broadcast&) = delete;

  /// Delivery upcall: fires exactly once per message id.
  using DeliverFn = std::function<void(NodeId origin, BytesView payload)>;
  DeliverFn on_deliver;

  /// Publish to the group; delivers locally too. Returns the message id.
  std::uint64_t publish(BytesView payload);

  struct Stats {
    std::uint64_t published = 0;
    std::uint64_t delivered = 0;
    std::uint64_t duplicates = 0;
    std::uint64_t forwarded = 0;
    std::uint64_t decode_rejects = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  void handle_app(const wcl::RemotePeer& from, BytesView payload);
  void forward(std::uint64_t msg_id, NodeId origin, std::uint32_t hops_left,
               BytesView payload, NodeId skip);
  bool mark_seen(std::uint64_t msg_id);

  ppss::Ppss& ppss_;
  BroadcastConfig config_;
  Rng rng_;
  std::unordered_set<std::uint64_t> seen_;
  std::uint64_t next_msg_id_;
  Stats stats_;
};

}  // namespace whisper::overlay

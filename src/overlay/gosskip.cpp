#include "overlay/gosskip.hpp"

namespace whisper::overlay {

namespace {
constexpr std::uint8_t kKindSearchReq = 1;
constexpr std::uint8_t kKindSearchResp = 2;
}  // namespace

GosSkip::GosSkip(net::Clock& clock, ppss::Ppss& ppss, GosSkipConfig config, Rng rng)
    : clock_(clock), ppss_(ppss), config_(config), rng_(rng),
      tman_(clock, ppss, overlay_key_of(ppss.self()), rank::line, config.tman, rng_.fork()),
      next_search_id_(ppss.self().value << 16) {
  ppss_.register_app(config_.search_app_id,
                     [this](const wcl::RemotePeer& from, BytesView p) {
                       handle_search(from, p);
                     });
}

GosSkip::~GosSkip() { stop(); }

void GosSkip::start() { tman_.start(); }

void GosSkip::stop() {
  tman_.stop();
  for (auto& [id, p] : pending_) {
    if (p.timeout_timer != 0) clock_.cancel(p.timeout_timer);
  }
  pending_.clear();
}

std::optional<OverlayDescriptor> GosSkip::left() const {
  std::optional<OverlayDescriptor> best;
  for (const auto& d : tman_.candidates_sorted()) {
    if (d.key < self_key()) best = d;  // sorted ascending: last one below
  }
  return best;
}

std::optional<OverlayDescriptor> GosSkip::right() const {
  for (const auto& d : tman_.candidates_sorted()) {
    if (d.key > self_key()) return d;  // first one above
  }
  return std::nullopt;
}

bool GosSkip::owns(OverlayKey key) const {
  // The owner of `key` is the member with the smallest key >= `key`
  // (wrapping past the largest key to the smallest member). We own it when
  // no known candidate sits between `key` and us.
  if (key > self_key()) {
    // Only via wrap-around: we own it if we are the smallest member and no
    // candidate has key >= `key`.
    for (const auto& d : tman_.candidates_sorted()) {
      if (d.key >= key || d.key < self_key()) return false;
    }
    return true;
  }
  for (const auto& d : tman_.candidates_sorted()) {
    if (d.key >= key && d.key < self_key()) return false;
  }
  return true;
}

void GosSkip::search(OverlayKey key, SearchCallback callback) {
  const std::uint64_t search_id = next_search_id_++;
  PendingSearch pending;
  pending.callback = std::move(callback);
  pending.started_at = clock_.now();
  pending.timeout_timer = clock_.schedule_after(config_.search_timeout, [this, search_id] {
    auto it = pending_.find(search_id);
    if (it == pending_.end()) return;
    auto cb = std::move(it->second.callback);
    pending_.erase(it);
    cb(std::nullopt);
  });
  pending_[search_id] = std::move(pending);
  route_or_answer(key, search_id, OverlayDescriptor{self_key(), ppss_.self_descriptor()}, 0);
}

void GosSkip::route_or_answer(OverlayKey key, std::uint64_t search_id,
                              const OverlayDescriptor& origin, std::uint32_t hops) {
  const bool we_are_origin = origin.id() == ppss_.self();
  if (owns(key) || hops >= config_.search_hop_limit) {
    if (we_are_origin) {
      auto it = pending_.find(search_id);
      if (it == pending_.end()) return;
      if (it->second.timeout_timer != 0) clock_.cancel(it->second.timeout_timer);
      auto cb = std::move(it->second.callback);
      const net::Time rtt = clock_.now() - it->second.started_at;
      pending_.erase(it);
      cb(SearchResult{OverlayDescriptor{self_key(), ppss_.self_descriptor()}, hops, rtt});
      return;
    }
    Writer w;
    w.u8(kKindSearchResp);
    w.u64(search_id);
    w.u32(hops);
    OverlayDescriptor{self_key(), ppss_.self_descriptor()}.serialize(w);
    ppss_.send_app_to(origin.peer, w.data(), config_.search_app_id);
    return;
  }

  // Greedy step: the known candidate closest to the target key.
  auto next = tman_.closest_to(key, 1);
  if (next.empty()) return;

  Writer w;
  w.u8(kKindSearchReq);
  w.u64(search_id);
  w.u64(key);
  w.u32(hops + 1);
  origin.serialize(w);
  ppss_.send_app_to(next.front().peer, w.data(), config_.search_app_id);
}

void GosSkip::handle_search(const wcl::RemotePeer& from, BytesView payload) {
  Reader r(payload);
  const std::uint8_t kind = r.u8();
  if (!r.ok() || (kind != kKindSearchReq && kind != kKindSearchResp)) {
    ++decode_rejects_;
    return;
  }
  if (kind == kKindSearchReq) {
    const std::uint64_t search_id = r.u64();
    const OverlayKey key = r.u64();
    const std::uint32_t hops = r.u32();
    auto origin = OverlayDescriptor::deserialize(r);
    if (!origin || !r.expect_done()) {
      ++decode_rejects_;
      return;
    }
    route_or_answer(key, search_id, *origin, hops);
    return;
  }
  if (kind == kKindSearchResp) {
    const std::uint64_t search_id = r.u64();
    const std::uint32_t hops = r.u32();
    auto owner = OverlayDescriptor::deserialize(r);
    if (!owner || !r.expect_done()) {
      ++decode_rejects_;
      return;
    }
    auto it = pending_.find(search_id);
    if (it == pending_.end()) return;
    if (it->second.timeout_timer != 0) clock_.cancel(it->second.timeout_timer);
    auto cb = std::move(it->second.callback);
    const net::Time rtt = clock_.now() - it->second.started_at;
    pending_.erase(it);
    cb(SearchResult{*owner, hops, rtt});
  }
  (void)from;
}

}  // namespace whisper::overlay

// Gossip-based aggregation inside a private group (the paper's reference
// [8], Jelasity et al.): push-pull averaging over confidential channels.
//
// Each node holds a local estimate; on every exchange both partners set
// their estimate to the pair's mean. Estimates converge exponentially to
// the group-wide average. Three classic uses, all cited by the paper:
//  - AVERAGE of a measured quantity;
//  - MAX by taking max() instead of mean() (the leader-election primitive
//    of §IV-A);
//  - SIZE estimation [11]: one node starts at 1, everyone else at 0; the
//    average converges to 1/n, so n ≈ 1/estimate.
#pragma once

#include <functional>

#include "ppss/ppss.hpp"

namespace whisper::overlay {

enum class AggregateKind : std::uint8_t {
  kAverage = 0,
  kMax = 1,
  kMin = 2,
};

struct AggregationConfig {
  net::Time cycle = 30 * net::kSecond;
  AggregateKind kind = AggregateKind::kAverage;
  std::uint8_t app_id = 5;
};

class Aggregation {
 public:
  Aggregation(net::Clock& clock, ppss::Ppss& ppss, double initial_value,
              AggregationConfig config, Rng rng);
  ~Aggregation();

  Aggregation(const Aggregation&) = delete;
  Aggregation& operator=(const Aggregation&) = delete;

  void start();
  void stop();

  double estimate() const { return value_; }
  void set_value(double v) { value_ = v; }
  std::uint64_t exchanges() const { return exchanges_; }

  /// For kAverage seeded as size-estimation (leader = 1, others = 0):
  /// the implied group size (0 when the estimate is still degenerate).
  double implied_size() const { return value_ > 1e-12 ? 1.0 / value_ : 0.0; }

 private:
  void on_cycle();
  void handle_app(const wcl::RemotePeer& from, BytesView payload);
  double combine(double mine, double theirs) const;

  net::Clock& clock_;
  ppss::Ppss& ppss_;
  AggregationConfig config_;
  Rng rng_;
  double value_;
  bool running_ = false;
  net::TimerId cycle_timer_ = 0;
  std::uint64_t exchanges_ = 0;
};

}  // namespace whisper::overlay

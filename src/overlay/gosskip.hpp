// GosSkip-style sorted overlay (the paper's reference [13]): members of a
// private group arrange themselves on a line sorted by key, each node
// maintaining its nearest left/right neighbours — a skip-list level-0 built
// with T-Man over confidential channels. Supports greedy key search with
// replies routed straight back to the querier (same pattern as T-Chord's
// Fig. 9 experiment).
#pragma once

#include "overlay/tman.hpp"

namespace whisper::overlay {

struct GosSkipConfig {
  TManConfig tman{};
  std::size_t search_hop_limit = 32;
  net::Time search_timeout = 20 * net::kSecond;
  /// PPSS app channel for search traffic (the TMan instance uses
  /// tman.app_id for construction gossip).
  std::uint8_t search_app_id = 3;
};

class GosSkip {
 public:
  GosSkip(net::Clock& clock, ppss::Ppss& ppss, GosSkipConfig config, Rng rng);
  ~GosSkip();

  GosSkip(const GosSkip&) = delete;
  GosSkip& operator=(const GosSkip&) = delete;

  void start();
  void stop();

  OverlayKey self_key() const { return tman_.self_key(); }

  /// Nearest neighbour on the left (largest key < self), if known.
  std::optional<OverlayDescriptor> left() const;
  /// Nearest neighbour on the right (smallest key > self), if known.
  std::optional<OverlayDescriptor> right() const;
  std::size_t candidate_count() const { return tman_.candidate_count(); }

  struct SearchResult {
    OverlayDescriptor owner;  // the member with the smallest key >= target
    std::uint32_t hops = 0;
    net::Time rtt = 0;
  };
  using SearchCallback = std::function<void(std::optional<SearchResult>)>;

  /// Greedy search for the member responsible for `key` (successor on the
  /// sorted line, wrapping at the top).
  void search(OverlayKey key, SearchCallback callback);

  std::uint64_t decode_rejects() const { return decode_rejects_; }

 private:
  void handle_search(const wcl::RemotePeer& from, BytesView payload);
  void route_or_answer(OverlayKey key, std::uint64_t search_id,
                       const OverlayDescriptor& origin, std::uint32_t hops);
  bool owns(OverlayKey key) const;

  net::Clock& clock_;
  ppss::Ppss& ppss_;
  GosSkipConfig config_;
  Rng rng_;
  TMan tman_;

  struct PendingSearch {
    SearchCallback callback;
    net::Time started_at = 0;
    net::TimerId timeout_timer = 0;
  };
  std::unordered_map<std::uint64_t, PendingSearch> pending_;
  std::uint64_t next_search_id_;
  std::uint64_t decode_rejects_ = 0;
};

}  // namespace whisper::overlay

#include "overlay/tman.hpp"

#include <algorithm>

#include "crypto/sha256.hpp"

namespace whisper::overlay {

namespace {
constexpr std::uint8_t kKindReq = 1;
constexpr std::uint8_t kKindResp = 2;
}  // namespace

void OverlayDescriptor::serialize(Writer& w) const {
  w.u64(key);
  peer.serialize(w);
}

std::optional<OverlayDescriptor> OverlayDescriptor::deserialize(Reader& r) {
  OverlayDescriptor d;
  d.key = r.u64();
  auto peer = wcl::RemotePeer::deserialize(r);
  if (!peer || !r.ok()) return std::nullopt;
  d.peer = std::move(*peer);
  return d;
}

namespace rank {

std::uint64_t ring(OverlayKey self, OverlayKey candidate) {
  const std::uint64_t cw = candidate - self;
  const std::uint64_t ccw = self - candidate;
  return std::min(cw, ccw);
}

std::uint64_t line(OverlayKey self, OverlayKey candidate) {
  return self > candidate ? self - candidate : candidate - self;
}

}  // namespace rank

OverlayKey overlay_key_of(NodeId id) {
  Writer w;
  w.str("overlay-key");
  w.node_id(id);
  return crypto::fingerprint64(w.data());
}

TMan::TMan(net::Clock& clock, ppss::Ppss& ppss, OverlayKey self_key, RankFn rank,
           TManConfig config, Rng rng)
    : clock_(clock), ppss_(ppss), self_key_(self_key), rank_(std::move(rank)), config_(config),
      rng_(rng) {
  ppss_.register_app(config_.app_id, [this](const wcl::RemotePeer& from, BytesView p) {
    handle_app(from, p);
  });
}

TMan::~TMan() { stop(); }

void TMan::start() {
  if (running_) return;
  running_ = true;
  cycle_timer_ = clock_.schedule_after(rng_.next_below(config_.cycle), [this] { on_cycle(); });
}

void TMan::stop() {
  if (!running_) return;
  running_ = false;
  if (cycle_timer_ != 0) clock_.cancel(cycle_timer_);
}

void TMan::absorb(const OverlayDescriptor& d) {
  if (d.id() == ppss_.self() || d.id().is_nil()) return;
  candidates_[d.key] = d;
  trim();
}

void TMan::trim() {
  // Keep the candidates most relevant to self; drop the worst-ranked.
  while (candidates_.size() > config_.candidate_capacity) {
    auto worst = candidates_.begin();
    for (auto it = candidates_.begin(); it != candidates_.end(); ++it) {
      if (rank_(self_key_, it->first) > rank_(self_key_, worst->first)) worst = it;
    }
    candidates_.erase(worst);
  }
}

std::vector<OverlayDescriptor> TMan::best_for(OverlayKey target, std::size_t n) const {
  std::vector<OverlayDescriptor> all;
  all.reserve(candidates_.size());
  for (const auto& [k, d] : candidates_) all.push_back(d);
  std::sort(all.begin(), all.end(), [&](const OverlayDescriptor& a, const OverlayDescriptor& b) {
    return rank_(target, a.key) < rank_(target, b.key);
  });
  if (all.size() > n) all.resize(n);
  return all;
}

std::vector<OverlayDescriptor> TMan::closest(std::size_t n) const {
  return best_for(self_key_, n);
}

std::vector<OverlayDescriptor> TMan::closest_to(OverlayKey key, std::size_t n) const {
  return best_for(key, n);
}

std::vector<OverlayDescriptor> TMan::candidates_sorted() const {
  std::vector<OverlayDescriptor> out;
  out.reserve(candidates_.size());
  for (const auto& [k, d] : candidates_) out.push_back(d);
  return out;
}

void TMan::on_cycle() {
  if (!running_) return;
  cycle_timer_ = clock_.schedule_after(config_.cycle, [this] { on_cycle(); });

  // Seed from the PPSS private view (keeps descriptors fresh too).
  for (const auto& e : ppss_.private_view().entries()) {
    absorb(OverlayDescriptor{overlay_key_of(e.id()), e.peer});
  }
  if (candidates_.empty()) return;

  // Partner: proximity-biased selection.
  const OverlayDescriptor* partner = nullptr;
  if (rng_.next_bool(config_.proximity_bias)) {
    auto best = best_for(self_key_, 1);
    if (!best.empty()) partner = &candidates_.find(best.front().key)->second;
  }
  if (partner == nullptr) {
    auto it = candidates_.begin();
    std::advance(it, static_cast<std::ptrdiff_t>(rng_.next_below(candidates_.size())));
    partner = &it->second;
  }

  Writer w;
  w.u8(kKindReq);
  w.u64(self_key_);
  auto buffer = best_for(partner->key, config_.gossip_descriptors);
  w.u16(static_cast<std::uint16_t>(buffer.size()));
  for (const auto& d : buffer) d.serialize(w);
  ppss_.send_app_to(partner->peer, w.data(), config_.app_id);
}

void TMan::handle_app(const wcl::RemotePeer& from, BytesView payload) {
  Reader r(payload);
  const std::uint8_t kind = r.u8();
  const OverlayKey sender_key = r.u64();
  const std::uint16_t count = r.count16(config_.max_wire_descriptors);
  std::vector<OverlayDescriptor> received;
  for (std::uint16_t i = 0; i < count && r.ok(); ++i) {
    auto d = OverlayDescriptor::deserialize(r);
    if (!d) break;
    received.push_back(std::move(*d));
  }
  if (!r.ok() || received.size() != count || !r.expect_done() ||
      (kind != kKindReq && kind != kKindResp)) {
    ++decode_rejects_;
    return;
  }

  absorb(OverlayDescriptor{sender_key, from});
  for (const auto& d : received) absorb(d);
  ++exchanges_;

  if (kind == kKindReq) {
    Writer w;
    w.u8(kKindResp);
    w.u64(self_key_);
    auto buffer = best_for(sender_key, config_.gossip_descriptors);
    w.u16(static_cast<std::uint16_t>(buffer.size()));
    for (const auto& d : buffer) d.serialize(w);
    ppss_.send_app_to(from, w.data(), config_.app_id);
  }
}

}  // namespace whisper::overlay

#include "churn/churn.hpp"

#include <cmath>

namespace whisper::churn {

ChurnEngine::ChurnEngine(net::Clock& clock, KillFn kill, SpawnFn spawn,
                         PopulationFn population)
    : clock_(clock), kill_(std::move(kill)), spawn_(std::move(spawn)),
      population_(std::move(population)) {}

void ChurnEngine::schedule(const ChurnPhase& phase) {
  if (phase.leave_fraction <= 0.0 || phase.end <= phase.start) return;
  clock_.schedule_at(phase.start, [this, phase] { tick(phase); });
}

void ChurnEngine::tick(ChurnPhase phase) {
  if (clock_.now() >= phase.end) return;

  const double exact = static_cast<double>(population_()) * phase.leave_fraction + leave_carry_;
  const std::size_t leavers = static_cast<std::size_t>(exact);
  leave_carry_ = exact - static_cast<double>(leavers);

  const std::size_t killed = leavers > 0 ? kill_(leavers) : 0;
  total_killed_ += killed;
  const std::size_t joiners =
      static_cast<std::size_t>(std::llround(static_cast<double>(killed) * phase.replacement_ratio));
  if (joiners > 0) {
    spawn_(joiners);
    total_spawned_ += joiners;
  }

  const net::Time next = clock_.now() + phase.interval;
  if (next < phase.end) {
    clock_.schedule_at(next, [this, phase] { tick(phase); });
  }
}

void ChurnEngine::schedule_join(net::Time start, net::Time duration, std::size_t count) {
  if (count == 0) return;
  const net::Time step = duration > 0 ? duration / count : 0;
  for (std::size_t i = 0; i < count; ++i) {
    clock_.schedule_at(start + step * i, [this] {
      spawn_(1);
      ++total_spawned_;
    });
  }
}

}  // namespace whisper::churn

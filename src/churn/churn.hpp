// Churn injection (the SPLAY churn-module role, Table I).
//
// Executes churn scripts of the shape the paper uses:
//   from 0s to 30s     join 1000
//   at 300s            set replacement ratio to 100%
//   from 300s to 1200s const churn X% each 60s
//   at 1200s           stop
//
// The engine drives two callbacks owned by the testbed: kill(n) removes n
// random live nodes, spawn(n) boots n fresh ones.
#pragma once

#include <functional>

#include "net/spi.hpp"

namespace whisper::churn {

struct ChurnPhase {
  net::Time start = 0;
  net::Time end = 0;
  net::Time interval = 60 * net::kSecond;
  /// Fraction of the *current network size* leaving per interval.
  double leave_fraction = 0.0;
  /// Joiners per leaver (1.0 = the paper's 100% replacement ratio).
  double replacement_ratio = 1.0;
};

class ChurnEngine {
 public:
  /// kill(n) returns how many nodes were actually removed; spawn(n) boots n
  /// fresh nodes; population() reports the current live count.
  using KillFn = std::function<std::size_t(std::size_t)>;
  using SpawnFn = std::function<void(std::size_t)>;
  using PopulationFn = std::function<std::size_t()>;

  ChurnEngine(net::Clock& clock, KillFn kill, SpawnFn spawn, PopulationFn population);

  /// Schedule a churn phase. Multiple phases may be scheduled.
  void schedule(const ChurnPhase& phase);

  /// Schedule a one-shot mass join of `count` nodes spread over
  /// [start, start+duration).
  void schedule_join(net::Time start, net::Time duration, std::size_t count);

  std::size_t total_killed() const { return total_killed_; }
  std::size_t total_spawned() const { return total_spawned_; }

 private:
  void tick(ChurnPhase phase);

  net::Clock& clock_;
  KillFn kill_;
  SpawnFn spawn_;
  PopulationFn population_;
  std::size_t total_killed_ = 0;
  std::size_t total_spawned_ = 0;
  double leave_carry_ = 0.0;  // fractional leavers carried between ticks
};

}  // namespace whisper::churn

// The NAT-resilient gossip peer sampling service (Nylon, §II-B/§III-B).
//
// Implements the healer strategy: each cycle a node ages its view, selects
// the oldest entry as exchange partner, and both sides merge keeping the
// youngest entries. WHISPER's two PSS modifications live here:
//  - Π-biased truncation (delegated to pss::View::truncate_biased);
//  - the public key sampling hook: `extra_provider`/`extra_consumer` let
//    the key service piggyback each node's public key on gossip messages.
//
// Failure handling: if the partner does not answer within the timeout, its
// entry is dropped from the view (standard gossip failure detection). For
// N-nodes the protocol also repairs a lost relay by promoting a fresh
// P-node from the view.
#pragma once

#include <deque>
#include <functional>
#include <optional>
#include <unordered_map>

#include "nylon/transport.hpp"
#include "pss/view.hpp"
#include "sim/simulator.hpp"
#include "telemetry/scope.hpp"

namespace whisper::nylon {

struct PssConfig {
  std::size_t view_size = 10;       // c
  std::size_t gossip_size = 5;      // entries per buffer, including self
  std::size_t pi_min_public = 0;    // Π
  sim::Time cycle = 10 * sim::kSecond;
  sim::Time response_timeout = 5 * sim::kSecond;
  /// Consecutive failed exchanges before a peer is quarantined. Quarantined
  /// descriptors are refused on merge, so a dead node's card stops
  /// recirculating through gossip instead of being re-learned every cycle.
  int suspicion_threshold = 2;
  sim::Time quarantine_ttl = 2 * sim::kMinute;
  /// Healing reserve: peers evicted by exchange timeout are remembered and
  /// one is re-probed every `reserve_retry_cycles` cycles (0 disables). A
  /// network partition turns the entire view over to same-side peers, so
  /// without this a healed partition leaves the overlay permanently
  /// bisected — the reserve re-seeds the first cross-side edge and gossip
  /// re-blends from there. Entries are dropped for good after
  /// `reserve_max_attempts` failed probes.
  std::size_t reserve_capacity = 8;
  int reserve_retry_cycles = 3;
  int reserve_max_attempts = 8;
};

/// View entry of the system-wide PSS: contact card + gossip age.
struct PssEntry {
  pss::ContactCard card;
  std::uint32_t age = 0;

  NodeId id() const { return card.id; }
  bool is_public() const { return card.is_public; }

  void serialize(Writer& w) const {
    card.serialize(w);
    w.u32(age);
  }
  static PssEntry deserialize(Reader& r) {
    PssEntry e;
    e.card = pss::ContactCard::deserialize(r);
    e.age = r.u32();
    return e;
  }
};

class NylonPss {
 public:
  NylonPss(sim::Simulator& sim, Transport& transport, PssConfig config, Rng rng,
           telemetry::Scope telemetry = {});
  ~NylonPss();

  NylonPss(const NylonPss&) = delete;
  NylonPss& operator=(const NylonPss&) = delete;

  /// Seed the view (and, for N-nodes without a relay, pick one).
  void bootstrap(const std::vector<pss::ContactCard>& cards);

  /// Begin periodic gossip (first cycle at a random offset < cycle time).
  void start();
  void stop();

  const pss::View<PssEntry>& view() const { return view_; }

  /// Piggyback hooks (public key sampling service).
  std::function<Bytes()> extra_provider;
  std::function<void(const pss::ContactCard& from, BytesView)> extra_consumer;

  /// Invoked on every *successful* gossip exchange with the partner's card
  /// (both directions) — feeds the WCL connection backlog.
  std::function<void(const pss::ContactCard&)> on_exchange;

  std::uint64_t exchanges_initiated() const { return exchanges_initiated_; }
  std::uint64_t exchanges_completed() const { return exchanges_completed_; }
  std::uint64_t exchanges_timed_out() const { return exchanges_timed_out_; }
  std::uint64_t peers_quarantined() const { return peers_quarantined_; }
  std::uint64_t peers_rejoined() const { return peers_rejoined_; }
  std::size_t reserve_size() const { return reserve_.size(); }

  /// True while `id` sits in quarantine (its descriptors are refused).
  bool quarantined(NodeId id) const;

 private:
  void on_cycle();
  void handle_message(NodeId from, BytesView payload);
  void repair_relay();
  /// Initiate one exchange toward `partner_card`. Reserve probes carry
  /// their failure count so repeat offenders age out of the reserve.
  void start_exchange(const pss::ContactCard& partner_card, bool from_reserve,
                      int reserve_attempts);
  /// Remember an evicted peer for later re-probing (healing reserve).
  void remember(const pss::ContactCard& card, int attempts);
  /// Probe the oldest non-quarantined reserve entry, if any.
  void retry_reserved();
  /// Record a failed exchange with `id`; quarantines after the threshold.
  void note_failure(NodeId id);
  /// A live exchange with `id` clears all suspicion.
  void note_success(NodeId id);
  void purge_quarantine();
  std::vector<PssEntry> make_buffer();
  Bytes encode(std::uint8_t kind, std::uint32_t seq, const std::vector<PssEntry>& buffer);

  sim::Simulator& sim_;
  Transport& transport_;
  PssConfig config_;
  Rng rng_;
  pss::View<PssEntry> view_;
  bool running_ = false;
  sim::TimerId cycle_timer_ = 0;
  std::uint32_t next_seq_ = 1;

  struct PendingExchange {
    NodeId partner;
    pss::ContactCard partner_card;
    bool from_reserve = false;
    int reserve_attempts = 0;
    sim::TimerId timeout_timer = 0;
    sim::Time started_at = 0;
  };
  std::unordered_map<std::uint32_t, PendingExchange> pending_;

  std::uint64_t exchanges_initiated_ = 0;
  std::uint64_t exchanges_completed_ = 0;
  std::uint64_t exchanges_timed_out_ = 0;
  std::uint64_t peers_quarantined_ = 0;
  std::uint64_t peers_rejoined_ = 0;
  std::uint64_t cycle_count_ = 0;

  // Healing reserve: FIFO of evicted peers awaiting a re-probe.
  struct ReserveEntry {
    pss::ContactCard card;
    int attempts = 0;
  };
  std::deque<ReserveEntry> reserve_;

  // Failure suspicion: consecutive failed exchanges per peer, and the
  // quarantine (peer -> expiry) entered at the threshold.
  std::unordered_map<NodeId, int> suspicion_;
  std::unordered_map<NodeId, sim::Time> quarantine_;

  telemetry::Scope tel_;
  telemetry::Counter& m_initiated_;
  telemetry::Counter& m_completed_;
  telemetry::Counter& m_timed_out_;
  telemetry::Counter& m_quarantined_;
  telemetry::Counter& m_rejoined_;
  telemetry::Histogram& m_rtt_;
  telemetry::Histogram& m_view_size_;
};

}  // namespace whisper::nylon

// The NAT-resilient gossip peer sampling service (Nylon, §II-B/§III-B).
//
// Implements the healer strategy: each cycle a node ages its view, selects
// the oldest entry as exchange partner, and both sides merge keeping the
// youngest entries. WHISPER's two PSS modifications live here:
//  - Π-biased truncation (delegated to pss::View::truncate_biased);
//  - the public key sampling hook: `extra_provider`/`extra_consumer` let
//    the key service piggyback each node's public key on gossip messages.
//
// Failure handling: if the partner does not answer within the timeout, its
// entry is dropped from the view (standard gossip failure detection). For
// N-nodes the protocol also repairs a lost relay by promoting a fresh
// P-node from the view.
#pragma once

#include <deque>
#include <functional>
#include <optional>
#include "common/densemap.hpp"

#include "common/guard.hpp"
#include "nylon/transport.hpp"
#include "pss/view.hpp"
#include "net/spi.hpp"
#include "telemetry/scope.hpp"

namespace whisper::nylon {

struct PssConfig {
  std::size_t view_size = 10;       // c
  std::size_t gossip_size = 5;      // entries per buffer, including self
  std::size_t pi_min_public = 0;    // Π
  net::Time cycle = 10 * net::kSecond;
  net::Time response_timeout = 5 * net::kSecond;
  /// Consecutive failed exchanges before a peer is quarantined. Quarantined
  /// descriptors are refused on merge, so a dead node's card stops
  /// recirculating through gossip instead of being re-learned every cycle.
  int suspicion_threshold = 2;
  net::Time quarantine_ttl = 2 * net::kMinute;
  /// Healing reserve: peers evicted by exchange timeout are remembered and
  /// one is re-probed every `reserve_retry_cycles` cycles (0 disables). A
  /// network partition turns the entire view over to same-side peers, so
  /// without this a healed partition leaves the overlay permanently
  /// bisected — the reserve re-seeds the first cross-side edge and gossip
  /// re-blends from there. Entries are dropped for good after
  /// `reserve_max_attempts` failed probes.
  std::size_t reserve_capacity = 8;
  int reserve_retry_cycles = 3;
  int reserve_max_attempts = 8;

  // --- Hostile-input defenses (generous defaults: honest traffic never
  // trips them, but a misbehaving peer is bounded and eventually reported
  // into the quarantine path). ---
  /// Wire cap on gossip entries per frame (honest buffers carry
  /// `gossip_size` ≈ 5; a forged count can never drive the allocation).
  std::size_t max_gossip_entries = 64;
  /// Wire cap on the key-sampling piggyback blob.
  std::size_t max_extra_bytes = 4096;
  /// Per-peer inbound frame budget (frames/sec; 0 disables).
  double peer_rate_per_sec = 20;
  double peer_rate_burst = 60;
  /// Consecutive malformed frames from one peer before it is reported as
  /// misbehaving (which counts as a suspicion strike).
  int decode_fail_threshold = 3;
  /// Hard caps on peer-driven tracking state (FIFO / earliest-expiry
  /// eviction beyond them).
  std::size_t guard_max_peers = 1024;
  std::size_t max_suspects = 1024;
  std::size_t max_quarantined = 1024;
};

/// View entry of the system-wide PSS: contact card + gossip age.
struct PssEntry {
  pss::ContactCard card;
  std::uint32_t age = 0;

  NodeId id() const { return card.id; }
  bool is_public() const { return card.is_public; }

  void serialize(Writer& w) const {
    card.serialize(w);
    w.u32(age);
  }
  static PssEntry deserialize(Reader& r) {
    PssEntry e;
    e.card = pss::ContactCard::deserialize(r);
    e.age = r.u32();
    return e;
  }
};

class NylonPss {
 public:
  NylonPss(net::Clock& clock, Transport& transport, PssConfig config, Rng rng,
           telemetry::Scope telemetry = {});
  ~NylonPss();

  NylonPss(const NylonPss&) = delete;
  NylonPss& operator=(const NylonPss&) = delete;

  /// Seed the view (and, for N-nodes without a relay, pick one).
  void bootstrap(const std::vector<pss::ContactCard>& cards);

  /// Begin periodic gossip (first cycle at a random offset < cycle time).
  void start();
  void stop();

  const pss::View<PssEntry>& view() const { return view_; }

  /// Piggyback hooks (public key sampling service).
  std::function<Bytes()> extra_provider;
  std::function<void(const pss::ContactCard& from, BytesView)> extra_consumer;

  /// Invoked on every *successful* gossip exchange with the partner's card
  /// (both directions) — feeds the WCL connection backlog.
  std::function<void(const pss::ContactCard&)> on_exchange;

  std::uint64_t exchanges_initiated() const { return exchanges_initiated_; }
  std::uint64_t exchanges_completed() const { return exchanges_completed_; }
  std::uint64_t exchanges_timed_out() const { return exchanges_timed_out_; }
  std::uint64_t peers_quarantined() const { return peers_quarantined_; }
  std::uint64_t peers_rejoined() const { return peers_rejoined_; }
  std::size_t reserve_size() const { return reserve_.size(); }

  /// True while `id` sits in quarantine (its descriptors are refused).
  bool quarantined(NodeId id) const;

  /// Misbehavior report from a higher layer (WCL decode scoring, PPSS via
  /// the node): counts as a suspicion strike, so repeat offenders land in
  /// quarantine exactly like peers that fail exchanges.
  void report_misbehavior(NodeId id);

  /// Incarnation-bump proof-of-life from the transport (DESIGN.md §14): the
  /// peer crashed and came back as a fresh process. Clear its suspicion and
  /// quarantine so the rejoin re-enters the view immediately instead of
  /// waiting out the quarantine TTL — the old strikes were earned by a
  /// process that no longer exists.
  void note_peer_restart(NodeId id);

  std::uint64_t decode_rejects() const { return decode_rejects_; }
  std::uint64_t rate_limited() const { return guard_.rate_limited(); }
  std::uint64_t misbehavior_reports() const { return misbehavior_reports_; }

 private:
  void on_cycle();
  void handle_message(NodeId from, BytesView payload);
  void repair_relay();
  /// Initiate one exchange toward `partner_card`. Reserve probes carry
  /// their failure count so repeat offenders age out of the reserve.
  void start_exchange(const pss::ContactCard& partner_card, bool from_reserve,
                      int reserve_attempts);
  /// Remember an evicted peer for later re-probing (healing reserve).
  void remember(const pss::ContactCard& card, int attempts);
  /// Probe the oldest non-quarantined reserve entry, if any.
  void retry_reserved();
  /// Record a failed exchange with `id`; quarantines after the threshold.
  void note_failure(NodeId id);
  /// Count a malformed frame from `id` (decode counter + flight drop +
  /// guard scoring; threshold crossings become misbehavior reports).
  void reject_frame(NodeId from, Reader& r);
  /// A live exchange with `id` clears all suspicion.
  void note_success(NodeId id);
  void purge_quarantine();
  std::vector<PssEntry> make_buffer();
  Bytes encode(std::uint8_t kind, std::uint32_t seq, const std::vector<PssEntry>& buffer);

  net::Clock& clock_;
  Transport& transport_;
  PssConfig config_;
  Rng rng_;
  pss::View<PssEntry> view_;
  bool running_ = false;
  net::TimerId cycle_timer_ = 0;
  std::uint32_t next_seq_ = 1;

  struct PendingExchange {
    NodeId partner;
    pss::ContactCard partner_card;
    bool from_reserve = false;
    int reserve_attempts = 0;
    net::TimerId timeout_timer = 0;
    net::Time started_at = 0;
  };
  DenseMap<std::uint32_t, PendingExchange> pending_;

  std::uint64_t exchanges_initiated_ = 0;
  std::uint64_t exchanges_completed_ = 0;
  std::uint64_t exchanges_timed_out_ = 0;
  std::uint64_t peers_quarantined_ = 0;
  std::uint64_t peers_rejoined_ = 0;
  std::uint64_t cycle_count_ = 0;

  // Healing reserve: FIFO of evicted peers awaiting a re-probe.
  struct ReserveEntry {
    pss::ContactCard card;
    int attempts = 0;
  };
  std::deque<ReserveEntry> reserve_;

  // Failure suspicion: consecutive failed exchanges per peer, and the
  // quarantine (peer -> expiry) entered at the threshold. Both are
  // peer-driven, so both are hard-capped (suspicion evicts oldest-tracked
  // via the FIFO below; quarantine evicts the earliest expiry).
  DenseMap<NodeId, int> suspicion_;
  std::deque<NodeId> suspicion_order_;
  DenseMap<NodeId, net::Time> quarantine_;

  // Per-peer admission + decode scoring.
  PeerGuard guard_;
  std::uint64_t decode_rejects_ = 0;
  std::uint64_t misbehavior_reports_ = 0;

  telemetry::Scope tel_;
  telemetry::Counter& m_initiated_;
  telemetry::Counter& m_completed_;
  telemetry::Counter& m_timed_out_;
  telemetry::Counter& m_quarantined_;
  telemetry::Counter& m_rejoined_;
  telemetry::Counter& m_decode_rejects_;
  telemetry::Counter& m_rate_limited_;
  telemetry::Counter& m_misbehavior_;
  telemetry::Histogram& m_rtt_;
  telemetry::Histogram& m_view_size_;
};

}  // namespace whisper::nylon

#include "nylon/transport.hpp"

#include <algorithm>
#include <cassert>

#include "common/log.hpp"

namespace whisper::nylon {

namespace {

enum class MsgType : std::uint8_t {
  kData = 1,
  kForward = 2,
  kRegister = 3,
  kRegisterAck = 4,
  kProbe = 5,
  kProbeAck = 6,
};

}  // namespace

Bytes Transport::DataMsg::serialize() const {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::kData));
  w.node_id(from);
  w.u32(incarnation);
  w.boolean(relayed);
  w.endpoint(observed_src);
  w.u8(tag);
  w.raw(payload);
  return std::move(w).take();
}

std::optional<Transport::DataMsg> Transport::DataMsg::parse(Reader& r) {
  DataMsg m;
  m.from = r.node_id();
  m.incarnation = r.u32();
  m.relayed = r.boolean();
  m.observed_src = r.endpoint();
  m.tag = r.u8();
  m.payload = r.rest();
  if (!r.ok()) return std::nullopt;
  return m;
}

Transport::Transport(net::Clock& clock, net::Stack& net, NodeId self, Endpoint internal_ep,
                     bool is_public, TransportConfig config)
    : clock_(clock), net_(net), self_(self), internal_ep_(internal_ep), is_public_(is_public),
      config_(config) {
  net_.attach(internal_ep_, [this](const net::Datagram& d) { on_datagram(d); });
  attached_ = true;
}

Transport::~Transport() { shutdown(); }

void Transport::shutdown() {
  if (!attached_) return;
  net_.detach(internal_ep_);
  if (keepalive_timer_ != 0) clock_.cancel(keepalive_timer_);
  keepalive_timer_ = 0;
  if (probe_sweep_timer_ != 0) clock_.cancel(probe_sweep_timer_);
  probe_sweep_timer_ = 0;
  attached_ = false;
}

pss::ContactCard Transport::self_card() const {
  pss::ContactCard card;
  card.id = self_;
  card.is_public = is_public_;
  if (is_public_) {
    card.addr = internal_ep_;
  } else {
    card.addr = relay_.addr;
    card.relay_id = relay_.id;
  }
  return card;
}

void Transport::set_relay(const pss::ContactCard& relay) {
  assert(!is_public_);
  assert(relay.is_public);
  relay_ = relay;
  unanswered_keepalives_ = 0;
  registered_ = false;
  if (keepalive_timer_ != 0) clock_.cancel(keepalive_timer_);
  send_keepalive();
}

bool Transport::relay_lost() const {
  if (is_public_) return false;
  if (relay_.id.is_nil()) return true;
  return unanswered_keepalives_ >= config_.relay_loss_threshold;
}

void Transport::send_keepalive() {
  if (!attached_ || relay_.id.is_nil()) return;
  Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::kRegister));
  w.node_id(self_);
  w.u32(config_.incarnation);
  net_.send(internal_ep_, relay_.addr, std::move(w).take(), net::Proto::kControl);
  ++unanswered_keepalives_;
  // Full rate while the relay still counts as alive (fast detection); after
  // the loss threshold, back off exponentially — failover owns recovery,
  // these keepalives only cover the relay coming back.
  net::Time delay = config_.keepalive_period;
  if (unanswered_keepalives_ >= config_.relay_loss_threshold) {
    const int over = unanswered_keepalives_ - config_.relay_loss_threshold;
    for (int i = 0; i <= over && delay < config_.keepalive_backoff_max; ++i) delay *= 2;
    delay = std::min(delay, config_.keepalive_backoff_max);
  } else if (!registered_ && config_.register_retry_initial > 0) {
    // Never acked by this relay yet: retry fast with doubling backoff until
    // the first ack lands (lossy paths eat initial registers; an unregistered
    // N-node is unreachable, so waiting a whole keepalive period per attempt
    // compounds the outage).
    delay = config_.register_retry_initial;
    for (int i = 1; i < unanswered_keepalives_; ++i) {
      delay = std::min(delay * 2, config_.keepalive_period);
    }
    delay = std::min(delay, config_.keepalive_period);
  }
  keepalive_timer_ = clock_.schedule_after(delay, [this] { send_keepalive(); });
  if (unanswered_keepalives_ == config_.relay_loss_threshold) {
    ++relays_lost_;
    registered_ = false;
    if (on_relay_lost) on_relay_lost();  // may re-enter set_relay()
  }
}

void Transport::register_handler(std::uint8_t tag, Handler handler) {
  handlers_[tag] = std::move(handler);
}

bool Transport::can_send_direct(NodeId peer) const {
  auto it = direct_routes_.find(peer);
  return it != direct_routes_.end() &&
         it->second.verified_at + config_.route_ttl > clock_.now();
}

bool Transport::send(const pss::ContactCard& card, std::uint8_t tag, BytesView payload,
                     net::Proto proto) {
  if (!attached_ || card.id.is_nil()) return false;

  DataMsg msg;
  msg.from = self_;
  msg.incarnation = config_.incarnation;
  msg.tag = tag;
  msg.payload.assign(payload.begin(), payload.end());

  // 1. Verified punched route.
  if (auto it = direct_routes_.find(card.id);
      it != direct_routes_.end() && it->second.verified_at + config_.route_ttl > clock_.now()) {
    // Past the half-life, re-verify in the background while still using the
    // route: a hole whose far NAT silently dropped the mapping looks exactly
    // like a working one until probes stop coming back.
    if (it->second.verified_at + config_.route_ttl / 2 <= clock_.now()) {
      consider_probe(card.id, it->second.endpoint);
    }
    ++sends_punched_;
    return net_.send(internal_ep_, it->second.endpoint, msg.serialize(), proto);
  }
  // 2. P-node: its address is globally reachable.
  if (card.is_public) {
    ++sends_direct_;
    return net_.send(internal_ep_, card.addr, msg.serialize(), proto);
  }
  // 3. We are the target's relay: forward from our own registration table.
  if (card.relay_id == self_) {
    auto it = registrations_.find(card.id);
    if (it == registrations_.end() || it->second.expires <= clock_.now()) return false;
    msg.relayed = true;
    msg.observed_src = internal_ep_;  // we are public; peers see this address
    ++sends_relayed_;
    return net_.send(internal_ep_, it->second.external, msg.serialize(), proto);
  }
  // 4. Via the target's relay.
  if (card.addr.is_nil()) return false;
  msg.relayed = true;
  Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::kForward));
  w.node_id(card.id);
  w.bytes(msg.serialize());
  ++sends_relayed_;
  return net_.send(internal_ep_, card.addr, std::move(w).take(), proto);
}

bool Transport::send_by_id(NodeId to, std::uint8_t tag, BytesView payload, net::Proto proto) {
  if (!attached_ || to.is_nil()) return false;
  DataMsg msg;
  msg.from = self_;
  msg.incarnation = config_.incarnation;
  msg.tag = tag;
  msg.payload.assign(payload.begin(), payload.end());

  if (auto it = direct_routes_.find(to);
      it != direct_routes_.end() && it->second.verified_at + config_.route_ttl > clock_.now()) {
    if (it->second.verified_at + config_.route_ttl / 2 <= clock_.now()) {
      consider_probe(to, it->second.endpoint);
    }
    ++sends_punched_;
    return net_.send(internal_ep_, it->second.endpoint, msg.serialize(), proto);
  }
  if (auto it = registrations_.find(to);
      it != registrations_.end() && it->second.expires > clock_.now()) {
    msg.relayed = true;
    msg.observed_src = internal_ep_;
    ++sends_relayed_;
    return net_.send(internal_ep_, it->second.external, msg.serialize(), proto);
  }
  return false;
}

void Transport::on_datagram(const net::Datagram& dgram) {
  Reader r(dgram.payload);
  const auto type = static_cast<MsgType>(r.u8());
  if (!r.ok()) {
    ++decode_rejects_;
    return;
  }
  switch (type) {
    case MsgType::kData:
      handle_data(dgram, r);
      break;
    case MsgType::kForward:
      handle_forward(dgram, r);
      break;
    case MsgType::kRegister:
      handle_register(dgram, r);
      break;
    case MsgType::kRegisterAck:
      handle_register_ack(r);
      break;
    case MsgType::kProbe:
      handle_probe(dgram, r);
      break;
    case MsgType::kProbeAck:
      handle_probe_ack(dgram, r);
      break;
    default:
      ++decode_rejects_;  // unknown frame type
      break;
  }
}

void Transport::handle_data(const net::Datagram& dgram, Reader& r) {
  auto msg = DataMsg::parse(r);
  if (!msg || msg->from.is_nil()) {
    ++decode_rejects_;
    return;
  }
  if (!observe_incarnation(msg->from, msg->incarnation)) return;  // stale straggler

  if (!msg->relayed) {
    // Direct packet: the peer can reach us; probe back so that we can
    // confirm the reverse direction too.
    if (!can_send_direct(msg->from)) consider_probe(msg->from, dgram.src);
  } else if (!msg->observed_src.is_nil()) {
    // Relayed with an observed external endpoint: hole punch candidate —
    // unless the "observed" address is the relay itself (P-node relaying
    // for us stamps its own address when it is the original sender).
    if (!can_send_direct(msg->from)) {
      consider_probe(msg->from, msg->observed_src);
    } else if (auto it = direct_routes_.find(msg->from);
               it != direct_routes_.end() &&
               it->second.endpoint != msg->observed_src) {
      // The relay sees this peer at a different external address than our
      // verified route: its NAT rebooted or the mapping expired and was
      // re-opened on a new port. Our punched route points at a dead hole —
      // drop it and court the new candidate.
      direct_routes_.erase(it);
      ++routes_invalidated_;
      consider_probe(msg->from, msg->observed_src);
    }
  }

  auto it = handlers_.find(msg->tag);
  if (it == handlers_.end()) return;
  if (cpu_ == nullptr) {
    it->second(msg->from, msg->payload);
    return;
  }
  const net::CpuCategory cat = msg->tag == kTagPss    ? net::CpuCategory::kPssHandler
                               : msg->tag == kTagKeys ? net::CpuCategory::kKeysHandler
                                                      : net::CpuCategory::kWclHandler;
  cpu_->charge(cat, [&] { it->second(msg->from, msg->payload); });
}

void Transport::handle_forward(const net::Datagram& dgram, Reader& r) {
  if (!is_public_) return;  // only P-nodes relay
  const NodeId dst = r.node_id();
  Bytes inner = r.bytes(config_.max_forward_bytes);
  if (!r.expect_done()) {
    ++decode_rejects_;
    return;
  }

  auto it = registrations_.find(dst);
  if (it == registrations_.end() || it->second.expires <= clock_.now()) return;

  // Stamp the sender's observed external endpoint into the data message so
  // the receiver can attempt hole punching (the RV role of Nylon).
  Reader ir(inner);
  const auto type = static_cast<MsgType>(ir.u8());
  if (type != MsgType::kData) {
    ++decode_rejects_;
    return;
  }
  auto msg = DataMsg::parse(ir);
  if (!msg || msg->from.is_nil()) {
    ++decode_rejects_;
    return;
  }
  msg->observed_src = dgram.src;
  // Keep the original accounting class for forwarded traffic.
  net_.send(internal_ep_, it->second.external, msg->serialize(), dgram.proto);
}

void Transport::handle_register(const net::Datagram& dgram, Reader& r) {
  if (!is_public_) return;
  const NodeId who = r.node_id();
  const std::uint32_t incarnation = r.u32();
  if (!r.expect_done() || who.is_nil()) {
    ++decode_rejects_;
    return;
  }
  if (!observe_incarnation(who, incarnation)) return;  // stale pre-crash register
  if (registrations_.count(who) == 0 &&
      registrations_.size() >= config_.max_registrations) {
    // Table full: evict the registration closest to expiry so an id-spraying
    // peer can't grow relay state without bound.
    auto victim = registrations_.begin();
    for (auto it = registrations_.begin(); it != registrations_.end(); ++it) {
      if (it->second.expires < victim->second.expires) victim = it;
    }
    registrations_.erase(victim);
    ++cap_evictions_;
  }
  registrations_[who] = Registration{dgram.src, clock_.now() + config_.registration_ttl};

  Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::kRegisterAck));
  w.node_id(self_);
  w.u32(config_.incarnation);
  net_.send(internal_ep_, dgram.src, std::move(w).take(), net::Proto::kControl);
}

void Transport::handle_register_ack(Reader& r) {
  const NodeId from = r.node_id();
  const std::uint32_t incarnation = r.u32();
  if (!r.expect_done()) {
    ++decode_rejects_;
    return;
  }
  if (!observe_incarnation(from, incarnation)) return;
  if (from != relay_.id) return;
  const bool was_backed_off = unanswered_keepalives_ >= config_.relay_loss_threshold;
  const bool first_ack = !registered_;
  unanswered_keepalives_ = 0;
  registered_ = true;
  if (first_ack && !was_backed_off && attached_ && keepalive_timer_ != 0) {
    // The fast-retry timer is still armed at its short cadence; the relay
    // answered, so fall back to the normal keepalive rhythm.
    clock_.cancel(keepalive_timer_);
    keepalive_timer_ =
        clock_.schedule_after(config_.keepalive_period, [this] { send_keepalive(); });
  }
  if (was_backed_off && attached_) {
    // The relay answered after all: drop the backed-off timer and resume
    // the normal cadence immediately.
    if (keepalive_timer_ != 0) clock_.cancel(keepalive_timer_);
    keepalive_timer_ =
        clock_.schedule_after(config_.keepalive_period, [this] { send_keepalive(); });
  }
}

void Transport::consider_probe(NodeId peer, Endpoint candidate) {
  if (peer == self_ || candidate.is_nil()) return;
  if (probes_.count(peer) == 0 && probes_.size() >= config_.max_probes) {
    // Evict the stalest in-flight probe (peer-driven state, hard-capped).
    auto victim = probes_.begin();
    for (auto it = probes_.begin(); it != probes_.end(); ++it) {
      if (it->second.sent_at < victim->second.sent_at) victim = it;
    }
    probes_.erase(victim);
    ++cap_evictions_;
  }
  auto& pending = probes_[peer];
  if (pending.sent_at != 0 && pending.sent_at + config_.probe_min_interval > clock_.now()) return;
  pending.seq = next_probe_seq_++;
  pending.target = candidate;
  pending.sent_at = clock_.now();
  pending.retries = 0;

  send_probe_frame(candidate, pending.seq);
  arm_probe_sweep();
}

void Transport::send_probe_frame(Endpoint target, std::uint32_t seq) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::kProbe));
  w.node_id(self_);
  w.u32(seq);
  w.u32(config_.incarnation);
  ++probes_sent_;
  net_.send(internal_ep_, target, std::move(w).take(), net::Proto::kControl);
}

void Transport::arm_probe_sweep() {
  if (probe_sweep_timer_ != 0 || !attached_ || config_.probe_max_retries <= 0) return;
  probe_sweep_timer_ =
      clock_.schedule_after(config_.probe_min_interval, [this] { probe_sweep(); });
}

void Transport::probe_sweep() {
  probe_sweep_timer_ = 0;
  if (!attached_) return;
  const net::Time now = clock_.now();
  bool pending_left = false;
  for (auto [peer, p] : probes_) {
    if (p.retries >= config_.probe_max_retries) continue;
    if (can_send_direct(peer)) continue;  // the ack landed; nothing to chase
    net::Time wait = config_.probe_min_interval;
    for (int i = 0; i < p.retries; ++i) wait *= 2;
    if (p.sent_at + wait <= now) {
      // Same seq: a late ack to any retransmission still verifies the route.
      send_probe_frame(p.target, p.seq);
      ++p.retries;
      ++probe_retries_;
      p.sent_at = now;
    }
    if (p.retries < config_.probe_max_retries) pending_left = true;
  }
  if (pending_left) arm_probe_sweep();
}

void Transport::handle_probe(const net::Datagram& dgram, Reader& r) {
  const NodeId from = r.node_id();
  const std::uint32_t seq = r.u32();
  const std::uint32_t incarnation = r.u32();
  if (!r.expect_done()) {
    ++decode_rejects_;
    return;
  }
  if (!observe_incarnation(from, incarnation)) return;
  // The probe reached us directly: answering to its wire source both
  // confirms reachability to the peer and opens our own mapping toward it.
  Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::kProbeAck));
  w.node_id(self_);
  w.u32(seq);
  w.u32(config_.incarnation);
  net_.send(internal_ep_, dgram.src, std::move(w).take(), net::Proto::kControl);
}

void Transport::handle_probe_ack(const net::Datagram& dgram, Reader& r) {
  const NodeId from = r.node_id();
  const std::uint32_t seq = r.u32();
  const std::uint32_t incarnation = r.u32();
  if (!r.expect_done()) {
    ++decode_rejects_;
    return;
  }
  if (!observe_incarnation(from, incarnation)) return;
  auto it = probes_.find(from);
  if (it == probes_.end() || it->second.seq != seq) return;
  // Our probe went through and the ack came back: the probed endpoint is a
  // working direct route.
  note_direct_route(from, it->second.target);
  (void)dgram;
}

bool Transport::observe_incarnation(NodeId peer, std::uint32_t incarnation) {
  // Epochless peers (no durable state, incarnation 0) are never tracked and
  // never stale — pre-incarnation frames keep working unchanged.
  if (incarnation == 0 || peer == self_) return true;
  auto it = peer_epochs_.find(peer);
  if (it == peer_epochs_.end()) {
    if (peer_epochs_.size() >= config_.max_peer_incarnations) {
      // Evict the least recently seen epoch (peer-driven, hard-capped).
      auto victim = peer_epochs_.begin();
      for (auto i = peer_epochs_.begin(); i != peer_epochs_.end(); ++i) {
        if (i->second.seen < victim->second.seen) victim = i;
      }
      peer_epochs_.erase(victim);
      ++cap_evictions_;
    }
    peer_epochs_[peer] = PeerEpoch{incarnation, clock_.now()};
    return true;
  }
  it->second.seen = clock_.now();
  if (incarnation < it->second.incarnation) {
    // A frame from a previous life of this peer, delayed in the network (or
    // replayed). Acting on it would rebuild routes to a dead process.
    ++stale_incarnation_rejects_;
    return false;
  }
  if (incarnation > it->second.incarnation) {
    // The peer restarted: everything we knew about its old process —
    // punched holes, in-flight probes, its relay registration — described
    // sockets that no longer exist. Purge, then let upper layers treat the
    // new incarnation as proof-of-life.
    it->second.incarnation = incarnation;
    direct_routes_.erase(peer);
    probes_.erase(peer);
    registrations_.erase(peer);
    ++peer_restarts_;
    if (on_peer_restart) on_peer_restart(peer);
  }
  return true;
}

void Transport::note_direct_route(NodeId peer, Endpoint ep) {
  if (direct_routes_.count(peer) == 0 &&
      direct_routes_.size() >= config_.max_direct_routes) {
    // Evict the least recently verified route.
    auto victim = direct_routes_.begin();
    for (auto it = direct_routes_.begin(); it != direct_routes_.end(); ++it) {
      if (it->second.verified_at < victim->second.verified_at) victim = it;
    }
    direct_routes_.erase(victim);
    ++cap_evictions_;
  }
  direct_routes_[peer] = DirectRoute{ep, clock_.now()};
}

std::size_t Transport::direct_route_count() const {
  std::size_t n = 0;
  for (const auto& [id, route] : direct_routes_) {
    if (route.verified_at + config_.route_ttl > clock_.now()) ++n;
  }
  return n;
}

std::size_t Transport::relayed_registrations() const {
  std::size_t n = 0;
  for (const auto& [id, reg] : registrations_) {
    if (reg.expires > clock_.now()) ++n;
  }
  return n;
}

}  // namespace whisper::nylon

#include "nylon/pss.hpp"

#include <algorithm>

namespace whisper::nylon {

namespace {
constexpr std::uint8_t kKindRequest = 1;
constexpr std::uint8_t kKindResponse = 2;
}  // namespace

NylonPss::NylonPss(net::Clock& clock, Transport& transport, PssConfig config, Rng rng,
                   telemetry::Scope telemetry)
    : clock_(clock), transport_(transport), config_(config), rng_(rng),
      view_(config.view_size), tel_(telemetry),
      m_initiated_(tel_.counter("pss.exchanges.initiated")),
      m_completed_(tel_.counter("pss.exchanges.completed")),
      m_timed_out_(tel_.counter("pss.exchanges.timed_out")),
      m_quarantined_(tel_.counter("pss.peers.quarantined")),
      m_rejoined_(tel_.counter("pss.peers.rejoined")),
      m_decode_rejects_(tel_.counter("pss.decode.rejects")),
      m_rate_limited_(tel_.counter("pss.rate.limited")),
      m_misbehavior_(tel_.counter("pss.misbehavior.reports")),
      // Exchange RTT spans one-hop cluster latencies to multi-second
      // relayed paths under load.
      m_rtt_(tel_.histogram("pss.exchange.rtt_us",
                            telemetry::BucketSpec::log_spaced(100, 20'000'000))),
      m_view_size_(tel_.histogram("pss.view.size",
                                  telemetry::BucketSpec::linear(0, 64, 64))) {
  PeerGuardConfig gc;
  gc.rate_per_sec = config_.peer_rate_per_sec;
  gc.burst = config_.peer_rate_burst;
  gc.decode_fail_threshold = config_.decode_fail_threshold;
  gc.max_peers = config_.guard_max_peers;
  guard_ = PeerGuard(gc);
  transport_.register_handler(kTagPss,
                              [this](NodeId from, BytesView p) { handle_message(from, p); });
  // Failover the moment the transport declares the relay lost, rather than
  // waiting (up to a full cycle) for the next repair_relay() pass.
  transport_.on_relay_lost = [this] { repair_relay(); };
}

NylonPss::~NylonPss() {
  stop();
  // The PSS dies before its transport (member order in WhisperNode); the
  // hook must not outlive us.
  transport_.on_relay_lost = nullptr;
}

void NylonPss::bootstrap(const std::vector<pss::ContactCard>& cards) {
  for (const auto& card : cards) {
    if (card.id == transport_.self()) continue;
    view_.insert(PssEntry{card, 0});
  }
  view_.truncate_biased(config_.pi_min_public, rng_);
  repair_relay();
}

void NylonPss::start() {
  if (running_) return;
  running_ = true;
  const net::Time offset = rng_.next_below(config_.cycle);
  cycle_timer_ = clock_.schedule_after(offset, [this] { on_cycle(); });
}

void NylonPss::stop() {
  if (!running_) return;
  running_ = false;
  if (cycle_timer_ != 0) clock_.cancel(cycle_timer_);
  for (auto&& [seq, pending] : pending_) {
    if (pending.timeout_timer != 0) clock_.cancel(pending.timeout_timer);
  }
  pending_.clear();
}

std::vector<PssEntry> NylonPss::make_buffer() {
  std::vector<PssEntry> buffer;
  buffer.push_back(PssEntry{transport_.self_card(), 0});
  auto subset = view_.random_subset(config_.gossip_size - 1, rng_);
  buffer.insert(buffer.end(), subset.begin(), subset.end());
  return buffer;
}

Bytes NylonPss::encode(std::uint8_t kind, std::uint32_t seq,
                       const std::vector<PssEntry>& buffer) {
  Writer w;
  w.u8(kind);
  w.u32(seq);
  w.u16(static_cast<std::uint16_t>(buffer.size()));
  for (const auto& e : buffer) e.serialize(w);
  if (extra_provider) {
    w.bytes(extra_provider());
  } else {
    w.bytes(Bytes{});
  }
  return std::move(w).take();
}

bool NylonPss::quarantined(NodeId id) const {
  auto it = quarantine_.find(id);
  return it != quarantine_.end() && it->second > clock_.now();
}

void NylonPss::note_failure(NodeId id) {
  auto it = suspicion_.find(id);
  if (it == suspicion_.end()) {
    // Suspicion is peer-driven state: cap it, evicting the oldest tracked
    // peer (lazily skipping entries already cleared by success/threshold).
    while (suspicion_.size() >= config_.max_suspects && !suspicion_order_.empty()) {
      const NodeId victim = suspicion_order_.front();
      suspicion_order_.pop_front();
      suspicion_.erase(victim);
    }
    suspicion_order_.push_back(id);
    it = suspicion_.emplace(id, 0).first;
  }
  if (++it->second < config_.suspicion_threshold) return;
  suspicion_.erase(it);
  if (quarantine_.size() >= config_.max_quarantined && quarantine_.count(id) == 0) {
    // Evict the entry closest to expiry rather than refusing the new one.
    auto victim = quarantine_.begin();
    for (auto q = quarantine_.begin(); q != quarantine_.end(); ++q) {
      if (q->second < victim->second) victim = q;
    }
    quarantine_.erase(victim);
  }
  quarantine_[id] = clock_.now() + config_.quarantine_ttl;
  ++peers_quarantined_;
  m_quarantined_.add(1);
  tel_.instant("pss.peer.quarantine", "pss", clock_.now());
}

void NylonPss::report_misbehavior(NodeId id) {
  if (id.is_nil() || id == transport_.self()) return;
  ++misbehavior_reports_;
  m_misbehavior_.add(1);
  note_failure(id);
}

void NylonPss::note_peer_restart(NodeId id) {
  if (id.is_nil() || id == transport_.self()) return;
  suspicion_.erase(id);
  if (quarantine_.erase(id) > 0) {
    ++peers_rejoined_;
    m_rejoined_.add(1);
    tel_.instant("pss.peer.restart_rejoin", "pss", clock_.now());
  }
}

void NylonPss::reject_frame(NodeId from, Reader& r) {
  DecodeError err = r.reject_reason();
  if (err == DecodeError::kNone) err = DecodeError::kBadValue;
  ++decode_rejects_;
  tel_.drop_frame(m_decode_rejects_, clock_.now(),
                  std::string("decode:") + decode_error_name(err));
  if (guard_.note_decode_failure(from, clock_.now())) report_misbehavior(from);
}

void NylonPss::note_success(NodeId id) {
  suspicion_.erase(id);
  quarantine_.erase(id);
  // Proof of life: the peer no longer needs a healing re-probe.
  std::erase_if(reserve_, [&](const ReserveEntry& e) { return e.card.id == id; });
}

void NylonPss::remember(const pss::ContactCard& card, int attempts) {
  if (config_.reserve_retry_cycles <= 0) return;
  if (attempts >= config_.reserve_max_attempts) return;
  if (card.id == transport_.self()) return;
  for (auto& e : reserve_) {
    if (e.card.id == card.id) {
      e.card = card;
      e.attempts = std::max(e.attempts, attempts);
      return;
    }
  }
  if (reserve_.size() >= config_.reserve_capacity) reserve_.pop_front();
  reserve_.push_back(ReserveEntry{card, attempts});
}

void NylonPss::retry_reserved() {
  // Rotate past quarantined entries: their TTL has to lapse before a probe
  // can be answered with anything we would accept.
  for (std::size_t i = 0; i < reserve_.size(); ++i) {
    ReserveEntry e = reserve_.front();
    reserve_.pop_front();
    if (quarantined(e.card.id)) {
      reserve_.push_back(e);
      continue;
    }
    start_exchange(e.card, /*from_reserve=*/true, e.attempts);
    return;
  }
}

void NylonPss::purge_quarantine() {
  const net::Time now = clock_.now();
  for (auto it = quarantine_.begin(); it != quarantine_.end();) {
    it = it->second <= now ? quarantine_.erase(it) : std::next(it);
  }
}

void NylonPss::on_cycle() {
  if (!running_) return;
  cycle_timer_ = clock_.schedule_after(config_.cycle, [this] { on_cycle(); });

  repair_relay();
  purge_quarantine();
  view_.age_all();
  m_view_size_.observe(static_cast<double>(view_.size()));
  ++cycle_count_;
  if (const PssEntry* partner = view_.oldest(); partner != nullptr) {
    start_exchange(partner->card, /*from_reserve=*/false, 0);
  }
  if (config_.reserve_retry_cycles > 0 && !reserve_.empty() &&
      cycle_count_ % static_cast<std::uint64_t>(config_.reserve_retry_cycles) == 0) {
    retry_reserved();
  }
}

void NylonPss::start_exchange(const pss::ContactCard& partner_card, bool from_reserve,
                              int reserve_attempts) {
  const std::uint32_t seq = next_seq_++;
  ++exchanges_initiated_;
  m_initiated_.add(1);

  // Swap the partner out of the view: it comes back fresh via the self-entry
  // of its response, and stays out if it is dead. Keeping it would pin the
  // same partners (its age is refreshed by every exchange).
  view_.remove(partner_card.id);

  transport_.send(partner_card, kTagPss, encode(kKindRequest, seq, make_buffer()),
                  net::Proto::kPss);

  PendingExchange pending;
  pending.partner = partner_card.id;
  pending.partner_card = partner_card;
  pending.from_reserve = from_reserve;
  pending.reserve_attempts = reserve_attempts;
  pending.started_at = clock_.now();
  pending.timeout_timer = clock_.schedule_after(config_.response_timeout, [this, seq] {
    auto it = pending_.find(seq);
    if (it == pending_.end()) return;
    // No response: treat the partner as failed and heal the view — but
    // remember the card, so a peer cut off by a partition (rather than
    // dead) can be re-probed once the network heals.
    view_.remove(it->second.partner);
    note_failure(it->second.partner);
    remember(it->second.partner_card,
             it->second.from_reserve ? it->second.reserve_attempts + 1 : 0);
    pending_.erase(it);
    ++exchanges_timed_out_;
    m_timed_out_.add(1);
    tel_.instant("pss.exchange.timeout", "pss", clock_.now());
  });
  pending_[seq] = pending;
}

void NylonPss::handle_message(NodeId from, BytesView payload) {
  if (!guard_.admit(from, clock_.now())) {
    tel_.drop_frame(m_rate_limited_, clock_.now(), "ratelimit");
    return;
  }
  Reader r(payload);
  const std::uint8_t kind = r.u8();
  const std::uint32_t seq = r.u32();
  const std::uint32_t count = r.count16(config_.max_gossip_entries);
  std::vector<PssEntry> received;
  received.reserve(count);
  for (std::uint32_t i = 0; i < count && r.ok(); ++i) {
    received.push_back(PssEntry::deserialize(r));
  }
  const Bytes extra = r.bytes(config_.max_extra_bytes);
  if (kind != kKindRequest && kind != kKindResponse) r.fail(DecodeError::kBadValue);
  if (r.ok() && received.empty()) r.fail(DecodeError::kBadValue);
  // The first buffer entry is the sender's own fresh card; a mismatch is a
  // spoofed frame, rejected like any other malformed input.
  if (r.ok() && received.front().card.id != from) r.fail(DecodeError::kBadValue);
  if (!r.expect_done()) {
    reject_frame(from, r);
    return;
  }
  guard_.note_ok(from);
  const pss::ContactCard sender_card = received.front().card;

  if (extra_consumer) extra_consumer(sender_card, extra);

  // A message from a quarantined peer is proof of life; otherwise drop its
  // quarantined descriptors so dead cards stop recirculating via gossip.
  note_success(from);
  std::erase_if(received, [&](const PssEntry& e) { return quarantined(e.card.id); });
  if (received.empty()) return;

  if (kind == kKindRequest) {
    // Respond with our buffer (selected before merging), then merge.
    transport_.send(sender_card, kTagPss, encode(kKindResponse, seq, make_buffer()),
                    net::Proto::kPss);
    view_.merge(received, transport_.self(), config_.pi_min_public, rng_);
    if (on_exchange) on_exchange(sender_card);
  } else if (kind == kKindResponse) {
    auto it = pending_.find(seq);
    if (it == pending_.end() || it->second.partner != from) return;
    if (it->second.timeout_timer != 0) clock_.cancel(it->second.timeout_timer);
    const net::Time rtt = clock_.now() - it->second.started_at;
    if (it->second.from_reserve) {
      // A healing probe came back: the evicted peer is reachable again.
      ++peers_rejoined_;
      m_rejoined_.add(1);
      tel_.instant("pss.peer.rejoin", "pss", clock_.now());
    }
    pending_.erase(it);
    view_.merge(received, transport_.self(), config_.pi_min_public, rng_);
    ++exchanges_completed_;
    m_completed_.add(1);
    m_rtt_.observe(static_cast<double>(rtt));
    // One trace row per completed view exchange, spanning request->response.
    tel_.complete("pss.exchange", "pss", clock_.now() - rtt, rtt);
    if (on_exchange) on_exchange(sender_card);
  }
}

void NylonPss::repair_relay() {
  if (transport_.is_public() || !transport_.relay_lost()) return;
  // Pick the freshest P-node from the view as the new relay.
  const PssEntry* best = nullptr;
  for (const auto& e : view_.entries()) {
    if (!e.is_public()) continue;
    if (e.card.id == transport_.relay_id()) continue;  // the one that just died
    if (quarantined(e.card.id)) continue;
    if (best == nullptr || e.age < best->age) best = &e;
  }
  if (best != nullptr) transport_.set_relay(best->card);
}

}  // namespace whisper::nylon

#include "nylon/pss.hpp"

#include <algorithm>

namespace whisper::nylon {

namespace {
constexpr std::uint8_t kKindRequest = 1;
constexpr std::uint8_t kKindResponse = 2;
}  // namespace

NylonPss::NylonPss(sim::Simulator& sim, Transport& transport, PssConfig config, Rng rng,
                   telemetry::Scope telemetry)
    : sim_(sim), transport_(transport), config_(config), rng_(rng),
      view_(config.view_size), tel_(telemetry),
      m_initiated_(tel_.counter("pss.exchanges.initiated")),
      m_completed_(tel_.counter("pss.exchanges.completed")),
      m_timed_out_(tel_.counter("pss.exchanges.timed_out")),
      // Exchange RTT spans one-hop cluster latencies to multi-second
      // relayed paths under load.
      m_rtt_(tel_.histogram("pss.exchange.rtt_us",
                            telemetry::BucketSpec::log_spaced(100, 20'000'000))),
      m_view_size_(tel_.histogram("pss.view.size",
                                  telemetry::BucketSpec::linear(0, 64, 64))) {
  transport_.register_handler(kTagPss,
                              [this](NodeId from, BytesView p) { handle_message(from, p); });
}

NylonPss::~NylonPss() { stop(); }

void NylonPss::bootstrap(const std::vector<pss::ContactCard>& cards) {
  for (const auto& card : cards) {
    if (card.id == transport_.self()) continue;
    view_.insert(PssEntry{card, 0});
  }
  view_.truncate_biased(config_.pi_min_public, rng_);
  repair_relay();
}

void NylonPss::start() {
  if (running_) return;
  running_ = true;
  const sim::Time offset = rng_.next_below(config_.cycle);
  cycle_timer_ = sim_.schedule_after(offset, [this] { on_cycle(); });
}

void NylonPss::stop() {
  if (!running_) return;
  running_ = false;
  if (cycle_timer_ != 0) sim_.cancel(cycle_timer_);
  for (auto& [seq, pending] : pending_) {
    if (pending.timeout_timer != 0) sim_.cancel(pending.timeout_timer);
  }
  pending_.clear();
}

std::vector<PssEntry> NylonPss::make_buffer() {
  std::vector<PssEntry> buffer;
  buffer.push_back(PssEntry{transport_.self_card(), 0});
  auto subset = view_.random_subset(config_.gossip_size - 1, rng_);
  buffer.insert(buffer.end(), subset.begin(), subset.end());
  return buffer;
}

Bytes NylonPss::encode(std::uint8_t kind, std::uint32_t seq,
                       const std::vector<PssEntry>& buffer) {
  Writer w;
  w.u8(kind);
  w.u32(seq);
  w.u16(static_cast<std::uint16_t>(buffer.size()));
  for (const auto& e : buffer) e.serialize(w);
  if (extra_provider) {
    w.bytes(extra_provider());
  } else {
    w.bytes(Bytes{});
  }
  return std::move(w).take();
}

void NylonPss::on_cycle() {
  if (!running_) return;
  cycle_timer_ = sim_.schedule_after(config_.cycle, [this] { on_cycle(); });

  repair_relay();
  view_.age_all();
  m_view_size_.observe(static_cast<double>(view_.size()));
  const PssEntry* partner = view_.oldest();
  if (partner == nullptr) return;

  const std::uint32_t seq = next_seq_++;
  const pss::ContactCard partner_card = partner->card;
  ++exchanges_initiated_;
  m_initiated_.add(1);

  // Swap the partner out of the view: it comes back fresh via the self-entry
  // of its response, and stays out if it is dead. Keeping it would pin the
  // same partners (its age is refreshed by every exchange).
  view_.remove(partner_card.id);

  transport_.send(partner_card, kTagPss, encode(kKindRequest, seq, make_buffer()),
                  sim::Proto::kPss);

  PendingExchange pending;
  pending.partner = partner_card.id;
  pending.started_at = sim_.now();
  pending.timeout_timer = sim_.schedule_after(config_.response_timeout, [this, seq] {
    auto it = pending_.find(seq);
    if (it == pending_.end()) return;
    // No response: treat the partner as failed and heal the view.
    view_.remove(it->second.partner);
    pending_.erase(it);
    ++exchanges_timed_out_;
    m_timed_out_.add(1);
    tel_.instant("pss.exchange.timeout", "pss", sim_.now());
  });
  pending_[seq] = pending;
}

void NylonPss::handle_message(NodeId from, BytesView payload) {
  Reader r(payload);
  const std::uint8_t kind = r.u8();
  const std::uint32_t seq = r.u32();
  const std::uint16_t count = r.u16();
  std::vector<PssEntry> received;
  received.reserve(count);
  for (std::uint16_t i = 0; i < count; ++i) received.push_back(PssEntry::deserialize(r));
  const Bytes extra = r.bytes();
  if (!r.ok()) return;
  if (received.empty()) return;

  // The first buffer entry is the sender's own fresh card.
  const pss::ContactCard sender_card = received.front().card;
  if (sender_card.id != from) return;

  if (extra_consumer) extra_consumer(sender_card, extra);

  if (kind == kKindRequest) {
    // Respond with our buffer (selected before merging), then merge.
    transport_.send(sender_card, kTagPss, encode(kKindResponse, seq, make_buffer()),
                    sim::Proto::kPss);
    view_.merge(received, transport_.self(), config_.pi_min_public, rng_);
    if (on_exchange) on_exchange(sender_card);
  } else if (kind == kKindResponse) {
    auto it = pending_.find(seq);
    if (it == pending_.end() || it->second.partner != from) return;
    if (it->second.timeout_timer != 0) sim_.cancel(it->second.timeout_timer);
    const sim::Time rtt = sim_.now() - it->second.started_at;
    pending_.erase(it);
    view_.merge(received, transport_.self(), config_.pi_min_public, rng_);
    ++exchanges_completed_;
    m_completed_.add(1);
    m_rtt_.observe(static_cast<double>(rtt));
    // One trace row per completed view exchange, spanning request->response.
    tel_.complete("pss.exchange", "pss", sim_.now() - rtt, rtt);
    if (on_exchange) on_exchange(sender_card);
  }
}

void NylonPss::repair_relay() {
  if (transport_.is_public() || !transport_.relay_lost()) return;
  // Pick the freshest P-node from the view as the new relay.
  const PssEntry* best = nullptr;
  for (const auto& e : view_.entries()) {
    if (!e.is_public()) continue;
    if (e.card.id == transport_.relay_id()) continue;  // the one that just died
    if (best == nullptr || e.age < best->age) best = &e;
  }
  if (best != nullptr) transport_.set_relay(best->card);
}

}  // namespace whisper::nylon

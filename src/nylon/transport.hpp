// Nylon transport: NAT-resilient node-to-node datagram delivery (§II-C).
//
// Responsibilities:
//  - N-nodes register with a public relay node and keep the registration
//    alive; the relay forwards traffic to them (the Nylon RV-as-relay role).
//  - Hole punching: on learning a peer's observed external endpoint (either
//    from direct traffic or from the relay's stamp), a node probes it;
//    a probe-ack confirms a working *direct* route, which is then preferred
//    over the relay. Whether probes and acks actually traverse is decided
//    by the NAT emulation — cone/cone pairs converge to direct routes,
//    symmetric NATs keep needing the relay, as the paper observes.
//  - Demultiplexing: upper layers (PSS gossip, key sampling, WCL) register
//    per-tag handlers.
#pragma once

#include <functional>
#include <optional>

#include "common/bytes.hpp"
#include "common/densemap.hpp"
#include "common/ids.hpp"
#include "common/rng.hpp"
#include "pss/contact.hpp"
#include "net/cpumeter.hpp"
#include "net/spi.hpp"

namespace whisper::nylon {

/// Upper-layer protocol tags carried inside transport data messages.
inline constexpr std::uint8_t kTagPss = 1;
inline constexpr std::uint8_t kTagKeys = 2;
inline constexpr std::uint8_t kTagWcl = 3;
inline constexpr std::uint8_t kTagApp = 4;

struct TransportConfig {
  /// Incarnation epoch of this node's process (DESIGN.md §14). 0 means "no
  /// durable state" (epochless peers are never considered stale). A node
  /// booting from a state dir bumps this before touching the network, so
  /// peers can distinguish its fresh frames from pre-crash stragglers:
  /// frames carrying an older incarnation than the highest seen from that
  /// peer are dropped, and the first frame of a *newer* incarnation purges
  /// all per-peer transport state (punched routes, probes, registrations)
  /// and fires on_peer_restart.
  std::uint32_t incarnation = 0;
  /// Relay registration refresh period (also refreshes the NAT mapping).
  net::Time keepalive_period = 30 * net::kSecond;
  /// Registrations at a relay expire after this long without a keepalive.
  net::Time registration_ttl = 2 * net::kMinute;
  /// Verified direct routes are trusted for this long after verification
  /// (must stay below the NAT lease, which keeps the hole open; the default
  /// matches TCP-style hour-scale leases).
  net::Time route_ttl = 30 * net::kMinute;
  /// Minimum interval between punch probes to the same peer.
  net::Time probe_min_interval = 5 * net::kSecond;
  /// Until the first RegisterAck from a freshly-set relay arrives,
  /// registrations retry at this cadence (doubling up to keepalive_period)
  /// instead of waiting out a full keepalive period — under loss the
  /// initial register is the one packet standing between a natted node and
  /// total unreachability. 0 disables the fast path.
  net::Time register_retry_initial = 250 * net::kMillisecond;
  /// Unanswered punch probes retransmit (doubling from probe_min_interval)
  /// up to this many times before waiting for fresh traffic to re-trigger
  /// them; a single probe/ack pair is two datagrams that both must survive
  /// the lossy path for a hole to open.
  int probe_max_retries = 3;
  /// After this many unanswered keepalives the relay is declared lost.
  int relay_loss_threshold = 3;
  /// Once the relay is declared lost, keepalives back off exponentially up
  /// to this ceiling (the relay may return, and failover may need time to
  /// find a replacement — but hammering a dead address helps nobody).
  net::Time keepalive_backoff_max = 5 * net::kMinute;

  // --- Hostile-input bounds. All relay/punch state is peer-driven, so all
  // of it is hard-capped; overflow evicts the stalest entry. ---
  /// Wire cap on a relayed (kForward) inner frame.
  std::size_t max_forward_bytes = 64 * 1024;
  /// Max relay registrations held for N-nodes (P-nodes only).
  std::size_t max_registrations = 512;
  /// Max verified punched routes remembered.
  std::size_t max_direct_routes = 1024;
  /// Max punch probes tracked.
  std::size_t max_probes = 256;
  /// Max per-peer incarnation epochs remembered (peer-driven, hard-capped).
  std::size_t max_peer_incarnations = 2048;
};

class Transport {
 public:
  Transport(net::Clock& clock, net::Stack& net, NodeId self, Endpoint internal_ep,
            bool is_public, TransportConfig config = {});
  ~Transport();

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  NodeId self() const { return self_; }
  bool is_public() const { return is_public_; }
  Endpoint internal_endpoint() const { return internal_ep_; }

  /// This node's current contact card (changes when the relay changes).
  pss::ContactCard self_card() const;

  /// Choose/replace the relay (N-nodes only; `relay` must be a P-node card).
  void set_relay(const pss::ContactCard& relay);
  /// True when an N-node has no live relay (none set, or keepalives
  /// unanswered): the node is unreachable and should pick a new relay.
  bool relay_lost() const;
  NodeId relay_id() const { return relay_.id; }

  /// Fired once each time the relay crosses the loss threshold (keepalives
  /// unanswered). The PSS wires this to its relay repair so failover starts
  /// the moment loss is detected instead of waiting for the next gossip
  /// cycle. Re-registering via set_relay() re-arms the trigger.
  std::function<void()> on_relay_lost;

  /// How many times this node's relay has been declared lost.
  std::uint64_t relays_lost() const { return relays_lost_; }

  /// Fired when a peer shows up with a *newer* incarnation than we had on
  /// record — i.e. it crashed and restarted. Transport state for the peer
  /// has already been purged when this fires; upper layers clear their own
  /// per-peer state (PSS quarantine, WCL RTT) so the rejoin counts as
  /// proof-of-life instead of being mis-acked against the old process.
  std::function<void(NodeId peer)> on_peer_restart;

  /// Peer restarts observed (incarnation bumps).
  std::uint64_t peer_restarts() const { return peer_restarts_; }
  /// Frames dropped for carrying an incarnation older than the peer's
  /// highest seen (pre-crash stragglers).
  std::uint64_t stale_incarnation_rejects() const { return stale_incarnation_rejects_; }
  /// Incarnation this transport stamps into its outbound frames.
  std::uint32_t incarnation() const { return config_.incarnation; }

  using Handler = std::function<void(NodeId from, BytesView payload)>;
  void register_handler(std::uint8_t tag, Handler handler);

  /// Attribute inbound handler dispatch time (per protocol tag) to `meter`.
  /// Accounting only — measured wall time never feeds the virtual clock, so
  /// metering cannot perturb deterministic runs. nullptr disables.
  void set_cpu_meter(net::CpuMeter* meter) { cpu_ = meter; }

  /// Send `payload` to the node described by `card`, preferring a verified
  /// direct route, then the card's address (direct for P-nodes, via relay
  /// for N-nodes). Returns false if no send was possible at all.
  bool send(const pss::ContactCard& card, std::uint8_t tag, BytesView payload,
            net::Proto proto);

  /// True if a verified, fresh direct route to `peer` exists.
  bool can_send_direct(NodeId peer) const;

  // --- Traversal stats (fed into health metrics / whisper_top). ---
  /// True once the current relay has acked a registration (N-nodes); P-nodes
  /// report true.
  bool registered() const { return is_public_ || registered_; }
  /// Sends by resolved path: a verified punched route, a directly-reachable
  /// public address, or a relay hop (either side of it).
  std::uint64_t sends_punched() const { return sends_punched_; }
  std::uint64_t sends_direct() const { return sends_direct_; }
  std::uint64_t sends_relayed() const { return sends_relayed_; }
  std::uint64_t probes_sent() const { return probes_sent_; }
  std::uint64_t probe_retries() const { return probe_retries_; }
  /// Punched routes dropped because the relay observed the peer at a new
  /// external address (NAT reboot / mapping expiry on the peer's side).
  std::uint64_t routes_invalidated() const { return routes_invalidated_; }
  /// Verified punched routes currently fresh.
  std::size_t direct_route_count() const;

  /// Best-effort send using only local state — a verified punched route or
  /// our own relay registration for the peer. Used by the WCL when a mix
  /// must reach the next hop without a contact card (the onion carries only
  /// the node id). Returns false when no such state exists.
  bool send_by_id(NodeId to, std::uint8_t tag, BytesView payload, net::Proto proto);

  /// Stop timers and detach from the network (node shutdown/churn).
  void shutdown();
  bool running() const { return attached_; }

  /// Number of live registrations this node is relaying for (P-nodes).
  std::size_t relayed_registrations() const;

  /// Malformed frames rejected at this layer (bad type byte, truncated
  /// fields, trailing garbage, oversized forward payloads).
  std::uint64_t decode_rejects() const { return decode_rejects_; }
  /// Entries evicted from peer-driven tables to enforce the hard caps.
  std::uint64_t cap_evictions() const { return cap_evictions_; }

 private:
  struct DataMsg {
    NodeId from;
    std::uint32_t incarnation = 0;
    bool relayed = false;
    Endpoint observed_src;  // stamped by the relay
    std::uint8_t tag = 0;
    Bytes payload;

    Bytes serialize() const;
    static std::optional<DataMsg> parse(Reader& r);
  };

  void on_datagram(const net::Datagram& dgram);
  void handle_data(const net::Datagram& dgram, Reader& r);
  void handle_forward(const net::Datagram& dgram, Reader& r);
  void handle_register(const net::Datagram& dgram, Reader& r);
  void handle_register_ack(Reader& r);
  void handle_probe(const net::Datagram& dgram, Reader& r);
  void handle_probe_ack(const net::Datagram& dgram, Reader& r);

  void send_keepalive();
  void consider_probe(NodeId peer, Endpoint candidate);
  void send_probe_frame(Endpoint target, std::uint32_t seq);
  /// Retransmit pending unanswered probes with per-probe backoff; one
  /// periodic timer owns all retries (simple lifecycle: cancelled in
  /// shutdown, disarmed when nothing is pending).
  void probe_sweep();
  void arm_probe_sweep();
  void note_direct_route(NodeId peer, Endpoint ep);
  /// Track `peer`'s incarnation. Returns false when the frame is stale and
  /// must be dropped; on a bump, purges per-peer state and fires
  /// on_peer_restart.
  bool observe_incarnation(NodeId peer, std::uint32_t incarnation);

  net::Clock& clock_;
  net::Stack& net_;
  NodeId self_;
  Endpoint internal_ep_;
  bool is_public_;
  TransportConfig config_;
  bool attached_ = false;

  // Relay state (N-nodes).
  pss::ContactCard relay_;  // nil id when unset
  int unanswered_keepalives_ = 0;
  net::TimerId keepalive_timer_ = 0;
  std::uint64_t relays_lost_ = 0;
  bool registered_ = false;  // acked since the current set_relay()

  // Verified direct routes to peers.
  struct DirectRoute {
    Endpoint endpoint;
    net::Time verified_at = 0;
  };
  DenseMap<NodeId, DirectRoute> direct_routes_;

  // Punch probes in flight: peer -> (seq, target, sent_at).
  struct PendingProbe {
    std::uint32_t seq = 0;
    Endpoint target;
    net::Time sent_at = 0;
    int retries = 0;
  };
  DenseMap<NodeId, PendingProbe> probes_;
  std::uint32_t next_probe_seq_ = 1;
  net::TimerId probe_sweep_timer_ = 0;

  // Relay-side registrations (P-nodes).
  struct Registration {
    Endpoint external;
    net::Time expires = 0;
  };
  DenseMap<NodeId, Registration> registrations_;

  // Highest incarnation seen per peer (+ last-seen time for cap eviction).
  struct PeerEpoch {
    std::uint32_t incarnation = 0;
    net::Time seen = 0;
  };
  DenseMap<NodeId, PeerEpoch> peer_epochs_;

  DenseMap<std::uint8_t, Handler> handlers_;
  net::CpuMeter* cpu_ = nullptr;

  std::uint64_t decode_rejects_ = 0;
  std::uint64_t cap_evictions_ = 0;
  std::uint64_t peer_restarts_ = 0;
  std::uint64_t stale_incarnation_rejects_ = 0;
  std::uint64_t sends_punched_ = 0;
  std::uint64_t sends_direct_ = 0;
  std::uint64_t sends_relayed_ = 0;
  std::uint64_t probes_sent_ = 0;
  std::uint64_t probe_retries_ = 0;
  std::uint64_t routes_invalidated_ = 0;
};

}  // namespace whisper::nylon

// Causal message tracing: per-message flight records with per-hop latency
// decomposition (Fig. 7's RTT breakdown, reproduced from a live run).
//
// A TraceContext travels as *simulator-side metadata* on sim::Datagram —
// never inside protocol wire bytes, so ciphertexts are byte-identical with
// tracing on or off (asserted by test). Propagation is ambient: the network
// arms the recorder's current context around each delivery handler, layers
// that defer work across virtual time (onion crypto, retry timers) capture
// the context and re-arm it with ScopedTraceContext inside the deferred
// lambda. Every layer reaches the recorder through telemetry::Scope, so a
// stand-alone unit test pays one null check and nothing else.
//
// The recorder is an append-only event log (wire emissions/arrivals, crypto
// charges, retries, drops, fault attributions, outcomes). assemble() folds
// the log into one FlightRecord per message: the hop list with
// queue/propagation split, crypto/retry totals, drop reasons, and the
// Karn-ambiguity flag for retransmitted sends. Records round-trip through
// JSONL (parse_flight_jsonl) for the whisper_trace CLI and the adversary's
// -view auditor (telemetry/audit.hpp).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/ids.hpp"

namespace whisper::telemetry {

/// Layer that originated a causal trace (the root's protocol).
enum class TraceLayer : std::uint8_t {
  kNone = 0,
  kWcl = 1,    // one confidential message (onion + ACK path)
  kPpss = 2,   // a private view exchange / join (spans request + response)
  kChord = 3,  // a T-Chord lookup (spans every routing hop)
  kNylon = 4,  // transport-level traffic
  kApp = 5,
};
const char* trace_layer_name(TraceLayer l);
TraceLayer trace_layer_from_name(std::string_view name);

/// The context stamped on in-flight datagrams and armed ambiently around
/// handlers. `trace_id` identifies one message-level trace (a WCL send);
/// `root` the top-level causal operation it serves (a PPSS exchange, a
/// T-Chord lookup), 0 when the message itself is the root.
struct TraceContext {
  std::uint64_t root = 0;
  std::uint64_t trace_id = 0;
  std::uint32_t hop = 0;       // wire transmissions so far on this chain
  std::uint32_t seq = 0;       // per-wire-copy sequence (duplication-safe)
  std::uint16_t attempt = 0;   // WCL attempt number (1 = first try)
  TraceLayer layer = TraceLayer::kNone;

  bool valid() const { return trace_id != 0; }
  TraceContext next_hop() const {
    TraceContext c = *this;
    ++c.hop;
    c.seq = 0;
    return c;
  }
};

/// Event kinds in the flight log.
enum class FlightKind : std::uint8_t {
  kBegin = 0,    // trace/root created (node = source, peer = destination)
  kWireOut = 1,  // datagram hit the wire (dur = fault-injected extra delay)
  kWireIn = 2,   // datagram reached the destination handler
  kQueued = 3,   // held by a pause-queue fault until flushed
  kCrypto = 4,   // virtual crypto cost charged (detail: build/peel/open)
  kRetry = 5,    // attempt started (attempt number; 1 = first)
  kTimeout = 6,  // attempt timer expired at the source
  kDrop = 7,     // packet positively dead (detail: loss/filter/detach/fault)
  kFault = 8,    // fault fabric touched the packet (detail: fault kind)
  kAck = 9,      // ACK/NACK observed at the source (detail: ack/nack)
  kEnd = 10,     // outcome determined (detail: delivered/no_route/...)
};
const char* flight_kind_name(FlightKind k);
FlightKind flight_kind_from_name(std::string_view name);

struct FlightEventRec {
  std::uint64_t trace = 0;
  std::uint64_t root = 0;
  FlightKind kind = FlightKind::kBegin;
  std::uint32_t hop = 0;
  std::uint32_t seq = 0;
  std::uint16_t attempt = 0;
  std::uint64_t node = 0;  // node id (0 = unknown)
  std::uint64_t peer = 0;  // destination node for kBegin; 0 otherwise
  std::uint64_t ts = 0;    // virtual microseconds
  std::uint64_t dur = 0;   // crypto cost / injected delay / rtt for kEnd
  TraceLayer layer = TraceLayer::kNone;
  std::string detail;
};

/// One wire segment of an assembled flight record.
struct FlightHop {
  std::uint16_t attempt = 0;
  std::uint32_t hop = 0;
  std::uint32_t seq = 0;
  std::uint64_t from = 0;
  std::uint64_t to = 0;          // 0 until delivered
  std::uint64_t sent_ts = 0;
  std::uint64_t recv_ts = 0;     // 0 when never delivered
  std::uint64_t prop_us = 0;     // in-flight time minus queueing
  std::uint64_t queue_us = 0;    // fault-injected delay + pause-queue hold
  std::string status;            // "ok", or the drop reason
  std::string fault;             // fault kind that touched this segment
};

/// One message (or root operation) assembled from the event log.
struct FlightRecord {
  std::uint64_t trace_id = 0;
  std::uint64_t root = 0;  // parent root id; 0 when this record is a root
  TraceLayer layer = TraceLayer::kNone;
  std::uint64_t src = 0;
  std::uint64_t dst = 0;
  std::uint64_t begin_ts = 0;
  std::uint64_t end_ts = 0;
  std::string outcome;  // empty = still unresolved at export time
  std::uint16_t attempts = 0;
  /// Retransmitted sends: the final ACK could belong to any attempt, so the
  /// RTT must not feed an estimator (Karn's rule) and the per-hop
  /// decomposition below covers only the final attempt's path.
  bool karn_ambiguous = false;
  std::uint64_t rtt_us = 0;
  // Decomposition of rtt_us (final attempt + its ACK path):
  std::uint64_t crypto_us = 0;
  std::uint64_t prop_us = 0;
  std::uint64_t queue_us = 0;
  /// Time burned on earlier failed attempts (begin -> final attempt start).
  std::uint64_t retry_us = 0;
  /// Handler/stack time on the critical path not attributable to any other
  /// component. Always 0 under the virtual clock (handlers are free there);
  /// on the real backend it is the residual rtt - (crypto+prop+queue+retry)
  /// whenever the critical-path chain closed, so decomposed_us() == rtt_us
  /// exactly for delivered records on both backends.
  std::uint64_t proc_us = 0;
  std::string group;  // group label for PPSS roots ("g7000"), else empty
  std::vector<std::string> faults;  // fault kinds encountered, in order
  std::vector<FlightHop> hops;

  /// Sum of the decomposition components; the integration test asserts
  /// |rtt_us - decomposed_us()| <= 1ms for delivered WCL records.
  std::uint64_t decomposed_us() const {
    return crypto_us + prop_us + queue_us + retry_us + proc_us;
  }
};

/// Append-only event log with ambient-context propagation. Disabled (the
/// default) it costs one branch per call site.
class FlightRecorder {
 public:
  void set_clock(std::function<std::uint64_t()> now) { now_ = std::move(now); }
  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_ && static_cast<bool>(now_); }
  std::uint64_t now() const { return now_ ? now_() : 0; }

  /// Internal endpoint -> node id, installed by the testbed so network-level
  /// events carry node identities. Unresolvable endpoints record as 0.
  void set_node_resolver(std::function<std::uint64_t(Endpoint)> fn) {
    node_resolver_ = std::move(fn);
  }
  std::uint64_t node_of(Endpoint ep) const {
    return node_resolver_ ? node_resolver_(ep) : 0;
  }

  /// Bound on retained events; beyond it events are dropped (and counted).
  void set_capacity(std::size_t cap) { capacity_ = cap; }
  std::uint64_t dropped() const { return dropped_; }

  /// Namespace this recorder's trace ids: the sharded testbed gives shard s
  /// the base (s << 48), so a trace created on one shard stays unique when
  /// its wire events land on another shard's recorder. Call before any
  /// trace is created.
  void set_id_base(std::uint64_t base) { next_id_ = base + 1; }

  // --- Ambient context (single-threaded, like the simulator). ---
  const TraceContext& context() const { return ctx_; }
  TraceContext exchange_context(TraceContext ctx) {
    TraceContext prev = ctx_;
    ctx_ = ctx;
    return prev;
  }

  // --- Trace creation. ---
  /// Root operation (PPSS exchange, T-Chord lookup). `detail` is free-form
  /// ("group=g7000"). Returns 0 when disabled.
  std::uint64_t new_root(TraceLayer layer, std::uint64_t node, std::string detail = {});
  /// Message-level trace (one WCL send), optionally parented to a root.
  std::uint64_t new_trace(TraceLayer layer, std::uint64_t node, std::uint64_t root,
                          std::uint64_t dst_node);
  /// Sequence number for one wire emission (duplication-safe hop pairing).
  std::uint32_t next_wire_seq() { return next_seq_++; }

  // --- Event helpers (all no-ops while disabled or for invalid contexts). ---
  void wire_out(const TraceContext& ctx, std::uint64_t src_node, std::uint64_t ts,
                std::uint64_t extra_delay_us);
  void wire_in(const TraceContext& ctx, std::uint64_t dst_node, std::uint64_t ts);
  void queued(const TraceContext& ctx, std::uint64_t dst_node, std::uint64_t ts,
              std::string detail);
  void crypto(const TraceContext& ctx, std::uint64_t node, std::uint64_t ts,
              std::uint64_t dur, std::string stage);
  void retry(std::uint64_t trace, std::uint64_t node, std::uint64_t ts,
             std::uint16_t attempt);
  void timeout(std::uint64_t trace, std::uint64_t node, std::uint64_t ts,
               std::uint16_t attempt);
  void drop(const TraceContext& ctx, std::uint64_t node, std::uint64_t ts,
            std::string reason);
  void fault(const TraceContext& ctx, std::uint64_t node, std::uint64_t ts,
             std::string kind);
  void ack(std::uint64_t trace, std::uint64_t node, std::uint64_t ts, bool success);
  void end(std::uint64_t trace, std::uint64_t node, std::uint64_t ts,
           std::string outcome, std::uint16_t attempts, std::uint64_t rtt_us);

  const std::vector<FlightEventRec>& events() const { return events_; }
  void clear();

  /// Fold the event log into per-message records (deterministic: order
  /// depends only on trace creation order).
  std::vector<FlightRecord> assemble() const;

 private:
  void push(FlightEventRec ev);

  std::function<std::uint64_t()> now_;
  std::function<std::uint64_t(Endpoint)> node_resolver_;
  bool enabled_ = false;
  std::size_t capacity_ = 1u << 22;
  std::vector<FlightEventRec> events_;
  std::uint64_t dropped_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint32_t next_seq_ = 1;
  TraceContext ctx_;
};

/// RAII ambient-context arm/restore; tolerates a null or disabled recorder.
class ScopedTraceContext {
 public:
  ScopedTraceContext() = default;
  ScopedTraceContext(FlightRecorder* rec, TraceContext ctx)
      : rec_(rec != nullptr && rec->enabled() ? rec : nullptr) {
    if (rec_ != nullptr) prev_ = rec_->exchange_context(ctx);
  }
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;
  ~ScopedTraceContext() {
    if (rec_ != nullptr) rec_->exchange_context(prev_);
  }

 private:
  FlightRecorder* rec_ = nullptr;
  TraceContext prev_;
};

/// One JSON object per record. Deterministic: content-ordered, fixed number
/// formats (same contract as the metric exporters).
std::string to_jsonl(const std::vector<FlightRecord>& records);

/// Inverse of to_jsonl, tolerant of unknown keys. Returns false and sets
/// `err` on malformed input.
bool parse_flight_jsonl(std::string_view jsonl, std::vector<FlightRecord>* out,
                        std::string* err);

/// FNV-1a digest of an export — the golden-trace CI gate compares this
/// across same-seed runs.
std::uint64_t flight_digest(std::string_view text);

/// Assembly over an explicit event stream (what FlightRecorder::assemble
/// runs on its own log); per-trace event order is taken from the stream.
std::vector<FlightRecord> assemble_flight_events(
    const std::vector<FlightEventRec>& events);

/// Merge per-shard flight logs into one shard-count-invariant record list.
/// Requires each recorder to have a distinct set_id_base(). Events merge
/// into one content-ordered stream (a cross-shard message's events span two
/// recorders), assembly runs over it, then allocation artifacts are erased:
/// records sort by content, trace ids become ordinals of that order, root
/// references are rewritten through the same mapping, and hop seqs become
/// per-record ordinals. Two same-seed runs then export byte-identical JSONL
/// for any shard count — the S=1-vs-S=8 CI gate.
std::vector<FlightRecord> canonical_flight_records(
    const std::vector<const FlightRecorder*>& recorders);

/// Same canonicalization over an explicit merged event stream — the
/// cross-process path: each whisper_noded exports its raw event log
/// (to_events_jsonl), whisper_trace concatenates the per-process files and
/// merges them here. Trace ids must already be globally unique (noded
/// namespaces them with set_id_base(node_id << 48), mirroring the sharded
/// engine's per-shard bases).
std::vector<FlightRecord> canonical_flight_records(
    std::vector<FlightEventRec> events);

/// The canonical tail alone: content-sort already-assembled records,
/// renumber trace ids to ordinals of that order (roots rewritten through
/// the same map, out-of-log roots collapse to 0), hop seqs become
/// per-record ordinals. What whisper_trace runs when merging multiple
/// record-format exports (no raw events available).
std::vector<FlightRecord> canonicalize_flight_records(
    std::vector<FlightRecord> records);

/// One JSON object per raw event (the cross-process interchange format;
/// distinguishable from record JSONL by its "kind" key).
std::string to_events_jsonl(const std::vector<FlightEventRec>& events);

/// Inverse of to_events_jsonl. Returns false and sets `err` on malformed
/// input.
bool parse_flight_events_jsonl(std::string_view jsonl,
                               std::vector<FlightEventRec>* out, std::string* err);

}  // namespace whisper::telemetry

#include "telemetry/timeseries.hpp"

namespace whisper::telemetry {

bool TimeSeriesRecorder::wanted(const std::string& key) const {
  if (prefixes_.empty()) return true;
  for (const std::string& p : prefixes_) {
    if (key.compare(0, p.size(), p) == 0) return true;
  }
  return false;
}

void TimeSeriesRecorder::sample(std::uint64_t ts) {
  SamplePoint point;
  point.ts = ts;
  for (const auto& [key, entry] : registry_->entries()) {
    if (!wanted(key)) continue;
    double v = 0;
    if (const auto* c = std::get_if<Counter>(&entry.metric)) {
      v = static_cast<double>(c->value());
    } else if (const auto* g = std::get_if<Gauge>(&entry.metric)) {
      v = g->value();
    } else if (const auto* h = std::get_if<Histogram>(&entry.metric)) {
      v = static_cast<double>(h->count());
    }
    point.values.emplace_back(key, v);
  }
  samples_.push_back(std::move(point));
}

std::vector<std::pair<std::uint64_t, double>> TimeSeriesRecorder::deltas(
    const std::string& key) const {
  std::vector<std::pair<std::uint64_t, double>> out;
  double prev = 0;
  bool have_prev = false;
  for (const SamplePoint& p : samples_) {
    for (const auto& [k, v] : p.values) {
      if (k != key) continue;
      if (have_prev) out.emplace_back(p.ts, v - prev);
      prev = v;
      have_prev = true;
      break;
    }
  }
  return out;
}

}  // namespace whisper::telemetry

#include "telemetry/audit.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

namespace whisper::telemetry {
namespace {

// Splits "a,b,c" and calls fn on each non-empty piece.
template <typename Fn>
bool for_each_piece(std::string_view list, Fn fn) {
  std::size_t pos = 0;
  while (pos <= list.size()) {
    std::size_t comma = list.find(',', pos);
    if (comma == std::string_view::npos) comma = list.size();
    std::string_view piece = list.substr(pos, comma - pos);
    if (!piece.empty() && !fn(piece)) return false;
    pos = comma + 1;
  }
  return true;
}

bool parse_u64(std::string_view s, std::uint64_t* out) {
  if (s.empty()) return false;
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

std::string fmt_u64_list(const std::set<std::uint64_t>& s) {
  std::string out;
  for (std::uint64_t v : s) {
    if (!out.empty()) out += ',';
    out += std::to_string(v);
  }
  return out;
}

// One audited transmission of the forward path.
struct Transmission {
  std::uint64_t from = 0;
  std::uint64_t to = 0;
  std::uint64_t sent_ts = 0;
};

// Forward-path transmissions of the final attempt, in send order. The
// forward path ends at the first arrival at the true destination; later
// hops are the ACK retracing the route.
std::vector<Transmission> forward_path(const FlightRecord& rec) {
  std::vector<Transmission> out;
  std::uint16_t final_attempt = 0;
  for (const FlightHop& h : rec.hops) final_attempt = std::max(final_attempt, h.attempt);
  for (const FlightHop& h : rec.hops) {
    if (h.attempt != final_attempt) continue;
    if (h.status != "ok") continue;
    if (h.from == 0 || h.to == 0) continue;
    out.push_back({h.from, h.to, h.sent_ts});
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Transmission& a, const Transmission& b) {
                     return a.sent_ts < b.sent_ts;
                   });
  auto arrive = std::find_if(out.begin(), out.end(), [&](const Transmission& t) {
    return t.to == rec.dst;
  });
  if (arrive != out.end()) out.erase(arrive + 1, out.end());
  return out;
}

MessageAudit audit_message(const FlightRecord& rec, const std::vector<Transmission>& path,
                           const Vantage& v, std::size_t total_nodes) {
  MessageAudit ma;
  ma.trace_id = rec.trace_id;
  ma.sender = rec.src;
  ma.receiver = rec.dst;
  ma.hops_total = path.size();

  // Which transmissions does the vantage see, and who do they involve?
  std::set<std::uint64_t> participants;  // endpoints of observed transmissions
  std::size_t first_seen = path.size(), last_seen = path.size();
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (!v.observes_link(path[i].from, path[i].to)) continue;
    ++ma.hops_observed;
    participants.insert(path[i].from);
    participants.insert(path[i].to);
    if (first_seen == path.size()) first_seen = i;
    last_seen = i;
  }

  // Attacker-controlled nodes rule themselves out as endpoints.
  std::set<std::uint64_t> attacker = v.relays;
  attacker.insert(v.taps.begin(), v.taps.end());

  // Sender. Pinned only when the source's first emission is visibly
  // un-preceded: the attacker sees *all* of the source's links (tap,
  // compromise, or global view). A mere link observer or a downstream HbC
  // relay sees an emitter but cannot exclude an earlier inbound hop.
  ma.sender_pinned = v.global || v.taps.contains(rec.src) || v.relays.contains(rec.src);
  if (ma.sender_pinned) {
    ma.sender_set = 1;
  } else {
    // Candidate senders: everyone except attacker nodes (they know they did
    // not send) and observed participants strictly downstream of the first
    // observed emitter (they visibly *received* the message).
    std::set<std::uint64_t> excluded = attacker;
    if (first_seen < path.size()) {
      for (std::uint64_t p : participants) {
        if (p != path[first_seen].from) excluded.insert(p);
      }
    }
    excluded.erase(rec.src);  // ground truth stays a candidate by construction
    ma.sender_set = total_nodes > excluded.size() ? total_nodes - excluded.size() : 1;
  }

  // Receiver, mirrored at the tail of the forward path.
  ma.receiver_pinned = v.global || v.taps.contains(rec.dst) || v.relays.contains(rec.dst);
  if (ma.receiver_pinned) {
    ma.receiver_set = 1;
  } else {
    std::set<std::uint64_t> excluded = attacker;
    if (last_seen < path.size()) {
      for (std::uint64_t p : participants) {
        if (p != path[last_seen].to) excluded.insert(p);
      }
    }
    excluded.erase(rec.dst);
    ma.receiver_set = total_nodes > excluded.size() ? total_nodes - excluded.size() : 1;
  }

  ma.linkable = ma.sender_pinned && ma.receiver_pinned;
  return ma;
}

}  // namespace

bool Vantage::parse(std::string_view spec, Vantage* out, std::string* err) {
  Vantage v;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t semi = spec.find(';', pos);
    if (semi == std::string_view::npos) semi = spec.size();
    std::string_view clause = spec.substr(pos, semi - pos);
    pos = semi + 1;
    if (clause.empty()) continue;
    if (clause == "global") {
      v.global = true;
      continue;
    }
    const std::size_t eq = clause.find('=');
    if (eq == std::string_view::npos) {
      if (err) *err = "bad clause (want key=values or 'global'): " + std::string(clause);
      return false;
    }
    const std::string_view key = clause.substr(0, eq);
    const std::string_view val = clause.substr(eq + 1);
    bool ok = true;
    if (key == "relays" || key == "taps") {
      ok = for_each_piece(val, [&](std::string_view piece) {
        std::uint64_t n = 0;
        if (!parse_u64(piece, &n)) return false;
        (key == "relays" ? v.relays : v.taps).insert(n);
        return true;
      });
    } else if (key == "links") {
      ok = for_each_piece(val, [&](std::string_view piece) {
        const std::size_t dash = piece.find('-');
        std::uint64_t a = 0, b = 0;
        if (dash == std::string_view::npos || !parse_u64(piece.substr(0, dash), &a) ||
            !parse_u64(piece.substr(dash + 1), &b)) {
          return false;
        }
        v.links.insert(a < b ? std::make_pair(a, b) : std::make_pair(b, a));
        return true;
      });
    } else {
      if (err) *err = "unknown vantage key: " + std::string(key);
      return false;
    }
    if (!ok) {
      if (err) *err = "bad value list in clause: " + std::string(clause);
      return false;
    }
  }
  *out = std::move(v);
  return true;
}

std::string Vantage::str() const {
  if (global) return "global";
  std::string out;
  auto clause = [&](const char* key, const std::string& val) {
    if (val.empty()) return;
    if (!out.empty()) out += ';';
    out += key;
    out += '=';
    out += val;
  };
  clause("relays", fmt_u64_list(relays));
  clause("taps", fmt_u64_list(taps));
  std::string link_list;
  for (const auto& [a, b] : links) {
    if (!link_list.empty()) link_list += ',';
    link_list += std::to_string(a) + "-" + std::to_string(b);
  }
  clause("links", link_list);
  return out.empty() ? "(none)" : out;
}

AuditReport audit(const std::vector<FlightRecord>& records, const Vantage& vantage,
                  std::size_t total_nodes) {
  AuditReport report;

  // Universe and ground-truth group membership come from the full record
  // set (the auditor is allowed to know the deployment; the *vantage* is
  // what the attacker knows).
  std::set<std::uint64_t> universe;
  std::map<std::uint64_t, std::string> root_group;  // root trace id -> group
  for (const FlightRecord& rec : records) {
    if (rec.src != 0) universe.insert(rec.src);
    if (rec.dst != 0) universe.insert(rec.dst);
    for (const FlightHop& h : rec.hops) {
      if (h.from != 0) universe.insert(h.from);
      if (h.to != 0) universe.insert(h.to);
    }
    if (!rec.group.empty()) root_group[rec.trace_id] = rec.group;
  }
  report.total_nodes = total_nodes != 0 ? total_nodes : universe.size();

  std::map<std::string, std::set<std::uint64_t>> group_members;
  std::map<std::string, std::set<std::uint64_t>> group_leaked;
  std::map<std::uint64_t, RelayAudit> per_relay;
  for (std::uint64_t r : vantage.relays) per_relay[r].relay = r;

  double sender_sets = 0, receiver_sets = 0;
  for (const FlightRecord& rec : records) {
    // Only WCL messages move through the network; PPSS/Chord roots are
    // control-plane parents with no hops of their own.
    if (rec.layer != TraceLayer::kWcl || rec.src == 0 || rec.dst == 0) continue;
    const std::vector<Transmission> path = forward_path(rec);
    if (path.empty()) continue;

    MessageAudit ma = audit_message(rec, path, vantage, report.total_nodes);
    ++report.messages_total;
    if (ma.hops_observed > 0) ++report.messages_observed;
    if (ma.linkable) ++report.linkable_count;
    sender_sets += static_cast<double>(ma.sender_set);
    receiver_sets += static_cast<double>(ma.receiver_set);

    // Per-relay single-vantage audit: what would relay r alone learn?
    for (auto& [r, ra] : per_relay) {
      const bool on_path = std::any_of(path.begin(), path.end(), [&, rr = r](const Transmission& t) {
        return t.from == rr || t.to == rr;
      });
      if (!on_path) continue;
      ++ra.messages_seen;
      Vantage solo;
      solo.relays.insert(r);
      const MessageAudit solo_ma = audit_message(rec, path, solo, report.total_nodes);
      if (solo_ma.sender_pinned) ++ra.sender_pinned;
      if (solo_ma.receiver_pinned) ++ra.receiver_pinned;
      if (solo_ma.linkable) ++ra.linkable;
    }

    // Group leakage: find the message's group via its PPSS root (worst-case
    // message->group oracle).
    auto git = root_group.find(rec.root);
    if (git != root_group.end()) {
      group_members[git->second].insert(rec.src);
      group_members[git->second].insert(rec.dst);
      if (ma.sender_pinned) group_leaked[git->second].insert(rec.src);
      if (ma.receiver_pinned) group_leaked[git->second].insert(rec.dst);
    }

    report.messages.push_back(std::move(ma));
  }

  if (report.messages_total > 0) {
    report.mean_sender_set = sender_sets / static_cast<double>(report.messages_total);
    report.mean_receiver_set = receiver_sets / static_cast<double>(report.messages_total);
  }
  for (auto& [r, ra] : per_relay) report.relays.push_back(ra);
  for (auto& [g, members] : group_members) {
    GroupAudit ga;
    ga.group = g;
    ga.members = members.size();
    ga.leaked = group_leaked[g].size();
    report.groups.push_back(std::move(ga));
  }
  return report;
}

std::string format_report(const AuditReport& report, bool verbose) {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "nodes=%zu messages=%zu observed=%zu linkable=%zu\n",
                report.total_nodes, report.messages_total, report.messages_observed,
                report.linkable_count);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "mean anonymity set: sender=%.1f receiver=%.1f (of %zu)\n",
                report.mean_sender_set, report.mean_receiver_set, report.total_nodes);
  out += buf;
  if (!report.relays.empty()) {
    out += "per-relay (audited as sole honest-but-curious vantage):\n";
    out += "  relay        seen  sender_pinned  receiver_pinned  linkable\n";
    for (const RelayAudit& ra : report.relays) {
      std::snprintf(buf, sizeof(buf), "  %-10llu %6zu %14zu %16zu %9zu\n",
                    static_cast<unsigned long long>(ra.relay), ra.messages_seen,
                    ra.sender_pinned, ra.receiver_pinned, ra.linkable);
      out += buf;
    }
  }
  if (!report.groups.empty()) {
    out += "group membership leakage:\n";
    for (const GroupAudit& ga : report.groups) {
      std::snprintf(buf, sizeof(buf), "  %-24s members=%zu leaked=%zu\n", ga.group.c_str(),
                    ga.members, ga.leaked);
      out += buf;
    }
  }
  if (verbose && !report.messages.empty()) {
    out += "per-message:\n";
    out += "  trace      sender     receiver   hops  seen  s_set  r_set  linkable\n";
    for (const MessageAudit& ma : report.messages) {
      std::snprintf(buf, sizeof(buf), "  %-10llu %-10llu %-10llu %4zu  %4zu  %5zu  %5zu  %s\n",
                    static_cast<unsigned long long>(ma.trace_id),
                    static_cast<unsigned long long>(ma.sender),
                    static_cast<unsigned long long>(ma.receiver), ma.hops_total,
                    ma.hops_observed, ma.sender_set, ma.receiver_set,
                    ma.linkable ? "YES" : "no");
      out += buf;
    }
  }
  return out;
}

}  // namespace whisper::telemetry

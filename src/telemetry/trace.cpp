#include "telemetry/trace.hpp"

namespace whisper::telemetry {

void Tracer::push(TraceEvent ev) {
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(ev));
}

void Tracer::complete(std::string name, std::string category, std::uint64_t tid,
                      std::uint64_t ts, std::uint64_t dur,
                      std::vector<std::pair<std::string, std::string>> args) {
  if (!enabled()) return;
  push(TraceEvent{std::move(name), std::move(category), 'X', ts, dur, tid, 0, std::move(args)});
}

void Tracer::instant(std::string name, std::string category, std::uint64_t tid,
                     std::uint64_t ts,
                     std::vector<std::pair<std::string, std::string>> args) {
  if (!enabled()) return;
  push(TraceEvent{std::move(name), std::move(category), 'i', ts, 0, tid, 0, std::move(args)});
}

void Tracer::flow_begin(std::string name, std::string category, std::uint64_t tid,
                        std::uint64_t ts, std::uint64_t flow_id) {
  if (!enabled()) return;
  push(TraceEvent{std::move(name), std::move(category), 's', ts, 0, tid, flow_id, {}});
}

void Tracer::flow_end(std::string name, std::string category, std::uint64_t tid,
                      std::uint64_t ts, std::uint64_t flow_id) {
  if (!enabled()) return;
  push(TraceEvent{std::move(name), std::move(category), 'f', ts, 0, tid, flow_id, {}});
}

}  // namespace whisper::telemetry

#include "telemetry/log.hpp"

#include <time.h>

#include <cinttypes>
#include <cmath>

#include "telemetry/export.hpp"

namespace whisper::telemetry {

namespace {

std::uint64_t monotonic_us() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000u +
         static_cast<std::uint64_t>(ts.tv_nsec) / 1000u;
}

void append_json_value(std::string& out, const LogField& f) {
  char buf[64];
  switch (f.kind) {
    case LogField::Kind::kStr:
      out += '"';
      out += json_escape(f.s);
      out += '"';
      return;
    case LogField::Kind::kU64:
      std::snprintf(buf, sizeof buf, "%" PRIu64, f.u);
      out += buf;
      return;
    case LogField::Kind::kI64:
      std::snprintf(buf, sizeof buf, "%" PRId64, f.i);
      out += buf;
      return;
    case LogField::Kind::kF64:
      if (std::isfinite(f.f)) {
        std::snprintf(buf, sizeof buf, "%.17g", f.f);
        out += buf;
      } else {
        out += "null";
      }
      return;
    case LogField::Kind::kBool:
      out += f.b ? "true" : "false";
      return;
  }
}

}  // namespace

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
  }
  return "unknown";
}

Logger::~Logger() { close_owned(); }

void Logger::close_owned() {
  if (owns_stream_ && stream_) std::fclose(stream_);
  stream_ = nullptr;
  owns_stream_ = false;
}

void Logger::set_stream(std::FILE* stream) {
  close_owned();
  stream_ = stream;
}

bool Logger::open_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (!f) return false;
  close_owned();
  stream_ = f;
  owns_stream_ = true;
  return true;
}

void Logger::log(LogLevel level, std::string_view event,
                 std::initializer_list<LogField> fields) {
  if (!stream_ || static_cast<int>(level) < static_cast<int>(min_level_)) return;
  const std::uint64_t ts = now_us_ ? now_us_() : monotonic_us();

  std::string line;
  line.reserve(128);
  char buf[64];
  std::snprintf(buf, sizeof buf, "{\"ts_us\":%" PRIu64, ts);
  line += buf;
  line += ",\"level\":\"";
  line += log_level_name(level);
  line += "\"";
  if (has_node_) {
    std::snprintf(buf, sizeof buf, ",\"node\":%" PRIu64, node_);
    line += buf;
  }
  line += ",\"event\":\"";
  line += json_escape(event);
  line += "\"";
  for (const LogField& f : fields) {
    line += ",\"";
    line += json_escape(f.key);
    line += "\":";
    append_json_value(line, f);
  }
  line += "}\n";
  std::fwrite(line.data(), 1, line.size(), stream_);
  std::fflush(stream_);
}

}  // namespace whisper::telemetry

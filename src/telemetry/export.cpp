#include "telemetry/export.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace whisper::telemetry {

namespace {

/// Shortest round-trippable decimal; integral values print without ".0"
/// noise. %.17g is deterministic for a given libc, which is all the golden
/// tests (same binary, two runs) require.
std::string fmt_double(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string fmt_u64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

void append_labels(std::string& out, const Labels& labels) {
  out += "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i) out += ',';
    out += '"';
    out += json_escape(labels[i].first);
    out += "\":\"";
    out += json_escape(labels[i].second);
    out += '"';
  }
  out += "}";
}

void append_args(std::string& out,
                 const std::vector<std::pair<std::string, std::string>>& args) {
  out += "{";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i) out += ',';
    out += '"';
    out += json_escape(args[i].first);
    out += "\":\"";
    out += json_escape(args[i].second);
    out += '"';
  }
  out += "}";
}

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string to_jsonl(const Registry& registry) {
  std::string out;
  for (const auto& [key, entry] : registry.entries()) {
    out += "{\"name\":\"";
    out += json_escape(entry.name);
    out += "\",\"labels\":";
    append_labels(out, entry.labels);
    if (const auto* c = std::get_if<Counter>(&entry.metric)) {
      out += ",\"type\":\"counter\",\"value\":";
      out += fmt_u64(c->value());
    } else if (const auto* g = std::get_if<Gauge>(&entry.metric)) {
      out += ",\"type\":\"gauge\",\"value\":";
      out += fmt_double(g->value());
    } else if (const auto* h = std::get_if<Histogram>(&entry.metric)) {
      out += ",\"type\":\"histogram\",\"count\":";
      out += fmt_u64(h->count());
      out += ",\"sum\":";
      out += fmt_double(h->sum());
      out += ",\"min\":";
      out += fmt_double(h->min());
      out += ",\"max\":";
      out += fmt_double(h->max());
      out += ",\"p50\":";
      out += fmt_double(h->percentile(50));
      out += ",\"p90\":";
      out += fmt_double(h->percentile(90));
      out += ",\"p95\":";
      out += fmt_double(h->percentile(95));
      out += ",\"p99\":";
      out += fmt_double(h->percentile(99));
      out += ",\"bounds\":[";
      const auto& bounds = h->spec().bounds;
      for (std::size_t i = 0; i < bounds.size(); ++i) {
        if (i) out += ',';
        out += fmt_double(bounds[i]);
      }
      out += "],\"buckets\":[";
      const auto& counts = h->bucket_counts();
      for (std::size_t i = 0; i < counts.size(); ++i) {
        if (i) out += ',';
        out += fmt_u64(counts[i]);
      }
      out += "]";
    }
    out += "}\n";
  }
  return out;
}

std::string to_jsonl(const TimeSeriesRecorder& recorder) {
  std::string out;
  for (const SamplePoint& p : recorder.series()) {
    out += "{\"ts\":";
    out += fmt_u64(p.ts);
    out += ",\"values\":{";
    for (std::size_t i = 0; i < p.values.size(); ++i) {
      if (i) out += ',';
      out += '"';
      out += json_escape(p.values[i].first);
      out += "\":";
      out += fmt_double(p.values[i].second);
    }
    out += "}}\n";
  }
  return out;
}

std::string to_chrome_trace(const Tracer& tracer) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& ev : tracer.events()) {
    if (!first) out += ',';
    first = false;
    out += "\n{\"name\":\"";
    out += json_escape(ev.name);
    out += "\",\"cat\":\"";
    out += json_escape(ev.category);
    out += "\",\"ph\":\"";
    out += ev.phase;
    out += "\",\"ts\":";
    out += fmt_u64(ev.ts);
    if (ev.phase == 'X') {
      out += ",\"dur\":";
      out += fmt_u64(ev.dur);
    }
    if (ev.phase == 'i') out += ",\"s\":\"t\"";
    if (ev.phase == 's' || ev.phase == 'f') {
      out += ",\"id\":";
      out += fmt_u64(ev.flow);
      // "bp":"e" binds the finish to the enclosing slice so Perfetto draws
      // the arrow even when the slices don't overlap in time.
      if (ev.phase == 'f') out += ",\"bp\":\"e\"";
    }
    out += ",\"pid\":1,\"tid\":";
    out += fmt_u64(ev.tid);
    if (!ev.args.empty()) {
      out += ",\"args\":";
      append_args(out, ev.args);
    }
    out += "}";
  }
  out += first ? "]}\n" : "\n]}\n";
  return out;
}

bool write_text_file(const std::string& path, std::string_view content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const bool ok = std::fclose(f) == 0 && written == content.size();
  return ok;
}

}  // namespace whisper::telemetry

#include "telemetry/health.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <variant>

#include "common/crc32.hpp"
#include "telemetry/export.hpp"

namespace whisper::telemetry {

namespace {

void set_error(DecodeError* error, DecodeError e) {
  if (error) *error = e;
}

// Matches the registry exporter's number format: integral values print as
// integers, everything else round-trips via %.17g.
std::string fmt_double(double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<long long>(v)) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", v);
  }
  return buf;
}

void encode_payload(Writer& w, const HealthSnapshot& s) {
  w.u64(s.node);
  w.u32(s.pid);
  w.u32(s.incarnation);
  w.u64(s.seq);
  w.u64(s.now_us);
  w.u64(s.uptime_us);
  w.u32(s.groups);
  w.u32(s.wcl_backlog);
  w.u32(s.pending_forwards);
  w.u32(s.pss_view);
  w.u32(s.pss_reserve);
  w.u32(s.quarantined);
  w.u32(s.peer_restarts);
  w.u32(s.decode_rejects);
  w.u32(s.rate_limited);
  w.u64(s.rss_kb);
  w.u64(s.cpu_us);
  w.u16(static_cast<std::uint16_t>(
      s.metrics.size() > kMaxHealthMetrics ? kMaxHealthMetrics : s.metrics.size()));
  std::size_t n = 0;
  for (const auto& [name, value] : s.metrics) {
    if (n++ == kMaxHealthMetrics) break;
    w.str(name);
    w.f64(value);
  }
}

}  // namespace

Bytes encode_health_record(const HealthSnapshot& snap) {
  Writer payload;
  encode_payload(payload, snap);

  Writer w;
  w.u8(kHealthMagic0);
  w.u8(kHealthMagic1);
  w.u8(kHealthVersion);
  w.u8(snap.keyframe ? kHealthFlagKeyframe : 0);
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.u32(crc32(payload.data()));
  w.raw(payload.data());
  return std::move(w).take();
}

std::optional<HealthSnapshot> decode_health_record(BytesView data, DecodeError* error) {
  set_error(error, DecodeError::kNone);
  Reader r(data);
  const std::uint8_t m0 = r.u8();
  const std::uint8_t m1 = r.u8();
  const std::uint8_t version = r.u8();
  const std::uint8_t flags = r.u8();
  const std::uint32_t len = r.u32();
  const std::uint32_t crc = r.u32();
  if (!r.ok()) {
    set_error(error, r.error());
    return std::nullopt;
  }
  if (m0 != kHealthMagic0 || m1 != kHealthMagic1 || version != kHealthVersion) {
    set_error(error, DecodeError::kBadValue);
    return std::nullopt;
  }
  if (len > kMaxHealthPayloadBytes) {
    set_error(error, DecodeError::kOversized);
    return std::nullopt;
  }
  if (len > r.remaining()) {
    set_error(error, DecodeError::kBadLength);
    return std::nullopt;
  }
  const Bytes payload = r.raw(len);
  if (!r.expect_done()) {
    set_error(error, r.error());
    return std::nullopt;
  }
  if (crc32(BytesView(payload)) != crc) {
    set_error(error, DecodeError::kBadValue);
    return std::nullopt;
  }

  Reader p(payload);
  HealthSnapshot s;
  s.node = p.u64();
  s.pid = p.u32();
  s.incarnation = p.u32();
  s.seq = p.u64();
  s.now_us = p.u64();
  s.uptime_us = p.u64();
  s.groups = p.u32();
  s.wcl_backlog = p.u32();
  s.pending_forwards = p.u32();
  s.pss_view = p.u32();
  s.pss_reserve = p.u32();
  s.quarantined = p.u32();
  s.peer_restarts = p.u32();
  s.decode_rejects = p.u32();
  s.rate_limited = p.u32();
  s.rss_kb = p.u64();
  s.cpu_us = p.u64();
  s.keyframe = (flags & kHealthFlagKeyframe) != 0;
  const std::uint32_t count = p.count16(kMaxHealthMetrics);
  s.metrics.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::string name = p.str(kMaxHealthNameBytes);
    const double value = p.f64();
    if (!p.ok()) break;
    s.metrics.emplace_back(std::move(name), value);
  }
  if (!p.expect_done()) {
    set_error(error, p.error());
    return std::nullopt;
  }
  return s;
}

std::vector<std::pair<std::string, double>> registry_values(const Registry& reg) {
  std::vector<std::pair<std::string, double>> out;
  out.reserve(reg.size());
  for (const auto& [key, entry] : reg.entries()) {
    if (const auto* c = std::get_if<Counter>(&entry.metric)) {
      out.emplace_back(key, static_cast<double>(c->value()));
    } else if (const auto* g = std::get_if<Gauge>(&entry.metric)) {
      out.emplace_back(key, g->value());
    } else if (const auto* h = std::get_if<Histogram>(&entry.metric)) {
      out.emplace_back(key + "#count", static_cast<double>(h->count()));
      out.emplace_back(key + "#sum", h->sum());
      out.emplace_back(key + "#min", h->min());
      out.emplace_back(key + "#max", h->max());
      out.emplace_back(key + "#p50", h->percentile(50));
      out.emplace_back(key + "#p95", h->percentile(95));
      out.emplace_back(key + "#p99", h->percentile(99));
    }
  }
  return out;
}

Bytes HealthExporter::next(HealthSnapshot snap) {
  snap.seq = ++seq_;
  snap.keyframe = ((seq_ - 1) % keyframe_every_) == 0;
  snap.metrics.clear();
  if (reg_) {
    const auto values = registry_values(*reg_);
    if (snap.keyframe) {
      snap.metrics = values;
      last_.clear();
      for (const auto& [k, v] : values) last_[k] = v;
    } else {
      for (const auto& [k, v] : values) {
        auto it = last_.find(k);
        if (it == last_.end() || it->second != v) {
          snap.metrics.emplace_back(k, v);
          last_[k] = v;
        }
      }
    }
  }
  return encode_health_record(snap);
}

bool HealthAccumulator::apply(BytesView record, DecodeError* error) {
  auto snap = decode_health_record(record, error);
  if (!snap) return false;
  apply(*snap);
  return true;
}

void HealthAccumulator::apply(const HealthSnapshot& snap) {
  // Same record scraped twice: nothing new — unless it is a keyframe and
  // the metric view is stale (an admin reply reuses the last exported seq;
  // its full value set is exactly what an unsynced accumulator needs).
  if (valid_ && snap.pid == last_.pid && snap.incarnation == last_.incarnation &&
      snap.seq == last_.seq && (synced_ || !snap.keyframe)) {
    return;
  }
  const bool contiguous =
      valid_ && snap.pid == last_.pid && snap.incarnation == last_.incarnation &&
      snap.seq == last_.seq + 1;
  if (snap.keyframe) {
    metrics_.clear();
    for (const auto& [k, v] : snap.metrics) metrics_[k] = v;
    synced_ = true;
  } else if (synced_ && contiguous) {
    for (const auto& [k, v] : snap.metrics) metrics_[k] = v;
  } else {
    // Gap in the delta chain (missed scrape or restarted node): the metric
    // view is stale until the next keyframe. Header fields stay live so the
    // supervisor probe keeps working.
    synced_ = false;
  }
  last_ = snap;
  valid_ = true;
}

std::string health_to_json(const HealthSnapshot& snap,
                           const std::map<std::string, double>& metrics,
                           std::string_view label) {
  std::string out = "{\"node\":\"";
  out += json_escape(label);
  out += "\"";
  char buf[160];
  std::snprintf(buf, sizeof buf,
                ",\"ts_us\":%" PRIu64 ",\"pid\":%u,\"inc\":%u,\"seq\":%" PRIu64
                ",\"uptime_us\":%" PRIu64,
                snap.now_us, snap.pid, snap.incarnation, snap.seq, snap.uptime_us);
  out += buf;
  std::snprintf(buf, sizeof buf,
                ",\"groups\":%u,\"wcl_backlog\":%u,\"pending_forwards\":%u"
                ",\"pss_view\":%u,\"pss_reserve\":%u,\"quarantined\":%u",
                snap.groups, snap.wcl_backlog, snap.pending_forwards, snap.pss_view,
                snap.pss_reserve, snap.quarantined);
  out += buf;
  std::snprintf(buf, sizeof buf,
                ",\"peer_restarts\":%u,\"decode_rejects\":%u,\"rate_limited\":%u"
                ",\"rss_kb\":%" PRIu64 ",\"cpu_us\":%" PRIu64,
                snap.peer_restarts, snap.decode_rejects, snap.rate_limited, snap.rss_kb,
                snap.cpu_us);
  out += buf;
  out += ",\"metrics\":{";
  bool first = true;
  for (const auto& [k, v] : metrics) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    out += json_escape(k);
    out += "\":";
    out += fmt_double(v);
  }
  out += "}}";
  return out;
}

Bytes encode_admin_request(AdminOp op) {
  Writer w;
  w.u8(kAdminMagic0);
  w.u8(kAdminMagic1);
  w.u8(kAdminVersion);
  w.u8(static_cast<std::uint8_t>(op));
  return std::move(w).take();
}

std::optional<AdminOp> decode_admin_request(BytesView data, DecodeError* error) {
  set_error(error, DecodeError::kNone);
  Reader r(data);
  const std::uint8_t m0 = r.u8();
  const std::uint8_t m1 = r.u8();
  const std::uint8_t version = r.u8();
  const std::uint8_t op = r.u8();
  if (!r.ok()) {
    set_error(error, r.error());
    return std::nullopt;
  }
  if (!r.expect_done()) {
    set_error(error, r.error());
    return std::nullopt;
  }
  if (m0 != kAdminMagic0 || m1 != kAdminMagic1 || version != kAdminVersion) {
    set_error(error, DecodeError::kBadValue);
    return std::nullopt;
  }
  if (op != static_cast<std::uint8_t>(AdminOp::kStats) &&
      op != static_cast<std::uint8_t>(AdminOp::kNatReboot)) {
    set_error(error, DecodeError::kBadValue);
    return std::nullopt;
  }
  return static_cast<AdminOp>(op);
}

}  // namespace whisper::telemetry

#include "telemetry/flight.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <tuple>
#include <utility>

namespace whisper::telemetry {

const char* trace_layer_name(TraceLayer l) {
  switch (l) {
    case TraceLayer::kNone: return "none";
    case TraceLayer::kWcl: return "wcl";
    case TraceLayer::kPpss: return "ppss";
    case TraceLayer::kChord: return "chord";
    case TraceLayer::kNylon: return "nylon";
    case TraceLayer::kApp: return "app";
  }
  return "none";
}

TraceLayer trace_layer_from_name(std::string_view name) {
  if (name == "wcl") return TraceLayer::kWcl;
  if (name == "ppss") return TraceLayer::kPpss;
  if (name == "chord") return TraceLayer::kChord;
  if (name == "nylon") return TraceLayer::kNylon;
  if (name == "app") return TraceLayer::kApp;
  return TraceLayer::kNone;
}

const char* flight_kind_name(FlightKind k) {
  switch (k) {
    case FlightKind::kBegin: return "begin";
    case FlightKind::kWireOut: return "wire_out";
    case FlightKind::kWireIn: return "wire_in";
    case FlightKind::kQueued: return "queued";
    case FlightKind::kCrypto: return "crypto";
    case FlightKind::kRetry: return "retry";
    case FlightKind::kTimeout: return "timeout";
    case FlightKind::kDrop: return "drop";
    case FlightKind::kFault: return "fault";
    case FlightKind::kAck: return "ack";
    case FlightKind::kEnd: return "end";
  }
  return "unknown";
}

FlightKind flight_kind_from_name(std::string_view name) {
  if (name == "wire_out") return FlightKind::kWireOut;
  if (name == "wire_in") return FlightKind::kWireIn;
  if (name == "queued") return FlightKind::kQueued;
  if (name == "crypto") return FlightKind::kCrypto;
  if (name == "retry") return FlightKind::kRetry;
  if (name == "timeout") return FlightKind::kTimeout;
  if (name == "drop") return FlightKind::kDrop;
  if (name == "fault") return FlightKind::kFault;
  if (name == "ack") return FlightKind::kAck;
  if (name == "end") return FlightKind::kEnd;
  return FlightKind::kBegin;
}

void FlightRecorder::push(FlightEventRec ev) {
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(ev));
}

void FlightRecorder::clear() {
  events_.clear();
  dropped_ = 0;
  next_id_ = 1;
  next_seq_ = 1;
  ctx_ = TraceContext{};
}

std::uint64_t FlightRecorder::new_root(TraceLayer layer, std::uint64_t node,
                                       std::string detail) {
  if (!enabled()) return 0;
  const std::uint64_t id = next_id_++;
  FlightEventRec ev;
  ev.trace = id;
  ev.kind = FlightKind::kBegin;
  ev.node = node;
  ev.ts = now();
  ev.layer = layer;
  ev.detail = std::move(detail);
  push(std::move(ev));
  return id;
}

std::uint64_t FlightRecorder::new_trace(TraceLayer layer, std::uint64_t node,
                                        std::uint64_t root, std::uint64_t dst_node) {
  if (!enabled()) return 0;
  const std::uint64_t id = next_id_++;
  FlightEventRec ev;
  ev.trace = id;
  ev.root = root;
  ev.kind = FlightKind::kBegin;
  ev.node = node;
  ev.peer = dst_node;
  ev.ts = now();
  ev.layer = layer;
  push(std::move(ev));
  return id;
}

void FlightRecorder::wire_out(const TraceContext& ctx, std::uint64_t src_node,
                              std::uint64_t ts, std::uint64_t extra_delay_us) {
  if (!enabled() || !ctx.valid()) return;
  push(FlightEventRec{ctx.trace_id, ctx.root, FlightKind::kWireOut, ctx.hop, ctx.seq,
                      ctx.attempt, src_node, 0, ts, extra_delay_us, ctx.layer, {}});
}

void FlightRecorder::wire_in(const TraceContext& ctx, std::uint64_t dst_node,
                             std::uint64_t ts) {
  if (!enabled() || !ctx.valid()) return;
  push(FlightEventRec{ctx.trace_id, ctx.root, FlightKind::kWireIn, ctx.hop, ctx.seq,
                      ctx.attempt, dst_node, 0, ts, 0, ctx.layer, {}});
}

void FlightRecorder::queued(const TraceContext& ctx, std::uint64_t dst_node,
                            std::uint64_t ts, std::string detail) {
  if (!enabled() || !ctx.valid()) return;
  push(FlightEventRec{ctx.trace_id, ctx.root, FlightKind::kQueued, ctx.hop, ctx.seq,
                      ctx.attempt, dst_node, 0, ts, 0, ctx.layer, std::move(detail)});
}

void FlightRecorder::crypto(const TraceContext& ctx, std::uint64_t node, std::uint64_t ts,
                            std::uint64_t dur, std::string stage) {
  if (!enabled() || !ctx.valid()) return;
  push(FlightEventRec{ctx.trace_id, ctx.root, FlightKind::kCrypto, ctx.hop, 0, ctx.attempt,
                      node, 0, ts, dur, ctx.layer, std::move(stage)});
}

void FlightRecorder::retry(std::uint64_t trace, std::uint64_t node, std::uint64_t ts,
                           std::uint16_t attempt) {
  if (!enabled() || trace == 0) return;
  push(FlightEventRec{trace, 0, FlightKind::kRetry, 0, 0, attempt, node, 0, ts, 0,
                      TraceLayer::kNone, {}});
}

void FlightRecorder::timeout(std::uint64_t trace, std::uint64_t node, std::uint64_t ts,
                             std::uint16_t attempt) {
  if (!enabled() || trace == 0) return;
  push(FlightEventRec{trace, 0, FlightKind::kTimeout, 0, 0, attempt, node, 0, ts, 0,
                      TraceLayer::kNone, {}});
}

void FlightRecorder::drop(const TraceContext& ctx, std::uint64_t node, std::uint64_t ts,
                          std::string reason) {
  if (!enabled() || !ctx.valid()) return;
  push(FlightEventRec{ctx.trace_id, ctx.root, FlightKind::kDrop, ctx.hop, ctx.seq,
                      ctx.attempt, node, 0, ts, 0, ctx.layer, std::move(reason)});
}

void FlightRecorder::fault(const TraceContext& ctx, std::uint64_t node, std::uint64_t ts,
                           std::string kind) {
  if (!enabled() || !ctx.valid()) return;
  push(FlightEventRec{ctx.trace_id, ctx.root, FlightKind::kFault, ctx.hop, ctx.seq,
                      ctx.attempt, node, 0, ts, 0, ctx.layer, std::move(kind)});
}

void FlightRecorder::ack(std::uint64_t trace, std::uint64_t node, std::uint64_t ts,
                         bool success) {
  if (!enabled() || trace == 0) return;
  push(FlightEventRec{trace, 0, FlightKind::kAck, 0, 0, 0, node, 0, ts, 0,
                      TraceLayer::kNone, success ? "ack" : "nack"});
}

void FlightRecorder::end(std::uint64_t trace, std::uint64_t node, std::uint64_t ts,
                         std::string outcome, std::uint16_t attempts,
                         std::uint64_t rtt_us) {
  if (!enabled() || trace == 0) return;
  push(FlightEventRec{trace, 0, FlightKind::kEnd, 0, 0, attempts, node, 0, ts, rtt_us,
                      TraceLayer::kNone, std::move(outcome)});
}

std::vector<FlightRecord> FlightRecorder::assemble() const {
  return assemble_flight_events(events_);
}

std::vector<FlightRecord> assemble_flight_events(
    const std::vector<FlightEventRec>& events) {
  // Trace ids are minted sequentially, so a sorted map yields records in
  // creation order — deterministic across same-seed runs. Per-trace event
  // order is the caller's: the recorder passes its time-ordered log; the
  // canonical multi-shard path passes a content-sorted merge.
  std::map<std::uint64_t, std::vector<const FlightEventRec*>> by_trace;
  for (const FlightEventRec& ev : events) by_trace[ev.trace].push_back(&ev);

  std::vector<FlightRecord> out;
  out.reserve(by_trace.size());
  for (const auto& [trace_id, evs] : by_trace) {
    FlightRecord rec;
    rec.trace_id = trace_id;

    // Hop segments keyed by (attempt, hop, seq) — duplication-safe: every
    // wire copy got its own seq at emission time.
    std::map<std::tuple<std::uint16_t, std::uint32_t, std::uint32_t>, FlightHop> hops;
    std::map<std::tuple<std::uint16_t, std::uint32_t, std::uint32_t>, std::uint64_t>
        queued_at;
    std::uint16_t max_retry_attempt = 0;
    std::uint64_t last_retry_ts = 0;

    // Traffic sent from inside a delivery handler inherits the ambient
    // context, so causally-downstream sends (backlog drains, piggybacked
    // replies) land in this trace's log after its kEnd. The log is
    // time-ordered: everything past kEnd is downstream effect, not part of
    // the message's own flight — excluded from hops and decomposition.
    bool ended = false;

    for (const FlightEventRec* ev : evs) {
      const auto key = std::make_tuple(ev->attempt, ev->hop, ev->seq);
      if (ended && ev->kind != FlightKind::kEnd) continue;
      switch (ev->kind) {
        case FlightKind::kBegin:
          rec.root = ev->root;
          rec.layer = ev->layer;
          rec.src = ev->node;
          rec.dst = ev->peer;
          rec.begin_ts = ev->ts;
          if (ev->detail.rfind("group=", 0) == 0) rec.group = ev->detail.substr(6);
          break;
        case FlightKind::kWireOut: {
          FlightHop& h = hops[key];
          h.attempt = ev->attempt;
          h.hop = ev->hop;
          h.seq = ev->seq;
          h.from = ev->node;
          h.sent_ts = ev->ts;
          h.queue_us += ev->dur;  // fault-injected extra delay
          if (h.status.empty()) h.status = "in_flight";
          break;
        }
        case FlightKind::kWireIn: {
          FlightHop& h = hops[key];
          h.attempt = ev->attempt;
          h.hop = ev->hop;
          h.seq = ev->seq;
          h.to = ev->node;
          h.recv_ts = ev->ts;
          h.status = "ok";
          break;
        }
        case FlightKind::kQueued:
          queued_at[key] = ev->ts;
          break;
        case FlightKind::kCrypto:
          break;  // summed below once the final attempt is known
        case FlightKind::kRetry:
          if (ev->attempt > max_retry_attempt) {
            max_retry_attempt = ev->attempt;
            last_retry_ts = ev->ts;
          }
          rec.attempts = std::max(rec.attempts, ev->attempt);
          break;
        case FlightKind::kTimeout:
          break;
        case FlightKind::kDrop: {
          FlightHop& h = hops[key];
          h.attempt = ev->attempt;
          h.hop = ev->hop;
          h.seq = ev->seq;
          if (h.from == 0) h.from = ev->node;
          if (h.sent_ts == 0) h.sent_ts = ev->ts;
          h.status = ev->detail;
          break;
        }
        case FlightKind::kFault: {
          rec.faults.push_back(ev->detail);
          // Attach to the matching segment; fall back to (attempt, hop)
          // when the fault fired before a seq was stamped.
          auto it = hops.find(key);
          if (it == hops.end()) {
            for (auto& [k, h] : hops) {
              if (std::get<0>(k) == ev->attempt && std::get<1>(k) == ev->hop) {
                it = hops.find(k);
                break;
              }
            }
          }
          if (it != hops.end() && it->second.fault.empty()) it->second.fault = ev->detail;
          break;
        }
        case FlightKind::kAck:
          break;
        case FlightKind::kEnd:
          rec.end_ts = ev->ts;
          rec.outcome = ev->detail;
          rec.attempts = std::max(rec.attempts, ev->attempt);
          rec.rtt_us = ev->dur;
          ended = true;
          break;
      }
    }

    // Late fault events may precede their segment in map order; attach any
    // still-unmatched fault names to segments missing one.
    for (auto& [key, hop] : hops) {
      const std::uint64_t queued_ts =
          queued_at.contains(key) ? queued_at.at(key) : 0;
      if (queued_ts != 0 && hop.recv_ts >= queued_ts) {
        hop.queue_us += hop.recv_ts - queued_ts;
      }
      if (hop.recv_ts > hop.sent_ts) {
        const std::uint64_t total = hop.recv_ts - hop.sent_ts;
        hop.prop_us = total > hop.queue_us ? total - hop.queue_us : 0;
      }
    }

    const std::uint16_t final_attempt = max_retry_attempt;
    if (rec.attempts == 0 && final_attempt > 0) rec.attempts = final_attempt;
    rec.karn_ambiguous = rec.attempts > 1;

    // Decomposition over the final attempt's causal chain (attempt 0 events
    // come from layers that do not track attempts — count them when the
    // trace never retried).
    ended = false;
    for (const FlightEventRec* ev : evs) {
      if (ev->kind == FlightKind::kEnd) ended = true;
      if (ended) continue;
      const bool in_final = final_attempt == 0 || ev->attempt == final_attempt ||
                            (ev->attempt == 0 && final_attempt <= 1);
      if (ev->kind == FlightKind::kCrypto && in_final) rec.crypto_us += ev->dur;
    }
    std::vector<const FlightHop*> final_ok;
    for (const auto& [key, hop] : hops) {
      const bool in_final = final_attempt == 0 || std::get<0>(key) == final_attempt ||
                            (std::get<0>(key) == 0 && final_attempt <= 1);
      if (in_final && hop.status == "ok") final_ok.push_back(&hop);
      rec.hops.push_back(hop);
    }

    // Propagation/queueing over the *critical path*: the single causal
    // chain src -> ... -> src whose last hop lands on the kEnd timestamp.
    // Handlers emit unrelated traffic under the ambient context (transport
    // echoes, piggybacked replies), so one hop depth can hold parallel
    // branches; summing them all would overshoot the RTT. Depth-first
    // search over (hop index, emitter, time-contiguity) recovers the chain
    // deterministically — hop fan-out is tiny.
    bool chained = false;
    if (rec.outcome == "delivered" && rec.end_ts > 0) {
      std::vector<const FlightHop*> chain;
      std::vector<bool> used(final_ok.size(), false);
      // `seen_dst` forces the chain through the true destination — echo
      // branches can close a src -> src loop without ever reaching it.
      // `exact` requires the closing hop to land on the kEnd timestamp —
      // true under the virtual clock, where delivery and outcome share an
      // instant. On the real backend the outcome is stamped inside the ack
      // handler, microseconds *after* the final wire_in, so a second pass
      // relaxes the close to recv_ts <= end_ts (still through dst, still
      // ending at src). The exact pass always runs first, so sim behavior
      // is unchanged.
      auto dfs = [&](auto&& self, std::uint64_t node, std::uint32_t depth,
                     std::uint64_t t, bool seen_dst, bool exact) -> bool {
        for (std::size_t i = 0; i < final_ok.size(); ++i) {
          const FlightHop* h = final_ok[i];
          if (used[i] || h->hop != depth || h->from != node || h->sent_ts < t) continue;
          used[i] = true;
          chain.push_back(h);
          const bool arrived = seen_dst || h->to == rec.dst;
          const bool closes = exact ? h->recv_ts == rec.end_ts
                                    : h->recv_ts <= rec.end_ts;
          if ((arrived && h->to == rec.src && closes) ||
              self(self, h->to, depth + 1, h->recv_ts, arrived, exact)) {
            return true;
          }
          chain.pop_back();
          used[i] = false;
        }
        return false;
      };
      if (dfs(dfs, rec.src, 0, rec.begin_ts, false, true) ||
          (chain.clear(), used.assign(final_ok.size(), false),
           dfs(dfs, rec.src, 0, rec.begin_ts, false, false))) {
        for (const FlightHop* h : chain) {
          rec.prop_us += h->prop_us;
          rec.queue_us += h->queue_us;
        }
        chained = true;
      }
    }
    if (!chained) {
      for (const FlightHop* h : final_ok) {
        rec.prop_us += h->prop_us;
        rec.queue_us += h->queue_us;
      }
    }
    if (final_attempt > 1 && last_retry_ts > rec.begin_ts) {
      rec.retry_us = last_retry_ts - rec.begin_ts;
    }
    // Critical-path residual: handler/stack time the other components can't
    // see. Zero under the virtual clock (the exact chain already sums to
    // the RTT); on the real backend it closes the decomposition so
    // decomposed_us() == rtt_us exactly for every chained delivery.
    if (chained && rec.rtt_us > 0) {
      const std::uint64_t sum =
          rec.crypto_us + rec.prop_us + rec.queue_us + rec.retry_us;
      if (rec.rtt_us > sum) rec.proc_us = rec.rtt_us - sum;
    }
    std::sort(rec.hops.begin(), rec.hops.end(), [](const FlightHop& a, const FlightHop& b) {
      if (a.attempt != b.attempt) return a.attempt < b.attempt;
      if (a.hop != b.hop) return a.hop < b.hop;
      return a.seq < b.seq;
    });
    out.push_back(std::move(rec));
  }
  return out;
}

// --- JSONL export / parse ------------------------------------------------

namespace {

std::string fmt_u64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

void append_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

std::string to_jsonl(const std::vector<FlightRecord>& records) {
  std::string out;
  for (const FlightRecord& r : records) {
    out += "{\"trace\":" + fmt_u64(r.trace_id);
    out += ",\"root\":" + fmt_u64(r.root);
    out += ",\"layer\":\"";
    out += trace_layer_name(r.layer);
    out += "\",\"src\":" + fmt_u64(r.src);
    out += ",\"dst\":" + fmt_u64(r.dst);
    out += ",\"begin\":" + fmt_u64(r.begin_ts);
    out += ",\"end\":" + fmt_u64(r.end_ts);
    out += ",\"outcome\":\"";
    append_escaped(out, r.outcome);
    out += "\",\"attempts\":" + fmt_u64(r.attempts);
    out += ",\"karn\":";
    out += r.karn_ambiguous ? "true" : "false";
    out += ",\"rtt_us\":" + fmt_u64(r.rtt_us);
    out += ",\"crypto_us\":" + fmt_u64(r.crypto_us);
    out += ",\"prop_us\":" + fmt_u64(r.prop_us);
    out += ",\"queue_us\":" + fmt_u64(r.queue_us);
    out += ",\"retry_us\":" + fmt_u64(r.retry_us);
    out += ",\"proc_us\":" + fmt_u64(r.proc_us);
    out += ",\"group\":\"";
    append_escaped(out, r.group);
    out += "\",\"faults\":[";
    for (std::size_t i = 0; i < r.faults.size(); ++i) {
      if (i) out += ',';
      out += '"';
      append_escaped(out, r.faults[i]);
      out += '"';
    }
    out += "],\"hops\":[";
    for (std::size_t i = 0; i < r.hops.size(); ++i) {
      const FlightHop& h = r.hops[i];
      if (i) out += ',';
      out += "{\"attempt\":" + fmt_u64(h.attempt);
      out += ",\"hop\":" + fmt_u64(h.hop);
      out += ",\"seq\":" + fmt_u64(h.seq);
      out += ",\"from\":" + fmt_u64(h.from);
      out += ",\"to\":" + fmt_u64(h.to);
      out += ",\"sent\":" + fmt_u64(h.sent_ts);
      out += ",\"recv\":" + fmt_u64(h.recv_ts);
      out += ",\"prop_us\":" + fmt_u64(h.prop_us);
      out += ",\"queue_us\":" + fmt_u64(h.queue_us);
      out += ",\"status\":\"";
      append_escaped(out, h.status);
      out += "\",\"fault\":\"";
      append_escaped(out, h.fault);
      out += "\"}";
    }
    out += "]}\n";
  }
  return out;
}

namespace {

/// Minimal JSON value for the flight-record parser. Only what our own
/// exporter emits (objects, arrays, strings, unsigned numbers, booleans).
struct JsonV {
  enum class Type { kNull, kBool, kNum, kStr, kArr, kObj };
  Type type = Type::kNull;
  bool b = false;
  double num = 0;
  std::string str;
  std::vector<JsonV> arr;
  std::vector<std::pair<std::string, JsonV>> obj;

  const JsonV* get(std::string_view key) const {
    for (const auto& [k, v] : obj) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  std::uint64_t u64(std::string_view key) const {
    const JsonV* v = get(key);
    return v != nullptr && v->type == Type::kNum ? static_cast<std::uint64_t>(v->num) : 0;
  }
  std::string str_of(std::string_view key) const {
    const JsonV* v = get(key);
    return v != nullptr && v->type == Type::kStr ? v->str : std::string{};
  }
  bool bool_of(std::string_view key) const {
    const JsonV* v = get(key);
    return v != nullptr && v->type == Type::kBool && v->b;
  }
};

class JsonParser {
 public:
  JsonParser(std::string_view text, std::string* err) : s_(text), err_(err) {}

  bool parse(JsonV* out) { return value(out) && (skip_ws(), true); }
  std::size_t pos() const { return pos_; }

 private:
  bool fail(const char* what) {
    if (err_ != nullptr && err_->empty()) {
      *err_ = std::string(what) + " at offset " + std::to_string(pos_);
    }
    return false;
  }
  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
                                s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool consume(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool string(std::string* out) {
    skip_ws();
    if (pos_ >= s_.size() || s_[pos_] != '"') return fail("expected string");
    ++pos_;
    out->clear();
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\' && pos_ < s_.size()) {
        const char e = s_[pos_++];
        switch (e) {
          case 'n': c = '\n'; break;
          case 'r': c = '\r'; break;
          case 't': c = '\t'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) return fail("bad \\u escape");
            unsigned v = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = s_[pos_++];
              v <<= 4;
              if (h >= '0' && h <= '9') v |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') v |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') v |= static_cast<unsigned>(h - 'A' + 10);
              else return fail("bad \\u escape");
            }
            c = static_cast<char>(v & 0xff);
            break;
          }
          default: c = e;
        }
      }
      *out += c;
    }
    if (pos_ >= s_.size()) return fail("unterminated string");
    ++pos_;  // closing quote
    return true;
  }
  bool value(JsonV* out) {
    skip_ws();
    if (pos_ >= s_.size()) return fail("unexpected end");
    const char c = s_[pos_];
    if (c == '{') {
      ++pos_;
      out->type = JsonV::Type::kObj;
      skip_ws();
      if (consume('}')) return true;
      while (true) {
        std::string key;
        if (!string(&key)) return false;
        if (!consume(':')) return fail("expected ':'");
        JsonV v;
        if (!value(&v)) return false;
        out->obj.emplace_back(std::move(key), std::move(v));
        if (consume(',')) continue;
        if (consume('}')) return true;
        return fail("expected ',' or '}'");
      }
    }
    if (c == '[') {
      ++pos_;
      out->type = JsonV::Type::kArr;
      skip_ws();
      if (consume(']')) return true;
      while (true) {
        JsonV v;
        if (!value(&v)) return false;
        out->arr.push_back(std::move(v));
        if (consume(',')) continue;
        if (consume(']')) return true;
        return fail("expected ',' or ']'");
      }
    }
    if (c == '"') {
      out->type = JsonV::Type::kStr;
      return string(&out->str);
    }
    if (c == 't' && s_.substr(pos_, 4) == "true") {
      out->type = JsonV::Type::kBool;
      out->b = true;
      pos_ += 4;
      return true;
    }
    if (c == 'f' && s_.substr(pos_, 5) == "false") {
      out->type = JsonV::Type::kBool;
      pos_ += 5;
      return true;
    }
    if (c == 'n' && s_.substr(pos_, 4) == "null") {
      pos_ += 4;
      return true;
    }
    // Number.
    std::size_t end = pos_;
    while (end < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[end])) || s_[end] == '-' ||
            s_[end] == '+' || s_[end] == '.' || s_[end] == 'e' || s_[end] == 'E')) {
      ++end;
    }
    if (end == pos_) return fail("unexpected character");
    out->type = JsonV::Type::kNum;
    out->num = std::strtod(std::string(s_.substr(pos_, end - pos_)).c_str(), nullptr);
    pos_ = end;
    return true;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
  std::string* err_;
};

}  // namespace

bool parse_flight_jsonl(std::string_view jsonl, std::vector<FlightRecord>* out,
                        std::string* err) {
  out->clear();
  std::size_t pos = 0;
  std::size_t line_no = 0;
  while (pos < jsonl.size()) {
    std::size_t nl = jsonl.find('\n', pos);
    if (nl == std::string_view::npos) nl = jsonl.size();
    const std::string_view line = jsonl.substr(pos, nl - pos);
    pos = nl + 1;
    ++line_no;
    if (line.empty()) continue;
    JsonV v;
    std::string perr;
    JsonParser parser(line, &perr);
    if (!parser.parse(&v) || v.type != JsonV::Type::kObj) {
      if (err != nullptr) {
        *err = "line " + std::to_string(line_no) + ": " +
               (perr.empty() ? "not a JSON object" : perr);
      }
      return false;
    }
    FlightRecord r;
    r.trace_id = v.u64("trace");
    r.root = v.u64("root");
    r.layer = trace_layer_from_name(v.str_of("layer"));
    r.src = v.u64("src");
    r.dst = v.u64("dst");
    r.begin_ts = v.u64("begin");
    r.end_ts = v.u64("end");
    r.outcome = v.str_of("outcome");
    r.attempts = static_cast<std::uint16_t>(v.u64("attempts"));
    r.karn_ambiguous = v.bool_of("karn");
    r.rtt_us = v.u64("rtt_us");
    r.crypto_us = v.u64("crypto_us");
    r.prop_us = v.u64("prop_us");
    r.queue_us = v.u64("queue_us");
    r.retry_us = v.u64("retry_us");
    r.proc_us = v.u64("proc_us");
    r.group = v.str_of("group");
    if (const JsonV* faults = v.get("faults"); faults != nullptr) {
      for (const JsonV& f : faults->arr) {
        if (f.type == JsonV::Type::kStr) r.faults.push_back(f.str);
      }
    }
    if (const JsonV* hops = v.get("hops"); hops != nullptr) {
      for (const JsonV& hv : hops->arr) {
        if (hv.type != JsonV::Type::kObj) continue;
        FlightHop h;
        h.attempt = static_cast<std::uint16_t>(hv.u64("attempt"));
        h.hop = static_cast<std::uint32_t>(hv.u64("hop"));
        h.seq = static_cast<std::uint32_t>(hv.u64("seq"));
        h.from = hv.u64("from");
        h.to = hv.u64("to");
        h.sent_ts = hv.u64("sent");
        h.recv_ts = hv.u64("recv");
        h.prop_us = hv.u64("prop_us");
        h.queue_us = hv.u64("queue_us");
        h.status = hv.str_of("status");
        h.fault = hv.str_of("fault");
        r.hops.push_back(std::move(h));
      }
    }
    out->push_back(std::move(r));
  }
  return true;
}

std::uint64_t flight_digest(std::string_view text) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a 64
  for (char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

namespace {

// Orders records by content alone — every field that is a property of the
// traffic, none that is a recorder-allocation artifact (trace_id, root,
// hop seqs). Ties mean byte-identical canonical output either way.
bool content_less(const FlightRecord& a, const FlightRecord& b) {
  auto head = [](const FlightRecord& r) {
    return std::tie(r.begin_ts, r.layer, r.src, r.dst, r.end_ts, r.outcome,
                    r.attempts, r.rtt_us, r.crypto_us, r.prop_us, r.queue_us,
                    r.retry_us, r.proc_us, r.group);
  };
  if (head(a) != head(b)) return head(a) < head(b);
  if (a.faults != b.faults) return a.faults < b.faults;
  if (a.hops.size() != b.hops.size()) return a.hops.size() < b.hops.size();
  for (std::size_t i = 0; i < a.hops.size(); ++i) {
    const FlightHop& x = a.hops[i];
    const FlightHop& y = b.hops[i];
    auto hk = [](const FlightHop& h) {
      return std::tie(h.sent_ts, h.recv_ts, h.attempt, h.hop, h.from, h.to,
                      h.prop_us, h.queue_us, h.status, h.fault);
    };
    if (hk(x) != hk(y)) return hk(x) < hk(y);
  }
  return false;
}

}  // namespace

std::vector<FlightRecord> canonical_flight_records(
    const std::vector<const FlightRecorder*>& recorders) {
  // A cross-shard message's events are split across recorders: the source
  // shard logs kBegin/kWireOut, the destination shard logs kWireIn — under
  // the same trace id, which set_id_base() keeps globally unique. Merge the
  // logs into one stream and canonicalize.
  std::vector<FlightEventRec> merged;
  for (const FlightRecorder* rec : recorders) {
    if (rec == nullptr) continue;
    merged.insert(merged.end(), rec->events().begin(), rec->events().end());
  }
  return canonical_flight_records(std::move(merged));
}

std::vector<FlightRecord> canonical_flight_records(
    std::vector<FlightEventRec> merged) {
  // Impose a *content* order on the merged stream (pure function of the
  // event fields, so independent of execution interleaving — or of which
  // process/shard logged which half of a message), then run the standard
  // assembly over it.
  std::sort(merged.begin(), merged.end(),
            [](const FlightEventRec& a, const FlightEventRec& b) {
              auto key = [](const FlightEventRec& e) {
                return std::tie(e.trace, e.ts, e.kind, e.node, e.attempt, e.hop,
                                e.seq, e.peer, e.dur, e.layer, e.root, e.detail);
              };
              return key(a) < key(b);
            });

  return canonicalize_flight_records(assemble_flight_events(merged));
}

std::vector<FlightRecord> canonicalize_flight_records(
    std::vector<FlightRecord> all) {
  // Hop lists come back sorted by (attempt, hop, seq), but seqs are
  // per-recorder allocation artifacts; re-sort parallel branches at the
  // same depth by wire content before renumbering.
  for (FlightRecord& r : all) {
    std::sort(r.hops.begin(), r.hops.end(), [](const FlightHop& a, const FlightHop& b) {
      auto hk = [](const FlightHop& h) {
        return std::tie(h.attempt, h.hop, h.sent_ts, h.recv_ts, h.from, h.to,
                        h.prop_us, h.queue_us, h.status, h.fault, h.seq);
      };
      return hk(a) < hk(b);
    });
  }

  std::vector<std::size_t> order(all.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return content_less(all[a], all[b]);
  });

  std::map<std::uint64_t, std::uint64_t> renumber;
  for (std::size_t i = 0; i < order.size(); ++i) {
    renumber[all[order[i]].trace_id] = i + 1;
  }

  std::vector<FlightRecord> out;
  out.reserve(all.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    FlightRecord r = std::move(all[order[i]]);
    r.trace_id = i + 1;
    if (r.root != 0) {
      // A root reference outside the log (capacity-dropped parent) has no
      // canonical number; exporting the stale recorder-local id would break
      // shard-count invariance, so it collapses to 0.
      auto it = renumber.find(r.root);
      r.root = it == renumber.end() ? 0 : it->second;
    }
    for (std::size_t j = 0; j < r.hops.size(); ++j) {
      r.hops[j].seq = static_cast<std::uint32_t>(j + 1);
    }
    out.push_back(std::move(r));
  }
  return out;
}

// --- Raw-event JSONL (cross-process interchange) --------------------------

std::string to_events_jsonl(const std::vector<FlightEventRec>& events) {
  std::string out;
  for (const FlightEventRec& e : events) {
    out += "{\"trace\":" + fmt_u64(e.trace);
    out += ",\"root\":" + fmt_u64(e.root);
    out += ",\"kind\":\"";
    out += flight_kind_name(e.kind);
    out += "\",\"hop\":" + fmt_u64(e.hop);
    out += ",\"seq\":" + fmt_u64(e.seq);
    out += ",\"attempt\":" + fmt_u64(e.attempt);
    out += ",\"node\":" + fmt_u64(e.node);
    out += ",\"peer\":" + fmt_u64(e.peer);
    out += ",\"ts\":" + fmt_u64(e.ts);
    out += ",\"dur\":" + fmt_u64(e.dur);
    out += ",\"layer\":\"";
    out += trace_layer_name(e.layer);
    out += "\",\"detail\":\"";
    append_escaped(out, e.detail);
    out += "\"}\n";
  }
  return out;
}

bool parse_flight_events_jsonl(std::string_view jsonl,
                               std::vector<FlightEventRec>* out, std::string* err) {
  out->clear();
  std::size_t pos = 0;
  std::size_t line_no = 0;
  while (pos < jsonl.size()) {
    std::size_t nl = jsonl.find('\n', pos);
    if (nl == std::string_view::npos) nl = jsonl.size();
    const std::string_view line = jsonl.substr(pos, nl - pos);
    pos = nl + 1;
    ++line_no;
    if (line.empty()) continue;
    JsonV v;
    std::string perr;
    JsonParser parser(line, &perr);
    if (!parser.parse(&v) || v.type != JsonV::Type::kObj) {
      if (err != nullptr) {
        *err = "line " + std::to_string(line_no) + ": " +
               (perr.empty() ? "not a JSON object" : perr);
      }
      return false;
    }
    if (v.get("kind") == nullptr) {
      if (err != nullptr) {
        *err = "line " + std::to_string(line_no) + ": not a flight event (no kind)";
      }
      return false;
    }
    FlightEventRec e;
    e.trace = v.u64("trace");
    e.root = v.u64("root");
    e.kind = flight_kind_from_name(v.str_of("kind"));
    e.hop = static_cast<std::uint32_t>(v.u64("hop"));
    e.seq = static_cast<std::uint32_t>(v.u64("seq"));
    e.attempt = static_cast<std::uint16_t>(v.u64("attempt"));
    e.node = v.u64("node");
    e.peer = v.u64("peer");
    e.ts = v.u64("ts");
    e.dur = v.u64("dur");
    e.layer = trace_layer_from_name(v.str_of("layer"));
    e.detail = v.str_of("detail");
    out->push_back(std::move(e));
  }
  return true;
}

}  // namespace whisper::telemetry

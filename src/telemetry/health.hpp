// Live per-node health/stats records for the real-network backend
// (DESIGN.md §15).
//
// Each whisper_noded periodically folds its telemetry registry plus a fixed
// health summary (incarnation, membership, WCL backlog, PSS view, guard
// counters, rss/cpu) into a versioned, CRC-framed binary record. The record
// is published two ways: as an atomic file in the rendezvous directory
// (scraped by whisper_localnet / whisper_top, and probed by the chaos
// supervisor in place of the old "pid inc seq" heartbeat text file) and as
// the reply on a local admin UDP socket.
//
// Wire format (little-endian, matching common/serialize.hpp):
//   [0x57 'W'][0x48 'H'][u8 version][u8 flags][u32 payload_len]
//   [u32 crc32(payload)][payload]
// flags bit0 = keyframe (payload carries the FULL registry value set;
// otherwise only values changed since the previous record). Decoding is
// bounds-checked through Reader/DecodeError with hard caps on payload size,
// metric count and name length, and rejects trailing garbage — hostile or
// torn bytes can never drive an oversized allocation or a partial apply.
//
// Delta scheme: records carry a per-process monotonic `seq`. An aggregator
// (HealthAccumulator) applies deltas only while the sequence is unbroken;
// after a gap (dropped scrape, restarted node) it keeps serving the header
// fields — the liveness probe must work from any record — but holds the
// metric view stale until the next keyframe resyncs it. Exporters emit a
// keyframe first and every `keyframe_every` records thereafter.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/bytes.hpp"
#include "common/serialize.hpp"
#include "telemetry/registry.hpp"

namespace whisper::telemetry {

inline constexpr std::uint8_t kHealthMagic0 = 0x57;  // 'W'
inline constexpr std::uint8_t kHealthMagic1 = 0x48;  // 'H'
inline constexpr std::uint8_t kHealthVersion = 1;
inline constexpr std::uint8_t kHealthFlagKeyframe = 0x01;
/// Hard cap on a record payload; larger on-disk/wire values are corruption
/// (kOversized), never an allocation request.
inline constexpr std::size_t kMaxHealthPayloadBytes = 256 * 1024;
inline constexpr std::size_t kMaxHealthMetrics = 4096;
inline constexpr std::size_t kMaxHealthNameBytes = 256;

/// One exported snapshot. The fixed header fields are what the chaos
/// supervisor's hung-vs-dead probe reads (pid / incarnation / seq); the
/// metrics vector carries registry values keyed by canonical metric key
/// (histograms flattened to "<key>#count|sum|min|max|p50|p95|p99").
struct HealthSnapshot {
  std::uint64_t node = 0;
  std::uint32_t pid = 0;
  std::uint32_t incarnation = 0;
  std::uint64_t seq = 0;        ///< per-process export sequence, monotonic
  std::uint64_t now_us = 0;     ///< monotonic clock at snapshot time
  std::uint64_t uptime_us = 0;  ///< now - process attach
  std::uint32_t groups = 0;
  std::uint32_t wcl_backlog = 0;
  std::uint32_t pending_forwards = 0;
  std::uint32_t pss_view = 0;
  std::uint32_t pss_reserve = 0;
  std::uint32_t quarantined = 0;
  std::uint32_t peer_restarts = 0;
  std::uint32_t decode_rejects = 0;
  std::uint32_t rate_limited = 0;
  std::uint64_t rss_kb = 0;
  std::uint64_t cpu_us = 0;  ///< CpuMeter::total(), wall µs in handlers
  bool keyframe = true;
  std::vector<std::pair<std::string, double>> metrics;
};

/// Encode one CRC-framed record.
Bytes encode_health_record(const HealthSnapshot& snap);

/// Bounds-checked decode. nullopt on any malformed input; `error` (when
/// non-null) receives the DecodeError that rejected it. The whole input
/// must be exactly one record (trailing bytes are kTrailingBytes).
std::optional<HealthSnapshot> decode_health_record(BytesView data,
                                                   DecodeError* error = nullptr);

/// Flatten a registry into (canonical key, value) pairs: counters and
/// gauges one value each, histograms as derived "<key>#stat" values.
std::vector<std::pair<std::string, double>> registry_values(const Registry& reg);

/// Stateful producer: tracks the previously exported value set so each
/// record carries only changed values, with a keyframe first and every
/// `keyframe_every` records. Fills snap.seq / snap.keyframe / snap.metrics;
/// all other fields are the caller's.
class HealthExporter {
 public:
  explicit HealthExporter(const Registry* reg = nullptr,
                          std::uint32_t keyframe_every = 10)
      : reg_(reg), keyframe_every_(keyframe_every ? keyframe_every : 1) {}

  Bytes next(HealthSnapshot snap);
  std::uint64_t seq() const { return seq_; }

 private:
  const Registry* reg_;
  std::uint32_t keyframe_every_;
  std::uint64_t seq_ = 0;
  std::map<std::string, double> last_;
};

/// Aggregator side: folds a stream of keyframe/delta records from one node
/// into the current metric view, resyncing on keyframes after a sequence
/// gap. apply() is atomic: a record that fails to decode changes nothing.
class HealthAccumulator {
 public:
  bool apply(BytesView record, DecodeError* error = nullptr);
  void apply(const HealthSnapshot& snap);

  bool valid() const { return valid_; }
  /// True while the metric view reflects an unbroken delta chain.
  bool synced() const { return synced_; }
  const HealthSnapshot& last() const { return last_; }
  const std::map<std::string, double>& metrics() const { return metrics_; }

 private:
  HealthSnapshot last_{};
  std::map<std::string, double> metrics_;
  bool valid_ = false;
  bool synced_ = false;
};

/// One JSONL object for fleet timelines: the fixed header fields plus every
/// metric in `metrics` (deterministic: map order, fixed number format).
/// `label` names the node ("3", or "fleet" for the summed line).
std::string health_to_json(const HealthSnapshot& snap,
                           const std::map<std::string, double>& metrics,
                           std::string_view label);

// ---------------------------------------------------------------------------
// Admin socket protocol: fixed 4-byte request, health-record reply.
//   [0x57 'W'][0x41 'A'][u8 version][u8 op]
// ---------------------------------------------------------------------------

inline constexpr std::uint8_t kAdminMagic0 = 0x57;  // 'W'
inline constexpr std::uint8_t kAdminMagic1 = 0x41;  // 'A'
inline constexpr std::uint8_t kAdminVersion = 1;

enum class AdminOp : std::uint8_t {
  kStats = 1,      ///< reply: one keyframe health record
  kNatReboot = 2,  ///< wipe the node's emulated NAT mapping table (chaos
                   ///< supervisor event); reply: one keyframe health record
                   ///< so the supervisor gets delivery confirmation
};

Bytes encode_admin_request(AdminOp op);

/// nullopt on malformed request (bad magic/version/op, wrong size).
std::optional<AdminOp> decode_admin_request(BytesView data,
                                            DecodeError* error = nullptr);

}  // namespace whisper::telemetry

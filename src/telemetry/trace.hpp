// Virtual-time trace events in the Chrome trace-event model (loadable in
// Perfetto / chrome://tracing). The tracer's clock is the *simulator's*
// clock — injected as a callback so telemetry stays independent of the sim
// layer — which makes traces deterministic and directly comparable to the
// paper's virtual-time figures. Timestamps are microseconds, matching both
// sim::Time and the trace-event "ts" unit.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace whisper::telemetry {

struct TraceEvent {
  std::string name;
  std::string category;
  char phase = 'X';          // 'X' complete, 'i' instant, 's'/'f' flow
  std::uint64_t ts = 0;      // virtual microseconds
  std::uint64_t dur = 0;     // 'X' only
  std::uint64_t tid = 0;     // node id: one timeline row per node
  std::uint64_t flow = 0;    // flow id ('s'/'f' only): links spans across tids
  /// Free-form key/value annotations, rendered into "args".
  std::vector<std::pair<std::string, std::string>> args;
};

class Tracer {
 public:
  /// Disabled until a clock is installed *and* set_enabled(true) is called,
  /// so an idle tracer costs one branch per would-be event.
  void set_clock(std::function<std::uint64_t()> now) { now_ = std::move(now); }
  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_ && static_cast<bool>(now_); }

  std::uint64_t now() const { return now_ ? now_() : 0; }

  /// Bound on retained events; further events are dropped (and counted).
  void set_capacity(std::size_t cap) { capacity_ = cap; }

  void complete(std::string name, std::string category, std::uint64_t tid, std::uint64_t ts,
                std::uint64_t dur,
                std::vector<std::pair<std::string, std::string>> args = {});
  void instant(std::string name, std::string category, std::uint64_t tid, std::uint64_t ts,
               std::vector<std::pair<std::string, std::string>> args = {});

  /// Flow events ('s' start / 'f' finish) draw an arrow between the enclosing
  /// slices on two timeline rows in Perfetto — one pair per wire traversal
  /// links send -> relay -> deliver across nodes. `flow_id` must match on
  /// both ends and be unique per arrow.
  void flow_begin(std::string name, std::string category, std::uint64_t tid,
                  std::uint64_t ts, std::uint64_t flow_id);
  void flow_end(std::string name, std::string category, std::uint64_t tid,
                std::uint64_t ts, std::uint64_t flow_id);

  const std::vector<TraceEvent>& events() const { return events_; }
  std::uint64_t dropped() const { return dropped_; }
  void clear() {
    events_.clear();
    dropped_ = 0;
  }

 private:
  void push(TraceEvent ev);

  std::function<std::uint64_t()> now_;
  bool enabled_ = false;
  std::size_t capacity_ = 1u << 20;
  std::vector<TraceEvent> events_;
  std::uint64_t dropped_ = 0;
};

/// RAII span: records the virtual time at construction and emits a complete
/// event covering the scope at destruction. For work whose cost is charged
/// to the virtual clock asynchronously (e.g. onion crypto), use
/// Tracer::complete directly with the charged duration instead.
class Span {
 public:
  Span() = default;
  Span(Tracer* tracer, std::string name, std::string category, std::uint64_t tid)
      : tracer_(tracer != nullptr && tracer->enabled() ? tracer : nullptr),
        name_(std::move(name)), category_(std::move(category)), tid_(tid),
        start_(tracer_ ? tracer_->now() : 0) {}

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span(Span&& other) noexcept { *this = std::move(other); }
  Span& operator=(Span&& other) noexcept {
    finish();
    tracer_ = other.tracer_;
    name_ = std::move(other.name_);
    category_ = std::move(other.category_);
    tid_ = other.tid_;
    start_ = other.start_;
    other.tracer_ = nullptr;
    return *this;
  }

  ~Span() { finish(); }

  void annotate(std::string key, std::string value) {
    if (tracer_) args_.emplace_back(std::move(key), std::move(value));
  }

 private:
  void finish() {
    if (tracer_ == nullptr) return;
    tracer_->complete(std::move(name_), std::move(category_), tid_, start_,
                      tracer_->now() - start_, std::move(args_));
    tracer_ = nullptr;
  }

  Tracer* tracer_ = nullptr;
  std::string name_;
  std::string category_;
  std::uint64_t tid_ = 0;
  std::uint64_t start_ = 0;
  std::vector<std::pair<std::string, std::string>> args_;
};

}  // namespace whisper::telemetry

// telemetry::Scope — the handle protocol layers hold. Bundles the registry
// and tracer with the owning node's id (the trace timeline row) and falls
// back to shared no-op sinks when telemetry is not wired, so a layer
// constructed stand-alone in a unit test instruments itself unconditionally
// at zero setup cost.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "telemetry/registry.hpp"
#include "telemetry/trace.hpp"

namespace whisper::telemetry {

/// What a testbed (or tool) hands to each node at construction.
struct Sinks {
  Registry* registry = nullptr;
  Tracer* tracer = nullptr;
};

class Scope {
 public:
  Scope() = default;
  Scope(Sinks sinks, std::uint64_t tid)
      : registry_(sinks.registry), tracer_(sinks.tracer), tid_(tid) {}

  bool enabled() const { return registry_ != nullptr; }
  Registry* registry() const { return registry_; }
  Tracer* tracer() const { return tracer_; }
  std::uint64_t tid() const { return tid_; }
  /// Node label for per-node metric instances ("n<id>").
  std::string node_label() const { return "n" + std::to_string(tid_); }

  Counter& counter(std::string_view name, const Labels& labels = {}) const {
    return registry_ ? registry_->counter(name, labels) : noop_counter();
  }
  Gauge& gauge(std::string_view name, const Labels& labels = {}) const {
    return registry_ ? registry_->gauge(name, labels) : noop_gauge();
  }
  Histogram& histogram(std::string_view name, const BucketSpec& spec,
                       const Labels& labels = {}) const {
    return registry_ ? registry_->histogram(name, spec, labels) : noop_histogram();
  }

  bool tracing() const { return tracer_ != nullptr && tracer_->enabled(); }

  /// Emit a complete event on this node's timeline. `ts` is the event's
  /// virtual start time; `dur` its virtual duration (often the processing
  /// cost charged to the clock, or a measured round-trip).
  void complete(std::string name, std::string category, std::uint64_t ts, std::uint64_t dur,
                std::vector<std::pair<std::string, std::string>> args = {}) const {
    if (tracing()) {
      tracer_->complete(std::move(name), std::move(category), tid_, ts, dur, std::move(args));
    }
  }
  void instant(std::string name, std::string category, std::uint64_t ts,
               std::vector<std::pair<std::string, std::string>> args = {}) const {
    if (tracing()) {
      tracer_->instant(std::move(name), std::move(category), tid_, ts, std::move(args));
    }
  }

  /// RAII span on this node's timeline (no-op when tracing is off).
  Span span(std::string name, std::string category) const {
    return Span(tracer_, std::move(name), std::move(category), tid_);
  }

 private:
  Registry* registry_ = nullptr;
  Tracer* tracer_ = nullptr;
  std::uint64_t tid_ = 0;
};

}  // namespace whisper::telemetry

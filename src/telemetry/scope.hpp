// telemetry::Scope — the handle protocol layers hold. Bundles the registry
// and tracer with the owning node's id (the trace timeline row) and falls
// back to shared no-op sinks when telemetry is not wired, so a layer
// constructed stand-alone in a unit test instruments itself unconditionally
// at zero setup cost.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "telemetry/flight.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/trace.hpp"

namespace whisper::telemetry {

/// What a testbed (or tool) hands to each node at construction.
struct Sinks {
  Registry* registry = nullptr;
  Tracer* tracer = nullptr;
  FlightRecorder* flight = nullptr;
};

class Scope {
 public:
  Scope() = default;
  Scope(Sinks sinks, std::uint64_t tid)
      : registry_(sinks.registry), tracer_(sinks.tracer), flight_(sinks.flight),
        tid_(tid) {}

  bool enabled() const { return registry_ != nullptr; }
  Registry* registry() const { return registry_; }
  Tracer* tracer() const { return tracer_; }
  FlightRecorder* flight() const { return flight_; }
  std::uint64_t tid() const { return tid_; }
  /// Node label for per-node metric instances ("n<id>").
  std::string node_label() const { return "n" + std::to_string(tid_); }

  Counter& counter(std::string_view name, const Labels& labels = {}) const {
    return registry_ ? registry_->counter(name, labels) : noop_counter();
  }
  Gauge& gauge(std::string_view name, const Labels& labels = {}) const {
    return registry_ ? registry_->gauge(name, labels) : noop_gauge();
  }
  Histogram& histogram(std::string_view name, const BucketSpec& spec,
                       const Labels& labels = {}) const {
    return registry_ ? registry_->histogram(name, spec, labels) : noop_histogram();
  }

  bool tracing() const { return tracer_ != nullptr && tracer_->enabled(); }

  // --- Causal flight recording (no-ops until the testbed enables it). ---
  bool flight_enabled() const { return flight_ != nullptr && flight_->enabled(); }
  /// The ambient context armed by the network around the current handler
  /// (invalid outside a traced delivery).
  TraceContext flight_context() const {
    return flight_ != nullptr ? flight_->context() : TraceContext{};
  }

  /// Emit a complete event on this node's timeline. `ts` is the event's
  /// virtual start time; `dur` its virtual duration (often the processing
  /// cost charged to the clock, or a measured round-trip).
  void complete(std::string name, std::string category, std::uint64_t ts, std::uint64_t dur,
                std::vector<std::pair<std::string, std::string>> args = {}) const {
    if (tracing()) {
      annotate_trace(args);
      tracer_->complete(std::move(name), std::move(category), tid_, ts, dur, std::move(args));
    }
  }
  void instant(std::string name, std::string category, std::uint64_t ts,
               std::vector<std::pair<std::string, std::string>> args = {}) const {
    if (tracing()) {
      annotate_trace(args);
      tracer_->instant(std::move(name), std::move(category), tid_, ts, std::move(args));
    }
  }

  /// Attribute a rejected inbound frame (decode error, rate limit, replay)
  /// to the ambient flight context so whisper_trace can explain the drop,
  /// and bump the caller's per-layer counter. `reason` becomes the drop
  /// detail in the flight record ("decode:truncated", "ratelimit", ...).
  void drop_frame(Counter& counter, std::uint64_t ts, std::string reason) const {
    counter.add(1);
    if (flight_enabled() && flight_->context().valid()) {
      flight_->drop(flight_->context(), tid_, ts, std::move(reason));
    }
  }

  /// RAII span on this node's timeline (no-op when tracing is off). When an
  /// ambient flight context is armed, the span carries the trace id so
  /// Perfetto queries can join spans to flight records (parent linkage).
  Span span(std::string name, std::string category) const {
    Span s(tracer_, std::move(name), std::move(category), tid_);
    if (flight_ != nullptr && flight_->context().valid()) {
      s.annotate("trace", std::to_string(flight_->context().trace_id));
    }
    return s;
  }

 private:
  void annotate_trace(std::vector<std::pair<std::string, std::string>>& args) const {
    if (flight_ != nullptr && flight_->context().valid()) {
      args.emplace_back("trace", std::to_string(flight_->context().trace_id));
    }
  }

  Registry* registry_ = nullptr;
  Tracer* tracer_ = nullptr;
  FlightRecorder* flight_ = nullptr;
  std::uint64_t tid_ = 0;
};

}  // namespace whisper::telemetry

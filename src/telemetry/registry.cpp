#include "telemetry/registry.hpp"

#include <algorithm>

namespace whisper::telemetry {

std::string metric_key(std::string_view name, const Labels& labels) {
  std::string key{name};
  if (labels.empty()) return key;
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  key += '{';
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i) key += ',';
    key += sorted[i].first;
    key += '=';
    key += sorted[i].second;
  }
  key += '}';
  return key;
}

namespace {

Labels sorted_labels(const Labels& labels) {
  Labels out = labels;
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

Counter& Registry::counter(std::string_view name, const Labels& labels) {
  auto [it, inserted] = entries_.try_emplace(
      metric_key(name, labels), Entry{std::string{name}, sorted_labels(labels), Counter{}});
  if (auto* c = std::get_if<Counter>(&it->second.metric)) return *c;
  ++mismatches_;
  return noop_counter();
}

Gauge& Registry::gauge(std::string_view name, const Labels& labels) {
  auto [it, inserted] = entries_.try_emplace(
      metric_key(name, labels), Entry{std::string{name}, sorted_labels(labels), Gauge{}});
  if (auto* g = std::get_if<Gauge>(&it->second.metric)) return *g;
  ++mismatches_;
  return noop_gauge();
}

Histogram& Registry::histogram(std::string_view name, const BucketSpec& spec,
                               const Labels& labels) {
  auto [it, inserted] =
      entries_.try_emplace(metric_key(name, labels),
                           Entry{std::string{name}, sorted_labels(labels), Histogram{spec}});
  if (auto* h = std::get_if<Histogram>(&it->second.metric)) return *h;
  ++mismatches_;
  return noop_histogram();
}

const Registry::Entry* Registry::find(std::string_view name, const Labels& labels) const {
  auto it = entries_.find(metric_key(name, labels));
  return it == entries_.end() ? nullptr : &it->second;
}

std::uint64_t Registry::counter_value(std::string_view name, const Labels& labels) const {
  const Entry* e = find(name, labels);
  if (e == nullptr) return 0;
  const auto* c = std::get_if<Counter>(&e->metric);
  return c ? c->value() : 0;
}

std::optional<double> Registry::gauge_value(std::string_view name, const Labels& labels) const {
  const Entry* e = find(name, labels);
  if (e == nullptr) return std::nullopt;
  const auto* g = std::get_if<Gauge>(&e->metric);
  return g ? std::optional<double>{g->value()} : std::nullopt;
}

const Histogram* Registry::find_histogram(std::string_view name, const Labels& labels) const {
  const Entry* e = find(name, labels);
  return e == nullptr ? nullptr : std::get_if<Histogram>(&e->metric);
}

std::uint64_t Registry::counter_sum(std::string_view name) const {
  std::uint64_t total = 0;
  // Keys sharing a name are contiguous: "name" < "name{...}" < next name,
  // because '{' sorts above most identifier characters — but a *longer*
  // plain name ("net.bytes.total") can interleave, so match exactly.
  for (auto it = entries_.lower_bound(std::string{name}); it != entries_.end(); ++it) {
    if (it->second.name != name) {
      if (it->second.name.compare(0, name.size(), name) > 0) break;
      continue;
    }
    if (const auto* c = std::get_if<Counter>(&it->second.metric)) total += c->value();
  }
  return total;
}

void merge_registry_into(Registry& dst, const Registry& src) {
  for (const auto& [key, entry] : src.entries()) {
    if (const auto* c = std::get_if<Counter>(&entry.metric)) {
      dst.counter(entry.name, entry.labels).add(c->value());
    } else if (const auto* g = std::get_if<Gauge>(&entry.metric)) {
      dst.gauge(entry.name, entry.labels).add(g->value());
    } else if (const auto* h = std::get_if<Histogram>(&entry.metric)) {
      dst.histogram(entry.name, h->spec(), entry.labels).merge(*h);
    }
  }
}

void Registry::reset(std::string_view prefix) {
  for (auto& [key, entry] : entries_) {
    if (!prefix.empty() && key.compare(0, prefix.size(), prefix) != 0) continue;
    std::visit([](auto& m) { m.reset(); }, entry.metric);
  }
}

}  // namespace whisper::telemetry

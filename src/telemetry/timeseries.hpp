// TimeSeriesRecorder: periodic snapshots of the registry on the virtual
// clock — one row per sample instant, one column per metric. This is what
// turns cumulative counters into the paper's per-cycle series (bandwidth
// per cycle, exchanges per minute) without per-bench bookkeeping.
//
// The recorder is clock-agnostic: callers invoke sample(now). The testbed
// schedules it on the simulator (TestbedConfig::telemetry_sample_every).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/registry.hpp"

namespace whisper::telemetry {

struct SamplePoint {
  std::uint64_t ts = 0;  // virtual microseconds
  /// (canonical metric key, value) pairs in registry (i.e. sorted) order.
  /// Counters/gauges record their value; histograms their count.
  std::vector<std::pair<std::string, double>> values;
};

class TimeSeriesRecorder {
 public:
  explicit TimeSeriesRecorder(const Registry& registry) : registry_(&registry) {}

  /// Restrict sampling to metrics whose canonical key starts with one of
  /// these prefixes (empty = record everything). Keeps rows small when only
  /// a few series matter for a figure.
  void set_prefix_filter(std::vector<std::string> prefixes) {
    prefixes_ = std::move(prefixes);
  }

  void sample(std::uint64_t ts);

  const std::vector<SamplePoint>& series() const { return samples_; }
  void clear() { samples_.clear(); }

  /// Convenience: the per-interval delta of a cumulative counter between
  /// consecutive samples, as (ts, delta) pairs.
  std::vector<std::pair<std::uint64_t, double>> deltas(const std::string& key) const;

 private:
  bool wanted(const std::string& key) const;

  const Registry* registry_;
  std::vector<std::string> prefixes_;
  std::vector<SamplePoint> samples_;
};

}  // namespace whisper::telemetry

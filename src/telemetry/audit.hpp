// Adversary's-view anonymity audit over assembled flight records.
//
// The paper argues informally that a link observer or an honest-but-curious
// relay learns nothing linkable about who talks to whom. This module turns
// that claim into regression-checkable numbers: given a Vantage — the set
// of links, tapped nodes, and compromised (HbC) relays an attacker
// observes — replay each WCL message's flight record from only that vantage
// and compute what is inferable.
//
// Inference model (deterministic, conservative towards the attacker):
//  - The attacker observes a transmission (u, v) iff it watches the link
//    {u, v}, taps u or v, controls relay u or v, or is global.
//  - Sender: pinned iff the attacker is global, or the true source is
//    tapped/compromised (its first emission is then visibly un-preceded by
//    any inbound). Otherwise the candidate set is every node minus the
//    attacker's own nodes and minus observed participants known to have
//    received the message downstream — an HbC relay sees its predecessor
//    but cannot distinguish an originator from an earlier mix, which is
//    exactly the onion-routing guarantee being measured.
//  - Receiver, symmetrically, from the tail of the forward path.
//  - A message is *linkable* iff both ends are pinned to singletons.
//  - Group leakage assumes a worst-case oracle mapping each message to its
//    group (metadata-only attacker upper bound): a member leaks when it is
//    a pinned endpoint of any of the group's messages.
//
// Only forward-path hops are audited; ACKs retrace the same links, so link
// observability is symmetric and auditing them would double-count.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "telemetry/flight.hpp"

namespace whisper::telemetry {

/// What the attacker observes. Parsed from a CLI spec of ';'-separated
/// clauses: "relays=3,5;links=1-2,4-7;taps=9" or "global".
struct Vantage {
  std::set<std::uint64_t> relays;  // compromised (honest-but-curious) nodes
  std::set<std::uint64_t> taps;    // nodes with every adjacent link observed
  std::set<std::pair<std::uint64_t, std::uint64_t>> links;  // normalized a<b
  bool global = false;

  static bool parse(std::string_view spec, Vantage* out, std::string* err);
  std::string str() const;

  bool empty() const { return !global && relays.empty() && taps.empty() && links.empty(); }
  bool observes_node(std::uint64_t n) const {
    return global || taps.contains(n) || relays.contains(n);
  }
  bool observes_link(std::uint64_t a, std::uint64_t b) const {
    if (global || observes_node(a) || observes_node(b)) return true;
    return links.contains(a < b ? std::make_pair(a, b) : std::make_pair(b, a));
  }
};

/// What the vantage reveals about one WCL message.
struct MessageAudit {
  std::uint64_t trace_id = 0;
  std::uint64_t sender = 0;    // ground truth
  std::uint64_t receiver = 0;  // ground truth
  std::size_t hops_total = 0;     // forward-path transmissions
  std::size_t hops_observed = 0;  // ... of which the attacker saw
  std::size_t sender_set = 0;    // anonymity-set size (1 = pinned)
  std::size_t receiver_set = 0;
  bool sender_pinned = false;
  bool receiver_pinned = false;
  bool linkable = false;  // both endpoints pinned => conversation exposed
};

/// Unlinkability at one relay, audited as if it were the *only* compromised
/// vantage (the paper's single honest-but-curious relay).
struct RelayAudit {
  std::uint64_t relay = 0;
  std::size_t messages_seen = 0;  // forward paths through this relay
  std::size_t sender_pinned = 0;
  std::size_t receiver_pinned = 0;
  std::size_t linkable = 0;  // must be 0 for the leakage gate
};

/// Membership leakage for one group's PPSS traffic.
struct GroupAudit {
  std::string group;
  std::size_t members = 0;  // distinct endpoints of the group's messages
  std::size_t leaked = 0;   // members pinned as an endpoint at this vantage
};

struct AuditReport {
  std::size_t total_nodes = 0;  // anonymity-set universe
  std::size_t messages_total = 0;
  std::size_t messages_observed = 0;  // at least one hop seen
  std::size_t linkable_count = 0;
  double mean_sender_set = 0;
  double mean_receiver_set = 0;
  std::vector<MessageAudit> messages;
  std::vector<RelayAudit> relays;  // one row per vantage relay
  std::vector<GroupAudit> groups;
};

/// Replay `records` from `vantage`. `total_nodes` bounds the anonymity-set
/// universe; pass 0 to use the distinct node ids seen in the records.
AuditReport audit(const std::vector<FlightRecord>& records, const Vantage& vantage,
                  std::size_t total_nodes = 0);

/// Human-readable report (whisper_trace `audit` output). `verbose` appends
/// the per-message table.
std::string format_report(const AuditReport& report, bool verbose = false);

}  // namespace whisper::telemetry

#include "telemetry/metric.hpp"

#include <algorithm>
#include <cmath>

namespace whisper::telemetry {

BucketSpec BucketSpec::log_spaced(double lo, double hi, std::size_t per_decade) {
  BucketSpec spec;
  if (lo <= 0 || hi <= lo || per_decade == 0) return spec;
  const double ratio = std::pow(10.0, 1.0 / static_cast<double>(per_decade));
  // Generate bounds multiplicatively from lo; regenerate each bound from an
  // integer exponent so two specs with equal (lo, hi, per_decade) are
  // bit-identical regardless of accumulated rounding.
  for (std::size_t i = 0;; ++i) {
    const double b = lo * std::pow(ratio, static_cast<double>(i));
    spec.bounds.push_back(b);
    if (b >= hi) break;
    if (spec.bounds.size() > 4096) break;  // runaway guard
  }
  return spec;
}

BucketSpec BucketSpec::linear(double lo, double hi, std::size_t buckets) {
  BucketSpec spec;
  if (buckets == 0 || hi <= lo) return spec;
  const double step = (hi - lo) / static_cast<double>(buckets);
  for (std::size_t i = 0; i <= buckets; ++i) {
    spec.bounds.push_back(lo + step * static_cast<double>(i));
  }
  return spec;
}

Histogram::Histogram(BucketSpec spec)
    : spec_(std::move(spec)), counts_(spec_.bounds.size() + 1, 0) {}

void Histogram::observe(double v) { observe_n(v, 1); }

void Histogram::observe_n(double v, std::uint64_t n) {
  if (n == 0) return;
  const auto it = std::lower_bound(spec_.bounds.begin(), spec_.bounds.end(), v);
  counts_[static_cast<std::size_t>(it - spec_.bounds.begin())] += n;
  count_ += n;
  sum_ += v * static_cast<double>(n);
  min_ = std::min(min_, v);
  max_ = std::max(max_, v);
}

double Histogram::percentile(double p) const {
  if (count_ == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  // Rank in [0, count-1], matching Samples' linear interpolation between
  // order statistics.
  const double rank = p / 100.0 * static_cast<double>(count_ - 1);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    if (counts_[b] == 0) continue;
    const double bucket_lo = static_cast<double>(seen);
    seen += counts_[b];
    if (rank >= static_cast<double>(seen)) continue;
    // The rank falls in bucket b: interpolate between its bounds.
    const double lower = b == 0 ? min() : spec_.bounds[b - 1];
    const double upper = b < spec_.bounds.size() ? spec_.bounds[b] : max();
    const double frac = counts_[b] == 1
                            ? 0.5
                            : (rank - bucket_lo) / static_cast<double>(counts_[b]);
    const double v = lower + (upper - lower) * std::clamp(frac, 0.0, 1.0);
    return std::clamp(v, min(), max());
  }
  return max();
}

bool Histogram::merge(const Histogram& other) {
  if (spec_.bounds != other.spec_.bounds) return false;
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  return true;
}

void Histogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = std::numeric_limits<double>::infinity();
  max_ = -std::numeric_limits<double>::infinity();
}

Counter& noop_counter() {
  static Counter c;
  return c;
}

Gauge& noop_gauge() {
  static Gauge g;
  return g;
}

Histogram& noop_histogram() {
  static Histogram h{BucketSpec::log_spaced(1, 10)};
  return h;
}

}  // namespace whisper::telemetry

// The metric registry: named, label-tagged counters/gauges/histograms with
// stable addresses and *ordered* iteration (std::map keyed by the canonical
// "name{k=v,...}" string), so exports are byte-identical across same-seed
// runs regardless of metric creation order.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "telemetry/metric.hpp"

namespace whisper::telemetry {

/// Label set of a metric instance. Order given by the caller is irrelevant:
/// the registry canonicalises by sorting on key.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Canonical identity of a metric: "name{k1=v1,k2=v2}" with labels sorted
/// by key ("name" alone when unlabeled).
std::string metric_key(std::string_view name, const Labels& labels);

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Get-or-create. The returned reference stays valid for the registry's
  /// lifetime (std::map nodes never move). Requesting an existing key as a
  /// different metric kind returns the no-op sink of the requested kind —
  /// a naming bug, surfaced by the `mismatches()` counter, never UB.
  Counter& counter(std::string_view name, const Labels& labels = {});
  Gauge& gauge(std::string_view name, const Labels& labels = {});
  Histogram& histogram(std::string_view name, const BucketSpec& spec,
                       const Labels& labels = {});

  /// Read-only lookup; 0 / nullopt when the metric does not exist.
  std::uint64_t counter_value(std::string_view name, const Labels& labels = {}) const;
  std::optional<double> gauge_value(std::string_view name, const Labels& labels = {}) const;
  const Histogram* find_histogram(std::string_view name, const Labels& labels = {}) const;

  /// Sum of every counter whose *name* (not full key) equals `name` —
  /// aggregates across label sets, e.g. total bytes over all protocols.
  std::uint64_t counter_sum(std::string_view name) const;

  struct Entry {
    std::string name;
    Labels labels;
    std::variant<Counter, Gauge, Histogram> metric;
  };

  /// Ordered traversal (ascending canonical key).
  const std::map<std::string, Entry>& entries() const { return entries_; }
  std::size_t size() const { return entries_.size(); }

  /// Zero every metric whose canonical key starts with `prefix` (all of
  /// them when empty). Metrics stay registered; only values reset.
  void reset(std::string_view prefix = {});

  std::uint64_t mismatches() const { return mismatches_; }

 private:
  const Entry* find(std::string_view name, const Labels& labels) const;

  std::map<std::string, Entry> entries_;
  std::uint64_t mismatches_ = 0;
};

/// Accumulate every metric of `src` into `dst` (get-or-create under the
/// identical canonical key): counters and gauges add, histograms merge
/// (bounds must match — mismatches are skipped, surfaced via
/// dst.mismatches()). Because all hot-path metric updates are commutative,
/// the union of the sharded testbed's per-shard registries is invariant
/// under shard count — the S=1-vs-S=8 byte-identical gate exports the
/// merged registry on both sides.
void merge_registry_into(Registry& dst, const Registry& src);

}  // namespace whisper::telemetry

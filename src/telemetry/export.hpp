// Exporters: registry and time-series state as JSONL (one JSON object per
// line, trivially grep/jq-able), and the tracer's events as Chrome
// trace-event JSON loadable in Perfetto / chrome://tracing.
//
// Determinism contract: output depends only on registry/tracer *content*
// (itself deterministic under the virtual clock) — iteration is ordered,
// numbers are printed with fixed formats, nothing derives from pointers or
// wall-clock time. Golden tests diff two same-seed runs byte-for-byte.
#pragma once

#include <string>
#include <string_view>

#include "telemetry/registry.hpp"
#include "telemetry/timeseries.hpp"
#include "telemetry/trace.hpp"

namespace whisper::telemetry {

/// One line per metric:
///   {"name":"net.bytes","labels":{"dir":"up"},"type":"counter","value":123}
/// Histogram lines add count/sum/min/max/p50/p90/p99 and bucket arrays.
std::string to_jsonl(const Registry& registry);

/// One line per sample point: {"ts":60000000,"values":{"key":1,...}}
std::string to_jsonl(const TimeSeriesRecorder& recorder);

/// {"displayTimeUnit":"ms","traceEvents":[...]} — the trace-event JSON
/// object form. ts/dur are virtual microseconds; tid is the node id.
std::string to_chrome_trace(const Tracer& tracer);

/// JSON string escaping for the exporters (exposed for tests).
std::string json_escape(std::string_view s);

/// Write `content` to `path`; false on I/O failure.
bool write_text_file(const std::string& path, std::string_view content);

}  // namespace whisper::telemetry

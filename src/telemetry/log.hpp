// Structured leveled JSONL logging for the real-network tools
// (DESIGN.md §15). One JSON object per line:
//   {"ts_us":12345,"level":"info","node":3,"event":"boot","pid":4711,...}
//
// This replaces the ad-hoc fprintf lines in whisper_noded /
// whisper_localnet so supervisor post-mortems are machine-parseable:
// timestamps are monotonic microseconds (comparable across processes on one
// host — CLOCK_MONOTONIC is boot-relative), every line carries the node id,
// and fields are typed. Distinct from common/log.hpp (the printf-style
// library-internal debug logger): this sink is for the operational event
// stream of the tools.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <initializer_list>
#include <string>
#include <string_view>

namespace whisper::telemetry {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

const char* log_level_name(LogLevel level);

/// One typed key/value of a log line. Values are captured by value (numbers)
/// or by pointer (strings) — a LogField must not outlive the call it is
/// passed to.
struct LogField {
  enum class Kind { kStr, kU64, kI64, kF64, kBool };

  LogField(std::string_view k, std::string_view v) : key(k), kind(Kind::kStr), s(v) {}
  LogField(std::string_view k, const char* v) : key(k), kind(Kind::kStr), s(v ? v : "") {}
  LogField(std::string_view k, const std::string& v) : key(k), kind(Kind::kStr), s(v) {}
  LogField(std::string_view k, unsigned long long v) : key(k), kind(Kind::kU64), u(v) {}
  LogField(std::string_view k, unsigned long v) : key(k), kind(Kind::kU64), u(v) {}
  LogField(std::string_view k, unsigned v) : key(k), kind(Kind::kU64), u(v) {}
  LogField(std::string_view k, long long v) : key(k), kind(Kind::kI64), i(v) {}
  LogField(std::string_view k, long v) : key(k), kind(Kind::kI64), i(v) {}
  LogField(std::string_view k, int v) : key(k), kind(Kind::kI64), i(v) {}
  LogField(std::string_view k, double v) : key(k), kind(Kind::kF64), f(v) {}
  LogField(std::string_view k, bool v) : key(k), kind(Kind::kBool), b(v) {}

  std::string_view key;
  Kind kind;
  std::string_view s{};
  std::uint64_t u = 0;
  std::int64_t i = 0;
  double f = 0;
  bool b = false;
};

class Logger {
 public:
  Logger() = default;
  ~Logger();
  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

  /// Log to an unowned stream (default stderr).
  void set_stream(std::FILE* stream);
  /// Log to a file (append, line-buffered). False on open failure.
  bool open_file(const std::string& path);

  void set_level(LogLevel min_level) { min_level_ = min_level; }
  void set_node(std::uint64_t node) { node_ = node; has_node_ = true; }
  /// Timestamp source; defaults to CLOCK_MONOTONIC in microseconds.
  void set_clock(std::function<std::uint64_t()> now_us) { now_us_ = std::move(now_us); }

  void log(LogLevel level, std::string_view event,
           std::initializer_list<LogField> fields = {});

  void debug(std::string_view event, std::initializer_list<LogField> fields = {}) {
    log(LogLevel::kDebug, event, fields);
  }
  void info(std::string_view event, std::initializer_list<LogField> fields = {}) {
    log(LogLevel::kInfo, event, fields);
  }
  void warn(std::string_view event, std::initializer_list<LogField> fields = {}) {
    log(LogLevel::kWarn, event, fields);
  }
  void error(std::string_view event, std::initializer_list<LogField> fields = {}) {
    log(LogLevel::kError, event, fields);
  }

 private:
  void close_owned();

  std::FILE* stream_ = stderr;
  bool owns_stream_ = false;
  LogLevel min_level_ = LogLevel::kInfo;
  std::uint64_t node_ = 0;
  bool has_node_ = false;
  std::function<std::uint64_t()> now_us_;
};

}  // namespace whisper::telemetry

// Metric primitives for the unified telemetry subsystem: counters, gauges
// and fixed-bucket histograms. All state is plain (single-threaded, like
// the simulator that drives it) and strictly deterministic: values depend
// only on the sequence of observations, never on wall-clock time or
// addresses. See DESIGN.md §Telemetry.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace whisper::telemetry {

/// Monotonic event/byte counter. `reset()` exists so measurement windows
/// (e.g. a bench warm-up) can be excluded, mirroring the old ad-hoc
/// per-bench counters it replaces.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-write-wins instantaneous value (queue depth, backlog size, ...).
class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double d) { value_ += d; }
  double value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  double value_ = 0;
};

/// Bucket layout of a histogram: ascending upper bounds; an implicit
/// overflow bucket catches everything above the last bound.
struct BucketSpec {
  std::vector<double> bounds;

  /// Geometric (log-spaced) bounds covering [lo, hi] with
  /// `per_decade` buckets per factor of 10. The paper's latency and
  /// bandwidth distributions span several orders of magnitude, so this is
  /// the default layout.
  static BucketSpec log_spaced(double lo, double hi, std::size_t per_decade = 10);

  /// Evenly spaced bounds: lo, lo+step, ..., hi (for small integer ranges
  /// such as hop counts).
  static BucketSpec linear(double lo, double hi, std::size_t buckets);

  bool operator==(const BucketSpec&) const = default;
};

/// Fixed-bucket histogram with percentile queries. Mergeable across
/// instances that share the same BucketSpec (per-node histograms are merged
/// into system-wide distributions by the exporters and benches).
class Histogram {
 public:
  explicit Histogram(BucketSpec spec);

  void observe(double v);
  void observe_n(double v, std::uint64_t n);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ ? min_ : 0; }
  double max() const { return count_ ? max_ : 0; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0; }

  /// p in [0, 100]. Piecewise-linear interpolation inside the bucket where
  /// the rank falls, clamped to the recorded [min, max]. Agrees with exact
  /// order-statistic percentiles (whisper::Samples) up to one bucket width.
  double percentile(double p) const;

  /// Add another histogram's observations; requires identical bounds.
  /// Returns false (and leaves *this untouched) on a layout mismatch.
  bool merge(const Histogram& other);

  const BucketSpec& spec() const { return spec_; }
  /// Bucket occupancy; index bounds.size() is the overflow bucket.
  const std::vector<std::uint64_t>& bucket_counts() const { return counts_; }

  void reset();

 private:
  BucketSpec spec_;
  std::vector<std::uint64_t> counts_;  // bounds.size() + 1 (overflow)
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Shared no-op sinks: returned by a disabled telemetry::Scope so call
/// sites never branch. They accumulate garbage nobody reads.
Counter& noop_counter();
Gauge& noop_gauge();
Histogram& noop_histogram();

}  // namespace whisper::telemetry

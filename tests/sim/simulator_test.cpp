#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace whisper::sim {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator s;
  EXPECT_EQ(s.now(), 0u);
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule_at(30, [&] { order.push_back(3); });
  s.schedule_at(10, [&] { order.push_back(1); });
  s.schedule_at(20, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30u);
}

TEST(Simulator, SameTimeEventsFifo) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, ScheduleAfterUsesCurrentTime) {
  Simulator s;
  Time seen = 0;
  s.schedule_at(100, [&] {
    s.schedule_after(50, [&] { seen = s.now(); });
  });
  s.run();
  EXPECT_EQ(seen, 150u);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator s;
  bool ran = false;
  TimerId id = s.schedule_at(10, [&] { ran = true; });
  s.cancel(id);
  s.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, CancelAfterFireIsNoop) {
  Simulator s;
  bool ran = false;
  TimerId id = s.schedule_at(10, [&] { ran = true; });
  s.run();
  EXPECT_TRUE(ran);
  s.cancel(id);  // must not blow up or affect future events
  bool ran2 = false;
  s.schedule_at(20, [&] { ran2 = true; });
  s.run();
  EXPECT_TRUE(ran2);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator s;
  int count = 0;
  s.schedule_at(10, [&] { ++count; });
  s.schedule_at(20, [&] { ++count; });
  s.schedule_at(30, [&] { ++count; });
  s.run_until(20);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(s.now(), 20u);
  s.run_until(100);
  EXPECT_EQ(count, 3);
  EXPECT_EQ(s.now(), 100u);
}

TEST(Simulator, EventsScheduledDuringRunExecute) {
  Simulator s;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) s.schedule_after(1, recurse);
  };
  s.schedule_at(0, recurse);
  s.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(s.executed_events(), 5u);
}

TEST(Simulator, StepReturnsFalseWhenEmpty) {
  Simulator s;
  EXPECT_FALSE(s.step());
  s.schedule_at(1, [] {});
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
}

TEST(Simulator, PendingEventsExcludesCancelled) {
  Simulator s;
  s.schedule_at(1, [] {});
  TimerId id = s.schedule_at(2, [] {});
  EXPECT_EQ(s.pending_events(), 2u);
  s.cancel(id);
  EXPECT_EQ(s.pending_events(), 1u);
}

// Regression: cancelling an id that already fired used to park the id in
// the cancelled set forever, making pending_events() under-count every
// event scheduled afterwards (queue size minus a stale cancelled count).
TEST(Simulator, CancelOfFiredIdDoesNotSkewPendingCount) {
  Simulator s;
  TimerId id = s.schedule_at(10, [] {});
  s.run();
  s.cancel(id);  // already fired: must be a no-op
  EXPECT_EQ(s.cancelled_events(), 0u);
  s.schedule_at(20, [] {});
  s.schedule_at(30, [] {});
  EXPECT_EQ(s.pending_events(), 2u);
}

TEST(Simulator, DoubleCancelCountsOnce) {
  Simulator s;
  TimerId id = s.schedule_at(10, [] {});
  s.schedule_at(20, [] {});
  s.cancel(id);
  s.cancel(id);  // second cancel of a live-then-cancelled id: no-op
  EXPECT_EQ(s.cancelled_events(), 1u);
  EXPECT_EQ(s.pending_events(), 1u);
  s.run();
  EXPECT_EQ(s.executed_events(), 1u);
}

TEST(Simulator, CancelOfUnknownIdIsNoop) {
  Simulator s;
  s.schedule_at(10, [] {});
  s.cancel(424242);  // never scheduled
  EXPECT_EQ(s.pending_events(), 1u);
  EXPECT_EQ(s.cancelled_events(), 0u);
}

TEST(Simulator, TelemetryCountersTrackEventLoop) {
  Simulator s;
  telemetry::Registry reg;
  s.attach_telemetry(reg);
  s.schedule_at(10, [] {});
  TimerId id = s.schedule_at(20, [] {});
  s.cancel(id);
  s.run();
  EXPECT_EQ(reg.counter_value("sim.events.executed"), 1u);
  EXPECT_EQ(reg.counter_value("sim.events.cancelled"), 1u);
  EXPECT_EQ(reg.gauge_value("sim.queue.depth"), 0.0);
}

// --- Slot/generation bookkeeping (the hash-set-free cancel scheme). ---

TEST(Simulator, TimerIdsAreNeverZero) {
  // Protocol code uses TimerId 0 as a "no timer armed" sentinel; a real id
  // equal to 0 would make that timer uncancellable.
  Simulator s;
  for (int i = 0; i < 100; ++i) EXPECT_NE(s.schedule_at(1, [] {}), 0u);
}

TEST(Simulator, StaleCancelOfRecycledSlotIsNoop) {
  // Cancel an id whose slot has since been recycled for a newer event: the
  // generation check must protect the new occupant.
  Simulator s;
  TimerId old_id = s.schedule_at(10, [] {});
  s.cancel(old_id);
  bool ran = false;
  TimerId new_id = s.schedule_at(20, [&] { ran = true; });  // may reuse the slot
  s.cancel(old_id);  // stale: must not cancel the new event
  EXPECT_EQ(s.cancelled_events(), 1u);
  EXPECT_EQ(s.pending_events(), 1u);
  s.run();
  EXPECT_TRUE(ran);
  s.cancel(new_id);  // fired: no-op
  EXPECT_EQ(s.cancelled_events(), 1u);
}

TEST(Simulator, SlotReuseKeepsCountsExact) {
  // Hammer schedule/cancel/fire so slots recycle many times; every counter
  // must stay exact (this is the regression net for the slot-generation
  // rewrite of the live/cancelled hash sets).
  Simulator s;
  std::uint64_t fired = 0;
  std::uint64_t cancelled = 0;
  for (int round = 0; round < 50; ++round) {
    TimerId keep = s.schedule_after(1, [&] { ++fired; });
    TimerId drop = s.schedule_after(2, [&] { ++fired; });
    EXPECT_EQ(s.pending_events(), 2u);
    s.cancel(drop);
    ++cancelled;
    EXPECT_EQ(s.pending_events(), 1u);
    s.run();
    s.cancel(keep);   // already fired
    s.cancel(drop);   // already cancelled
    EXPECT_EQ(s.pending_events(), 0u);
  }
  EXPECT_EQ(fired, 50u);
  EXPECT_EQ(s.executed_events(), 50u);
  EXPECT_EQ(s.cancelled_events(), cancelled);
}

TEST(Simulator, RunUntilIgnoresCancelledHeadAndHoldsBoundary) {
  // A cancelled event at the heap front inside the window must not drag a
  // later-than-t event into run_until(t) (the pre-slot-rewrite loop peeked
  // at the raw heap top and could overshoot).
  Simulator s;
  TimerId id = s.schedule_at(5, [] {});
  bool late_ran = false;
  s.schedule_at(100, [&] { late_ran = true; });
  s.cancel(id);
  s.run_until(10);
  EXPECT_FALSE(late_ran);
  EXPECT_EQ(s.now(), 10u);
  s.run_until(100);
  EXPECT_TRUE(late_ran);
}

TEST(Simulator, MassCancellation) {
  Simulator s;
  std::vector<TimerId> ids;
  int ran = 0;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(s.schedule_at(static_cast<Time>(i + 1), [&] { ++ran; }));
  }
  for (std::size_t i = 0; i < ids.size(); i += 2) s.cancel(ids[i]);
  EXPECT_EQ(s.pending_events(), 500u);
  s.run();
  EXPECT_EQ(ran, 500);
  EXPECT_EQ(s.executed_events(), 500u);
  EXPECT_EQ(s.cancelled_events(), 500u);
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(Simulator, PeriodicSelfRescheduling) {
  Simulator s;
  int fires = 0;
  std::function<void()> tick = [&] {
    ++fires;
    s.schedule_after(10, tick);
  };
  s.schedule_at(0, tick);
  s.run_until(95);
  EXPECT_EQ(fires, 10);  // t = 0,10,...,90
}

}  // namespace
}  // namespace whisper::sim

#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace whisper::sim {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator s;
  EXPECT_EQ(s.now(), 0u);
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule_at(30, [&] { order.push_back(3); });
  s.schedule_at(10, [&] { order.push_back(1); });
  s.schedule_at(20, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30u);
}

TEST(Simulator, SameTimeEventsFifo) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, ScheduleAfterUsesCurrentTime) {
  Simulator s;
  Time seen = 0;
  s.schedule_at(100, [&] {
    s.schedule_after(50, [&] { seen = s.now(); });
  });
  s.run();
  EXPECT_EQ(seen, 150u);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator s;
  bool ran = false;
  TimerId id = s.schedule_at(10, [&] { ran = true; });
  s.cancel(id);
  s.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, CancelAfterFireIsNoop) {
  Simulator s;
  bool ran = false;
  TimerId id = s.schedule_at(10, [&] { ran = true; });
  s.run();
  EXPECT_TRUE(ran);
  s.cancel(id);  // must not blow up or affect future events
  bool ran2 = false;
  s.schedule_at(20, [&] { ran2 = true; });
  s.run();
  EXPECT_TRUE(ran2);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator s;
  int count = 0;
  s.schedule_at(10, [&] { ++count; });
  s.schedule_at(20, [&] { ++count; });
  s.schedule_at(30, [&] { ++count; });
  s.run_until(20);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(s.now(), 20u);
  s.run_until(100);
  EXPECT_EQ(count, 3);
  EXPECT_EQ(s.now(), 100u);
}

TEST(Simulator, EventsScheduledDuringRunExecute) {
  Simulator s;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) s.schedule_after(1, recurse);
  };
  s.schedule_at(0, recurse);
  s.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(s.executed_events(), 5u);
}

TEST(Simulator, StepReturnsFalseWhenEmpty) {
  Simulator s;
  EXPECT_FALSE(s.step());
  s.schedule_at(1, [] {});
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
}

TEST(Simulator, PendingEventsExcludesCancelled) {
  Simulator s;
  s.schedule_at(1, [] {});
  TimerId id = s.schedule_at(2, [] {});
  EXPECT_EQ(s.pending_events(), 2u);
  s.cancel(id);
  EXPECT_EQ(s.pending_events(), 1u);
}

// Regression: cancelling an id that already fired used to park the id in
// the cancelled set forever, making pending_events() under-count every
// event scheduled afterwards (queue size minus a stale cancelled count).
TEST(Simulator, CancelOfFiredIdDoesNotSkewPendingCount) {
  Simulator s;
  TimerId id = s.schedule_at(10, [] {});
  s.run();
  s.cancel(id);  // already fired: must be a no-op
  EXPECT_EQ(s.cancelled_events(), 0u);
  s.schedule_at(20, [] {});
  s.schedule_at(30, [] {});
  EXPECT_EQ(s.pending_events(), 2u);
}

TEST(Simulator, DoubleCancelCountsOnce) {
  Simulator s;
  TimerId id = s.schedule_at(10, [] {});
  s.schedule_at(20, [] {});
  s.cancel(id);
  s.cancel(id);  // second cancel of a live-then-cancelled id: no-op
  EXPECT_EQ(s.cancelled_events(), 1u);
  EXPECT_EQ(s.pending_events(), 1u);
  s.run();
  EXPECT_EQ(s.executed_events(), 1u);
}

TEST(Simulator, CancelOfUnknownIdIsNoop) {
  Simulator s;
  s.schedule_at(10, [] {});
  s.cancel(424242);  // never scheduled
  EXPECT_EQ(s.pending_events(), 1u);
  EXPECT_EQ(s.cancelled_events(), 0u);
}

TEST(Simulator, TelemetryCountersTrackEventLoop) {
  Simulator s;
  telemetry::Registry reg;
  s.attach_telemetry(reg);
  s.schedule_at(10, [] {});
  TimerId id = s.schedule_at(20, [] {});
  s.cancel(id);
  s.run();
  EXPECT_EQ(reg.counter_value("sim.events.executed"), 1u);
  EXPECT_EQ(reg.counter_value("sim.events.cancelled"), 1u);
  EXPECT_EQ(reg.gauge_value("sim.queue.depth"), 0.0);
}

TEST(Simulator, PeriodicSelfRescheduling) {
  Simulator s;
  int fires = 0;
  std::function<void()> tick = [&] {
    ++fires;
    s.schedule_after(10, tick);
  };
  s.schedule_at(0, tick);
  s.run_until(95);
  EXPECT_EQ(fires, 10);  // t = 0,10,...,90
}

}  // namespace
}  // namespace whisper::sim

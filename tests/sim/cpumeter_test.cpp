#include "sim/cpumeter.hpp"

#include <gtest/gtest.h>

namespace whisper::sim {
namespace {

TEST(CpuMeter, ChargeAccumulatesPerCategory) {
  CpuMeter meter;
  meter.charge(CpuCategory::kAes, [] {});
  meter.charge(CpuCategory::kAes, [] {});
  meter.charge(CpuCategory::kRsaDecrypt, [] {});
  EXPECT_EQ(meter.ops(CpuCategory::kAes), 2u);
  EXPECT_EQ(meter.ops(CpuCategory::kRsaDecrypt), 1u);
  EXPECT_EQ(meter.ops(CpuCategory::kRsaEncrypt), 0u);
  EXPECT_GE(meter.spent(CpuCategory::kAes), 2u);  // at least 1 us per op
}

TEST(CpuMeter, ChargeReturnsPositiveTime) {
  CpuMeter meter;
  const Time t = meter.charge(CpuCategory::kRsaSign, [] {});
  EXPECT_GE(t, 1u);
}

TEST(CpuMeter, MeasuresRealWork) {
  CpuMeter meter;
  // A busy loop of ~1 ms must register clearly above the 1 us floor.
  const Time t = meter.charge(CpuCategory::kRsaEncrypt, [] {
    volatile std::uint64_t acc = 0;
    for (int i = 0; i < 2'000'000; ++i) acc += static_cast<std::uint64_t>(i);
  });
  EXPECT_GT(t, 100u);
}

TEST(CpuMeter, TotalSumsCategories) {
  CpuMeter meter;
  meter.charge(CpuCategory::kAes, [] {});
  meter.charge(CpuCategory::kRsaDecrypt, [] {});
  EXPECT_EQ(meter.total(),
            meter.spent(CpuCategory::kAes) + meter.spent(CpuCategory::kRsaDecrypt));
}

TEST(CpuMeter, ResetClears) {
  CpuMeter meter;
  meter.charge(CpuCategory::kAes, [] {});
  meter.reset();
  EXPECT_EQ(meter.total(), 0u);
  EXPECT_EQ(meter.ops(CpuCategory::kAes), 0u);
}

TEST(CpuMeter, ProbeObservesEveryCharge) {
  CpuMeter meter;
  std::vector<std::pair<CpuCategory, Time>> samples;
  meter.set_probe([&](CpuCategory c, Time t) { samples.emplace_back(c, t); });
  meter.charge(CpuCategory::kAes, [] {});
  meter.charge(CpuCategory::kRsaDecrypt, [] {});
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].first, CpuCategory::kAes);
  EXPECT_EQ(samples[1].first, CpuCategory::kRsaDecrypt);
  meter.set_probe(nullptr);
  meter.charge(CpuCategory::kAes, [] {});
  EXPECT_EQ(samples.size(), 2u);  // detached probe sees nothing
}

}  // namespace
}  // namespace whisper::sim

#include "sim/network.hpp"

#include <gtest/gtest.h>

namespace whisper::sim {
namespace {

Endpoint ep(std::uint32_t ip) { return Endpoint{ip, 5000}; }

struct NetFixture : ::testing::Test {
  Simulator sim{1};
  Network net{sim, std::make_unique<FixedLatency>(kMillisecond)};
};

TEST_F(NetFixture, DeliversToAttachedHandler) {
  std::vector<Bytes> received;
  net.attach(ep(1), [&](const Datagram& d) { received.push_back(d.payload); });
  net.send(ep(2), ep(1), Bytes{1, 2, 3}, Proto::kApp);
  sim.run();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0], (Bytes{1, 2, 3}));
}

TEST_F(NetFixture, DeliveryDelayedByLatency) {
  bool got = false;
  net.attach(ep(1), [&](const Datagram&) { got = true; });
  net.send(ep(2), ep(1), Bytes{1}, Proto::kApp);
  sim.run_until(kMillisecond - 1);
  EXPECT_FALSE(got);
  sim.run_until(kMillisecond);
  EXPECT_TRUE(got);
}

TEST_F(NetFixture, DetachedNodeDropsPackets) {
  bool got = false;
  net.attach(ep(1), [&](const Datagram&) { got = true; });
  net.send(ep(2), ep(1), Bytes{1}, Proto::kApp);
  net.detach(ep(1));
  sim.run();
  EXPECT_FALSE(got);
  EXPECT_EQ(net.packets_dropped(), 1u);
}

TEST_F(NetFixture, SrcEndpointVisibleToReceiver) {
  Endpoint seen_src{};
  net.attach(ep(1), [&](const Datagram& d) { seen_src = d.src; });
  net.send(ep(2), ep(1), Bytes{1}, Proto::kApp);
  sim.run();
  EXPECT_EQ(seen_src, ep(2));
}

TEST_F(NetFixture, UploadCountedAtSender) {
  net.attach(ep(1), [](const Datagram&) {});
  net.send(ep(2), ep(1), Bytes(100, 0), Proto::kPss);
  sim.run();
  EXPECT_EQ(net.counters(ep(2)).up_for(Proto::kPss), 100u);
  EXPECT_EQ(net.counters(ep(2)).total_up(), 100u);
  EXPECT_EQ(net.counters(ep(2)).total_down(), 0u);
}

TEST_F(NetFixture, DownloadCountedAtReceiver) {
  net.attach(ep(1), [](const Datagram&) {});
  net.send(ep(2), ep(1), Bytes(64, 0), Proto::kWcl);
  sim.run();
  EXPECT_EQ(net.counters(ep(1)).down_for(Proto::kWcl), 64u);
}

TEST_F(NetFixture, PerProtocolAccountingSeparated) {
  net.attach(ep(1), [](const Datagram&) {});
  net.send(ep(2), ep(1), Bytes(10, 0), Proto::kPss);
  net.send(ep(2), ep(1), Bytes(20, 0), Proto::kKeys);
  sim.run();
  EXPECT_EQ(net.counters(ep(2)).up_for(Proto::kPss), 10u);
  EXPECT_EQ(net.counters(ep(2)).up_for(Proto::kKeys), 20u);
  EXPECT_EQ(net.counters(ep(2)).total_up(), 30u);
}

TEST_F(NetFixture, ResetCountersClearsEverything) {
  net.attach(ep(1), [](const Datagram&) {});
  net.send(ep(2), ep(1), Bytes(10, 0), Proto::kPss);
  sim.run();
  net.reset_counters();
  EXPECT_EQ(net.counters(ep(2)).total_up(), 0u);
  EXPECT_EQ(net.packets_sent(), 0u);
}

TEST_F(NetFixture, TranslatorOutboundRewrite) {
  struct Xlat : AddressTranslator {
    std::optional<Endpoint> outbound(Endpoint, Endpoint) override {
      return Endpoint{99, 99};
    }
    std::optional<Endpoint> inbound(Endpoint dst, Endpoint) override { return dst; }
  } xlat;
  net.set_translator(&xlat);
  Endpoint seen_src{};
  net.attach(ep(1), [&](const Datagram& d) { seen_src = d.src; });
  net.send(ep(2), ep(1), Bytes{1}, Proto::kApp);
  sim.run();
  EXPECT_EQ(seen_src, (Endpoint{99, 99}));
}

TEST_F(NetFixture, TranslatorInboundFilterDropsPacket) {
  struct Xlat : AddressTranslator {
    std::optional<Endpoint> outbound(Endpoint src, Endpoint) override { return src; }
    std::optional<Endpoint> inbound(Endpoint, Endpoint) override { return std::nullopt; }
  } xlat;
  net.set_translator(&xlat);
  bool got = false;
  net.attach(ep(1), [&](const Datagram&) { got = true; });
  net.send(ep(2), ep(1), Bytes{1}, Proto::kApp);
  sim.run();
  EXPECT_FALSE(got);
}

TEST_F(NetFixture, TranslatorOutboundRefusalBlocksSend) {
  struct Xlat : AddressTranslator {
    std::optional<Endpoint> outbound(Endpoint, Endpoint) override { return std::nullopt; }
    std::optional<Endpoint> inbound(Endpoint dst, Endpoint) override { return dst; }
  } xlat;
  net.set_translator(&xlat);
  EXPECT_FALSE(net.send(ep(2), ep(1), Bytes{1}, Proto::kApp));
}

TEST_F(NetFixture, InFlightPacketsAreNotDropped) {
  // The seed's packets_dropped() was sent - delivered, so a packet still in
  // flight read as dropped. The explicit counters must not have that bug.
  net.attach(ep(1), [](const Datagram&) {});
  net.send(ep(2), ep(1), Bytes{1}, Proto::kApp);
  EXPECT_EQ(net.packets_in_flight(), 1u);
  EXPECT_EQ(net.packets_dropped(), 0u);
  sim.run();
  EXPECT_EQ(net.packets_in_flight(), 0u);
  EXPECT_EQ(net.packets_dropped(), 0u);
  EXPECT_EQ(net.packets_delivered(), 1u);
}

TEST_F(NetFixture, DropReasonsCountedSeparately) {
  struct Xlat : AddressTranslator {
    std::optional<Endpoint> outbound(Endpoint src, Endpoint) override { return src; }
    std::optional<Endpoint> inbound(Endpoint, Endpoint) override { return std::nullopt; }
  } xlat;
  // One detach drop...
  net.send(ep(2), ep(1), Bytes{1}, Proto::kApp);
  sim.run();
  EXPECT_EQ(net.packets_dropped(DropReason::kDetach), 1u);
  // ...and one filter drop.
  net.set_translator(&xlat);
  net.attach(ep(1), [](const Datagram&) {});
  net.send(ep(2), ep(1), Bytes{1}, Proto::kApp);
  sim.run();
  EXPECT_EQ(net.packets_dropped(DropReason::kFilter), 1u);
  EXPECT_EQ(net.packets_dropped(DropReason::kLoss), 0u);
  EXPECT_EQ(net.packets_dropped(), 2u);
  EXPECT_EQ(net.packets_in_flight(), 0u);
}

TEST_F(NetFixture, FaultInterposerCanDropOnWire) {
  struct Faults : FaultInterposer {
    WireVerdict on_wire(Endpoint, Datagram&) override { return WireVerdict{0, 0}; }
    Gate on_deliver(Endpoint, Endpoint, const Datagram&) override {
      return Gate::kDeliver;
    }
  } faults;
  net.set_fault_interposer(&faults);
  bool got = false;
  net.attach(ep(1), [&](const Datagram&) { got = true; });
  EXPECT_TRUE(net.send(ep(2), ep(1), Bytes{1}, Proto::kApp));
  sim.run();
  EXPECT_FALSE(got);
  EXPECT_EQ(net.packets_dropped(DropReason::kFault), 1u);
  EXPECT_EQ(net.packets_in_flight(), 0u);
}

TEST_F(NetFixture, FaultInterposerDuplicationAccounted) {
  struct Faults : FaultInterposer {
    WireVerdict on_wire(Endpoint, Datagram&) override { return WireVerdict{2, 0}; }
    Gate on_deliver(Endpoint, Endpoint, const Datagram&) override {
      return Gate::kDeliver;
    }
  } faults;
  net.set_fault_interposer(&faults);
  int got = 0;
  net.attach(ep(1), [&](const Datagram&) { ++got; });
  net.send(ep(2), ep(1), Bytes{1}, Proto::kApp);
  sim.run();
  EXPECT_EQ(got, 2);
  EXPECT_EQ(net.packets_sent(), 1u);
  EXPECT_EQ(net.packets_duplicated(), 1u);
  EXPECT_EQ(net.packets_delivered(), 2u);
  EXPECT_EQ(net.packets_in_flight(), 0u);
}

TEST_F(NetFixture, FaultInterposerQueueAndRedeliver) {
  struct Faults : FaultInterposer {
    bool queueing = true;
    std::vector<std::pair<Endpoint, Datagram>> held;
    WireVerdict on_wire(Endpoint, Datagram&) override { return {}; }
    Gate on_deliver(Endpoint, Endpoint dst, const Datagram& d) override {
      if (!queueing) return Gate::kDeliver;
      held.emplace_back(dst, d);
      return Gate::kQueue;
    }
  } faults;
  net.set_fault_interposer(&faults);
  int got = 0;
  net.attach(ep(1), [&](const Datagram&) { ++got; });
  net.send(ep(2), ep(1), Bytes{1}, Proto::kApp);
  sim.run();
  EXPECT_EQ(got, 0);
  EXPECT_EQ(net.packets_in_flight(), 1u);  // queued counts as in flight
  faults.queueing = false;
  for (auto& [dst, d] : faults.held) net.redeliver(dst, std::move(d));
  EXPECT_EQ(got, 1);
  EXPECT_EQ(net.packets_in_flight(), 0u);
}

TEST(NetworkLoss, LostPacketsNeverDeliver) {
  // A latency model that drops everything.
  struct AlwaysLost : LatencyModel {
    std::optional<Time> sample(Endpoint, Endpoint, Rng&) override { return std::nullopt; }
    Time lower_bound() const override { return 0; }
  };
  Simulator sim(1);
  Network net(sim, std::make_unique<AlwaysLost>());
  bool got = false;
  net.attach(Endpoint{1, 5000}, [&](const Datagram&) { got = true; });
  EXPECT_TRUE(net.send(Endpoint{2, 5000}, Endpoint{1, 5000}, Bytes{1}, Proto::kApp));
  sim.run();
  EXPECT_FALSE(got);
  EXPECT_EQ(net.packets_dropped(DropReason::kLoss), 1u);
  EXPECT_EQ(net.packets_in_flight(), 0u);
}

}  // namespace
}  // namespace whisper::sim

#include "sim/latency.hpp"

#include <gtest/gtest.h>

namespace whisper::sim {
namespace {

TEST(ClusterLatency, WithinLanRange) {
  ClusterLatency model;
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    auto d = model.sample(Endpoint{1, 1}, Endpoint{2, 1}, rng);
    ASSERT_TRUE(d.has_value());
    EXPECT_GE(*d, 100u);
    EXPECT_LT(*d, 500u);
  }
}

TEST(PlanetLabLatency, WanScaleDelays) {
  PlanetLabLatency model(0.0);
  Rng rng(2);
  double total = 0;
  int n = 0;
  for (std::uint32_t pair = 0; pair < 200; ++pair) {
    auto d = model.sample(Endpoint{pair, 1}, Endpoint{pair + 1000, 1}, rng);
    ASSERT_TRUE(d.has_value());
    EXPECT_GE(*d, 5 * kMillisecond);
    total += static_cast<double>(*d);
    ++n;
  }
  // Mean one-way delay in the tens-of-ms regime.
  const double mean_ms = total / n / kMillisecond;
  EXPECT_GT(mean_ms, 20.0);
  EXPECT_LT(mean_ms, 200.0);
}

TEST(PlanetLabLatency, LossRateApproximatelyConfigured) {
  PlanetLabLatency model(0.1);
  Rng rng(3);
  int lost = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (!model.sample(Endpoint{1, 1}, Endpoint{2, 1}, rng)) ++lost;
  }
  EXPECT_NEAR(static_cast<double>(lost) / n, 0.1, 0.02);
}

TEST(PlanetLabLatency, PerPairBaseConsistent) {
  PlanetLabLatency model(0.0);
  Rng rng(4);
  // The same pair should see correlated delays (same base); different pairs
  // should differ. Compare medians over many samples.
  auto median_delay = [&](std::uint32_t a, std::uint32_t b) {
    std::vector<Time> v;
    for (int i = 0; i < 101; ++i) v.push_back(*model.sample(Endpoint{a, 1}, Endpoint{b, 1}, rng));
    std::sort(v.begin(), v.end());
    return v[50];
  };
  const Time same1 = median_delay(10, 20);
  const Time same2 = median_delay(10, 20);
  // Medians of the same pair are close (within 50%).
  EXPECT_LT(std::max(same1, same2), 2 * std::min(same1, same2));
}

TEST(PlanetLabLatency, SymmetricPairs) {
  PlanetLabLatency model(0.0);
  Rng rng1(5), rng2(5);
  // With identical rng streams, a->b and b->a produce identical delays
  // (the base is symmetric and jitter draws match).
  auto d1 = model.sample(Endpoint{7, 1}, Endpoint{9, 1}, rng1);
  auto d2 = model.sample(Endpoint{9, 1}, Endpoint{7, 1}, rng2);
  EXPECT_EQ(*d1, *d2);
}

TEST(PlanetLabLatency, LossDecisionsDeterministicAcrossSameSeedRuns) {
  // Chaos experiments assert byte-identical same-seed runs; the latency
  // model's per-packet loss draws are part of that contract. Two identical
  // rng streams must produce the identical sequence of (delivered?, delay)
  // outcomes — including which packets are lost.
  PlanetLabLatency model_a(0.10), model_b(0.10);
  Rng rng_a(99), rng_b(99);
  std::size_t losses = 0;
  for (int i = 0; i < 2000; ++i) {
    const Endpoint from{static_cast<std::uint32_t>(i % 17), 1};
    const Endpoint to{static_cast<std::uint32_t>(i % 13 + 100), 1};
    const auto a = model_a.sample(from, to, rng_a);
    const auto b = model_b.sample(from, to, rng_b);
    ASSERT_EQ(a.has_value(), b.has_value()) << "packet " << i;
    if (a.has_value()) {
      ASSERT_EQ(*a, *b) << "packet " << i;
    } else {
      ++losses;
    }
  }
  // Loss actually happened at roughly the configured 10% rate, so the
  // identity check above exercised both branches.
  EXPECT_GT(losses, 100u);
  EXPECT_LT(losses, 400u);
}

TEST(FixedLatency, ExactDelay) {
  FixedLatency model(1234);
  Rng rng(6);
  EXPECT_EQ(*model.sample(Endpoint{1, 1}, Endpoint{2, 1}, rng), 1234u);
}

TEST(MakeLatencyModel, KnownNames) {
  EXPECT_NE(make_latency_model("fixed"), nullptr);
  EXPECT_NE(make_latency_model("cluster"), nullptr);
  EXPECT_NE(make_latency_model("planetlab"), nullptr);
  EXPECT_THROW(make_latency_model("nope"), std::invalid_argument);
}

}  // namespace
}  // namespace whisper::sim

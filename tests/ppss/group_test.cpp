#include "ppss/group.hpp"

#include <gtest/gtest.h>

namespace whisper::ppss {
namespace {

const crypto::RsaKeyPair& group_key() {
  static const crypto::RsaKeyPair kp = [] {
    crypto::Drbg d(55);
    return crypto::RsaKeyPair::generate(512, d);
  }();
  return kp;
}

const GroupId kGroup{77};

TEST(Passport, IssueAndVerify) {
  GroupKeyring ring(kGroup);
  ring.add_epoch(1, group_key().pub);
  Passport p = issue_passport(kGroup, 1, NodeId{5}, group_key());
  EXPECT_TRUE(ring.verify_passport(p));
}

TEST(Passport, WrongNodeRejected) {
  GroupKeyring ring(kGroup);
  ring.add_epoch(1, group_key().pub);
  Passport p = issue_passport(kGroup, 1, NodeId{5}, group_key());
  p.node = NodeId{6};  // forged holder
  EXPECT_FALSE(ring.verify_passport(p));
}

TEST(Passport, UnknownEpochRejected) {
  GroupKeyring ring(kGroup);
  ring.add_epoch(1, group_key().pub);
  Passport p = issue_passport(kGroup, 2, NodeId{5}, group_key());
  EXPECT_FALSE(ring.verify_passport(p));
}

TEST(Passport, WrongGroupKeyRejected) {
  GroupKeyring ring(kGroup);
  crypto::Drbg d(66);
  auto other = crypto::RsaKeyPair::generate(512, d);
  ring.add_epoch(1, other.pub);
  Passport p = issue_passport(kGroup, 1, NodeId{5}, group_key());
  EXPECT_FALSE(ring.verify_passport(p));
}

TEST(Passport, SerializeRoundTrip) {
  Passport p = issue_passport(kGroup, 3, NodeId{5}, group_key());
  Writer w;
  p.serialize(w);
  Reader r(w.data());
  auto back = Passport::deserialize(r);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->node, p.node);
  EXPECT_EQ(back->epoch, p.epoch);
  EXPECT_EQ(back->signature, p.signature);
}

TEST(Accreditation, IssueAndVerify) {
  GroupKeyring ring(kGroup);
  ring.add_epoch(1, group_key().pub);
  Accreditation a = issue_accreditation(kGroup, 1, NodeId{8}, group_key());
  EXPECT_TRUE(ring.verify_accreditation(a));
}

TEST(Accreditation, WrongGroupRejected) {
  GroupKeyring ring(kGroup);
  ring.add_epoch(1, group_key().pub);
  Accreditation a = issue_accreditation(GroupId{123}, 1, NodeId{8}, group_key());
  EXPECT_FALSE(ring.verify_accreditation(a));
}

TEST(Accreditation, AccreditationIsNotAPassport) {
  // The signed messages use distinct domain prefixes, so one cannot stand
  // in for the other even for the same node and epoch.
  GroupKeyring ring(kGroup);
  ring.add_epoch(1, group_key().pub);
  Accreditation a = issue_accreditation(kGroup, 1, NodeId{8}, group_key());
  Passport forged;
  forged.node = a.node;
  forged.epoch = a.epoch;
  forged.signature = a.signature;
  EXPECT_FALSE(ring.verify_passport(forged));
}

TEST(GroupKeyring, EpochHistory) {
  GroupKeyring ring(kGroup);
  EXPECT_EQ(ring.latest_epoch(), 0u);
  ring.add_epoch(1, group_key().pub);
  crypto::Drbg d(67);
  auto second = crypto::RsaKeyPair::generate(512, d);
  ring.add_epoch(2, second.pub);
  EXPECT_EQ(ring.latest_epoch(), 2u);
  EXPECT_EQ(ring.epochs(), 2u);
  // Passports from both epochs verify.
  EXPECT_TRUE(ring.verify_passport(issue_passport(kGroup, 1, NodeId{5}, group_key())));
  EXPECT_TRUE(ring.verify_passport(issue_passport(kGroup, 2, NodeId{5}, second)));
}

TEST(GroupKeyring, KeyForMissingEpoch) {
  GroupKeyring ring(kGroup);
  EXPECT_FALSE(ring.key_for(9).has_value());
}

}  // namespace
}  // namespace whisper::ppss

#include "ppss/ppss.hpp"

#include <gtest/gtest.h>

#include "whisper/testbed.hpp"

namespace whisper::ppss {
namespace {

constexpr GroupId kGroup{1000};

crypto::RsaKeyPair fresh_group_key(std::uint64_t seed) {
  crypto::Drbg d(seed);
  return crypto::RsaKeyPair::generate(512, d);
}

TestbedConfig config(std::size_t n, std::uint64_t seed = 41) {
  TestbedConfig cfg;
  cfg.initial_nodes = n;
  cfg.node.pss.pi_min_public = 3;
  cfg.node.wcl.pi = 3;
  // Faster PPSS cycles keep test wall-clock reasonable.
  cfg.node.ppss.cycle = 30 * net::kSecond;
  cfg.seed = seed;
  return cfg;
}

// Build a testbed with one group of `members` nodes (first member founds).
struct GroupFixture {
  WhisperTestbed tb;
  std::vector<WhisperNode*> members;

  GroupFixture(std::size_t n_nodes, std::size_t n_members, std::uint64_t seed = 41)
      : tb(config(n_nodes, seed)) {
    tb.run_for(6 * net::kMinute);  // warm the substrate
    auto nodes = tb.alive_nodes();
    WhisperNode* founder = nodes[0];
    auto& founder_ppss = founder->create_group(kGroup, fresh_group_key(seed));
    members.push_back(founder);

    for (std::size_t i = 1; i < n_members; ++i) {
      WhisperNode* joiner = nodes[i];
      auto accr = founder_ppss.invite(joiner->id());
      joiner->join_group(kGroup, *accr, founder_ppss.self_descriptor());
      members.push_back(joiner);
      tb.run_for(5 * net::kSecond);
    }
  }
};

TEST(Ppss, FounderIsLeaderWithValidPassport) {
  GroupFixture f(20, 1);
  auto* g = f.members[0]->group(kGroup);
  ASSERT_NE(g, nullptr);
  EXPECT_TRUE(g->is_leader());
  EXPECT_TRUE(g->joined());
  EXPECT_TRUE(g->keyring().verify_passport(g->passport()));
}

TEST(Ppss, JoinersReceivePassports) {
  GroupFixture f(25, 5);
  f.tb.run_for(2 * net::kMinute);
  for (WhisperNode* m : f.members) {
    auto* g = m->group(kGroup);
    ASSERT_NE(g, nullptr);
    EXPECT_TRUE(g->joined()) << m->id().str();
    EXPECT_TRUE(g->keyring().verify_passport(g->passport()));
  }
}

TEST(Ppss, PrivateViewsFillWithMembers) {
  GroupFixture f(30, 8);
  f.tb.run_for(10 * net::kMinute);
  std::unordered_set<NodeId> member_ids;
  for (WhisperNode* m : f.members) member_ids.insert(m->id());
  std::size_t views_ok = 0;
  for (WhisperNode* m : f.members) {
    auto* g = m->group(kGroup);
    if (g->private_view().size() >= 2) ++views_ok;
    // Private views contain only group members.
    for (const auto& e : g->private_view().entries()) {
      EXPECT_TRUE(member_ids.contains(e.id())) << "non-member leaked into private view";
    }
  }
  EXPECT_GE(views_ok, f.members.size() - 1);
}

TEST(Ppss, NonMembersDropGroupTraffic) {
  GroupFixture f(25, 4);
  f.tb.run_for(5 * net::kMinute);
  // Non-member nodes must have no instance and no knowledge of the group.
  for (WhisperNode* n : f.tb.alive_nodes()) {
    const bool is_member =
        std::find(f.members.begin(), f.members.end(), n) != f.members.end();
    if (!is_member) {
      EXPECT_EQ(n->group(kGroup), nullptr);
    }
  }
}

TEST(Ppss, InvalidAccreditationRejected) {
  GroupFixture f(20, 1);
  auto nodes = f.tb.alive_nodes();
  WhisperNode* founder = f.members[0];
  WhisperNode* impostor = nodes[10];
  // Self-made accreditation signed by the impostor's own key.
  Accreditation fake;
  fake.group = kGroup;
  fake.node = impostor->id();
  fake.epoch = 1;
  fake.signature = crypto::rsa_sign(
      impostor->keypair(), GroupKeyring::accreditation_message(kGroup, impostor->id(), 1));
  auto& g = impostor->join_group(kGroup, fake,
                                 founder->group(kGroup)->self_descriptor());
  f.tb.run_for(3 * net::kMinute);
  EXPECT_FALSE(g.joined());
}

TEST(Ppss, AppMessagesFlowBetweenMembers) {
  GroupFixture f(25, 4);
  f.tb.run_for(8 * net::kMinute);
  auto* ga = f.members[1]->group(kGroup);
  auto* gb = f.members[2]->group(kGroup);
  ASSERT_NE(ga, nullptr);
  ASSERT_NE(gb, nullptr);

  Bytes got;
  wcl::RemotePeer got_from;
  gb->on_app_message = [&](const wcl::RemotePeer& from, BytesView p) {
    got_from = from;
    got.assign(p.begin(), p.end());
  };
  ASSERT_TRUE(ga->send_app_to(gb->self_descriptor(), to_bytes("private hello")));
  f.tb.run_for(30 * net::kSecond);
  EXPECT_EQ(got, to_bytes("private hello"));
  EXPECT_EQ(got_from.card.id, f.members[1]->id());
}

TEST(Ppss, AppReplyViaShippedDescriptor) {
  GroupFixture f(25, 4);
  f.tb.run_for(8 * net::kMinute);
  auto* ga = f.members[1]->group(kGroup);
  auto* gb = f.members[3]->group(kGroup);

  Bytes reply_received;
  ga->on_app_message = [&](const wcl::RemotePeer&, BytesView p) {
    reply_received.assign(p.begin(), p.end());
  };
  gb->on_app_message = [&](const wcl::RemotePeer& from, BytesView) {
    gb->send_app_to(from, to_bytes("pong"));
  };
  ga->send_app_to(gb->self_descriptor(), to_bytes("ping"));
  f.tb.run_for(60 * net::kSecond);
  EXPECT_EQ(reply_received, to_bytes("pong"));
}

TEST(Ppss, PersistentPeersRefreshed) {
  GroupFixture f(25, 4);
  f.tb.run_for(8 * net::kMinute);
  auto* ga = f.members[1]->group(kGroup);
  auto* gb = f.members[2]->group(kGroup);
  ga->make_persistent(gb->self_descriptor());
  EXPECT_EQ(ga->pcp_size(), 1u);
  f.tb.run_for(10 * net::kMinute);
  // Still pinned (pings answered), descriptor available.
  EXPECT_EQ(ga->pcp_size(), 1u);
  EXPECT_TRUE(ga->persistent_peer(f.members[2]->id()).has_value());
}

TEST(Ppss, PersistentPeerDroppedWhenDead) {
  GroupFixture f(25, 4);
  f.tb.run_for(8 * net::kMinute);
  auto* ga = f.members[1]->group(kGroup);
  auto* gb = f.members[2]->group(kGroup);
  ga->make_persistent(gb->self_descriptor());
  f.tb.kill_node(f.members[2]->id());
  f.tb.run_for(15 * net::kMinute);
  EXPECT_EQ(ga->pcp_size(), 0u);
}

TEST(Ppss, ExchangeRttReported) {
  GroupFixture f(25, 5);
  std::vector<net::Time> rtts;
  for (WhisperNode* m : f.members) {
    m->group(kGroup)->on_exchange_rtt = [&](net::Time rtt) { rtts.push_back(rtt); };
  }
  f.tb.run_for(10 * net::kMinute);
  EXPECT_GT(rtts.size(), 3u);
  for (net::Time rtt : rtts) {
    EXPECT_GT(rtt, 0u);
    EXPECT_LT(rtt, 15 * net::kSecond);
  }
}

TEST(Ppss, LeaderElectionAfterLeaderDeath) {
  GroupFixture f(30, 6, /*seed=*/43);
  f.tb.run_for(10 * net::kMinute);
  const std::uint64_t epoch_before = f.members[1]->group(kGroup)->leader_epoch();
  // Kill the founding leader.
  f.tb.kill_node(f.members[0]->id());
  // Leader timeout (5 min) + election convergence (3 cycles of 30 s) + slack.
  f.tb.run_for(25 * net::kMinute);
  // Some surviving member becomes leader and rotates the key.
  std::size_t leaders = 0;
  std::uint64_t max_epoch = 0;
  for (std::size_t i = 1; i < f.members.size(); ++i) {
    auto* g = f.members[i]->group(kGroup);
    if (g->is_leader()) ++leaders;
    max_epoch = std::max(max_epoch, g->leader_epoch());
  }
  EXPECT_GE(leaders, 1u);
  EXPECT_GT(max_epoch, epoch_before);
  // The new epoch propagates to (most) members.
  std::size_t upgraded = 0;
  for (std::size_t i = 1; i < f.members.size(); ++i) {
    if (f.members[i]->group(kGroup)->leader_epoch() == max_epoch) ++upgraded;
  }
  EXPECT_GE(upgraded, f.members.size() - 2);
}

TEST(Ppss, MultiGroupIsolation) {
  WhisperTestbed tb(config(30, 47));
  tb.run_for(6 * net::kMinute);
  auto nodes = tb.alive_nodes();
  const GroupId g1{2001}, g2{2002};
  auto& p1 = nodes[0]->create_group(g1, fresh_group_key(1));
  auto& p2 = nodes[1]->create_group(g2, fresh_group_key(2));
  // nodes[2] joins both groups.
  nodes[2]->join_group(g1, *p1.invite(nodes[2]->id()), p1.self_descriptor());
  nodes[2]->join_group(g2, *p2.invite(nodes[2]->id()), p2.self_descriptor());
  // nodes[3] joins only g1.
  nodes[3]->join_group(g1, *p1.invite(nodes[3]->id()), p1.self_descriptor());
  tb.run_for(10 * net::kMinute);

  EXPECT_TRUE(nodes[2]->group(g1)->joined());
  EXPECT_TRUE(nodes[2]->group(g2)->joined());
  EXPECT_TRUE(nodes[3]->group(g1)->joined());
  EXPECT_EQ(nodes[3]->group(g2), nullptr);
  // g1 views never contain g2-only members.
  for (const auto& e : nodes[3]->group(g1)->private_view().entries()) {
    EXPECT_NE(e.id(), nodes[1]->id());
  }
}

}  // namespace
}  // namespace whisper::ppss

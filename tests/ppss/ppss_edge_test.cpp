// PPSS edge cases: join failure paths, malformed payloads, and group
// bookkeeping corners.
#include <gtest/gtest.h>

#include "whisper/testbed.hpp"

namespace whisper::ppss {
namespace {

constexpr GroupId kGroup{70707};

crypto::RsaKeyPair fresh_key(std::uint64_t seed) {
  crypto::Drbg d(seed);
  return crypto::RsaKeyPair::generate(512, d);
}

struct EdgeFixture : ::testing::Test {
  TestbedConfig cfg = [] {
    TestbedConfig c;
    c.initial_nodes = 25;
    c.node.pss.pi_min_public = 3;
    c.node.wcl.pi = 3;
    c.node.ppss.cycle = 30 * net::kSecond;
    c.seed = 808;
    return c;
  }();
  WhisperTestbed tb{cfg};

  void SetUp() override { tb.run_for(6 * net::kMinute); }
};

TEST_F(EdgeFixture, JoinGivesUpAfterRetriesWhenLeaderUnreachable) {
  WhisperNode* joiner = tb.alive_nodes()[5];
  // Entry point descriptor for a node that does not exist.
  wcl::RemotePeer ghost;
  ghost.card.id = NodeId{999999};
  ghost.card.is_public = true;
  ghost.card.addr = Endpoint{0x7f000001, 1};
  ghost.key = joiner->keypair().pub;

  Accreditation accr;  // contents are irrelevant: nothing will answer
  accr.group = kGroup;
  accr.node = joiner->id();
  auto& g = joiner->join_group(kGroup, accr, ghost);
  tb.run_for(5 * net::kMinute);
  EXPECT_FALSE(g.joined());
}

TEST_F(EdgeFixture, NonLeaderDropsJoinRequests) {
  WhisperNode* founder = tb.alive_nodes()[0];
  WhisperNode* member = tb.alive_nodes()[1];
  WhisperNode* joiner = tb.alive_nodes()[2];
  auto& fg = founder->create_group(kGroup, fresh_key(1));
  auto& mg = member->join_group(kGroup, *fg.invite(member->id()), fg.self_descriptor());
  tb.run_for(2 * net::kMinute);
  ASSERT_TRUE(mg.joined());
  ASSERT_FALSE(mg.is_leader());

  // Joining through the non-leader member silently fails (it cannot issue
  // passports; the paper routes joins to leaders).
  auto& jg = joiner->join_group(kGroup, *fg.invite(joiner->id()), mg.self_descriptor());
  tb.run_for(4 * net::kMinute);
  EXPECT_FALSE(jg.joined());
}

TEST_F(EdgeFixture, MalformedGroupPayloadsIgnored) {
  WhisperNode* founder = tb.alive_nodes()[0];
  WhisperNode* member = tb.alive_nodes()[1];
  auto& fg = founder->create_group(kGroup, fresh_key(2));
  auto& mg = member->join_group(kGroup, *fg.invite(member->id()), fg.self_descriptor());
  tb.run_for(2 * net::kMinute);
  ASSERT_TRUE(mg.joined());

  // Random garbage at every PPSS message kind.
  Rng rng(3);
  for (std::uint8_t kind = 0; kind <= 9; ++kind) {
    Bytes garbage(1 + rng.next_below(80));
    rng.fill_bytes(garbage.data(), garbage.size());
    garbage.insert(garbage.begin(), kind);
    mg.handle_payload(garbage);
  }
  mg.handle_payload(Bytes{});
  tb.run_for(net::kMinute);
  // Still operational.
  EXPECT_TRUE(mg.joined());
  Bytes got;
  fg.on_app_message = [&](const wcl::RemotePeer&, BytesView p) {
    got.assign(p.begin(), p.end());
  };
  mg.send_app_to(fg.self_descriptor(), to_bytes("fine"));
  tb.run_for(net::kMinute);
  EXPECT_EQ(got, to_bytes("fine"));
}

TEST_F(EdgeFixture, SendAppToUnknownMemberFails) {
  WhisperNode* founder = tb.alive_nodes()[0];
  auto& fg = founder->create_group(kGroup, fresh_key(4));
  EXPECT_FALSE(fg.send_app(NodeId{123456}, to_bytes("hello?")));
}

TEST_F(EdgeFixture, SendAppBeforeJoiningFails) {
  WhisperNode* founder = tb.alive_nodes()[0];
  WhisperNode* outsider = tb.alive_nodes()[1];
  auto& fg = founder->create_group(kGroup, fresh_key(5));
  // Instance created but join never completes (no request sent at all).
  auto& og = outsider->join_group(kGroup, Accreditation{}, fg.self_descriptor());
  tb.run_for(net::kMinute);
  EXPECT_FALSE(og.joined());
  EXPECT_FALSE(og.send_app_to(fg.self_descriptor(), to_bytes("psst")));
}

TEST_F(EdgeFixture, InviteRequiresLeadership) {
  WhisperNode* founder = tb.alive_nodes()[0];
  WhisperNode* member = tb.alive_nodes()[1];
  auto& fg = founder->create_group(kGroup, fresh_key(6));
  auto& mg = member->join_group(kGroup, *fg.invite(member->id()), fg.self_descriptor());
  tb.run_for(2 * net::kMinute);
  ASSERT_TRUE(mg.joined());
  EXPECT_TRUE(fg.invite(NodeId{42}).has_value());
  EXPECT_FALSE(mg.invite(NodeId{42}).has_value());
}

TEST_F(EdgeFixture, DuplicateJoinIsIdempotent) {
  WhisperNode* founder = tb.alive_nodes()[0];
  WhisperNode* member = tb.alive_nodes()[1];
  auto& fg = founder->create_group(kGroup, fresh_key(7));
  auto accr = *fg.invite(member->id());
  auto& g1 = member->join_group(kGroup, accr, fg.self_descriptor());
  tb.run_for(2 * net::kMinute);
  ASSERT_TRUE(g1.joined());
  // Joining again reuses the same instance and stays joined.
  auto& g2 = member->join_group(kGroup, accr, fg.self_descriptor());
  EXPECT_EQ(&g1, &g2);
  tb.run_for(2 * net::kMinute);
  EXPECT_TRUE(g2.joined());
  EXPECT_EQ(member->group_count(), 1u);
}

}  // namespace
}  // namespace whisper::ppss

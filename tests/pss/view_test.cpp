#include "pss/view.hpp"

#include <gtest/gtest.h>

#include "nylon/pss.hpp"  // PssEntry, the canonical Entry type

namespace whisper::pss {
namespace {

using nylon::PssEntry;

PssEntry entry(std::uint64_t id, bool is_public, std::uint32_t age) {
  PssEntry e;
  e.card.id = NodeId{id};
  e.card.is_public = is_public;
  e.card.addr = Endpoint{static_cast<std::uint32_t>(id), 5000};
  e.age = age;
  return e;
}

Rng& test_rng() {
  static Rng rng(12321);
  return rng;
}

TEST(View, InsertAndFind) {
  View<PssEntry> v(5);
  v.insert(entry(1, true, 0));
  EXPECT_TRUE(v.contains(NodeId{1}));
  EXPECT_FALSE(v.contains(NodeId{2}));
  ASSERT_NE(v.find(NodeId{1}), nullptr);
  EXPECT_EQ(v.find(NodeId{1})->age, 0u);
}

TEST(View, InsertDedupesKeepingYounger) {
  View<PssEntry> v(5);
  v.insert(entry(1, true, 5));
  v.insert(entry(1, true, 2));
  EXPECT_EQ(v.size(), 1u);
  EXPECT_EQ(v.find(NodeId{1})->age, 2u);
  v.insert(entry(1, true, 9));  // older: ignored
  EXPECT_EQ(v.find(NodeId{1})->age, 2u);
}

TEST(View, AgeAllIncrements) {
  View<PssEntry> v(5);
  v.insert(entry(1, true, 0));
  v.insert(entry(2, false, 3));
  v.age_all();
  EXPECT_EQ(v.find(NodeId{1})->age, 1u);
  EXPECT_EQ(v.find(NodeId{2})->age, 4u);
}

TEST(View, OldestSelectsHighestAge) {
  View<PssEntry> v(5);
  EXPECT_EQ(v.oldest(), nullptr);
  v.insert(entry(1, true, 2));
  v.insert(entry(2, false, 7));
  v.insert(entry(3, false, 4));
  EXPECT_EQ(v.oldest()->id(), NodeId{2});
}

TEST(View, RemoveErasesEntry) {
  View<PssEntry> v(5);
  v.insert(entry(1, true, 0));
  v.remove(NodeId{1});
  EXPECT_TRUE(v.empty());
}

TEST(View, RandomSubsetSizeAndMembership) {
  View<PssEntry> v(10);
  for (std::uint64_t i = 1; i <= 8; ++i) v.insert(entry(i, false, 0));
  Rng rng(1);
  auto subset = v.random_subset(4, rng);
  EXPECT_EQ(subset.size(), 4u);
  for (const auto& e : subset) EXPECT_TRUE(v.contains(e.id()));
  // Requesting more than available returns everything.
  EXPECT_EQ(v.random_subset(100, rng).size(), 8u);
}

TEST(View, MergeExcludesSelf) {
  View<PssEntry> v(5);
  std::vector<PssEntry> received{entry(1, true, 0), entry(42, false, 0)};
  v.merge(received, NodeId{42}, 0, test_rng());
  EXPECT_TRUE(v.contains(NodeId{1}));
  EXPECT_FALSE(v.contains(NodeId{42}));
}

TEST(View, UnbiasedTruncationHealsOldestThenEvictsRandomly) {
  View<PssEntry> v(3);
  std::vector<PssEntry> received;
  for (std::uint64_t i = 1; i <= 6; ++i) {
    received.push_back(entry(i, false, static_cast<std::uint32_t>(i)));
  }
  v.merge(received, NodeId{999}, 0, test_rng());
  EXPECT_EQ(v.size(), 3u);
  // Healing drops the kHealing (= 2) oldest entries deterministically...
  EXPECT_FALSE(v.contains(NodeId{6}));
  EXPECT_FALSE(v.contains(NodeId{5}));
  // ...and the remaining eviction is uniform over the rest.
  std::size_t survivors = 0;
  for (std::uint64_t i = 1; i <= 4; ++i) survivors += v.contains(NodeId{i}) ? 1 : 0;
  EXPECT_EQ(survivors, 3u);
}

TEST(View, BiasedTruncationProtectsFreshestPublics) {
  View<PssEntry> v(3);
  std::vector<PssEntry> received{
      entry(1, false, 1), entry(2, false, 2), entry(3, false, 3),
      entry(10, true, 50),  // old P-node: unbiased policy would discard it
      entry(11, true, 60),
  };
  v.merge(received, NodeId{999}, /*pi=*/2, test_rng());
  EXPECT_EQ(v.size(), 3u);
  // Both P-nodes survive despite their age.
  EXPECT_TRUE(v.contains(NodeId{10}));
  EXPECT_TRUE(v.contains(NodeId{11}));
  // Youngest N-node fills the remaining slot.
  EXPECT_TRUE(v.contains(NodeId{1}));
}

TEST(View, BiasedTruncationPiZeroIsUnbiased) {
  View<PssEntry> v(2);
  std::vector<PssEntry> received{entry(1, true, 50), entry(2, false, 1), entry(3, false, 2)};
  v.merge(received, NodeId{999}, 0, test_rng());
  EXPECT_FALSE(v.contains(NodeId{1}));  // old P-node discarded, no protection
}

TEST(View, BiasedTruncationDiscardsExcessPublicFirstOnTies) {
  View<PssEntry> v(2);
  // Same age: the P-node above Π loses to the N-node.
  std::vector<PssEntry> received{entry(1, true, 5), entry(2, false, 5), entry(3, true, 5)};
  v.merge(received, NodeId{999}, /*pi=*/1, test_rng());
  EXPECT_EQ(v.count_public(), 1u);
  EXPECT_TRUE(v.contains(NodeId{2}));
}

TEST(View, BiasedTruncationWithFewerPublicsThanPi) {
  View<PssEntry> v(3);
  std::vector<PssEntry> received{entry(1, true, 9), entry(2, false, 1), entry(3, false, 2),
                                 entry(4, false, 3)};
  v.merge(received, NodeId{999}, /*pi=*/3, test_rng());
  // Only one P-node exists; it is kept, rest filled with youngest N-nodes.
  EXPECT_TRUE(v.contains(NodeId{1}));
  EXPECT_EQ(v.size(), 3u);
}

TEST(View, CapacityNeverExceeded) {
  View<PssEntry> v(4);
  Rng rng(7);
  for (int round = 0; round < 50; ++round) {
    std::vector<PssEntry> received;
    for (int i = 0; i < 10; ++i) {
      received.push_back(entry(rng.next_below(100) + 1, rng.next_bool(0.3),
                               static_cast<std::uint32_t>(rng.next_below(20))));
    }
    v.merge(received, NodeId{999}, 2, test_rng());
    EXPECT_LE(v.size(), 4u);
  }
}

TEST(View, PiInvariantHoldsWhenPublicsAvailable) {
  View<PssEntry> v(5);
  Rng rng(8);
  for (int round = 0; round < 50; ++round) {
    std::vector<PssEntry> received;
    // Always include at least 2 P-nodes among candidates.
    received.push_back(entry(200 + rng.next_below(5), true,
                             static_cast<std::uint32_t>(rng.next_below(30))));
    received.push_back(entry(210 + rng.next_below(5), true,
                             static_cast<std::uint32_t>(rng.next_below(30))));
    for (int i = 0; i < 8; ++i) {
      received.push_back(
          entry(rng.next_below(100) + 1, false, static_cast<std::uint32_t>(rng.next_below(5))));
    }
    v.merge(received, NodeId{999}, 2, test_rng());
    EXPECT_GE(v.count_public(), 2u) << "round " << round;
  }
}

TEST(View, CountPublic) {
  View<PssEntry> v(5);
  v.insert(entry(1, true, 0));
  v.insert(entry(2, false, 0));
  v.insert(entry(3, true, 0));
  EXPECT_EQ(v.count_public(), 2u);
}

}  // namespace
}  // namespace whisper::pss

#include "pss/metrics.hpp"

#include <gtest/gtest.h>

namespace whisper::pss {
namespace {

NodeId n(std::uint64_t v) { return NodeId{v}; }

TEST(Metrics, TriangleHasFullClustering) {
  OverlayGraph g;
  g[n(1)] = {n(2), n(3)};
  g[n(2)] = {n(1), n(3)};
  g[n(3)] = {n(1), n(2)};
  Samples c = clustering_coefficients(g);
  EXPECT_EQ(c.count(), 3u);
  EXPECT_DOUBLE_EQ(c.mean(), 1.0);
}

TEST(Metrics, StarHasZeroClustering) {
  OverlayGraph g;
  g[n(1)] = {n(2), n(3), n(4)};
  g[n(2)] = {};
  g[n(3)] = {};
  g[n(4)] = {};
  Samples c = clustering_coefficients(g);
  EXPECT_DOUBLE_EQ(c.mean(), 0.0);
}

TEST(Metrics, PartialClustering) {
  OverlayGraph g;
  // 1 -> {2,3,4}; only 2-3 connected: 1 of 3 pairs.
  g[n(1)] = {n(2), n(3), n(4)};
  g[n(2)] = {n(3)};
  g[n(3)] = {};
  g[n(4)] = {};
  Samples c = clustering_coefficients(g);
  std::vector<double> vals = c.values();
  std::sort(vals.begin(), vals.end());
  EXPECT_DOUBLE_EQ(vals.back(), 1.0 / 3.0);
}

TEST(Metrics, EdgeEitherDirectionCounts) {
  OverlayGraph g;
  g[n(1)] = {n(2), n(3)};
  g[n(2)] = {};
  g[n(3)] = {n(2)};  // 3 -> 2 closes the pair
  Samples c = clustering_coefficients(g);
  std::vector<double> vals = c.values();
  std::sort(vals.begin(), vals.end());
  EXPECT_DOUBLE_EQ(vals.back(), 1.0);
}

TEST(Metrics, InDegreesCounted) {
  OverlayGraph g;
  g[n(1)] = {n(2), n(3)};
  g[n(2)] = {n(3)};
  g[n(3)] = {};
  auto deg = in_degrees(g);
  EXPECT_EQ(deg[n(1)], 0);
  EXPECT_EQ(deg[n(2)], 1);
  EXPECT_EQ(deg[n(3)], 2);
}

TEST(Metrics, ReachableFractionFullRing) {
  OverlayGraph g;
  for (std::uint64_t i = 0; i < 10; ++i) g[n(i)] = {n((i + 1) % 10)};
  EXPECT_DOUBLE_EQ(reachable_fraction(g, n(0)), 1.0);
}

TEST(Metrics, ReachableFractionPartitioned) {
  OverlayGraph g;
  g[n(1)] = {n(2)};
  g[n(2)] = {n(1)};
  g[n(3)] = {n(4)};
  g[n(4)] = {n(3)};
  EXPECT_DOUBLE_EQ(reachable_fraction(g, n(1)), 0.5);
}

TEST(Metrics, EmptyGraphSafe) {
  OverlayGraph g;
  EXPECT_DOUBLE_EQ(reachable_fraction(g, n(1)), 0.0);
  EXPECT_TRUE(clustering_coefficients(g).empty());
}

}  // namespace
}  // namespace whisper::pss

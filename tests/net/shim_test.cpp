// NAT/impairment shim on real sockets (DESIGN.md §16): the determinism
// contract (same seed -> identical decision stream), pass-through purity
// (shim with no profile puts byte-identical frames on the wire), the NAT
// rule engine enforced through live mapping sockets (translation, cone
// filtering, symmetric per-destination ports, lease expiry and refresh,
// reboot recovery), and the traversal protocol re-proven end to end over
// the shim: registration retry under loss, the live 4x4 NAT pair matrix
// with hole punching exactly where device semantics allow it.
#include "net/shim.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

#include "net/udp.hpp"
#include "nylon/transport.hpp"

namespace whisper::net {
namespace {

using nat::NatType;

constexpr Time kTick = 5 * kMillisecond;

Bytes bytes_of(const char* s) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(s);
  return Bytes(p, p + std::strlen(s));
}

/// Drive `backend` until `done()` or `budget` of wall time elapses.
template <typename DoneFn>
void poll_until(UdpBackend& backend, Time budget, DoneFn done) {
  const Time deadline = backend.now() + budget;
  while (!done() && backend.now() < deadline) backend.poll(kTick);
}

ShimConfig shim_config(UdpBackend& backend, std::uint64_t seed) {
  ShimConfig cfg;
  cfg.seed = seed;
  cfg.reserve = [&backend](std::uint32_t bind_ip) {
    return backend.reserve_endpoint_on(bind_ip);
  };
  return cfg;
}

// --- Impair spec parsing -------------------------------------------------

TEST(ParseImpair, AcceptsFullSpecAndRejectsGarbage) {
  auto c = parse_impair("loss:0.05, dup:0.01, reorder:0.02, delay:20ms~10ms, "
                        "rate:1mbps");
  ASSERT_TRUE(c);
  EXPECT_DOUBLE_EQ(c->loss, 0.05);
  EXPECT_DOUBLE_EQ(c->duplicate, 0.01);
  EXPECT_DOUBLE_EQ(c->reorder, 0.02);
  EXPECT_EQ(c->delay, 20 * kMillisecond);
  EXPECT_EQ(c->jitter, 10 * kMillisecond);
  EXPECT_EQ(c->rate_bps, 1'000'000u);
  EXPECT_TRUE(c->any());

  EXPECT_TRUE(parse_impair(""));
  EXPECT_FALSE(parse_impair("")->any());
  EXPECT_TRUE(parse_impair("delay:250us"));
  EXPECT_EQ(parse_impair("delay:250us")->delay, 250u);

  std::string err;
  EXPECT_FALSE(parse_impair("loss:2", &err));   // probability out of range
  EXPECT_FALSE(parse_impair("loss", &err));     // no value
  EXPECT_FALSE(parse_impair("warp:0.5", &err)); // unknown key
  EXPECT_FALSE(err.empty());
}

// --- Determinism contract ------------------------------------------------

// Two same-seed shims sample identical drop/dup/delay schedules for the
// same send sequence; a different seed diverges.
TEST(ShimDeterminism, SameSeedSameDecisionStream) {
  const auto run = [](std::uint64_t seed) {
    UdpBackend backend;
    ShimConfig cfg = shim_config(backend, seed);
    cfg.record_decisions = true;
    ShimStack shim(backend, backend, std::move(cfg));

    auto src = backend.reserve_endpoint();
    auto dst = backend.reserve_endpoint();
    EXPECT_TRUE(src && dst);
    ShimProfile profile;
    profile.impair.loss = 0.3;
    profile.impair.duplicate = 0.2;
    profile.impair.delay = 5 * kMillisecond;
    profile.impair.jitter = 3 * kMillisecond;
    shim.set_profile(*src, profile);
    shim.attach(*src, [](const Datagram&) {});
    shim.attach(*dst, [](const Datagram&) {});
    for (int i = 0; i < 64; ++i) {
      shim.send(*src, *dst, bytes_of("x"), Proto::kApp);
    }
    return shim.decisions();
  };

  const auto a = run(1234);
  const auto b = run(1234);
  const auto c = run(999);
  ASSERT_EQ(a.size(), 64u);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

// With no profile the shim's wire output is byte-identical to the bare
// backend: the interposer earns its "disabled == absent" guarantee.
TEST(ShimPassthrough, TappedFramesByteIdenticalToBareBackend) {
  const auto run = [](bool shimmed) {
    UdpConfig config;
    Bytes tapped;
    config.frame_tap = [&](BytesView frame, bool outbound) {
      if (outbound) tapped.insert(tapped.end(), frame.begin(), frame.end());
    };
    UdpBackend backend(config);
    ShimStack shim(backend, backend, ShimConfig{});
    Stack& stack = shimmed ? static_cast<Stack&>(shim) : backend;

    auto a = backend.reserve_endpoint();
    auto b = backend.reserve_endpoint();
    EXPECT_TRUE(a && b);
    int received = 0;
    stack.attach(*a, [](const Datagram&) {});
    stack.attach(*b, [&](const Datagram&) { ++received; });
    EXPECT_TRUE(stack.send(*a, *b, bytes_of("as-if-absent"), Proto::kWcl));
    poll_until(backend, 2 * kSecond, [&] { return received >= 1; });
    EXPECT_EQ(received, 1);
    return tapped;
  };

  const Bytes with_shim = run(true);
  const Bytes without = run(false);
  ASSERT_FALSE(with_shim.empty());
  EXPECT_EQ(with_shim, without);
}

// --- NAT rule engine on live sockets -------------------------------------

// Harness: one natted endpoint behind a device on its own loopback IP,
// plus public peers bound directly on the backend.
struct NattedNode {
  Endpoint internal;
  std::vector<Datagram> got;
};

TEST(ShimNat, OutboundTranslatesSourceAndInboundMapsBack) {
  UdpBackend backend;
  ShimStack shim(backend, backend, shim_config(backend, 7));

  const Endpoint internal{0x0A000001, 40000};  // synthetic, never bound
  const std::uint32_t device_ip = 0x7F030001;  // 127.3.0.1
  ShimProfile profile;
  profile.nat = NatType::kPortRestrictedCone;
  profile.device_ip = device_ip;
  shim.set_profile(internal, profile);

  std::vector<Datagram> at_a;
  shim.attach(internal, [&](const Datagram& d) { at_a.push_back(d); });
  auto b = backend.reserve_endpoint();
  ASSERT_TRUE(b);
  std::vector<Datagram> at_b;
  shim.attach(*b, [&](const Datagram& d) { at_b.push_back(d); });

  ASSERT_TRUE(shim.send(internal, *b, bytes_of("out"), Proto::kApp));
  poll_until(backend, 2 * kSecond, [&] { return !at_b.empty(); });
  ASSERT_EQ(at_b.size(), 1u);
  // The peer observes the device's external mapping, never the internal
  // address.
  EXPECT_EQ(at_b[0].src.ip, device_ip);
  EXPECT_NE(at_b[0].src, internal);
  EXPECT_EQ(shim.nat_mappings_created(), 1u);
  EXPECT_EQ(shim.mappings_active(), 1u);
  EXPECT_EQ(shim.owner_of(at_b[0].src), internal);

  // Reply to the mapping: translated back to the internal endpoint.
  ASSERT_TRUE(shim.send(*b, at_b[0].src, bytes_of("back"), Proto::kApp));
  poll_until(backend, 2 * kSecond, [&] { return !at_a.empty(); });
  ASSERT_EQ(at_a.size(), 1u);
  EXPECT_EQ(at_a[0].payload, bytes_of("back"));
  EXPECT_EQ(at_a[0].dst, internal);
}

TEST(ShimNat, ConeFilteringDecidesWhoGetsIn) {
  for (const NatType type : {NatType::kFullCone, NatType::kPortRestrictedCone}) {
    UdpBackend backend;
    ShimStack shim(backend, backend, shim_config(backend, 7));

    const Endpoint internal{0x0A000001, 40000};
    ShimProfile profile;
    profile.nat = type;
    profile.device_ip = 0x7F030001;
    shim.set_profile(internal, profile);

    int at_a = 0;
    shim.attach(internal, [&](const Datagram&) { ++at_a; });
    auto b = backend.reserve_endpoint();
    auto stranger = backend.reserve_endpoint();
    ASSERT_TRUE(b && stranger);
    std::vector<Datagram> at_b;
    shim.attach(*b, [&](const Datagram& d) { at_b.push_back(d); });
    shim.attach(*stranger, [](const Datagram&) {});

    // A talks to b only; the stranger then pokes A's mapping.
    ASSERT_TRUE(shim.send(internal, *b, bytes_of("hi"), Proto::kApp));
    poll_until(backend, 2 * kSecond, [&] { return !at_b.empty(); });
    ASSERT_EQ(at_b.size(), 1u);
    const Endpoint mapping = at_b[0].src;
    ASSERT_TRUE(shim.send(*stranger, mapping, bytes_of("knock"), Proto::kApp));

    if (type == NatType::kFullCone) {
      // Full cone: anyone may use the mapping.
      poll_until(backend, 2 * kSecond, [&] { return at_a >= 1; });
      EXPECT_EQ(at_a, 1) << nat::nat_type_name(type);
      EXPECT_EQ(shim.nat_filtered(), 0u);
    } else {
      // Port-restricted: only endpoints A has sent to get through.
      poll_until(backend, 2 * kSecond, [&] { return shim.nat_filtered() >= 1; });
      EXPECT_EQ(shim.nat_filtered(), 1u) << nat::nat_type_name(type);
      EXPECT_EQ(at_a, 0);
    }
  }
}

TEST(ShimNat, SymmetricAllocatesDistinctPortPerDestination) {
  UdpBackend backend;
  ShimStack shim(backend, backend, shim_config(backend, 7));

  const Endpoint internal{0x0A000001, 40000};
  ShimProfile profile;
  profile.nat = NatType::kSymmetric;
  profile.device_ip = 0x7F030001;
  shim.set_profile(internal, profile);
  shim.attach(internal, [](const Datagram&) {});

  auto b = backend.reserve_endpoint();
  auto c = backend.reserve_endpoint();
  ASSERT_TRUE(b && c);
  std::set<std::uint16_t> seen_ports;
  shim.attach(*b, [&](const Datagram& d) { seen_ports.insert(d.src.port); });
  shim.attach(*c, [&](const Datagram& d) { seen_ports.insert(d.src.port); });

  ASSERT_TRUE(shim.send(internal, *b, bytes_of("1"), Proto::kApp));
  ASSERT_TRUE(shim.send(internal, *c, bytes_of("2"), Proto::kApp));
  poll_until(backend, 2 * kSecond, [&] { return seen_ports.size() >= 2; });
  // Per-destination mappings: two sockets, two distinct external ports.
  EXPECT_EQ(seen_ports.size(), 2u);
  EXPECT_EQ(shim.nat_mappings_created(), 2u);
  EXPECT_EQ(shim.mappings_active(), 2u);
}

TEST(ShimNat, LeaseExpiryClosesMappingAndTrafficRefreshesIt) {
  UdpBackend backend;
  ShimConfig cfg = shim_config(backend, 7);
  cfg.nat.lease = 150 * kMillisecond;
  ShimStack shim(backend, backend, std::move(cfg));

  const Endpoint internal{0x0A000001, 40000};
  ShimProfile profile;
  profile.nat = NatType::kPortRestrictedCone;
  profile.device_ip = 0x7F030001;
  shim.set_profile(internal, profile);
  int at_a = 0;
  shim.attach(internal, [&](const Datagram&) { ++at_a; });
  auto b = backend.reserve_endpoint();
  ASSERT_TRUE(b);
  std::vector<Datagram> at_b;
  shim.attach(*b, [&](const Datagram& d) { at_b.push_back(d); });

  ASSERT_TRUE(shim.send(internal, *b, bytes_of("open"), Proto::kApp));
  poll_until(backend, 2 * kSecond, [&] { return !at_b.empty(); });
  ASSERT_EQ(at_b.size(), 1u);
  const Endpoint mapping = at_b[0].src;

  // Outbound traffic inside the lease keeps the mapping alive and on the
  // same external port (refresh, not reallocation).
  for (int i = 0; i < 4; ++i) {
    poll_until(backend, 80 * kMillisecond, [] { return false; });
    ASSERT_TRUE(shim.send(internal, *b, bytes_of("keep"), Proto::kApp));
  }
  poll_until(backend, 2 * kSecond, [&] { return at_b.size() >= 5; });
  ASSERT_EQ(at_b.size(), 5u);
  EXPECT_EQ(at_b.back().src, mapping);
  EXPECT_EQ(shim.nat_expired(), 0u);
  EXPECT_EQ(shim.nat_mappings_created(), 1u);

  // Now go quiet past the lease: the mapping expires and its socket
  // closes, so inbound to the old external address dies at the device.
  poll_until(backend, 400 * kMillisecond,
             [&] { return shim.nat_expired() >= 1; });
  EXPECT_EQ(shim.nat_expired(), 1u);
  EXPECT_EQ(shim.mappings_active(), 0u);
  const int before = at_a;
  shim.send(*b, mapping, bytes_of("too-late"), Proto::kApp);
  poll_until(backend, 200 * kMillisecond, [] { return false; });
  EXPECT_EQ(at_a, before);

  // The next outbound opens a fresh mapping and traffic flows again.
  ASSERT_TRUE(shim.send(internal, *b, bytes_of("again"), Proto::kApp));
  poll_until(backend, 2 * kSecond, [&] { return at_b.size() >= 6; });
  ASSERT_EQ(at_b.size(), 6u);
  EXPECT_EQ(shim.nat_mappings_created(), 2u);
}

TEST(ShimNat, RebootWipesMappingsAndNextSendRecovers) {
  UdpBackend backend;
  ShimStack shim(backend, backend, shim_config(backend, 7));

  const Endpoint internal{0x0A000001, 40000};
  ShimProfile profile;
  profile.nat = NatType::kSymmetric;
  profile.device_ip = 0x7F030001;
  shim.set_profile(internal, profile);
  shim.attach(internal, [](const Datagram&) {});
  auto b = backend.reserve_endpoint();
  ASSERT_TRUE(b);
  std::vector<Datagram> at_b;
  shim.attach(*b, [&](const Datagram& d) { at_b.push_back(d); });

  ASSERT_TRUE(shim.send(internal, *b, bytes_of("pre"), Proto::kApp));
  poll_until(backend, 2 * kSecond, [&] { return !at_b.empty(); });
  ASSERT_EQ(at_b.size(), 1u);

  EXPECT_EQ(shim.nat_reboot(), 1u);
  EXPECT_EQ(shim.mappings_active(), 0u);
  EXPECT_EQ(shim.nat_reboots(), 1u);

  ASSERT_TRUE(shim.send(internal, *b, bytes_of("post"), Proto::kApp));
  poll_until(backend, 2 * kSecond, [&] { return at_b.size() >= 2; });
  ASSERT_EQ(at_b.size(), 2u);
  EXPECT_EQ(shim.nat_mappings_created(), 2u);
  EXPECT_EQ(shim.mappings_active(), 1u);
}

TEST(ShimImpair, TotalLossDeliversNothingAndCountsDrops) {
  UdpBackend backend;
  ShimStack shim(backend, backend, shim_config(backend, 7));
  auto a = backend.reserve_endpoint();
  auto b = backend.reserve_endpoint();
  ASSERT_TRUE(a && b);
  ShimProfile profile;
  profile.impair.loss = 1.0;
  shim.set_profile(*a, profile);
  int received = 0;
  shim.attach(*a, [](const Datagram&) {});
  shim.attach(*b, [&](const Datagram&) { ++received; });
  for (int i = 0; i < 16; ++i) {
    EXPECT_TRUE(shim.send(*a, *b, bytes_of("void"), Proto::kApp));
  }
  poll_until(backend, 200 * kMillisecond, [] { return false; });
  EXPECT_EQ(received, 0);
  EXPECT_EQ(shim.impair_dropped(), 16u);
  EXPECT_EQ(backend.packets_sent(), 0u);
}

// --- Traversal over the shim: live transports ----------------------------

/// Transport timing scaled for wall-clock tests (mirrors
/// realtime_node_config()'s transport block).
nylon::TransportConfig fast_transport() {
  nylon::TransportConfig cfg;
  cfg.keepalive_period = kSecond;
  cfg.registration_ttl = 5 * kSecond;
  cfg.probe_min_interval = 150 * kMillisecond;
  cfg.route_ttl = 10 * kSecond;
  cfg.register_retry_initial = 100 * kMillisecond;
  return cfg;
}

/// A relay plus two (possibly natted) transports wired through one shim.
struct LivePair {
  UdpBackend backend;
  ShimStack shim;
  std::unique_ptr<nylon::Transport> relay;
  std::unique_ptr<nylon::Transport> a;
  std::unique_ptr<nylon::Transport> b;

  explicit LivePair(std::uint64_t seed, NatType type_a, NatType type_b,
                    ImpairConfig impair_a = {})
      : shim(backend, backend, shim_config(backend, seed)) {
    relay = add(1, NatType::kNone, {});
    a = add(2, type_a, impair_a);
    b = add(3, type_b, {});
    if (type_a != NatType::kNone) a->set_relay(relay->self_card());
    if (type_b != NatType::kNone) b->set_relay(relay->self_card());
  }

  std::unique_ptr<nylon::Transport> add(std::uint64_t id, NatType type,
                                        ImpairConfig impair) {
    Endpoint ep;
    if (type == NatType::kNone && !impair.any()) {
      const auto reserved = backend.reserve_endpoint();
      EXPECT_TRUE(reserved) << backend.last_error();
      ep = *reserved;
    } else if (type == NatType::kNone) {
      const auto reserved = backend.reserve_endpoint();
      EXPECT_TRUE(reserved) << backend.last_error();
      ep = *reserved;
      ShimProfile profile;
      profile.impair = impair;
      shim.set_profile(ep, profile);
    } else {
      ep = Endpoint{0x0A000000u + static_cast<std::uint32_t>(id), 40000};
      ShimProfile profile;
      profile.nat = type;
      profile.device_ip = 0x7F030000u + static_cast<std::uint32_t>(id);
      profile.impair = impair;
      shim.set_profile(ep, profile);
    }
    return std::make_unique<nylon::Transport>(backend, shim, NodeId{id}, ep,
                                              type == NatType::kNone,
                                              fast_transport());
  }

  void run_for(Time d) {
    const Time deadline = backend.now() + d;
    while (backend.now() < deadline) backend.poll(kTick);
  }
};

// Live 4x4 matrix: every NAT pairing delivers bidirectionally over real
// sockets, and punching converges exactly where device semantics allow.
class LiveNatMatrix
    : public ::testing::TestWithParam<std::tuple<NatType, NatType>> {};

TEST_P(LiveNatMatrix, DeliveryAlwaysPunchingWhereAllowed) {
  const auto [type_a, type_b] = GetParam();
  LivePair mesh(41, type_a, type_b);
  mesh.run_for(300 * kMillisecond);  // registration settles

  int a_got = 0, b_got = 0;
  mesh.a->register_handler(nylon::kTagApp,
                           [&](NodeId, BytesView) { ++a_got; });
  mesh.b->register_handler(nylon::kTagApp,
                           [&](NodeId, BytesView) { ++b_got; });

  // Several rounds in both directions; punching may reroute midway and
  // every message must still arrive.
  const int rounds = 6;
  for (int round = 0; round < rounds; ++round) {
    EXPECT_TRUE(
        mesh.a->send(mesh.b->self_card(), nylon::kTagApp, Bytes{1}, Proto::kApp));
    EXPECT_TRUE(
        mesh.b->send(mesh.a->self_card(), nylon::kTagApp, Bytes{2}, Proto::kApp));
    poll_until(mesh.backend, kSecond,
               [&] { return a_got > round && b_got > round; });
  }
  EXPECT_EQ(a_got, rounds);
  EXPECT_EQ(b_got, rounds);

  const auto is_cone = [](NatType t) {
    return t == NatType::kFullCone || t == NatType::kRestrictedCone ||
           t == NatType::kPortRestrictedCone;
  };
  if ((is_cone(type_a) || type_a == NatType::kNone) &&
      (is_cone(type_b) || type_b == NatType::kNone)) {
    // Cone/cone (or involving a public node): direct routes converge both
    // ways — give punching a little extra wall time if it hasn't yet.
    poll_until(mesh.backend, 2 * kSecond, [&] {
      return mesh.a->can_send_direct(NodeId{3}) &&
             mesh.b->can_send_direct(NodeId{2});
    });
    EXPECT_TRUE(mesh.a->can_send_direct(NodeId{3}));
    EXPECT_TRUE(mesh.b->can_send_direct(NodeId{2}));
  }
  if (type_a == NatType::kSymmetric && type_b == NatType::kSymmetric) {
    // Symmetric pairs can never punch: per-destination external ports.
    EXPECT_FALSE(mesh.a->can_send_direct(NodeId{3}));
    EXPECT_FALSE(mesh.b->can_send_direct(NodeId{2}));
    EXPECT_GT(mesh.a->sends_relayed(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, LiveNatMatrix,
    ::testing::Combine(::testing::Values(NatType::kNone, NatType::kFullCone,
                                         NatType::kPortRestrictedCone,
                                         NatType::kSymmetric),
                       ::testing::Values(NatType::kNone, NatType::kFullCone,
                                         NatType::kPortRestrictedCone,
                                         NatType::kSymmetric)),
    [](const ::testing::TestParamInfo<std::tuple<NatType, NatType>>& info) {
      return std::string(nat::nat_type_name(std::get<0>(info.param))) + "_to_" +
             nat::nat_type_name(std::get<1>(info.param));
    });

// Registration retry under heavy egress loss: the initial register is the
// one packet between a natted node and unreachability; the fast retry path
// must land it anyway.
TEST(LiveTraversal, RegistrationSurvivesHeavyLoss) {
  ImpairConfig impair;
  impair.loss = 0.5;
  LivePair mesh(1203, NatType::kPortRestrictedCone, NatType::kNone, impair);
  poll_until(mesh.backend, 10 * kSecond, [&] { return mesh.a->registered(); });
  EXPECT_TRUE(mesh.a->registered());

  // And data still flows both ways through the registered mapping.
  int a_got = 0, b_got = 0;
  mesh.a->register_handler(nylon::kTagApp, [&](NodeId, BytesView) { ++a_got; });
  mesh.b->register_handler(nylon::kTagApp, [&](NodeId, BytesView) { ++b_got; });
  for (int round = 0; round < 8 && (a_got == 0 || b_got == 0); ++round) {
    mesh.a->send(mesh.b->self_card(), nylon::kTagApp, Bytes{1}, Proto::kApp);
    mesh.b->send(mesh.a->self_card(), nylon::kTagApp, Bytes{2}, Proto::kApp);
    poll_until(mesh.backend, kSecond, [&] { return a_got > 0 && b_got > 0; });
  }
  EXPECT_GT(a_got, 0);
  EXPECT_GT(b_got, 0);
  EXPECT_GT(mesh.shim.impair_dropped(), 0u);  // loss really bit
}

// Mapping lease shorter than the keepalive period: the mapping expires
// between keepalives, and the transport's next keepalive re-opens it —
// delivery keeps working across the expiry.
TEST(LiveTraversal, MappingExpiryIsRefreshedByKeepalives) {
  UdpBackend backend;
  ShimConfig cfg;
  cfg.seed = 78;
  cfg.nat.lease = 400 * kMillisecond;
  cfg.reserve = [&backend](std::uint32_t bind_ip) {
    return backend.reserve_endpoint_on(bind_ip);
  };
  ShimStack shim(backend, backend, std::move(cfg));
  const auto relay_ep = backend.reserve_endpoint();
  ASSERT_TRUE(relay_ep);
  nylon::TransportConfig tcfg = fast_transport();
  tcfg.keepalive_period = kSecond;  // > lease: every keepalive reopens
  nylon::Transport relay(backend, shim, NodeId{1}, *relay_ep, true, tcfg);
  const Endpoint internal{0x0A000002, 40000};
  ShimProfile profile;
  profile.nat = NatType::kPortRestrictedCone;
  profile.device_ip = 0x7F030002;
  shim.set_profile(internal, profile);
  nylon::Transport a(backend, shim, NodeId{2}, internal, false, tcfg);
  a.set_relay(relay.self_card());

  int relay_got = 0;
  relay.register_handler(nylon::kTagApp, [&](NodeId, BytesView) { ++relay_got; });
  const Time deadline = backend.now() + 4 * kSecond;
  while (backend.now() < deadline) backend.poll(kTick);

  // Mappings expired at least once and were re-created by later
  // keepalives; the node is still registered at the end.
  EXPECT_GE(shim.nat_expired(), 1u);
  EXPECT_GT(shim.nat_mappings_created(), 1u);  // re-opened after expiry
  EXPECT_TRUE(a.registered());
  a.send(relay.self_card(), nylon::kTagApp, Bytes{9}, Proto::kApp);
  poll_until(backend, 2 * kSecond, [&] { return relay_got >= 1; });
  EXPECT_GE(relay_got, 1);
}

}  // namespace
}  // namespace whisper::net

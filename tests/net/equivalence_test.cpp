// Cross-backend equivalence: the quickstart scenario — bootstrap a mesh,
// found a private group, invite a member, exchange onion-routed
// application messages — run once on the deterministic simulator and once
// on the real UDP/epoll backend over loopback. The protocol stack is the
// same code against the same SPI; this test pins the observable outcome:
// identical delivered payload bytes and identical group membership.
#include <gtest/gtest.h>

#include <vector>

#include "net/sim_backend.hpp"
#include "whisper/realnet.hpp"
#include "whisper/testbed.hpp"

namespace whisper {
namespace {

constexpr std::size_t kNodes = 8;

struct ScenarioOutcome {
  bool alice_joined = false;
  bool bob_joined = false;
  bool passport_ok = false;
  std::vector<Bytes> alice_got;
  std::vector<Bytes> bob_got;
};

/// The quickstart exchange against any pair of booted nodes. `run`
/// advances the backend (virtual time under sim, wall time under UDP).
template <typename RunFn>
ScenarioOutcome run_scenario(WhisperNode& alice, WhisperNode& bob, RunFn run) {
  ScenarioOutcome out;
  const GroupId group{1};
  crypto::Drbg drbg(42);
  ppss::Ppss& alice_group =
      alice.create_group(group, crypto::RsaKeyPair::generate(512, drbg));
  auto invitation = alice_group.invite(bob.id());
  if (!invitation) return out;
  ppss::Ppss& bob_group =
      bob.join_group(group, *invitation, alice_group.self_descriptor());
  run(3 * net::kSecond);

  bob_group.on_app_message = [&](const wcl::RemotePeer& from, BytesView p) {
    out.bob_got.emplace_back(p.begin(), p.end());
    bob_group.send_app_to(from, to_bytes("psst! got it."));
  };
  alice_group.on_app_message = [&](const wcl::RemotePeer&, BytesView p) {
    out.alice_got.emplace_back(p.begin(), p.end());
  };
  alice_group.send_app_to(bob_group.self_descriptor(),
                          to_bytes("meet at the usual place"));
  run(4 * net::kSecond);

  out.alice_joined = alice_group.joined();
  out.bob_joined = bob_group.joined();
  out.passport_ok = bob_group.keyring().verify_passport(bob_group.passport());
  return out;
}

ScenarioOutcome run_on_simulator() {
  TestbedConfig cfg;
  cfg.initial_nodes = kNodes;
  cfg.natted_fraction = 0;  // loopback has no NAT; keep the meshes alike
  cfg.latency = "cluster";
  cfg.node = realtime_node_config();
  cfg.seed = 7;
  WhisperTestbed tb(cfg);
  tb.run_for(5 * net::kSecond);
  auto nodes = tb.alive_nodes();
  return run_scenario(*nodes[0], *nodes[1],
                      [&](net::Time d) { tb.run_for(d); });
}

ScenarioOutcome run_on_udp() {
  UdpMesh mesh;
  for (std::size_t i = 0; i < kNodes; ++i) {
    WhisperNode* n = mesh.spawn_node();
    EXPECT_NE(n, nullptr) << mesh.backend().last_error();
    if (n == nullptr) return {};
  }
  mesh.run_for(5 * net::kSecond);
  auto nodes = mesh.nodes();
  return run_scenario(*nodes[0], *nodes[1],
                      [&](net::Time d) { mesh.run_for(d); });
}

TEST(CrossBackendEquivalence, QuickstartDeliversIdenticalBytesAndMembership) {
  const ScenarioOutcome sim = run_on_simulator();
  const ScenarioOutcome udp = run_on_udp();

  // Membership converges identically.
  EXPECT_TRUE(sim.alice_joined);
  EXPECT_TRUE(sim.bob_joined);
  EXPECT_TRUE(sim.passport_ok);
  EXPECT_EQ(sim.alice_joined, udp.alice_joined);
  EXPECT_EQ(sim.bob_joined, udp.bob_joined);
  EXPECT_EQ(sim.passport_ok, udp.passport_ok);

  // The delivered application payloads are byte-identical across backends.
  ASSERT_EQ(sim.bob_got.size(), 1u);
  ASSERT_EQ(sim.alice_got.size(), 1u);
  EXPECT_EQ(sim.bob_got, udp.bob_got);
  EXPECT_EQ(sim.alice_got, udp.alice_got);
  EXPECT_EQ(sim.bob_got[0], to_bytes("meet at the usual place"));
  EXPECT_EQ(sim.alice_got[0], to_bytes("psst! got it."));
}

}  // namespace
}  // namespace whisper

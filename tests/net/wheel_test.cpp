// Unit tests for the monotonic timer wheel behind the UDP backend: expiry
// ordering, O(1) slot/generation cancellation, stale-id safety, and
// re-arming from inside callbacks.
#include "net/wheel.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace whisper::net {
namespace {

TEST(TimerWheel, FiresInDeadlineOrder) {
  TimerWheel wheel;
  std::vector<int> order;
  wheel.schedule(300, [&] { order.push_back(3); });
  wheel.schedule(100, [&] { order.push_back(1); });
  wheel.schedule(200, [&] { order.push_back(2); });
  EXPECT_EQ(wheel.advance(1000), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(TimerWheel, SameDeadlineFiresInArmOrder) {
  TimerWheel wheel;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    wheel.schedule(50, [&order, i] { order.push_back(i); });
  }
  wheel.advance(50);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(TimerWheel, AdvanceStopsAtNow) {
  TimerWheel wheel;
  int fired = 0;
  wheel.schedule(100, [&] { ++fired; });
  wheel.schedule(101, [&] { ++fired; });
  EXPECT_EQ(wheel.advance(100), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(wheel.pending(), 1u);
  EXPECT_EQ(wheel.advance(101), 1u);
  EXPECT_EQ(fired, 2);
}

TEST(TimerWheel, CancelPreventsFiring) {
  TimerWheel wheel;
  int fired = 0;
  const TimerId a = wheel.schedule(10, [&] { ++fired; });
  const TimerId b = wheel.schedule(20, [&] { ++fired; });
  ASSERT_NE(a, 0u);
  ASSERT_NE(b, 0u);
  ASSERT_NE(a, b);
  wheel.cancel(a);
  EXPECT_EQ(wheel.pending(), 1u);
  wheel.advance(100);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(wheel.cancelled(), 1u);
  EXPECT_EQ(wheel.fired(), 1u);
}

TEST(TimerWheel, StaleIdsAreHarmless) {
  TimerWheel wheel;
  int fired = 0;
  const TimerId a = wheel.schedule(10, [&] { ++fired; });
  wheel.advance(10);  // a fires; its slot retires
  wheel.cancel(a);    // stale: no-op
  // The slot is recycled for b under a new generation — cancelling the old
  // id again must not disturb the new occupant.
  const TimerId b = wheel.schedule(20, [&] { ++fired; });
  EXPECT_NE(a, b);
  wheel.cancel(a);
  wheel.cancel(12345678u);  // never-issued id
  wheel.cancel(0);          // the "no timer" sentinel
  wheel.advance(20);
  EXPECT_EQ(fired, 2);
}

TEST(TimerWheel, DoubleCancelCountsOnce) {
  TimerWheel wheel;
  const TimerId a = wheel.schedule(10, [] {});
  wheel.cancel(a);
  wheel.cancel(a);
  EXPECT_EQ(wheel.cancelled(), 1u);
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimerWheel, NextDeadlineTracksEarliestLiveTimer) {
  TimerWheel wheel;
  EXPECT_FALSE(wheel.next_deadline().has_value());
  const TimerId a = wheel.schedule(100, [] {});
  wheel.schedule(200, [] {});
  EXPECT_EQ(wheel.next_deadline(), std::optional<Time>(100));
  // Cancelling the front lazily leaves it in the heap; next_deadline must
  // see through to the next live entry.
  wheel.cancel(a);
  EXPECT_EQ(wheel.next_deadline(), std::optional<Time>(200));
  wheel.advance(200);
  EXPECT_FALSE(wheel.next_deadline().has_value());
}

TEST(TimerWheel, CallbackMayArmTimerDueNow) {
  TimerWheel wheel;
  std::vector<int> order;
  wheel.schedule(10, [&] {
    order.push_back(1);
    wheel.schedule(10, [&] { order.push_back(2); });  // due within this advance
    wheel.schedule(99, [&] { order.push_back(99); });
  });
  EXPECT_EQ(wheel.advance(10), 2u);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(wheel.pending(), 1u);
}

TEST(TimerWheel, CallbackMayCancelLaterTimer) {
  TimerWheel wheel;
  int fired = 0;
  TimerId victim = 0;
  wheel.schedule(10, [&] { wheel.cancel(victim); });
  victim = wheel.schedule(20, [&] { ++fired; });
  wheel.advance(100);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(wheel.fired(), 1u);
  EXPECT_EQ(wheel.cancelled(), 1u);
}

TEST(TimerWheel, PeriodicRearmKeepsSlotPoolBounded) {
  TimerWheel wheel;
  Time next = 1;
  std::function<void()> tick = [&] {
    if (next < 1000) wheel.schedule(++next, tick);
  };
  wheel.schedule(next, tick);
  Time now = 0;
  while (wheel.pending() > 0) wheel.advance(++now);
  EXPECT_EQ(wheel.fired(), 1000u);
}

TEST(TimerWheel, CancelDuringExpiryOfSameDeadlineBatch) {
  // Three timers due at the same instant fire in arm order; the first
  // cancels the second MID-EXPIRY, so the batch must deliver 1 then 3 —
  // the cancel takes effect even though the victim was already due.
  TimerWheel wheel;
  std::vector<int> order;
  TimerId second = 0;
  wheel.schedule(10, [&] {
    order.push_back(1);
    wheel.cancel(second);
  });
  second = wheel.schedule(10, [&] { order.push_back(2); });
  wheel.schedule(10, [&] { order.push_back(3); });
  EXPECT_EQ(wheel.advance(10), 2u);
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
  EXPECT_EQ(wheel.cancelled(), 1u);
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimerWheel, CancelThenRearmInCallbackYieldsFreshTimer) {
  // A callback that cancels a due timer and re-arms a replacement must not
  // resurrect the cancelled one, and the replacement's id must be distinct
  // (slot generations retire stale ids).
  TimerWheel wheel;
  int victim_fired = 0;
  int replacement_fired = 0;
  TimerId victim = 0;
  TimerId replacement = 0;
  wheel.schedule(10, [&] {
    wheel.cancel(victim);
    replacement = wheel.schedule(20, [&] { ++replacement_fired; });
  });
  victim = wheel.schedule(15, [&] { ++victim_fired; });
  wheel.advance(10);
  EXPECT_NE(replacement, victim);
  wheel.advance(100);
  EXPECT_EQ(victim_fired, 0);
  EXPECT_EQ(replacement_fired, 1);
  // The stale victim id must not cancel the replacement's recycled slot.
  wheel.cancel(victim);
  EXPECT_EQ(wheel.cancelled(), 1u);
}

TEST(TimerWheel, RearmAfterFullDrainKeepsFiring) {
  // The wheel survives going idle: drain everything, re-arm, fire again —
  // the pattern a lingering noded relies on after its own work is done.
  TimerWheel wheel;
  int fired = 0;
  wheel.schedule(5, [&] { ++fired; });
  wheel.advance(10);
  EXPECT_EQ(wheel.pending(), 0u);
  EXPECT_FALSE(wheel.next_deadline().has_value());
  wheel.schedule(20, [&] { ++fired; });
  wheel.schedule(30, [&] { ++fired; });
  EXPECT_EQ(wheel.next_deadline(), std::optional<Time>(20));
  wheel.advance(50);
  EXPECT_EQ(fired, 3);
}

TEST(TimerWheel, ManyTimersRandomizedCancellation) {
  TimerWheel wheel;
  std::vector<TimerId> ids;
  int fired = 0;
  for (int i = 0; i < 500; ++i) {
    ids.push_back(wheel.schedule(static_cast<Time>(1 + (i * 7) % 100),
                                 [&] { ++fired; }));
  }
  // Cancel every third one, deterministically.
  int cancelled = 0;
  for (std::size_t i = 0; i < ids.size(); i += 3) {
    wheel.cancel(ids[i]);
    ++cancelled;
  }
  wheel.advance(1000);
  EXPECT_EQ(fired, 500 - cancelled);
  EXPECT_EQ(wheel.pending(), 0u);
}

}  // namespace
}  // namespace whisper::net

// UDP/epoll backend tests: loopback datagram exchange, wheel-driven
// timers inside the event loop, frame validation against stray packets,
// EINTR handling under a signal storm, and the trace-wire contract
// (version-2 frames carry the TraceContext; with the flag off the tapped
// byte stream is identical to a build that never heard of tracing).
#include "net/udp.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <csignal>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <vector>

#include "telemetry/flight.hpp"

namespace whisper::net {
namespace {

constexpr Time kTick = 5 * kMillisecond;

Bytes bytes_of(const char* s) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(s);
  return Bytes(p, p + std::strlen(s));
}

TEST(UdpBackend, ReservedEndpointsAreDistinctLoopbackPorts) {
  UdpBackend backend;
  ASSERT_TRUE(backend.last_error().empty()) << backend.last_error();
  auto a = backend.reserve_endpoint();
  auto b = backend.reserve_endpoint();
  ASSERT_TRUE(a.has_value()) << backend.last_error();
  ASSERT_TRUE(b.has_value()) << backend.last_error();
  EXPECT_EQ(a->ip, (127u << 24) | 1);
  EXPECT_NE(a->port, 0);
  EXPECT_NE(b->port, 0);
  EXPECT_FALSE(*a == *b);
  // Reserved but not attached: no handler yet.
  EXPECT_FALSE(backend.attached(*a));
  backend.attach(*a, [](const Datagram&) {});
  EXPECT_TRUE(backend.attached(*a));
  backend.detach(*a);
  EXPECT_FALSE(backend.attached(*a));
}

TEST(UdpBackend, LoopbackPingPong) {
  UdpBackend backend;
  auto a = backend.reserve_endpoint();
  auto b = backend.reserve_endpoint();
  ASSERT_TRUE(a && b) << backend.last_error();

  std::vector<Datagram> at_a;
  std::vector<Datagram> at_b;
  backend.attach(*a, [&](const Datagram& d) { at_a.push_back(d); });
  backend.attach(*b, [&](const Datagram& d) {
    at_b.push_back(d);
    backend.send(*b, d.src, bytes_of("pong"), Proto::kApp);
  });

  ASSERT_TRUE(backend.send(*a, *b, bytes_of("ping"), Proto::kWcl));
  const Time deadline = backend.now() + 2 * kSecond;
  while (at_a.empty() && backend.now() < deadline) backend.poll(kTick);

  ASSERT_EQ(at_b.size(), 1u);
  EXPECT_EQ(at_b[0].payload, bytes_of("ping"));
  EXPECT_EQ(at_b[0].proto, Proto::kWcl);
  EXPECT_EQ(at_b[0].src, *a);  // loopback: source address survives verbatim
  EXPECT_EQ(at_b[0].dst, *b);
  ASSERT_EQ(at_a.size(), 1u);
  EXPECT_EQ(at_a[0].payload, bytes_of("pong"));
  EXPECT_EQ(at_a[0].proto, Proto::kApp);
  EXPECT_EQ(backend.packets_sent(), 2u);
  EXPECT_EQ(backend.packets_delivered(), 2u);
  EXPECT_GT(backend.bytes_sent(), 0u);
  EXPECT_EQ(backend.bytes_sent(), backend.bytes_received());
}

TEST(UdpBackend, SendFromUnboundEndpointFails) {
  UdpBackend backend;
  auto a = backend.reserve_endpoint();
  ASSERT_TRUE(a);
  EXPECT_FALSE(backend.send(Endpoint{(127u << 24) | 1, 1}, *a, bytes_of("x"),
                            Proto::kApp));
}

TEST(UdpBackend, DeliveryToReservedButUnattachedSocketCountsDetachDrop) {
  UdpBackend backend;
  auto a = backend.reserve_endpoint();
  auto c = backend.reserve_endpoint();  // bound socket, no handler
  ASSERT_TRUE(a && c);
  backend.attach(*a, [](const Datagram&) {});
  ASSERT_TRUE(backend.send(*a, *c, bytes_of("void"), Proto::kApp));
  const Time deadline = backend.now() + 2 * kSecond;
  while (backend.packets_dropped(DropReason::kDetach) == 0 &&
         backend.now() < deadline) {
    backend.poll(kTick);
  }
  EXPECT_EQ(backend.packets_dropped(DropReason::kDetach), 1u);
  EXPECT_EQ(backend.packets_delivered(), 0u);
}

TEST(UdpBackend, RejectsFramesWithBadHeader) {
  UdpBackend backend;
  auto a = backend.reserve_endpoint();
  ASSERT_TRUE(a);
  int handled = 0;
  backend.attach(*a, [&](const Datagram&) { ++handled; });

  // A stray sender that knows nothing of the frame format.
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in dst{};
  dst.sin_family = AF_INET;
  dst.sin_addr.s_addr = htonl(a->ip);
  dst.sin_port = htons(a->port);
  const char garbage[] = "not a whisper frame";
  ASSERT_GT(::sendto(fd, garbage, sizeof(garbage), 0,
                     reinterpret_cast<const sockaddr*>(&dst), sizeof(dst)),
            0);
  // Right magic, out-of-range proto tag.
  const std::uint8_t bad_proto[] = {0x57, 0x50, 1, 0xEE, 'x'};
  ASSERT_GT(::sendto(fd, bad_proto, sizeof(bad_proto), 0,
                     reinterpret_cast<const sockaddr*>(&dst), sizeof(dst)),
            0);
  ::close(fd);

  const Time deadline = backend.now() + 2 * kSecond;
  while (backend.frame_rejects() < 2 && backend.now() < deadline) {
    backend.poll(kTick);
  }
  EXPECT_EQ(backend.frame_rejects(), 2u);
  EXPECT_EQ(handled, 0);
  EXPECT_EQ(backend.packets_delivered(), 0u);
}

TEST(UdpBackend, TimersFireInDeadlineOrderAndCancelWorks) {
  UdpBackend backend;
  std::vector<int> order;
  backend.schedule_after(30 * kMillisecond, [&] { order.push_back(3); });
  backend.schedule_after(10 * kMillisecond, [&] { order.push_back(1); });
  const TimerId victim =
      backend.schedule_after(20 * kMillisecond, [&] { order.push_back(2); });
  backend.schedule_at(backend.now() + 25 * kMillisecond,
                      [&] { order.push_back(25); });
  backend.cancel(victim);
  backend.run_for(100 * kMillisecond);
  EXPECT_EQ(order, (std::vector<int>{1, 25, 3}));
  EXPECT_EQ(backend.pending_timers(), 0u);
}

TEST(UdpBackend, RequestStopEndsRun) {
  UdpBackend backend;
  backend.schedule_after(10 * kMillisecond, [&] { backend.request_stop(); });
  backend.run();  // must return, not spin forever
  EXPECT_TRUE(backend.stop_requested());
}

TEST(ClassifySendtoErrno, MapsTransientAndPeerErrnosToDistinctReasons) {
  EXPECT_EQ(classify_sendto_errno(ENOBUFS), DropReason::kBackpressure);
  EXPECT_EQ(classify_sendto_errno(ENOMEM), DropReason::kBackpressure);
  EXPECT_EQ(classify_sendto_errno(EAGAIN), DropReason::kBackpressure);
  EXPECT_EQ(classify_sendto_errno(ECONNREFUSED), DropReason::kRefused);
  EXPECT_EQ(classify_sendto_errno(EHOSTUNREACH), DropReason::kRefused);
  EXPECT_EQ(classify_sendto_errno(ENETUNREACH), DropReason::kRefused);
  EXPECT_EQ(classify_sendto_errno(EPERM), DropReason::kRefused);
  // Anything unanticipated degrades to plain datagram loss.
  EXPECT_EQ(classify_sendto_errno(EINVAL), DropReason::kLoss);
  EXPECT_EQ(classify_sendto_errno(0), DropReason::kLoss);
}

TEST(UdpBackend, SendErrorHookCountsClassifiedDropsAndRecovers) {
  // There is no portable way to make a real loopback sendto() fail with
  // ENOBUFS or ECONNREFUSED on demand, so the config hook injects the
  // errnos the kernel would produce: transient backpressure, ICMP-derived
  // refusals from a crashed peer, and recovery once the hook stands down.
  UdpConfig config;
  std::vector<int> script = {ENOBUFS, EAGAIN, ECONNREFUSED, EHOSTUNREACH, 0};
  std::size_t call = 0;
  config.send_error_hook = [&](Endpoint) {
    const int err = call < script.size() ? script[call] : 0;
    ++call;
    return err;
  };
  UdpBackend backend(config);
  auto a = backend.reserve_endpoint();
  auto b = backend.reserve_endpoint();
  ASSERT_TRUE(a && b) << backend.last_error();
  int received = 0;
  backend.attach(*a, [](const Datagram&) {});
  backend.attach(*b, [&](const Datagram&) { ++received; });

  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(backend.send(*a, *b, bytes_of("probe"), Proto::kApp));
  }
  const Time deadline = backend.now() + 2 * kSecond;
  while (received < 1 && backend.now() < deadline) backend.poll(kTick);

  // Two transient + two peer-side failures, each counted under its cause;
  // the fifth datagram went out for real.
  EXPECT_EQ(backend.packets_dropped(DropReason::kBackpressure), 2u);
  EXPECT_EQ(backend.packets_dropped(DropReason::kRefused), 2u);
  EXPECT_EQ(backend.packets_dropped(DropReason::kLoss), 0u);
  EXPECT_EQ(received, 1);
}

TEST(UdpBackend, TimersStillFireViaPollAfterRequestStop) {
  // request_stop() ends run(), but poll() keeps working: whisper_noded's
  // shutdown path (and its post-delivery linger) schedules timers after
  // the stop flag is up and drives them manually.
  UdpBackend backend;
  backend.schedule_after(5 * kMillisecond, [&] { backend.request_stop(); });
  backend.run();
  EXPECT_TRUE(backend.stop_requested());

  int fired = 0;
  backend.schedule_after(5 * kMillisecond, [&] { ++fired; });
  const Time deadline = backend.now() + 2 * kSecond;
  while (fired == 0 && backend.now() < deadline) backend.poll(kTick);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(backend.pending_timers(), 0u);
}

TEST(UdpBackend, EintrStormStillFiresTimersAndDeliversPackets) {
  // Pepper the process with SIGALRM (no SA_RESTART: epoll_wait returns
  // EINTR) while the loop runs; the backend must absorb the interruptions.
  struct sigaction sa{};
  sa.sa_handler = [](int) {};
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  struct sigaction old{};
  ASSERT_EQ(sigaction(SIGALRM, &sa, &old), 0);
  itimerval storm{};
  storm.it_interval.tv_usec = 2000;  // every 2 ms
  storm.it_value.tv_usec = 2000;
  ASSERT_EQ(setitimer(ITIMER_REAL, &storm, nullptr), 0);

  UdpBackend backend;
  auto a = backend.reserve_endpoint();
  auto b = backend.reserve_endpoint();
  ASSERT_TRUE(a && b);
  int received = 0;
  backend.attach(*a, [](const Datagram&) {});
  backend.attach(*b, [&](const Datagram&) { ++received; });
  int fired = 0;
  backend.schedule_after(20 * kMillisecond, [&] { ++fired; });
  backend.schedule_after(40 * kMillisecond, [&] {
    ++fired;
    backend.send(*a, *b, bytes_of("mid-storm"), Proto::kApp);
  });

  const Time deadline = backend.now() + 2 * kSecond;
  while ((fired < 2 || received < 1) && backend.now() < deadline) {
    backend.poll(kTick);
  }

  itimerval off{};
  setitimer(ITIMER_REAL, &off, nullptr);
  sigaction(SIGALRM, &old, nullptr);

  EXPECT_EQ(fired, 2);
  EXPECT_EQ(received, 1);
  EXPECT_TRUE(backend.last_error().empty()) << backend.last_error();
}

// --- Trace-wire contract -------------------------------------------------

// Drives one traced ping through a backend and returns the concatenated
// tapped outbound frames. `trace_wire` toggles version-2 framing; `traced`
// controls whether a FlightRecorder with an armed ambient context exists at
// all (the "build without the feature" side of the digest comparison).
Bytes tapped_frames(bool trace_wire, bool traced) {
  UdpConfig config;
  config.trace_wire = trace_wire;
  Bytes tapped;
  config.frame_tap = [&](BytesView frame, bool outbound) {
    if (outbound) tapped.insert(tapped.end(), frame.begin(), frame.end());
  };
  UdpBackend backend(config);
  telemetry::FlightRecorder flight;
  if (traced) {
    flight.set_clock(clock_fn(backend));
    flight.set_enabled(true);
    backend.set_flight(&flight);
  }
  auto a = backend.reserve_endpoint();
  auto b = backend.reserve_endpoint();
  EXPECT_TRUE(a && b) << backend.last_error();
  int received = 0;
  backend.attach(*a, [](const Datagram&) {});
  backend.attach(*b, [&](const Datagram&) { ++received; });

  telemetry::TraceContext ctx;
  if (traced) {
    ctx.trace_id = flight.new_trace(telemetry::TraceLayer::kWcl, 1, 0, 2);
    ctx.root = ctx.trace_id;
    ctx.attempt = 1;
    ctx.layer = telemetry::TraceLayer::kWcl;
  }
  telemetry::ScopedTraceContext guard(traced ? &flight : nullptr, ctx);
  EXPECT_TRUE(backend.send(*a, *b, bytes_of("traced-ping"), Proto::kWcl));
  const Time deadline = backend.now() + 2 * kSecond;
  while (received < 1 && backend.now() < deadline) backend.poll(kTick);
  EXPECT_EQ(received, 1);
  return tapped;
}

TEST(UdpTraceWire, TapDigestByteIdenticalWhenOff) {
  // The anonymity contract: with trace_wire OFF, a fully traced process
  // puts exactly the same bytes on the wire as one with no tracing at all.
  const Bytes traced_off = tapped_frames(/*trace_wire=*/false, /*traced=*/true);
  const Bytes untraced = tapped_frames(/*trace_wire=*/false, /*traced=*/false);
  ASSERT_FALSE(traced_off.empty());
  EXPECT_EQ(traced_off, untraced);
  // And the opt-in really does change the wire: 4-byte v1 header grows to
  // 4 + 27 bytes of context per traced datagram.
  const Bytes traced_on = tapped_frames(/*trace_wire=*/true, /*traced=*/true);
  EXPECT_EQ(traced_on.size(), traced_off.size() + 27);
}

TEST(UdpTraceWire, V2FrameLogsPairedWireInAtReceiver) {
  UdpConfig config;
  config.trace_wire = true;
  UdpBackend backend(config);
  telemetry::FlightRecorder flight;
  flight.set_clock(clock_fn(backend));
  flight.set_enabled(true);
  backend.set_flight(&flight);

  auto a = backend.reserve_endpoint();
  auto b = backend.reserve_endpoint();
  ASSERT_TRUE(a && b) << backend.last_error();
  int received = 0;
  backend.attach(*a, [](const Datagram&) {});
  backend.attach(*b, [&](const Datagram& d) {
    ++received;
    // The receiver sees the sender's context on the datagram...
    EXPECT_TRUE(d.trace.valid());
    // ...and deliver() armed the ambient context at the next hop, so any
    // forward this handler performs chains onto the same trace.
    EXPECT_EQ(flight.context().trace_id, d.trace.trace_id);
    EXPECT_EQ(flight.context().hop, d.trace.hop + 1);
  });

  telemetry::TraceContext ctx;
  ctx.trace_id = flight.new_trace(telemetry::TraceLayer::kWcl, 1, 0, 2);
  ctx.root = ctx.trace_id;
  ctx.attempt = 1;
  ctx.layer = telemetry::TraceLayer::kWcl;
  {
    telemetry::ScopedTraceContext guard(&flight, ctx);
    ASSERT_TRUE(backend.send(*a, *b, bytes_of("hop"), Proto::kWcl));
  }
  const Time deadline = backend.now() + 2 * kSecond;
  while (received < 1 && backend.now() < deadline) backend.poll(kTick);
  ASSERT_EQ(received, 1);

  // Event log holds a wire_out/wire_in pair with matching identity and
  // recv >= sent (shared clock).
  const telemetry::FlightEventRec* out = nullptr;
  const telemetry::FlightEventRec* in = nullptr;
  for (const auto& e : flight.events()) {
    if (e.kind == telemetry::FlightKind::kWireOut) out = &e;
    if (e.kind == telemetry::FlightKind::kWireIn) in = &e;
  }
  ASSERT_NE(out, nullptr);
  ASSERT_NE(in, nullptr);
  EXPECT_EQ(out->trace, ctx.trace_id);
  EXPECT_EQ(in->trace, out->trace);
  EXPECT_EQ(in->hop, out->hop);
  EXPECT_EQ(in->seq, out->seq);
  EXPECT_EQ(in->attempt, out->attempt);
  EXPECT_GE(in->ts, out->ts);
}

TEST(UdpTraceWire, TruncatedV2FrameRejected) {
  UdpBackend backend;
  auto a = backend.reserve_endpoint();
  ASSERT_TRUE(a);
  int handled = 0;
  backend.attach(*a, [&](const Datagram&) { ++handled; });

  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in dst{};
  dst.sin_family = AF_INET;
  dst.sin_addr.s_addr = htonl(a->ip);
  dst.sin_port = htons(a->port);
  // Version-2 header followed by only 5 of the 27 context bytes.
  const std::uint8_t truncated[] = {0x57, 0x50, 2, 1, 0xAA, 0xBB, 0xCC, 0xDD,
                                    0xEE};
  ASSERT_GT(::sendto(fd, truncated, sizeof(truncated), 0,
                     reinterpret_cast<const sockaddr*>(&dst), sizeof(dst)),
            0);
  ::close(fd);

  const Time deadline = backend.now() + 2 * kSecond;
  while (backend.frame_rejects() < 1 && backend.now() < deadline) {
    backend.poll(kTick);
  }
  EXPECT_EQ(backend.frame_rejects(), 1u);
  EXPECT_EQ(handled, 0);
}

TEST(UdpTraceWire, SharedEpochAlignsClocksAcrossBackends) {
  // Two backends constructed with the same epoch report comparable now();
  // with the default (-1) each starts near zero at its own construction.
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  const std::int64_t epoch =
      ts.tv_sec * 1'000'000'000LL + ts.tv_nsec - 3'000'000'000LL;  // 3s ago
  UdpConfig ca;
  ca.epoch_ns = epoch;
  UdpConfig cb;
  cb.epoch_ns = epoch;
  UdpBackend ba(ca);
  UdpBackend bb(cb);
  // Both clocks read ~3s and agree within a generous scheduling margin.
  EXPECT_GT(ba.now(), 2 * kSecond);
  const Time da = ba.now();
  const Time db = bb.now();
  EXPECT_LT(da > db ? da - db : db - da, kSecond);
}

}  // namespace
}  // namespace whisper::net

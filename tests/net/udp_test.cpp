// UDP/epoll backend tests: loopback datagram exchange, wheel-driven
// timers inside the event loop, frame validation against stray packets,
// and EINTR handling under a signal storm.
#include "net/udp.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <csignal>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <vector>

namespace whisper::net {
namespace {

constexpr Time kTick = 5 * kMillisecond;

Bytes bytes_of(const char* s) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(s);
  return Bytes(p, p + std::strlen(s));
}

TEST(UdpBackend, ReservedEndpointsAreDistinctLoopbackPorts) {
  UdpBackend backend;
  ASSERT_TRUE(backend.last_error().empty()) << backend.last_error();
  auto a = backend.reserve_endpoint();
  auto b = backend.reserve_endpoint();
  ASSERT_TRUE(a.has_value()) << backend.last_error();
  ASSERT_TRUE(b.has_value()) << backend.last_error();
  EXPECT_EQ(a->ip, (127u << 24) | 1);
  EXPECT_NE(a->port, 0);
  EXPECT_NE(b->port, 0);
  EXPECT_FALSE(*a == *b);
  // Reserved but not attached: no handler yet.
  EXPECT_FALSE(backend.attached(*a));
  backend.attach(*a, [](const Datagram&) {});
  EXPECT_TRUE(backend.attached(*a));
  backend.detach(*a);
  EXPECT_FALSE(backend.attached(*a));
}

TEST(UdpBackend, LoopbackPingPong) {
  UdpBackend backend;
  auto a = backend.reserve_endpoint();
  auto b = backend.reserve_endpoint();
  ASSERT_TRUE(a && b) << backend.last_error();

  std::vector<Datagram> at_a;
  std::vector<Datagram> at_b;
  backend.attach(*a, [&](const Datagram& d) { at_a.push_back(d); });
  backend.attach(*b, [&](const Datagram& d) {
    at_b.push_back(d);
    backend.send(*b, d.src, bytes_of("pong"), Proto::kApp);
  });

  ASSERT_TRUE(backend.send(*a, *b, bytes_of("ping"), Proto::kWcl));
  const Time deadline = backend.now() + 2 * kSecond;
  while (at_a.empty() && backend.now() < deadline) backend.poll(kTick);

  ASSERT_EQ(at_b.size(), 1u);
  EXPECT_EQ(at_b[0].payload, bytes_of("ping"));
  EXPECT_EQ(at_b[0].proto, Proto::kWcl);
  EXPECT_EQ(at_b[0].src, *a);  // loopback: source address survives verbatim
  EXPECT_EQ(at_b[0].dst, *b);
  ASSERT_EQ(at_a.size(), 1u);
  EXPECT_EQ(at_a[0].payload, bytes_of("pong"));
  EXPECT_EQ(at_a[0].proto, Proto::kApp);
  EXPECT_EQ(backend.packets_sent(), 2u);
  EXPECT_EQ(backend.packets_delivered(), 2u);
  EXPECT_GT(backend.bytes_sent(), 0u);
  EXPECT_EQ(backend.bytes_sent(), backend.bytes_received());
}

TEST(UdpBackend, SendFromUnboundEndpointFails) {
  UdpBackend backend;
  auto a = backend.reserve_endpoint();
  ASSERT_TRUE(a);
  EXPECT_FALSE(backend.send(Endpoint{(127u << 24) | 1, 1}, *a, bytes_of("x"),
                            Proto::kApp));
}

TEST(UdpBackend, DeliveryToReservedButUnattachedSocketCountsDetachDrop) {
  UdpBackend backend;
  auto a = backend.reserve_endpoint();
  auto c = backend.reserve_endpoint();  // bound socket, no handler
  ASSERT_TRUE(a && c);
  backend.attach(*a, [](const Datagram&) {});
  ASSERT_TRUE(backend.send(*a, *c, bytes_of("void"), Proto::kApp));
  const Time deadline = backend.now() + 2 * kSecond;
  while (backend.packets_dropped(DropReason::kDetach) == 0 &&
         backend.now() < deadline) {
    backend.poll(kTick);
  }
  EXPECT_EQ(backend.packets_dropped(DropReason::kDetach), 1u);
  EXPECT_EQ(backend.packets_delivered(), 0u);
}

TEST(UdpBackend, RejectsFramesWithBadHeader) {
  UdpBackend backend;
  auto a = backend.reserve_endpoint();
  ASSERT_TRUE(a);
  int handled = 0;
  backend.attach(*a, [&](const Datagram&) { ++handled; });

  // A stray sender that knows nothing of the frame format.
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in dst{};
  dst.sin_family = AF_INET;
  dst.sin_addr.s_addr = htonl(a->ip);
  dst.sin_port = htons(a->port);
  const char garbage[] = "not a whisper frame";
  ASSERT_GT(::sendto(fd, garbage, sizeof(garbage), 0,
                     reinterpret_cast<const sockaddr*>(&dst), sizeof(dst)),
            0);
  // Right magic, out-of-range proto tag.
  const std::uint8_t bad_proto[] = {0x57, 0x50, 1, 0xEE, 'x'};
  ASSERT_GT(::sendto(fd, bad_proto, sizeof(bad_proto), 0,
                     reinterpret_cast<const sockaddr*>(&dst), sizeof(dst)),
            0);
  ::close(fd);

  const Time deadline = backend.now() + 2 * kSecond;
  while (backend.frame_rejects() < 2 && backend.now() < deadline) {
    backend.poll(kTick);
  }
  EXPECT_EQ(backend.frame_rejects(), 2u);
  EXPECT_EQ(handled, 0);
  EXPECT_EQ(backend.packets_delivered(), 0u);
}

TEST(UdpBackend, TimersFireInDeadlineOrderAndCancelWorks) {
  UdpBackend backend;
  std::vector<int> order;
  backend.schedule_after(30 * kMillisecond, [&] { order.push_back(3); });
  backend.schedule_after(10 * kMillisecond, [&] { order.push_back(1); });
  const TimerId victim =
      backend.schedule_after(20 * kMillisecond, [&] { order.push_back(2); });
  backend.schedule_at(backend.now() + 25 * kMillisecond,
                      [&] { order.push_back(25); });
  backend.cancel(victim);
  backend.run_for(100 * kMillisecond);
  EXPECT_EQ(order, (std::vector<int>{1, 25, 3}));
  EXPECT_EQ(backend.pending_timers(), 0u);
}

TEST(UdpBackend, RequestStopEndsRun) {
  UdpBackend backend;
  backend.schedule_after(10 * kMillisecond, [&] { backend.request_stop(); });
  backend.run();  // must return, not spin forever
  EXPECT_TRUE(backend.stop_requested());
}

TEST(ClassifySendtoErrno, MapsTransientAndPeerErrnosToDistinctReasons) {
  EXPECT_EQ(classify_sendto_errno(ENOBUFS), DropReason::kBackpressure);
  EXPECT_EQ(classify_sendto_errno(ENOMEM), DropReason::kBackpressure);
  EXPECT_EQ(classify_sendto_errno(EAGAIN), DropReason::kBackpressure);
  EXPECT_EQ(classify_sendto_errno(ECONNREFUSED), DropReason::kRefused);
  EXPECT_EQ(classify_sendto_errno(EHOSTUNREACH), DropReason::kRefused);
  EXPECT_EQ(classify_sendto_errno(ENETUNREACH), DropReason::kRefused);
  EXPECT_EQ(classify_sendto_errno(EPERM), DropReason::kRefused);
  // Anything unanticipated degrades to plain datagram loss.
  EXPECT_EQ(classify_sendto_errno(EINVAL), DropReason::kLoss);
  EXPECT_EQ(classify_sendto_errno(0), DropReason::kLoss);
}

TEST(UdpBackend, SendErrorHookCountsClassifiedDropsAndRecovers) {
  // There is no portable way to make a real loopback sendto() fail with
  // ENOBUFS or ECONNREFUSED on demand, so the config hook injects the
  // errnos the kernel would produce: transient backpressure, ICMP-derived
  // refusals from a crashed peer, and recovery once the hook stands down.
  UdpConfig config;
  std::vector<int> script = {ENOBUFS, EAGAIN, ECONNREFUSED, EHOSTUNREACH, 0};
  std::size_t call = 0;
  config.send_error_hook = [&](Endpoint) {
    const int err = call < script.size() ? script[call] : 0;
    ++call;
    return err;
  };
  UdpBackend backend(config);
  auto a = backend.reserve_endpoint();
  auto b = backend.reserve_endpoint();
  ASSERT_TRUE(a && b) << backend.last_error();
  int received = 0;
  backend.attach(*a, [](const Datagram&) {});
  backend.attach(*b, [&](const Datagram&) { ++received; });

  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(backend.send(*a, *b, bytes_of("probe"), Proto::kApp));
  }
  const Time deadline = backend.now() + 2 * kSecond;
  while (received < 1 && backend.now() < deadline) backend.poll(kTick);

  // Two transient + two peer-side failures, each counted under its cause;
  // the fifth datagram went out for real.
  EXPECT_EQ(backend.packets_dropped(DropReason::kBackpressure), 2u);
  EXPECT_EQ(backend.packets_dropped(DropReason::kRefused), 2u);
  EXPECT_EQ(backend.packets_dropped(DropReason::kLoss), 0u);
  EXPECT_EQ(received, 1);
}

TEST(UdpBackend, TimersStillFireViaPollAfterRequestStop) {
  // request_stop() ends run(), but poll() keeps working: whisper_noded's
  // shutdown path (and its post-delivery linger) schedules timers after
  // the stop flag is up and drives them manually.
  UdpBackend backend;
  backend.schedule_after(5 * kMillisecond, [&] { backend.request_stop(); });
  backend.run();
  EXPECT_TRUE(backend.stop_requested());

  int fired = 0;
  backend.schedule_after(5 * kMillisecond, [&] { ++fired; });
  const Time deadline = backend.now() + 2 * kSecond;
  while (fired == 0 && backend.now() < deadline) backend.poll(kTick);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(backend.pending_timers(), 0u);
}

TEST(UdpBackend, EintrStormStillFiresTimersAndDeliversPackets) {
  // Pepper the process with SIGALRM (no SA_RESTART: epoll_wait returns
  // EINTR) while the loop runs; the backend must absorb the interruptions.
  struct sigaction sa{};
  sa.sa_handler = [](int) {};
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  struct sigaction old{};
  ASSERT_EQ(sigaction(SIGALRM, &sa, &old), 0);
  itimerval storm{};
  storm.it_interval.tv_usec = 2000;  // every 2 ms
  storm.it_value.tv_usec = 2000;
  ASSERT_EQ(setitimer(ITIMER_REAL, &storm, nullptr), 0);

  UdpBackend backend;
  auto a = backend.reserve_endpoint();
  auto b = backend.reserve_endpoint();
  ASSERT_TRUE(a && b);
  int received = 0;
  backend.attach(*a, [](const Datagram&) {});
  backend.attach(*b, [&](const Datagram&) { ++received; });
  int fired = 0;
  backend.schedule_after(20 * kMillisecond, [&] { ++fired; });
  backend.schedule_after(40 * kMillisecond, [&] {
    ++fired;
    backend.send(*a, *b, bytes_of("mid-storm"), Proto::kApp);
  });

  const Time deadline = backend.now() + 2 * kSecond;
  while ((fired < 2 || received < 1) && backend.now() < deadline) {
    backend.poll(kTick);
  }

  itimerval off{};
  setitimer(ITIMER_REAL, &off, nullptr);
  sigaction(SIGALRM, &old, nullptr);

  EXPECT_EQ(fired, 2);
  EXPECT_EQ(received, 1);
  EXPECT_TRUE(backend.last_error().empty()) << backend.last_error();
}

}  // namespace
}  // namespace whisper::net

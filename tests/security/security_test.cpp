// End-to-end security property tests: a wiretap on every link (the paper's
// link-observing attacker) must never see protected material.
#include <gtest/gtest.h>

#include <algorithm>

#include "whisper/testbed.hpp"

namespace whisper {
namespace {

constexpr GroupId kGroup{31337};

bool contains_bytes(BytesView haystack, BytesView needle) {
  if (needle.empty() || haystack.size() < needle.size()) return false;
  return std::search(haystack.begin(), haystack.end(), needle.begin(), needle.end()) !=
         haystack.end();
}

TestbedConfig config(std::uint64_t seed) {
  TestbedConfig cfg;
  cfg.initial_nodes = 30;
  cfg.node.pss.pi_min_public = 3;
  cfg.node.wcl.pi = 3;
  cfg.node.ppss.cycle = 30 * net::kSecond;
  cfg.seed = seed;
  return cfg;
}

struct SecurityFixture : ::testing::Test {
  WhisperTestbed tb{config(777)};
  WhisperNode* alice = nullptr;
  WhisperNode* bob = nullptr;
  ppss::Ppss* alice_group = nullptr;
  ppss::Ppss* bob_group = nullptr;

  void SetUp() override {
    tb.run_for(6 * net::kMinute);
    alice = tb.alive_nodes()[0];
    bob = tb.alive_nodes()[1];
    crypto::Drbg d(1);
    alice_group = &alice->create_group(kGroup, crypto::RsaKeyPair::generate(512, d));
    bob_group = &bob->join_group(kGroup, *alice_group->invite(bob->id()),
                                 alice_group->self_descriptor());
    tb.run_for(2 * net::kMinute);
    ASSERT_TRUE(bob_group->joined());
  }
};

TEST_F(SecurityFixture, ContentNeverAppearsOnAnyLink) {
  // A distinctive 24-byte secret; watch every datagram on every link.
  const Bytes secret = to_bytes("XK-ULTRA-SECRET-PAYLOAD!");
  bool leaked = false;
  std::size_t observed = 0;
  tb.set_tap([&](const net::Datagram& d) {
    ++observed;
    if (contains_bytes(d.payload, secret)) leaked = true;
  });

  Bytes received;
  bob_group->on_app_message = [&](const wcl::RemotePeer&, BytesView p) {
    received.assign(p.begin(), p.end());
  };
  ASSERT_TRUE(alice_group->send_app_to(bob_group->self_descriptor(), secret));
  tb.run_for(net::kMinute);
  tb.set_tap(nullptr);

  EXPECT_EQ(received, secret);  // delivered end-to-end...
  EXPECT_GT(observed, 0u);
  EXPECT_FALSE(leaked);  // ...but invisible on every link, including relays
}

TEST_F(SecurityFixture, PassportNeverAppearsOnAnyLink) {
  // Membership privacy: the passport (the only proof of membership) must
  // only ever travel inside encrypted onion bodies.
  const Bytes signature = bob_group->passport().signature;
  ASSERT_GE(signature.size(), 32u);
  bool leaked = false;
  tb.set_tap([&](const net::Datagram& d) {
    if (contains_bytes(d.payload, signature)) leaked = true;
  });
  // Drive several PPSS cycles (gossip ships passports with every message).
  tb.run_for(5 * net::kMinute);
  tb.set_tap(nullptr);
  EXPECT_FALSE(leaked);
}

TEST_F(SecurityFixture, GroupKeyNeverAppearsOnAnyLink) {
  // The group public key identifies the group; it travels only inside
  // confidential channels (join responses, gossip metadata).
  const Bytes group_key = alice_group->keyring().key_for(1)->serialize();
  bool leaked = false;
  tb.set_tap([&](const net::Datagram& d) {
    if (contains_bytes(d.payload, group_key)) leaked = true;
  });
  // Fresh join while tapped: carol joins through alice.
  WhisperNode* carol = tb.alive_nodes()[2];
  auto& carol_group = carol->join_group(kGroup, *alice_group->invite(carol->id()),
                                        alice_group->self_descriptor());
  tb.run_for(3 * net::kMinute);
  tb.set_tap(nullptr);
  EXPECT_TRUE(carol_group.joined());
  EXPECT_FALSE(leaked);
}

TEST_F(SecurityFixture, NodeKeysDoAppearOnTheWire) {
  // Sanity check that the tap actually sees through cleartext: node public
  // keys are *meant* to travel openly (key sampling service), so the tap
  // must be able to find them. Guards against a vacuous leak test.
  const Bytes node_key = alice->keypair().pub.serialize();
  bool seen = false;
  tb.set_tap([&](const net::Datagram& d) {
    if (contains_bytes(d.payload, node_key)) seen = true;
  });
  tb.run_for(2 * net::kMinute);
  tb.set_tap(nullptr);
  EXPECT_TRUE(seen);
}

TEST(RelationshipAnonymity, SourceNeverTalksToDestinationDirectly) {
  // Structural relationship anonymity: with a single confidential send in
  // flight, no link on the wire connects the source and the destination
  // directly — the link-level sender (cleartext transport header / forward
  // wrapper) paired with the link-level receiver (resolved through the NAT
  // fabric) never equals (alice, bob). An observer of any one link learns
  // at most one of the two endpoints.
  WhisperTestbed tb(config(888));
  tb.run_for(6 * net::kMinute);
  WhisperNode* alice = tb.alive_nodes()[0];
  WhisperNode* bob = tb.alive_nodes()[1];

  auto resolve_receiver = [&](const net::Datagram& d) -> NodeId {
    auto internal = tb.fabric().inbound(d.dst, d.src);
    if (!internal) return kNilNode;
    for (WhisperNode* n : tb.alive_nodes()) {
      if (n->internal_endpoint() == *internal) return n->id();
    }
    return kNilNode;
  };
  auto parse_sender = [](const net::Datagram& d) -> NodeId {
    Reader r(d.payload);
    const std::uint8_t type = r.u8();
    if (type == 1) return r.node_id();  // transport data message: from
    return kNilNode;                    // forward wrapper: relayed below
  };

  bool linked = false;
  std::size_t wcl_datagrams = 0;
  tb.set_tap([&](const net::Datagram& d) {
    if (d.proto != net::Proto::kWcl) return;
    ++wcl_datagrams;
    if (parse_sender(d) == alice->id() && resolve_receiver(d) == bob->id()) linked = true;
  });

  bool delivered = false;
  bob->wcl().on_deliver = [&](Bytes) { delivered = true; };
  ASSERT_TRUE(alice->wcl().send_confidential(bob->wcl().self_peer(), to_bytes("unlinkable")));
  tb.run_for(net::kMinute);
  tb.set_tap(nullptr);
  bob->wcl().on_deliver = nullptr;

  EXPECT_TRUE(delivered);
  EXPECT_GE(wcl_datagrams, 3u);  // at least S->A, A->B, B->D
  EXPECT_FALSE(linked);
}

TEST_F(SecurityFixture, NonMemberNeverLearnsGroupTraffic) {
  // A non-member (even one relaying traffic) has no PPSS instance and the
  // dispatcher drops group payloads addressed to it by accident.
  for (WhisperNode* n : tb.alive_nodes()) {
    if (n == alice || n == bob) continue;
    EXPECT_EQ(n->group(kGroup), nullptr);
  }
}

TEST_F(SecurityFixture, ForgedPassportRejectedAndIgnored) {
  WhisperNode* mallory = tb.alive_nodes()[3];
  // Mallory somehow learned the group id and a member descriptor, and
  // crafts a message with a self-signed passport.
  ppss::Passport forged;
  forged.node = mallory->id();
  forged.epoch = 1;
  forged.signature = crypto::rsa_sign(
      mallory->keypair(),
      ppss::GroupKeyring::passport_message(kGroup, mallory->id(), 1));

  Writer w;
  w.group_id(kGroup);
  w.u8(7);  // kKindApp
  forged.serialize(w);
  wcl::RemotePeer mallory_desc;
  mallory_desc.card = mallory->transport().self_card();
  mallory_desc.key = mallory->keypair().pub;
  mallory_desc.serialize(w);
  w.u64(1);  // app-frame nonce
  w.u8(0);   // app channel 0
  w.bytes(to_bytes("let me in"));

  bool bob_heard = false;
  bob_group->on_app_message = [&](const wcl::RemotePeer&, BytesView) { bob_heard = true; };
  const std::uint64_t bad_before = bob_group->stats().bad_passports;
  mallory->wcl().send_confidential(bob_group->self_descriptor(), w.data());
  tb.run_for(net::kMinute);
  EXPECT_FALSE(bob_heard);
  EXPECT_GT(bob_group->stats().bad_passports, bad_before);
}

TEST_F(SecurityFixture, GarbageDatagramsDoNotCrashTheStack) {
  // Robustness: blast every node with random bytes at every protocol layer.
  Rng rng(4242);
  auto nodes = tb.alive_nodes();
  for (int i = 0; i < 300; ++i) {
    WhisperNode* victim = nodes[rng.pick_index(nodes)];
    Bytes garbage(1 + rng.next_below(200));
    rng.fill_bytes(garbage.data(), garbage.size());
    // Inject raw datagrams at the victim's public-facing endpoint.
    tb.inject(alice->internal_endpoint(),
                      victim->is_public() ? victim->internal_endpoint()
                                          : victim->transport().self_card().addr,
                      garbage, net::Proto::kApp);
  }
  tb.run_for(net::kMinute);
  // Also garbage wrapped as valid transport data messages with random tags
  // and bodies reaches the upper-layer handlers.
  for (int i = 0; i < 100; ++i) {
    WhisperNode* victim = nodes[rng.pick_index(nodes)];
    Bytes garbage(1 + rng.next_below(100));
    rng.fill_bytes(garbage.data(), garbage.size());
    alice->transport().send(victim->transport().self_card(),
                            static_cast<std::uint8_t>(1 + rng.next_below(4)), garbage,
                            net::Proto::kApp);
  }
  tb.run_for(net::kMinute);
  // Still alive and gossiping.
  EXPECT_EQ(tb.alive_count(), 30u);
  std::uint64_t total_completed = 0;
  for (WhisperNode* n : nodes) total_completed += n->pss().exchanges_completed();
  EXPECT_GT(total_completed, 0u);
}

}  // namespace
}  // namespace whisper

// Handler-level hostile-input tests: the defense primitives in isolation,
// then live protocol instances fed malformed, replayed and flooding frames
// directly — asserting the typed reject counters move and no protocol state
// mutates on a rejected frame.
#include <gtest/gtest.h>

#include "common/guard.hpp"
#include "whisper/testbed.hpp"

namespace whisper {
namespace {

// --- Defense primitives. ---

TEST(TokenBucketGuard, EnforcesRateAndBurst) {
  TokenBucket bucket(/*rate_per_sec=*/10, /*burst=*/2, /*now_us=*/0);
  EXPECT_TRUE(bucket.allow(0));
  EXPECT_TRUE(bucket.allow(0));
  EXPECT_FALSE(bucket.allow(0));  // burst exhausted
  // 10/s refills one token per 100ms.
  EXPECT_TRUE(bucket.allow(100'000));
  EXPECT_FALSE(bucket.allow(100'000));
}

TEST(TokenBucketGuard, ZeroRateDisablesLimiting) {
  TokenBucket bucket(0, 0, 0);
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(bucket.allow(0));
}

TEST(ReplayWindowGuard, RemembersFingerprintsAndEvictsFifo) {
  ReplayWindow win(/*capacity=*/4);
  for (std::uint64_t fp = 1; fp <= 4; ++fp) EXPECT_FALSE(win.seen_or_insert(fp));
  EXPECT_TRUE(win.seen_or_insert(2));  // replay detected
  // Beyond capacity the oldest fingerprints fall out, so memory stays flat.
  for (std::uint64_t fp = 5; fp <= 8; ++fp) EXPECT_FALSE(win.seen_or_insert(fp));
  EXPECT_EQ(win.size(), 4u);
  EXPECT_EQ(win.evictions(), 4u);
  EXPECT_FALSE(win.contains(1));
  EXPECT_TRUE(win.contains(8));
}

TEST(ReplayWindowGuard, ZeroCapacityDisablesSuppression) {
  ReplayWindow win(0);
  EXPECT_FALSE(win.seen_or_insert(7));
  EXPECT_FALSE(win.seen_or_insert(7));  // never reports a replay
  EXPECT_EQ(win.size(), 0u);
}

TEST(PeerGuardScoring, ReportsExactlyAtThresholdThenResets) {
  PeerGuard guard(PeerGuardConfig{0, 0, /*decode_fail_threshold=*/3, 16});
  const NodeId mallory{66};
  EXPECT_FALSE(guard.note_decode_failure(mallory, 0));
  EXPECT_FALSE(guard.note_decode_failure(mallory, 0));
  EXPECT_TRUE(guard.note_decode_failure(mallory, 0));   // strike three
  EXPECT_FALSE(guard.note_decode_failure(mallory, 0));  // streak reset
  // A well-formed frame clears a partial streak.
  guard.note_decode_failure(mallory, 0);
  guard.note_ok(mallory);
  EXPECT_FALSE(guard.note_decode_failure(mallory, 0));
  EXPECT_FALSE(guard.note_decode_failure(mallory, 0));
}

TEST(PeerGuardScoring, TrackedPeersAreHardCapped) {
  PeerGuard guard(PeerGuardConfig{1.0, 1.0, 3, /*max_peers=*/8});
  // An id-spraying attacker cannot grow per-peer state without bound.
  for (std::uint64_t id = 1; id <= 100; ++id) {
    (void)guard.admit(NodeId{id}, 0);
  }
  EXPECT_LE(guard.tracked(), 8u);
  EXPECT_EQ(guard.evictions(), 92u);
}

// --- Live PPSS instance under hostile frames. ---

constexpr GroupId kGroup{5150};
constexpr std::uint8_t kKindApp = 7;  // mirrors ppss.cpp's frame kinds

struct HostileInputFixture : ::testing::Test {
  static TestbedConfig config() {
    TestbedConfig cfg;
    cfg.initial_nodes = 30;
    cfg.node.pss.pi_min_public = 3;
    cfg.node.wcl.pi = 3;
    cfg.node.ppss.cycle = 30 * net::kSecond;
    cfg.seed = 1234;
    return cfg;
  }

  WhisperTestbed tb{config()};
  WhisperNode* alice = nullptr;
  WhisperNode* bob = nullptr;
  ppss::Ppss* alice_group = nullptr;
  ppss::Ppss* bob_group = nullptr;
  int bob_heard = 0;

  void SetUp() override {
    tb.run_for(6 * net::kMinute);
    alice = tb.alive_nodes()[0];
    bob = tb.alive_nodes()[1];
    crypto::Drbg d(1);
    alice_group = &alice->create_group(kGroup, crypto::RsaKeyPair::generate(512, d));
    bob_group = &bob->join_group(kGroup, *alice_group->invite(bob->id()),
                                 alice_group->self_descriptor());
    tb.run_for(2 * net::kMinute);
    ASSERT_TRUE(bob_group->joined());
    bob_group->on_app_message = [this](const wcl::RemotePeer&, BytesView) { ++bob_heard; };
  }

  /// A fully valid group-stripped app frame from alice (as handle_payload
  /// receives it after the node dispatcher strips the group id).
  Bytes app_frame(std::uint64_t nonce, BytesView body = to_bytes("hi")) {
    Writer w;
    w.u8(kKindApp);
    alice_group->passport().serialize(w);
    alice->wcl().self_peer().serialize(w);
    w.u64(nonce);
    w.u8(0);  // default app channel
    w.bytes(body);
    return w.data();
  }
};

TEST_F(HostileInputFixture, ValidFrameDeliversOnceReplayIsSuppressed) {
  const Bytes frame = app_frame(/*nonce=*/900);
  bob_group->handle_payload(frame);
  EXPECT_EQ(bob_heard, 1);
  const std::uint64_t replays_before = bob_group->stats().replays_suppressed;
  // Byte-identical re-injection (a captured frame) is suppressed.
  bob_group->handle_payload(frame);
  EXPECT_EQ(bob_heard, 1);
  EXPECT_EQ(bob_group->stats().replays_suppressed, replays_before + 1);
}

TEST_F(HostileInputFixture, TrailingGarbageRejectedWithoutStateChange) {
  Bytes frame = app_frame(/*nonce=*/901);
  frame.push_back(0xee);
  const std::uint64_t rejects_before = bob_group->stats().decode_rejects;
  const std::size_t view_before = bob_group->private_view().size();
  bob_group->handle_payload(frame);
  EXPECT_EQ(bob_heard, 0);
  EXPECT_EQ(bob_group->stats().decode_rejects, rejects_before + 1);
  EXPECT_EQ(bob_group->private_view().size(), view_before);
  // The nonce of the rejected frame was never consumed: the frame still
  // delivers once the garbage is stripped.
  bob_group->handle_payload(app_frame(/*nonce=*/901));
  EXPECT_EQ(bob_heard, 1);
}

TEST_F(HostileInputFixture, EveryTruncationRejectedWithoutStateChange) {
  const Bytes frame = app_frame(/*nonce=*/902);
  const std::size_t view_before = bob_group->private_view().size();
  const std::uint64_t bad_passports_before = bob_group->stats().bad_passports;
  std::uint64_t rejects_before = bob_group->stats().decode_rejects;
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    bob_group->handle_payload(BytesView(frame.data(), cut));
    // Clean rejection: counted by reason, nothing delivered, nothing grown.
    EXPECT_EQ(bob_group->stats().decode_rejects, rejects_before + 1) << "cut=" << cut;
    rejects_before = bob_group->stats().decode_rejects;
  }
  EXPECT_EQ(bob_heard, 0);
  EXPECT_EQ(bob_group->private_view().size(), view_before);
  EXPECT_EQ(bob_group->stats().bad_passports, bad_passports_before);
  // The intact frame still works after the whole truncation barrage.
  bob_group->handle_payload(frame);
  EXPECT_EQ(bob_heard, 1);
}

TEST_F(HostileInputFixture, UnknownFrameKindIsCountedBadValue) {
  const std::uint64_t rejects_before = bob_group->stats().decode_rejects;
  bob_group->handle_payload(Bytes{0x2a});
  bob_group->handle_payload(Bytes{});
  EXPECT_EQ(bob_group->stats().decode_rejects, rejects_before + 2);
}

TEST_F(HostileInputFixture, VerifiedSenderIsRateLimitedPastBurst) {
  // 200 distinct valid frames from the same (verified) member at one
  // instant: the per-peer bucket (20/s, burst 60) absorbs the burst and
  // sheds the rest, so a compromised member cannot flood the group.
  for (std::uint64_t i = 0; i < 200; ++i) {
    bob_group->handle_payload(app_frame(/*nonce=*/2000 + i));
  }
  EXPECT_GT(bob_group->stats().rate_limited, 0u);
  EXPECT_LT(bob_heard, 70);  // burst + slack, far below 200
  EXPECT_EQ(bob_heard, 200 - static_cast<int>(bob_group->stats().rate_limited));
}

TEST_F(HostileInputFixture, ForgedGossipSenderIdIsRejected) {
  // A gossip frame whose leading view entry does not match the passport's
  // node id is a spoof: rejected as kBadValue, view untouched.
  Writer w;
  w.u8(1);  // kKindGossipReq
  w.u32(1);
  alice_group->passport().serialize(w);
  w.u64(alice_group->leader_epoch());  // leader_epoch
  w.u64(0);                            // heartbeat_age_us
  w.u64(0);                            // proposal_hash
  w.node_id(kNilNode);                 // proposal_node
  w.bytes(Bytes{});                    // no rotation announcement
  // One entry claiming to be bob (mismatching alice's passport).
  w.u16(1);
  ppss::PrivateEntry entry;
  entry.peer = bob_group->self_descriptor();
  entry.age = 0;
  entry.serialize(w);
  const std::uint64_t rejects_before = bob_group->stats().decode_rejects;
  const std::size_t view_before = bob_group->private_view().size();
  bob_group->handle_payload(w.data());
  EXPECT_EQ(bob_group->stats().decode_rejects, rejects_before + 1);
  EXPECT_EQ(bob_group->private_view().size(), view_before);
}

}  // namespace
}  // namespace whisper

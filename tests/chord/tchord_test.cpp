#include "chord/tchord.hpp"

#include <gtest/gtest.h>

#include <map>

#include "whisper/testbed.hpp"

namespace whisper::chord {
namespace {

constexpr GroupId kGroup{5000};

TestbedConfig config(std::size_t n, std::uint64_t seed) {
  TestbedConfig cfg;
  cfg.initial_nodes = n;
  cfg.node.pss.pi_min_public = 3;
  cfg.node.wcl.pi = 3;
  cfg.node.ppss.cycle = 30 * net::kSecond;
  cfg.seed = seed;
  return cfg;
}

struct RingFixture {
  WhisperTestbed tb;
  std::vector<WhisperNode*> members;
  std::vector<std::unique_ptr<TChord>> rings;

  RingFixture(std::size_t n_nodes, std::size_t n_members, std::uint64_t seed = 91)
      : tb(config(n_nodes, seed)) {
    tb.run_for(6 * net::kMinute);
    auto nodes = tb.alive_nodes();
    WhisperNode* founder = nodes[0];
    auto& fg = founder->create_group(kGroup, [&] {
      crypto::Drbg d(seed);
      return crypto::RsaKeyPair::generate(512, d);
    }());
    members.push_back(founder);
    for (std::size_t i = 1; i < n_members; ++i) {
      nodes[i]->join_group(kGroup, *fg.invite(nodes[i]->id()), fg.self_descriptor());
      members.push_back(nodes[i]);
      tb.run_for(5 * net::kSecond);
    }
    tb.run_for(5 * net::kMinute);  // private views converge

    TChordConfig tc;
    tc.cycle = 20 * net::kSecond;
    for (WhisperNode* m : members) {
      rings.push_back(
          std::make_unique<TChord>(tb.clock(), *m->group(kGroup), tc, tb.rng().fork()));
      rings.back()->start();
    }
  }

  /// Expected successor of each member key given global knowledge.
  std::map<ChordKey, NodeId> global_ring() const {
    std::map<ChordKey, NodeId> ring;
    for (WhisperNode* m : members) ring[chord_key_of(m->id())] = m->id();
    return ring;
  }
};

TEST(TChord, RingConvergesToCorrectSuccessors) {
  RingFixture f(35, 10);
  f.tb.run_for(10 * net::kMinute);
  auto ring = f.global_ring();
  std::size_t correct = 0;
  for (std::size_t i = 0; i < f.rings.size(); ++i) {
    auto succ = f.rings[i]->successor();
    if (!succ) continue;
    // Expected: next key clockwise in the global ring.
    auto it = ring.upper_bound(f.rings[i]->self_key());
    if (it == ring.end()) it = ring.begin();
    if (succ->id() == it->second) ++correct;
  }
  // T-Chord converges to the perfect ring in a few cycles.
  EXPECT_GE(correct, f.rings.size() - 1);
}

TEST(TChord, PredecessorsConsistent) {
  RingFixture f(35, 8, 92);
  f.tb.run_for(10 * net::kMinute);
  auto ring = f.global_ring();
  std::size_t correct = 0;
  for (auto& r : f.rings) {
    auto pred = r->predecessor();
    if (!pred) continue;
    auto it = ring.lower_bound(r->self_key());
    if (it == ring.begin()) it = ring.end();
    --it;
    if (pred->id() == it->second) ++correct;
  }
  EXPECT_GE(correct, f.rings.size() - 1);
}

TEST(TChord, FingersPopulated) {
  RingFixture f(35, 10, 93);
  f.tb.run_for(10 * net::kMinute);
  for (auto& r : f.rings) {
    EXPECT_GE(r->fingers().size(), 2u);
    EXPECT_GT(r->candidate_count(), 3u);
  }
}

TEST(TChord, LookupFindsCorrectOwner) {
  RingFixture f(35, 10, 94);
  f.tb.run_for(12 * net::kMinute);
  auto ring = f.global_ring();

  int answered = 0, correct = 0;
  Rng rng(4242);
  for (int q = 0; q < 20; ++q) {
    auto& querier = f.rings[rng.pick_index(f.rings)];
    const ChordKey key = rng.next_u64();
    auto it = ring.lower_bound(key);
    if (it == ring.end()) it = ring.begin();
    const NodeId expected = it->second;
    querier->lookup(key, [&, expected](std::optional<TChord::LookupResult> result) {
      if (!result) return;
      ++answered;
      if (result->owner.id() == expected || result->owner.id().is_nil()) {
        // nil id happens only for local self-hits where id comes from self.
      }
      if (result->owner.id() == expected) ++correct;
    });
    f.tb.run_for(30 * net::kSecond);
  }
  EXPECT_GE(answered, 16);
  EXPECT_GE(correct, answered * 8 / 10);
}

TEST(TChord, LookupDelaysReasonable) {
  RingFixture f(35, 10, 95);
  f.tb.run_for(12 * net::kMinute);
  std::vector<net::Time> rtts;
  Rng rng(777);
  for (int q = 0; q < 15; ++q) {
    auto& querier = f.rings[rng.pick_index(f.rings)];
    querier->lookup(rng.next_u64(), [&](std::optional<TChord::LookupResult> result) {
      if (result) rtts.push_back(result->rtt);
    });
    f.tb.run_for(30 * net::kSecond);
  }
  ASSERT_GE(rtts.size(), 10u);
  for (net::Time rtt : rtts) {
    EXPECT_LT(rtt, 20 * net::kSecond);
  }
}

TEST(ChordKeyOf, DeterministicAndSpread) {
  EXPECT_EQ(chord_key_of(NodeId{1}), chord_key_of(NodeId{1}));
  EXPECT_NE(chord_key_of(NodeId{1}), chord_key_of(NodeId{2}));
}

TEST(RingDistance, WrapsCorrectly) {
  EXPECT_EQ(ring_distance(10, 20), 10u);
  EXPECT_EQ(ring_distance(20, 10), static_cast<ChordKey>(-10));
  EXPECT_EQ(ring_distance(5, 5), 0u);
}

}  // namespace
}  // namespace whisper::chord

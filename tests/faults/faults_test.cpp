// Unit tests for the deterministic fault-injection fabric: every fault
// kind exercised against a raw sim::Network, plus the script parser and
// the same-seed determinism contract the chaos suite relies on.
#include "faults/faults.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <set>

#include "faults/script.hpp"
#include "sim/network.hpp"

namespace whisper::faults {
namespace {

Endpoint ep(std::uint32_t ip) { return Endpoint{ip, 4000}; }

struct FaultsFixture : ::testing::Test {
  sim::Simulator sim{7};
  sim::Network net{sim, std::make_unique<sim::FixedLatency>(net::kMillisecond)};
  std::vector<Endpoint> live;
  std::vector<Endpoint> relays;
  std::vector<Endpoint> crashed;
  std::vector<Endpoint> nat_resets;
  std::unique_ptr<FaultFabric> fabric;

  FaultFabric& install(std::uint64_t seed = 11) {
    FaultFabric::Environment env;
    env.live_endpoints = [this] { return live; };
    env.relay_endpoints = [this] { return relays; };
    env.crash_node = [this](Endpoint e) {
      crashed.push_back(e);
      net.detach(e);
    };
    env.reset_nat = [this](Endpoint e) { nat_resets.push_back(e); };
    fabric = std::make_unique<FaultFabric>(sim, net, std::move(env), Rng(seed));
    return *fabric;
  }

  // Attach a counting handler; returns a reference to the live count.
  int& sink(Endpoint e) {
    auto counter = std::make_shared<int>(0);
    counts_.push_back(counter);
    net.attach(e, [counter](const net::Datagram&) { ++*counter; });
    return *counter;
  }

  std::vector<std::shared_ptr<int>> counts_;
};

TEST_F(FaultsFixture, IdleFabricPassesPacketsUntouched) {
  FaultFabric& f = install();
  EXPECT_TRUE(f.idle());
  int& got = sink(ep(1));
  net.send(ep(2), ep(1), Bytes{1, 2, 3}, net::Proto::kApp);
  sim.run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(f.stats().packets_dropped, 0u);
  EXPECT_EQ(f.stats().packets_delayed, 0u);
  EXPECT_TRUE(f.idle());
}

TEST_F(FaultsFixture, PairwisePartitionCutsBothDirectionsThenHeals) {
  FaultFabric& f = install();
  FaultSpec spec;
  spec.kind = FaultKind::kPartition;
  spec.start = net::kSecond;
  spec.end = 3 * net::kSecond;
  spec.targets_a = {ep(1)};
  spec.targets_b = {ep(2)};
  f.schedule(spec);

  int& at1 = sink(ep(1));
  int& at2 = sink(ep(2));
  int& at3 = sink(ep(3));

  // Before the window: delivered.
  net.send(ep(1), ep(2), Bytes{0}, net::Proto::kApp);
  sim.run_until(net::kSecond / 2);
  EXPECT_EQ(at2, 1);

  // Inside the window: cut in both directions, third parties unaffected.
  sim.run_until(2 * net::kSecond);
  EXPECT_FALSE(f.idle());
  net.send(ep(1), ep(2), Bytes{0}, net::Proto::kApp);
  net.send(ep(2), ep(1), Bytes{0}, net::Proto::kApp);
  net.send(ep(1), ep(3), Bytes{0}, net::Proto::kApp);
  sim.run_until(2 * net::kSecond + 10 * net::kMillisecond);
  EXPECT_EQ(at2, 1);
  EXPECT_EQ(at1, 0);
  EXPECT_EQ(at3, 1);
  EXPECT_EQ(f.stats().packets_dropped, 2u);

  // After the window: healed.
  sim.run_until(3 * net::kSecond + net::kMillisecond);
  net.send(ep(1), ep(2), Bytes{0}, net::Proto::kApp);
  sim.run();
  EXPECT_EQ(at2, 2);
  EXPECT_TRUE(f.idle());
}

TEST_F(FaultsFixture, AsymmetricLossOnlyCutsOneDirection) {
  FaultFabric& f = install();
  FaultSpec spec;
  spec.kind = FaultKind::kLoss;
  spec.start = 0;
  spec.end = net::kMinute;
  spec.probability = 1.0;
  spec.symmetric = false;
  spec.targets_a = {ep(1)};
  spec.targets_b = {ep(2)};
  f.schedule(spec);

  int& at1 = sink(ep(1));
  int& at2 = sink(ep(2));
  sim.run_until(net::kSecond);
  net.send(ep(1), ep(2), Bytes{0}, net::Proto::kApp);  // A->B: lost
  net.send(ep(2), ep(1), Bytes{0}, net::Proto::kApp);  // B->A: delivered
  sim.run_until(2 * net::kSecond);
  EXPECT_EQ(at2, 0);
  EXPECT_EQ(at1, 1);
  EXPECT_EQ(f.stats().packets_dropped, 1u);
}

TEST_F(FaultsFixture, DelaySpikeAddsConfiguredDelay) {
  FaultFabric& f = install();
  FaultSpec spec;
  spec.kind = FaultKind::kDelay;
  spec.start = 0;
  spec.end = net::kMinute;
  spec.delay = 50 * net::kMillisecond;
  spec.probability = 1.0;
  f.schedule(spec);

  int& got = sink(ep(1));
  sim.run_until(net::kSecond);
  net.send(ep(2), ep(1), Bytes{0}, net::Proto::kApp);
  // Base latency 1ms + 50ms spike: not there at +50ms, there at +51ms.
  sim.run_until(net::kSecond + 50 * net::kMillisecond);
  EXPECT_EQ(got, 0);
  sim.run_until(net::kSecond + 51 * net::kMillisecond);
  EXPECT_EQ(got, 1);
  EXPECT_EQ(f.stats().packets_delayed, 1u);
}

TEST_F(FaultsFixture, DuplicationDeliversTwoCopies) {
  FaultFabric& f = install();
  FaultSpec spec;
  spec.kind = FaultKind::kDuplicate;
  spec.start = 0;
  spec.end = net::kMinute;
  spec.probability = 1.0;
  f.schedule(spec);

  int& got = sink(ep(1));
  sim.run_until(net::kSecond);
  net.send(ep(2), ep(1), Bytes{9}, net::Proto::kApp);
  sim.run_until(2 * net::kSecond);
  EXPECT_EQ(got, 2);
  EXPECT_EQ(f.stats().packets_duplicated, 1u);
  EXPECT_EQ(net.packets_duplicated(), 1u);
}

TEST_F(FaultsFixture, CorruptionFlipsExactlyOneBit) {
  FaultFabric& f = install();
  FaultSpec spec;
  spec.kind = FaultKind::kCorrupt;
  spec.start = 0;
  spec.end = net::kMinute;
  spec.probability = 1.0;
  f.schedule(spec);

  const Bytes original(32, 0xA5);
  Bytes received;
  net.attach(ep(1), [&](const net::Datagram& d) { received = d.payload; });
  sim.run_until(net::kSecond);
  net.send(ep(2), ep(1), original, net::Proto::kApp);
  sim.run_until(2 * net::kSecond);

  ASSERT_EQ(received.size(), original.size());
  int flipped_bits = 0;
  for (std::size_t i = 0; i < original.size(); ++i) {
    flipped_bits += std::popcount(
        static_cast<unsigned>(original[i] ^ received[i]));
  }
  EXPECT_EQ(flipped_bits, 1);
  EXPECT_EQ(f.stats().packets_corrupted, 1u);
}

TEST_F(FaultsFixture, PauseQueuesInboundAndFlushesInOrderOnResume) {
  FaultFabric& f = install();
  std::vector<Bytes> received;
  net.attach(ep(1), [&](const net::Datagram& d) { received.push_back(d.payload); });

  f.pause(ep(1));
  EXPECT_TRUE(f.paused(ep(1)));
  net.send(ep(2), ep(1), Bytes{1}, net::Proto::kApp);
  net.send(ep(2), ep(1), Bytes{2}, net::Proto::kApp);
  net.send(ep(2), ep(1), Bytes{3}, net::Proto::kApp);
  sim.run();
  EXPECT_TRUE(received.empty());
  EXPECT_EQ(f.stats().packets_queued, 3u);
  // Queued packets are in flight, not dropped: the gray-failure contract.
  EXPECT_EQ(net.packets_in_flight(), 3u);
  EXPECT_EQ(net.packets_dropped(), 0u);

  f.resume(ep(1));
  EXPECT_FALSE(f.paused(ep(1)));
  ASSERT_EQ(received.size(), 3u);
  EXPECT_EQ(received[0], Bytes{1});
  EXPECT_EQ(received[1], Bytes{2});
  EXPECT_EQ(received[2], Bytes{3});
  EXPECT_EQ(f.stats().packets_flushed, 3u);
  EXPECT_EQ(net.packets_in_flight(), 0u);
}

TEST_F(FaultsFixture, ScheduledPauseWindowResumesAutomatically) {
  live = {ep(1), ep(2), ep(3)};
  FaultFabric& f = install();
  FaultSpec spec;
  spec.kind = FaultKind::kPause;
  spec.start = net::kSecond;
  spec.end = 2 * net::kSecond;
  spec.count = 1;
  spec.targets_a = {ep(1)};
  f.schedule(spec);

  int& got = sink(ep(1));
  sim.run_until(net::kSecond + net::kMillisecond);
  EXPECT_TRUE(f.paused(ep(1)));
  net.send(ep(2), ep(1), Bytes{7}, net::Proto::kApp);
  sim.run_until(2 * net::kSecond - net::kMillisecond);
  EXPECT_EQ(got, 0);
  sim.run_until(2 * net::kSecond + net::kMillisecond);
  EXPECT_FALSE(f.paused(ep(1)));
  EXPECT_EQ(got, 1);
  EXPECT_EQ(f.stats().nodes_paused, 1u);
}

TEST_F(FaultsFixture, CrashDrawsVictimsFromRelayPool) {
  live = {ep(1), ep(2), ep(3), ep(4), ep(5), ep(6)};
  relays = {ep(5), ep(6)};
  FaultFabric& f = install();
  FaultSpec spec;
  spec.kind = FaultKind::kCrash;
  spec.start = net::kSecond;
  spec.end = 0;  // one-shot
  spec.count = 1;
  f.schedule(spec);
  sim.run();
  ASSERT_EQ(crashed.size(), 1u);
  EXPECT_TRUE(crashed[0] == ep(5) || crashed[0] == ep(6));
  EXPECT_EQ(f.stats().nodes_crashed, 1u);
}

TEST_F(FaultsFixture, NatResetFiresCallbackPerVictim) {
  live = {ep(1), ep(2), ep(3), ep(4)};
  FaultFabric& f = install();
  FaultSpec spec;
  spec.kind = FaultKind::kNatReset;
  spec.start = net::kSecond;
  spec.end = 0;
  spec.count = 2;
  f.schedule(spec);
  sim.run();
  EXPECT_EQ(nat_resets.size(), 2u);
  EXPECT_NE(nat_resets[0], nat_resets[1]);
  EXPECT_EQ(f.stats().nat_resets, 2u);
}

// Which ordered pairs still deliver during a fraction=0.5 bisection of
// `n` live endpoints, as a sorted set — the determinism probe.
std::set<std::pair<std::uint32_t, std::uint32_t>> bisection_survivors(
    std::uint64_t seed, std::uint32_t n) {
  sim::Simulator sim{7};
  sim::Network net{sim, std::make_unique<sim::FixedLatency>(net::kMillisecond)};
  std::vector<Endpoint> live;
  for (std::uint32_t i = 1; i <= n; ++i) live.push_back(ep(i));
  FaultFabric::Environment env;
  env.live_endpoints = [&] { return live; };
  FaultFabric fabric(sim, net, std::move(env), Rng(seed));

  FaultSpec spec;
  spec.kind = FaultKind::kPartition;
  spec.start = net::kSecond;
  spec.end = net::kMinute;
  spec.fraction = 0.5;
  fabric.schedule(spec);

  std::set<std::pair<std::uint32_t, std::uint32_t>> survivors;
  for (std::uint32_t i = 1; i <= n; ++i) {
    net.attach(ep(i), [&survivors, i](const net::Datagram& d) {
      survivors.emplace(d.src.ip, i);
    });
  }
  sim.run_until(2 * net::kSecond);
  for (std::uint32_t i = 1; i <= n; ++i) {
    for (std::uint32_t j = 1; j <= n; ++j) {
      if (i != j) net.send(ep(i), ep(j), Bytes{0}, net::Proto::kApp);
    }
  }
  sim.run_until(3 * net::kSecond);
  return survivors;
}

TEST(FaultDeterminism, BisectionIdenticalAcrossSameSeedRuns) {
  const auto a = bisection_survivors(/*seed=*/21, /*n=*/10);
  const auto b = bisection_survivors(/*seed=*/21, /*n=*/10);
  EXPECT_EQ(a, b);
  // The cut is real and nontrivial: a 5/5 split blocks 2*5*5 = 50 of the 90
  // ordered pairs.
  EXPECT_EQ(a.size(), 40u);
}

TEST(FaultDeterminism, DifferentSeedsCutDifferently) {
  const auto a = bisection_survivors(/*seed=*/21, /*n=*/10);
  const auto c = bisection_survivors(/*seed=*/22, /*n=*/10);
  // Same sizes (the split is always fraction*n) but different membership
  // with overwhelming probability for 10-choose-5 splits.
  EXPECT_EQ(a.size(), c.size());
  EXPECT_NE(a, c);
}

// --- Script parser. ---

TEST(FaultScript, ParsesKindsTimesAndKeys) {
  const auto result = parse_script(
      "# comment line\n"
      "partition 5m +2m fraction=0.25\n"
      "\n"
      "loss 8m +1m probability=0.3 symmetric=0\n"
      "delay 10m +30s delay=200ms probability=1.0\n"
      "crash 12m - count=3\n"
      "natreset 90 0 count=5\n");
  ASSERT_TRUE(result.ok()) << result.error;
  ASSERT_EQ(result.specs.size(), 5u);

  const FaultSpec& part = result.specs[0];
  EXPECT_EQ(part.kind, FaultKind::kPartition);
  EXPECT_EQ(part.start, 5 * net::kMinute);
  EXPECT_EQ(part.end, 7 * net::kMinute);
  EXPECT_DOUBLE_EQ(part.fraction, 0.25);

  const FaultSpec& loss = result.specs[1];
  EXPECT_EQ(loss.kind, FaultKind::kLoss);
  EXPECT_DOUBLE_EQ(loss.probability, 0.3);
  EXPECT_FALSE(loss.symmetric);

  const FaultSpec& delay = result.specs[2];
  EXPECT_EQ(delay.kind, FaultKind::kDelay);
  EXPECT_EQ(delay.delay, 200 * net::kMillisecond);
  EXPECT_EQ(delay.end, 10 * net::kMinute + 30 * net::kSecond);

  const FaultSpec& crash = result.specs[3];
  EXPECT_EQ(crash.kind, FaultKind::kCrash);
  EXPECT_EQ(crash.end, 0u);  // one-shot
  EXPECT_EQ(crash.count, 3u);

  const FaultSpec& natreset = result.specs[4];
  EXPECT_EQ(natreset.kind, FaultKind::kNatReset);
  EXPECT_EQ(natreset.start, 90 * net::kSecond);  // bare number = seconds
  EXPECT_EQ(natreset.count, 5u);
}

TEST(FaultScript, ParseDurationUnits) {
  net::Time t = 0;
  EXPECT_TRUE(parse_duration("150ms", t));
  EXPECT_EQ(t, 150 * net::kMillisecond);
  EXPECT_TRUE(parse_duration("2m", t));
  EXPECT_EQ(t, 2 * net::kMinute);
  EXPECT_TRUE(parse_duration("45us", t));
  EXPECT_EQ(t, 45u);
  EXPECT_TRUE(parse_duration("30", t));
  EXPECT_EQ(t, 30 * net::kSecond);
  EXPECT_TRUE(parse_duration("+45s", t));
  EXPECT_EQ(t, 45 * net::kSecond);
  EXPECT_FALSE(parse_duration("abc", t));
  EXPECT_FALSE(parse_duration("", t));
  EXPECT_FALSE(parse_duration("12kg", t));
}

TEST(FaultScript, ErrorsNameTheLine) {
  const auto bad_kind = parse_script("partition 1m +1m\nbogus 1m +1m\n");
  EXPECT_FALSE(bad_kind.ok());
  EXPECT_NE(bad_kind.error.find("line 2"), std::string::npos) << bad_kind.error;

  const auto bad_key = parse_script("loss 1m +1m probability=oops\n");
  EXPECT_FALSE(bad_key.ok());
  EXPECT_NE(bad_key.error.find("line 1"), std::string::npos) << bad_key.error;

  const auto missing = parse_script("loss 1m\n");
  EXPECT_FALSE(missing.ok());
}

}  // namespace
}  // namespace whisper::faults

// Chaos soak: a 500-node deployment under a scripted bisection partition
// plus relay crashes must (a) lose routes while the cut is live, (b)
// recover route success to within 5% of the pre-fault baseline after the
// heal, and (c) do all of it byte-identically across same-seed runs — the
// fault fabric is part of the deterministic simulation, not noise on top.
#include <gtest/gtest.h>

#include "faults/faults.hpp"
#include "pss/metrics.hpp"
#include "telemetry/export.hpp"
#include "whisper/testbed.hpp"

namespace whisper {
namespace {

// Fire `pairs` confidential sends between deterministically-picked node
// pairs and report the fraction acknowledged by the end of `window`.
double route_success(WhisperTestbed& tb, std::size_t pairs, std::size_t salt,
                     net::Time window) {
  auto nodes = tb.alive_nodes();
  auto ok = std::make_shared<int>(0);
  int sent = 0;
  for (std::size_t k = 0; k < pairs; ++k) {
    WhisperNode* src = nodes[(salt + 2 * k) % nodes.size()];
    WhisperNode* dst = nodes[(salt + 2 * k + 7) % nodes.size()];
    if (src == dst) continue;
    ++sent;
    src->wcl().send_confidential(
        dst->wcl().self_peer(), to_bytes("probe"),
        [ok](wcl::SendOutcome o) {
          if (o != wcl::SendOutcome::kNoAlternative) ++*ok;
        });
  }
  tb.run_for(window);
  return sent == 0 ? 0.0 : static_cast<double>(*ok) / static_cast<double>(sent);
}

struct ChaosOutcome {
  double baseline = 0;
  double during_fault = 0;
  double recovered = 0;
  faults::FaultFabric::Stats fault_stats;
  std::uint64_t relays_lost = 0;
  std::string metrics_jsonl;
};

ChaosOutcome run_chaos(std::uint64_t seed) {
  TestbedConfig cfg;
  cfg.initial_nodes = 500;
  cfg.natted_fraction = 0.7;
  cfg.node.pss.pi_min_public = 3;
  cfg.node.wcl.pi = 3;
  cfg.seed = seed;
  WhisperTestbed tb(cfg);
  tb.run_for(8 * net::kMinute);

  ChaosOutcome out;
  out.baseline = route_success(tb, /*pairs=*/30, /*salt=*/3, net::kMinute);

  // Script the incident: a 30%-bisection partition lasting four minutes,
  // with two relay crashes one minute in (the partition hides the loss
  // from half the clients until it heals — the nasty ordering).
  faults::FaultFabric& fabric = tb.install_fault_fabric();
  const net::Time t0 = tb.clock().now() + 30 * net::kSecond;
  faults::FaultSpec partition;
  partition.kind = faults::FaultKind::kPartition;
  partition.start = t0;
  partition.end = t0 + 4 * net::kMinute;
  partition.fraction = 0.3;
  faults::FaultSpec crash;
  crash.kind = faults::FaultKind::kCrash;
  crash.start = t0 + net::kMinute;
  crash.count = 2;
  fabric.schedule_all({partition, crash});

  // Probe while the cut is live: every cross-cut route must fail.
  tb.run_for(net::kMinute);  // 30s into the partition window
  out.during_fault = route_success(tb, 30, /*salt=*/101, 90 * net::kSecond);

  // Ride out the window, then give the stack its recovery budget: relay
  // failover needs the keepalive loss threshold (3 x 30s), the PSS needs a
  // quarantine TTL (2 min) to forgive peers cut off by the partition.
  tb.run_for(2 * net::kMinute);  // to the heal
  tb.run_for(5 * net::kMinute);  // recovery budget
  out.recovered = route_success(tb, 30, /*salt=*/211, net::kMinute);

  out.fault_stats = fabric.stats();
  for (WhisperNode* n : tb.all_nodes()) {
    out.relays_lost += n->transport().relays_lost();
  }
  out.metrics_jsonl = telemetry::to_jsonl(tb.registry());
  return out;
}

// Shared across the two tests below: one pair of same-seed runs.
const ChaosOutcome& chaos_run(int which) {
  static const ChaosOutcome runs[2] = {run_chaos(777), run_chaos(777)};
  return runs[which & 1];
}

TEST(ChaosSoak, RouteSuccessRecoversAfterPartitionAndRelayCrashes) {
  const ChaosOutcome& out = chaos_run(0);
  // A warm 500-node deployment routes reliably.
  EXPECT_GE(out.baseline, 0.85) << "baseline route success too low";
  // The partition actually bit: cross-cut probes failed.
  EXPECT_LT(out.during_fault, out.baseline - 0.1);
  EXPECT_GT(out.fault_stats.packets_dropped, 0u);
  EXPECT_EQ(out.fault_stats.nodes_crashed, 2u);
  // Clients of the crashed relays noticed and failed over.
  EXPECT_GE(out.relays_lost, 1u);
  // The headline acceptance: recovery to within 5% of the baseline.
  EXPECT_GE(out.recovered, out.baseline - 0.05)
      << "baseline=" << out.baseline << " recovered=" << out.recovered;
}

TEST(PartitionRejoin, OverlayRemergesAfterFullViewTurnover) {
  // A partition that outlives the view's turnover time (15 gossip cycles
  // here) leaves no cross-side descriptor in any view: timeouts evict them
  // all. Without the PSS healing reserve the overlay stays bisected
  // forever after the heal; with it, re-probes of evicted peers re-seed
  // the first cross edge and gossip re-blends the sides.
  TestbedConfig cfg;
  cfg.initial_nodes = 60;
  cfg.node.pss.pi_min_public = 3;
  cfg.node.wcl.pi = 3;
  cfg.seed = 913;
  WhisperTestbed tb(cfg);
  tb.run_for(6 * net::kMinute);

  faults::FaultFabric& fabric = tb.install_fault_fabric();
  faults::FaultSpec cut;
  cut.kind = faults::FaultKind::kPartition;
  cut.start = tb.clock().now();
  cut.end = cut.start + 150 * net::kSecond;
  cut.fraction = 0.5;
  fabric.schedule(cut);
  tb.run_for(150 * net::kSecond);

  tb.run_for(5 * net::kMinute);  // healing time (quarantine TTL + re-probes)

  const double reachable =
      pss::reachable_fraction(tb.overlay_snapshot(), tb.alive_nodes()[0]->id());
  EXPECT_GT(reachable, 0.9) << "overlay still bisected after heal";
  std::uint64_t rejoined = 0;
  for (WhisperNode* n : tb.alive_nodes()) rejoined += n->pss().peers_rejoined();
  EXPECT_GT(rejoined, 0u) << "recovery did not go through the healing reserve";
}

TEST(ChaosSoak, SameSeedRunsAreByteIdentical) {
  const ChaosOutcome& a = chaos_run(0);
  const ChaosOutcome& b = chaos_run(1);
  EXPECT_EQ(a.baseline, b.baseline);
  EXPECT_EQ(a.during_fault, b.during_fault);
  EXPECT_EQ(a.recovered, b.recovered);
  EXPECT_EQ(a.fault_stats.packets_dropped, b.fault_stats.packets_dropped);
  EXPECT_EQ(a.relays_lost, b.relays_lost);
  EXPECT_EQ(a.metrics_jsonl, b.metrics_jsonl);
  // Non-vacuous: the export carries fault-fabric and recovery telemetry.
  EXPECT_NE(a.metrics_jsonl.find("faults.packets.dropped"), std::string::npos);
  EXPECT_NE(a.metrics_jsonl.find("faults.nodes.crashed"), std::string::npos);
  EXPECT_NE(a.metrics_jsonl.find("pss.peers.quarantined"), std::string::npos);
}

}  // namespace
}  // namespace whisper

// Sharded chaos soak (the TSan CI target): a 10k-node deployment on 8
// shards rides out per-shard partitions plus relay crashes and must
// recover route success to within 5% of its pre-fault baseline. Victim
// selection is shard-local randomness, so unlike the determinism gate this
// run is NOT byte-identical across shard counts — it gates on recovery
// (DESIGN.md §13). Under TSan the same binary doubles as the data-race
// detector for the cross-shard channels and barrier protocol.
//
// WHISPER_SOAK_NODES overrides the population (sanitizer bots with tight
// wall-clock budgets can shrink it without editing the test).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>

#include "faults/faults.hpp"
#include "whisper/scale.hpp"

namespace whisper {
namespace {

std::size_t soak_nodes() {
  if (const char* env = std::getenv("WHISPER_SOAK_NODES")) {
    const long v = std::atol(env);
    if (v > 100) return static_cast<std::size_t>(v);
  }
  return 10'000;
}

// Fire confidential probes between deterministically-picked global indices
// (stride 37 lands the pairs on every shard) and report the acked fraction
// after `window`. The ack callback runs on shard worker threads.
double route_success(ScaleTestbed& tb, std::size_t pairs, std::size_t salt,
                     net::Time window) {
  const std::size_t n = tb.node_count();
  auto ok = std::make_shared<std::atomic<int>>(0);
  int sent = 0;
  for (std::size_t k = 0; k < pairs; ++k) {
    WhisperNode* src = tb.node_at((salt + 37 * k) % n);
    WhisperNode* dst = tb.node_at((salt + 37 * k + 11) % n);
    if (src == nullptr || dst == nullptr || src == dst) continue;
    if (!src->running() || !dst->running()) continue;
    ++sent;
    src->wcl().send_confidential(
        dst->wcl().self_peer(), to_bytes("probe"),
        [ok](wcl::SendOutcome o) {
          if (o != wcl::SendOutcome::kNoAlternative) ok->fetch_add(1);
        });
  }
  tb.run_for(window);
  return sent == 0 ? 0.0
                   : static_cast<double>(ok->load()) / static_cast<double>(sent);
}

TEST(ShardedChaosSoak, TenThousandNodesRecoverOnEightShards) {
  ScaleConfig cfg;
  cfg.initial_nodes = soak_nodes();
  cfg.shards = 8;
  cfg.natted_fraction = 0.7;
  cfg.latency = "cluster";
  cfg.seed = 4242;
  cfg.node.pss.pi_min_public = 3;
  cfg.node.wcl.pi = 3;
  cfg.node_telemetry = false;  // aggregate metrics only at this population
  cfg.key_cycle = 256;
  ScaleTestbed tb(cfg);

  tb.run_for(6 * net::kMinute);  // substrate convergence
  const double baseline = route_success(tb, 40, /*salt=*/5, net::kMinute);
  EXPECT_GE(baseline, 0.8) << "baseline route success too low";

  // The incident, scheduled on every shard's fabric: a 30% partition for
  // three minutes, with two relay crashes per shard one minute in.
  auto fabrics = tb.install_fault_fabrics();
  ASSERT_EQ(fabrics.size(), 8u);
  const net::Time t0 = tb.now() + 30 * net::kSecond;
  faults::FaultSpec partition;
  partition.kind = faults::FaultKind::kPartition;
  partition.start = t0;
  partition.end = t0 + 3 * net::kMinute;
  partition.fraction = 0.3;
  faults::FaultSpec crash;
  crash.kind = faults::FaultKind::kCrash;
  crash.start = t0 + net::kMinute;
  crash.count = 2;
  for (faults::FaultFabric* f : fabrics) f->schedule_all({partition, crash});

  // Ride out the incident, then grant the recovery budget: relay failover
  // needs the keepalive loss threshold (3 x 30s), the PSS a quarantine TTL
  // (2 min) to forgive peers the partition cut off.
  tb.run_for(4 * net::kMinute);
  tb.run_for(5 * net::kMinute);
  const double recovered = route_success(tb, 40, /*salt=*/211, net::kMinute);

  std::uint64_t crashed = 0, dropped = 0;
  for (faults::FaultFabric* f : fabrics) {
    crashed += f->stats().nodes_crashed;
    dropped += f->stats().packets_dropped;
  }
  EXPECT_EQ(crashed, 16u);  // two per shard
  EXPECT_GT(dropped, 0u) << "partitions never bit";
  EXPECT_EQ(tb.alive_count(), cfg.initial_nodes - crashed);
  EXPECT_GT(tb.cross_shard_messages(), 1000u) << "soak never crossed shards";

  // The headline gate: recovery to within 5% of baseline.
  EXPECT_GE(recovered, baseline - 0.05)
      << "baseline=" << baseline << " recovered=" << recovered;
}

}  // namespace
}  // namespace whisper

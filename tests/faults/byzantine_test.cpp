// Byzantine peer model: misbehaving nodes mangle, replay, flood and
// fabricate — and the honest stack must shrug. Unit tests pin each
// misbehaviour to its defense (decode rejection, replay suppression, rate
// limiting, view hygiene); the soak shows a 500-node deployment with 10% of
// its peers hostile keeps honest delivery and overlay reachability within
// 5% of its own no-adversary baseline, byte-identically across same-seed
// runs.
#include <gtest/gtest.h>

#include <memory>

#include "faults/faults.hpp"
#include "faults/script.hpp"
#include "pss/metrics.hpp"
#include "telemetry/export.hpp"
#include "whisper/testbed.hpp"

namespace whisper {
namespace {

TestbedConfig small_config(std::uint64_t seed, std::size_t nodes = 40) {
  TestbedConfig cfg;
  cfg.initial_nodes = nodes;
  cfg.natted_fraction = 0.7;
  cfg.node.pss.pi_min_public = 3;
  cfg.node.wcl.pi = 3;
  cfg.seed = seed;
  return cfg;
}

/// Open-ended window making `actors` misbehave as `kind` from now on.
faults::FaultSpec byz_spec(WhisperTestbed& tb, faults::FaultKind kind,
                           std::vector<Endpoint> actors, double probability = 1.0,
                           double rate = 10.0) {
  faults::FaultSpec spec;
  spec.kind = kind;
  spec.start = tb.clock().now();
  spec.end = 0;  // open window
  spec.probability = probability;
  spec.rate = rate;
  spec.targets_a = std::move(actors);
  return spec;
}

std::uint64_t total_decode_rejects(WhisperTestbed& tb) {
  std::uint64_t total = 0;
  for (WhisperNode* n : tb.alive_nodes()) {
    total += n->transport().decode_rejects();
    total += n->pss().decode_rejects();
    total += n->wcl().stats().decode_rejects;
  }
  return total;
}

TEST(Byzantine, TruncatedFramesAreRejectedNotFatal) {
  WhisperTestbed tb(small_config(101));
  tb.run_for(5 * net::kMinute);
  faults::FaultFabric& fabric = tb.install_fault_fabric();
  fabric.schedule(byz_spec(tb, faults::FaultKind::kByzTruncate,
                           {tb.alive_nodes()[1]->internal_endpoint()}));
  const std::uint64_t rejects_before = total_decode_rejects(tb);
  tb.run_for(3 * net::kMinute);

  EXPECT_GT(fabric.stats().byz_truncated, 0u);
  // Receivers classified the mangled frames instead of acting on them.
  EXPECT_GT(total_decode_rejects(tb), rejects_before);
  EXPECT_EQ(tb.alive_count(), 40u);
}

TEST(Byzantine, OversizedFramesAreRejectedNotFatal) {
  WhisperTestbed tb(small_config(102));
  tb.run_for(5 * net::kMinute);
  faults::FaultFabric& fabric = tb.install_fault_fabric();
  fabric.schedule(byz_spec(tb, faults::FaultKind::kByzOversize,
                           {tb.alive_nodes()[1]->internal_endpoint()}));
  const std::uint64_t rejects_before = total_decode_rejects(tb);
  tb.run_for(3 * net::kMinute);

  EXPECT_GT(fabric.stats().byz_oversized, 0u);
  EXPECT_GT(total_decode_rejects(tb), rejects_before);
  EXPECT_EQ(tb.alive_count(), 40u);
}

TEST(Byzantine, BitflippedFramesAreRejectedNotFatal) {
  WhisperTestbed tb(small_config(103));
  tb.run_for(5 * net::kMinute);
  faults::FaultFabric& fabric = tb.install_fault_fabric();
  fabric.schedule(byz_spec(tb, faults::FaultKind::kByzBitflip,
                           {tb.alive_nodes()[1]->internal_endpoint()}));
  tb.run_for(3 * net::kMinute);

  EXPECT_GT(fabric.stats().byz_bitflipped, 0u);
  EXPECT_EQ(tb.alive_count(), 40u);
  // The rest of the deployment keeps gossiping.
  std::uint64_t completed = 0;
  for (WhisperNode* n : tb.alive_nodes()) completed += n->pss().exchanges_completed();
  EXPECT_GT(completed, 0u);
}

TEST(Byzantine, ReplayActorCapturesAndReinjects) {
  WhisperTestbed tb(small_config(104));
  tb.run_for(5 * net::kMinute);
  faults::FaultFabric& fabric = tb.install_fault_fabric();
  fabric.schedule(byz_spec(tb, faults::FaultKind::kByzReplay,
                           {tb.alive_nodes()[1]->internal_endpoint()},
                           /*probability=*/1.0, /*rate=*/20.0));
  tb.run_for(3 * net::kMinute);

  EXPECT_GT(fabric.stats().byz_captured, 0u);
  EXPECT_GT(fabric.stats().byz_replayed, 0u);
  EXPECT_EQ(tb.alive_count(), 40u);
}

TEST(Byzantine, FloodIsAbsorbedByDecodeAndRateDefenses) {
  WhisperTestbed tb(small_config(105));
  tb.run_for(5 * net::kMinute);
  faults::FaultFabric& fabric = tb.install_fault_fabric();
  fabric.schedule(byz_spec(tb, faults::FaultKind::kByzFlood,
                           {tb.alive_nodes()[1]->internal_endpoint()},
                           /*probability=*/1.0, /*rate=*/50.0));
  const std::uint64_t rejects_before = total_decode_rejects(tb);
  tb.run_for(3 * net::kMinute);

  EXPECT_GT(fabric.stats().byz_flooded, 100u);  // ~50/s for 3 minutes
  // Garbage at the WCL port is classified and dropped at the codec wall.
  EXPECT_GT(total_decode_rejects(tb), rejects_before);
  EXPECT_EQ(tb.alive_count(), 40u);
}

TEST(Byzantine, FabricatedGossipDoesNotPoisonTheOverlay) {
  WhisperTestbed tb(small_config(106));
  tb.run_for(5 * net::kMinute);
  faults::FaultFabric& fabric = tb.install_fault_fabric();
  fabric.schedule(byz_spec(tb, faults::FaultKind::kByzFabricate,
                           {tb.alive_nodes()[1]->internal_endpoint()}));
  tb.run_for(6 * net::kMinute);

  EXPECT_GT(fabric.stats().byz_fabricated, 0u);
  // Fabricated ids live in 0x8000...-space no honest deployment allocates;
  // exchange failures and age eviction keep them from taking over views.
  std::size_t phantom = 0, total = 0;
  for (WhisperNode* n : tb.alive_nodes()) {
    for (const auto& e : n->pss().view().entries()) {
      ++total;
      if ((e.card.id.value & 0x8000000000000000ull) != 0) ++phantom;
    }
  }
  ASSERT_GT(total, 0u);
  EXPECT_LT(static_cast<double>(phantom) / static_cast<double>(total), 0.2)
      << phantom << " phantom entries across " << total;
  EXPECT_EQ(tb.alive_count(), 40u);
}

TEST(Byzantine, ScriptParsesByzKindsAndRate) {
  const auto parsed = faults::parse_script(
      "byztruncate 1m +2m fraction=0.1 count=0 probability=0.5\n"
      "byzreplay 2m +3m count=3 rate=5\n"
      "byzflood 3m +1m count=2 rate=20\n"
      "byzfabricate 4m +4m fraction=0.15 count=0\n");
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  ASSERT_EQ(parsed.specs.size(), 4u);
  EXPECT_EQ(parsed.specs[0].kind, faults::FaultKind::kByzTruncate);
  EXPECT_EQ(parsed.specs[0].count, 0u);
  EXPECT_EQ(parsed.specs[1].kind, faults::FaultKind::kByzReplay);
  EXPECT_DOUBLE_EQ(parsed.specs[1].rate, 5.0);
  EXPECT_EQ(parsed.specs[2].kind, faults::FaultKind::kByzFlood);
  EXPECT_DOUBLE_EQ(parsed.specs[2].rate, 20.0);
  EXPECT_EQ(parsed.specs[3].kind, faults::FaultKind::kByzFabricate);
  EXPECT_TRUE(faults::is_byzantine(parsed.specs[3].kind));
  EXPECT_FALSE(faults::is_byzantine(faults::FaultKind::kCorrupt));

  const auto bad = faults::parse_script("byzflood 1m +1m rate=-3\n");
  EXPECT_FALSE(bad.ok());
}

// --- The 500-node Byzantine soak (the tentpole's acceptance gate). ---

// Fire confidential sends between deterministically-picked honest pairs and
// report the acknowledged fraction.
double honest_delivery(WhisperTestbed& tb, const std::vector<WhisperNode*>& honest,
                       std::size_t pairs, std::size_t salt, net::Time window) {
  auto ok = std::make_shared<int>(0);
  int sent = 0;
  for (std::size_t k = 0; k < pairs; ++k) {
    WhisperNode* src = honest[(salt + 2 * k) % honest.size()];
    WhisperNode* dst = honest[(salt + 2 * k + 7) % honest.size()];
    if (src == dst) continue;
    ++sent;
    src->wcl().send_confidential(dst->wcl().self_peer(), to_bytes("probe"),
                                 [ok](wcl::SendOutcome o) {
                                   if (o != wcl::SendOutcome::kNoAlternative) ++*ok;
                                 });
  }
  tb.run_for(window);
  return sent == 0 ? 0.0 : static_cast<double>(*ok) / static_cast<double>(sent);
}

struct ByzOutcome {
  double baseline_delivery = 0;
  double adversarial_delivery = 0;
  double baseline_reach = 0;
  double adversarial_reach = 0;
  faults::FaultFabric::Stats fault_stats;
  std::uint64_t decode_rejects = 0;
  std::string metrics_jsonl;
};

ByzOutcome run_byzantine(std::uint64_t seed) {
  TestbedConfig cfg;
  cfg.initial_nodes = 500;
  cfg.natted_fraction = 0.7;
  cfg.node.pss.pi_min_public = 3;
  cfg.node.wcl.pi = 3;
  cfg.seed = seed;
  WhisperTestbed tb(cfg);
  tb.run_for(8 * net::kMinute);

  // 10% of the deployment misbehaves; the test picks the actors so the
  // probe set can be restricted to honest pairs ("honest delivery").
  auto nodes = tb.alive_nodes();
  std::vector<Endpoint> actors;
  std::vector<WhisperNode*> honest;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (i % 10 == 3 && actors.size() < nodes.size() / 10) {
      actors.push_back(nodes[i]->internal_endpoint());
    } else {
      honest.push_back(nodes[i]);
    }
  }

  ByzOutcome out;
  out.baseline_delivery = honest_delivery(tb, honest, 30, /*salt=*/5, net::kMinute);
  out.baseline_reach =
      pss::reachable_fraction(tb.overlay_snapshot(), honest[0]->id());

  // Split the actors across all six misbehaviours and open the windows.
  faults::FaultFabric& fabric = tb.install_fault_fabric();
  const std::vector<faults::FaultKind> kinds = {
      faults::FaultKind::kByzTruncate, faults::FaultKind::kByzOversize,
      faults::FaultKind::kByzBitflip,  faults::FaultKind::kByzReplay,
      faults::FaultKind::kByzFlood,    faults::FaultKind::kByzFabricate};
  std::vector<faults::FaultSpec> specs;
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    faults::FaultSpec spec;
    spec.kind = kinds[i];
    spec.start = tb.clock().now();
    spec.end = 0;  // hostile for the rest of the run
    spec.probability = 0.5;
    spec.rate = 5.0;
    for (std::size_t a = i; a < actors.size(); a += kinds.size()) {
      spec.targets_a.push_back(actors[a]);
    }
    specs.push_back(spec);
  }
  fabric.schedule_all(specs);

  // Let the adversary soak, then measure the honest side of the network.
  tb.run_for(6 * net::kMinute);
  out.adversarial_delivery = honest_delivery(tb, honest, 30, /*salt=*/97, net::kMinute);
  out.adversarial_reach =
      pss::reachable_fraction(tb.overlay_snapshot(), honest[0]->id());

  out.fault_stats = fabric.stats();
  for (WhisperNode* n : tb.all_nodes()) {
    out.decode_rejects += n->transport().decode_rejects();
    out.decode_rejects += n->pss().decode_rejects();
    out.decode_rejects += n->wcl().stats().decode_rejects;
  }
  out.metrics_jsonl = telemetry::to_jsonl(tb.registry());
  return out;
}

const ByzOutcome& byzantine_run(int which) {
  static const ByzOutcome runs[2] = {run_byzantine(4242), run_byzantine(4242)};
  return runs[which & 1];
}

TEST(ByzantineSoak, HonestDeliveryWithinFivePercentOfBaseline) {
  const ByzOutcome& out = byzantine_run(0);
  EXPECT_GE(out.baseline_delivery, 0.85) << "baseline delivery too low";
  // Every misbehaviour family actually fired.
  EXPECT_GT(out.fault_stats.byz_truncated + out.fault_stats.byz_oversized +
                out.fault_stats.byz_bitflipped,
            0u);
  EXPECT_GT(out.fault_stats.byz_replayed, 0u);
  EXPECT_GT(out.fault_stats.byz_flooded, 0u);
  EXPECT_GT(out.fault_stats.byz_fabricated, 0u);
  // The defenses, not luck, absorbed it.
  EXPECT_GT(out.decode_rejects, 0u);
  // Headline acceptance: honest-to-honest delivery within 5% of baseline.
  EXPECT_GE(out.adversarial_delivery, out.baseline_delivery - 0.05)
      << "baseline=" << out.baseline_delivery
      << " adversarial=" << out.adversarial_delivery;
}

TEST(ByzantineSoak, OverlayReachabilityWithinFivePercentOfBaseline) {
  const ByzOutcome& out = byzantine_run(0);
  EXPECT_GE(out.baseline_reach, 0.95);
  EXPECT_GE(out.adversarial_reach, out.baseline_reach - 0.05)
      << "baseline=" << out.baseline_reach
      << " adversarial=" << out.adversarial_reach;
}

TEST(ByzantineSoak, SameSeedRunsAreByteIdentical) {
  const ByzOutcome& a = byzantine_run(0);
  const ByzOutcome& b = byzantine_run(1);
  EXPECT_EQ(a.baseline_delivery, b.baseline_delivery);
  EXPECT_EQ(a.adversarial_delivery, b.adversarial_delivery);
  EXPECT_EQ(a.adversarial_reach, b.adversarial_reach);
  EXPECT_EQ(a.fault_stats.byz_replayed, b.fault_stats.byz_replayed);
  EXPECT_EQ(a.fault_stats.byz_fabricated, b.fault_stats.byz_fabricated);
  EXPECT_EQ(a.decode_rejects, b.decode_rejects);
  EXPECT_EQ(a.metrics_jsonl, b.metrics_jsonl);
  // Non-vacuous: the export carries the Byzantine and defense telemetry.
  EXPECT_NE(a.metrics_jsonl.find("faults.byz.mutated"), std::string::npos);
  EXPECT_NE(a.metrics_jsonl.find("faults.byz.flooded"), std::string::npos);
}

}  // namespace
}  // namespace whisper

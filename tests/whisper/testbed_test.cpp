#include "whisper/testbed.hpp"

#include <gtest/gtest.h>

#include "whisper/keypool.hpp"

namespace whisper {
namespace {

TEST(KeyPool, DeterministicAndDistinct) {
  const auto& a = pooled_keypair(0, 512);
  const auto& b = pooled_keypair(1, 512);
  EXPECT_NE(a.pub.n, b.pub.n);
  // Same index returns the same object.
  EXPECT_EQ(&pooled_keypair(0, 512), &a);
}

TEST(Testbed, SpawnsRequestedPopulation) {
  TestbedConfig cfg;
  cfg.initial_nodes = 20;
  WhisperTestbed tb(cfg);
  EXPECT_EQ(tb.alive_count(), 20u);
}

TEST(Testbed, NattedFractionRoughlyRespected) {
  TestbedConfig cfg;
  cfg.initial_nodes = 200;
  cfg.natted_fraction = 0.7;
  WhisperTestbed tb(cfg);
  const double public_fraction =
      static_cast<double>(tb.alive_public_nodes().size()) / 200.0;
  EXPECT_NEAR(public_fraction, 0.3, 0.08);
}

TEST(Testbed, AllNattedNodesGetRelays) {
  TestbedConfig cfg;
  cfg.initial_nodes = 30;
  WhisperTestbed tb(cfg);
  tb.run_for(net::kMinute);
  for (WhisperNode* n : tb.alive_nodes()) {
    if (!n->is_public()) {
      EXPECT_FALSE(n->transport().relay_lost()) << n->id().str();
    }
  }
}

TEST(Testbed, KillNodeStopsIt) {
  TestbedConfig cfg;
  cfg.initial_nodes = 10;
  WhisperTestbed tb(cfg);
  const NodeId victim = tb.alive_nodes()[3]->id();
  tb.kill_node(victim);
  EXPECT_EQ(tb.alive_count(), 9u);
  EXPECT_FALSE(tb.node(victim)->running());
  // Double-kill is safe.
  tb.kill_node(victim);
  EXPECT_EQ(tb.alive_count(), 9u);
}

TEST(Testbed, KillRandomReturnsValidId) {
  TestbedConfig cfg;
  cfg.initial_nodes = 5;
  WhisperTestbed tb(cfg);
  const NodeId id = tb.kill_random_node();
  EXPECT_FALSE(id.is_nil());
  EXPECT_EQ(tb.alive_count(), 4u);
}

TEST(Testbed, SpawnAfterStartJoinsOverlay) {
  TestbedConfig cfg;
  cfg.initial_nodes = 15;
  WhisperTestbed tb(cfg);
  tb.run_for(2 * net::kMinute);
  WhisperNode& fresh = tb.spawn_node();
  tb.run_for(3 * net::kMinute);
  EXPECT_GE(fresh.pss().view().size(), 3u);
  // The newcomer appears in someone's view.
  std::size_t refs = 0;
  for (WhisperNode* n : tb.alive_nodes()) {
    if (n->pss().view().contains(fresh.id())) ++refs;
  }
  EXPECT_GE(refs, 1u);
}

TEST(Testbed, DeterministicRuns) {
  auto run_digest = [] {
    TestbedConfig cfg;
    cfg.initial_nodes = 15;
    cfg.seed = 1234;
    WhisperTestbed tb(cfg);
    tb.run_for(3 * net::kMinute);
    // Digest: sum of (id, view size, exchange counts).
    std::uint64_t digest = 0;
    for (WhisperNode* n : tb.alive_nodes()) {
      digest = digest * 31 + n->id().value;
      digest = digest * 31 + n->pss().view().size();
      digest = digest * 31 + n->pss().exchanges_completed();
    }
    return digest;
  };
  EXPECT_EQ(run_digest(), run_digest());
}

TEST(Testbed, OverlaySnapshotMatchesViews) {
  TestbedConfig cfg;
  cfg.initial_nodes = 10;
  WhisperTestbed tb(cfg);
  tb.run_for(2 * net::kMinute);
  auto graph = tb.overlay_snapshot();
  EXPECT_EQ(graph.size(), tb.alive_count());
  for (WhisperNode* n : tb.alive_nodes()) {
    EXPECT_EQ(graph[n->id()].size(), n->pss().view().size());
  }
}

TEST(Testbed, BandwidthCountersPopulated) {
  TestbedConfig cfg;
  cfg.initial_nodes = 15;
  WhisperTestbed tb(cfg);
  tb.run_for(3 * net::kMinute);
  std::uint64_t total_up = 0;
  for (WhisperNode* n : tb.alive_nodes()) {
    total_up += tb.traffic(n->internal_endpoint()).total_up();
  }
  EXPECT_GT(total_up, 0u);
}

}  // namespace
}  // namespace whisper

#include "telemetry/flight.hpp"

#include <gtest/gtest.h>

namespace whisper::telemetry {
namespace {

FlightRecorder make_recorder(std::uint64_t* clock) {
  FlightRecorder fr;
  fr.set_clock([clock] { return *clock; });
  fr.set_enabled(true);
  return fr;
}

TEST(FlightRecorder, DisabledUntilClockAndEnableFlag) {
  FlightRecorder fr;
  EXPECT_FALSE(fr.enabled());
  fr.set_enabled(true);
  EXPECT_FALSE(fr.enabled());  // no clock yet
  EXPECT_EQ(fr.new_root(TraceLayer::kPpss, 1), 0u);
  fr.set_clock([] { return std::uint64_t{1}; });
  EXPECT_TRUE(fr.enabled());
  EXPECT_NE(fr.new_root(TraceLayer::kPpss, 1), 0u);
}

TEST(FlightRecorder, InvalidContextEventsAreIgnored) {
  std::uint64_t clock = 0;
  FlightRecorder fr = make_recorder(&clock);
  TraceContext none;  // trace_id == 0
  fr.wire_out(none, 1, 0, 0);
  fr.drop(none, 1, 0, "loss");
  EXPECT_TRUE(fr.events().empty());
}

TEST(FlightRecorder, ScopedContextArmsAndRestores) {
  std::uint64_t clock = 0;
  FlightRecorder fr = make_recorder(&clock);
  TraceContext ctx;
  ctx.trace_id = 7;
  ctx.hop = 2;
  {
    ScopedTraceContext guard(&fr, ctx);
    EXPECT_EQ(fr.context().trace_id, 7u);
    EXPECT_EQ(fr.context().hop, 2u);
    {
      ScopedTraceContext inner(&fr, fr.context().next_hop());
      EXPECT_EQ(fr.context().hop, 3u);
    }
    EXPECT_EQ(fr.context().hop, 2u);
  }
  EXPECT_FALSE(fr.context().valid());
  // Null and disabled recorders are tolerated.
  { ScopedTraceContext guard(nullptr, ctx); }
  FlightRecorder off;
  { ScopedTraceContext guard(&off, ctx); }
}

TEST(FlightRecorder, CapacityBoundsEventLog) {
  std::uint64_t clock = 0;
  FlightRecorder fr = make_recorder(&clock);
  fr.set_capacity(2);
  TraceContext ctx;
  ctx.trace_id = 1;
  fr.wire_out(ctx, 1, 0, 0);
  fr.wire_out(ctx, 1, 1, 0);
  fr.wire_out(ctx, 1, 2, 0);
  EXPECT_EQ(fr.events().size(), 2u);
  EXPECT_EQ(fr.dropped(), 1u);
  fr.clear();
  EXPECT_TRUE(fr.events().empty());
  EXPECT_EQ(fr.dropped(), 0u);
}

// Emit the events of one clean two-hop delivery S(1) -> M(2) -> D(3) with
// an ACK straight back, and check the assembled record decomposes exactly.
TEST(FlightAssemble, CleanDeliveryDecomposesExactly) {
  std::uint64_t clock = 0;
  FlightRecorder fr = make_recorder(&clock);
  const std::uint64_t id = fr.new_trace(TraceLayer::kWcl, 1, 0, 3);
  ASSERT_NE(id, 0u);
  TraceContext ctx;
  ctx.trace_id = id;
  ctx.layer = TraceLayer::kWcl;
  ctx.attempt = 1;

  fr.retry(id, 1, 0, 1);
  fr.crypto(ctx, 1, 0, 300, "build");  // source onion build
  ctx.seq = fr.next_wire_seq();
  fr.wire_out(ctx, 1, 300, 0);  // S -> M, 200us flight
  fr.wire_in(ctx, 2, 500);
  ctx = ctx.next_hop();
  fr.crypto(ctx, 2, 500, 100, "peel");  // mix peel
  ctx.seq = fr.next_wire_seq();
  fr.wire_out(ctx, 2, 600, 0);  // M -> D, 150us flight
  fr.wire_in(ctx, 3, 750);
  ctx = ctx.next_hop();
  ctx.seq = fr.next_wire_seq();
  fr.wire_out(ctx, 3, 750, 0);  // D -> S ack, 250us flight
  fr.wire_in(ctx, 1, 1000);
  fr.ack(id, 1, 1000, true);
  fr.end(id, 1, 1000, "delivered", 1, 1000);

  const auto records = fr.assemble();
  ASSERT_EQ(records.size(), 1u);
  const FlightRecord& rec = records[0];
  EXPECT_EQ(rec.trace_id, id);
  EXPECT_EQ(rec.layer, TraceLayer::kWcl);
  EXPECT_EQ(rec.src, 1u);
  EXPECT_EQ(rec.dst, 3u);
  EXPECT_EQ(rec.outcome, "delivered");
  EXPECT_EQ(rec.attempts, 1u);
  EXPECT_FALSE(rec.karn_ambiguous);
  ASSERT_EQ(rec.hops.size(), 3u);
  EXPECT_EQ(rec.hops[0].from, 1u);
  EXPECT_EQ(rec.hops[0].to, 2u);
  EXPECT_EQ(rec.hops[0].prop_us, 200u);
  EXPECT_EQ(rec.hops[1].prop_us, 150u);
  EXPECT_EQ(rec.hops[2].prop_us, 250u);
  EXPECT_EQ(rec.rtt_us, 1000u);
  EXPECT_EQ(rec.crypto_us, 400u);
  EXPECT_EQ(rec.prop_us, 600u);
  EXPECT_EQ(rec.queue_us, 0u);
  EXPECT_EQ(rec.retry_us, 0u);
  EXPECT_EQ(rec.decomposed_us(), rec.rtt_us);
}

// A retransmitted send: attempt 1 is lost mid-path, attempt 2 delivers.
// The decomposition covers the final attempt only; the lost attempt's time
// shows up as retry_us; karn_ambiguous flags the RTT as estimator-unsafe.
TEST(FlightAssemble, RetransmitAttributionFollowsKarn) {
  std::uint64_t clock = 0;
  FlightRecorder fr = make_recorder(&clock);
  const std::uint64_t id = fr.new_trace(TraceLayer::kWcl, 1, 0, 3);
  TraceContext ctx;
  ctx.trace_id = id;
  ctx.layer = TraceLayer::kWcl;

  ctx.attempt = 1;
  fr.retry(id, 1, 0, 1);
  ctx.seq = fr.next_wire_seq();
  fr.wire_out(ctx, 1, 0, 0);
  fr.drop(ctx, 2, 200, "loss");
  fr.timeout(id, 1, 5000, 1);

  ctx.attempt = 2;
  ctx.hop = 0;
  fr.retry(id, 1, 5000, 2);
  ctx.seq = fr.next_wire_seq();
  fr.wire_out(ctx, 1, 5000, 0);
  fr.wire_in(ctx, 3, 5400);
  ctx = ctx.next_hop();
  ctx.seq = fr.next_wire_seq();
  fr.wire_out(ctx, 3, 5400, 0);
  fr.wire_in(ctx, 1, 5800);
  fr.end(id, 1, 5800, "delivered", 2, 5800);

  const auto records = fr.assemble();
  ASSERT_EQ(records.size(), 1u);
  const FlightRecord& rec = records[0];
  EXPECT_EQ(rec.attempts, 2u);
  EXPECT_TRUE(rec.karn_ambiguous);
  EXPECT_EQ(rec.retry_us, 5000u);  // begin -> final attempt start
  EXPECT_EQ(rec.prop_us, 800u);    // final attempt only
  EXPECT_EQ(rec.decomposed_us(), rec.rtt_us);
  // The lost attempt's segment is retained with its drop reason.
  bool saw_loss = false;
  for (const FlightHop& h : rec.hops) saw_loss |= h.status == "loss";
  EXPECT_TRUE(saw_loss);
}

TEST(FlightAssemble, FaultAttributionAttachesToSegment) {
  std::uint64_t clock = 0;
  FlightRecorder fr = make_recorder(&clock);
  const std::uint64_t id = fr.new_trace(TraceLayer::kWcl, 1, 0, 2);
  TraceContext ctx;
  ctx.trace_id = id;
  ctx.attempt = 1;
  ctx.seq = fr.next_wire_seq();
  fr.wire_out(ctx, 1, 0, 250);  // fault-injected 250us extra delay
  fr.fault(ctx, 1, 0, "delay");
  fr.wire_in(ctx, 2, 700);
  fr.end(id, 1, 700, "delivered", 1, 700);

  const auto records = fr.assemble();
  ASSERT_EQ(records.size(), 1u);
  ASSERT_EQ(records[0].faults.size(), 1u);
  EXPECT_EQ(records[0].faults[0], "delay");
  ASSERT_EQ(records[0].hops.size(), 1u);
  EXPECT_EQ(records[0].hops[0].fault, "delay");
  EXPECT_EQ(records[0].hops[0].queue_us, 250u);  // injected delay is queueing
  EXPECT_EQ(records[0].hops[0].prop_us, 450u);   // the rest is propagation
}

// Duplicated wire copies pair up by per-copy seq: both arrivals land on
// their own segment instead of corrupting one another's timestamps.
TEST(FlightAssemble, DuplicationKeepsSegmentsSeparate) {
  std::uint64_t clock = 0;
  FlightRecorder fr = make_recorder(&clock);
  const std::uint64_t id = fr.new_trace(TraceLayer::kWcl, 1, 0, 2);
  TraceContext a;
  a.trace_id = id;
  a.attempt = 1;
  a.seq = fr.next_wire_seq();
  TraceContext b = a;
  b.seq = fr.next_wire_seq();
  fr.wire_out(a, 1, 0, 0);
  fr.wire_out(b, 1, 0, 0);
  fr.wire_in(a, 2, 300);
  fr.wire_in(b, 2, 900);
  fr.end(id, 1, 300, "delivered", 1, 300);

  const auto records = fr.assemble();
  ASSERT_EQ(records.size(), 1u);
  ASSERT_EQ(records[0].hops.size(), 2u);
  EXPECT_EQ(records[0].hops[0].prop_us, 300u);
  EXPECT_EQ(records[0].hops[1].prop_us, 900u);
}

// Events time-ordered after the trace's end (causally-downstream traffic
// stamped by the ambient context) must not pollute the record.
TEST(FlightAssemble, PostEndTrafficIsExcluded) {
  std::uint64_t clock = 0;
  FlightRecorder fr = make_recorder(&clock);
  const std::uint64_t id = fr.new_trace(TraceLayer::kWcl, 1, 0, 2);
  TraceContext ctx;
  ctx.trace_id = id;
  ctx.attempt = 1;
  ctx.seq = fr.next_wire_seq();
  fr.wire_out(ctx, 1, 0, 0);
  fr.wire_in(ctx, 2, 400);
  ctx = ctx.next_hop();
  ctx.seq = fr.next_wire_seq();
  fr.wire_out(ctx, 2, 400, 0);
  fr.wire_in(ctx, 1, 800);
  fr.end(id, 1, 800, "delivered", 1, 800);
  // Downstream echo emitted from inside the completion handler:
  ctx = ctx.next_hop();
  ctx.seq = fr.next_wire_seq();
  fr.wire_out(ctx, 1, 800, 0);
  fr.wire_in(ctx, 9, 1400);
  fr.fault(ctx, 9, 1400, "loss");

  const auto records = fr.assemble();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].hops.size(), 2u);
  EXPECT_TRUE(records[0].faults.empty());
  EXPECT_EQ(records[0].decomposed_us(), records[0].rtt_us);
}

TEST(FlightJsonl, RoundTripsLosslessly) {
  std::uint64_t clock = 0;
  FlightRecorder fr = make_recorder(&clock);
  const std::uint64_t root = fr.new_root(TraceLayer::kPpss, 1, "group=g7000");
  const std::uint64_t id = fr.new_trace(TraceLayer::kWcl, 1, root, 3);
  TraceContext ctx;
  ctx.trace_id = id;
  ctx.root = root;
  ctx.layer = TraceLayer::kWcl;
  ctx.attempt = 1;
  ctx.seq = fr.next_wire_seq();
  fr.crypto(ctx, 1, 0, 120, "build");
  fr.wire_out(ctx, 1, 120, 30);
  fr.fault(ctx, 1, 120, "delay");
  fr.wire_in(ctx, 3, 500);
  fr.end(id, 1, 500, "delivered", 1, 500);
  fr.end(root, 1, 500, "completed", 1, 500);

  const auto records = fr.assemble();
  const std::string jsonl = to_jsonl(records);
  std::vector<FlightRecord> parsed;
  std::string err;
  ASSERT_TRUE(parse_flight_jsonl(jsonl, &parsed, &err)) << err;
  ASSERT_EQ(parsed.size(), records.size());
  // A re-export of the parsed records must be byte-identical (the CLI and
  // the auditor both rely on this).
  EXPECT_EQ(to_jsonl(parsed), jsonl);
  EXPECT_EQ(parsed[0].group, records[0].group);
  EXPECT_EQ(parsed[1].faults, records[1].faults);
  EXPECT_EQ(parsed[1].hops.size(), records[1].hops.size());

  // Digest is stable for identical text and sensitive to changes.
  EXPECT_EQ(flight_digest(jsonl), flight_digest(jsonl));
  EXPECT_NE(flight_digest(jsonl), flight_digest(jsonl + " "));
}

TEST(FlightJsonl, RejectsMalformedInputWithLineNumber) {
  std::vector<FlightRecord> parsed;
  std::string err;
  EXPECT_FALSE(parse_flight_jsonl("{\"trace\":1}\nnot json\n", &parsed, &err));
  EXPECT_NE(err.find("line 2"), std::string::npos);
}

// Cross-process merge: two recorders with disjoint id bases each log their
// own side of the same flight (sender: begin/wire_out/end; receiver:
// wire_in under the context parsed off the wire). Concatenating both event
// exports and assembling canonically must pair the halves — exactly what
// whisper_trace does with per-process .events.jsonl files.
TEST(FlightMerge, CrossProcessHalvesPairUp) {
  std::uint64_t clock = 0;
  FlightRecorder sender = make_recorder(&clock);
  sender.set_id_base(1ull << 48);
  FlightRecorder receiver = make_recorder(&clock);
  receiver.set_id_base(2ull << 48);

  const std::uint64_t id = sender.new_trace(TraceLayer::kWcl, 1, 0, 2);
  TraceContext ctx;
  ctx.trace_id = id;
  ctx.root = id;
  ctx.layer = TraceLayer::kWcl;
  ctx.attempt = 1;
  ctx.seq = sender.next_wire_seq();
  sender.wire_out(ctx, 1, 100, 0);
  receiver.wire_in(ctx, 2, 400);  // context arrived on the v2 frame
  sender.end(id, 1, 400, "delivered", 1, 300);

  // Round-trip both sides through the JSONL event interchange, concatenate,
  // and assemble.
  const std::string merged_text =
      to_events_jsonl(sender.events()) + to_events_jsonl(receiver.events());
  std::vector<FlightEventRec> merged;
  std::string err;
  ASSERT_TRUE(parse_flight_events_jsonl(merged_text, &merged, &err)) << err;
  const auto records = canonical_flight_records(std::move(merged));
  ASSERT_EQ(records.size(), 1u);
  const FlightRecord& rec = records[0];
  EXPECT_EQ(rec.trace_id, 1u);  // canonical renumbering: ordinal, not raw id
  EXPECT_EQ(rec.outcome, "delivered");
  ASSERT_EQ(rec.hops.size(), 1u);
  EXPECT_EQ(rec.hops[0].from, 1u);
  EXPECT_EQ(rec.hops[0].to, 2u);
  EXPECT_EQ(rec.hops[0].prop_us, 300u);  // wire_in ts - wire_out ts
  EXPECT_EQ(rec.rtt_us, 300u);
}

TEST(FlightMerge, CanonicalizeRecordsRenumbersByContentOrder) {
  // Records merged from several processes carry id-base-namespaced trace
  // ids; canonicalize_flight_records maps them to content-order ordinals so
  // digests are stable across shard/process layouts.
  FlightRecord a;
  a.trace_id = (7ull << 48) + 5;
  a.root = a.trace_id;
  a.layer = TraceLayer::kWcl;
  a.src = 1;
  a.dst = 2;
  a.begin_ts = 200;
  a.outcome = "delivered";
  FlightRecord b = a;
  b.trace_id = (3ull << 48) + 9;
  b.root = b.trace_id;
  b.begin_ts = 100;

  auto canon = canonicalize_flight_records({a, b});
  ASSERT_EQ(canon.size(), 2u);
  // Content order (begin_ts first) decides ordinals, not raw ids.
  EXPECT_EQ(canon[0].begin_ts, 100u);
  EXPECT_EQ(canon[0].trace_id, 1u);
  EXPECT_EQ(canon[1].begin_ts, 200u);
  EXPECT_EQ(canon[1].trace_id, 2u);
}

}  // namespace
}  // namespace whisper::telemetry

#include "telemetry/audit.hpp"

#include <gtest/gtest.h>

namespace whisper::telemetry {
namespace {

// A delivered WCL record S -> A -> B -> D with the ACK retracing the route.
FlightRecord make_record(std::uint64_t trace, std::uint64_t s, std::uint64_t a,
                         std::uint64_t b, std::uint64_t d, std::uint64_t root = 0) {
  FlightRecord rec;
  rec.trace_id = trace;
  rec.root = root;
  rec.layer = TraceLayer::kWcl;
  rec.src = s;
  rec.dst = d;
  rec.outcome = "delivered";
  rec.attempts = 1;
  const std::uint64_t path[4] = {s, a, b, d};
  std::uint64_t ts = trace * 10000;
  for (int i = 0; i < 3; ++i) {
    FlightHop h;
    h.attempt = 1;
    h.hop = static_cast<std::uint32_t>(i);
    h.seq = static_cast<std::uint32_t>(i + 1);
    h.from = path[i];
    h.to = path[i + 1];
    h.sent_ts = ts;
    h.recv_ts = ts + 100;
    h.status = "ok";
    ts += 100;
    rec.hops.push_back(h);
  }
  for (int i = 3; i > 0; --i) {  // ACK path D -> B -> A -> S
    FlightHop h;
    h.attempt = 1;
    h.hop = static_cast<std::uint32_t>(6 - i);
    h.seq = static_cast<std::uint32_t>(10 - i);
    h.from = path[i];
    h.to = path[i - 1];
    h.sent_ts = ts;
    h.recv_ts = ts + 100;
    h.status = "ok";
    ts += 100;
    rec.hops.push_back(h);
  }
  return rec;
}

TEST(Vantage, ParsesSpecClauses) {
  Vantage v;
  std::string err;
  ASSERT_TRUE(Vantage::parse("relays=3,5;links=1-2,4-7;taps=9", &v, &err)) << err;
  EXPECT_TRUE(v.relays.contains(3) && v.relays.contains(5));
  EXPECT_TRUE(v.taps.contains(9));
  EXPECT_TRUE(v.observes_link(1, 2));
  EXPECT_TRUE(v.observes_link(7, 4));  // normalized, order-independent
  EXPECT_FALSE(v.observes_link(1, 4));
  EXPECT_TRUE(v.observes_link(3, 8));  // relay endpoint sees its links
  EXPECT_TRUE(v.observes_link(9, 8));  // tapped endpoint too
  EXPECT_FALSE(v.global);
  EXPECT_EQ(v.str(), "relays=3,5;taps=9;links=1-2,4-7");

  ASSERT_TRUE(Vantage::parse("global", &v, &err));
  EXPECT_TRUE(v.global);
  EXPECT_TRUE(v.observes_link(100, 200));

  EXPECT_FALSE(Vantage::parse("bogus=1", &v, &err));
  EXPECT_FALSE(Vantage::parse("links=1", &v, &err));
  EXPECT_FALSE(Vantage::parse("relays=x", &v, &err));
}

// The paper's core claim: one honest-but-curious relay must link nothing.
TEST(Audit, SingleHbcRelayLinksNothing) {
  std::vector<FlightRecord> recs;
  // Ten messages, all through mixes 2 and 3, disjoint endpoints.
  for (std::uint64_t i = 0; i < 10; ++i) {
    recs.push_back(make_record(i + 1, 10 + i, 2, 3, 30 + i));
  }
  Vantage v;
  v.relays.insert(2);
  const AuditReport report = audit(recs, v, 100);
  EXPECT_EQ(report.total_nodes, 100u);
  EXPECT_EQ(report.messages_total, 10u);
  EXPECT_EQ(report.messages_observed, 10u);  // the relay is on every path
  EXPECT_EQ(report.linkable_count, 0u);
  ASSERT_EQ(report.relays.size(), 1u);
  EXPECT_EQ(report.relays[0].messages_seen, 10u);
  EXPECT_EQ(report.relays[0].linkable, 0u);
  for (const MessageAudit& ma : report.messages) {
    EXPECT_FALSE(ma.sender_pinned);
    EXPECT_FALSE(ma.receiver_pinned);
    // Relay 2 saw S->2, 2->3 (and the ACK mirror): it can exclude itself
    // and 3 as senders, nothing else.
    EXPECT_EQ(ma.sender_set, 98u);
    EXPECT_GT(ma.receiver_set, 1u);
  }
}

TEST(Audit, TappedEndpointsPinAndLink) {
  std::vector<FlightRecord> recs;
  recs.push_back(make_record(1, 10, 2, 3, 30));
  recs.push_back(make_record(2, 11, 2, 3, 31));
  Vantage v;
  v.taps.insert(10);  // sender of message 1 tapped
  AuditReport report = audit(recs, v, 50);
  EXPECT_EQ(report.linkable_count, 0u);  // receiver still hidden
  EXPECT_TRUE(report.messages[0].sender_pinned);
  EXPECT_EQ(report.messages[0].sender_set, 1u);
  EXPECT_FALSE(report.messages[1].sender_pinned);

  v.taps.insert(30);  // now both endpoints of message 1
  report = audit(recs, v, 50);
  EXPECT_EQ(report.linkable_count, 1u);
  EXPECT_TRUE(report.messages[0].linkable);
  EXPECT_FALSE(report.messages[1].linkable);
}

TEST(Audit, GlobalObserverLinksEverything) {
  std::vector<FlightRecord> recs;
  recs.push_back(make_record(1, 10, 2, 3, 30));
  recs.push_back(make_record(2, 11, 3, 2, 31));
  Vantage v;
  v.global = true;
  const AuditReport report = audit(recs, v, 50);
  EXPECT_EQ(report.linkable_count, 2u);
  EXPECT_EQ(report.mean_sender_set, 1.0);
  EXPECT_EQ(report.mean_receiver_set, 1.0);
}

TEST(Audit, UnobservedTrafficStaysAnonymous) {
  std::vector<FlightRecord> recs;
  recs.push_back(make_record(1, 10, 2, 3, 30));
  Vantage v;
  v.links.insert({40, 41});  // a link nowhere near the path
  const AuditReport report = audit(recs, v, 50);
  EXPECT_EQ(report.messages_observed, 0u);
  EXPECT_EQ(report.linkable_count, 0u);
  // Nothing observed: everyone is a candidate.
  EXPECT_EQ(report.messages[0].sender_set, 50u);
  EXPECT_EQ(report.messages[0].receiver_set, 50u);
}

TEST(Audit, GroupLeakageCountsPinnedMembers) {
  std::vector<FlightRecord> recs;
  FlightRecord root;  // PPSS root carrying the group label
  root.trace_id = 100;
  root.layer = TraceLayer::kPpss;
  root.src = 10;
  root.group = "g7000";
  recs.push_back(root);
  recs.push_back(make_record(1, 10, 2, 3, 30, /*root=*/100));
  recs.push_back(make_record(2, 30, 3, 2, 11, /*root=*/100));

  Vantage v;
  v.taps.insert(10);
  const AuditReport report = audit(recs, v, 50);
  ASSERT_EQ(report.groups.size(), 1u);
  EXPECT_EQ(report.groups[0].group, "g7000");
  EXPECT_EQ(report.groups[0].members, 3u);  // 10, 30, 11
  EXPECT_EQ(report.groups[0].leaked, 1u);   // only the tapped sender
}

TEST(Audit, UniverseDerivedFromRecordsWhenUnspecified) {
  std::vector<FlightRecord> recs;
  recs.push_back(make_record(1, 10, 2, 3, 30));
  Vantage v;
  v.relays.insert(2);
  const AuditReport report = audit(recs, v, 0);
  EXPECT_EQ(report.total_nodes, 4u);  // 10, 2, 3, 30
}

}  // namespace
}  // namespace whisper::telemetry

#include "telemetry/metric.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "common/stats.hpp"

namespace whisper::telemetry {
namespace {

TEST(Counter, AddsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, SetAddReset) {
  Gauge g;
  g.set(3.5);
  g.add(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 5.0);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(BucketSpec, LogSpacedCoversRangeAscending) {
  BucketSpec spec = BucketSpec::log_spaced(100, 1'000'000, 10);
  ASSERT_FALSE(spec.bounds.empty());
  // Bounds start at or below lo, end at or above hi, strictly ascending.
  EXPECT_LE(spec.bounds.front(), 100.0);
  EXPECT_GE(spec.bounds.back(), 1'000'000.0);
  for (std::size_t i = 1; i < spec.bounds.size(); ++i) {
    EXPECT_LT(spec.bounds[i - 1], spec.bounds[i]);
  }
  // 10 per decade over 4 decades: the ratio between consecutive bounds is
  // 10^(1/10) everywhere.
  const double ratio = std::pow(10.0, 0.1);
  for (std::size_t i = 1; i < spec.bounds.size(); ++i) {
    EXPECT_NEAR(spec.bounds[i] / spec.bounds[i - 1], ratio, 1e-9);
  }
}

TEST(BucketSpec, LogSpacedIsReproducible) {
  // Bit-identical across invocations (bounds derive from integer exponents,
  // not accumulated multiplication).
  BucketSpec a = BucketSpec::log_spaced(100, 20'000'000);
  BucketSpec b = BucketSpec::log_spaced(100, 20'000'000);
  EXPECT_EQ(a, b);
}

TEST(BucketSpec, LinearLayout) {
  BucketSpec spec = BucketSpec::linear(0, 10, 10);
  ASSERT_EQ(spec.bounds.size(), 11u);  // 0,1,...,10
  for (std::size_t i = 0; i < spec.bounds.size(); ++i) {
    EXPECT_DOUBLE_EQ(spec.bounds[i], static_cast<double>(i));
  }
}

TEST(Histogram, BucketBoundariesAreInclusiveUpperBounds) {
  Histogram h(BucketSpec::linear(0, 3, 3));  // bounds 0,1,2,3 + overflow
  h.observe(0.0);   // bucket 0 (v <= 0)
  h.observe(0.5);   // bucket 1 (0 < v <= 1)
  h.observe(1.0);   // bucket 1 (upper bound inclusive)
  h.observe(2.5);   // bucket 3
  h.observe(99.0);  // overflow
  const auto& counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 5u);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 0u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(counts[4], 1u);  // overflow bucket
  EXPECT_EQ(h.count(), 5u);
}

TEST(Histogram, SummaryStats) {
  Histogram h(BucketSpec::linear(0, 100, 10));
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  h.observe(10);
  h.observe(30);
  h.observe_n(50, 2);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 140.0);
  EXPECT_DOUBLE_EQ(h.min(), 10.0);
  EXPECT_DOUBLE_EQ(h.max(), 50.0);
  EXPECT_DOUBLE_EQ(h.mean(), 35.0);
}

TEST(Histogram, PercentileMatchesExactSamplesWithinBucketWidth) {
  // The contract: histogram percentiles agree with whisper::Samples
  // order-statistic percentiles up to one bucket width.
  BucketSpec spec = BucketSpec::log_spaced(100, 10'000'000, 10);
  Histogram h(spec);
  Samples exact;
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    // Latency-shaped data spanning several decades.
    const double v = 200.0 + static_cast<double>(rng.next_below(2'000'000));
    h.observe(v);
    exact.add(v);
  }
  for (double p : {10.0, 50.0, 90.0, 99.0}) {
    const double approx = h.percentile(p);
    const double truth = exact.percentile(p);
    // One log-spaced bucket is a factor of 10^(1/10) ~ 1.26 wide; allow one
    // full bucket of slack either way.
    EXPECT_LE(approx, truth * 1.26) << "p" << p;
    EXPECT_GE(approx, truth / 1.26) << "p" << p;
  }
}

TEST(Histogram, PercentileExtremesClampToMinMax) {
  Histogram h(BucketSpec::linear(0, 1000, 10));
  h.observe(250);
  h.observe(450);
  h.observe(650);
  EXPECT_DOUBLE_EQ(h.percentile(0), 250.0);
  EXPECT_DOUBLE_EQ(h.percentile(100), 650.0);
  EXPECT_DOUBLE_EQ(Histogram(BucketSpec::linear(0, 1, 1)).percentile(50), 0.0);
}

TEST(Histogram, MergeRequiresIdenticalLayout) {
  Histogram a(BucketSpec::linear(0, 10, 10));
  Histogram b(BucketSpec::linear(0, 10, 10));
  Histogram other(BucketSpec::linear(0, 20, 10));
  a.observe(2);
  b.observe(8);
  b.observe(4);
  ASSERT_TRUE(a.merge(b));
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.sum(), 14.0);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 8.0);
  EXPECT_FALSE(a.merge(other));
  EXPECT_EQ(a.count(), 3u);  // untouched on mismatch
}

TEST(Histogram, ResetClearsEverything) {
  Histogram h(BucketSpec::linear(0, 10, 10));
  h.observe(5);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
  for (auto c : h.bucket_counts()) EXPECT_EQ(c, 0u);
}

TEST(NoopSinks, AreSharedAndHarmless) {
  Counter& c1 = noop_counter();
  Counter& c2 = noop_counter();
  EXPECT_EQ(&c1, &c2);
  c1.add(5);  // accumulates garbage nobody reads; must not crash
  noop_gauge().set(1.0);
  noop_histogram().observe(42);
}

}  // namespace
}  // namespace whisper::telemetry

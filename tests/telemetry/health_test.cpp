#include "telemetry/health.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "telemetry/registry.hpp"

namespace whisper::telemetry {
namespace {

HealthSnapshot sample_snapshot() {
  HealthSnapshot s;
  s.node = 7;
  s.pid = 4242;
  s.incarnation = 3;
  s.seq = 11;
  s.now_us = 5'000'000;
  s.uptime_us = 4'900'000;
  s.groups = 2;
  s.wcl_backlog = 5;
  s.pending_forwards = 1;
  s.pss_view = 20;
  s.pss_reserve = 40;
  s.quarantined = 1;
  s.peer_restarts = 2;
  s.decode_rejects = 3;
  s.rate_limited = 4;
  s.rss_kb = 10'240;
  s.cpu_us = 123'456;
  s.keyframe = true;
  s.metrics = {{"a.count", 10.0}, {"b.depth{node=n7}", 2.5}};
  return s;
}

TEST(HealthRecord, RoundTrip) {
  const HealthSnapshot in = sample_snapshot();
  const Bytes rec = encode_health_record(in);
  DecodeError err = DecodeError::kNone;
  const auto out = decode_health_record(rec, &err);
  ASSERT_TRUE(out.has_value()) << static_cast<int>(err);
  EXPECT_EQ(out->node, in.node);
  EXPECT_EQ(out->pid, in.pid);
  EXPECT_EQ(out->incarnation, in.incarnation);
  EXPECT_EQ(out->seq, in.seq);
  EXPECT_EQ(out->now_us, in.now_us);
  EXPECT_EQ(out->uptime_us, in.uptime_us);
  EXPECT_EQ(out->groups, in.groups);
  EXPECT_EQ(out->wcl_backlog, in.wcl_backlog);
  EXPECT_EQ(out->pending_forwards, in.pending_forwards);
  EXPECT_EQ(out->pss_view, in.pss_view);
  EXPECT_EQ(out->pss_reserve, in.pss_reserve);
  EXPECT_EQ(out->quarantined, in.quarantined);
  EXPECT_EQ(out->peer_restarts, in.peer_restarts);
  EXPECT_EQ(out->decode_rejects, in.decode_rejects);
  EXPECT_EQ(out->rate_limited, in.rate_limited);
  EXPECT_EQ(out->rss_kb, in.rss_kb);
  EXPECT_EQ(out->cpu_us, in.cpu_us);
  EXPECT_TRUE(out->keyframe);
  EXPECT_EQ(out->metrics, in.metrics);
}

TEST(HealthRecord, DeltaFlagRoundTrips) {
  HealthSnapshot in = sample_snapshot();
  in.keyframe = false;
  const auto out = decode_health_record(encode_health_record(in));
  ASSERT_TRUE(out.has_value());
  EXPECT_FALSE(out->keyframe);
}

// Satellite requirement: decoding must fail cleanly on EVERY truncation
// point, not just a sampled few. Walk all strict prefixes of a real record.
TEST(HealthRecord, AllPrefixesRejected) {
  const Bytes rec = encode_health_record(sample_snapshot());
  ASSERT_GT(rec.size(), 12u);
  for (std::size_t n = 0; n < rec.size(); ++n) {
    DecodeError err = DecodeError::kNone;
    const auto out =
        decode_health_record(BytesView(rec.data(), n), &err);
    EXPECT_FALSE(out.has_value()) << "prefix length " << n;
    EXPECT_NE(err, DecodeError::kNone) << "prefix length " << n;
  }
}

TEST(HealthRecord, TrailingGarbageRejected) {
  Bytes rec = encode_health_record(sample_snapshot());
  rec.push_back(0x00);
  DecodeError err = DecodeError::kNone;
  EXPECT_FALSE(decode_health_record(rec, &err).has_value());
  EXPECT_EQ(err, DecodeError::kTrailingBytes);
}

TEST(HealthRecord, CrcCorruptionRejected) {
  Bytes rec = encode_health_record(sample_snapshot());
  // Flip one payload byte (past the 12-byte header); CRC must catch it.
  rec[rec.size() - 1] ^= 0x01;
  DecodeError err = DecodeError::kNone;
  EXPECT_FALSE(decode_health_record(rec, &err).has_value());
  EXPECT_EQ(err, DecodeError::kBadValue);
}

TEST(HealthRecord, BadMagicAndVersionRejected) {
  const Bytes good = encode_health_record(sample_snapshot());
  for (std::size_t i : {std::size_t{0}, std::size_t{1}, std::size_t{2}}) {
    Bytes bad = good;
    bad[i] ^= 0xFF;
    EXPECT_FALSE(decode_health_record(bad).has_value()) << "byte " << i;
  }
}

TEST(HealthRecord, OversizedPayloadLengthRejected) {
  Bytes rec = encode_health_record(sample_snapshot());
  // Overwrite the u32 payload_len at offset 4 with a value beyond the cap.
  const std::uint32_t huge = kMaxHealthPayloadBytes + 1;
  std::memcpy(rec.data() + 4, &huge, sizeof(huge));
  DecodeError err = DecodeError::kNone;
  EXPECT_FALSE(decode_health_record(rec, &err).has_value());
  EXPECT_EQ(err, DecodeError::kOversized);
}

TEST(HealthRecord, OversizedMetricNameRejected) {
  HealthSnapshot in = sample_snapshot();
  in.metrics = {{std::string(kMaxHealthNameBytes + 1, 'x'), 1.0}};
  const Bytes rec = encode_health_record(in);
  DecodeError err = DecodeError::kNone;
  EXPECT_FALSE(decode_health_record(rec, &err).has_value());
  EXPECT_EQ(err, DecodeError::kOversized);
}

TEST(HealthRecord, EmptyInputRejected) {
  DecodeError err = DecodeError::kNone;
  EXPECT_FALSE(decode_health_record(BytesView{}, &err).has_value());
  EXPECT_EQ(err, DecodeError::kTruncated);
}

TEST(HealthExporter, KeyframeThenDeltas) {
  Registry reg;
  reg.counter("c").add(5);
  HealthExporter exp(&reg, 10);

  HealthSnapshot s;
  s.node = 1;
  const auto first = decode_health_record(exp.next(s));
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->seq, 1u);
  EXPECT_TRUE(first->keyframe);
  ASSERT_EQ(first->metrics.size(), 1u);
  EXPECT_EQ(first->metrics[0].first, "c");
  EXPECT_DOUBLE_EQ(first->metrics[0].second, 5.0);

  // Nothing changed: delta record carries no metrics.
  const auto second = decode_health_record(exp.next(s));
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->seq, 2u);
  EXPECT_FALSE(second->keyframe);
  EXPECT_TRUE(second->metrics.empty());

  // One metric changed: delta carries exactly that metric.
  reg.counter("c").add(1);
  reg.gauge("g").set(2.0);
  const auto third = decode_health_record(exp.next(s));
  ASSERT_TRUE(third.has_value());
  EXPECT_FALSE(third->keyframe);
  ASSERT_EQ(third->metrics.size(), 2u);
  EXPECT_EQ(third->metrics[0].first, "c");
  EXPECT_DOUBLE_EQ(third->metrics[0].second, 6.0);
  EXPECT_EQ(third->metrics[1].first, "g");
}

TEST(HealthExporter, PeriodicKeyframe) {
  Registry reg;
  reg.counter("c").add(1);
  HealthExporter exp(&reg, 3);
  HealthSnapshot s;
  std::vector<bool> keyframes;
  for (int i = 0; i < 7; ++i) {
    const auto rec = decode_health_record(exp.next(s));
    ASSERT_TRUE(rec.has_value());
    keyframes.push_back(rec->keyframe);
  }
  // Keyframe first and every 3rd record thereafter (seq 1, 4, 7 ...).
  EXPECT_EQ(keyframes, (std::vector<bool>{true, false, false, true, false,
                                          false, true}));
}

TEST(HealthAccumulator, DeltaChainAndGapResync) {
  Registry reg;
  reg.counter("c").add(1);
  HealthExporter exp(&reg, 100);
  HealthSnapshot s;
  s.node = 2;
  s.pid = 99;

  HealthAccumulator acc;
  EXPECT_FALSE(acc.valid());
  ASSERT_TRUE(acc.apply(exp.next(s)));  // keyframe, seq 1
  EXPECT_TRUE(acc.valid());
  EXPECT_TRUE(acc.synced());
  EXPECT_DOUBLE_EQ(acc.metrics().at("c"), 1.0);

  reg.counter("c").add(1);
  ASSERT_TRUE(acc.apply(exp.next(s)));  // delta, seq 2
  EXPECT_TRUE(acc.synced());
  EXPECT_DOUBLE_EQ(acc.metrics().at("c"), 2.0);

  // Drop seq 3 on the floor: accumulator must go unsynced but stay valid
  // (header liveness probing still works from any record).
  reg.counter("c").add(1);
  (void)exp.next(s);
  reg.counter("c").add(1);
  const Bytes after_gap = exp.next(s);  // delta, seq 4
  ASSERT_TRUE(acc.apply(after_gap));
  EXPECT_TRUE(acc.valid());
  EXPECT_FALSE(acc.synced());
  EXPECT_EQ(acc.last().seq, 4u);

  // Deltas while unsynced do not resync...
  reg.counter("c").add(1);
  ASSERT_TRUE(acc.apply(exp.next(s)));  // delta, seq 5
  EXPECT_FALSE(acc.synced());

  // ...a keyframe does, with the full value set.
  HealthExporter fresh(&reg, 100);
  // Simulate node restart: new exporter restarts seq at 1 with a keyframe.
  ASSERT_TRUE(acc.apply(fresh.next(s)));
  EXPECT_TRUE(acc.synced());
  EXPECT_DOUBLE_EQ(acc.metrics().at("c"), 5.0);
}

// Admin replies reuse the last exported seq as a keyframe; an accumulator
// that is unsynced at that seq must accept the keyframe, not skip it as a
// duplicate.
TEST(HealthAccumulator, SameSeqKeyframeResyncsUnsynced) {
  HealthSnapshot delta = sample_snapshot();
  delta.keyframe = false;
  delta.seq = 5;

  HealthAccumulator acc;
  acc.apply(delta);  // cold start on a mid-stream delta: valid, unsynced
  EXPECT_TRUE(acc.valid());
  EXPECT_FALSE(acc.synced());

  HealthSnapshot key = delta;
  key.keyframe = true;  // same pid / incarnation / seq
  acc.apply(key);
  EXPECT_TRUE(acc.synced());
  EXPECT_DOUBLE_EQ(acc.metrics().at("a.count"), 10.0);

  // Once synced, the same-seq record IS a duplicate and must be ignored.
  HealthSnapshot dup = key;
  dup.metrics = {{"a.count", 999.0}};
  acc.apply(dup);
  EXPECT_DOUBLE_EQ(acc.metrics().at("a.count"), 10.0);
}

TEST(HealthAccumulator, MalformedRecordChangesNothing) {
  Registry reg;
  reg.counter("c").add(1);
  HealthExporter exp(&reg, 100);
  HealthSnapshot s;
  HealthAccumulator acc;
  ASSERT_TRUE(acc.apply(exp.next(s)));
  const auto before = acc.metrics();

  Bytes bad = exp.next(s);
  bad.resize(bad.size() / 2);
  DecodeError err = DecodeError::kNone;
  EXPECT_FALSE(acc.apply(bad, &err));
  EXPECT_NE(err, DecodeError::kNone);
  EXPECT_EQ(acc.metrics(), before);
  EXPECT_EQ(acc.last().seq, 1u);
}

TEST(RegistryValues, FlattensHistogramsDeterministically) {
  Registry reg;
  reg.counter("z.count").add(3);
  reg.gauge("a.depth", {{"node", "n1"}}).set(4.0);
  auto& h = reg.histogram("lat", BucketSpec::log_spaced(1, 1000));
  h.observe(10);
  h.observe(100);

  const auto vals = registry_values(reg);
  std::vector<std::string> keys;
  for (const auto& [k, v] : vals) keys.push_back(k);
  // Sorted by canonical key; each histogram flattens to its derived stats
  // in fixed order (count, sum, min, max, p50, p95, p99).
  const std::vector<std::string> want = {
      "a.depth{node=n1}", "lat#count", "lat#sum",  "lat#min",  "lat#max",
      "lat#p50",          "lat#p95",   "lat#p99",  "z.count"};
  EXPECT_EQ(keys, want);
  for (const auto& [k, v] : vals) {
    if (k == "lat#count") {
      EXPECT_DOUBLE_EQ(v, 2.0);
    } else if (k == "lat#sum") {
      EXPECT_DOUBLE_EQ(v, 110.0);
    } else if (k == "z.count") {
      EXPECT_DOUBLE_EQ(v, 3.0);
    }
  }
}

TEST(HealthToJson, DeterministicOrdering) {
  HealthSnapshot s = sample_snapshot();
  const std::map<std::string, double> m = {{"b", 2.0}, {"a", 1.0}};
  const std::string j1 = health_to_json(s, m, "7");
  const std::string j2 = health_to_json(s, m, "7");
  EXPECT_EQ(j1, j2);
  // Map iteration order: "a" before "b".
  EXPECT_LT(j1.find("\"a\""), j1.find("\"b\""));
  EXPECT_NE(j1.find("\"node\":\"7\""), std::string::npos);
}

TEST(AdminRequest, RoundTrip) {
  const Bytes req = encode_admin_request(AdminOp::kStats);
  ASSERT_EQ(req.size(), 4u);
  const auto op = decode_admin_request(req);
  ASSERT_TRUE(op.has_value());
  EXPECT_EQ(*op, AdminOp::kStats);
}

TEST(AdminRequest, MalformedRejected) {
  const Bytes good = encode_admin_request(AdminOp::kStats);
  for (std::size_t n = 0; n < good.size(); ++n) {
    DecodeError err = DecodeError::kNone;
    EXPECT_FALSE(
        decode_admin_request(BytesView(good.data(), n), &err).has_value())
        << "prefix " << n;
    EXPECT_EQ(err, DecodeError::kTruncated) << "prefix " << n;
  }
  Bytes long_req = good;
  long_req.push_back(0);
  DecodeError err = DecodeError::kNone;
  EXPECT_FALSE(decode_admin_request(long_req, &err).has_value());
  EXPECT_EQ(err, DecodeError::kTrailingBytes);
  for (std::size_t i = 0; i < good.size(); ++i) {
    Bytes bad = good;
    bad[i] ^= 0xFF;
    EXPECT_FALSE(decode_admin_request(bad).has_value()) << "byte " << i;
  }
}

// Satellite: histogram percentile edge cases surfaced by the exporter.
TEST(HistogramEdge, EmptyHistogramExportsZeros) {
  Registry reg;
  reg.histogram("h", BucketSpec::log_spaced(1, 100));
  const auto vals = registry_values(reg);
  for (const auto& [k, v] : vals) {
    EXPECT_DOUBLE_EQ(v, 0.0) << k;
  }
}

TEST(HistogramEdge, SingleSamplePercentilesCollapse) {
  Histogram h(BucketSpec::log_spaced(1, 1000));
  h.observe(42.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.min(), 42.0);
  EXPECT_DOUBLE_EQ(h.max(), 42.0);
  // Every percentile of a single sample is that sample (clamped to
  // [min, max]).
  EXPECT_DOUBLE_EQ(h.percentile(0), 42.0);
  EXPECT_DOUBLE_EQ(h.percentile(50), 42.0);
  EXPECT_DOUBLE_EQ(h.percentile(95), 42.0);
  EXPECT_DOUBLE_EQ(h.percentile(99), 42.0);
  EXPECT_DOUBLE_EQ(h.percentile(100), 42.0);
}

TEST(HistogramEdge, AllSamplesInOneBucket) {
  Histogram h(BucketSpec::linear(0, 100, 10));
  for (int i = 0; i < 1000; ++i) h.observe(55.0);
  EXPECT_DOUBLE_EQ(h.min(), 55.0);
  EXPECT_DOUBLE_EQ(h.max(), 55.0);
  // All mass in one bucket: interpolation is clamped to [min, max], so
  // every percentile must return exactly the common value.
  EXPECT_DOUBLE_EQ(h.percentile(50), 55.0);
  EXPECT_DOUBLE_EQ(h.percentile(95), 55.0);
  EXPECT_DOUBLE_EQ(h.percentile(99), 55.0);
}

}  // namespace
}  // namespace whisper::telemetry

#include "telemetry/trace.hpp"

#include <gtest/gtest.h>

#include "telemetry/scope.hpp"

namespace whisper::telemetry {
namespace {

TEST(Tracer, DisabledUntilClockAndEnableFlag) {
  Tracer t;
  EXPECT_FALSE(t.enabled());
  t.set_enabled(true);
  EXPECT_FALSE(t.enabled());  // no clock yet
  t.set_clock([] { return std::uint64_t{7}; });
  EXPECT_TRUE(t.enabled());
  EXPECT_EQ(t.now(), 7u);
  t.set_enabled(false);
  t.complete("x", "c", 1, 0, 5);
  EXPECT_TRUE(t.events().empty());
}

TEST(Tracer, RecordsCompleteAndInstantEvents) {
  Tracer t;
  t.set_clock([] { return std::uint64_t{0}; });
  t.set_enabled(true);
  t.complete("pss.exchange", "pss", 3, 100, 250, {{"hops", "2"}});
  t.instant("timeout", "wcl", 4, 500);
  ASSERT_EQ(t.events().size(), 2u);
  const TraceEvent& x = t.events()[0];
  EXPECT_EQ(x.name, "pss.exchange");
  EXPECT_EQ(x.phase, 'X');
  EXPECT_EQ(x.ts, 100u);
  EXPECT_EQ(x.dur, 250u);
  EXPECT_EQ(x.tid, 3u);
  ASSERT_EQ(x.args.size(), 1u);
  EXPECT_EQ(x.args[0].first, "hops");
  const TraceEvent& i = t.events()[1];
  EXPECT_EQ(i.phase, 'i');
  EXPECT_EQ(i.ts, 500u);
}

TEST(Tracer, FlowEventsPairThroughSharedId) {
  Tracer t;
  t.set_clock([] { return std::uint64_t{0}; });
  t.set_enabled(true);
  t.flow_begin("net.hop", "net", 2, 100, 77);
  t.flow_end("net.hop", "net", 9, 450, 77);
  ASSERT_EQ(t.events().size(), 2u);
  EXPECT_EQ(t.events()[0].phase, 's');
  EXPECT_EQ(t.events()[0].tid, 2u);
  EXPECT_EQ(t.events()[0].flow, 77u);
  EXPECT_EQ(t.events()[1].phase, 'f');
  EXPECT_EQ(t.events()[1].tid, 9u);
  EXPECT_EQ(t.events()[1].flow, 77u);
  // Disabled tracer records nothing.
  t.set_enabled(false);
  t.flow_begin("x", "c", 0, 0, 1);
  EXPECT_EQ(t.events().size(), 2u);
}

TEST(Tracer, CapacityBoundsRetainedEvents) {
  Tracer t;
  t.set_clock([] { return std::uint64_t{0}; });
  t.set_enabled(true);
  t.set_capacity(3);
  for (int i = 0; i < 5; ++i) t.instant("e", "c", 0, static_cast<std::uint64_t>(i));
  EXPECT_EQ(t.events().size(), 3u);
  EXPECT_EQ(t.dropped(), 2u);
  t.clear();
  EXPECT_TRUE(t.events().empty());
  EXPECT_EQ(t.dropped(), 0u);
}

TEST(Span, EmitsCompleteEventCoveringScope) {
  Tracer t;
  std::uint64_t clock = 1000;
  t.set_clock([&clock] { return clock; });
  t.set_enabled(true);
  {
    Span s(&t, "work", "test", 9);
    s.annotate("k", "v");
    clock = 1400;
  }
  ASSERT_EQ(t.events().size(), 1u);
  EXPECT_EQ(t.events()[0].ts, 1000u);
  EXPECT_EQ(t.events()[0].dur, 400u);
  EXPECT_EQ(t.events()[0].tid, 9u);
  ASSERT_EQ(t.events()[0].args.size(), 1u);
}

TEST(Span, MovedFromSpanEmitsOnce) {
  Tracer t;
  t.set_clock([] { return std::uint64_t{0}; });
  t.set_enabled(true);
  {
    Span a(&t, "once", "test", 1);
    Span b = std::move(a);
  }
  EXPECT_EQ(t.events().size(), 1u);
}

TEST(Span, NullOrDisabledTracerIsNoop) {
  { Span s(nullptr, "x", "c", 0); }
  Tracer off;
  { Span s(&off, "x", "c", 0); }
  EXPECT_TRUE(off.events().empty());
}

TEST(Scope, DisabledScopeHandsOutNoopSinks) {
  Scope scope;  // default: no registry, no tracer
  EXPECT_FALSE(scope.enabled());
  EXPECT_FALSE(scope.tracing());
  EXPECT_EQ(&scope.counter("a"), &noop_counter());
  EXPECT_EQ(&scope.gauge("b"), &noop_gauge());
  scope.complete("x", "c", 0, 1);  // must not crash
  scope.instant("y", "c", 0);
}

TEST(Scope, RoutesToSinksWithNodeTimeline) {
  Registry reg;
  Tracer tracer;
  tracer.set_clock([] { return std::uint64_t{50}; });
  tracer.set_enabled(true);
  Scope scope(Sinks{&reg, &tracer}, 17);
  EXPECT_EQ(scope.node_label(), "n17");
  scope.counter("hits").add(2);
  EXPECT_EQ(reg.counter_value("hits"), 2u);
  scope.complete("op", "cat", 10, 5);
  ASSERT_EQ(tracer.events().size(), 1u);
  EXPECT_EQ(tracer.events()[0].tid, 17u);
}

}  // namespace
}  // namespace whisper::telemetry

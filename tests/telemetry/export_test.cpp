#include "telemetry/export.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace whisper::telemetry {
namespace {

TEST(JsonEscape, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(ExportJsonl, OneLinePerMetricWithLabels) {
  Registry reg;
  reg.counter("net.bytes", {{"dir", "up"}}).add(123);
  reg.gauge("depth").set(2.5);
  const std::string out = to_jsonl(reg);
  std::istringstream in(out);
  std::string line1, line2;
  ASSERT_TRUE(std::getline(in, line1));
  ASSERT_TRUE(std::getline(in, line2));
  EXPECT_EQ(line1, R"({"name":"depth","labels":{},"type":"gauge","value":2.5})");
  EXPECT_EQ(line2,
            R"({"name":"net.bytes","labels":{"dir":"up"},"type":"counter","value":123})");
}

TEST(ExportJsonl, HistogramLineCarriesDistribution) {
  Registry reg;
  Histogram& h = reg.histogram("rtt", BucketSpec::linear(0, 2, 2));
  h.observe(1);
  h.observe(2);
  const std::string out = to_jsonl(reg);
  EXPECT_NE(out.find("\"type\":\"histogram\""), std::string::npos);
  EXPECT_NE(out.find("\"count\":2"), std::string::npos);
  EXPECT_NE(out.find("\"sum\":3"), std::string::npos);
  EXPECT_NE(out.find("\"p50\":"), std::string::npos);
  EXPECT_NE(out.find("\"p95\":"), std::string::npos);
  EXPECT_NE(out.find("\"p99\":"), std::string::npos);
  EXPECT_NE(out.find("\"bounds\":[0,1,2]"), std::string::npos);
  EXPECT_NE(out.find("\"buckets\":[0,1,1,0]"), std::string::npos);
}

TEST(ExportJsonl, TimeSeriesRows) {
  Registry reg;
  reg.counter("c").add(4);
  TimeSeriesRecorder rec(reg);
  rec.sample(60'000'000);
  const std::string out = to_jsonl(rec);
  EXPECT_EQ(out, "{\"ts\":60000000,\"values\":{\"c\":4}}\n");
}

TEST(ExportChromeTrace, WellFormedEventObjects) {
  Tracer t;
  t.set_clock([] { return std::uint64_t{0}; });
  t.set_enabled(true);
  t.complete("pss.exchange", "pss", 3, 100, 250, {{"hops", "2"}});
  t.instant("timeout", "wcl", 4, 500);
  const std::string out = to_chrome_trace(t);
  EXPECT_NE(out.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(out.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(
      out.find(R"({"name":"pss.exchange","cat":"pss","ph":"X","ts":100,"dur":250,)"
               R"("pid":1,"tid":3,"args":{"hops":"2"}})"),
      std::string::npos);
  // Instants carry thread scope, no dur.
  EXPECT_NE(out.find(R"("ph":"i")"), std::string::npos);
  EXPECT_NE(out.find(R"("s":"t")"), std::string::npos);
  // Valid JSON shape: closes the array and the object.
  EXPECT_EQ(out.substr(out.size() - 3), "]}\n");
}

TEST(ExportChromeTrace, FlowEventsCarryIdAndBindingPoint) {
  Tracer t;
  t.set_clock([] { return std::uint64_t{0}; });
  t.set_enabled(true);
  t.flow_begin("net.hop", "net", 3, 100, 0xbeef);
  t.flow_end("net.hop", "net", 5, 400, 0xbeef);
  const std::string out = to_chrome_trace(t);
  // Perfetto links the 's' and 'f' events through the shared flow id; the
  // terminator binds to the enclosing slice ("bp":"e").
  EXPECT_NE(out.find(R"({"name":"net.hop","cat":"net","ph":"s","ts":100,)"
                     R"("id":48879,"pid":1,"tid":3})"),
            std::string::npos);
  EXPECT_NE(out.find(R"("ph":"f")"), std::string::npos);
  EXPECT_NE(out.find(R"("bp":"e")"), std::string::npos);
}

TEST(ExportChromeTrace, EmptyTracerYieldsValidDocument) {
  Tracer t;
  EXPECT_EQ(to_chrome_trace(t), "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}\n");
}

// Determinism: two identically-fed registries/tracers export byte-identical
// documents (ordered iteration, fixed number formats). The full-stack
// same-seed variant lives in tests/integration/telemetry_determinism_test.
TEST(Export, ByteIdenticalAcrossIdenticalFeeds) {
  auto feed = [] {
    auto reg = std::make_unique<Registry>();
    reg->counter("b.total", {{"node", "n3"}}).add(11);
    reg->counter("a.total").add(7);
    reg->histogram("h", BucketSpec::log_spaced(100, 1'000'000)).observe(1234);
    reg->gauge("g").set(0.125);
    return reg;
  };
  auto r1 = feed();
  auto r2 = feed();
  EXPECT_EQ(to_jsonl(*r1), to_jsonl(*r2));
}

TEST(Export, WriteTextFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "whisper_export_test.json";
  ASSERT_TRUE(write_text_file(path, "{\"ok\":1}\n"));
  EXPECT_FALSE(write_text_file("/nonexistent-dir/x/y.json", "x"));
}

}  // namespace
}  // namespace whisper::telemetry

#include "telemetry/registry.hpp"

#include <gtest/gtest.h>

#include "telemetry/timeseries.hpp"

namespace whisper::telemetry {
namespace {

TEST(MetricKey, UnlabeledIsBareName) {
  EXPECT_EQ(metric_key("net.bytes", {}), "net.bytes");
}

TEST(MetricKey, LabelsAreSortedByKey) {
  // Caller label order is irrelevant: both spellings address one metric.
  EXPECT_EQ(metric_key("net.bytes", {{"proto", "pss"}, {"dir", "up"}}),
            "net.bytes{dir=up,proto=pss}");
  EXPECT_EQ(metric_key("net.bytes", {{"dir", "up"}, {"proto", "pss"}}),
            "net.bytes{dir=up,proto=pss}");
}

TEST(Registry, GetOrCreateReturnsStableInstance) {
  Registry reg;
  Counter& a = reg.counter("x.total");
  a.add(3);
  Counter& b = reg.counter("x.total");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(reg.counter_value("x.total"), 3u);
}

TEST(Registry, LabelSetsAreDistinctInstances) {
  Registry reg;
  reg.counter("bytes", {{"dir", "up"}}).add(10);
  reg.counter("bytes", {{"dir", "down"}}).add(4);
  EXPECT_EQ(reg.counter_value("bytes", {{"dir", "up"}}), 10u);
  EXPECT_EQ(reg.counter_value("bytes", {{"dir", "down"}}), 4u);
  EXPECT_EQ(reg.counter_value("bytes"), 0u);  // unlabeled never created
  EXPECT_EQ(reg.size(), 2u);
}

TEST(Registry, CounterSumAggregatesAcrossLabelSetsOnly) {
  Registry reg;
  reg.counter("net.bytes", {{"proto", "pss"}}).add(7);
  reg.counter("net.bytes", {{"proto", "wcl"}}).add(5);
  reg.counter("net.bytes");  // unlabeled instance of the same name
  reg.counter("net.bytes").add(1);
  // Lexicographic neighbours with a different *name* must not be included.
  reg.counter("net.bytes.total").add(100);
  reg.counter("net.byte").add(100);
  EXPECT_EQ(reg.counter_sum("net.bytes"), 13u);
}

TEST(Registry, KindMismatchYieldsNoopNotUb) {
  Registry reg;
  reg.counter("depth").add(2);
  // Same key requested as a gauge: a naming bug. The caller gets a working
  // (no-op) gauge, the real counter is untouched, and the mishap is counted.
  Gauge& g = reg.gauge("depth");
  g.set(99);
  EXPECT_EQ(reg.counter_value("depth"), 2u);
  EXPECT_EQ(reg.mismatches(), 1u);
  EXPECT_EQ(&g, &noop_gauge());
}

TEST(Registry, HistogramRoundTrip) {
  Registry reg;
  Histogram& h = reg.histogram("rtt", BucketSpec::log_spaced(100, 1'000'000));
  h.observe(500);
  h.observe(1500);
  const Histogram* found = reg.find_histogram("rtt");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->count(), 2u);
  EXPECT_EQ(reg.find_histogram("missing"), nullptr);
}

TEST(Registry, EntriesIterateInCanonicalOrder) {
  Registry reg;
  // Created out of order; iteration must be sorted on the canonical key.
  reg.counter("zeta");
  reg.counter("alpha", {{"n", "2"}});
  reg.counter("alpha", {{"n", "1"}});
  std::vector<std::string> keys;
  for (const auto& [key, entry] : reg.entries()) keys.push_back(key);
  EXPECT_EQ(keys, (std::vector<std::string>{"alpha{n=1}", "alpha{n=2}", "zeta"}));
}

TEST(Registry, ResetByPrefix) {
  Registry reg;
  reg.counter("net.bytes").add(9);
  reg.gauge("net.depth").set(3);
  reg.counter("pss.exchanges").add(5);
  reg.reset("net.");
  EXPECT_EQ(reg.counter_value("net.bytes"), 0u);
  EXPECT_EQ(reg.gauge_value("net.depth"), 0.0);
  EXPECT_EQ(reg.counter_value("pss.exchanges"), 5u);  // untouched
  reg.reset();
  EXPECT_EQ(reg.counter_value("pss.exchanges"), 0u);
}

TEST(TimeSeries, SamplesRegistryStateAtInstants) {
  Registry reg;
  TimeSeriesRecorder rec(reg);
  Counter& c = reg.counter("net.bytes");
  Gauge& g = reg.gauge("queue.depth");
  c.add(10);
  g.set(2);
  rec.sample(1'000'000);
  c.add(30);
  g.set(5);
  rec.sample(2'000'000);

  ASSERT_EQ(rec.series().size(), 2u);
  EXPECT_EQ(rec.series()[0].ts, 1'000'000u);
  ASSERT_EQ(rec.series()[0].values.size(), 2u);
  EXPECT_EQ(rec.series()[0].values[0].first, "net.bytes");
  EXPECT_DOUBLE_EQ(rec.series()[0].values[0].second, 10.0);
  EXPECT_DOUBLE_EQ(rec.series()[1].values[0].second, 40.0);
  EXPECT_DOUBLE_EQ(rec.series()[1].values[1].second, 5.0);

  auto deltas = rec.deltas("net.bytes");
  ASSERT_EQ(deltas.size(), 1u);
  EXPECT_EQ(deltas[0].first, 2'000'000u);
  EXPECT_DOUBLE_EQ(deltas[0].second, 30.0);
}

TEST(TimeSeries, PrefixFilterRestrictsColumns) {
  Registry reg;
  reg.counter("net.bytes").add(1);
  reg.counter("pss.exchanges").add(1);
  TimeSeriesRecorder rec(reg);
  rec.set_prefix_filter({"pss."});
  rec.sample(5);
  ASSERT_EQ(rec.series().size(), 1u);
  ASSERT_EQ(rec.series()[0].values.size(), 1u);
  EXPECT_EQ(rec.series()[0].values[0].first, "pss.exchanges");
}

}  // namespace
}  // namespace whisper::telemetry

#include "keysvc/keyservice.hpp"

#include <gtest/gtest.h>

#include "whisper/testbed.hpp"

namespace whisper::keysvc {
namespace {

TestbedConfig config(std::size_t n) {
  TestbedConfig cfg;
  cfg.initial_nodes = n;
  cfg.seed = 21;
  return cfg;
}

TEST(KeyService, PiggybackRoundTrips) {
  WhisperTestbed tb(config(2));
  WhisperNode* a = tb.alive_nodes()[0];
  const Bytes piggy = a->keys().piggyback();
  EXPECT_EQ(piggy.size(), KeyServiceConfig{}.key_wire_size);
  auto key = crypto::RsaPublicKey::deserialize(piggy);
  ASSERT_TRUE(key.has_value());
  EXPECT_EQ(*key, a->keypair().pub);
}

TEST(KeyService, GossipSpreadsKeys) {
  WhisperTestbed tb(config(20));
  tb.run_for(3 * net::kMinute);
  // After a few cycles every node holds keys for (at least) its CB.
  for (WhisperNode* n : tb.alive_nodes()) {
    EXPECT_GT(n->keys().cache_size(), 0u);
    for (const auto& e : n->wcl().backlog().entries()) {
      EXPECT_TRUE(n->keys().key_of(e.card.id).has_value());
    }
  }
}

TEST(KeyService, CachedKeysMatchRealKeys) {
  WhisperTestbed tb(config(15));
  tb.run_for(3 * net::kMinute);
  for (WhisperNode* n : tb.alive_nodes()) {
    for (WhisperNode* other : tb.alive_nodes()) {
      if (auto k = n->keys().key_of(other->id())) {
        EXPECT_EQ(*k, other->keypair().pub);
      }
    }
  }
}

TEST(KeyService, ExplicitRequestDeliversKey) {
  WhisperTestbed tb(config(5));
  tb.run_for(30 * net::kSecond);
  WhisperNode* a = tb.alive_nodes()[0];
  WhisperNode* b = tb.alive_nodes()[1];
  std::optional<crypto::RsaPublicKey> got;
  a->keys().request_key(b->transport().self_card(),
                        [&](std::optional<crypto::RsaPublicKey> k) { got = k; });
  tb.run_for(10 * net::kSecond);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, b->keypair().pub);
}

TEST(KeyService, RequestToDeadNodeTimesOut) {
  WhisperTestbed tb(config(5));
  tb.run_for(30 * net::kSecond);
  WhisperNode* a = tb.alive_nodes()[0];
  // A node that does not exist (never cached, never answers).
  pss::ContactCard ghost;
  ghost.id = NodeId{424242};
  ghost.is_public = true;
  ghost.addr = Endpoint{0x7f7f7f7f, 9};
  bool called = false;
  std::optional<crypto::RsaPublicKey> got;
  a->keys().request_key(ghost, [&](std::optional<crypto::RsaPublicKey> k) {
    called = true;
    got = k;
  });
  tb.run_for(30 * net::kSecond);
  EXPECT_TRUE(called);
  EXPECT_FALSE(got.has_value());
}

TEST(KeyService, CacheHitAnswersSynchronously) {
  WhisperTestbed tb(config(5));
  tb.run_for(2 * net::kMinute);
  WhisperNode* a = tb.alive_nodes()[0];
  // Prime the cache.
  WhisperNode* b = tb.alive_nodes()[1];
  a->keys().store(b->id(), b->keypair().pub);
  bool called = false;
  a->keys().request_key(b->transport().self_card(),
                        [&](std::optional<crypto::RsaPublicKey> k) {
                          called = true;
                          EXPECT_TRUE(k.has_value());
                        });
  EXPECT_TRUE(called);  // no network round-trip needed
}

}  // namespace
}  // namespace whisper::keysvc

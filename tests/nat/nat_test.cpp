#include "nat/nat.hpp"

#include <gtest/gtest.h>

namespace whisper::nat {
namespace {

Endpoint ep(std::uint32_t ip, std::uint16_t port = 5000) { return Endpoint{ip, port}; }

struct NatFixture : ::testing::Test {
  sim::Simulator sim{1};
  NatConfig config{};

  NatDevice make(NatType type) {
    return NatDevice(type, 0x64000001, config, [this] { return sim.now(); });
  }
};

TEST_F(NatFixture, OutboundAllocatesExternalEndpoint) {
  NatDevice dev = make(NatType::kFullCone);
  auto ext = dev.outbound(ep(0x0a000001), ep(1));
  ASSERT_TRUE(ext.has_value());
  EXPECT_EQ(ext->ip, 0x64000001u);
  EXPECT_GE(ext->port, config.base_port);
}

TEST_F(NatFixture, ConeMappingIsEndpointIndependent) {
  NatDevice dev = make(NatType::kRestrictedCone);
  auto ext1 = dev.outbound(ep(0x0a000001), ep(1));
  auto ext2 = dev.outbound(ep(0x0a000001), ep(2));
  EXPECT_EQ(*ext1, *ext2);  // same external port for all destinations
}

TEST_F(NatFixture, SymmetricAllocatesPerDestination) {
  NatDevice dev = make(NatType::kSymmetric);
  auto ext1 = dev.outbound(ep(0x0a000001), ep(1));
  auto ext2 = dev.outbound(ep(0x0a000001), ep(2));
  EXPECT_NE(ext1->port, ext2->port);
}

TEST_F(NatFixture, FullConeAcceptsAnySource) {
  NatDevice dev = make(NatType::kFullCone);
  auto ext = dev.outbound(ep(0x0a000001), ep(1));
  // A host never contacted can send in.
  auto internal = dev.inbound(ext->port, ep(42, 1234));
  ASSERT_TRUE(internal.has_value());
  EXPECT_EQ(*internal, ep(0x0a000001));
}

TEST_F(NatFixture, RestrictedConeFiltersByIp) {
  NatDevice dev = make(NatType::kRestrictedCone);
  auto ext = dev.outbound(ep(0x0a000001), ep(7, 1000));
  // Same IP, different port: allowed.
  EXPECT_TRUE(dev.inbound(ext->port, ep(7, 9999)).has_value());
  // Different IP: dropped.
  EXPECT_FALSE(dev.inbound(ext->port, ep(8, 1000)).has_value());
}

TEST_F(NatFixture, PortRestrictedConeFiltersByEndpoint) {
  NatDevice dev = make(NatType::kPortRestrictedCone);
  auto ext = dev.outbound(ep(0x0a000001), ep(7, 1000));
  EXPECT_TRUE(dev.inbound(ext->port, ep(7, 1000)).has_value());
  EXPECT_FALSE(dev.inbound(ext->port, ep(7, 9999)).has_value());
  EXPECT_FALSE(dev.inbound(ext->port, ep(8, 1000)).has_value());
}

TEST_F(NatFixture, SymmetricOnlyAcceptsTheMappedDestination) {
  NatDevice dev = make(NatType::kSymmetric);
  auto ext = dev.outbound(ep(0x0a000001), ep(7, 1000));
  EXPECT_TRUE(dev.inbound(ext->port, ep(7, 1000)).has_value());
  EXPECT_FALSE(dev.inbound(ext->port, ep(7, 1001)).has_value());
  EXPECT_FALSE(dev.inbound(ext->port, ep(9, 1000)).has_value());
}

TEST_F(NatFixture, UnknownPortDropped) {
  NatDevice dev = make(NatType::kFullCone);
  EXPECT_FALSE(dev.inbound(9999, ep(1)).has_value());
}

TEST_F(NatFixture, MappingExpiresAfterLease) {
  NatDevice dev = make(NatType::kFullCone);
  auto ext = dev.outbound(ep(0x0a000001), ep(1));
  sim.run_until(config.lease + 1);
  EXPECT_FALSE(dev.inbound(ext->port, ep(1)).has_value());
}

TEST_F(NatFixture, OutboundRefreshesLease) {
  NatDevice dev = make(NatType::kFullCone);
  auto ext = dev.outbound(ep(0x0a000001), ep(1));
  sim.run_until(config.lease - net::kSecond);
  dev.outbound(ep(0x0a000001), ep(1));  // refresh
  sim.run_until(config.lease + net::kMinute);
  EXPECT_TRUE(dev.inbound(ext->port, ep(1)).has_value());
}

TEST_F(NatFixture, ExpiredMappingReplacedWithFreshPort) {
  NatDevice dev = make(NatType::kFullCone);
  auto ext1 = dev.outbound(ep(0x0a000001), ep(1));
  sim.run_until(config.lease + 1);
  auto ext2 = dev.outbound(ep(0x0a000001), ep(1));
  EXPECT_NE(ext1->port, ext2->port);
}

TEST_F(NatFixture, FilterAccumulatesDestinations) {
  NatDevice dev = make(NatType::kRestrictedCone);
  auto ext = dev.outbound(ep(0x0a000001), ep(7, 1));
  dev.outbound(ep(0x0a000001), ep(8, 1));
  EXPECT_TRUE(dev.inbound(ext->port, ep(7, 5)).has_value());
  EXPECT_TRUE(dev.inbound(ext->port, ep(8, 5)).has_value());
}

TEST_F(NatFixture, ActiveMappingsCount) {
  NatDevice dev = make(NatType::kSymmetric);
  dev.outbound(ep(0x0a000001), ep(1));
  dev.outbound(ep(0x0a000001), ep(2));
  EXPECT_EQ(dev.active_mappings(), 2u);
  sim.run_until(config.lease + 1);
  EXPECT_EQ(dev.active_mappings(), 0u);
}

TEST_F(NatFixture, MultipleInternalHostsShareDevice) {
  NatDevice dev = make(NatType::kFullCone);
  auto ext1 = dev.outbound(ep(0x0a000001), ep(1));
  auto ext2 = dev.outbound(ep(0x0a000002), ep(1));
  EXPECT_NE(ext1->port, ext2->port);
  EXPECT_EQ(*dev.inbound(ext1->port, ep(1)), ep(0x0a000001));
  EXPECT_EQ(*dev.inbound(ext2->port, ep(1)), ep(0x0a000002));
}

// --- Fabric-level behaviour. ---

struct FabricFixture : ::testing::Test {
  sim::Simulator sim{1};
  NatFabric fabric{sim};
};

TEST_F(FabricFixture, PublicNodesPassThrough) {
  Endpoint pub = fabric.add_public_node();
  EXPECT_TRUE(fabric.is_public(pub));
  EXPECT_EQ(*fabric.outbound(pub, ep(1)), pub);
  EXPECT_EQ(*fabric.inbound(pub, ep(1)), pub);
}

TEST_F(FabricFixture, NattedNodeGetsExternalMapping) {
  Endpoint internal = fabric.add_natted_node(NatType::kFullCone);
  EXPECT_FALSE(fabric.is_public(internal));
  auto ext = fabric.outbound(internal, ep(1));
  ASSERT_TRUE(ext.has_value());
  EXPECT_NE(ext->ip, internal.ip);
  // The external endpoint routes back to the internal node.
  EXPECT_EQ(*fabric.inbound(*ext, ep(1)), internal);
}

TEST_F(FabricFixture, EndToEndThroughTwoNats) {
  // a (port-restricted) talks to b (full cone) through both devices.
  Endpoint a = fabric.add_natted_node(NatType::kPortRestrictedCone);
  Endpoint b = fabric.add_natted_node(NatType::kFullCone);
  // b opens a mapping first (e.g. to a rendezvous), so it is reachable.
  auto b_ext = fabric.outbound(b, ep(1));
  // a sends to b's external endpoint.
  auto a_ext = fabric.outbound(a, *b_ext);
  ASSERT_TRUE(a_ext.has_value());
  EXPECT_EQ(*fabric.inbound(*b_ext, *a_ext), b);  // full cone lets it in
  // b replies to a's external endpoint: port-restricted, and a contacted
  // exactly b_ext, so the reply from b_ext passes.
  auto b_ext2 = fabric.outbound(b, *a_ext);
  EXPECT_EQ(*fabric.inbound(*a_ext, *b_ext2), a);
}

TEST_F(FabricFixture, SymmetricBlocksUnexpectedReply) {
  Endpoint a = fabric.add_natted_node(NatType::kSymmetric);
  auto a_ext = fabric.outbound(a, ep(50, 1000));
  // Reply from a different endpoint than the mapped destination: dropped.
  EXPECT_FALSE(fabric.inbound(*a_ext, ep(51, 1000)).has_value());
}

TEST_F(FabricFixture, TypeOfReportsConfiguredType) {
  Endpoint a = fabric.add_natted_node(NatType::kSymmetric);
  Endpoint b = fabric.add_public_node();
  EXPECT_EQ(fabric.type_of(a), NatType::kSymmetric);
  EXPECT_EQ(fabric.type_of(b), NatType::kNone);
}

TEST_F(FabricFixture, RemoveNodeForgetsBookkeeping) {
  Endpoint a = fabric.add_natted_node(NatType::kFullCone);
  fabric.remove_node(a);
  EXPECT_EQ(fabric.type_of(a), NatType::kNone);
  EXPECT_FALSE(fabric.is_public(a));
}

TEST(DrawNatType, RespectsNattedFraction) {
  Rng rng(9);
  int natted = 0;
  const int n = 10000;
  int per_type[5] = {};
  for (int i = 0; i < n; ++i) {
    NatType t = draw_nat_type(rng, 0.7);
    if (t != NatType::kNone) ++natted;
    ++per_type[static_cast<int>(t)];
  }
  EXPECT_NEAR(static_cast<double>(natted) / n, 0.7, 0.02);
  // Even split across the 4 types (±3%).
  for (int t = 1; t <= 4; ++t) {
    EXPECT_NEAR(static_cast<double>(per_type[t]) / n, 0.175, 0.03);
  }
}

TEST(DrawNatType, ZeroFractionAllPublic) {
  Rng rng(10);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(draw_nat_type(rng, 0.0), NatType::kNone);
}

}  // namespace
}  // namespace whisper::nat

// Structure-aware libFuzzer harness over the durable-store decoders
// (DESIGN.md §14): the journal frame decoder and the snapshot (NodeState)
// deserializer — the two paths that parse bytes a crash may have torn or a
// hostile filesystem may have doctored.
//
// Same selector-byte scheme as fuzz_codecs: the first input byte picks the
// decoder, the remainder is the payload, so one corpus covers the whole
// surface while mutation stays within one format's grammar.
//
// Unlike the wire harness this one also asserts decoder INVARIANTS (via
// __builtin_trap, which the fuzzer reports as a crash):
//   - decode_journal never claims to consume more bytes than it was given,
//     and frames are never smaller than the 9-byte header;
//   - replay is prefix-stable: re-decoding exactly the consumed prefix
//     yields the same records and a clean (untorn) tail — the property the
//     torn-tail truncation on open() relies on.
#include <cstddef>
#include <cstdint>

#include "common/serialize.hpp"
#include "store/journal.hpp"
#include "store/state.hpp"

namespace {

using whisper::BytesView;
using whisper::Reader;

void check(bool ok) {
  if (!ok) __builtin_trap();
}

void fuzz_journal(BytesView body) {
  const whisper::store::JournalReplay replay = whisper::store::decode_journal(body);
  check(replay.consumed <= body.size());
  check(replay.torn_tail == (replay.consumed != body.size()));
  // Each decoded frame costs at least its 9-byte header.
  check(replay.consumed >= replay.records.size() * 9);
  for (const auto& rec : replay.records) {
    check(rec.payload.size() <= whisper::store::kMaxRecordBytes);
  }
  // Prefix stability: the consumed prefix must replay identically, clean.
  const whisper::store::JournalReplay again =
      whisper::store::decode_journal(BytesView(body.data(), replay.consumed));
  check(!again.torn_tail);
  check(again.records.size() == replay.records.size());
  check(again.consumed == replay.consumed);
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  if (size == 0) return 0;
  const BytesView body(data + 1, size - 1);
  switch (data[0] % 4) {
    case 0:
      fuzz_journal(body);
      break;
    case 1:
      (void)whisper::store::NodeState::deserialize(body);
      break;
    case 2: {
      Reader r(body);
      if (auto g = whisper::store::StoredGroup::deserialize(r)) (void)r.expect_done();
      (void)r.reject_reason();
      break;
    }
    case 3: {
      Reader r(body);
      if (auto kp = whisper::store::deserialize_keypair(r)) (void)r.expect_done();
      (void)r.reject_reason();
      break;
    }
  }
  return 0;
}

// libFuzzer harness for the fault-script parser — the one codec that takes
// operator-supplied *text* rather than peer-supplied bytes. Any input must
// either parse into FaultSpecs or produce a "line N:" diagnostic; never
// crash, hang, or read out of bounds.
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "faults/script.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  const auto result = whisper::faults::parse_script(text);
  if (result.ok()) {
    // Parsed specs must at least be self-consistent enough to print.
    for (const auto& spec : result.specs) {
      (void)whisper::faults::fault_kind_name(spec.kind);
    }
  }
  // The duration tokenizer is also reachable with raw text directly.
  whisper::net::Time t = 0;
  (void)whisper::faults::parse_duration(text, t);
  return 0;
}

// Structure-aware libFuzzer harness over every wire codec.
//
// The first input byte selects the codec; the remainder is the frame body.
// This keeps one harness (and one corpus) covering the full deserializer
// surface while letting the mutator stay within a single codec's grammar —
// a seed's selector byte survives mutation far more often than its body, so
// coverage-guided runs explore each format deeply instead of bouncing
// between them.
//
// Every dispatch applies the same acceptance rule the protocol handlers
// use: parse, then expect_done(). The harness asserts nothing about the
// result — any input must simply decode or reject without crashing,
// overflowing, or tripping ASan/UBSan.
#include <cstddef>
#include <cstdint>

#include "chord/tchord.hpp"
#include "common/serialize.hpp"
#include "crypto/onion.hpp"
#include "crypto/rsa.hpp"
#include "nylon/pss.hpp"
#include "overlay/tman.hpp"
#include "ppss/group.hpp"
#include "ppss/ppss.hpp"
#include "wcl/wcl.hpp"

namespace {

using whisper::BytesView;
using whisper::DecodeError;
using whisper::Reader;

// Mirrors the protocol call sites: decode one frame, then require the input
// to be fully consumed (trailing bytes are a reject, not a tolerated tail).
template <typename Decode>
void framed(BytesView body, Decode decode) {
  Reader r(body);
  decode(r);
  (void)r.expect_done();
  (void)r.reject_reason();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  if (size == 0) return 0;
  const BytesView body(data + 1, size - 1);
  switch (data[0] % 10) {
    case 0:
      framed(body, [](Reader& r) { (void)whisper::pss::ContactCard::deserialize(r); });
      break;
    case 1:
      framed(body, [](Reader& r) { (void)whisper::nylon::PssEntry::deserialize(r); });
      break;
    case 2:
      framed(body, [](Reader& r) {
        if (!whisper::ppss::PrivateEntry::deserialize(r)) r.fail(DecodeError::kBadValue);
      });
      break;
    case 3:
      framed(body, [](Reader& r) {
        if (!whisper::wcl::RemotePeer::deserialize(r)) r.fail(DecodeError::kBadValue);
      });
      break;
    case 4:
      framed(body, [](Reader& r) {
        if (!whisper::chord::ChordDescriptor::deserialize(r)) r.fail(DecodeError::kBadValue);
      });
      break;
    case 5:
      framed(body, [](Reader& r) {
        if (!whisper::overlay::OverlayDescriptor::deserialize(r)) {
          r.fail(DecodeError::kBadValue);
        }
      });
      break;
    case 6:
      framed(body, [](Reader& r) {
        if (!whisper::ppss::Passport::deserialize(r)) r.fail(DecodeError::kBadValue);
      });
      break;
    case 7:
      framed(body, [](Reader& r) {
        if (!whisper::ppss::Accreditation::deserialize(r)) r.fail(DecodeError::kBadValue);
      });
      break;
    case 8:
      (void)whisper::crypto::RsaPublicKey::deserialize(body);
      break;
    case 9:
      (void)whisper::crypto::OnionPacket::deserialize(body);
      break;
  }
  return 0;
}

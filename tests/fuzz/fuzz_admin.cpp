// Fuzz harness for the observability-plane codecs: the CRC-framed health/
// stats record (rendezvous stats.N files and admin-socket replies) and the
// fixed 4-byte admin request.
//
// These decoders face the most hostile inputs in the system: the stats file
// is world-readable and scraped mid-write by independent processes, and the
// admin UDP socket accepts datagrams from anything that can reach loopback.
// The harness asserts nothing about the result — any input must decode or
// reject without crashing, over-allocating (kMaxHealthPayloadBytes /
// kMaxHealthMetrics / kMaxHealthNameBytes caps), or tripping ASan/UBSan.
//
// The first input byte selects the codec; the remainder is the datagram.
#include <cstddef>
#include <cstdint>

#include "telemetry/health.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  if (size == 0) return 0;
  const whisper::BytesView body(data + 1, size - 1);
  whisper::DecodeError err = whisper::DecodeError::kNone;
  switch (data[0] % 3) {
    case 0:
      (void)whisper::telemetry::decode_health_record(body, &err);
      break;
    case 1:
      (void)whisper::telemetry::decode_admin_request(body, &err);
      break;
    case 2: {
      // Accumulator path: the aggregator must stay consistent across any
      // record sequence, including decode failures interleaved with valid
      // applies (atomicity: a failed apply changes nothing).
      whisper::telemetry::HealthAccumulator acc;
      (void)acc.apply(body, &err);
      if (acc.valid()) {
        (void)acc.last().seq;
        (void)acc.metrics().size();
      }
      (void)acc.apply(body, &err);  // duplicate must be a no-op, not a crash
      break;
    }
  }
  return 0;
}

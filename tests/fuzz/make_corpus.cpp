// Regenerates the committed seed corpus under tests/fuzz/corpus/.
//
//   ./fuzz_make_corpus <repo>/tests/fuzz/corpus
//
// One seed per codec selector: a valid encoding prefixed with its dispatch
// byte, so coverage-guided mutation starts from the deepest paths of every
// deserializer instead of having to discover the framing from scratch.
// Deterministic (fixed Drbg/Rng seeds) — rerunning produces identical files.
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "chord/tchord.hpp"
#include "common/rng.hpp"
#include "crypto/onion.hpp"
#include "crypto/rsa.hpp"
#include "nylon/pss.hpp"
#include "overlay/tman.hpp"
#include "ppss/group.hpp"
#include "ppss/ppss.hpp"
#include "store/state.hpp"
#include "telemetry/health.hpp"
#include "wcl/wcl.hpp"

namespace whisper {
namespace {

pss::ContactCard sample_card(Rng& rng) {
  pss::ContactCard c;
  c.id = NodeId{rng.next_u64() | 1};
  c.addr = Endpoint{static_cast<std::uint32_t>(rng.next_u64()),
                    static_cast<std::uint16_t>(rng.next_u64())};
  c.is_public = rng.next_bool(0.5);
  c.relay_id = NodeId{rng.next_u64()};
  return c;
}

wcl::RemotePeer sample_peer(Rng& rng, const crypto::RsaPublicKey& key,
                            std::size_t helpers) {
  wcl::RemotePeer p;
  p.card = sample_card(rng);
  p.key = key;
  for (std::size_t i = 0; i < helpers; ++i) {
    wcl::Helper h;
    h.card = sample_card(rng);
    h.key = key;
    p.helpers.push_back(std::move(h));
  }
  return p;
}

void emit(const std::filesystem::path& dir, const char* name,
          std::uint8_t selector, const Bytes& body) {
  Bytes seed;
  seed.push_back(selector);
  seed.insert(seed.end(), body.begin(), body.end());
  std::ofstream out(dir / name, std::ios::binary);
  out.write(reinterpret_cast<const char*>(seed.data()),
            static_cast<std::streamsize>(seed.size()));
  std::printf("wrote %s (%zu bytes)\n", (dir / name).string().c_str(), seed.size());
}

}  // namespace
}  // namespace whisper

int main(int argc, char** argv) {
  using namespace whisper;
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <corpus-dir>\n", argv[0]);
    return 1;
  }
  const std::filesystem::path root(argv[1]);
  const std::filesystem::path codecs = root / "codecs";
  std::filesystem::create_directories(codecs);

  Rng rng(2718);
  crypto::Drbg drbg(31415);
  const crypto::RsaPublicKey key = crypto::RsaKeyPair::generate(512, drbg).pub;

  {
    Writer w;
    sample_card(rng).serialize(w);
    emit(codecs, "contact_card", 0, w.data());
  }
  {
    nylon::PssEntry e;
    e.card = sample_card(rng);
    e.age = 17;
    Writer w;
    e.serialize(w);
    emit(codecs, "pss_entry", 1, w.data());
  }
  {
    ppss::PrivateEntry e;
    e.peer = sample_peer(rng, key, 3);
    e.age = 4;
    Writer w;
    e.serialize(w);
    emit(codecs, "private_entry", 2, w.data());
  }
  {
    Writer w;
    sample_peer(rng, key, 2).serialize(w);
    emit(codecs, "remote_peer", 3, w.data());
  }
  {
    chord::ChordDescriptor d;
    d.key = rng.next_u64();
    d.peer = sample_peer(rng, key, 2);
    Writer w;
    d.serialize(w);
    emit(codecs, "chord_descriptor", 4, w.data());
  }
  {
    overlay::OverlayDescriptor d;
    d.key = rng.next_u64();
    d.peer = sample_peer(rng, key, 1);
    Writer w;
    d.serialize(w);
    emit(codecs, "overlay_descriptor", 5, w.data());
  }
  {
    ppss::Passport p;
    p.node = NodeId{7};
    p.epoch = 3;
    p.signature = Bytes(48, 0x5a);
    Writer w;
    p.serialize(w);
    emit(codecs, "passport", 6, w.data());
  }
  {
    ppss::Accreditation a;
    a.group = GroupId{9};
    a.node = NodeId{11};
    a.epoch = 2;
    a.signature = Bytes(48, 0xa5);
    Writer w;
    a.serialize(w);
    emit(codecs, "accreditation", 7, w.data());
  }
  emit(codecs, "rsa_public_key", 8, key.serialize());
  {
    crypto::OnionPacket pkt;
    pkt.header = Bytes(40, 0x11);
    pkt.body = Bytes(60, 0x22);
    emit(codecs, "onion_packet", 9, pkt.serialize());
  }

  // Durable-store seeds (fuzz_store selectors, see fuzz_store.cpp).
  const std::filesystem::path store_dir = root / "store";
  std::filesystem::create_directories(store_dir);
  const crypto::RsaKeyPair identity = crypto::RsaKeyPair::generate(512, drbg);

  store::StoredGroup leader_group;
  leader_group.group = GroupId{7};
  leader_group.is_leader = true;
  leader_group.epochs.emplace_back(1, identity.pub);
  leader_group.passport = ppss::issue_passport(GroupId{7}, 1, NodeId{42}, identity);
  leader_group.group_key = identity;

  store::StoredGroup member_group;
  member_group.group = GroupId{8};
  member_group.epochs.emplace_back(1, key);
  member_group.passport = ppss::issue_passport(GroupId{8}, 1, NodeId{42}, identity);
  member_group.accreditation = ppss::issue_accreditation(GroupId{8}, 1, NodeId{42}, identity);
  member_group.entry_point = sample_peer(rng, key, 2);

  {
    // A realistic journal: one frame of each RecordType, matching what
    // NodeStateStore appends between snapshots.
    Bytes journal;
    auto append = [&journal](store::RecordType type, const Bytes& payload) {
      const Bytes frame =
          store::encode_record(static_cast<std::uint8_t>(type), payload);
      journal.insert(journal.end(), frame.begin(), frame.end());
    };
    Writer inc;
    inc.u32(2);
    append(store::RecordType::kIncarnation, inc.data());
    Writer grp;
    member_group.serialize(grp);
    append(store::RecordType::kGroup, grp.data());
    Writer hints;
    hints.u16(2);
    sample_card(rng).serialize(hints);
    sample_card(rng).serialize(hints);
    append(store::RecordType::kPeerHints, hints.data());
    emit(store_dir, "journal", 0, journal);
    // The same journal with a torn tail (crash mid-append).
    Bytes torn(journal.begin(), journal.end() - 3);
    emit(store_dir, "journal_torn", 0, torn);
  }
  {
    store::NodeState st;
    st.id = NodeId{42};
    st.is_public = true;
    st.endpoint = Endpoint{(127u << 24) | 1, 40123};
    st.incarnation = 3;
    st.identity = identity;
    st.groups.push_back(leader_group);
    st.groups.push_back(member_group);
    st.peer_hints.push_back(sample_card(rng));
    emit(store_dir, "node_state", 1, st.serialize());
  }
  {
    Writer w;
    member_group.serialize(w);
    emit(store_dir, "stored_group", 2, w.data());
  }
  {
    Writer w;
    store::serialize_keypair(w, identity);
    emit(store_dir, "keypair", 3, w.data());
  }

  // Observability-plane seeds (fuzz_admin selectors, see fuzz_admin.cpp):
  // one valid keyframe health record, one delta, one admin request.
  const std::filesystem::path admin_dir = root / "admin";
  std::filesystem::create_directories(admin_dir);
  {
    telemetry::HealthSnapshot snap;
    snap.node = 3;
    snap.pid = 12345;
    snap.incarnation = 2;
    snap.seq = 7;
    snap.now_us = 4'200'000;
    snap.uptime_us = 4'100'000;
    snap.groups = 1;
    snap.wcl_backlog = 4;
    snap.pss_view = 20;
    snap.pss_reserve = 40;
    snap.rss_kb = 9000;
    snap.cpu_us = 123456;
    snap.keyframe = true;
    snap.metrics = {{"wcl.onions.delivered", 11.0},
                    {"pss.exchange.rtt_us#p95", 4321.0},
                    {"wcl.backlog.depth{node=n3}", 4.0}};
    emit(admin_dir, "health_keyframe", 0, telemetry::encode_health_record(snap));
    snap.keyframe = false;
    snap.seq = 8;
    snap.metrics = {{"wcl.onions.delivered", 12.0}};
    emit(admin_dir, "health_delta", 0, telemetry::encode_health_record(snap));
    // Selector 2 replays the same record shape through the accumulator.
    emit(admin_dir, "health_accumulate", 2,
         telemetry::encode_health_record(snap));
  }
  emit(admin_dir, "admin_request", 1,
       telemetry::encode_admin_request(telemetry::AdminOp::kStats));
  return 0;
}

// Standalone replay driver for the fuzz harnesses.
//
// libFuzzer needs clang (-fsanitize=fuzzer); the default build links this
// driver instead so every compiler still builds the harnesses and ctest
// regression-runs them over the committed seed corpus. Arguments are corpus
// files or directories; libFuzzer-style "-flag" arguments are ignored so
// the same command line works in both modes.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size);

namespace {

int run_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.string().c_str());
    return -1;
  }
  std::vector<std::uint8_t> buf((std::istreambuf_iterator<char>(in)),
                                std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(buf.data(), buf.size());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  int ran = 0;
  for (int i = 1; i < argc; ++i) {
    if (argv[i][0] == '-') continue;  // libFuzzer flag — not a corpus path
    std::error_code ec;
    if (std::filesystem::is_directory(argv[i], ec)) {
      for (const auto& entry : std::filesystem::directory_iterator(argv[i])) {
        if (!entry.is_regular_file()) continue;
        const int r = run_file(entry.path());
        if (r < 0) return 1;
        ran += r;
      }
    } else {
      const int r = run_file(argv[i]);
      if (r < 0) return 1;
      ran += r;
    }
  }
  if (ran == 0) {
    std::fprintf(stderr, "no corpus files executed\n");
    return 1;
  }
  std::printf("replayed %d corpus file(s) without incident\n", ran);
  return 0;
}
